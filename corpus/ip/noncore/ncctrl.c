/* Non-core experimental controller for the inverted pendulum: a
 * higher-performance state-feedback law with a disturbance observer and
 * command smoothing. Runs as a separate process; communicates with the
 * core controller exclusively through the shared-memory regions. This
 * component is NOT analyzed by SafeFlow (it is untrusted by design); it
 * is included so the system is complete and runnable.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern IPFeedback *fbShm;
extern IPCommand  *cmdShm;
extern IPStatus   *statShm;

/* Aggressive gains tuned for low jitter rather than robustness. */
static float kTrack = -4.10f;
static float kTrackVel = -5.22f;
static float kAngle = 39.80f;
static float kAngleVel = 7.15f;

/* Disturbance observer state. */
static float distEstimate = 0.0f;
static float distGain = 0.08f;

/* Command smoothing to reduce actuator wear. */
static float lastCommand = 0.0f;
static float slewLimit = 0.9f;

static int iterations = 0;
static int lastSeq = -1;

static float observeDisturbance(float angle, float angle_vel,
                                float applied)
{
    float expected_acc;
    float implied_acc;
    expected_acc = 77.6f * angle - 12.6f * applied;
    implied_acc = angle_vel * 50.0f;
    distEstimate = distEstimate
                 + distGain * (implied_acc - expected_acc - distEstimate);
    return distEstimate;
}

static float smooth(float target)
{
    float delta;
    delta = target - lastCommand;
    if (delta > slewLimit) {
        delta = slewLimit;
    }
    if (delta < -slewLimit) {
        delta = -slewLimit;
    }
    lastCommand = lastCommand + delta;
    return lastCommand;
}

static float computeCommand(IPFeedback fb)
{
    float u;
    float dist;

    u = -(kTrack * fb.track_pos + kTrackVel * fb.track_vel
          + kAngle * fb.angle + kAngleVel * fb.angle_vel);
    dist = observeDisturbance(fb.angle, fb.angle_vel, lastCommand);
    u = u - 0.35f * dist;
    if (u > IP_VOLT_LIMIT) {
        u = IP_VOLT_LIMIT;
    }
    if (u < -IP_VOLT_LIMIT) {
        u = -IP_VOLT_LIMIT;
    }
    return smooth(u);
}

static void publish(float u, int seq, float predicted)
{
    lockShm();
    cmdShm->control = u;
    cmdShm->predicted_angle = predicted;
    cmdShm->seq = seq;
    cmdShm->valid = 1;
    unlockShm();
}

static void heartbeat(void)
{
    statShm->nc_active = 1;
    statShm->iterations = iterations;
    statShm->last_latency = 0.4f;
}

int ncControllerMain(void)
{
    IPFeedback snapshot;
    float u;
    float predicted;

    for (;;) {
        lockShm();
        snapshot = *fbShm;
        unlockShm();

        if (snapshot.seq != lastSeq) {
            lastSeq = snapshot.seq;
            u = computeCommand(snapshot);
            predicted = snapshot.angle
                      + 0.02f * snapshot.angle_vel
                      + 0.0002f * (77.6f * snapshot.angle - 12.6f * u);
            publish(u, snapshot.seq, predicted);
            iterations = iterations + 1;
            heartbeat();
        }
        usleep(IP_PERIOD_US / 4);
    }
    return 0;
}
