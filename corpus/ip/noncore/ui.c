/* Console UI process for the inverted pendulum demo: renders the plant
 * state from the feedback region and lets an operator switch modes. Like
 * the experimental controller, this is a non-core component: it may crash
 * or misbehave without compromising the core, as long as the core never
 * uses its values unmonitored.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern IPFeedback *fbShm;
extern IPStatus   *statShm;
extern IPDisplay  *dispShm;

extern int readKeyNonBlocking(void);

static int frame = 0;

static void drawBar(float value, float scale)
{
    int cells;
    int i;
    cells = (int)(value * scale);
    if (cells < 0) {
        cells = -cells;
    }
    if (cells > 30) {
        cells = 30;
    }
    for (i = 0; i < cells; i = i + 1) {
        printf("#");
    }
    printf("\n");
}

static void render(void)
{
    IPFeedback fb;
    fb = *fbShm;
    printf("=== inverted pendulum (frame %d) ===\n", frame);
    printf("track %f m\n", fb.track_pos);
    drawBar(fb.track_pos, 40.0f);
    printf("angle %f rad\n", fb.angle);
    drawBar(fb.angle, 60.0f);
    printf("nc active: %d\n", statShm->nc_active);
}

static void handleKeys(void)
{
    int key;
    key = readKeyNonBlocking();
    if (key == 'b') {
        dispShm->mode = IP_MODE_BALANCE;
    }
    if (key == 't') {
        dispShm->mode = IP_MODE_TRACKING;
    }
    if (key == 'd') {
        dispShm->mode = IP_MODE_DEMO;
    }
    if (key == '+') {
        dispShm->verbosity = dispShm->verbosity + 1;
    }
    if (key == '-') {
        if (dispShm->verbosity > 0) {
            dispShm->verbosity = dispShm->verbosity - 1;
        }
    }
}

int uiMain(void)
{
    dispShm->supervisor_pid = getpid();
    dispShm->refresh_ms = 100;
    for (;;) {
        render();
        handleKeys();
        frame = frame + 1;
        usleep(dispShm->refresh_ms * 1000);
    }
    return 0;
}
