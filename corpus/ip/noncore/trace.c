/* Trace recorder for the inverted pendulum demo (non-core): samples the
 * shared regions at the control rate into a circular buffer and dumps
 * CSV-ish traces on demand. Used by the lab to compare the experimental
 * controller's jitter against the safety baseline.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern IPFeedback *fbShm;
extern IPCommand  *cmdShm;
extern IPStatus   *statShm;
extern IPDisplay  *dispShm;

#define TRACE_DEPTH 512

typedef struct TraceRow {
    int   seq;
    float track_pos;
    float angle;
    float nc_control;
    int   nc_valid;
} TraceRow;

static TraceRow rows[TRACE_DEPTH];
static int writeIdx = 0;
static int stored = 0;
static int lastSeq = -1;
static int overruns = 0;

static void capture(void)
{
    TraceRow r;

    lockShm();
    r.seq = fbShm->seq;
    r.track_pos = fbShm->track_pos;
    r.angle = fbShm->angle;
    r.nc_control = cmdShm->control;
    r.nc_valid = cmdShm->valid;
    unlockShm();

    if (r.seq == lastSeq) {
        return;  /* no new period yet */
    }
    if (r.seq > lastSeq + 1 && lastSeq >= 0) {
        overruns = overruns + (r.seq - lastSeq - 1);
    }
    lastSeq = r.seq;

    rows[writeIdx] = r;
    writeIdx = (writeIdx + 1) % TRACE_DEPTH;
    if (stored < TRACE_DEPTH) {
        stored = stored + 1;
    }
}

static float jitterEstimate(void)
{
    int i;
    int idx;
    float mean;
    float accum;
    float dev;

    if (stored < 2) {
        return 0.0f;
    }
    idx = writeIdx - stored;
    if (idx < 0) {
        idx = idx + TRACE_DEPTH;
    }
    mean = 0.0f;
    for (i = 0; i < stored; i = i + 1) {
        mean = mean + rows[(idx + i) % TRACE_DEPTH].angle;
    }
    mean = mean / (float)stored;

    accum = 0.0f;
    for (i = 0; i < stored; i = i + 1) {
        dev = rows[(idx + i) % TRACE_DEPTH].angle - mean;
        if (dev < 0.0f) {
            dev = -dev;
        }
        accum = accum + dev;
    }
    return accum / (float)stored;
}

static void dump(void)
{
    int i;
    int idx;

    printf("seq,track,angle,nc_u,nc_valid\n");
    idx = writeIdx - stored;
    if (idx < 0) {
        idx = idx + TRACE_DEPTH;
    }
    for (i = 0; i < stored; i = i + 1) {
        TraceRow *r;
        r = &rows[(idx + i) % TRACE_DEPTH];
        printf("%d,%f,%f,%f,%d\n", r->seq, r->track_pos, r->angle,
               r->nc_control, r->nc_valid);
    }
    printf("# jitter=%f overruns=%d nc_restarts=%d\n", jitterEstimate(),
           overruns, statShm->restarts);
}

int traceMain(void)
{
    int cycles;

    cycles = 0;
    for (;;) {
        capture();
        cycles = cycles + 1;
        if (cycles % 1024 == 0 && dispShm->verbosity > 2) {
            dump();
        }
        usleep(IP_PERIOD_US / 2);
    }
    return 0;
}
