/* Shared-memory layout of the inverted pendulum Simplex system.
 * Four segments are mapped by both the core and non-core processes:
 *   feedback  - plant state published by the core controller
 *   command   - control output published by the non-core controller
 *   status    - heartbeat / bookkeeping published by the non-core side
 *   display   - UI configuration and supervision published by the UI
 */
#ifndef IP_IPC_TYPES_H
#define IP_IPC_TYPES_H

#define IP_SHM_KEY 5150
#define IP_PERIOD_US 20000
#define IP_VOLT_LIMIT 5.0f
#define IP_TRACK_LIMIT 0.4f
#define IP_ANGLE_LIMIT 0.6f

typedef struct IPFeedback {
    float track_pos;     /* cart position on the track, meters  */
    float track_vel;     /* cart velocity, m/s                  */
    float angle;         /* pendulum angle from upright, rad    */
    float angle_vel;     /* pendulum angular velocity, rad/s    */
    int   seq;           /* publication sequence number         */
} IPFeedback;

typedef struct IPCommand {
    float control;       /* requested actuator voltage          */
    float predicted_angle;
    int   seq;           /* must track IPFeedback.seq           */
    int   valid;         /* non-core controller self-check flag */
} IPCommand;

typedef struct IPStatus {
    int   nc_active;     /* non-core controller heartbeat       */
    int   iterations;    /* loop count on the non-core side     */
    float last_latency;  /* publication latency estimate, ms    */
    int   restarts;      /* non-core restart counter            */
} IPStatus;

typedef struct IPDisplay {
    int   mode;          /* UI-selected operating mode          */
    int   verbosity;     /* console verbosity level             */
    int   supervisor_pid;/* process to signal on mode change    */
    int   refresh_ms;    /* UI refresh period                   */
} IPDisplay;

#define IP_MODE_BALANCE 0
#define IP_MODE_TRACKING 1
#define IP_MODE_DEMO 2

#endif /* IP_IPC_TYPES_H */
