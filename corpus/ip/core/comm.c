/* Shared-memory initialization for the core controller (paper Fig. 3).
 * The initializing function is the only place allowed to perform the
 * untyped shmat cast and the pointer arithmetic that carves the segment
 * into the four typed regions; the shmvar/noncore post-conditions declare
 * the regions for the analysis.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

IPFeedback *fbShm;
IPCommand  *cmdShm;
IPStatus   *statShm;
IPDisplay  *dispShm;

static int shmSegmentId;

/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
    void *shmStart;
    char *cursor;
    int total;

    total = sizeof(IPFeedback) + sizeof(IPCommand)
          + sizeof(IPStatus) + sizeof(IPDisplay);
    shmSegmentId = shmget(IP_SHM_KEY, total, IPC_CREAT);
    shmStart = shmat(shmSegmentId, 0, 0);

    cursor = (char *) shmStart;
    fbShm = (IPFeedback *) cursor;
    cursor = cursor + sizeof(IPFeedback);
    cmdShm = (IPCommand *) cursor;
    cursor = cursor + sizeof(IPCommand);
    statShm = (IPStatus *) cursor;
    cursor = cursor + sizeof(IPStatus);
    dispShm = (IPDisplay *) cursor;

    /*** SafeFlow Annotation assume(shmvar(fbShm, sizeof(IPFeedback))) ***/
    /*** SafeFlow Annotation assume(shmvar(cmdShm, sizeof(IPCommand))) ***/
    /*** SafeFlow Annotation assume(shmvar(statShm, sizeof(IPStatus))) ***/
    /*** SafeFlow Annotation assume(shmvar(dispShm, sizeof(IPDisplay))) ***/
    /*** SafeFlow Annotation assume(noncore(fbShm)) ***/
    /*** SafeFlow Annotation assume(noncore(cmdShm)) ***/
    /*** SafeFlow Annotation assume(noncore(statShm)) ***/
    /*** SafeFlow Annotation assume(noncore(dispShm)) ***/
}

/* Publishes the latest plant state for the non-core controller and the
 * UI. The feedback region is declared non-core because nothing prevents
 * those processes from writing into it (the paper's conservative model).
 */
void publishFeedback(float track_pos, float track_vel,
                     float angle, float angle_vel, int seq)
{
    lockShm();
    fbShm->track_pos = track_pos;
    fbShm->track_vel = track_vel;
    fbShm->angle = angle;
    fbShm->angle_vel = angle_vel;
    fbShm->seq = seq;
    unlockShm();
}
