/* The well-tested safety controller of the core subsystem: a fixed-gain
 * state-feedback law with sensor conditioning. Everything here computes
 * from core-owned values (the sensor readings held in core locals), never
 * from shared memory.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

/* State-feedback gains synthesized offline for the lab pendulum. */
static float gainTrack = -2.46f;
static float gainTrackVel = -3.07f;
static float gainAngle = -28.41f;
static float gainAngleVel = -4.92f;

/* First-order low-pass filter state for the velocity estimates. */
static float velFilterState = 0.0f;
static float angVelFilterState = 0.0f;
static float filterAlpha = 0.35f;

/* Running diagnostics kept by the core side. */
static int   saturationCount = 0;
static float lastSafeOutput = 0.0f;

float clampVolts(float v)
{
    if (v > IP_VOLT_LIMIT) {
        saturationCount = saturationCount + 1;
        return IP_VOLT_LIMIT;
    }
    if (v < -IP_VOLT_LIMIT) {
        saturationCount = saturationCount + 1;
        return -IP_VOLT_LIMIT;
    }
    return v;
}

float lowPass(float state, float sample, float alpha)
{
    return state + alpha * (sample - state);
}

float filterTrackVel(float raw)
{
    velFilterState = lowPass(velFilterState, raw, filterAlpha);
    return velFilterState;
}

float filterAngleVel(float raw)
{
    angVelFilterState = lowPass(angVelFilterState, raw, filterAlpha);
    return angVelFilterState;
}

/* The stabilizing control law: u = -K x, clamped to the actuator range. */
float computeSafeControl(float track_pos, float track_vel,
                         float angle, float angle_vel)
{
    float u;
    float tv;
    float av;

    tv = filterTrackVel(track_vel);
    av = filterAngleVel(angle_vel);

    u = -(gainTrack * track_pos + gainTrackVel * tv
          + gainAngle * angle + gainAngleVel * av);
    u = clampVolts(u);
    lastSafeOutput = u;
    return u;
}

/* Conservative one-step prediction of the pendulum angle under a given
 * voltage, used by the recoverability check. Coefficients follow the
 * linearized plant model discretized at the 50 Hz control period.
 */
float predictAngle(float angle, float angle_vel, float volts)
{
    float angle_acc;
    angle_acc = 77.6f * angle - 12.6f * volts;
    return angle + 0.02f * angle_vel + 0.0002f * angle_acc;
}

float predictAngleVel(float angle, float angle_vel, float volts)
{
    float angle_acc;
    angle_acc = 77.6f * angle - 12.6f * volts;
    return angle_vel + 0.02f * angle_acc;
}

float predictTrack(float track_pos, float track_vel, float volts)
{
    float track_acc;
    track_acc = -4.4f * track_pos + 3.8f * volts;
    return track_pos + 0.02f * track_vel + 0.0002f * track_acc;
}

/* Lyapunov-style envelope value: a weighted quadratic form over the
 * predicted state. The envelope level was calibrated so the physical
 * track and angle limits lie outside it.
 */
float envelopeValue(float track_pos, float track_vel,
                    float angle, float angle_vel)
{
    float v;
    v = 6.2f * track_pos * track_pos
      + 1.1f * track_vel * track_vel
      + 48.0f * angle * angle
      + 2.3f * angle_vel * angle_vel
      + 7.5f * angle * angle_vel
      + 1.9f * track_pos * track_vel;
    return v;
}

float envelopeLevel(void)
{
    return 11.0f;
}

/* True when the state is inside the recoverable envelope with margin. */
int insideEnvelope(float track_pos, float track_vel,
                   float angle, float angle_vel)
{
    float value;
    value = envelopeValue(track_pos, track_vel, angle, angle_vel);
    if (value < envelopeLevel()) {
        return 1;
    }
    return 0;
}

int coreSaturationCount(void)
{
    return saturationCount;
}

float coreLastSafeOutput(void)
{
    return lastSafeOutput;
}
