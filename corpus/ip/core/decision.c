/* The decision module of the Simplex architecture: accepts the non-core
 * controller's output only when the recoverability check passes. This is
 * the system's monitoring function for the command region; the
 * assume(core(...)) annotation declares that cmd may be dereferenced
 * safely here and in everything it calls (the values are checked before
 * use).
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern float clampVolts(float v);
extern float predictAngle(float angle, float angle_vel, float volts);
extern float predictAngleVel(float angle, float angle_vel, float volts);
extern float predictTrack(float track_pos, float track_vel, float volts);
extern float envelopeValue(float track_pos, float track_vel,
                           float angle, float angle_vel);
extern float envelopeLevel(void);

extern IPCommand *cmdShm;

static int acceptCount = 0;
static int rejectCount = 0;

/* Checks that applying `volts` for one period keeps the plant inside the
 * recoverability envelope. All plant-state arguments are the core's own
 * sensor copies; only the monitored command region is dereferenced.
 */
static int checkRecoverable(IPCommand *cmd, float track_pos,
                            float track_vel, float angle, float angle_vel)
{
    float volts;
    float next_angle;
    float next_angle_vel;
    float next_track;
    float next_value;

    if (cmd->valid == 0) {
        return 0;
    }
    volts = cmd->control;
    if (volts > IP_VOLT_LIMIT || volts < -IP_VOLT_LIMIT) {
        return 0;
    }
    next_angle = predictAngle(angle, angle_vel, volts);
    next_angle_vel = predictAngleVel(angle, angle_vel, volts);
    next_track = predictTrack(track_pos, track_vel, volts);
    next_value = envelopeValue(next_track, track_vel,
                               next_angle, next_angle_vel);
    if (next_value < envelopeLevel()) {
        return 1;
    }
    return 0;
}

/* The monitoring function: returns the control to actuate this period. */
float decisionModule(float safeControl, float track_pos, float track_vel,
                     float angle, float angle_vel, IPCommand *cmd)
/*** SafeFlow Annotation assume(core(cmd, 0, sizeof(IPCommand))) ***/
{
    if (checkRecoverable(cmd, track_pos, track_vel, angle, angle_vel)) {
        acceptCount = acceptCount + 1;
        return clampVolts(cmd->control);
    }
    rejectCount = rejectCount + 1;
    return safeControl;
}

int decisionAcceptCount(void)
{
    return acceptCount;
}

int decisionRejectCount(void)
{
    return rejectCount;
}
