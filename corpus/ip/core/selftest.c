/* Power-on self test of the core controller: validates the control gains
 * against the verified plant model, exercises the envelope arithmetic on
 * a grid of states, and checks the prediction functions for consistency
 * before the loop starts. Pure core computation over constants.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern float computeSafeControl(float track_pos, float track_vel,
                                float angle, float angle_vel);
extern float predictAngle(float angle, float angle_vel, float volts);
extern float predictAngleVel(float angle, float angle_vel, float volts);
extern float predictTrack(float track_pos, float track_vel, float volts);
extern float envelopeValue(float track_pos, float track_vel,
                           float angle, float angle_vel);
extern float envelopeLevel(void);
extern float clampVolts(float v);

static int failures = 0;

static void expectTrue(int cond, char *what)
{
    if (!cond) {
        failures = failures + 1;
        printf("[selftest] FAILED: %s\n", what);
    }
}

/* The control law must push back against a tilted pendulum. */
static void testGainDirection(void)
{
    float u_pos;
    float u_neg;

    u_pos = computeSafeControl(0.0f, 0.0f, 0.1f, 0.0f);
    u_neg = computeSafeControl(0.0f, 0.0f, -0.1f, 0.0f);
    expectTrue(u_pos * u_neg < 0.0f, "gain direction symmetric");
    expectTrue(u_pos > 0.0f, "positive tilt demands positive volts");
}

/* Output saturation must engage exactly at the actuator limits. */
static void testSaturation(void)
{
    expectTrue(clampVolts(7.5f) == IP_VOLT_LIMIT, "upper clamp");
    expectTrue(clampVolts(-7.5f) == -IP_VOLT_LIMIT, "lower clamp");
    expectTrue(clampVolts(1.0f) == 1.0f, "pass-through");
}

/* The envelope must be positive definite on a probe grid and zero only
 * at the origin. */
static void testEnvelopeShape(void)
{
    float v;
    int i;
    int j;
    float states[3];

    states[0] = -0.2f;
    states[1] = 0.0f;
    states[2] = 0.2f;
    expectTrue(envelopeValue(0.0f, 0.0f, 0.0f, 0.0f) == 0.0f,
               "envelope zero at origin");
    for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) {
            if (states[i] == 0.0f && states[j] == 0.0f) {
                continue;
            }
            v = envelopeValue(states[i], 0.0f, states[j], 0.0f);
            expectTrue(v > 0.0f, "envelope positive away from origin");
        }
    }
    expectTrue(envelopeLevel() > 0.0f, "envelope level positive");
}

/* One closed-loop prediction step from a mild state must not leave the
 * envelope: the safety controller keeps its own command recoverable. */
static void testClosedLoopStep(void)
{
    float angle;
    float angle_vel;
    float track;
    float u;
    float next_angle;
    float next_vel;
    float next_track;
    float value;

    angle = 0.05f;
    angle_vel = 0.0f;
    track = 0.05f;
    u = computeSafeControl(track, 0.0f, angle, angle_vel);
    next_angle = predictAngle(angle, angle_vel, u);
    next_vel = predictAngleVel(angle, angle_vel, u);
    next_track = predictTrack(track, 0.0f, u);
    value = envelopeValue(next_track, 0.0f, next_angle, next_vel);
    expectTrue(value < envelopeLevel(), "closed-loop step recoverable");
}

/* Prediction must be continuous in the input: nearby voltages give
 * nearby next states. */
static void testPredictionContinuity(void)
{
    float a1;
    float a2;
    float diff;

    a1 = predictAngle(0.1f, 0.2f, 1.0f);
    a2 = predictAngle(0.1f, 0.2f, 1.001f);
    diff = a1 - a2;
    if (diff < 0.0f) {
        diff = -diff;
    }
    expectTrue(diff < 0.001f, "prediction continuous in volts");
}

/* Entry point called by main before the control loop starts. Returns the
 * number of failed checks (0 means the core may bootstrap). */
int runSelfTest(void)
{
    failures = 0;
    testGainDirection();
    testSaturation();
    testEnvelopeShape();
    testClosedLoopStep();
    testPredictionContinuity();
    if (failures == 0) {
        printf("[selftest] all checks passed\n");
    }
    return failures;
}
