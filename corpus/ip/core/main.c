/* Core controller main loop of the inverted pendulum Simplex system
 * (paper Fig. 1/2). Each 20 ms period the core reads the sensors,
 * publishes feedback, computes the safety control, asks the decision
 * module whether the non-core command is recoverable, and actuates.
 *
 * Known interaction points with the non-core subsystem, all through the
 * shared-memory regions declared in comm.c:
 *   - command region: monitored by the decision module;
 *   - status region: heartbeat consulted to skip the decision module
 *     when the non-core controller is down;
 *   - display region: UI mode/verbosity, and the supervisor pid the core
 *     signals on mode changes.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern IPFeedback *fbShm;
extern IPCommand  *cmdShm;
extern IPStatus   *statShm;
extern IPDisplay  *dispShm;

extern void initComm(void);
extern void publishFeedback(float track_pos, float track_vel,
                            float angle, float angle_vel, int seq);
extern float computeSafeControl(float track_pos, float track_vel,
                                float angle, float angle_vel);
extern float decisionModule(float safeControl, float track_pos,
                            float track_vel, float angle, float angle_vel,
                            IPCommand *cmd);
extern float clampVolts(float v);
extern int insideEnvelope(float track_pos, float track_vel,
                          float angle, float angle_vel);
extern int decisionAcceptCount(void);
extern int decisionRejectCount(void);
extern int coreSaturationCount(void);

extern float calibrateTrack(float raw);
extern float calibrateAngle(float raw);
extern float despikeTrack(float raw);
extern float despikeAngle(float raw);
extern float firTrackVel(float raw);
extern float firAngleVel(float raw);
extern int sensorPlausible(float track_pos, float angle);
extern int filterSpikeCount(void);
extern void telemetryRecord(float angle, float track_pos, float output,
                            int used_noncore);
extern void telemetryDump(void);
extern int runSelfTest(void);

/* Bias applied in tracking mode so the cart holds the UI setpoint; the
 * value itself is core-owned (a constant profile), only the mode switch
 * comes from the display region. */
static float trackingBias = 0.15f;

static int sequence = 0;
static int running = 1;

static void reportStatus(float output, float angle)
{
    int verbosity;
    int iterations;
    int restarts;
    float latency;

    verbosity = dispShm->verbosity;
    if (verbosity > 0) {
        printf("[core] u=%f angle=%f accept=%d reject=%d\n",
               output, angle, decisionAcceptCount(),
               decisionRejectCount());
    }
    if (verbosity > 1) {
        iterations = statShm->iterations;
        latency = statShm->last_latency;
        restarts = statShm->restarts;
        printf("[core] nc iter=%d latency=%f restarts=%d sat=%d\n",
               iterations, latency, restarts, coreSaturationCount());
    }
}

static void notifySupervisor(void)
{
    int pid;
    /* Signal the supervising process that a mode change happened. The
     * pid is read from the display region each time so a restarted UI
     * keeps working -- which is exactly the unmonitored non-core value
     * SafeFlow flags: a faulty UI can plant the core's own pid here.
     */
    pid = dispShm->supervisor_pid;
    kill(pid, SIGUSR1);
}

int main(void)
{
    float raw_track;
    float raw_track_vel;
    float raw_angle;
    float raw_angle_vel;
    float track_pos;
    float track_vel;
    float angle;
    float angle_vel;
    float safeControl;
    float output;
    int ncUp;
    int uiMode;
    int lastMode;

    if (runSelfTest() != 0) {
        printf("[core] self test failed, refusing to bootstrap\n");
        return 1;
    }
    initComm();
    lastMode = IP_MODE_BALANCE;
    track_pos = 0.0f;
    angle = 0.0f;

    while (running) {
        readSensors(&raw_track, &raw_track_vel, &raw_angle,
                    &raw_angle_vel);
        /* Sensor conditioning: calibration, spike rejection, low-pass;
         * an implausible sample keeps the previous good estimate. */
        if (sensorPlausible(raw_track, raw_angle)) {
            track_pos = despikeTrack(calibrateTrack(raw_track));
            angle = despikeAngle(calibrateAngle(raw_angle));
        }
        track_vel = firTrackVel(raw_track_vel);
        angle_vel = firAngleVel(raw_angle_vel);
        publishFeedback(track_pos, track_vel, angle, angle_vel, sequence);

        safeControl = computeSafeControl(track_pos, track_vel,
                                         angle, angle_vel);

        usleep(IP_PERIOD_US);

        lockShm();
        ncUp = statShm->nc_active;
        if (ncUp) {
            output = decisionModule(safeControl, track_pos, track_vel,
                                    angle, angle_vel, cmdShm);
        } else {
            output = safeControl;
        }
        unlockShm();

        uiMode = dispShm->mode;
        if (uiMode == IP_MODE_TRACKING) {
            output = clampVolts(output + trackingBias);
        }
        if (uiMode != lastMode) {
            notifySupervisor();
            lastMode = uiMode;
        }

        /*** SafeFlow Annotation assert(safe(output)); ***/
        sendControl(output);

        telemetryRecord(angle, track_pos, output, ncUp);
        reportStatus(output, angle);
        sequence = sequence + 1;
        if (insideEnvelope(track_pos, track_vel, angle, angle_vel) == 0) {
            printf("[core] left the envelope, halting (%d spikes)\n",
                   filterSpikeCount());
            telemetryDump();
            running = 0;
        }
    }
    return 0;
}
