/* Sensor conditioning for the core controller: calibration against the
 * factory tables, median-of-five spike rejection, and a short FIR
 * low-pass for the velocity estimates. Everything here operates on
 * core-owned values only (raw sensor samples), never on shared memory.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

/* Factory calibration for the track potentiometer and angle encoder. */
static float trackOffset = -0.0034f;
static float trackScale = 1.0021f;
static float angleOffset = 0.0011f;
static float angleScale = 0.9987f;

/* Median-of-five history per channel. */
static float trackHistory[5];
static float angleHistory[5];
static int historyFill = 0;

/* 5-tap FIR low-pass (normalized Hamming-ish taps). */
static float firTaps[5] = {0.08f, 0.24f, 0.36f, 0.24f, 0.08f};
static float firTrackDelay[5];
static float firAngleDelay[5];

static int spikeCount = 0;

float calibrateTrack(float raw)
{
    return (raw - trackOffset) * trackScale;
}

float calibrateAngle(float raw)
{
    return (raw - angleOffset) * angleScale;
}

/* Sorts a copy of five samples and returns the middle one. */
static float medianOfFive(float *window)
{
    float sorted[5];
    int i;
    int j;
    float tmp;

    for (i = 0; i < 5; i = i + 1) {
        sorted[i] = window[i];
    }
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 4 - i; j = j + 1) {
            if (sorted[j] > sorted[j + 1]) {
                tmp = sorted[j];
                sorted[j] = sorted[j + 1];
                sorted[j + 1] = tmp;
            }
        }
    }
    return sorted[2];
}

static void pushHistory(float *window, float sample)
{
    int i;
    for (i = 0; i < 4; i = i + 1) {
        window[i] = window[i + 1];
    }
    window[4] = sample;
}

/* Median-filtered track position; counts suppressed spikes. */
float despikeTrack(float raw)
{
    float median;

    pushHistory(trackHistory, raw);
    if (historyFill < 5) {
        historyFill = historyFill + 1;
        return raw;
    }
    median = medianOfFive(trackHistory);
    if (fabsf(raw - median) > 0.05f) {
        spikeCount = spikeCount + 1;
        return median;
    }
    return raw;
}

float despikeAngle(float raw)
{
    float median;

    pushHistory(angleHistory, raw);
    if (historyFill < 5) {
        return raw;
    }
    median = medianOfFive(angleHistory);
    if (fabsf(raw - median) > 0.08f) {
        spikeCount = spikeCount + 1;
        return median;
    }
    return raw;
}

static float firStep(float *delay, float sample)
{
    float acc;
    int i;

    for (i = 0; i < 4; i = i + 1) {
        delay[i] = delay[i + 1];
    }
    delay[4] = sample;
    acc = 0.0f;
    for (i = 0; i < 5; i = i + 1) {
        acc = acc + firTaps[i] * delay[i];
    }
    return acc;
}

float firTrackVel(float raw)
{
    return firStep(firTrackDelay, raw);
}

float firAngleVel(float raw)
{
    return firStep(firAngleDelay, raw);
}

/* Plausibility gate: a sensor sample outside the physical range of the
 * rig indicates a wiring fault; the caller falls back to the previous
 * good sample.
 */
int sensorPlausible(float track_pos, float angle)
{
    if (track_pos < -0.6f || track_pos > 0.6f) {
        return 0;
    }
    if (angle < -1.6f || angle > 1.6f) {
        return 0;
    }
    return 1;
}

int filterSpikeCount(void)
{
    return spikeCount;
}
