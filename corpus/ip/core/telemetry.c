/* Core-local telemetry: a ring buffer of recent control periods with
 * summary statistics, kept entirely in core memory (the UI gets its data
 * from the feedback region instead — this buffer exists so post-incident
 * analysis does not depend on any non-core component).
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

#define TELEM_RING 128

typedef struct TelemetrySample {
    float angle;
    float track_pos;
    float output;
    int   used_noncore;
} TelemetrySample;

static TelemetrySample ring[TELEM_RING];
static int head = 0;
static int filled = 0;

static float sumAngle = 0.0f;
static float maxAbsAngle = 0.0f;
static float maxAbsOutput = 0.0f;
static int totalSamples = 0;

void telemetryRecord(float angle, float track_pos, float output,
                     int used_noncore)
{
    TelemetrySample s;
    float a;
    float o;

    s.angle = angle;
    s.track_pos = track_pos;
    s.output = output;
    s.used_noncore = used_noncore;
    ring[head] = s;
    head = (head + 1) % TELEM_RING;
    if (filled < TELEM_RING) {
        filled = filled + 1;
    }

    a = fabsf(angle);
    o = fabsf(output);
    sumAngle = sumAngle + a;
    if (a > maxAbsAngle) {
        maxAbsAngle = a;
    }
    if (o > maxAbsOutput) {
        maxAbsOutput = o;
    }
    totalSamples = totalSamples + 1;
}

float telemetryMeanAbsAngle(void)
{
    if (totalSamples == 0) {
        return 0.0f;
    }
    return sumAngle / (float)totalSamples;
}

float telemetryMaxAbsAngle(void)
{
    return maxAbsAngle;
}

float telemetryMaxAbsOutput(void)
{
    return maxAbsOutput;
}

/* Fraction of the buffered periods that actuated the non-core command. */
float telemetryNoncoreShare(void)
{
    int i;
    int used;

    if (filled == 0) {
        return 0.0f;
    }
    used = 0;
    for (i = 0; i < filled; i = i + 1) {
        if (ring[i].used_noncore) {
            used = used + 1;
        }
    }
    return (float)used / (float)filled;
}

/* Dumps the buffered window; called from the envelope-exit path so the
 * tail of a failed run is preserved on the console.
 */
void telemetryDump(void)
{
    int i;
    int idx;

    printf("[telemetry] last %d periods (mean|angle|=%f max|u|=%f)\n",
           filled, telemetryMeanAbsAngle(), telemetryMaxAbsOutput());
    idx = head - filled;
    if (idx < 0) {
        idx = idx + TELEM_RING;
    }
    for (i = 0; i < filled; i = i + 1) {
        if (i % 16 == 0) {
            printf("[telemetry] angle=%f x=%f u=%f nc=%d\n",
                   ring[idx].angle, ring[idx].track_pos, ring[idx].output,
                   ring[idx].used_noncore);
        }
        idx = (idx + 1) % TELEM_RING;
    }
}
