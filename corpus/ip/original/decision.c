/* Pre-refactor version of the decision module, kept for the source-change
 * accounting of the evaluation. Here the recoverability check was inlined
 * in decisionModule; SafeFlow annotations apply at function granularity,
 * so the check had to be extracted into checkRecoverable (see the shipped
 * decision.c) before the monitoring function could be annotated.
 */
#include "../common/ipc_types.h"
#include "../common/sys.h"

extern float clampVolts(float v);
extern float predictAngle(float angle, float angle_vel, float volts);
extern float predictAngleVel(float angle, float angle_vel, float volts);
extern float predictTrack(float track_pos, float track_vel, float volts);
extern float envelopeValue(float track_pos, float track_vel,
                           float angle, float angle_vel);
extern float envelopeLevel(void);

extern IPCommand *cmdShm;

static int acceptCount = 0;
static int rejectCount = 0;

/* The monitoring function: returns the control to actuate this period. */
float decisionModule(float safeControl, float track_pos, float track_vel,
                     float angle, float angle_vel, IPCommand *cmd)
/*** SafeFlow Annotation assume(core(cmd, 0, sizeof(IPCommand))) ***/
{
    float volts;
    float next_angle;
    float next_angle_vel;
    float next_track;
    float next_value;
    int recoverable;

    recoverable = 0;
    if (cmd->valid != 0) {
        volts = cmd->control;
        if (volts <= IP_VOLT_LIMIT && volts >= -IP_VOLT_LIMIT) {
            next_angle = predictAngle(angle, angle_vel, volts);
            next_angle_vel = predictAngleVel(angle, angle_vel, volts);
            next_track = predictTrack(track_pos, track_vel, volts);
            next_value = envelopeValue(next_track, track_vel,
                                       next_angle, next_angle_vel);
            if (next_value < envelopeLevel()) {
                recoverable = 1;
            }
        }
    }
    if (recoverable) {
        acceptCount = acceptCount + 1;
        return clampVolts(cmd->control);
    }
    rejectCount = rejectCount + 1;
    return safeControl;
}

int decisionAcceptCount(void)
{
    return acceptCount;
}

int decisionRejectCount(void)
{
    return rejectCount;
}
