/* Shared-memory layout of the generic Simplex implementation: a Simplex
 * core that can be configured (through a plant-description region) for
 * different second-order plants. Seven segments are mapped by the core,
 * the adaptive non-core controller, the gain tuner, and the logger.
 */
#ifndef GS_TYPES_H
#define GS_TYPES_H

#define GS_SHM_KEY 6200
#define GS_PERIOD_US 10000
#define GS_OUT_LIMIT 10.0f

/* Plant configuration, written by the operator tooling (non-core). */
typedef struct GSConfig {
    int   nc_enabled;     /* run the adaptive controller at all?       */
    int   plant_type;     /* GS_PLANT_* selector                       */
    float inertia;        /* plant inertia estimate                    */
    float damping;        /* plant damping estimate                    */
    float setpoint_low;   /* profile limits                            */
    float setpoint_high;
} GSConfig;

/* Plant state feedback, published by the core each period. */
typedef struct GSFeedback {
    float y;              /* measured plant output                     */
    float ydot;           /* measured output rate                      */
    int   seq;
} GSFeedback;

/* Adaptive controller command. */
typedef struct GSCommand {
    float control;
    float confidence;
    int   seq;
    int   valid;
} GSCommand;

/* Adaptive controller status/heartbeat. */
typedef struct GSStatus {
    int   active;
    int   iterations;
    float adaptation_rate;
} GSStatus;

/* Tuner-proposed gain set, validated by the core's gain monitor. */
typedef struct GSGains {
    float kp;
    float kd;
    float ki;
    int   revision;
} GSGains;

/* Logger configuration. */
typedef struct GSLog {
    int   level;
    int   sink;
} GSLog;

/* Supervisory control: operating mode and supervisor process. */
typedef struct GSControl {
    int   mode;
    int   supervisor_pid;
    int   shutdown_request;
} GSControl;

#define GS_PLANT_SECOND_ORDER 0
#define GS_PLANT_INTEGRATOR 1

#define GS_MODE_AUTO 0
#define GS_MODE_MANUAL 1
#define GS_MODE_SHUTDOWN 2

#endif /* GS_TYPES_H */
