/* System interfaces used by the generic Simplex core. */
#ifndef GS_SYS_H
#define GS_SYS_H

extern int   shmget(int key, int size, int flags);
extern void *shmat(int shmid, void *addr, int flags);
extern int   shmdt(void *addr);
extern int   kill(int pid, int sig);
extern int   getpid(void);
extern int   printf(char *fmt, ...);
extern void  usleep(int usec);
extern float fabsf(float x);

extern void lockShm(void);
extern void unlockShm(void);
extern void actuate(float value);
extern void readPlantSensors(float *y, float *ydot);

#define SIGTERM 15
#define IPC_CREAT 512

#endif /* GS_SYS_H */
