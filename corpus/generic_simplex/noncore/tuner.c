/* Gain tuner for the generic Simplex system: proposes PD/PI gain sets
 * derived from recursive least-squares estimates of the plant
 * parameters. The core's gain monitor validates every proposal against a
 * verified stability box before use.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSConfig   *cfgShm;
extern GSFeedback *fbShm;
extern GSGains    *gainShm;

/* RLS estimator state (2-parameter model: gain and time constant). */
static float estGain = 1.0f;
static float estTau = 0.5f;
static float p00 = 10.0f;
static float p11 = 10.0f;
static float forgetting = 0.98f;

static float lastY = 0.0f;
static int revision = 0;

static void rlsUpdate(float y, float ydot)
{
    float prediction;
    float innovation;
    float k0;
    float k1;

    prediction = estGain * lastY - estTau * ydot;
    innovation = y - prediction;

    k0 = p00 * lastY / (forgetting + p00 * lastY * lastY);
    k1 = p11 * ydot / (forgetting + p11 * ydot * ydot);

    estGain = estGain + k0 * innovation;
    estTau = estTau - k1 * innovation;

    p00 = (p00 - k0 * lastY * p00) / forgetting;
    p11 = (p11 - k1 * ydot * p11) / forgetting;
    if (p00 > 100.0f) {
        p00 = 100.0f;
    }
    if (p11 > 100.0f) {
        p11 = 100.0f;
    }
    lastY = y;
}

static void proposeGains(void)
{
    float kp;
    float kd;
    float ki;
    float safeEstimate;

    /* Pole placement against the estimated plant. */
    safeEstimate = estGain;
    if (safeEstimate < 0.1f) {
        safeEstimate = 0.1f;
    }
    kp = 2.2f / safeEstimate;
    kd = 0.9f * estTau;
    ki = 0.15f * kp;

    revision = revision + 1;
    gainShm->kp = kp;
    gainShm->kd = kd;
    gainShm->ki = ki;
    gainShm->revision = revision;
}

int tunerMain(void)
{
    GSFeedback snapshot;
    int cycles;

    cycles = 0;
    for (;;) {
        lockShm();
        snapshot = *fbShm;
        unlockShm();

        rlsUpdate(snapshot.y, snapshot.ydot);
        cycles = cycles + 1;
        if (cycles % 50 == 0 && cfgShm->nc_enabled) {
            proposeGains();
        }
        usleep(GS_PERIOD_US * 5);
    }
    return 0;
}
