/* Telemetry logger for the generic Simplex system: samples the shared
 * regions into a ring buffer and periodically flushes them to the
 * console or a trace sink. Entirely non-core.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSFeedback *fbShm;
extern GSCommand  *cmdShm;
extern GSStatus   *statShm;
extern GSLog      *logShm;

#define LOG_RING 256

typedef struct LogSample {
    float y;
    float ydot;
    float control;
    float confidence;
    int   seq;
} LogSample;

static LogSample ring[LOG_RING];
static int head = 0;
static int count = 0;
static int dropped = 0;

static void sample(void)
{
    LogSample s;

    lockShm();
    s.y = fbShm->y;
    s.ydot = fbShm->ydot;
    s.seq = fbShm->seq;
    s.control = cmdShm->control;
    s.confidence = cmdShm->confidence;
    unlockShm();

    if (count == LOG_RING) {
        dropped = dropped + 1;
    } else {
        count = count + 1;
    }
    ring[head] = s;
    head = (head + 1) % LOG_RING;
}

static void flush(void)
{
    int i;
    int idx;
    int level;

    level = logShm->level;
    if (level <= 0) {
        count = 0;
        return;
    }
    idx = head - count;
    if (idx < 0) {
        idx = idx + LOG_RING;
    }
    for (i = 0; i < count; i = i + 1) {
        printf("[log] seq=%d y=%f u=%f conf=%f\n",
               ring[idx].seq, ring[idx].y, ring[idx].control,
               ring[idx].confidence);
        idx = (idx + 1) % LOG_RING;
    }
    if (dropped > 0) {
        printf("[log] dropped %d samples\n", dropped);
        dropped = 0;
    }
    count = 0;
}

int loggerMain(void)
{
    int cycles;

    cycles = 0;
    for (;;) {
        sample();
        cycles = cycles + 1;
        if (cycles % 100 == 0) {
            flush();
        }
        if (statShm->active == 0 && logShm->sink != 0) {
            printf("[log] adaptive controller inactive\n");
        }
        usleep(GS_PERIOD_US);
    }
    return 0;
}
