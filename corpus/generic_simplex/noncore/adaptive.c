/* Adaptive (MRAC-style) non-core controller for the generic Simplex
 * system: adjusts feedforward/feedback terms online to track a reference
 * model. Untrusted by design; the core accepts its output only through
 * the decision module.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSConfig   *cfgShm;
extern GSFeedback *fbShm;
extern GSCommand  *cmdShm;
extern GSStatus   *statShm;

/* Reference model state. */
static float modelY = 0.0f;
static float modelRate = 0.6f;

/* Adaptive parameters. */
static float thetaFf = 1.0f;
static float thetaFb = 0.5f;
static float gamma0 = 0.05f;

static int iterations = 0;
static int lastSeq = -1;

static float referenceModel(float setpoint)
{
    modelY = modelY + 0.01f * modelRate * (setpoint - modelY);
    return modelY;
}

static void adaptParameters(float error, float setpoint, float y)
{
    thetaFf = thetaFf - gamma0 * error * setpoint;
    thetaFb = thetaFb + gamma0 * error * y;
    if (thetaFf > 5.0f) {
        thetaFf = 5.0f;
    }
    if (thetaFf < -5.0f) {
        thetaFf = -5.0f;
    }
    if (thetaFb > 5.0f) {
        thetaFb = 5.0f;
    }
    if (thetaFb < -5.0f) {
        thetaFb = -5.0f;
    }
}

static float confidence(float error)
{
    float e;
    e = fabsf(error);
    if (e > 1.0f) {
        return 0.0f;
    }
    return 1.0f - e;
}

int adaptiveMain(void)
{
    GSFeedback snapshot;
    float setpoint;
    float ym;
    float error;
    float u;

    for (;;) {
        lockShm();
        snapshot = *fbShm;
        unlockShm();

        if (snapshot.seq != lastSeq && cfgShm->nc_enabled) {
            lastSeq = snapshot.seq;
            setpoint = 0.5f * (cfgShm->setpoint_low
                               + cfgShm->setpoint_high);
            ym = referenceModel(setpoint);
            error = snapshot.y - ym;
            adaptParameters(error, setpoint, snapshot.y);

            u = thetaFf * setpoint - thetaFb * snapshot.y
              - 0.8f * snapshot.ydot;
            if (u > GS_OUT_LIMIT) {
                u = GS_OUT_LIMIT;
            }
            if (u < -GS_OUT_LIMIT) {
                u = -GS_OUT_LIMIT;
            }

            lockShm();
            cmdShm->control = u;
            cmdShm->confidence = confidence(error);
            cmdShm->seq = snapshot.seq;
            cmdShm->valid = 1;
            unlockShm();

            iterations = iterations + 1;
            statShm->active = 1;
            statShm->iterations = iterations;
            statShm->adaptation_rate = gamma0;
        }
        usleep(GS_PERIOD_US / 2);
    }
    return 0;
}
