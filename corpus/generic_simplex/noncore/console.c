/* Operator console for the generic Simplex system (non-core): edits the
 * plant configuration, switches modes, and displays live state. This is
 * the component whose writes the core treats as untrusted configuration.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSConfig   *cfgShm;
extern GSFeedback *fbShm;
extern GSStatus   *statShm;
extern GSControl  *ctlShm;
extern GSLog      *logShm;

extern int readKeyNonBlocking(void);

static int frame = 0;

static void showState(void)
{
    printf("=== generic simplex console (frame %d) ===\n", frame);
    printf("y=%f ydot=%f seq=%d\n", fbShm->y, fbShm->ydot, fbShm->seq);
    printf("plant=%d nc_enabled=%d mode=%d\n", cfgShm->plant_type,
           cfgShm->nc_enabled, ctlShm->mode);
    printf("adaptive: active=%d iter=%d rate=%f\n", statShm->active,
           statShm->iterations, statShm->adaptation_rate);
}

static void editConfig(int key)
{
    if (key == 'p') {
        if (cfgShm->plant_type == GS_PLANT_SECOND_ORDER) {
            cfgShm->plant_type = GS_PLANT_INTEGRATOR;
        } else {
            cfgShm->plant_type = GS_PLANT_SECOND_ORDER;
        }
    }
    if (key == 'e') {
        cfgShm->nc_enabled = 1 - cfgShm->nc_enabled;
    }
    if (key == 'i') {
        cfgShm->inertia = cfgShm->inertia * 1.05f;
    }
    if (key == 'I') {
        cfgShm->inertia = cfgShm->inertia * 0.95f;
    }
    if (key == 'd') {
        cfgShm->damping = cfgShm->damping * 1.05f;
    }
    if (key == 'l') {
        logShm->level = (logShm->level + 1) % 3;
    }
}

static void editMode(int key)
{
    if (key == 'a') {
        ctlShm->mode = GS_MODE_AUTO;
    }
    if (key == 'm') {
        ctlShm->mode = GS_MODE_MANUAL;
    }
    if (key == 'q') {
        ctlShm->mode = GS_MODE_SHUTDOWN;
    }
    if (key == 's') {
        if (cfgShm->setpoint_high < 2.0f) {
            cfgShm->setpoint_high = cfgShm->setpoint_high + 0.1f;
        }
    }
    if (key == 'S') {
        if (cfgShm->setpoint_high > cfgShm->setpoint_low + 0.1f) {
            cfgShm->setpoint_high = cfgShm->setpoint_high - 0.1f;
        }
    }
}

int consoleMain(void)
{
    int key;

    ctlShm->supervisor_pid = getpid();
    cfgShm->setpoint_low = -1.0f;
    cfgShm->setpoint_high = 1.0f;
    cfgShm->nc_enabled = 1;

    for (;;) {
        showState();
        key = readKeyNonBlocking();
        if (key != 0) {
            editConfig(key);
            editMode(key);
        }
        frame = frame + 1;
        usleep(100000);
    }
    return 0;
}
