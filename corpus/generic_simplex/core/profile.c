/* Reference shaping for the generic Simplex core: slew limiting, bounded
 * first-order smoothing, and the verified plant-model library backing the
 * decision module's recoverability predictions. Pure core code: every
 * value originates from core constants or core-held state.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

/* Slew limiter state. */
static float shapedSetpoint = 0.0f;
static float slewPerPeriod = 0.04f;

/* First-order smoothing. */
static float smoothState = 0.0f;
static float smoothAlpha = 0.2f;

/* Per-plant-family linear models (a, b) of y' = a y + b u, verified
 * offline. Indexed by the GS_PLANT_* constants. */
static float modelA[2] = {-0.8f, 0.0f};
static float modelB[2] = {1.6f, 1.1f};

float shapeSetpoint(float target)
{
    float delta;

    delta = target - shapedSetpoint;
    if (delta > slewPerPeriod) {
        delta = slewPerPeriod;
    }
    if (delta < -slewPerPeriod) {
        delta = -slewPerPeriod;
    }
    shapedSetpoint = shapedSetpoint + delta;

    smoothState = smoothState + smoothAlpha * (shapedSetpoint - smoothState);
    return smoothState;
}

void resetShaping(float value)
{
    shapedSetpoint = value;
    smoothState = value;
}

/* One-period prediction of the plant output under control u, using the
 * verified model for the given family. */
float predictOutput(float y, float u, int plant_type)
{
    float a;
    float b;
    int idx;

    idx = plant_type;
    if (idx < 0 || idx > 1) {
        idx = 0;
    }
    a = modelA[idx];
    b = modelB[idx];
    return y + 0.01f * (a * y + b * u);
}

/* Steady-state output under constant u (integrator family saturates the
 * prediction horizon instead). */
float steadyStateOutput(float u, int plant_type)
{
    int idx;

    idx = plant_type;
    if (idx < 0 || idx > 1) {
        idx = 0;
    }
    if (idx == GS_PLANT_INTEGRATOR) {
        return u * 10.0f;  /* horizon-clipped ramp */
    }
    return -modelB[idx] * u / modelA[idx];
}

/* Verified recoverable set: |y| below this bound can always be brought
 * back by the safety controller within its actuator budget. */
float recoverableBound(int plant_type)
{
    if (plant_type == GS_PLANT_INTEGRATOR) {
        return 2.4f;
    }
    return 3.0f;
}
