/* The three monitoring functions of the generic Simplex core. Each one
 * carries an assume(core(...)) annotation: the non-core values it reads
 * are checked for safety/recoverability before use, so reads of those
 * regions are safe within the function and its callees.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSCommand *cmdShm;
extern GSGains   *gainShm;
extern GSStatus  *statShm;

extern float clampOutput(float v);
extern float lastSafeControl(void);

static int acceptCount = 0;
static int gainRejects = 0;

/* Recoverability: the adaptive command is accepted only when it is in
 * actuator range, self-declared valid, and close enough to the safety
 * command that one period of it cannot leave the recoverable set.
 */
float decisionModule(float safeControl, float y, float ydot)
/*** SafeFlow Annotation assume(core(cmdShm, 0, sizeof(GSCommand))) ***/
{
    float candidate;
    float predicted;

    if (cmdShm->valid == 0) {
        return safeControl;
    }
    candidate = cmdShm->control;
    if (candidate > GS_OUT_LIMIT || candidate < -GS_OUT_LIMIT) {
        return safeControl;
    }
    if (cmdShm->confidence < 0.5f) {
        return safeControl;
    }
    predicted = y + 0.01f * ydot + 0.0001f * candidate;
    if (fabsf(predicted) > 3.0f) {
        return safeControl;
    }
    if (fabsf(candidate - safeControl) > 4.0f) {
        return safeControl;
    }
    acceptCount = acceptCount + 1;
    return clampOutput(candidate);
}

/* Gain monitor: tuner-proposed gains are admitted only inside a verified
 * stability box for the configured plant family.
 */
float gainMonitor(float fallbackGain)
/*** SafeFlow Annotation assume(core(gainShm, 0, sizeof(GSGains))) ***/
{
    float kp;
    float kd;

    kp = gainShm->kp;
    kd = gainShm->kd;
    if (kp < 0.5f || kp > 12.0f) {
        gainRejects = gainRejects + 1;
        return fallbackGain;
    }
    if (kd < 0.1f || kd > 6.0f) {
        gainRejects = gainRejects + 1;
        return fallbackGain;
    }
    if (gainShm->ki < 0.0f || gainShm->ki > 1.0f) {
        gainRejects = gainRejects + 1;
        return fallbackGain;
    }
    return kp;
}

/* Status monitor: the heartbeat is bounds-checked before the core trusts
 * the adaptive controller to be alive.
 */
int pollStatus(void)
/*** SafeFlow Annotation assume(core(statShm, 0, sizeof(GSStatus))) ***/
{
    int active;
    int iter;

    active = statShm->active;
    iter = statShm->iterations;
    if (active != 0 && active != 1) {
        return 0;
    }
    if (iter < 0) {
        return 0;
    }
    if (statShm->adaptation_rate < 0.0f) {
        return 0;
    }
    return active;
}

int decisionAcceptCount(void)
{
    return acceptCount;
}

int gainRejectCount(void)
{
    return gainRejects;
}
