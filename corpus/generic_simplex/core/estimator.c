/* Core-side state observer for the generic Simplex controller: a fixed-
 * gain Luenberger observer against the verified plant models, used to
 * cross-check the sensor readings and to bridge short sensor dropouts.
 * Operates exclusively on core-held values.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern float predictOutput(float y, float u, int plant_type);

/* Observer state. */
static float yHat = 0.0f;
static float ydotHat = 0.0f;
static float observerGainY = 0.4f;
static float observerGainYd = 0.15f;

/* Dropout bridging. */
static int dropoutPeriods = 0;
static int bridgedTotal = 0;

/* Residual statistics for sensor cross-checking. */
static float residualAccum = 0.0f;
static float residualWorst = 0.0f;
static int residualSamples = 0;

void observerStep(float measured_y, float measured_ydot, float applied_u,
                  int plant_type)
{
    float predicted;
    float residual;

    predicted = predictOutput(yHat, applied_u, plant_type);
    residual = measured_y - predicted;

    yHat = predicted + observerGainY * residual;
    ydotHat = ydotHat
            + observerGainYd * (measured_ydot - ydotHat);

    if (residual < 0.0f) {
        residual = -residual;
    }
    residualAccum = residualAccum + residual;
    if (residual > residualWorst) {
        residualWorst = residual;
    }
    residualSamples = residualSamples + 1;
}

/* True when the latest measurement is consistent with the model within
 * the cross-check band; a disagreeing sensor suggests a wiring fault. */
int measurementConsistent(float measured_y)
{
    float diff;

    diff = measured_y - yHat;
    if (diff < 0.0f) {
        diff = -diff;
    }
    return diff < 0.5f;
}

/* During a dropout the observer output substitutes the sensor, bounded
 * to a handful of periods before the core must fail safe. */
float bridgeDropout(void)
{
    dropoutPeriods = dropoutPeriods + 1;
    bridgedTotal = bridgedTotal + 1;
    return yHat;
}

void dropoutEnded(void)
{
    dropoutPeriods = 0;
}

int dropoutTooLong(void)
{
    return dropoutPeriods > 5;
}

float observedOutput(void)
{
    return yHat;
}

float observedRate(void)
{
    return ydotHat;
}

float meanResidual(void)
{
    if (residualSamples == 0) {
        return 0.0f;
    }
    return residualAccum / (float)residualSamples;
}

float worstResidual(void)
{
    return residualWorst;
}

int bridgedPeriods(void)
{
    return bridgedTotal;
}

void resetObserver(float y0)
{
    yHat = y0;
    ydotHat = 0.0f;
    dropoutPeriods = 0;
    residualAccum = 0.0f;
    residualWorst = 0.0f;
    residualSamples = 0;
}
