/* Generic safety controller: a PD law with per-plant-family gain
 * schedules. BUG (per the paper's evaluation): currentOutput() and
 * currentRate() read the plant state back from the feedback region in
 * shared memory instead of using the core's own sensor copies. The
 * feedback region is writable by every non-core process, so a faulty or
 * malicious component can replace the state the safety law acts on —
 * the erroneous value dependency SafeFlow reports for this system.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSFeedback *fbShm;

/* Conservative base gains; scheduled per plant family at run time. */
static float basKp = 4.0f;
static float basKd = 1.3f;

static float integratorState = 0.0f;
static float lastSafe = 0.0f;

float clampOutput(float v)
{
    if (v > GS_OUT_LIMIT) {
        return GS_OUT_LIMIT;
    }
    if (v < -GS_OUT_LIMIT) {
        return -GS_OUT_LIMIT;
    }
    return v;
}

/* Reads the measured plant output... from shared memory (the bug). */
static float currentOutput(void)
{
    return fbShm->y;
}

/* Reads the measured output rate... from shared memory (the bug). */
static float currentRate(void)
{
    return fbShm->ydot;
}

/* The safety law: PD toward the setpoint, integrator for steady state. */
float computeSafeControl(float setpoint, int plant_type)
{
    float y;
    float ydot;
    float err;
    float u;
    float kp;
    float kd;

    y = currentOutput();
    ydot = currentRate();
    err = setpoint - y;

    kp = basKp;
    kd = basKd;
    if (plant_type == GS_PLANT_INTEGRATOR) {
        kp = basKp * 0.5f;
        kd = basKd * 1.6f;
    }

    integratorState = integratorState + 0.01f * err;
    if (integratorState > 2.0f) {
        integratorState = 2.0f;
    }
    if (integratorState < -2.0f) {
        integratorState = -2.0f;
    }

    u = kp * err - kd * ydot + 0.4f * integratorState;
    u = clampOutput(u);
    lastSafe = u;
    return u;
}

float lastSafeControl(void)
{
    return lastSafe;
}

/* The core's own base gain, used by the tuner validation as a fallback;
 * a pure core value (the clean critical datum the system also asserts).
 */
float coreBaseGain(void)
{
    return basKp;
}
