/* Core-side health accounting for the generic Simplex controller: period
 * jitter tracking, consecutive-rejection streaks, and the escalation
 * ladder that decides when the core should stop consulting the adaptive
 * controller altogether. All state is core-owned.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

/* Escalation levels. */
#define WD_OK 0
#define WD_DEGRADED 1
#define WD_ISOLATED 2

static int level = WD_OK;
static int rejectStreak = 0;
static int acceptStreak = 0;

/* Jitter statistics over the most recent periods. */
static float jitterAccum = 0.0f;
static float jitterWorst = 0.0f;
static int jitterSamples = 0;

void watchdogPeriod(float measured_period_ms)
{
    float jitter;

    jitter = measured_period_ms - 10.0f;
    if (jitter < 0.0f) {
        jitter = -jitter;
    }
    jitterAccum = jitterAccum + jitter;
    if (jitter > jitterWorst) {
        jitterWorst = jitter;
    }
    jitterSamples = jitterSamples + 1;
}

float watchdogMeanJitter(void)
{
    if (jitterSamples == 0) {
        return 0.0f;
    }
    return jitterAccum / (float)jitterSamples;
}

float watchdogWorstJitter(void)
{
    return jitterWorst;
}

/* Called once per period with the decision outcome; maintains the
 * escalation level. Twenty consecutive rejections degrade the adaptive
 * controller; a hundred isolate it until fifty clean accepts. */
void watchdogDecision(int accepted)
{
    if (accepted) {
        acceptStreak = acceptStreak + 1;
        rejectStreak = 0;
        if (level == WD_ISOLATED && acceptStreak > 50) {
            level = WD_DEGRADED;
            acceptStreak = 0;
        } else if (level == WD_DEGRADED && acceptStreak > 50) {
            level = WD_OK;
            acceptStreak = 0;
        }
        return;
    }
    rejectStreak = rejectStreak + 1;
    acceptStreak = 0;
    if (rejectStreak > 100) {
        level = WD_ISOLATED;
    } else if (rejectStreak > 20 && level == WD_OK) {
        level = WD_DEGRADED;
    }
}

/* The core consults the adaptive controller only below isolation. */
int watchdogAllowsNoncore(void)
{
    if (level == WD_ISOLATED) {
        return 0;
    }
    return 1;
}

int watchdogLevel(void)
{
    return level;
}
