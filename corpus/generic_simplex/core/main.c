/* Core loop of the generic Simplex implementation. The plant family and
 * feature switches come from a configuration region written by operator
 * tooling; the adaptive controller, gain tuner, and logger are separate
 * non-core processes. Critical data: the actuator output, the setpoint
 * fed to the safety law, the applied proportional gain, and the core's
 * base gain — all asserted safe before use; plus the pid handed to kill
 * on shutdown (implicitly critical).
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSLog     *logShm;
extern GSControl *ctlShm;

extern void initComm(void);
extern void publishFeedback(float y, float ydot, int seq);
extern int configNcEnabled(void);
extern int configPlantType(void);
extern float computeSafeControl(float setpoint, int plant_type);
extern float lastSafeControl(void);
extern float coreBaseGain(void);
extern float clampOutput(float v);
extern float decisionModule(float safeControl, float y, float ydot);
extern float gainMonitor(float fallbackGain);
extern int pollStatus(void);
extern int decisionAcceptCount(void);
extern int gainRejectCount(void);

extern float shapeSetpoint(float target);
extern void resetShaping(float value);
extern void observerStep(float measured_y, float measured_ydot,
                         float applied_u, int plant_type);
extern int measurementConsistent(float measured_y);
extern float meanResidual(void);
extern void resetObserver(float y0);
extern void watchdogPeriod(float measured_period_ms);
extern void watchdogDecision(int accepted);
extern int watchdogAllowsNoncore(void);
extern int watchdogLevel(void);
extern float watchdogMeanJitter(void);

static int running = 1;
static int sequence = 0;

/* Operator-held setpoint used in manual mode: a core-owned constant. */
static float manualHold = 0.0f;

/* Reference profile for automatic operation, scheduled per plant family.
 * Both arms produce core-computed values; only the selection depends on
 * the (non-core) configuration.
 */
static float profileSetpoint(int plant_type, int tick)
{
    float phase;
    phase = (float)(tick % 600) / 600.0f;
    if (plant_type == GS_PLANT_INTEGRATOR) {
        if (phase < 0.5f) {
            return 0.8f;
        }
        return -0.8f;
    }
    if (phase < 0.25f) {
        return 0.5f;
    }
    if (phase < 0.75f) {
        return 1.2f;
    }
    return 0.5f;
}

static void logPeriod(float output, float setpoint)
{
    int level;
    level = logShm->level;
    if (level > 0) {
        printf("[gs] u=%f sp=%f accepted=%d\n", output, setpoint,
               decisionAcceptCount());
    }
    if (level > 1) {
        printf("[gs] safe=%f gain_rejects=%d\n", lastSafeControl(),
               gainRejectCount());
    }
}

int main(void)
{
    float y;
    float ydot;
    float setpoint;
    float safeControl;
    float output;
    float appliedGain;
    float baseGain;
    int plantType;
    int ncEnabled;
    int mode;
    int pid;

    initComm();

    baseGain = coreBaseGain();
    /*** SafeFlow Annotation assert(safe(baseGain)); ***/
    printf("[gs] core up, base gain %f\n", baseGain);

    while (running) {
        readPlantSensors(&y, &ydot);
        publishFeedback(y, ydot, sequence);

        mode = ctlShm->mode;
        plantType = configPlantType();
        ncEnabled = configNcEnabled();

        if (mode == GS_MODE_MANUAL) {
            setpoint = shapeSetpoint(manualHold);
        } else {
            setpoint = shapeSetpoint(profileSetpoint(plantType, sequence));
        }
        /*** SafeFlow Annotation assert(safe(setpoint)); ***/

        appliedGain = gainMonitor(baseGain);
        if (plantType == GS_PLANT_INTEGRATOR) {
            appliedGain = appliedGain * 0.5f;
        }
        if (mode == GS_MODE_MANUAL) {
            appliedGain = appliedGain * 0.8f;
        }
        /*** SafeFlow Annotation assert(safe(appliedGain)); ***/

        safeControl = computeSafeControl(setpoint, plantType);

        if (ncEnabled && watchdogAllowsNoncore() && pollStatus()) {
            output = decisionModule(safeControl, y, ydot);
            watchdogDecision(1);
        } else {
            output = safeControl;
            watchdogDecision(0);
        }

        /*** SafeFlow Annotation assert(safe(output)); ***/
        actuate(output);

        observerStep(y, ydot, output, plantType);
        if (!measurementConsistent(y)) {
            printf("[gs] sensor/model residual high (mean %f)\n",
                   meanResidual());
        }

        logPeriod(output, setpoint);
        usleep(GS_PERIOD_US);
        watchdogPeriod(10.0f);
        sequence = sequence + 1;

        if (mode == GS_MODE_SHUTDOWN) {
            pid = ctlShm->supervisor_pid;
            kill(pid, SIGTERM);
            running = 0;
        }
    }
    return 0;
}
