/* Plant-configuration access for the generic Simplex core. The
 * configuration region is written by operator tooling that is not part
 * of the core subsystem, so reads from it are unmonitored non-core
 * values; the core is careful to use them only to select between
 * independently safe control paths (SafeFlow still reports the control
 * dependence for manual review — the paper's false-positive class).
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

extern GSConfig *cfgShm;

static int cachedPlantType = GS_PLANT_SECOND_ORDER;
static int cachedNcEnabled = 0;

/* Reads whether the adaptive (non-core) controller should be consulted. */
int configNcEnabled(void)
{
    cachedNcEnabled = cfgShm->nc_enabled;
    return cachedNcEnabled;
}

/* Reads the configured plant family. */
int configPlantType(void)
{
    cachedPlantType = cfgShm->plant_type;
    return cachedPlantType;
}
