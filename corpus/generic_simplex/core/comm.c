/* Shared-memory initialization for the generic Simplex core. Seven typed
 * regions are carved out of one segment; every region is conservatively
 * declared non-core because operator tooling, the adaptive controller,
 * the tuner, and the logger all map the segment writable.
 */
#include "../common/gs_types.h"
#include "../common/sys.h"

GSConfig   *cfgShm;
GSFeedback *fbShm;
GSCommand  *cmdShm;
GSStatus   *statShm;
GSGains    *gainShm;
GSLog      *logShm;
GSControl  *ctlShm;

static int gsSegmentId;

/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
    void *base;
    char *cursor;
    int total;

    total = sizeof(GSConfig) + sizeof(GSFeedback) + sizeof(GSCommand)
          + sizeof(GSStatus) + sizeof(GSGains) + sizeof(GSLog)
          + sizeof(GSControl);
    gsSegmentId = shmget(GS_SHM_KEY, total, IPC_CREAT);
    base = shmat(gsSegmentId, 0, 0);

    cursor = (char *) base;
    cfgShm = (GSConfig *) cursor;
    cursor = cursor + sizeof(GSConfig);
    fbShm = (GSFeedback *) cursor;
    cursor = cursor + sizeof(GSFeedback);
    cmdShm = (GSCommand *) cursor;
    cursor = cursor + sizeof(GSCommand);
    statShm = (GSStatus *) cursor;
    cursor = cursor + sizeof(GSStatus);
    gainShm = (GSGains *) cursor;
    cursor = cursor + sizeof(GSGains);
    logShm = (GSLog *) cursor;
    cursor = cursor + sizeof(GSLog);
    ctlShm = (GSControl *) cursor;

    /*** SafeFlow Annotation assume(shmvar(cfgShm, sizeof(GSConfig))) ***/
    /*** SafeFlow Annotation assume(shmvar(fbShm, sizeof(GSFeedback))) ***/
    /*** SafeFlow Annotation assume(shmvar(cmdShm, sizeof(GSCommand))) ***/
    /*** SafeFlow Annotation assume(shmvar(statShm, sizeof(GSStatus))) ***/
    /*** SafeFlow Annotation assume(shmvar(gainShm, sizeof(GSGains))) ***/
    /*** SafeFlow Annotation assume(shmvar(logShm, sizeof(GSLog))) ***/
    /*** SafeFlow Annotation assume(shmvar(ctlShm, sizeof(GSControl))) ***/
    /*** SafeFlow Annotation assume(noncore(cfgShm)) ***/
    /*** SafeFlow Annotation assume(noncore(fbShm)) ***/
    /*** SafeFlow Annotation assume(noncore(cmdShm)) ***/
    /*** SafeFlow Annotation assume(noncore(statShm)) ***/
    /*** SafeFlow Annotation assume(noncore(gainShm)) ***/
    /*** SafeFlow Annotation assume(noncore(logShm)) ***/
    /*** SafeFlow Annotation assume(noncore(ctlShm)) ***/
}

/* Publishes the measured plant output for the non-core components. */
void publishFeedback(float y, float ydot, int seq)
{
    lockShm();
    fbShm->y = y;
    fbShm->ydot = ydot;
    fbShm->seq = seq;
    unlockShm();
}
