/* Sample smoothing for the rangelab controller. The smoothing window is
 * clamped by windowSize rather than a literal loop bound, so the A2
 * array obligation in rlSmooth is only dischargeable with the
 * interprocedural value-range analysis; rlTail deliberately walks past
 * the ring and must be reported in every configuration.
 */
#include "../common/rl.h"
#include "../common/sys.h"

extern RlSample *samples;

/* Clamp the requested smoothing window to the supported [4, 12] range. */
static int windowSize(int request)
{
    if (request < 4) {
        return 4;
    }
    if (request > 12) {
        return 12;
    }
    return request;
}

/* Mean of the first windowSize(request) samples. The loop bound n is not
 * a compile-time constant; its provable range [4, 12] bounds the index
 * to [0, 11], inside the RL_SAMPLES-element ring. */
float rlSmooth(int request)
{
    float acc;
    int n;
    int i;

    n = windowSize(request);
    acc = 0.0f;
    for (i = 0; i < n; i++) {
        acc = acc + samples[i].v;
    }
    return acc / (float) n;
}

/* Diagnostic "tail energy": reads four slots past the end of the ring.
 * The index range [16, 19] provably exceeds the region, so this is both
 * an A2 violation and a shm-bounds-const finding. */
float rlTail(void)
{
    float acc;
    int j;

    acc = 0.0f;
    for (j = 16; j < 20; j++) {
        acc = acc + samples[j].v;
    }
    return acc;
}
