/* Shared-memory initialization for the rangelab core controller. The
 * initializing function performs the one untyped shmat cast and carves
 * the segment into the sample ring and the status block; the
 * shmvar/noncore post-conditions declare the regions for the analysis.
 */
#include "../common/rl.h"
#include "../common/sys.h"

RlSample *samples;
RlStatus *status;

static int shmSegmentId;

/*** SafeFlow Annotation shminit ***/
void initRl(void)
{
    void *shmStart;
    char *cursor;
    int total;

    total = RL_SAMPLES * sizeof(RlSample) + sizeof(RlStatus);
    shmSegmentId = shmget(RL_SHM_KEY, total, IPC_CREAT);
    shmStart = shmat(shmSegmentId, 0, 0);

    cursor = (char *) shmStart;
    samples = (RlSample *) cursor;
    cursor = cursor + RL_SAMPLES * sizeof(RlSample);
    status = (RlStatus *) cursor;

    /*** SafeFlow Annotation assume(shmvar(samples, 16 * sizeof(RlSample))) ***/
    /*** SafeFlow Annotation assume(shmvar(status, sizeof(RlStatus))) ***/
    /*** SafeFlow Annotation assume(noncore(status)) ***/
}
