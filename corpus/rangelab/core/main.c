/* Core loop of the rangelab controller. The supervisor's sequence number
 * is an unmonitored non-core read; masking it to [0, 7] makes the mode
 * branch statically decided, so the control dependence of `output` on
 * the tainted band is a false positive the range analysis prunes.
 */
#include "../common/rl.h"
#include "../common/sys.h"

extern RlSample *samples;
extern RlStatus *status;

extern void initRl(void);
extern float rlSmooth(int request);
extern float rlTail(void);

/* Fallback control value, independent of shared state. */
static float computeSafe(void)
{
    return 0.5f;
}

int main(void)
{
    float output;
    int raw;
    int band;

    initRl();
    while (1) {
        lockShm();
        raw = status->seq;      /* unmonitored non-core read (warning) */
        unlockShm();
        band = raw & 7;         /* provably in [0, 7] */
        if (band < 8) {
            band = band + 1;    /* 1-based band; the skip edge is dead */
        }

        if (band < 16) {
            output = rlSmooth(4);
        } else {
            output = computeSafe();
        }

        /*** SafeFlow Annotation assert(safe(output)); ***/
        sendControl(output);

        printf("[rangelab] tail energy %f\n", rlTail());
        usleep(RL_PERIOD_US);
    }
    return 0;
}
