/* Declarations of the system interfaces the rangelab controller uses.
 * The SafeFlow analyzer models these by signature only. */
#ifndef RL_SYS_H
#define RL_SYS_H

extern int   shmget(int key, int size, int flags);
extern void *shmat(int shmid, void *addr, int flags);
extern int   printf(char *fmt, ...);
extern void  usleep(int usec);

extern void  lockShm(void);
extern void  unlockShm(void);
extern void  sendControl(float volts);
extern float readSetpoint(void);

#define IPC_CREAT 512
#define RL_PERIOD_US 10000

#endif /* RL_SYS_H */
