/* Shared-memory layout of the range-analysis laboratory system: a small
 * smoothing controller whose array accesses are bounded by clamped
 * arguments rather than literal loop constants — the shapes only the
 * interprocedural value-range analysis can discharge.
 *
 *   samples - RL_SAMPLES plant samples published by the core side
 *   status  - bookkeeping published by the non-core supervisor
 */
#ifndef RL_TYPES_H
#define RL_TYPES_H

#define RL_SHM_KEY 6502
#define RL_SAMPLES 16

typedef struct RlSample {
    float v;             /* conditioned plant sample */
} RlSample;

typedef struct RlStatus {
    int active;          /* non-core supervisor heartbeat   */
    int seq;             /* publication sequence number     */
    int window;          /* requested smoothing window size */
} RlStatus;

#endif /* RL_TYPES_H */
