/* Simulation shim for the Generic Simplex corpus. Provides the system
 * interfaces backed by a second-order plant model, drives the run to a
 * clean shutdown, and — when compiled with -DGS_TAMPER — overwrites the
 * published feedback region the way a faulty non-core component could.
 *
 * Because the GS core's safety law (deliberately, per the paper's seeded
 * defect) re-reads the plant state from the feedback region instead of
 * using its sensor copies, the tampered build drives the real plant out
 * of range while the core believes everything is fine. The benign build
 * tracks the setpoint and shuts down cleanly. tests/corpus_compile_test
 * compiles both variants and checks exactly that difference.
 */
#include "../generic_simplex/common/gs_types.h"

extern int printf(const char *fmt, ...);

/* ------------------------------------------------------------------ */
/* "Shared memory" segment.                                            */
/* ------------------------------------------------------------------ */

static char segment[4096];

int shmget(int key, int size, int flags)
{
    (void)key;
    (void)flags;
    return size <= (int)sizeof(segment) ? 1 : -1;
}

void *shmat(int shmid, void *addr, int flags)
{
    (void)shmid;
    (void)addr;
    (void)flags;
    return segment;
}

int shmdt(void *addr)
{
    (void)addr;
    return 0;
}

void lockShm(void) {}

#ifdef GS_TAMPER
static long tamper_after = 100;
static long unlocks = 0;
#endif

void unlockShm(void)
{
#ifdef GS_TAMPER
    /* The faulty non-core process races in right after the core releases
     * the lock on its freshly published feedback — the window the paper's
     * Generic Simplex defect narrative describes. */
    unlocks = unlocks + 1;
    if (unlocks > tamper_after) {
        GSFeedback *fb;
        fb = (GSFeedback *) (segment + sizeof(GSConfig));
        fb->y = 0.0f;
        fb->ydot = 0.0f;
    }
#endif
}

int getpid(void) { return 999; }

static int killsDelivered = 0;
int kill(int pid, int sig)
{
    (void)pid;
    (void)sig;
    killsDelivered = killsDelivered + 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Plant: damped second-order system driven by the actuator.           */
/* ------------------------------------------------------------------ */

static float plant_y = 0.0f;
static float plant_ydot = 0.0f;
static float applied = 0.0f;
static long periods = 0;
static int escaped = 0;

#define GS_RUN_PERIODS 600
#define GS_ESCAPE_BOUND 3.0f

void actuate(float value)
{
    if (value > GS_OUT_LIMIT) {
        value = GS_OUT_LIMIT;
    }
    if (value < -GS_OUT_LIMIT) {
        value = -GS_OUT_LIMIT;
    }
    applied = value;
}

void readPlantSensors(float *y, float *ydot)
{
    *y = plant_y;
    *ydot = plant_ydot;
}

void usleep(int usec)
{
    float acc;
    GSControl *ctl;

    (void)usec;
    acc = -0.8f * plant_y - 1.2f * plant_ydot + 1.6f * applied;
    plant_y = plant_y + 0.01f * plant_ydot;
    plant_ydot = plant_ydot + 0.01f * acc;
    periods = periods + 1;

    if (plant_y > GS_ESCAPE_BOUND || plant_y < -GS_ESCAPE_BOUND) {
        escaped = 1;
    }

    if (periods >= GS_RUN_PERIODS) {
        /* Operator shutdown ends the run. */
        ctl = (GSControl *) (segment + sizeof(GSConfig)
                             + sizeof(GSFeedback) + sizeof(GSCommand)
                             + sizeof(GSStatus) + sizeof(GSGains)
                             + sizeof(GSLog));
        ctl->mode = GS_MODE_SHUTDOWN;
    }

    if (periods == GS_RUN_PERIODS + 1) {
        /* One extra period slips through before main re-reads the mode. */
        printf("[shim] periods=%ld final_y=%f escaped=%d\n", periods,
               (double)plant_y, escaped);
    }
}

long gsShimPeriods(void) { return periods; }
int gsShimEscaped(void) { return escaped; }
