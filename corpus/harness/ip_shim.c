/* Simulation shim that makes the IP corpus runnable under a real C
 * compiler: provides the system interfaces (shmget/shmat, locks, sensors,
 * actuator, timers) backed by a simple in-process cart-pole difference
 * model, plus an emulated non-core controller publishing through the
 * same "shared memory". Compiled together with corpus/ip/core/ *.c by
 * tests/corpus_compile_test.cpp to prove the corpus is genuine C.
 */
#include "../ip/common/ipc_types.h"

extern int printf(const char *fmt, ...);

/* ------------------------------------------------------------------ */
/* "Shared memory": one static segment handed out by shmat.            */
/* ------------------------------------------------------------------ */

static char segment[4096];
static int attached = 0;

int shmget(int key, int size, int flags)
{
    (void)key;
    (void)flags;
    return size <= (int)sizeof(segment) ? 1 : -1;
}

void *shmat(int shmid, void *addr, int flags)
{
    (void)shmid;
    (void)addr;
    (void)flags;
    attached = 1;
    return segment;
}

int shmdt(void *addr)
{
    (void)addr;
    attached = 0;
    return 0;
}

void lockShm(void) {}
void unlockShm(void) {}

int getpid(void) { return 4242; }

static int killsDelivered = 0;
int kill(int pid, int sig)
{
    (void)pid;
    (void)sig;
    killsDelivered = killsDelivered + 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Plant: linearized cart-pole difference model at 50 Hz.              */
/* ------------------------------------------------------------------ */

static float plant_x = 0.02f;
static float plant_v = 0.0f;
static float plant_th = 0.04f;
static float plant_w = 0.0f;
static float applied = 0.0f;
static long periods = 0;

/* Bound the run: after this many periods the shim reports a state far
 * outside the envelope so the corpus main loop exits cleanly. */
#define SHIM_RUN_PERIODS 400

void sendControl(float volts)
{
    if (volts > IP_VOLT_LIMIT) {
        volts = IP_VOLT_LIMIT;
    }
    if (volts < -IP_VOLT_LIMIT) {
        volts = -IP_VOLT_LIMIT;
    }
    applied = volts;
}

static void stepPlant(void)
{
    float x_acc;
    float th_acc;

    x_acc = -0.5f * plant_x - 2.0f * plant_v + 0.3f * applied;
    th_acc = 77.6f * plant_th - 12.6f * applied;
    plant_x = plant_x + 0.02f * plant_v;
    plant_v = plant_v + 0.02f * x_acc;
    plant_th = plant_th + 0.02f * plant_w;
    plant_w = plant_w + 0.02f * th_acc;
}

void usleep(int usec)
{
    (void)usec;  /* simulated time: one control period per call */
    stepPlant();
    periods = periods + 1;
}

void readSensors(float *track_pos, float *track_vel, float *angle,
                 float *angle_vel)
{
    if (periods >= SHIM_RUN_PERIODS) {
        /* Force an envelope exit so main terminates: values within the
         * plausibility gate but far outside the recoverable envelope. */
        *track_pos = 0.5f;
        *track_vel = 0.0f;
        *angle = 1.2f;
        *angle_vel = 0.0f;
        return;
    }
    *track_pos = plant_x;
    *track_vel = plant_v;
    *angle = plant_th;
    *angle_vel = plant_w;
}

long shimPeriods(void) { return periods; }
float shimFinalAngle(void) { return plant_th; }
int shimKillCount(void) { return killsDelivered; }
