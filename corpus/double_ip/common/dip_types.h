/* Shared-memory layout of the double inverted pendulum control system.
 * Based on the single-pendulum controller, extended with an additional
 * control mode (swing-up) and a tuning region for the experimental
 * filter/trim parameters.
 */
#ifndef DIP_TYPES_H
#define DIP_TYPES_H

#define DIP_SHM_KEY 7300
#define DIP_PERIOD_US 20000
#define DIP_VOLT_LIMIT 5.0f
#define DIP_TRACK_LIMIT 0.5f
#define DIP_ANGLE_LIMIT 0.35f

typedef struct DIPFeedback {
    float track_pos;
    float angle1;        /* lower link angle from upright  */
    float angle2;        /* upper link angle from upright  */
    float track_vel;
    float angle1_vel;
    float angle2_vel;
    int   seq;
} DIPFeedback;

typedef struct DIPCommand {      /* balance-mode command (non-core)   */
    float control;
    int   seq;
    int   valid;
} DIPCommand;

typedef struct DIPSwing {        /* swing-up-mode command (non-core)  */
    float control;
    float energy_estimate;
    int   phase;
    int   valid;
} DIPSwing;

typedef struct DIPStatus {
    int   nc_active;
    int   iterations;
    float cpu_load;
} DIPStatus;

typedef struct DIPTune {         /* experimental tuning parameters    */
    float trim;          /* display calibration offset (supposedly)   */
    float alpha;         /* filter constant proposed by the tuner     */
    int   revision;
} DIPTune;

typedef struct DIPDisplay {
    int   mode;          /* DIP_MODE_*                                */
    int   verbosity;
    int   refresh_ms;
} DIPDisplay;

typedef struct DIPControl {
    int   supervisor_pid;
    int   watchdog_counter;
} DIPControl;

#define DIP_MODE_BALANCE 0
#define DIP_MODE_SWINGUP 1
#define DIP_MODE_HOLD 2

#endif /* DIP_TYPES_H */
