/* Declarations of the system interfaces the controllers use. The SafeFlow
 * analyzer models these by signature only. */
#ifndef DIP_SYS_H
#define DIP_SYS_H

extern int   shmget(int key, int size, int flags);
extern void *shmat(int shmid, void *addr, int flags);
extern int   shmdt(void *addr);
extern int   kill(int pid, int sig);
extern int   getpid(void);
extern int   printf(char *fmt, ...);
extern void  usleep(int usec);
extern double fabs(double x);
extern double sin(double x);
extern double cos(double x);
extern float  fabsf(float x);

extern void lockShm(void);
extern void unlockShm(void);
extern void sendControl(float volts);
extern void readSensors(float *track_pos, float *track_vel,
                        float *angle, float *angle_vel);

#define SIGUSR1 10
#define IPC_CREAT 512

#endif /* DIP_SYS_H */
