/* Operator console for the double pendulum system (non-core): mode
 * switching, trim/filter tuning, and live state display.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern DIPFeedback *fbShm;
extern DIPStatus   *statShm;
extern DIPTune     *tuneShm;
extern DIPDisplay  *dispShm;
extern DIPControl  *ctlShm;

extern int readKeyNonBlocking(void);

static int frame = 0;

static void renderAngles(void)
{
    DIPFeedback fb;
    int i;
    int cells1;
    int cells2;

    fb = *fbShm;
    cells1 = (int)(fb.angle1 * 40.0f);
    cells2 = (int)(fb.angle2 * 40.0f);
    if (cells1 < 0) {
        cells1 = -cells1;
    }
    if (cells2 < 0) {
        cells2 = -cells2;
    }
    printf("=== double pendulum (frame %d) ===\n", frame);
    printf("link1 %f: ", fb.angle1);
    for (i = 0; i < cells1 && i < 30; i = i + 1) {
        printf("*");
    }
    printf("\nlink2 %f: ", fb.angle2);
    for (i = 0; i < cells2 && i < 30; i = i + 1) {
        printf("*");
    }
    printf("\ntrack %f  nc_iter %d  watchdog %d\n", fb.track_pos,
           statShm->iterations, ctlShm->watchdog_counter);
}

static void handleKeys(void)
{
    int key;
    key = readKeyNonBlocking();
    if (key == 'b') {
        dispShm->mode = DIP_MODE_BALANCE;
    }
    if (key == 's') {
        dispShm->mode = DIP_MODE_SWINGUP;
    }
    if (key == 'h') {
        dispShm->mode = DIP_MODE_HOLD;
    }
    if (key == '[') {
        tuneShm->trim = tuneShm->trim - 0.01f;
        tuneShm->revision = tuneShm->revision + 1;
    }
    if (key == ']') {
        tuneShm->trim = tuneShm->trim + 0.01f;
        tuneShm->revision = tuneShm->revision + 1;
    }
    if (key == 'a') {
        tuneShm->alpha = tuneShm->alpha + 0.05f;
        if (tuneShm->alpha > 1.0f) {
            tuneShm->alpha = 1.0f;
        }
    }
    if (key == '+') {
        dispShm->verbosity = dispShm->verbosity + 1;
    }
    if (key == '-') {
        if (dispShm->verbosity > 0) {
            dispShm->verbosity = dispShm->verbosity - 1;
        }
    }
}

int consoleMain(void)
{
    ctlShm->supervisor_pid = getpid();
    dispShm->refresh_ms = 100;
    for (;;) {
        renderAngles();
        handleKeys();
        frame = frame + 1;
        usleep(dispShm->refresh_ms * 1000);
    }
    return 0;
}
