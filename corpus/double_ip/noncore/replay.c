/* Replay/analysis tool for the double pendulum rig (non-core): records
 * complete periods from the shared regions and can re-drive the command
 * slot from a recorded trace (used in the lab to reproduce incidents —
 * and precisely the kind of component whose writes the core must treat
 * as untrusted).
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern DIPFeedback *fbShm;
extern DIPCommand  *cmdShm;
extern DIPSwing    *swingShm;
extern DIPStatus   *statShm;

#define REPLAY_DEPTH 1024

typedef struct Period {
    float angle1;
    float angle2;
    float track;
    float command;
    int   seq;
} Period;

static Period tape[REPLAY_DEPTH];
static int recorded = 0;
static int playhead = 0;
static int recording = 1;
static int lastSeq = -1;

static void record(void)
{
    Period p;

    lockShm();
    p.angle1 = fbShm->angle1;
    p.angle2 = fbShm->angle2;
    p.track = fbShm->track_pos;
    p.command = cmdShm->control;
    p.seq = fbShm->seq;
    unlockShm();

    if (p.seq == lastSeq || recorded >= REPLAY_DEPTH) {
        return;
    }
    lastSeq = p.seq;
    tape[recorded] = p;
    recorded = recorded + 1;
}

static void replayStep(void)
{
    Period *p;

    if (playhead >= recorded) {
        playhead = 0;  /* loop the tape */
    }
    p = &tape[playhead];
    playhead = playhead + 1;

    lockShm();
    cmdShm->control = p->command;
    cmdShm->seq = lastSeq + playhead;
    cmdShm->valid = 1;
    unlockShm();
}

static float tapeEnergy(void)
{
    int i;
    float acc;

    acc = 0.0f;
    for (i = 0; i < recorded; i = i + 1) {
        acc = acc + tape[i].angle1 * tape[i].angle1
            + tape[i].angle2 * tape[i].angle2;
    }
    if (recorded == 0) {
        return 0.0f;
    }
    return acc / (float)recorded;
}

static void analyze(void)
{
    int i;
    float worst1;
    float worst2;

    worst1 = 0.0f;
    worst2 = 0.0f;
    for (i = 0; i < recorded; i = i + 1) {
        float a1;
        float a2;
        a1 = tape[i].angle1;
        a2 = tape[i].angle2;
        if (a1 < 0.0f) {
            a1 = -a1;
        }
        if (a2 < 0.0f) {
            a2 = -a2;
        }
        if (a1 > worst1) {
            worst1 = a1;
        }
        if (a2 > worst2) {
            worst2 = a2;
        }
    }
    printf("[replay] %d periods, mean-sq angle %f, worst |a1|=%f |a2|=%f\n",
           recorded, tapeEnergy(), worst1, worst2);
}

int replayMain(int do_replay)
{
    int cycles;

    cycles = 0;
    for (;;) {
        if (recording) {
            record();
            if (recorded == REPLAY_DEPTH) {
                recording = 0;
                analyze();
            }
        } else if (do_replay && statShm->nc_active == 0) {
            /* The live controller is down: re-drive from the tape. */
            replayStep();
        }
        cycles = cycles + 1;
        if (cycles % 2048 == 0) {
            analyze();
        }
        usleep(DIP_PERIOD_US / 2);
    }
    return 0;
}
