/* Energy-based swing-up controller for the double pendulum (non-core).
 * Pumps energy into the lower link until the system approaches the
 * upright manifold, publishing its command and phase through the swing
 * region; the core's swing monitor validates every command.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern DIPFeedback *fbShm;
extern DIPSwing    *swingShm;

static float energyGain = 1.1f;
static float uprightEnergy = 1.35f;
static int phase = 0;
static int lastSeq = -1;

static float estimateEnergy(float angle1, float angle1_vel)
{
    float kinetic;
    float potential;
    kinetic = 0.5f * 0.035f * angle1_vel * angle1_vel;
    potential = 1.35f * (1.0f - cosApprox(angle1));
    return kinetic + potential;
}

float cosApprox(float x)
{
    float x2;
    x2 = x * x;
    return 1.0f - x2 / 2.0f + x2 * x2 / 24.0f;
}

static float pumpCommand(float angle1, float angle1_vel, float energy)
{
    float deficit;
    float direction;

    deficit = uprightEnergy - energy;
    direction = angle1_vel * cosApprox(angle1);
    if (direction > 0.0f) {
        return energyGain * deficit;
    }
    return -energyGain * deficit;
}

static int updatePhase(float energy, float angle1)
{
    if (energy < 0.3f * uprightEnergy) {
        return 0;  /* pumping */
    }
    if (energy < 0.9f * uprightEnergy) {
        return 1;  /* building */
    }
    if (angle1 > -0.3f && angle1 < 0.3f) {
        return 3;  /* handoff to balance */
    }
    return 2;      /* coasting near the top */
}

int swingupMain(void)
{
    DIPFeedback snapshot;
    float energy;
    float u;

    for (;;) {
        lockShm();
        snapshot = *fbShm;
        unlockShm();

        if (snapshot.seq != lastSeq) {
            lastSeq = snapshot.seq;
            energy = estimateEnergy(snapshot.angle1, snapshot.angle1_vel);
            phase = updatePhase(energy, snapshot.angle1);
            if (phase == 3) {
                u = 0.0f;  /* let the balance controller take over */
            } else {
                u = pumpCommand(snapshot.angle1, snapshot.angle1_vel,
                                energy);
            }
            if (u > DIP_VOLT_LIMIT) {
                u = DIP_VOLT_LIMIT;
            }
            if (u < -DIP_VOLT_LIMIT) {
                u = -DIP_VOLT_LIMIT;
            }

            lockShm();
            swingShm->control = u;
            swingShm->energy_estimate = energy;
            swingShm->phase = phase;
            swingShm->valid = 1;
            unlockShm();
        }
        usleep(DIP_PERIOD_US / 2);
    }
    return 0;
}
