/* Balance-mode experimental controller for the double pendulum
 * (non-core): a higher-bandwidth state feedback with a friction
 * compensator, publishing through the command region.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern DIPFeedback *fbShm;
extern DIPCommand  *cmdShm;
extern DIPStatus   *statShm;
extern DIPTune     *tuneShm;

/* Aggressive gains for the two-link balance task. */
static float gTrack = -5.9f;
static float gAngle1 = 78.2f;
static float gAngle2 = -95.0f;
static float gTrackVel = -6.7f;
static float gAngle1Vel = 9.8f;
static float gAngle2Vel = -13.5f;

/* Friction compensator. */
static float frictionLevel = 0.18f;
static float lastU = 0.0f;

static int iterations = 0;
static int lastSeq = -1;

static float frictionCompensation(float track_vel)
{
    if (track_vel > 0.002f) {
        return frictionLevel;
    }
    if (track_vel < -0.002f) {
        return -frictionLevel;
    }
    return 0.0f;
}

static float computeBalance(DIPFeedback fb, float alpha)
{
    float u;
    float smoothed_a1v;

    smoothed_a1v = alpha * fb.angle1_vel + (1.0f - alpha) * lastU;
    u = -(gTrack * fb.track_pos
          + gAngle1 * fb.angle1
          + gAngle2 * fb.angle2
          + gTrackVel * fb.track_vel
          + gAngle1Vel * smoothed_a1v
          + gAngle2Vel * fb.angle2_vel);
    u = u + frictionCompensation(fb.track_vel);
    if (u > DIP_VOLT_LIMIT) {
        u = DIP_VOLT_LIMIT;
    }
    if (u < -DIP_VOLT_LIMIT) {
        u = -DIP_VOLT_LIMIT;
    }
    lastU = u;
    return u;
}

int balance2Main(void)
{
    DIPFeedback snapshot;
    float u;
    float alpha;

    for (;;) {
        lockShm();
        snapshot = *fbShm;
        unlockShm();

        if (snapshot.seq != lastSeq) {
            lastSeq = snapshot.seq;
            alpha = tuneShm->alpha;
            if (alpha <= 0.0f || alpha > 1.0f) {
                alpha = 0.5f;
            }
            u = computeBalance(snapshot, alpha);

            lockShm();
            cmdShm->control = u;
            cmdShm->seq = snapshot.seq;
            cmdShm->valid = 1;
            unlockShm();

            iterations = iterations + 1;
            statShm->nc_active = 1;
            statShm->iterations = iterations;
        }
        usleep(DIP_PERIOD_US / 4);
    }
    return 0;
}
