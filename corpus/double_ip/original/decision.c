/* Pre-refactor version of the double IP decision module, kept for the
 * source-change accounting of the evaluation: the recoverability check
 * was inlined in decisionModule and had to be extracted (see the shipped
 * decision.c) because SafeFlow annotations apply at function granularity.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern float clampVolts(float v);
extern float predictAngle1(float angle1, float angle1_vel, float volts);
extern float predictAngle2(float angle2, float angle2_vel, float volts);
extern float envelopeValue(float track_pos, float angle1, float angle2,
                           float angle1_vel, float angle2_vel);
extern float envelopeLevel(void);

extern DIPCommand *cmdShm;

static int acceptCount = 0;
static int rejectCount = 0;

float decisionModule(float safeControl, float track_pos, float angle1,
                     float angle2, float angle1_vel, float ang2_vel,
                     DIPCommand *cmd)
/*** SafeFlow Annotation assume(core(cmd, 0, sizeof(DIPCommand))) ***/
{
    float volts;
    float next1;
    float next2;
    float value;
    int recoverable;

    recoverable = 0;
    if (cmd->valid != 0) {
        volts = cmd->control;
        if (volts <= DIP_VOLT_LIMIT && volts >= -DIP_VOLT_LIMIT) {
            next1 = predictAngle1(angle1, angle1_vel, volts);
            next2 = predictAngle2(angle2, ang2_vel, volts);
            value = envelopeValue(track_pos, next1, next2,
                                  angle1_vel, ang2_vel);
            if (value < envelopeLevel()) {
                recoverable = 1;
            }
        }
    }
    if (recoverable) {
        acceptCount = acceptCount + 1;
        return clampVolts(cmd->control);
    }
    rejectCount = rejectCount + 1;
    return safeControl;
}

int decisionAcceptCount(void)
{
    return acceptCount;
}

int decisionRejectCount(void)
{
    return rejectCount;
}
