/* Core loop of the double inverted pendulum controller. Two control
 * modes: balance (the decision module arbitrates the non-core balance
 * command) and swing-up (the swing monitor arbitrates the non-core
 * swing-up command). A trim offset proposed by the tuning process is
 * applied to the actuator command — the developers assumed the trim was
 * display-calibration only and could not reach the critical output;
 * SafeFlow's analysis shows that assumption is wrong (one of the two
 * error dependencies in this system).
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern DIPFeedback *fbShm;
extern DIPCommand  *cmdShm;
extern DIPSwing    *swingShm;
extern DIPStatus   *statShm;
extern DIPTune     *tuneShm;
extern DIPDisplay  *dispShm;
extern DIPControl  *ctlShm;

extern void initComm(void);
extern void publishFeedback(float track_pos, float angle1, float angle2,
                            float track_vel, float angle1_vel,
                            float angle2_vel, int seq);
extern float computeSafeControl(float track_pos, float angle1,
                                float angle2, float track_vel,
                                float angle1_vel, float angle2_vel);
extern float decisionModule(float safeControl, float track_pos,
                            float angle1, float angle2, float angle1_vel,
                            float ang2_vel, DIPCommand *cmd);
extern float swingMonitor(float fallback, float angle1, float angle1_vel);
extern float referenceTrack(int tick);
extern float brakeCommand(void);
extern float energyTarget(void);
extern float clampVolts(float v);
extern int insideEnvelope(float track_pos, float angle1, float angle2,
                          float angle1_vel, float angle2_vel);
extern int decisionAcceptCount(void);
extern int swingAcceptCount(void);
extern int saturationCount(void);

extern void readDipSensors(float *track_pos, float *angle1, float *angle2,
                           float *track_vel, float *angle1_vel,
                           float *angle2_vel);

extern void planMove(float current, float target, int periods);
extern float trajectoryReference(void);
extern int trajectoryActive(void);
extern void trackingSample(float reference, float actual);
extern float meanTrackingError(void);
extern float worstTrackingError(void);

extern float estimateAngle1(float measured, float rate);
extern float estimateAngle2(float measured, float rate);
extern float differentiateAngle1(float angle);
extern float differentiateAngle2(float angle);
extern float differentiateTrack(float track);
extern int estimatorOutlierCount(void);

static int running = 1;
static int tick = 0;
static int watchdogBeat = 0;

static void reportStatus(float output)
{
    int verbosity;
    int lag;
    float suggestedAlpha;

    verbosity = dispShm->verbosity;
    if (verbosity > 0) {
        printf("[dip] u=%f accepts=%d swing=%d sat=%d\n", output,
               decisionAcceptCount(), swingAcceptCount(),
               saturationCount());
    }
    if (verbosity > 1) {
        lag = tick - fbShm->seq;
        suggestedAlpha = tuneShm->alpha;
        printf("[dip] nc iter=%d lag=%d alpha=%f\n",
               statShm->iterations, lag, suggestedAlpha);
    }
}

static void pingSupervisor(void)
{
    int pid;
    /* Watchdog heartbeat to the supervising process; the pid lives in a
     * region any non-core process can overwrite. */
    pid = ctlShm->supervisor_pid;
    kill(pid, SIGUSR1);
}

int main(void)
{
    float track_pos;
    float angle1;
    float angle2;
    float track_vel;
    float angle1_vel;
    float angle2_vel;
    float safeControl;
    float output;
    float swingOutput;
    float refTrack;
    float brake;
    float target;
    float trim;
    float applied;
    int ncActive;
    int mode;
    int beat;

    initComm();

    brake = brakeCommand();
    /*** SafeFlow Annotation assert(safe(brake)); ***/
    target = energyTarget();
    /*** SafeFlow Annotation assert(safe(target)); ***/

    while (running) {
        readDipSensors(&track_pos, &angle1, &angle2,
                       &track_vel, &angle1_vel, &angle2_vel);
        /* Fuse encoders with integrated rates; reject impossible jumps. */
        angle1 = estimateAngle1(angle1, angle1_vel);
        angle2 = estimateAngle2(angle2, angle2_vel);
        angle1_vel = differentiateAngle1(angle1);
        angle2_vel = differentiateAngle2(angle2);
        track_vel = differentiateTrack(track_pos);
        publishFeedback(track_pos, angle1, angle2,
                        track_vel, angle1_vel, angle2_vel, tick);

        /* Hold-mode trajectory: re-plan a gentle move every 20 s; the
         * triangle profile remains the fallback reference. */
        if (tick % 1000 == 0 && !trajectoryActive()) {
            planMove(track_pos, referenceTrack(tick), 100);
        }
        if (trajectoryActive()) {
            refTrack = trajectoryReference();
        } else {
            refTrack = referenceTrack(tick);
        }
        trackingSample(refTrack, track_pos);
        /*** SafeFlow Annotation assert(safe(refTrack)); ***/

        safeControl = computeSafeControl(track_pos - refTrack, angle1,
                                         angle2, track_vel, angle1_vel,
                                         angle2_vel);

        usleep(DIP_PERIOD_US);

        ncActive = statShm->nc_active;
        if (ncActive) {
            output = decisionModule(safeControl, track_pos, angle1,
                                    angle2, angle1_vel, angle2_vel,
                                    cmdShm);
        } else {
            output = safeControl;
        }

        /* Apply the tuner's trim offset. (Assumed to be harmless display
         * calibration; in fact it biases the actuator command.) */
        trim = tuneShm->trim;
        output = clampVolts(output + trim);
        /*** SafeFlow Annotation assert(safe(output)); ***/

        swingOutput = brake;
        mode = dispShm->mode;
        if (mode == DIP_MODE_SWINGUP) {
            swingOutput = swingMonitor(brake, angle1, angle1_vel);
        }
        /*** SafeFlow Annotation assert(safe(swingOutput)); ***/

        if (mode == DIP_MODE_SWINGUP) {
            applied = swingOutput;
        } else {
            applied = output;
        }
        sendControl(applied);

        beat = watchdogBeat + 1;
        /*** SafeFlow Annotation assert(safe(beat)); ***/
        watchdogBeat = beat;
        ctlShm->watchdog_counter = beat;
        if (tick % 500 == 0) {
            pingSupervisor();
        }

        reportStatus(applied);
        tick = tick + 1;
        if (insideEnvelope(track_pos, angle1, angle2,
                           angle1_vel, angle2_vel) == 0) {
            printf("[dip] left the envelope, braking (%d vel outliers)\n",
                   estimatorOutlierCount());
            sendControl(brake);
            running = 0;
        }
    }
    return 0;
}
