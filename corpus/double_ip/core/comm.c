/* Shared-memory initialization for the double inverted pendulum core. */
#include "../common/dip_types.h"
#include "../common/sys.h"

DIPFeedback *fbShm;
DIPCommand  *cmdShm;
DIPSwing    *swingShm;
DIPStatus   *statShm;
DIPTune     *tuneShm;
DIPDisplay  *dispShm;
DIPControl  *ctlShm;

static int dipSegmentId;

/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
    void *base;
    char *cursor;
    int total;

    total = sizeof(DIPFeedback) + sizeof(DIPCommand) + sizeof(DIPSwing)
          + sizeof(DIPStatus) + sizeof(DIPTune) + sizeof(DIPDisplay)
          + sizeof(DIPControl);
    dipSegmentId = shmget(DIP_SHM_KEY, total, IPC_CREAT);
    base = shmat(dipSegmentId, 0, 0);

    cursor = (char *) base;
    fbShm = (DIPFeedback *) cursor;
    cursor = cursor + sizeof(DIPFeedback);
    cmdShm = (DIPCommand *) cursor;
    cursor = cursor + sizeof(DIPCommand);
    swingShm = (DIPSwing *) cursor;
    cursor = cursor + sizeof(DIPSwing);
    statShm = (DIPStatus *) cursor;
    cursor = cursor + sizeof(DIPStatus);
    tuneShm = (DIPTune *) cursor;
    cursor = cursor + sizeof(DIPTune);
    dispShm = (DIPDisplay *) cursor;
    cursor = cursor + sizeof(DIPDisplay);
    ctlShm = (DIPControl *) cursor;

    /*** SafeFlow Annotation assume(shmvar(fbShm, sizeof(DIPFeedback))) ***/
    /*** SafeFlow Annotation assume(shmvar(cmdShm, sizeof(DIPCommand))) ***/
    /*** SafeFlow Annotation assume(shmvar(swingShm, sizeof(DIPSwing))) ***/
    /*** SafeFlow Annotation assume(shmvar(statShm, sizeof(DIPStatus))) ***/
    /*** SafeFlow Annotation assume(shmvar(tuneShm, sizeof(DIPTune))) ***/
    /*** SafeFlow Annotation assume(shmvar(dispShm, sizeof(DIPDisplay))) ***/
    /*** SafeFlow Annotation assume(shmvar(ctlShm, sizeof(DIPControl))) ***/
    /*** SafeFlow Annotation assume(noncore(fbShm)) ***/
    /*** SafeFlow Annotation assume(noncore(cmdShm)) ***/
    /*** SafeFlow Annotation assume(noncore(swingShm)) ***/
    /*** SafeFlow Annotation assume(noncore(statShm)) ***/
    /*** SafeFlow Annotation assume(noncore(tuneShm)) ***/
    /*** SafeFlow Annotation assume(noncore(dispShm)) ***/
    /*** SafeFlow Annotation assume(noncore(ctlShm)) ***/
}

/* Deadband tiny angular velocities so the UI does not flicker. */
float ang2snap(float v)
{
    if (v < 0.0005f && v > -0.0005f) {
        return 0.0f;
    }
    return v;
}

void publishFeedback(float track_pos, float angle1, float angle2,
                     float track_vel, float angle1_vel, float angle2_vel,
                     int seq)
{
    lockShm();
    fbShm->track_pos = track_pos;
    fbShm->angle1 = angle1;
    fbShm->angle2 = angle2;
    fbShm->track_vel = track_vel;
    fbShm->angle1_vel = angle1_vel;
    fbShm->angle2_vel = ang2snap(angle2_vel);
    fbShm->seq = seq;
    unlockShm();
}
