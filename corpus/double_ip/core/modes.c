/* Mode handling for the double IP core: the swing-up monitor (the second
 * monitoring function in this system) plus the core-owned reference
 * profile and emergency-brake logic.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern DIPSwing *swingShm;

extern float clampVolts(float v);

static int swingAccepts = 0;
static int swingRejects = 0;

/* Energy target the swing-up sequence must stay under; a core constant
 * derived from the rig's mechanical limits. */
static float energyCeiling = 1.8f;

/* Swing-up monitor: the non-core swing controller's command is accepted
 * only when its declared phase and energy estimate are consistent and
 * the voltage cannot over-rotate the links.
 */
float swingMonitor(float fallback, float angle1, float angle1_vel)
/*** SafeFlow Annotation assume(core(swingShm, 0, sizeof(DIPSwing))) ***/
{
    float volts;
    float energy;

    if (swingShm->valid == 0) {
        swingRejects = swingRejects + 1;
        return fallback;
    }
    volts = swingShm->control;
    energy = swingShm->energy_estimate;
    if (volts > DIP_VOLT_LIMIT || volts < -DIP_VOLT_LIMIT) {
        swingRejects = swingRejects + 1;
        return fallback;
    }
    if (energy < 0.0f || energy > energyCeiling) {
        swingRejects = swingRejects + 1;
        return fallback;
    }
    if (swingShm->phase < 0 || swingShm->phase > 3) {
        swingRejects = swingRejects + 1;
        return fallback;
    }
    /* Pumping against the current swing direction is never recoverable. */
    if (angle1 * volts > 0.0f && angle1_vel * volts > 0.0f) {
        swingRejects = swingRejects + 1;
        return fallback;
    }
    swingAccepts = swingAccepts + 1;
    return clampVolts(volts);
}

/* Core-owned track reference: a gentle triangle profile. */
float referenceTrack(int tick)
{
    int phase;
    phase = tick % 1000;
    if (phase < 500) {
        return 0.1f * ((float)phase / 500.0f);
    }
    return 0.1f * ((float)(1000 - phase) / 500.0f);
}

/* Emergency brake command: a core constant counter-voltage. */
float brakeCommand(void)
{
    return -1.5f;
}

float energyTarget(void)
{
    return energyCeiling;
}

int swingAcceptCount(void)
{
    return swingAccepts;
}

int swingRejectCount(void)
{
    return swingRejects;
}
