/* State estimation for the double pendulum core: complementary filters
 * fusing the encoder angles with integrated rates, plus numerical
 * differentiation with outlier rejection for the velocities. Operates on
 * core-owned sensor values exclusively.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

/* Complementary filter states for the two links. */
static float est1 = 0.0f;
static float est2 = 0.0f;
static float blend = 0.98f;

/* Previous samples for differentiation. */
static float prevAngle1 = 0.0f;
static float prevAngle2 = 0.0f;
static float prevTrack = 0.0f;
static int primed = 0;

/* Outlier statistics. */
static int velOutliers = 0;

float estimateAngle1(float measured, float rate)
{
    est1 = blend * (est1 + rate * 0.02f) + (1.0f - blend) * measured;
    return est1;
}

float estimateAngle2(float measured, float rate)
{
    est2 = blend * (est2 + rate * 0.02f) + (1.0f - blend) * measured;
    return est2;
}

/* Finite-difference velocity with a physical rate limit; samples that
 * imply an impossible jump are rejected and the previous estimate held.
 */
float differentiateAngle1(float angle)
{
    float vel;

    if (!primed) {
        prevAngle1 = angle;
        return 0.0f;
    }
    vel = (angle - prevAngle1) / 0.02f;
    if (vel > 25.0f || vel < -25.0f) {
        velOutliers = velOutliers + 1;
        return 0.0f;
    }
    prevAngle1 = angle;
    return vel;
}

float differentiateAngle2(float angle)
{
    float vel;

    if (!primed) {
        prevAngle2 = angle;
        return 0.0f;
    }
    vel = (angle - prevAngle2) / 0.02f;
    if (vel > 30.0f || vel < -30.0f) {
        velOutliers = velOutliers + 1;
        return 0.0f;
    }
    prevAngle2 = angle;
    return vel;
}

float differentiateTrack(float track)
{
    float vel;

    if (!primed) {
        prevTrack = track;
        primed = 1;
        return 0.0f;
    }
    vel = (track - prevTrack) / 0.02f;
    if (vel > 4.0f || vel < -4.0f) {
        velOutliers = velOutliers + 1;
        return 0.0f;
    }
    prevTrack = track;
    return vel;
}

void resetEstimator(float angle1, float angle2)
{
    est1 = angle1;
    est2 = angle2;
    prevAngle1 = angle1;
    prevAngle2 = angle2;
    primed = 0;
}

int estimatorOutlierCount(void)
{
    return velOutliers;
}

/* Total mechanical-ish energy estimate for the swing-up hand-off check
 * (small-angle potential approximation). */
float estimateEnergy(float angle1, float angle1_vel, float angle2,
                     float angle2_vel)
{
    float kinetic;
    float potential;

    kinetic = 0.5f * (0.031f * angle1_vel * angle1_vel
                      + 0.018f * angle2_vel * angle2_vel);
    potential = 0.5f * (1.23f * angle1 * angle1
                        + 0.74f * angle2 * angle2);
    return kinetic + potential;
}
