/* Balance-mode decision module of the double IP core: the monitoring
 * function for the balance command region. The recoverability check was
 * extracted into its own function so the assume(core(...)) annotation
 * can be applied at function granularity (see original/decision.c for
 * the pre-refactor version).
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

extern float clampVolts(float v);
extern float predictAngle1(float angle1, float angle1_vel, float volts);
extern float predictAngle2(float angle2, float angle2_vel, float volts);
extern float envelopeValue(float track_pos, float angle1, float angle2,
                           float angle1_vel, float angle2_vel);
extern float envelopeLevel(void);

extern DIPCommand *cmdShm;

static int acceptCount = 0;
static int rejectCount = 0;

static int checkRecoverable(DIPCommand *cmd, float track_pos,
                            float angle1, float angle2,
                            float angle1_vel, float angle2_vel)
{
    float volts;
    float next1;
    float next2;
    float value;

    if (cmd->valid == 0) {
        return 0;
    }
    volts = cmd->control;
    if (volts > DIP_VOLT_LIMIT || volts < -DIP_VOLT_LIMIT) {
        return 0;
    }
    next1 = predictAngle1(angle1, angle1_vel, volts);
    next2 = predictAngle2(angle2, angle2_vel, volts);
    value = envelopeValue(track_pos, next1, next2,
                          angle1_vel, angle2_vel);
    if (value < envelopeLevel()) {
        return 1;
    }
    return 0;
}

float decisionModule(float safeControl, float track_pos, float angle1,
                     float angle2, float angle1_vel, float ang2_vel,
                     DIPCommand *cmd)
/*** SafeFlow Annotation assume(core(cmd, 0, sizeof(DIPCommand))) ***/
{
    if (checkRecoverable(cmd, track_pos, angle1, angle2,
                         angle1_vel, ang2_vel)) {
        acceptCount = acceptCount + 1;
        return clampVolts(cmd->control);
    }
    rejectCount = rejectCount + 1;
    return safeControl;
}

int decisionAcceptCount(void)
{
    return acceptCount;
}

int decisionRejectCount(void)
{
    return rejectCount;
}
