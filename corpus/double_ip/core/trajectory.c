/* Hold-mode trajectory planning for the double pendulum core: generates
 * bounded-jerk cart trajectories between hold positions and scores how
 * faithfully the plant tracked the last one. Pure core computation.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

/* Trajectory segment state. */
static float segStart = 0.0f;
static float segEnd = 0.0f;
static int segDuration = 0;   /* in control periods */
static int segElapsed = 0;
static int segActive = 0;

/* Tracking-quality statistics. */
static float trackErrAccum = 0.0f;
static float trackErrWorst = 0.0f;
static int trackSamples = 0;

/* Smoothstep easing keeps acceleration bounded at the segment ends. */
static float ease(float s)
{
    if (s < 0.0f) {
        return 0.0f;
    }
    if (s > 1.0f) {
        return 1.0f;
    }
    return s * s * (3.0f - 2.0f * s);
}

/* Plans a move to `target` over `periods` control periods; clamped to the
 * physical track. */
void planMove(float current, float target, int periods)
{
    if (target > DIP_TRACK_LIMIT * 0.8f) {
        target = DIP_TRACK_LIMIT * 0.8f;
    }
    if (target < -DIP_TRACK_LIMIT * 0.8f) {
        target = -DIP_TRACK_LIMIT * 0.8f;
    }
    if (periods < 25) {
        periods = 25;  /* at least half a second */
    }
    segStart = current;
    segEnd = target;
    segDuration = periods;
    segElapsed = 0;
    segActive = 1;
}

/* Reference position for the current period; holds the end point when
 * the segment completes. */
float trajectoryReference(void)
{
    float s;

    if (!segActive) {
        return segEnd;
    }
    s = (float)segElapsed / (float)segDuration;
    segElapsed = segElapsed + 1;
    if (segElapsed >= segDuration) {
        segActive = 0;
    }
    return segStart + (segEnd - segStart) * ease(s);
}

int trajectoryActive(void)
{
    return segActive;
}

/* Scores the plant's actual position against the reference. */
void trackingSample(float reference, float actual)
{
    float err;

    err = reference - actual;
    if (err < 0.0f) {
        err = -err;
    }
    trackErrAccum = trackErrAccum + err;
    if (err > trackErrWorst) {
        trackErrWorst = err;
    }
    trackSamples = trackSamples + 1;
}

float meanTrackingError(void)
{
    if (trackSamples == 0) {
        return 0.0f;
    }
    return trackErrAccum / (float)trackSamples;
}

float worstTrackingError(void)
{
    return trackErrWorst;
}

/* The feed-forward voltage implied by the planned acceleration profile;
 * added to the feedback command in hold mode. */
float feedforwardVolts(void)
{
    float s;
    float accel;

    if (!segActive || segDuration == 0) {
        return 0.0f;
    }
    s = (float)segElapsed / (float)segDuration;
    /* d2/ds2 of smoothstep = 6 - 12 s, scaled by move length/time^2. */
    accel = (6.0f - 12.0f * s) * (segEnd - segStart)
          / ((float)segDuration * (float)segDuration * 0.0004f);
    return 0.26f * accel;  /* verified volts-per-accel constant */
}
