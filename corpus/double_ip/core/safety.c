/* Safety controller for the double inverted pendulum: a six-state
 * feedback law with conditioning, plus the one-step prediction and
 * envelope machinery the recoverability check uses. All inputs are the
 * core's own sensor copies.
 */
#include "../common/dip_types.h"
#include "../common/sys.h"

/* Gains synthesized offline for the two-link rig. */
static float kTrack = -3.16f;
static float kAngle1 = 52.7f;
static float kAngle2 = -61.9f;
static float kTrackVel = -4.08f;
static float kAngle1Vel = 6.35f;
static float kAngle2Vel = -8.91f;

static float velFilter = 0.0f;
static int saturations = 0;

float clampVolts(float v)
{
    if (v > DIP_VOLT_LIMIT) {
        saturations = saturations + 1;
        return DIP_VOLT_LIMIT;
    }
    if (v < -DIP_VOLT_LIMIT) {
        saturations = saturations + 1;
        return -DIP_VOLT_LIMIT;
    }
    return v;
}

float smoothVel(float raw)
{
    velFilter = velFilter + 0.4f * (raw - velFilter);
    return velFilter;
}

/* u = -K x for the six-dimensional state. */
float computeSafeControl(float track_pos, float angle1, float angle2,
                         float track_vel, float angle1_vel,
                         float angle2_vel)
{
    float u;
    float tv;

    tv = smoothVel(track_vel);
    u = -(kTrack * track_pos
          + kAngle1 * angle1
          + kAngle2 * angle2
          + kTrackVel * tv
          + kAngle1Vel * angle1_vel
          + kAngle2Vel * angle2_vel);
    return clampVolts(u);
}

/* One-period prediction of the two link angles under a voltage. */
float predictAngle1(float angle1, float angle1_vel, float volts)
{
    float acc;
    acc = 96.2f * angle1 - 31.0f * volts;
    return angle1 + 0.02f * angle1_vel + 0.0002f * acc;
}

float predictAngle2(float angle2, float angle2_vel, float volts)
{
    float acc;
    acc = 118.4f * angle2 + 9.7f * volts;
    return angle2 + 0.02f * angle2_vel + 0.0002f * acc;
}

/* Weighted quadratic envelope over the dominant states. */
float envelopeValue(float track_pos, float angle1, float angle2,
                    float angle1_vel, float angle2_vel)
{
    float v;
    v = 4.8f * track_pos * track_pos
      + 71.0f * angle1 * angle1
      + 88.0f * angle2 * angle2
      + 3.1f * angle1_vel * angle1_vel
      + 3.6f * angle2_vel * angle2_vel
      + 11.2f * angle1 * angle2;
    return v;
}

float envelopeLevel(void)
{
    return 9.5f;
}

int insideEnvelope(float track_pos, float angle1, float angle2,
                   float angle1_vel, float angle2_vel)
{
    if (envelopeValue(track_pos, angle1, angle2, angle1_vel, angle2_vel)
        < envelopeLevel()) {
        return 1;
    }
    return 0;
}

int saturationCount(void)
{
    return saturations;
}
