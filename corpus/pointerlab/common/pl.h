/* Shared-memory layout of the pointer laboratory system: a slot ring
 * walked with explicit slot pointers plus a non-core supervisor block,
 * exercising the shapes only a field-sensitive points-to analysis can
 * separate — constant pointer arithmetic across record fields, type
 * punning through unions, and pointers returned through call chains.
 *
 *   ring   - PL_SLOTS actuation slots published by the core side
 *   status - bookkeeping published by the non-core supervisor
 */
#ifndef PL_TYPES_H
#define PL_TYPES_H

#define PL_SHM_KEY 7801
#define PL_SLOTS 8

typedef struct PlSlot {
    float cmd;           /* actuation command for the slot */
    int   flags;         /* slot bookkeeping               */
} PlSlot;

typedef struct PlStatus {
    int seq;             /* non-core supervisor heartbeat  */
    int raw;             /* raw supervisor word            */
} PlStatus;

/* Core-local staging record. The supervisor hint and the command are
 * adjacent words; code below addresses one from the other with constant
 * pointer arithmetic. */
typedef struct PlStage {
    int   hint;          /* scratch derived from the supervisor */
    float cmd;           /* core-computed command               */
} PlStage;

/* One machine word viewed as either an integer or a float — the
 * classic wire-format pun. */
typedef union PlWord {
    int   i;
    float f;
} PlWord;

/* A slot pointer carried through an untyped queue word. */
typedef union PlPort {
    PlSlot *slot;        /* typed view     */
    void   *raw;         /* queue word view */
} PlPort;

#endif /* PL_TYPES_H */
