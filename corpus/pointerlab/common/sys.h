/* Declarations of the system interfaces the pointerlab controller uses.
 * The SafeFlow analyzer models these by signature only. */
#ifndef PL_SYS_H
#define PL_SYS_H

extern int   shmget(int key, int size, int flags);
extern void *shmat(int shmid, void *addr, int flags);
extern int   printf(char *fmt, ...);
extern void  usleep(int usec);

extern void  lockShm(void);
extern void  unlockShm(void);
extern void  sendControl(float volts);

#define IPC_CREAT 512
#define PL_PERIOD_US 10000

#endif /* PL_SYS_H */
