/* Shared-memory initialization for the pointerlab core controller. The
 * initializing function performs the one untyped shmat cast and carves
 * the segment into the slot ring and the supervisor status block; the
 * shmvar/noncore post-conditions declare the regions for the analysis.
 */
#include "../common/pl.h"
#include "../common/sys.h"

PlSlot *ring;
PlStatus *status;

static int shmSegmentId;

/*** SafeFlow Annotation shminit ***/
void initPl(void)
{
    void *shmStart;
    char *cursor;
    int total;

    total = PL_SLOTS * sizeof(PlSlot) + sizeof(PlStatus);
    shmSegmentId = shmget(PL_SHM_KEY, total, IPC_CREAT);
    shmStart = shmat(shmSegmentId, 0, 0);

    cursor = (char *) shmStart;
    ring = (PlSlot *) cursor;
    cursor = cursor + PL_SLOTS * sizeof(PlSlot);
    status = (PlStatus *) cursor;

    /*** SafeFlow Annotation assume(shmvar(ring, 8 * sizeof(PlSlot))) ***/
    /*** SafeFlow Annotation assume(shmvar(status, sizeof(PlStatus))) ***/
    /*** SafeFlow Annotation assume(noncore(status)) ***/
}
