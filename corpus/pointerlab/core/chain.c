/* Staging-record helpers for the pointerlab controller. The command
 * slot of a PlStage is addressed from its hint slot with constant
 * pointer arithmetic (the words are adjacent), and the resulting
 * pointer is returned through a two-deep call chain. A field-sensitive
 * points-to analysis resolves the arithmetic to the command word; a
 * field-collapsing one conflates it with the supervisor-derived hint
 * and reports a spurious taint flow at the caller's safety assert.
 */
#include "../common/pl.h"
#include "../common/sys.h"

/* Address of the command word, computed by stepping one int past the
 * hint word rather than naming the field. */
float *stageCmd(PlStage *st)
{
    return (float *) (&st->hint + 1);
}

/* Indirection layer: the pointer survives another call boundary. */
float *pickCmd(PlStage *st)
{
    return stageCmd(st);
}
