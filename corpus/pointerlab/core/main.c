/* Core loop of the pointerlab controller. The staging record's hint
 * word holds the supervisor heartbeat (tainted); the command word is
 * computed from core data and fetched back through pickCmd's pointer
 * arithmetic. With field-sensitive points-to the fetched command is
 * provably independent of the hint and the first assert is clean; a
 * field-collapsing alias model merges the two words and reports a
 * spurious flow. The second assert guards the punned supervisor word,
 * which genuinely is non-core data.
 */
#include "../common/pl.h"
#include "../common/sys.h"

extern PlStatus *status;

extern void initPl(void);
extern float *pickCmd(PlStage *st);
extern float plPunned(void);
extern float portCmd(void);
extern float plConfused(void);

int main(void)
{
    PlStage st;
    float *cp;
    float output;
    float wobble;

    initPl();
    while (1) {
        lockShm();
        st.hint = status->seq;  /* unmonitored non-core read (warning) */
        unlockShm();
        st.cmd = portCmd();     /* core command from the ring */

        cp = pickCmd(&st);      /* resolves to &st.cmd, not &st.hint */
        output = *cp;
        /*** SafeFlow Annotation assert(safe(output)); ***/
        sendControl(output);

        wobble = plPunned();    /* non-core word behind a union pun */
        /*** SafeFlow Annotation assert(safe(wobble)); ***/
        printf("[pointerlab] wobble %f drift %f\n", wobble, plConfused());
        usleep(PL_PERIOD_US);
    }
    return 0;
}
