/* Seeded cross-region confusion defect: the diagnostic drift probe
 * steps the slot pointer one element past the ring, onto the bytes
 * where the adjacently-carved supervisor status block lives. The
 * offset is a compile-time constant, so the access provably exceeds
 * the ring's declared extent and must be reported as a bounds
 * violation in every configuration.
 */
#include "../common/pl.h"
#include "../common/sys.h"

extern PlSlot *ring;

float plConfused(void)
{
    PlSlot *stray;

    stray = ring + PL_SLOTS;   /* first slot past the ring */
    return stray->cmd;         /* reads into the status block */
}
