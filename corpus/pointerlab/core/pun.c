/* Union punning in the pointerlab controller.
 *
 * plPunned launders a raw non-core supervisor word through a PlWord
 * union: the integer member is written, the float member is read.
 * The members overlap, so the float genuinely depends on non-core
 * data — a defect a per-field-index alias model misses because it
 * gives each member a disjoint object.
 *
 * portCmd round-trips the ring pointer through the untyped word of a
 * PlPort union, the queue idiom. Only an alias model whose union
 * members share overlapping cells resolves the dequeued pointer back
 * to the shared-memory ring.
 */
#include "../common/pl.h"
#include "../common/sys.h"

extern PlSlot *ring;
extern PlStatus *status;

/* The supervisor's raw word reinterpreted as a float. The pun is the
 * data flow: w.f overlaps w.i byte for byte. */
float plPunned(void)
{
    PlWord w;

    lockShm();
    w.i = status->raw;   /* unmonitored non-core read (warning) */
    unlockShm();
    return w.f;
}

/* Command of the first ring slot, with the slot pointer carried through
 * the untyped queue word. */
float portCmd(void)
{
    PlPort port;
    PlSlot *s;

    port.raw = (void *) ring;
    s = port.slot;
    return s->cmd;
}
