/* The paper's running example (Fig. 2 and Fig. 3): the simplified core
 * controller of the inverted pendulum Simplex implementation. The
 * decision function monitors only noncoreCtrl, yet checkSafety
 * dereferences the feedback region — the unmonitored access SafeFlow
 * reports, which makes the critical value `output` unsafe.
 */

typedef struct SHM {
    float control;
    float position;
    float angle;
    int   seq;
} SHMData;

SHMData *feedback;
SHMData *noncoreCtrl;

extern int   shmget(int key, int size, int flags);
extern void *shmat(int shmid, void *addr, int flags);
extern void  Lock(int *l);
extern void  Unlock(int *l);
extern void  wait_period(int tsecs);
extern void  sendControl(float output);
extern void  getFeedback(SHMData *fb);
extern void  computeSafety(SHMData *fb, float *safeControl);

int shmLock;

#define SHMKEY 1234
#define SHMSIZE (2 * sizeof(SHMData))

/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
    void *shmStart;
    int shmid;

    shmid = shmget(SHMKEY, SHMSIZE, 0);
    shmStart = shmat(shmid, 0, 0);
    feedback = (SHMData *) shmStart;
    noncoreCtrl = feedback + 1;
    /*** SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) ***/
    /*** SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMData))) ***/
    /*** SafeFlow Annotation assume(noncore(feedback)) ***/
    /*** SafeFlow Annotation assume(noncore(noncoreCtrl)) ***/
}

int checkSafety(SHMData *fb, SHMData *nc)
{
    if (fb->angle < 0.5f && nc->control < 5.0f && nc->control > -5.0f) {
        return 1;
    }
    return 0;
}

float decision(SHMData *fb, float safeControl, SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
    if (checkSafety(fb, nc)) {
        return nc->control;
    }
    return safeControl;
}

int main(void)
{
    float safeControl;
    float output;

    initComm();
    while (1) {
        getFeedback(feedback);
        computeSafety(feedback, &safeControl);
        Unlock(&shmLock);
        wait_period(1);
        Lock(&shmLock);
        output = decision(feedback, safeControl, noncoreCtrl);
        /*** SafeFlow Annotation assert(safe(output)); ***/
        sendControl(output);
    }
    return 0;
}
