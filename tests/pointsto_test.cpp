// Unit and end-to-end tests for the Andersen-style points-to solver:
// constraint generation, SCC cycle collapse, byte-offset field cells
// (constant pointer arithmetic, union overlap, out-of-bounds constants),
// budget degradation monotonicity, the function-qualified describe()
// names, and the pointerlab corpus goldens that pin the precision delta
// against the legacy alias engine. The subprocess tests spawn the real
// `safeflow` binary (SAFEFLOW_EXE) to check report stability across
// --jobs levels and warm cache runs under --alias=andersen.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/alias.h"
#include "analysis/pointsto.h"
#include "analysis/shm_regions.h"
#include "cfront/frontend.h"
#include "ir/callgraph.h"
#include "ir/lowering.h"
#include "ir/ssa.h"
#include "safeflow/driver.h"
#include "support/limits.h"

namespace {

using namespace safeflow;

std::string corpusDir() { return SAFEFLOW_CORPUS_DIR; }

struct Pipeline {
  std::unique_ptr<cfront::Frontend> fe;
  std::unique_ptr<ir::Module> module;
  std::unique_ptr<ir::CallGraph> callgraph;
  analysis::ShmRegionTable regions;
};

Pipeline run(const std::string& src) {
  Pipeline p;
  p.fe = std::make_unique<cfront::Frontend>();
  EXPECT_TRUE(p.fe->parseBuffer("unit.c", src))
      << p.fe->diagnostics().render(p.fe->sources());
  p.module = std::make_unique<ir::Module>(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), *p.module, p.fe->diagnostics());
  EXPECT_TRUE(lowering.run());
  ir::promoteModuleToSsa(*p.module);
  p.regions = analysis::ShmRegionTable::build(*p.module,
                                              p.fe->diagnostics());
  p.callgraph = std::make_unique<ir::CallGraph>(*p.module);
  return p;
}

std::vector<const ir::Instruction*> instructionsOf(const ir::Function* fn,
                                                   ir::Opcode op) {
  std::vector<const ir::Instruction*> out;
  for (const auto& bb : fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == op) out.push_back(inst.get());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Constraint generation and field-offset resolution
// ---------------------------------------------------------------------------

TEST(PointsTo, ConstantArithmeticResolvesAdjacentField) {
  auto p = run(R"(
struct Two { int a; int b; };
int readBoth(void)
{
    struct Two t;
    int *pa;
    int *pb;
    int *pq;
    pa = &t.a;
    pb = &t.b;
    pq = pa + 1;   /* one int past a is exactly b */
    *pb = 2;
    return *pq;
}
)");
  analysis::PointsToSolver solver(*p.module, p.regions, *p.callgraph,
                                  analysis::PointsToOptions{true}, nullptr);
  solver.solve();
  const ir::Function* fn = p.module->findFunction("readBoth");
  const auto geps = instructionsOf(fn, ir::Opcode::kFieldAddr);
  ASSERT_EQ(geps.size(), 2u);
  const auto idx = instructionsOf(fn, ir::Opcode::kIndexAddr);
  ASSERT_EQ(idx.size(), 1u);
  // pa + 1 lands on the b cell, not on a and not on the whole object.
  EXPECT_NE(solver.pointsTo(geps[0]), solver.pointsTo(idx[0]));
  EXPECT_EQ(solver.pointsTo(geps[1]), solver.pointsTo(idx[0]));
  const auto& cell = solver.pointsTo(idx[0]);
  ASSERT_EQ(cell.size(), 1u);
  EXPECT_EQ(solver.extentOf(*cell.begin()),
            (std::pair<std::int64_t, std::int64_t>{4, 4}));
}

TEST(PointsTo, OutOfBoundsConstantOffsetIsUnknown) {
  auto p = run(R"(
struct Two { int a; int b; };
int stray(void)
{
    struct Two t;
    int *pa;
    int *px;
    pa = &t.a;
    px = pa + 5;   /* byte 20 of an 8-byte record */
    return *px;
}
)");
  analysis::PointsToSolver solver(*p.module, p.regions, *p.callgraph,
                                  analysis::PointsToOptions{true}, nullptr);
  solver.solve();
  const ir::Function* fn = p.module->findFunction("stray");
  const auto idx = instructionsOf(fn, ir::Opcode::kIndexAddr);
  ASSERT_EQ(idx.size(), 1u);
  const auto& pts = solver.pointsTo(idx[0]);
  ASSERT_FALSE(pts.empty());
  bool any_unknown = false;
  for (auto o : pts) any_unknown |= solver.isUnknown(o);
  EXPECT_TRUE(any_unknown);
}

TEST(PointsTo, UnionMembersOverlap) {
  auto p = run(R"(
union Pun { int i; double d; };
double launder(int x)
{
    union Pun u;
    u.i = x;
    return u.d;
}
)");
  analysis::PointsToSolver solver(*p.module, p.regions, *p.callgraph,
                                  analysis::PointsToOptions{true}, nullptr);
  solver.solve();
  const ir::Function* fn = p.module->findFunction("launder");
  const auto geps = instructionsOf(fn, ir::Opcode::kFieldAddr);
  ASSERT_EQ(geps.size(), 2u);
  // The 4-byte int view and the 8-byte double view are distinct cells,
  // but each exposed set names the overlapping sibling too, so stores
  // through one member are visible through the other.
  const auto& pi = solver.pointsTo(geps[0]);
  const auto& pd = solver.pointsTo(geps[1]);
  EXPECT_EQ(pi, pd);
  EXPECT_EQ(pi.size(), 2u);
}

TEST(PointsTo, PointerRoundTripsThroughUnionWord) {
  auto p = run(R"(
union Port { int *typed; void *raw; };
int deref(void)
{
    union Port port;
    int target;
    int *back;
    port.raw = (void *) &target;
    back = port.typed;
    return *back;
}
)");
  analysis::PointsToSolver solver(*p.module, p.regions, *p.callgraph,
                                  analysis::PointsToOptions{true}, nullptr);
  solver.solve();
  const ir::Function* fn = p.module->findFunction("deref");
  const auto allocas = instructionsOf(fn, ir::Opcode::kAlloca);
  const ir::Instruction* target = nullptr;
  for (const auto* a : allocas) {
    if (a->name() == "target") target = a;
  }
  ASSERT_NE(target, nullptr);
  const auto& ta = solver.pointsTo(target);
  ASSERT_EQ(ta.size(), 1u);
  const auto loads = instructionsOf(fn, ir::Opcode::kLoad);
  // The load of port.typed must resolve back to the target alloca.
  bool resolved = false;
  for (const auto* ld : loads) {
    if (!ld->type()->isPointer()) continue;
    if (solver.pointsTo(ld).count(*ta.begin()) != 0) resolved = true;
  }
  EXPECT_TRUE(resolved);
}

TEST(PointsTo, CallChainResolvesReturnedPointer) {
  auto p = run(R"(
struct Two { int a; int b; };
int *inner(struct Two *t) { return &t->a + 1; }
int *outer(struct Two *t) { return inner(t); }
int readIt(void)
{
    struct Two t;
    int *pb;
    pb = outer(&t);
    return *pb;
}
)");
  analysis::PointsToSolver solver(*p.module, p.regions, *p.callgraph,
                                  analysis::PointsToOptions{true}, nullptr);
  solver.solve();
  const ir::Function* fn = p.module->findFunction("readIt");
  const auto calls = instructionsOf(fn, ir::Opcode::kCall);
  ASSERT_EQ(calls.size(), 1u);
  const auto& pts = solver.pointsTo(calls[0]);
  ASSERT_EQ(pts.size(), 1u);
  // Resolved through two call boundaries to the b cell at byte 4.
  EXPECT_EQ(solver.kindOf(*pts.begin()),
            analysis::PointsToSolver::ObjKind::kField);
  EXPECT_EQ(solver.extentOf(*pts.begin()),
            (std::pair<std::int64_t, std::int64_t>{4, 4}));
}

// ---------------------------------------------------------------------------
// Cycle collapse
// ---------------------------------------------------------------------------

TEST(PointsTo, PhiCycleCollapsesAndStaysPrecise) {
  // A two-variable pointer swap loop: the phis form a copy cycle the
  // condensation must collapse, after which both names see exactly the
  // two allocas.
  SafeFlowDriver driver;
  driver.addSource("cycle.c", R"(
int spin(int n)
{
    int x;
    int y;
    int *p;
    int *q;
    int *t;
    int i;
    x = 1;
    y = 2;
    p = &x;
    q = &y;
    for (i = 0; i < n; i++) {
        t = p;
        p = q;
        q = t;
    }
    return *p + *q;
}
int main(void) { return spin(3); }
)");
  driver.analyze();
  ASSERT_FALSE(driver.hasFrontendErrors())
      << driver.diagnostics().render(driver.sources());
  std::uint64_t collapsed = 0;
  std::uint64_t constraints = 0;
  for (const auto& [name, value] : driver.stats().counters) {
    if (name == "pointsto.scc_collapsed") collapsed = value;
    if (name == "pointsto.constraints") constraints = value;
  }
  EXPECT_GT(collapsed, 0u);
  EXPECT_GT(constraints, 0u);
}

// ---------------------------------------------------------------------------
// Budget degradation
// ---------------------------------------------------------------------------

TEST(PointsTo, BudgetExhaustionWidensToUnknown) {
  const char* src = R"(
struct Two { int a; int b; };
int readBoth(void)
{
    struct Two t;
    int *pa;
    int *pb;
    pa = &t.a;
    pb = &t.b;
    *pa = 1;
    *pb = 2;
    return *pa + *pb;
}
)";
  auto p = run(src);

  analysis::PointsToSolver full(*p.module, p.regions, *p.callgraph,
                                analysis::PointsToOptions{true}, nullptr);
  full.solve();
  EXPECT_FALSE(full.degraded());

  support::BudgetLimits limits;
  limits.phase_steps = 3;  // trips mid-constraint-generation
  support::AnalysisBudget budget(limits);
  budget.start();
  analysis::PointsToSolver starved(*p.module, p.regions, *p.callgraph,
                                   analysis::PointsToOptions{true}, &budget);
  starved.solve();
  EXPECT_TRUE(starved.degraded());

  // Monotone degradation: nothing tightens. Every surviving points-to
  // set names unknown in addition to whatever it resolved, so consumers
  // treat partially-solved pointers as unresolved.
  ASSERT_FALSE(starved.allPointsTo().empty());
  for (const auto& [v, pts] : starved.allPointsTo()) {
    bool any_unknown = false;
    for (auto o : pts) any_unknown |= starved.isUnknown(o);
    EXPECT_TRUE(any_unknown) << "tight set survived budget exhaustion";
  }
}

// ---------------------------------------------------------------------------
// describe() injectivity (function-qualified alloca names)
// ---------------------------------------------------------------------------

TEST(Alias, DescribeQualifiesAllocasWithFunction) {
  // The stores through p keep each `slot` address-taken, so the allocas
  // survive mem2reg and get alias objects.
  const char* src = R"(
int first(void)  { int slot; int *p; p = &slot; *p = 1; return *p; }
int second(void) { int slot; int *p; p = &slot; *p = 2; return *p; }
)";
  for (auto engine : {analysis::AliasOptions::Engine::kAndersen,
                      analysis::AliasOptions::Engine::kLegacy}) {
    auto p = run(src);
    analysis::AliasOptions opts;
    opts.engine = engine;
    analysis::AliasAnalysis alias(*p.module, p.regions, *p.callgraph, opts);
    alias.run();
    std::vector<std::string> names;
    for (const char* fn_name : {"first", "second"}) {
      const ir::Function* fn = p.module->findFunction(fn_name);
      const auto allocas = instructionsOf(fn, ir::Opcode::kAlloca);
      ASSERT_EQ(allocas.size(), 1u);
      const auto& pts = alias.pointsTo(allocas[0]);
      ASSERT_EQ(pts.size(), 1u);
      names.push_back(alias.describe(*pts.begin()));
    }
    // Same local name in two functions must not collide.
    EXPECT_NE(names[0], names[1]);
    EXPECT_EQ(names[0], "first::slot");
    EXPECT_EQ(names[1], "second::slot");
  }
}

// ---------------------------------------------------------------------------
// Pointerlab corpus: goldens and the precision delta vs legacy
// ---------------------------------------------------------------------------

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult runCommand(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string pointerlabFiles() {
  std::ostringstream os;
  for (const char* f :
       {"chain.c", "comm.c", "confuse.c", "main.c", "pun.c"}) {
    os << " " << corpusDir() << "/pointerlab/core/" << f;
  }
  return os.str();
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Replaces the absolute corpus prefix with the repo-relative one the
// checked-in goldens use (CI regenerates them from the repo root).
std::string normalizePaths(std::string text) {
  const std::string abs = corpusDir();
  std::size_t pos = 0;
  while ((pos = text.find(abs, pos)) != std::string::npos) {
    text.replace(pos, abs.size(), "corpus");
    pos += 6;
  }
  return text;
}

TEST(PointerlabCorpus, AndersenMatchesCheckedInGolden) {
  const RunResult r = runCommand(std::string(SAFEFLOW_EXE) +
                                 " --alias=andersen" + pointerlabFiles());
  EXPECT_EQ(r.exit_code, 1) << r.output;  // the pun defect is a data error
  EXPECT_EQ(normalizePaths(r.output),
            readFile(corpusDir() + "/pointerlab/expected_andersen.txt"));
}

TEST(PointerlabCorpus, LegacyMatchesCheckedInGolden) {
  const RunResult r = runCommand(std::string(SAFEFLOW_EXE) +
                                 " --alias=legacy" + pointerlabFiles());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(normalizePaths(r.output),
            readFile(corpusDir() + "/pointerlab/expected_legacy.txt"));
}

TEST(PointerlabCorpus, PrecisionDeltaVersusLegacy) {
  const RunResult andersen = runCommand(std::string(SAFEFLOW_EXE) +
                                        " --alias=andersen" +
                                        pointerlabFiles());
  const RunResult legacy = runCommand(std::string(SAFEFLOW_EXE) +
                                      " --alias=legacy" + pointerlabFiles());
  // Andersen resolves pickCmd's pointer arithmetic to the command word:
  // the spurious flow into 'output' disappears, and the genuine union
  // pun into 'wobble' is caught instead. Legacy has it exactly reversed.
  EXPECT_EQ(andersen.output.find("critical value 'output'"),
            std::string::npos)
      << andersen.output;
  EXPECT_NE(andersen.output.find("critical value 'wobble'"),
            std::string::npos)
      << andersen.output;
  EXPECT_NE(legacy.output.find("critical value 'output'"), std::string::npos)
      << legacy.output;
  EXPECT_EQ(legacy.output.find("critical value 'wobble'"), std::string::npos)
      << legacy.output;
  // The seeded cross-region confusion defect is caught in BOTH engines.
  for (const auto* out : {&andersen.output, &legacy.output}) {
    EXPECT_NE(out->find("[shm-bounds-const]"), std::string::npos) << *out;
    EXPECT_NE(out->find("always outside its 8 elements"), std::string::npos)
        << *out;
  }
}

TEST(PointerlabCorpus, ReportByteIdenticalAcrossJobsAndWarmCache) {
  char tmpl[] = "/tmp/sf_pointsto_cache_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string cache = tmpl;
  const std::string base = std::string(SAFEFLOW_EXE) +
                           " --alias=andersen --isolate --cache-dir " +
                           cache + pointerlabFiles();
  // Per-TU supervised analysis legitimately sees fewer cross-file flows
  // than the whole-program mode (DESIGN.md §10); what must hold is that
  // the report never varies with --jobs or cache temperature.
  const RunResult cold = runCommand(base + " --jobs 1");
  EXPECT_NE(cold.exit_code, 2) << cold.output;
  const RunResult warm = runCommand(base + " --jobs 1");
  const RunResult wide = runCommand(base + " --jobs 4");
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_EQ(cold.output, wide.output);
  runCommand("rm -rf " + cache);
}

std::uint64_t statsCounter(const std::string& stats_path,
                           const std::string& name) {
  // Cheap extraction of `"name": <n>` from the stats JSON.
  const std::string text = readFile(stats_path);
  const std::string key = "\"" + name + "\":";
  const std::size_t pos = text.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + key.size(), nullptr, 10);
}

TEST(PointerlabCorpus, AliasFlagChangesCacheKey) {
  char tmpl[] = "/tmp/sf_pointsto_key_XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string stats = dir + "/stats.json";
  const std::string base = std::string(SAFEFLOW_EXE) +
                           " --isolate --jobs 2 --cache-dir " + dir +
                           "/cache --stats-json " + stats;
  const std::string files = pointerlabFiles();
  const RunResult andersen = runCommand(base + " --alias=andersen" + files);
  EXPECT_NE(andersen.exit_code, 2) << andersen.output;
  // Switching engines must never replay the other engine's cache: the
  // legacy run misses on every shard, then a repeat legacy run hits.
  const RunResult legacy = runCommand(base + " --alias=legacy" + files);
  EXPECT_NE(legacy.exit_code, 2) << legacy.output;
  EXPECT_EQ(statsCounter(stats, "cache.hits"), 0u);
  EXPECT_EQ(statsCounter(stats, "cache.misses"), 5u);
  const RunResult again = runCommand(base + " --alias=legacy" + files);
  EXPECT_NE(again.exit_code, 2) << again.output;
  EXPECT_EQ(statsCounter(stats, "cache.hits"), 5u);
  runCommand("rm -rf " + dir);
}

}  // namespace
