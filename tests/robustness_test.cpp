// Robustness: the front end and driver must terminate with diagnostics —
// never crash or hang — on malformed, truncated, and random-soup inputs.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;

void mustTerminate(const std::string& src) {
  SafeFlowDriver driver;
  driver.addSource("fuzz.c", src);
  driver.analyze();  // success or diagnostics — either is fine
  SUCCEED();
}

TEST(Robustness, EmptyInput) { mustTerminate(""); }

TEST(Robustness, OnlyComments) {
  mustTerminate("/* nothing */\n// here\n");
}

TEST(Robustness, TruncatedFunction) {
  mustTerminate("int main(void) { if (1) {");
}

TEST(Robustness, TruncatedStruct) {
  mustTerminate("struct S { int a;");
}

TEST(Robustness, UnbalancedParens) {
  mustTerminate("int f(void) { return (((1); }");
}

TEST(Robustness, StrayTokens) {
  mustTerminate("; ; } ) ] int x; { ( [");
}

TEST(Robustness, AnnotationGarbage) {
  mustTerminate(
      "/*** SafeFlow Annotation assume(core( ***/\n"
      "/*** SafeFlow Annotation assert( ***/\n"
      "int main(void) { return 0; }");
}

TEST(Robustness, DeeplyNestedExpressions) {
  std::string e = "1";
  for (int i = 0; i < 200; ++i) e = "(" + e + "+1)";
  mustTerminate("int f(void) { return " + e + "; }");
}

TEST(Robustness, DeeplyNestedBlocks) {
  std::string body;
  for (int i = 0; i < 200; ++i) body += "if (1) {";
  body += "return 0;";
  for (int i = 0; i < 200; ++i) body += "}";
  mustTerminate("int f(void) { " + body + " }");
}

TEST(Robustness, MacroRecursionBounded) {
  mustTerminate(
      "#define A B\n#define B A\nint x = A;\n");
}

TEST(Robustness, SelfIncludeGuarded) {
  // #include of a missing file reports; no infinite loop possible here.
  mustTerminate("#include \"not_there.h\"\nint x;");
}

class RandomSoup : public ::testing::TestWithParam<int> {};

TEST_P(RandomSoup, NeverCrashes) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const char* tokens[] = {
      "int ",   "float ",  "{",        "}",      "(",       ")",
      ";",      "*",       "x",        "y",      "=",       "1",
      "if ",    "while ",  "return ",  ",",      "[",       "]",
      "struct ", "\"s\"",  "'c'",      "->",     ".",       "+",
      "/* c */", "typedef ", "#define M 1\n",    "sizeof",  "&",
  };
  std::uniform_int_distribution<std::size_t> pick(
      0, std::size(tokens) - 1);
  for (int trial = 0; trial < 20; ++trial) {
    std::string src;
    for (int i = 0; i < 120; ++i) src += tokens[pick(rng)];
    mustTerminate(src);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSoup,
                         ::testing::Values(101, 202, 303, 404));

TEST(Robustness, HugeButValidProgramTerminatesQuickly) {
  std::string src;
  for (int i = 0; i < 300; ++i) {
    src += "int f" + std::to_string(i) + "(int a) { return a + " +
           std::to_string(i) + "; }\n";
  }
  mustTerminate(src);
}

}  // namespace
