// Tests for the POSIX subprocess runner behind the analysis supervisor:
// capture, exit/signal classification, the watchdog deadline kill, and
// the fd/zombie hygiene the ASan CI job depends on.
#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/wait.h>

#include "support/subprocess.h"

namespace {

using safeflow::support::runSubprocess;
using safeflow::support::signalName;
using safeflow::support::SubprocessOptions;
using safeflow::support::SubprocessResult;
using Status = SubprocessResult::Status;

std::size_t openFdCount() {
  std::size_t n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;
}

TEST(Subprocess, CapturesStdoutStderrAndExitCode) {
  const auto r = runSubprocess(
      {"/bin/sh", "-c", "echo out-line; echo err-line >&2; exit 3"});
  EXPECT_EQ(r.status, Status::kExited);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_EQ(r.out_text, "out-line\n");
  EXPECT_EQ(r.err_text, "err-line\n");
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(Subprocess, ClassifiesSignalDeath) {
  const auto r = runSubprocess({"/bin/sh", "-c", "kill -SEGV $$"});
  ASSERT_EQ(r.status, Status::kSignaled);
  EXPECT_EQ(signalName(r.signal_number), "SIGSEGV");
}

TEST(Subprocess, WatchdogKillsHangWithinDeadline) {
  SubprocessOptions opts;
  opts.timeout_seconds = 0.3;
  const auto r = runSubprocess({"/bin/sh", "-c", "sleep 30"}, opts);
  EXPECT_EQ(r.status, Status::kTimedOut);
  EXPECT_EQ(r.signal_number, SIGKILL);
  // Orders of magnitude under the 30s sleep: the kill actually landed.
  EXPECT_LT(r.wall_seconds, 5.0);
}

TEST(Subprocess, WatchdogStillCapturesOutputBeforeTheKill) {
  SubprocessOptions opts;
  opts.timeout_seconds = 0.3;
  const auto r =
      runSubprocess({"/bin/sh", "-c", "echo before-hang; sleep 30"}, opts);
  EXPECT_EQ(r.status, Status::kTimedOut);
  EXPECT_EQ(r.out_text, "before-hang\n");
}

TEST(Subprocess, ExecFailureYieldsConventional127) {
  const auto r = runSubprocess({"/definitely/not/a/binary"});
  ASSERT_EQ(r.status, Status::kExited);
  EXPECT_EQ(r.exit_code, 127);
  EXPECT_NE(r.err_text.find("exec failed"), std::string::npos);
}

TEST(Subprocess, EmptyArgvIsSpawnFailure) {
  const auto r = runSubprocess({});
  EXPECT_EQ(r.status, Status::kSpawnFailed);
}

TEST(Subprocess, ExtraEnvReachesChild) {
  SubprocessOptions opts;
  opts.extra_env.emplace_back("SAFEFLOW_TEST_VAR", "marker-42");
  const auto r =
      runSubprocess({"/bin/sh", "-c", "echo $SAFEFLOW_TEST_VAR"}, opts);
  EXPECT_TRUE(r.exitedWith(0));
  EXPECT_EQ(r.out_text, "marker-42\n");
}

TEST(Subprocess, OutputCaptureIsBoundedButChildCompletes) {
  SubprocessOptions opts;
  opts.max_capture_bytes = 1000;
  // 1 MiB of output: far beyond the cap and beyond the pipe buffer, so
  // the runner must keep draining or the child would block forever.
  const auto r = runSubprocess(
      {"/bin/sh", "-c", "head -c 1048576 /dev/zero | tr '\\0' x"}, opts);
  EXPECT_TRUE(r.exitedWith(0));
  EXPECT_EQ(r.out_text.size(), 1000u);
}

TEST(Subprocess, SignalNames) {
  EXPECT_EQ(signalName(SIGKILL), "SIGKILL");
  EXPECT_EQ(signalName(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(signalName(SIGABRT), "SIGABRT");
  EXPECT_EQ(signalName(64), "SIG64");
}

TEST(Subprocess, NoZombiesAndNoFdLeaksAcrossManyRuns) {
  // Warm up allocators/fd tables, then measure.
  (void)runSubprocess({"/bin/sh", "-c", "true"});
  const std::size_t fds_before = openFdCount();
  for (int i = 0; i < 16; ++i) {
    (void)runSubprocess({"/bin/sh", "-c", "echo x; exit 1"});
  }
  SubprocessOptions opts;
  opts.timeout_seconds = 0.1;
  (void)runSubprocess({"/bin/sh", "-c", "sleep 30"}, opts);
  EXPECT_EQ(openFdCount(), fds_before);
  // Every child was reaped: there must be no waitable children left.
  errno = 0;
  const pid_t reaped = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(reaped == -1 && errno == ECHILD)
      << "unreaped child (zombie) survived: waitpid returned " << reaped;
}

}  // namespace
