// Shared helpers for the safeflowd tests: spawn the real daemon binary
// (path injected by CMake as SAFEFLOWD_EXE) on a scratch socket, wait
// for it to accept, send raw NDJSON requests, and reap it. Faults are
// aimed via per-spawn extra env so the global test environment is never
// mutated.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "support/unix_socket.h"

namespace daemon_test {

/// Forks and execs safeflowd with `args` appended after the binary path.
/// Returns the child pid (-1 on fork failure). The daemon's stdout and
/// stderr are inherited so failures show up in the test log.
inline pid_t spawnDaemon(
    const std::vector<std::string>& args,
    const std::vector<std::pair<std::string, std::string>>& extra_env = {}) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  for (const auto& [name, value] : extra_env) {
    ::setenv(name.c_str(), value.c_str(), 1);
  }
  std::vector<std::string> store;
  store.emplace_back(SAFEFLOWD_EXE);
  for (const std::string& a : args) store.push_back(a);
  std::vector<char*> argv;
  argv.reserve(store.size() + 1);
  for (std::string& a : store) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

/// Polls with connect() until the daemon accepts or the deadline lapses.
inline bool waitForSocket(const std::string& path,
                          double timeout_seconds = 15.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = safeflow::support::connectUnixSocket(path);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// One protocol round trip: connect, send `request` verbatim, read one
/// response line. Returns the line ("" on transport failure; `*io`
/// reports the precise outcome when non-null).
inline std::string rawRequest(const std::string& socket_path,
                              const std::string& request,
                              double timeout_seconds = 120.0,
                              safeflow::support::LineIo* io = nullptr) {
  namespace support = safeflow::support;
  std::string line;
  const int fd = support::connectUnixSocket(socket_path);
  if (fd < 0) {
    if (io != nullptr) *io = support::LineIo::kError;
    return line;
  }
  if (!support::writeAll(fd, request)) {
    ::close(fd);
    if (io != nullptr) *io = support::LineIo::kError;
    return line;
  }
  const support::LineIo rc =
      support::readLine(fd, &line, 64u << 20, timeout_seconds);
  ::close(fd);
  if (io != nullptr) *io = rc;
  return line;
}

/// Builds an analyze request. Paths in the tests contain no characters
/// needing JSON escapes beyond these two.
inline std::string analyzeRequest(const std::vector<std::string>& files,
                                  const std::vector<std::string>& flags,
                                  bool json = false, bool quiet = false,
                                  std::uint64_t deadline_ms = 0) {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::string request = "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [";
  for (std::size_t i = 0; i < files.size(); ++i) {
    request += (i == 0 ? "\"" : ", \"") + escape(files[i]) + "\"";
  }
  request += "], \"flags\": [";
  for (std::size_t i = 0; i < flags.size(); ++i) {
    request += (i == 0 ? "\"" : ", \"") + escape(flags[i]) + "\"";
  }
  request += "], \"json\": ";
  request += json ? "true" : "false";
  request += ", \"quiet\": ";
  request += quiet ? "true" : "false";
  if (deadline_ms > 0) {
    request += ", \"deadline_ms\": " + std::to_string(deadline_ms);
  }
  request += "}\n";
  return request;
}

/// Waits for the child to exit. Returns the raw waitpid status, or -1
/// when the deadline lapses (the caller should SIGKILL and fail).
inline int waitForExit(pid_t pid, double timeout_seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return -1;
}

/// Best-effort teardown for tests that already asserted what they
/// needed: SIGKILL + reap, ignoring errors.
inline void killDaemon(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  (void)waitForExit(pid, 10.0);
}

}  // namespace daemon_test
