// Fault-injection soak for safeflowd: one daemon instance serves many
// iterations of randomized traffic — analyze requests (some identical,
// coalescing; some with tight deadlines), status probes, protocol
// garbage, mid-request disconnects — while every worker's first attempt
// dies from a randomized injected fault (crash/oom/hang). Asserts the
// daemon never dies, never returns a wrong report (every ok response
// matches the clean reference bytes), and exercises busy-shedding.
//
// Iteration count defaults low so the suite stays fast locally; CI sets
// SAFEFLOW_DAEMON_SOAK_ITERS=200 for the long soak. The random stream
// is a seeded LCG, so a given iteration count is fully reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "daemon_test_util.h"
#include "support/json.h"
#include "support/subprocess.h"

namespace {

using namespace safeflow;
using namespace daemon_test;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

/// Deterministic 64-bit LCG (MMIX constants) — no std::random so runs
/// are identical across libstdc++ versions.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

std::size_t soakIterations() {
  if (const char* env = std::getenv("SAFEFLOW_DAEMON_SOAK_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 30;
}

TEST(DaemonSoak, InjectedFaultsAndHostileClientsNeverKillTheDaemon) {
  const std::vector<std::string> work_sets[] = {
      {kCorpus + "/running_example/core.c"},
      {kCorpus + "/ip/core/safety.c", kCorpus + "/ip/core/telemetry.c"},
  };
  const std::vector<std::string> flag_sets[] = {
      {},
      {"-I", kCorpus + "/ip/common"},
  };
  const char* kinds[] = {"crash", "oom", "hang"};
  const char* phases[] = {"frontend", "ssa", "taint", "report"};

  // Clean reference bytes per work set × quiet mode: what every
  // successful response must carry, faults or not (first attempts die,
  // retries succeed).
  std::string references[2][2];
  for (int w = 0; w < 2; ++w) {
    for (int q = 0; q < 2; ++q) {
      std::vector<std::string> argv = {SAFEFLOW_EXE, "--isolate"};
      if (q == 1) argv.emplace_back("--quiet");
      argv.insert(argv.end(), flag_sets[w].begin(), flag_sets[w].end());
      argv.insert(argv.end(), work_sets[w].begin(), work_sets[w].end());
      support::SubprocessOptions opts;
      opts.timeout_seconds = 120.0;
      const support::SubprocessResult ref =
          support::runSubprocess(argv, opts);
      ASSERT_TRUE(ref.exitedWith(0)) << ref.err_text;
      references[w][q] = ref.out_text;
    }
  }

  Lcg rng(0xdae30f5afeULL);
  const std::size_t iters = soakIterations();
  std::uint64_t shed_seen = 0;
  std::uint64_t ok_seen = 0;

  // One daemon takes all the traffic of a fault round; re-spawned per
  // fault configuration (env is per-process), never because it died.
  for (std::size_t round = 0; round < (iters + 9) / 10; ++round) {
    const char* kind = kinds[rng.below(3)];
    const char* phase = phases[rng.below(4)];
    const bool hang = std::string(kind) == "hang";
    const std::string socket =
        ::testing::TempDir() + "sfd_soak_" + std::to_string(::getpid()) +
        "_" + std::to_string(round) + ".sock";

    const pid_t pid = spawnDaemon(
        {"--socket", socket, "--no-cache", "--max-inflight", "1",
         "--max-queue", "1", "--retries", "2", "--worker-timeout",
         hang ? "1s" : "30s", "--worker-exe", SAFEFLOW_EXE},
        {{"SAFEFLOW_INJECT_FAULT", std::string(kind) + "@" + phase},
         {"SAFEFLOW_INJECT_FAULT_ATTEMPTS", "1"}});
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(waitForSocket(socket));

    for (std::size_t i = 0; i < 10 && round * 10 + i < iters; ++i) {
      SCOPED_TRACE("round " + std::to_string(round) + " iter " +
                   std::to_string(i) + ": " + kind + "@" + phase);
      const std::size_t w = rng.below(2);

      // A burst of concurrent clients with overlapping request keys
      // (files × quiet): equal keys coalesce, distinct ones fight for
      // the single slot and the size-1 queue — shedding is expected and
      // must be structured, not a hang.
      const std::size_t burst = 2 + rng.below(3);  // 2..4
      std::vector<std::string> responses(burst);
      std::vector<std::size_t> work(burst);
      std::vector<bool> quiet(burst);
      std::vector<std::thread> clients;
      for (std::size_t c = 0; c < burst; ++c) {
        work[c] = (w + c) % 2;
        quiet[c] = c >= 2;
        const std::string request = analyzeRequest(
            work_sets[work[c]], flag_sets[work[c]], false, quiet[c]);
        clients.emplace_back([&responses, &socket, request, c] {
          responses[c] = rawRequest(socket, request, 120.0);
        });
      }
      // Hostile traffic rides alongside every burst.
      switch (rng.below(3)) {
        case 0:
          (void)rawRequest(socket, "soak garbage {]\n", 15.0);
          break;
        case 1: {
          const int fd = support::connectUnixSocket(socket);
          if (fd >= 0) {
            support::writeAll(fd, "{\"safeflowd\": 1, \"op");
            ::close(fd);  // mid-request disconnect
          }
          break;
        }
        case 2:
          // Tight-deadline request: expires in queue or is shed; either
          // way it must come back structured.
          (void)rawRequest(socket,
                           analyzeRequest(work_sets[1 - w],
                                          flag_sets[1 - w], false, false,
                                          /*deadline_ms=*/1),
                           60.0);
          break;
      }
      for (std::thread& t : clients) t.join();

      for (std::size_t c = 0; c < burst; ++c) {
        const std::string& response = responses[c];
        support::json::Value doc;
        std::string error;
        ASSERT_TRUE(support::json::parse(response, &doc, &error))
            << error << "\nresponse: " << response;
        const std::string status = doc.memberString("status");
        if (status == "ok") {
          ++ok_seen;
          // Never a wrong report: the faulted first attempts were
          // retried to the exact clean bytes.
          EXPECT_EQ(doc.memberString("stdout"),
                    references[work[c]][quiet[c] ? 1 : 0]);
          EXPECT_EQ(static_cast<int>(doc.memberNumber("exit_code", -1)),
                    0);
        } else if (status == "busy") {
          ++shed_seen;
          EXPECT_GT(doc.memberUint("retry_after_ms"), 0u);
        } else {
          ADD_FAILURE() << "unexpected response: " << response;
        }
      }

      // The daemon is still alive and answering between bursts.
      const std::string probe = rawRequest(
          socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
      support::json::Value status_doc;
      std::string probe_error;
      ASSERT_TRUE(support::json::parse(probe, &status_doc, &probe_error))
          << "daemon died mid-soak; probe got: " << probe;
      ASSERT_EQ(status_doc.memberString("status"), "ok");
    }

    // Clean drain after each round; a wedged daemon fails here.
    ::kill(pid, SIGTERM);
    const int status = waitForExit(pid, 60.0);
    ASSERT_NE(status, -1) << "daemon failed to drain";
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }

  EXPECT_GT(ok_seen, 0u);
  // With a 1-deep queue and bursts of up to 4 distinct request keys the
  // admission control must have shed at least once over a full soak.
  if (iters >= 20) {
    EXPECT_GT(shed_seen, 0u);
  }
}

}  // namespace
