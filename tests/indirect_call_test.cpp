// Function-pointer handling: the call graph resolves indirect calls to
// every address-taken function (conservative), and taint/shm facts flow
// through that resolution.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;

const char* kPrelude = R"(
typedef struct Cell { float value; int flag; } Cell;
Cell *nc;
extern void *shmat(int id, void *a, int f);
extern int shmget(int k, int s, int f);
extern void sink(float v);
/*** SafeFlow Annotation shminit ***/
void initShm(void)
{
    nc = (Cell *) shmat(shmget(1, sizeof(Cell), 0), 0, 0);
    /*** SafeFlow Annotation assume(shmvar(nc, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(nc)) ***/
}
)";

std::unique_ptr<SafeFlowDriver> analyze(const std::string& body) {
  auto d = std::make_unique<SafeFlowDriver>();
  d->addSource("fp.c", std::string(kPrelude) + body);
  d->analyze();
  EXPECT_FALSE(d->hasFrontendErrors())
      << d->diagnostics().render(d->sources());
  return d;
}

TEST(IndirectCalls, TaintFlowsThroughFunctionPointer) {
  const auto d = analyze(R"(
float readRaw(void) { return nc->value; }
float apply(float (*op)(void)) { return op(); }
int main(void)
{
    float out;
    initShm();
    out = apply(readRaw);
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  // readRaw is address-taken; the indirect call resolves to it, so the
  // taint reaches `out`.
  ASSERT_FALSE(d->report().errors.empty())
      << d->report().render(d->sources());
}

TEST(IndirectCalls, WarningStillFiresInsideTarget) {
  const auto d = analyze(R"(
float readRaw(void) { return nc->value; }
float apply(float (*op)(void)) { return op(); }
int main(void)
{
    float out;
    initShm();
    out = apply(readRaw);
    sink(out);
    return 0;
}
)");
  bool warned = false;
  for (const auto& w : d->report().warnings) {
    if (w.function == "readRaw") warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(IndirectCalls, MonitorAssumptionNotLeakedThroughIndirection) {
  // A monitor takes a callback; the callback's body is NOT covered by the
  // monitor's assumption when it is also callable from elsewhere
  // (intersection semantics over the conservative indirect resolution).
  const auto d = analyze(R"(
float readRaw(void) { return nc->value; }
float monitor(float (*op)(void))
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(Cell))) ***/
{
    float v;
    v = op();
    if (v > -5.0f && v < 5.0f) { return v; }
    return 0.0f;
}
int main(void)
{
    float checked;
    float raw;
    initShm();
    checked = monitor(readRaw);
    raw = readRaw();
    /*** SafeFlow Annotation assert(safe(raw)); ***/
    sink(checked + raw);
    return 0;
}
)");
  // The direct unmonitored call keeps readRaw unmonitored overall.
  bool warned = false;
  for (const auto& w : d->report().warnings) {
    if (w.function == "readRaw") warned = true;
  }
  EXPECT_TRUE(warned) << d->report().render(d->sources());
  ASSERT_FALSE(d->report().errors.empty());
  EXPECT_EQ(d->report().errors.front().critical_value, "raw");
}

TEST(IndirectCalls, DispatchTableStillAnalyzed) {
  const auto d = analyze(R"(
float modeA(void) { return 1.0f; }
float modeB(void) { return nc->value; }
float dispatch(int which)
{
    float (*table0)(void);
    float (*table1)(void);
    table0 = modeA;
    table1 = modeB;
    if (which == 0) { return table0(); }
    return table1();
}
int main(void)
{
    float out;
    initShm();
    out = dispatch(1);
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  // Conservative: both targets considered; modeB's taint reaches out.
  ASSERT_FALSE(d->report().errors.empty())
      << d->report().render(d->sources());
}

}  // namespace
