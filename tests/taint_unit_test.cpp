// Focused tests for the phase-3 value-flow engine: parameterized
// summaries (per-call-site context sensitivity), effective-assumption
// intersection, implicit critical calls, and provenance.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;
using analysis::CriticalDependencyError;

const char* kPrelude = R"(
typedef struct Cell { float value; int flag; } Cell;
Cell *nc;
extern void *shmat(int id, void *a, int f);
extern int shmget(int k, int s, int f);
extern void sink(float v);
extern int kill(int pid, int sig);
/*** SafeFlow Annotation shminit ***/
void initShm(void)
{
    nc = (Cell *) shmat(shmget(1, sizeof(Cell), 0), 0, 0);
    /*** SafeFlow Annotation assume(shmvar(nc, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(nc)) ***/
}
)";

std::unique_ptr<SafeFlowDriver> analyze(const std::string& body,
                                        SafeFlowOptions options = {}) {
  auto d = std::make_unique<SafeFlowDriver>(std::move(options));
  d->addSource("t.c", std::string(kPrelude) + body);
  d->analyze();
  EXPECT_FALSE(d->hasFrontendErrors())
      << d->diagnostics().render(d->sources());
  return d;
}

TEST(ParamSummaries, SharedHelperDoesNotSmearAcrossCallSites) {
  // Regression: `clamp` is called with both tainted and clean arguments.
  // Parameterized summaries must keep the clean call site clean.
  const auto d = analyze(R"(
float clamp(float v)
{
    if (v > 5.0f) { return 5.0f; }
    if (v < -5.0f) { return -5.0f; }
    return v;
}
int main(void)
{
    float dirty;
    float clean;
    initShm();
    dirty = clamp(nc->value);
    clean = clamp(1.25f);
    /*** SafeFlow Annotation assert(safe(dirty)); ***/
    /*** SafeFlow Annotation assert(safe(clean)); ***/
    sink(dirty + clean);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().critical_value, "dirty");
}

TEST(ParamSummaries, TwoLevelHelperChain) {
  const auto d = analyze(R"(
float inner(float v) { return v * 2.0f; }
float outer(float v) { return inner(v) + 1.0f; }
int main(void)
{
    float dirty;
    float clean;
    initShm();
    dirty = outer(nc->value);
    clean = outer(3.0f);
    /*** SafeFlow Annotation assert(safe(dirty)); ***/
    /*** SafeFlow Annotation assert(safe(clean)); ***/
    sink(dirty + clean);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().critical_value, "dirty");
}

TEST(ParamSummaries, ControlFlowInsideHelperStaysPerCallSite) {
  // The helper branches on its parameter; only the tainted call site's
  // result may carry control taint.
  const auto d = analyze(R"(
int classify(float v)
{
    if (v > 0.0f) { return 1; }
    return 0;
}
int main(void)
{
    int dirty;
    int clean;
    initShm();
    dirty = classify(nc->value);
    clean = classify(-2.0f);
    /*** SafeFlow Annotation assert(safe(dirty)); ***/
    /*** SafeFlow Annotation assert(safe(clean)); ***/
    return dirty + clean;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().critical_value, "dirty");
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kControl);
}

TEST(ParamSummaries, EscapeThroughMemoryUsesMergedTaint) {
  // When a parameter escapes into memory, the merged (concrete) taint is
  // used — conservative across call sites.
  const auto d = analyze(R"(
float box;
void stash(float v) { box = v; }
int main(void)
{
    float out;
    initShm();
    stash(nc->value);
    stash(0.5f);
    out = box;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u);
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kData);
}

TEST(Assumptions, IntersectionOverCallers) {
  // helper is called from a monitor and from an unmonitored function: its
  // effective assumptions are the intersection (empty), so its read
  // warns once.
  const auto d = analyze(R"(
float helper(void) { return nc->value; }
float monitor(void)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(Cell))) ***/
{
    return helper();
}
float unmonitored(void) { return helper(); }
int main(void)
{
    float a;
    initShm();
    a = monitor() + unmonitored();
    sink(a);
    return 0;
}
)");
  std::size_t helper_warnings = 0;
  for (const auto& w : d->report().warnings) {
    if (w.function == "helper") ++helper_warnings;
  }
  EXPECT_EQ(helper_warnings, 1u) << d->report().render(d->sources());
}

TEST(Assumptions, AllCallersMonitoredMeansCovered) {
  const auto d = analyze(R"(
float helper(void) { return nc->value; }
float monitorA(void)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(Cell))) ***/
{
    return helper();
}
float monitorB(void)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(Cell))) ***/
{
    return helper() * 2.0f;
}
int main(void)
{
    float a;
    initShm();
    a = monitorA() + monitorB();
    /*** SafeFlow Annotation assert(safe(a)); ***/
    sink(a);
    return 0;
}
)");
  EXPECT_TRUE(d->report().warnings.empty())
      << d->report().render(d->sources());
  EXPECT_TRUE(d->report().errors.empty());
}

TEST(Assumptions, RecursiveMonitorCoversItself) {
  const auto d = analyze(R"(
float walk(int depth)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(Cell))) ***/
{
    if (depth <= 0) { return nc->value; }
    return walk(depth - 1) * 0.5f;
}
int main(void)
{
    float a;
    initShm();
    a = walk(3);
    /*** SafeFlow Annotation assert(safe(a)); ***/
    sink(a);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

TEST(ImplicitCritical, KillWithoutAnnotation) {
  SafeFlowOptions options;
  options.taint.implicit_critical_calls = {{"kill", 0}};
  const auto d = analyze(R"(
int main(void)
{
    initShm();
    kill(nc->flag, 9);
    return 0;
}
)",
                         options);
  ASSERT_EQ(d->report().errors.size(), 1u);
  EXPECT_EQ(d->report().errors.front().critical_value, "kill(arg0)");
}

TEST(ImplicitCritical, DisabledByDefault) {
  const auto d = analyze(R"(
int main(void)
{
    initShm();
    kill(nc->flag, 9);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty());
}

TEST(Provenance, ErrorCitesTheExactLoad) {
  const auto d = analyze(R"(
int main(void)
{
    float out;
    initShm();
    out = nc->value;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u);
  ASSERT_EQ(d->report().errors.front().source_loads.size(), 1u);
  // The load and the single warning must be the same site.
  ASSERT_EQ(d->report().warnings.size(), 1u);
  EXPECT_EQ(d->report().errors.front().source_loads.front(),
            d->report().warnings.front().location);
}

TEST(Provenance, MultipleLoadsAllCited) {
  const auto d = analyze(R"(
int main(void)
{
    float out;
    initShm();
    out = nc->value + (float)nc->flag;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u);
  EXPECT_EQ(d->report().errors.front().source_loads.size(), 2u);
}

TEST(Sanitization, OverwritingWithCleanValueClearsTaint) {
  // SSA flow sensitivity: after reassignment, the old taint is gone.
  const auto d = analyze(R"(
int main(void)
{
    float out;
    initShm();
    out = nc->value;
    out = 1.0f;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

TEST(Sanitization, PartialOverwriteOnOneBranchKeepsTaint) {
  const auto d = analyze(R"(
extern int flip(void);
int main(void)
{
    float out;
    initShm();
    out = nc->value;
    if (flip()) { out = 1.0f; }
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u);
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kData);
}

TEST(CallStrings, ContextSplitsAssumptions) {
  // In call-strings mode, helper's load is safe in the monitored context
  // and unsafe in the unmonitored one; the unmonitored result must be
  // flagged, the monitored one must not.
  SafeFlowOptions options;
  options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
  const auto d = analyze(R"(
float helper(void) { return nc->value; }
float monitor(void)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(Cell))) ***/
{
    return helper();
}
int main(void)
{
    float bad;
    initShm();
    bad = helper();
    /*** SafeFlow Annotation assert(safe(bad)); ***/
    sink(bad + monitor());
    return 0;
}
)",
                         options);
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().critical_value, "bad");
}

}  // namespace
