#include <gtest/gtest.h>

#include <vector>

#include "cfront/lexer.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace {

using safeflow::cfront::Lexer;
using safeflow::cfront::Token;
using safeflow::cfront::TokenKind;

std::vector<Token> lexAll(const std::string& src,
                          safeflow::support::DiagnosticEngine* diags_out =
                              nullptr) {
  static safeflow::support::SourceManager sm;
  static safeflow::support::DiagnosticEngine diags;
  diags.clear();
  const auto id = sm.addBuffer("test.c", src);
  Lexer lex(id, sm.contents(id), diags);
  std::vector<Token> out;
  for (Token t = lex.next(); !t.is(TokenKind::kEof); t = lex.next()) {
    out.push_back(std::move(t));
  }
  if (diags_out != nullptr) *diags_out = diags;
  return out;
}

TEST(Lexer, Keywords) {
  const auto toks = lexAll("int float while struct return");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(toks[1].kind, TokenKind::kKwFloat);
  EXPECT_EQ(toks[2].kind, TokenKind::kKwWhile);
  EXPECT_EQ(toks[3].kind, TokenKind::kKwStruct);
  EXPECT_EQ(toks[4].kind, TokenKind::kKwReturn);
}

TEST(Lexer, Identifiers) {
  const auto toks = lexAll("foo _bar baz42");
  ASSERT_EQ(toks.size(), 3u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].text, "_bar");
  EXPECT_EQ(toks[2].text, "baz42");
}

TEST(Lexer, IntegerLiterals) {
  const auto toks = lexAll("42 0x1F 0 077 42u 42L");
  ASSERT_EQ(toks.size(), 6u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::kIntLiteral);
  EXPECT_EQ(toks[0].text, "42");
  EXPECT_EQ(toks[1].text, "0x1F");
}

TEST(Lexer, FloatLiterals) {
  const auto toks = lexAll("3.14 1e5 2.5e-3 1.0f");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokenKind::kFloatLiteral);
}

TEST(Lexer, FloatSuffixOnInt) {
  const auto toks = lexAll("5f");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kFloatLiteral);
}

TEST(Lexer, CharAndStringLiterals) {
  const auto toks = lexAll("'a' '\\n' \"hello\" \"a\\\"b\"");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(toks[1].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(toks[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(toks[2].text, "hello");
  EXPECT_EQ(toks[3].kind, TokenKind::kStringLiteral);
}

TEST(Lexer, Operators) {
  const auto toks = lexAll("+ ++ += - -- -= -> << <<= <= < == = && &");
  const std::vector<TokenKind> expected = {
      TokenKind::kPlus,   TokenKind::kPlusPlus,  TokenKind::kPlusAssign,
      TokenKind::kMinus,  TokenKind::kMinusMinus, TokenKind::kMinusAssign,
      TokenKind::kArrow,  TokenKind::kShl,       TokenKind::kShlAssign,
      TokenKind::kLessEq, TokenKind::kLess,      TokenKind::kEqEq,
      TokenKind::kAssign, TokenKind::kAmpAmp,    TokenKind::kAmp,
  };
  ASSERT_EQ(toks.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(toks[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, Ellipsis) {
  const auto toks = lexAll("f(...) .");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].kind, TokenKind::kEllipsis);
  EXPECT_EQ(toks[4].kind, TokenKind::kDot);
}

TEST(Lexer, LineCommentsSkipped) {
  const auto toks = lexAll("a // comment\nb");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, BlockCommentsSkipped) {
  const auto toks = lexAll("a /* multi\nline */ b");
  ASSERT_EQ(toks.size(), 2u);
}

TEST(Lexer, AnnotationCommentRecognized) {
  const auto toks =
      lexAll("/*** SafeFlow Annotation\n  assert(safe(output)); ***/ x");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kAnnotation);
  EXPECT_NE(toks[0].text.find("assert(safe(output))"), std::string::npos);
  EXPECT_EQ(toks[1].text, "x");
}

TEST(Lexer, AnnotationPaperStyle) {
  // The paper writes annotations as /**SafeFlow Annotation ... /***/
  const auto toks = lexAll(
      "/**SafeFlow Annotation\n"
      "   assume(core(noncoreCtrl, 0, sizeof(SHMData))) /***/ int x;");
  ASSERT_GE(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokenKind::kAnnotation);
  EXPECT_NE(toks[0].text.find("assume(core(noncoreCtrl"), std::string::npos);
}

TEST(Lexer, PlainCommentNotAnnotation) {
  const auto toks = lexAll("/* ordinary comment */ x");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].text, "x");
}

TEST(Lexer, SourceLocations) {
  const auto toks = lexAll("a\n  b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].location.line, 1u);
  EXPECT_EQ(toks[0].location.column, 1u);
  EXPECT_EQ(toks[1].location.line, 2u);
  EXPECT_EQ(toks[1].location.column, 3u);
}

TEST(Lexer, AtLineStartFlag) {
  const auto toks = lexAll("a b\n# define");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_TRUE(toks[0].at_line_start);
  EXPECT_FALSE(toks[1].at_line_start);
  EXPECT_TRUE(toks[2].at_line_start);  // the '#'
  EXPECT_FALSE(toks[3].at_line_start);
}

TEST(Lexer, UnterminatedString) {
  safeflow::support::DiagnosticEngine diags;
  lexAll("\"open", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnterminatedBlockComment) {
  safeflow::support::DiagnosticEngine diags;
  lexAll("/* never closed", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, UnexpectedCharacterRecovers) {
  safeflow::support::DiagnosticEngine diags;
  const auto toks = lexAll("a @ b", &diags);
  EXPECT_TRUE(diags.hasErrors());
  ASSERT_EQ(toks.size(), 2u);  // @ reported, a and b survive
}

TEST(Lexer, HexAndOctal) {
  const auto toks = lexAll("0xFF 0x0");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIntLiteral);
}

}  // namespace
