#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cfront/frontend.h"
#include "ir/callgraph.h"
#include "ir/dominators.h"
#include "ir/ir.h"
#include "ir/lowering.h"
#include "ir/printer.h"
#include "ir/ssa.h"

namespace {

using namespace safeflow;

struct Built {
  std::unique_ptr<cfront::Frontend> fe;
  std::unique_ptr<ir::Module> module;
};

Built build(const std::string& src, bool run_ssa = true) {
  Built b;
  b.fe = std::make_unique<cfront::Frontend>();
  EXPECT_TRUE(b.fe->parseBuffer("test.c", src))
      << b.fe->diagnostics().render(b.fe->sources());
  b.module = std::make_unique<ir::Module>(b.fe->types());
  ir::Lowering lowering(b.fe->unit(), *b.module, b.fe->diagnostics());
  EXPECT_TRUE(lowering.run())
      << b.fe->diagnostics().render(b.fe->sources());
  if (run_ssa) ir::promoteModuleToSsa(*b.module);
  return b;
}

std::size_t countOpcode(const ir::Function& fn, ir::Opcode op) {
  std::size_t n = 0;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == op) ++n;
    }
  }
  return n;
}

TEST(Lowering, SimpleFunctionShape) {
  const auto b = build("int add(int a, int b) { return a + b; }",
                       /*run_ssa=*/false);
  const ir::Function* f = b.module->findFunction("add");
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->isDefined());
  EXPECT_EQ(f->args().size(), 2u);
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kAlloca), 2u);  // param spills
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kBinOp), 1u);
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kRet), 1u);
}

TEST(Lowering, GlobalsCreated) {
  const auto b = build("int g; float h; int main(void) { g = 1; return g; }");
  EXPECT_NE(b.module->findGlobal("g"), nullptr);
  EXPECT_NE(b.module->findGlobal("h"), nullptr);
}

TEST(Lowering, IfProducesDiamond) {
  const auto b = build(
      "int f(int x) { int r; if (x > 0) r = 1; else r = 2; return r; }",
      /*run_ssa=*/false);
  const ir::Function* f = b.module->findFunction("f");
  // entry, then, else, end
  EXPECT_EQ(f->blocks().size(), 4u);
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kCondBr), 1u);
}

TEST(Lowering, WhileProducesLoop) {
  const auto b = build(
      "int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }",
      false);
  const ir::Function* f = b.module->findFunction("f");
  EXPECT_EQ(f->blocks().size(), 4u);  // entry, cond, body, end
}

TEST(Lowering, CallDirect) {
  const auto b = build(
      "int g(int x) { return x; }\n"
      "int f(void) { return g(3); }",
      false);
  const ir::Function* f = b.module->findFunction("f");
  bool found = false;
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kCall) {
        ASSERT_NE(inst->direct_callee, nullptr);
        EXPECT_EQ(inst->direct_callee->name(), "g");
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lowering, StructFieldAccessUsesFieldAddr) {
  const auto b = build(
      "struct P { float x; float y; };\n"
      "float get(struct P *p) { return p->y; }",
      false);
  const ir::Function* f = b.module->findFunction("get");
  std::size_t fieldaddrs = countOpcode(*f, ir::Opcode::kFieldAddr);
  EXPECT_EQ(fieldaddrs, 1u);
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kFieldAddr) {
        EXPECT_EQ(inst->field_index, 1u);
      }
    }
  }
}

TEST(Lowering, ArrayIndexUsesIndexAddr) {
  const auto b = build(
      "double table[8];\n"
      "double get(int i) { return table[i]; }",
      false);
  const ir::Function* f = b.module->findFunction("get");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kIndexAddr), 1u);
}

TEST(Lowering, PointerArithmeticUsesIndexAddr) {
  const auto b = build(
      "struct S { int v; };\n"
      "struct S *next(struct S *p) { return p + 1; }",
      false);
  const ir::Function* f = b.module->findFunction("next");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kIndexAddr), 1u);
}

TEST(Lowering, ExplicitCastEmitsCastInst) {
  const auto b = build(
      "struct S { int v; };\n"
      "void *shmat(int i, void *a, int f);\n"
      "struct S *get(int id) { return (struct S *)shmat(id, 0, 0); }",
      false);
  const ir::Function* f = b.module->findFunction("get");
  EXPECT_GE(countOpcode(*f, ir::Opcode::kCast), 1u);
}

TEST(Lowering, AnnotationsBecomeIntrinsics) {
  const auto b = build(
      "typedef struct D { float c; } SHMData;\n"
      "SHMData *nc;\n"
      "void send(float v);\n"
      "float decision(SHMData *p)\n"
      "/*** SafeFlow Annotation assume(core(p, 0, sizeof(SHMData))) ***/\n"
      "{ return p->c; }\n"
      "void loop(void) {\n"
      "  float out = decision(nc);\n"
      "  /*** SafeFlow Annotation assert(safe(out)); ***/\n"
      "  send(out);\n"
      "}",
      false);
  const ir::Function* dec = b.module->findFunction("decision");
  ASSERT_NE(dec, nullptr);
  EXPECT_TRUE(dec->annotations.is_monitor);
  EXPECT_NE(b.module->findFunction(std::string(ir::kIntrinsicAssumeCore)),
            nullptr);
  EXPECT_NE(b.module->findFunction(std::string(ir::kIntrinsicAssertSafe)),
            nullptr);
  // The assume.core call carries offset 0 and size 4 (struct D{float}).
  bool saw_assume = false;
  for (const auto& bb : dec->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kCall &&
          inst->direct_callee != nullptr &&
          inst->direct_callee->name() == ir::kIntrinsicAssumeCore) {
        saw_assume = true;
        ASSERT_EQ(inst->numOperands(), 3u);
        const auto* size =
            static_cast<const ir::ConstantInt*>(inst->operand(2));
        EXPECT_EQ(size->value(), 4);
      }
    }
  }
  EXPECT_TRUE(saw_assume);
}

TEST(Lowering, ShminitFlagSet) {
  const auto b = build(
      "/*** SafeFlow Annotation shminit ***/\n"
      "void initComm(void) { }",
      false);
  const ir::Function* f = b.module->findFunction("initComm");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->annotations.is_shminit);
}

TEST(Lowering, SwitchLowersToCompares) {
  const auto b = build(
      "int f(int m) {\n"
      "  int r = 0;\n"
      "  switch (m) { case 1: r = 10; break; case 2: r = 20; break;\n"
      "               default: r = 30; }\n"
      "  return r;\n"
      "}",
      false);
  const ir::Function* f = b.module->findFunction("f");
  EXPECT_GE(countOpcode(*f, ir::Opcode::kCmp), 2u);
  // Every block must end in a terminator after lowering.
  for (const auto& bb : f->blocks()) {
    EXPECT_NE(bb->terminator(), nullptr) << bb->label();
  }
}

// ---------------------------------------------------------------------------
// SSA
// ---------------------------------------------------------------------------

TEST(Ssa, PromotesScalarLocals) {
  cfront::Frontend fe;
  ASSERT_TRUE(fe.parseBuffer(
      "t.c", "int f(int x) { int a = x + 1; return a * 2; }"));
  ir::Module m(fe.types());
  ir::Lowering lowering(fe.unit(), m, fe.diagnostics());
  ASSERT_TRUE(lowering.run());
  const auto stats = ir::promoteModuleToSsa(m);
  EXPECT_GE(stats.promoted_allocas, 2u);  // x spill + a
  const ir::Function* f = m.findFunction("f");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kAlloca), 0u);
  EXPECT_EQ(ir::verifySsa(*f), "");
}

TEST(Ssa, InsertsPhiAtMerge) {
  const auto b = build(
      "int f(int x) { int r; if (x > 0) r = 1; else r = 2; return r; }");
  const ir::Function* f = b.module->findFunction("f");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kPhi), 1u);
  EXPECT_EQ(ir::verifySsa(*f), "");
}

TEST(Ssa, LoopVariableGetsPhi) {
  const auto b = build(
      "int sum(int n) { int i; int s = 0;\n"
      "  for (i = 0; i < n; i++) { s += i; }\n"
      "  return s; }");
  const ir::Function* f = b.module->findFunction("sum");
  EXPECT_GE(countOpcode(*f, ir::Opcode::kPhi), 2u);  // i and s
  EXPECT_EQ(ir::verifySsa(*f), "");
}

TEST(Ssa, AddressTakenLocalStaysInMemory) {
  const auto b = build(
      "void init(int *p);\n"
      "int f(void) { int a; init(&a); return a; }");
  const ir::Function* f = b.module->findFunction("f");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kAlloca), 1u);
  EXPECT_EQ(ir::verifySsa(*f), "");
}

TEST(Ssa, StructLocalStaysInMemory) {
  const auto b = build(
      "struct V { float x; float y; };\n"
      "float f(void) { struct V v; v.x = 1.0f; return v.x; }");
  const ir::Function* f = b.module->findFunction("f");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kAlloca), 1u);
}

TEST(Ssa, ShortCircuitTempPromoted) {
  const auto b = build(
      "int f(int a, int b) { return a > 0 && b > 0; }");
  const ir::Function* f = b.module->findFunction("f");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kAlloca), 0u);
  EXPECT_EQ(ir::verifySsa(*f), "");
}

TEST(Ssa, ConditionalExprPromoted) {
  const auto b = build("int mx(int a, int b) { return a > b ? a : b; }");
  const ir::Function* f = b.module->findFunction("mx");
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kAlloca), 0u);
  EXPECT_EQ(countOpcode(*f, ir::Opcode::kPhi), 1u);
  EXPECT_EQ(ir::verifySsa(*f), "");
}

TEST(Ssa, VerifierAcceptsComplexFunctions) {
  const auto b = build(
      "int collatz(int n) {\n"
      "  int steps = 0;\n"
      "  while (n != 1) {\n"
      "    if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;\n"
      "    steps++;\n"
      "    if (steps > 1000) break;\n"
      "  }\n"
      "  return steps;\n"
      "}");
  EXPECT_EQ(ir::verifySsa(*b.module->findFunction("collatz")), "");
}

// ---------------------------------------------------------------------------
// Dominators
// ---------------------------------------------------------------------------

TEST(Dominators, EntryDominatesAll) {
  const auto b = build(
      "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }");
  const ir::Function* f = b.module->findFunction("f");
  const auto dt = ir::DominatorTree::compute(*f);
  for (const auto& bb : f->blocks()) {
    EXPECT_TRUE(dt.dominates(f->entry(), bb.get())) << bb->label();
  }
}

TEST(Dominators, BranchesDoNotDominateMerge) {
  const auto b = build(
      "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }");
  const ir::Function* f = b.module->findFunction("f");
  const auto dt = ir::DominatorTree::compute(*f);
  const ir::BasicBlock* then_bb = nullptr;
  const ir::BasicBlock* end_bb = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->label().rfind("if.then", 0) == 0) then_bb = bb.get();
    if (bb->label().rfind("if.end", 0) == 0) end_bb = bb.get();
  }
  ASSERT_NE(then_bb, nullptr);
  ASSERT_NE(end_bb, nullptr);
  EXPECT_FALSE(dt.dominates(then_bb, end_bb));
  EXPECT_EQ(dt.idom(end_bb), f->entry());
}

TEST(Dominators, FrontierOfBranchIsMerge) {
  const auto b = build(
      "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }");
  const ir::Function* f = b.module->findFunction("f");
  const auto dt = ir::DominatorTree::compute(*f);
  const ir::BasicBlock* then_bb = nullptr;
  const ir::BasicBlock* end_bb = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->label().rfind("if.then", 0) == 0) then_bb = bb.get();
    if (bb->label().rfind("if.end", 0) == 0) end_bb = bb.get();
  }
  auto it = dt.frontiers().find(then_bb);
  ASSERT_NE(it, dt.frontiers().end());
  EXPECT_TRUE(it->second.contains(end_bb));
}

TEST(Dominators, PostDominatorsOfDiamond) {
  const auto b = build(
      "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }");
  const ir::Function* f = b.module->findFunction("f");
  const auto pdt = ir::DominatorTree::computePost(*f);
  const ir::BasicBlock* end_bb = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->label().rfind("if.end", 0) == 0) end_bb = bb.get();
  }
  ASSERT_NE(end_bb, nullptr);
  // The merge block post-dominates the entry.
  EXPECT_TRUE(pdt.dominates(end_bb, f->entry()));
}

TEST(Dominators, InfiniteLoopPostDomDoesNotCrash) {
  const auto b = build(
      "void run(void) { while (1) { } }");
  const ir::Function* f = b.module->findFunction("run");
  const auto pdt = ir::DominatorTree::computePost(*f);
  (void)pdt;  // completing without assert/hang is the property
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

TEST(CallGraph, DirectEdges) {
  const auto b = build(
      "int leaf(void) { return 1; }\n"
      "int mid(void) { return leaf(); }\n"
      "int top(void) { return mid() + leaf(); }");
  ir::CallGraph cg(*b.module);
  const ir::Function* top = b.module->findFunction("top");
  const ir::Function* mid = b.module->findFunction("mid");
  const ir::Function* leaf = b.module->findFunction("leaf");
  EXPECT_TRUE(cg.callees(top).contains(mid));
  EXPECT_TRUE(cg.callees(top).contains(leaf));
  EXPECT_TRUE(cg.callers(leaf).contains(mid));
  EXPECT_FALSE(cg.isRecursive(top));
}

TEST(CallGraph, BottomUpOrderLeafFirst) {
  const auto b = build(
      "int leaf(void) { return 1; }\n"
      "int mid(void) { return leaf(); }\n"
      "int top(void) { return mid(); }");
  ir::CallGraph cg(*b.module);
  const auto& sccs = cg.sccsBottomUp();
  std::map<const ir::Function*, std::size_t> pos;
  for (std::size_t i = 0; i < sccs.size(); ++i) {
    for (const ir::Function* f : sccs[i]) pos[f] = i;
  }
  EXPECT_LT(pos[b.module->findFunction("leaf")],
            pos[b.module->findFunction("mid")]);
  EXPECT_LT(pos[b.module->findFunction("mid")],
            pos[b.module->findFunction("top")]);
}

TEST(CallGraph, MutualRecursionFormsScc) {
  const auto b = build(
      "int odd(int n);\n"
      "int even(int n) { if (n == 0) return 1; return odd(n - 1); }\n"
      "int odd(int n) { if (n == 0) return 0; return even(n - 1); }");
  ir::CallGraph cg(*b.module);
  const ir::Function* even = b.module->findFunction("even");
  const ir::Function* odd = b.module->findFunction("odd");
  EXPECT_TRUE(cg.isRecursive(even));
  EXPECT_TRUE(cg.isRecursive(odd));
  for (const auto& scc : cg.sccsBottomUp()) {
    if (std::find(scc.begin(), scc.end(), even) != scc.end()) {
      EXPECT_NE(std::find(scc.begin(), scc.end(), odd), scc.end());
    }
  }
}

TEST(CallGraph, SelfRecursionDetected) {
  const auto b = build(
      "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }");
  ir::CallGraph cg(*b.module);
  EXPECT_TRUE(cg.isRecursive(b.module->findFunction("fact")));
}

TEST(CallGraph, TopDownIsReverseOfBottomUp) {
  const auto b = build(
      "int leaf(void) { return 1; }\n"
      "int top(void) { return leaf(); }");
  ir::CallGraph cg(*b.module);
  const auto up = cg.sccsBottomUp();
  const auto down = cg.sccsTopDown();
  ASSERT_EQ(up.size(), down.size());
  EXPECT_EQ(up.front(), down.back());
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

TEST(Printer, ContainsFunctionAndOpcodes) {
  const auto b = build("int add(int a, int b) { return a + b; }");
  const std::string text = ir::print(*b.module);
  EXPECT_NE(text.find("define int @add"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(Printer, MarksAnnotatedFunctions) {
  const auto b = build(
      "typedef struct D { float c; } SHMData;\n"
      "float mon(SHMData *p)\n"
      "/*** SafeFlow Annotation assume(core(p, 0, sizeof(SHMData))) ***/\n"
      "{ return p->c; }");
  const std::string text = ir::print(*b.module->findFunction("mon"));
  EXPECT_NE(text.find("monitor"), std::string::npos);
}

}  // namespace
