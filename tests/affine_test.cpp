// Tests for the Omega-lite integer linear constraint solver and the A1/A2
// array restriction checks that use it.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/affine.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;
using analysis::LinearConstraint;
using analysis::LinearSystem;

// ---------------------------------------------------------------------------
// Solver unit tests
// ---------------------------------------------------------------------------

TEST(Affine, EmptySystemFeasible) {
  LinearSystem sys;
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Affine, SimpleBoundsFeasible) {
  LinearSystem sys;
  const int x = sys.addVariable("x");
  sys.addLowerBound(x, 0);
  sys.addUpperBound(x, 10);
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Affine, ContradictoryBoundsInfeasible) {
  LinearSystem sys;
  const int x = sys.addVariable("x");
  sys.addLowerBound(x, 11);
  sys.addUpperBound(x, 10);
  EXPECT_FALSE(sys.isFeasible());
}

TEST(Affine, TightBoundsStillFeasible) {
  LinearSystem sys;
  const int x = sys.addVariable("x");
  sys.addLowerBound(x, 10);
  sys.addUpperBound(x, 10);  // x == 10
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Affine, TwoVariableChain) {
  // 0 <= x <= 5, y = x + 3, y >= 9  ->  x >= 6: infeasible.
  LinearSystem sys;
  const int x = sys.addVariable("x");
  const int y = sys.addVariable("y");
  sys.addLowerBound(x, 0);
  sys.addUpperBound(x, 5);
  LinearConstraint eq;  // y - x - 3 == 0
  eq.coeffs[y] = 1;
  eq.coeffs[x] = -1;
  eq.constant = -3;
  sys.addEquality(eq);
  sys.addLowerBound(y, 9);
  EXPECT_FALSE(sys.isFeasible());
}

TEST(Affine, TwoVariableChainFeasible) {
  LinearSystem sys;
  const int x = sys.addVariable("x");
  const int y = sys.addVariable("y");
  sys.addLowerBound(x, 0);
  sys.addUpperBound(x, 5);
  LinearConstraint eq;
  eq.coeffs[y] = 1;
  eq.coeffs[x] = -1;
  eq.constant = -3;
  sys.addEquality(eq);
  sys.addLowerBound(y, 8);  // y = x+3 <= 8 ok (x=5)
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Affine, UnboundedVariableFeasible) {
  LinearSystem sys;
  const int x = sys.addVariable("x");
  sys.addLowerBound(x, 100);  // no upper bound
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Affine, ConstantOnlyContradiction) {
  LinearSystem sys;
  LinearConstraint c;  // -1 >= 0
  c.constant = -1;
  sys.add(std::move(c));
  EXPECT_FALSE(sys.isFeasible());
}

TEST(Affine, ScaledCoefficients) {
  // 2x >= 5 and 2x <= 4: infeasible.
  LinearSystem sys;
  const int x = sys.addVariable("x");
  LinearConstraint lo;  // 2x - 5 >= 0
  lo.coeffs[x] = 2;
  lo.constant = -5;
  sys.add(std::move(lo));
  LinearConstraint hi;  // -2x + 4 >= 0
  hi.coeffs[x] = -2;
  hi.constant = 4;
  sys.add(std::move(hi));
  EXPECT_FALSE(sys.isFeasible());
}

TEST(Affine, StrDump) {
  LinearSystem sys;
  const int x = sys.addVariable("idx");
  sys.addLowerBound(x, 0);
  EXPECT_NE(sys.str().find(">= 0"), std::string::npos);
}

TEST(Affine, EqualityContradiction) {
  // x == 3 and x == 4 cannot both hold.
  LinearSystem sys;
  const int x = sys.addVariable("x");
  LinearConstraint e1;  // x - 3 == 0
  e1.coeffs[x] = 1;
  e1.constant = -3;
  sys.addEquality(std::move(e1));
  LinearConstraint e2;  // x - 4 == 0
  e2.coeffs[x] = 1;
  e2.constant = -4;
  sys.addEquality(std::move(e2));
  EXPECT_FALSE(sys.isFeasible());
}

TEST(Affine, EqualityConsistentWithBounds) {
  // x == 7 inside [0, 10] is satisfiable; pushing the upper bound below 7
  // makes it contradictory.
  LinearSystem sys;
  const int x = sys.addVariable("x");
  LinearConstraint eq;  // x - 7 == 0
  eq.coeffs[x] = 1;
  eq.constant = -7;
  sys.addEquality(std::move(eq));
  sys.addLowerBound(x, 0);
  sys.addUpperBound(x, 10);
  EXPECT_TRUE(sys.isFeasible());
  sys.addUpperBound(x, 6);
  EXPECT_FALSE(sys.isFeasible());
}

TEST(Affine, BoundHelpersMatchExplicitConstraints) {
  // addLowerBound/addUpperBound are sugar for the +-1-coefficient forms;
  // a system built from the helpers must agree with the explicit one.
  LinearSystem helpers;
  const int hx = helpers.addVariable("x");
  helpers.addLowerBound(hx, -5);
  helpers.addUpperBound(hx, -5);  // x == -5
  EXPECT_TRUE(helpers.isFeasible());

  LinearSystem explicit_sys;
  const int ex = explicit_sys.addVariable("x");
  LinearConstraint lo;  // x + 5 >= 0
  lo.coeffs[ex] = 1;
  lo.constant = 5;
  explicit_sys.add(std::move(lo));
  LinearConstraint hi;  // -x - 5 >= 0
  hi.coeffs[ex] = -1;
  hi.constant = -5;
  explicit_sys.add(std::move(hi));
  EXPECT_TRUE(explicit_sys.isFeasible());
}

TEST(Affine, BudgetTripFallsBackToFeasible) {
  // A genuinely infeasible system: with an exhausted budget the solver
  // must answer "feasible" (unprovable -> the violation gets reported),
  // never claim a proof it did not finish.
  LinearSystem sys;
  const int x = sys.addVariable("x");
  sys.addLowerBound(x, 11);
  sys.addLowerBound(x, 12);
  sys.addUpperBound(x, 10);
  sys.addUpperBound(x, 9);
  EXPECT_FALSE(sys.isFeasible());

  support::AnalysisBudget budget(support::BudgetLimits{0.0, 1, 32});
  EXPECT_TRUE(sys.isFeasible(&budget));
  EXPECT_TRUE(budget.exhausted());
}

TEST(Affine, NearOverflowCoefficientsStayConservative) {
  // Shadow coefficients are products of input coefficients; K*K*10 here
  // overflows int64. The solver must detect the overflow and fall back to
  // "feasible" instead of reasoning from wrapped garbage. (The system is
  // in fact satisfiable: K*x >= 1 and K*x <= 10*K admit x in [1, 10].)
  constexpr std::int64_t kBig = INT64_C(3037000500);  // ~sqrt(INT64_MAX)
  LinearSystem sys;
  const int x = sys.addVariable("x");
  LinearConstraint lo;  // kBig*x - 1 >= 0
  lo.coeffs[x] = kBig;
  lo.constant = -1;
  sys.add(std::move(lo));
  LinearConstraint hi;  // -kBig*x + 10*kBig >= 0
  hi.coeffs[x] = -kBig;
  hi.constant = 10 * kBig;
  sys.add(std::move(hi));
  EXPECT_TRUE(sys.isFeasible());
}

TEST(Affine, OverflowInVariableCoefficientDetected) {
  // Same overflow guard on the eliminated pair's *variable* coefficients:
  // eliminating x pairs kBig (from the lower bound) with kBig*y terms.
  constexpr std::int64_t kBig = INT64_C(3037000500);
  LinearSystem sys;
  const int x = sys.addVariable("x");
  const int y = sys.addVariable("y");
  LinearConstraint lo;  // kBig*x + kBig*y >= 0
  lo.coeffs[x] = kBig;
  lo.coeffs[y] = kBig;
  sys.add(std::move(lo));
  LinearConstraint hi;  // -kBig*x + 1 >= 0
  hi.coeffs[x] = -kBig;
  hi.constant = 1;
  sys.add(std::move(hi));
  EXPECT_TRUE(sys.isFeasible());
}

// Parameterized: i in [0, N-1] indexing an array of N elements is always
// safe; indexing N+k elements beyond is always caught.
class AffineBoundsSweep : public ::testing::TestWithParam<int> {};

TEST_P(AffineBoundsSweep, LoopIndexWithinArrayIsFeasibleExactlyWhenItFits) {
  const int n = GetParam();
  // Violation system: 0 <= i <= n-1 and i >= 8 (array of 8 elements).
  LinearSystem sys;
  const int i = sys.addVariable("i");
  sys.addLowerBound(i, 0);
  sys.addUpperBound(i, n - 1);
  sys.addLowerBound(i, 8);
  EXPECT_EQ(sys.isFeasible(), n - 1 >= 8) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Bounds, AffineBoundsSweep,
                         ::testing::Values(1, 4, 8, 9, 12, 100));

// ---------------------------------------------------------------------------
// A1/A2 end-to-end through the driver
// ---------------------------------------------------------------------------

const char* kArrayPrelude = R"(
typedef struct Slot { float v; } Slot;
Slot *ring;

extern void *shmat(int shmid, void *addr, int flags);
extern int shmget(int key, int size, int flags);

/*** SafeFlow Annotation shminit ***/
void initRing(void)
{
  void *p;
  p = shmat(shmget(7, 8 * sizeof(Slot), 0), 0, 0);
  ring = (Slot *) p;
  /*** SafeFlow Annotation assume(shmvar(ring, 8 * sizeof(Slot))) ***/
  /*** SafeFlow Annotation assume(noncore(ring)) ***/
}
)";

std::unique_ptr<SafeFlowDriver> analyzeArrays(const std::string& body) {
  auto driver = std::make_unique<SafeFlowDriver>();
  driver->addSource("arrays.c", std::string(kArrayPrelude) + body);
  driver->analyze();
  EXPECT_FALSE(driver->hasFrontendErrors())
      << driver->diagnostics().render(driver->sources());
  return driver;
}

std::size_t countRule(const SafeFlowDriver& d, const std::string& rule) {
  std::size_t n = 0;
  for (const auto& v : d.report().restriction_violations) {
    if (v.rule == rule) ++n;
  }
  return n;
}

TEST(ArrayRules, ConstantIndexInBounds) {
  const auto d = analyzeArrays(
      "float get(void) { return ring[7].v; }\n"
      "int main(void) { initRing(); get(); return 0; }");
  EXPECT_EQ(countRule(*d, "A1"), 0u) << d->report().render(d->sources());
}

TEST(ArrayRules, ConstantIndexOutOfBounds) {
  const auto d = analyzeArrays(
      "float get(void) { return ring[8].v; }\n"
      "int main(void) { initRing(); get(); return 0; }");
  EXPECT_EQ(countRule(*d, "A1"), 1u) << d->report().render(d->sources());
}

TEST(ArrayRules, NegativeConstantIndex) {
  const auto d = analyzeArrays(
      "float get(void) { return ring[-1].v; }\n"
      "int main(void) { initRing(); get(); return 0; }");
  EXPECT_EQ(countRule(*d, "A1"), 1u);
}

TEST(ArrayRules, AffineLoopInBounds) {
  const auto d = analyzeArrays(
      "float sum(void) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 0; i < 8; i++) { t += ring[i].v; }\n"
      "  return t;\n"
      "}\n"
      "int main(void) { initRing(); sum(); return 0; }");
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
}

TEST(ArrayRules, AffineLoopOverruns) {
  const auto d = analyzeArrays(
      "float sum(void) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 0; i < 9; i++) { t += ring[i].v; }\n"
      "  return t;\n"
      "}\n"
      "int main(void) { initRing(); sum(); return 0; }");
  EXPECT_GE(countRule(*d, "A2"), 1u) << d->report().render(d->sources());
}

TEST(ArrayRules, AffineLoopWithOffsetOverruns) {
  const auto d = analyzeArrays(
      "float sum(void) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 0; i < 8; i++) { t += ring[i + 1].v; }\n"
      "  return t;\n"
      "}\n"
      "int main(void) { initRing(); sum(); return 0; }");
  EXPECT_GE(countRule(*d, "A2"), 1u);
}

TEST(ArrayRules, AffineLoopScaledInBounds) {
  const auto d = analyzeArrays(
      "float sum(void) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 0; i < 4; i++) { t += ring[2 * i].v; }\n"
      "  return t;\n"
      "}\n"
      "int main(void) { initRing(); sum(); return 0; }");
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
}

TEST(ArrayRules, ArgumentRangeDischargesBoundsCheck) {
  // k is not an induction variable, but the interprocedural range
  // analysis proves k == 3 from the only call site, so A2 discharges.
  const auto d = analyzeArrays(
      "float get(int k) { return ring[k].v; }\n"
      "int main(void) { initRing(); get(3); return 0; }");
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
}

TEST(ArrayRules, UnboundedSymbolRejectedWithoutRanges) {
  // With the range analysis disabled the same program has no provable
  // bound on k and the A2 obligation must be reported.
  SafeFlowOptions o;
  o.ranges.enabled = false;
  SafeFlowDriver d(o);
  d.addSource("arrays.c",
              std::string(kArrayPrelude) +
                  "float get(int k) { return ring[k].v; }\n"
                  "int main(void) { initRing(); get(3); return 0; }");
  d.analyze();
  ASSERT_FALSE(d.hasFrontendErrors());
  EXPECT_GE(countRule(d, "A2"), 1u) << d.report().render(d.sources());
}

TEST(ArrayRules, OutOfRangeArgumentStillRejected) {
  // The range analysis bounds k to [9, 9] — inside the provable range the
  // access is still out of bounds, so discharging must not occur.
  const auto d = analyzeArrays(
      "float get(int k) { return ring[k].v; }\n"
      "int main(void) { initRing(); get(9); return 0; }");
  EXPECT_GE(countRule(*d, "A2"), 1u) << d->report().render(d->sources());
}

TEST(ArrayRules, NonAffineIndexRejected) {
  const auto d = analyzeArrays(
      "float get(void) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 0; i < 3; i++) { t += ring[i * i].v; }\n"
      "  return t;\n"
      "}\n"
      "int main(void) { initRing(); get(); return 0; }");
  EXPECT_GE(countRule(*d, "A2"), 1u);
}

TEST(ArrayRules, DownCountingLoopInBounds) {
  const auto d = analyzeArrays(
      "float sum(void) {\n"
      "  float t = 0.0f;\n"
      "  for (int i = 7; i >= 0; i--) { t += ring[i].v; }\n"
      "  return t;\n"
      "}\n"
      "int main(void) { initRing(); sum(); return 0; }");
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
}

}  // namespace
