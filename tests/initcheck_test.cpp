// Tests for the static InitCheck: region extents derived by abstract
// interpretation of the shminit function, overlap detection, and the
// fallback to the paper's run-time check when offsets are not constant.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;

std::unique_ptr<SafeFlowDriver> analyze(const std::string& src) {
  auto d = std::make_unique<SafeFlowDriver>();
  d->addSource("ic.c", src);
  d->analyze();
  return d;
}

bool staticallyVerified(const SafeFlowDriver& d) {
  for (const auto& check : d.report().required_runtime_checks) {
    if (check.find("proven non-overlapping") != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::size_t overlapErrors(const SafeFlowDriver& d) {
  return d.diagnostics().countCategoryPrefix("annotation.initcheck");
}

const char* kHeader = R"(
typedef struct Cell { float a; float b; } Cell;
Cell *first;
Cell *second;
extern void *shmat(int id, void *a, int f);
extern int shmget(int k, int s, int f);
)";

TEST(InitCheck, DisjointRegionsVerifiedStatically) {
  const auto d = analyze(std::string(kHeader) + R"(
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    char *cur;
    cur = (char *) shmat(shmget(1, 2 * sizeof(Cell), 0), 0, 0);
    first = (Cell *) cur;
    cur = cur + sizeof(Cell);
    second = (Cell *) cur;
    /*** SafeFlow Annotation assume(shmvar(first, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(shmvar(second, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(first)) ***/
    /*** SafeFlow Annotation assume(noncore(second)) ***/
}
int main(void) { init(); return 0; }
)");
  EXPECT_FALSE(d->hasFrontendErrors())
      << d->diagnostics().render(d->sources());
  EXPECT_TRUE(staticallyVerified(*d))
      << d->report().render(d->sources());
  EXPECT_EQ(overlapErrors(*d), 0u);
}

TEST(InitCheck, PointerPlusOneStyleVerified) {
  // The paper's Fig. 3 idiom: second = first + 1.
  const auto d = analyze(std::string(kHeader) + R"(
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    first = (Cell *) shmat(shmget(1, 2 * sizeof(Cell), 0), 0, 0);
    second = first + 1;
    /*** SafeFlow Annotation assume(shmvar(first, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(shmvar(second, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(first)) ***/
    /*** SafeFlow Annotation assume(noncore(second)) ***/
}
int main(void) { init(); return 0; }
)");
  EXPECT_TRUE(staticallyVerified(*d))
      << d->report().render(d->sources());
}

TEST(InitCheck, OverlappingDeclarationsReported) {
  // Both regions bind to offset 0 but claim sizeof(Cell) each: overlap.
  const auto d = analyze(std::string(kHeader) + R"(
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    char *cur;
    cur = (char *) shmat(shmget(1, 2 * sizeof(Cell), 0), 0, 0);
    first = (Cell *) cur;
    second = (Cell *) cur;  /* BUG: same offset as first */
    /*** SafeFlow Annotation assume(shmvar(first, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(shmvar(second, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(first)) ***/
    /*** SafeFlow Annotation assume(noncore(second)) ***/
}
int main(void) { init(); return 0; }
)");
  EXPECT_EQ(overlapErrors(*d), 1u)
      << d->diagnostics().render(d->sources());
  EXPECT_FALSE(staticallyVerified(*d));
}

TEST(InitCheck, PartialOverlapReported) {
  const auto d = analyze(std::string(kHeader) + R"(
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    char *cur;
    cur = (char *) shmat(shmget(1, 2 * sizeof(Cell), 0), 0, 0);
    first = (Cell *) cur;
    cur = cur + 4;  /* BUG: second starts inside first */
    second = (Cell *) cur;
    /*** SafeFlow Annotation assume(shmvar(first, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(shmvar(second, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(first)) ***/
    /*** SafeFlow Annotation assume(noncore(second)) ***/
}
int main(void) { init(); return 0; }
)");
  EXPECT_EQ(overlapErrors(*d), 1u);
}

TEST(InitCheck, NonConstantOffsetFallsBackToRuntime) {
  const auto d = analyze(std::string(kHeader) + R"(
extern int configuredSlot(void);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    char *cur;
    cur = (char *) shmat(shmget(1, 4 * sizeof(Cell), 0), 0, 0);
    first = (Cell *) cur;
    second = ((Cell *) cur) + configuredSlot();  /* offset unknown */
    /*** SafeFlow Annotation assume(shmvar(first, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(shmvar(second, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(first)) ***/
    /*** SafeFlow Annotation assume(noncore(second)) ***/
}
int main(void) { init(); return 0; }
)");
  EXPECT_FALSE(staticallyVerified(*d));
  EXPECT_EQ(overlapErrors(*d), 0u);
  // The run-time check remains demanded.
  bool runtime_demanded = false;
  for (const auto& check : d->report().required_runtime_checks) {
    if (check.find("verify declared shmvar regions") != std::string::npos) {
      runtime_demanded = true;
    }
  }
  EXPECT_TRUE(runtime_demanded);
}

TEST(InitCheck, AllCorporaVerifyStatically) {
  // Our reconstructed systems use constant carving, so the analysis
  // discharges the run-time check for all three.
  for (const char* files :
       {"/ip/core/comm.c", "/generic_simplex/core/comm.c",
        "/double_ip/core/comm.c"}) {
    SafeFlowDriver d;
    d.addFile(std::string(SAFEFLOW_CORPUS_DIR) + files);
    d.analyze();
    EXPECT_TRUE(staticallyVerified(d)) << files;
  }
}

}  // namespace
