#include <gtest/gtest.h>

#include <cmath>

#include "numerics/integrate.h"
#include "numerics/matrix.h"
#include "numerics/riccati.h"

namespace {

using namespace safeflow::numerics;

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m{{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  m(1, 0) = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::out_of_range);
}

TEST(Matrix, Identity) {
  const Matrix I = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(I(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(I(0, 1), 0.0);
}

TEST(Matrix, AddSub) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix s = a + b;
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_THROW(a + Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, Multiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 50.0);
}

TEST(Matrix, ScalarMultiply) {
  Matrix a{{1, -2}};
  const Matrix p = 2.0 * a;
  EXPECT_DOUBLE_EQ(p(0, 1), -4.0);
}

TEST(Matrix, Transpose) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, InverseRoundTrip) {
  Matrix a{{4, 7}, {2, 6}};
  const Matrix inv = a.inverse();
  EXPECT_TRUE((a * inv).approxEquals(Matrix::identity(2), 1e-9));
}

TEST(Matrix, SingularInverseThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(a.inverse(), std::runtime_error);
}

TEST(Matrix, InverseWithPivoting) {
  // Leading zero forces a row swap.
  Matrix a{{0, 1}, {1, 0}};
  const Matrix inv = a.inverse();
  EXPECT_TRUE((a * inv).approxEquals(Matrix::identity(2)));
}

TEST(Matrix, Solve) {
  Matrix a{{2, 0}, {0, 4}};
  const Matrix b = Matrix::columnVector({6.0, 8.0});
  const Matrix x = a.solve(b);
  EXPECT_DOUBLE_EQ(x(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(x(1, 0), 2.0);
}

TEST(Matrix, QuadraticForm) {
  Matrix p{{2, 0}, {0, 3}};
  const Matrix x = Matrix::columnVector({1.0, 2.0});
  EXPECT_DOUBLE_EQ(p.quadraticForm(x, x), 2.0 + 12.0);
}

TEST(Matrix, NormAndMaxAbs) {
  Matrix a{{3, -4}};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
}

// ---------------------------------------------------------------------------
// Riccati / Lyapunov
// ---------------------------------------------------------------------------

TEST(Riccati, ScalarLqrMatchesClosedForm) {
  // x' = a x + b u, scalar: known fixed point of the Riccati recursion.
  Matrix A{{0.9}};
  Matrix B{{1.0}};
  Matrix Q{{1.0}};
  Matrix R{{1.0}};
  const auto lqr = solveDiscreteLqr(A, B, Q, R);
  ASSERT_TRUE(lqr.converged);
  // Verify the fixed point satisfies the DARE residual.
  const double P = lqr.cost_to_go(0, 0);
  const double residual =
      0.9 * P * 0.9 - P - (0.9 * P) * (0.9 * P) / (1.0 + P) + 1.0;
  EXPECT_NEAR(residual, 0.0, 1e-8);
}

TEST(Riccati, GainStabilizesUnstableSystem) {
  Matrix A{{1.2, 0.1}, {0.0, 1.1}};  // unstable
  Matrix B{{0.0}, {1.0}};
  Matrix Q = Matrix::identity(2);
  Matrix R{{1.0}};
  const auto lqr = solveDiscreteLqr(A, B, Q, R);
  ASSERT_TRUE(lqr.converged);
  // Closed-loop state must decay from any initial condition.
  const Matrix Acl = A - B * lqr.gain;
  Matrix x = Matrix::columnVector({1.0, -1.0});
  for (int i = 0; i < 200; ++i) x = Acl * x;
  EXPECT_LT(x.norm(), 1e-3);
}

TEST(Lyapunov, SolvesForStableSystem) {
  Matrix A{{0.5, 0.1}, {0.0, 0.4}};
  Matrix Q = Matrix::identity(2);
  const auto P = solveDiscreteLyapunov(A, Q);
  ASSERT_TRUE(P.has_value());
  // Residual of P = A'PA + Q.
  const Matrix residual = *P - (A.transpose() * (*P) * A + Q);
  EXPECT_LT(residual.maxAbs(), 1e-8);
}

TEST(Lyapunov, FailsForUnstableSystem) {
  Matrix A{{1.5}};
  Matrix Q{{1.0}};
  EXPECT_FALSE(solveDiscreteLyapunov(A, Q).has_value());
}

TEST(Lyapunov, ResultIsPositiveDefiniteOnProbes) {
  Matrix A{{0.8, 0.05}, {-0.02, 0.7}};
  const auto P = solveDiscreteLyapunov(A, Matrix::identity(2));
  ASSERT_TRUE(P.has_value());
  for (double a : {1.0, -1.0, 0.5}) {
    for (double b : {0.0, 1.0, -2.0}) {
      if (a == 0.0 && b == 0.0) continue;
      const Matrix x = Matrix::columnVector({a, b});
      EXPECT_GT(P->quadraticForm(x, x), 0.0);
    }
  }
}

TEST(Discretize, EulerForm) {
  Matrix A{{0.0, 1.0}, {0.0, 0.0}};
  Matrix B{{0.0}, {1.0}};
  const auto d = discretize(A, B, 0.1);
  EXPECT_DOUBLE_EQ(d.A(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(d.A(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.B(1, 0), 0.1);
}

// ---------------------------------------------------------------------------
// RK4
// ---------------------------------------------------------------------------

TEST(Rk4, ExponentialDecay) {
  // dx/dt = -x: x(t) = e^-t.
  const Dynamics f = [](const StateVector& x, double) {
    return StateVector{-x[0]};
  };
  StateVector x{1.0};
  const double dt = 0.01;
  for (int i = 0; i < 100; ++i) x = rk4Step(f, x, 0.0, dt);
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-8);
}

TEST(Rk4, HarmonicOscillatorEnergy) {
  // dx = v, dv = -x: energy conserved to 4th order.
  const Dynamics f = [](const StateVector& x, double) {
    return StateVector{x[1], -x[0]};
  };
  StateVector x{1.0, 0.0};
  for (int i = 0; i < 1000; ++i) x = rk4Step(f, x, 0.0, 0.01);
  const double energy = x[0] * x[0] + x[1] * x[1];
  EXPECT_NEAR(energy, 1.0, 1e-6);
}

TEST(Rk4, ControlInputReachesDynamics) {
  const Dynamics f = [](const StateVector&, double u) {
    return StateVector{u};
  };
  StateVector x{0.0};
  x = rk4Step(f, x, 2.0, 0.5);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
}

TEST(Rk4, SubsteppingMatchesSingleStepOnLinearSystem) {
  const Dynamics f = [](const StateVector& x, double) {
    return StateVector{-2.0 * x[0]};
  };
  const StateVector one = rk4Step(f, {1.0}, 0.0, 0.1);
  const StateVector sub = rk4StepSub(f, {1.0}, 0.0, 0.1, 4);
  // Substepping is more accurate; both agree to the single-step error
  // bound O(dt^5) ~ 1e-5.
  EXPECT_NEAR(one[0], sub[0], 1e-5);
  EXPECT_NEAR(sub[0], std::exp(-0.2), 1e-7);
}

}  // namespace
