// Property-style sweeps over randomized (deterministically seeded)
// inputs: matrix algebra round-trips, Riccati/Lyapunov invariants, LOC
// counter vs a reference implementation, diff metric properties, and
// monitor safety over random initial states.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "numerics/matrix.h"
#include "numerics/riccati.h"
#include "simplex/controllers.h"
#include "simplex/monitor.h"
#include "simplex/plant.h"
#include "support/loc_counter.h"
#include "support/text_diff.h"

namespace {

using namespace safeflow;
using numerics::Matrix;

// ---------------------------------------------------------------------------
// Matrix properties
// ---------------------------------------------------------------------------

Matrix randomMatrix(std::mt19937& rng, std::size_t n,
                    double diag_boost = 0.0) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = dist(rng);
    m(i, i) += diag_boost;
  }
  return m;
}

class MatrixSweep : public ::testing::TestWithParam<int> {};

TEST_P(MatrixSweep, InverseRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 4);
    // Diagonally dominant matrices are safely invertible.
    const Matrix a = randomMatrix(rng, n, 5.0);
    const Matrix inv = a.inverse();
    EXPECT_TRUE((a * inv).approxEquals(Matrix::identity(n), 1e-8))
        << "seed " << GetParam() << " trial " << trial;
  }
}

TEST_P(MatrixSweep, TransposeIsInvolution) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
  const Matrix a = randomMatrix(rng, 5);
  EXPECT_TRUE(a.transpose().transpose().approxEquals(a));
}

TEST_P(MatrixSweep, MultiplicationAssociates) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 2000);
  const Matrix a = randomMatrix(rng, 4);
  const Matrix b = randomMatrix(rng, 4);
  const Matrix c = randomMatrix(rng, 4);
  EXPECT_TRUE(((a * b) * c).approxEquals(a * (b * c), 1e-9));
}

TEST_P(MatrixSweep, QuadraticFormMatchesExpansion) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 3000);
  const Matrix p = randomMatrix(rng, 3, 2.0);
  const Matrix x = randomMatrix(rng, 3).transpose() *
                   Matrix::columnVector({1.0, 0.0, 0.0});
  const double direct = p.quadraticForm(x, x);
  const Matrix full = x.transpose() * p * x;
  EXPECT_NEAR(direct, full(0, 0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixSweep, ::testing::Values(1, 7, 42));

// ---------------------------------------------------------------------------
// Riccati / Lyapunov invariants
// ---------------------------------------------------------------------------

class RiccatiSweep : public ::testing::TestWithParam<int> {};

TEST_P(RiccatiSweep, ClosedLoopIsStableAndCostPositive) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> dist(-0.4, 0.4);
  // Random near-unstable 2x2 system with scalar input.
  Matrix A{{1.05 + dist(rng) * 0.05, dist(rng)},
           {dist(rng), 0.95 + dist(rng) * 0.05}};
  Matrix B{{dist(rng) + 1.0}, {dist(rng) + 0.5}};
  Matrix Q = Matrix::identity(2);
  Matrix R{{1.0}};
  const auto lqr = numerics::solveDiscreteLqr(A, B, Q, R);
  ASSERT_TRUE(lqr.converged);

  // Closed loop must contract some trajectory bundle.
  const Matrix Acl = A - B * lqr.gain;
  Matrix x = Matrix::columnVector({1.0, 1.0});
  for (int i = 0; i < 400; ++i) x = Acl * x;
  EXPECT_LT(x.norm(), 1e-2) << "seed " << GetParam();

  // Cost-to-go is positive on probes.
  for (double a : {1.0, -0.5}) {
    const Matrix probe = Matrix::columnVector({a, 0.3});
    EXPECT_GT(lqr.cost_to_go.quadraticForm(probe, probe), 0.0);
  }

  // And the closed loop admits a Lyapunov certificate.
  const auto P = numerics::solveDiscreteLyapunov(Acl, Matrix::identity(2));
  EXPECT_TRUE(P.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RiccatiSweep,
                         ::testing::Values(3, 11, 19, 27));

// ---------------------------------------------------------------------------
// LOC counter vs reference
// ---------------------------------------------------------------------------

/// Slow but obviously-correct reference: strip comments first, then
/// classify lines.
support::LocStats referenceLoc(const std::string& src) {
  std::string stripped;
  bool in_block = false;
  bool in_line = false;
  char in_str = 0;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char n = i + 1 < src.size() ? src[i + 1] : 0;
    if (in_line) {
      if (c == '\n') {
        in_line = false;
        stripped += '\n';
      }
      continue;
    }
    if (in_block) {
      if (c == '\n') {
        stripped += '\x01';  // the line contained comment content
        stripped += '\n';
      }
      if (c == '*' && n == '/') {
        in_block = false;
        stripped += '\x01';  // the closing line is a comment line too
        ++i;
      }
      continue;
    }
    if (in_str != 0) {
      stripped += c;
      if (c == '\\') {
        if (i + 1 < src.size()) stripped += src[++i];
        continue;
      }
      if (c == in_str) in_str = 0;
      continue;
    }
    if (c == '/' && n == '/') {
      in_line = true;
      stripped += '\x01';
      ++i;
      continue;
    }
    if (c == '/' && n == '*') {
      in_block = true;
      stripped += '\x01';
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') in_str = c;
    stripped += c;
  }
  support::LocStats stats;
  std::istringstream lines(stripped);
  std::string line;
  // istringstream drops a trailing empty line, matching countLoc.
  while (std::getline(lines, line)) {
    ++stats.total_lines;
    bool code = false;
    bool comment = false;
    for (char c : line) {
      if (c == '\x01') {
        comment = true;
      } else if (c != ' ' && c != '\t' && c != '\r') {
        code = true;
      }
    }
    if (code) {
      ++stats.code_lines;
    } else if (comment) {
      ++stats.comment_lines;
    } else {
      ++stats.blank_lines;
    }
  }
  return stats;
}

class LocSweep : public ::testing::TestWithParam<int> {};

TEST_P(LocSweep, MatchesReferenceOnRandomSources) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  const char* fragments[] = {
      "int x = 1;\n",    "/* block */\n",  "// line\n",
      "\n",              "   \n",          "char *s = \"a/*b*/c\";\n",
      "/* multi\n",      "still */\n",     "int y; // tail\n",
      "f(); /* t */\n",
  };
  std::uniform_int_distribution<std::size_t> pick(0, 9);
  for (int trial = 0; trial < 30; ++trial) {
    std::string src;
    // Track block-comment parity so fragments stay well-formed.
    bool open = false;
    for (int i = 0; i < 40; ++i) {
      const std::size_t f = pick(rng);
      if (!open && f == 7) continue;       // "still */" needs open
      if (open && f != 7) continue;        // must close first
      src += fragments[f];
      if (f == 6) open = true;
      if (f == 7) open = false;
    }
    if (open) src += "done */\n";
    const auto fast = support::countLoc(src);
    const auto ref = referenceLoc(src);
    EXPECT_EQ(fast.code_lines, ref.code_lines) << src;
    EXPECT_EQ(fast.comment_lines, ref.comment_lines) << src;
    EXPECT_EQ(fast.blank_lines, ref.blank_lines) << src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocSweep, ::testing::Values(5, 13, 99));

// ---------------------------------------------------------------------------
// Diff metric properties
// ---------------------------------------------------------------------------

class DiffSweep : public ::testing::TestWithParam<int> {};

TEST_P(DiffSweep, MetricProperties) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_int_distribution<int> word(0, 5);
  auto random_text = [&](int lines) {
    std::string out;
    for (int i = 0; i < lines; ++i) {
      out += "line" + std::to_string(word(rng)) + "\n";
    }
    return out;
  };
  for (int trial = 0; trial < 10; ++trial) {
    const std::string a = random_text(12);
    const std::string b = random_text(12);
    // Identity.
    EXPECT_EQ(support::diffLines(a, a).changed(), 0u);
    // Symmetry of the magnitude.
    const auto ab = support::diffLines(a, b);
    const auto ba = support::diffLines(b, a);
    EXPECT_EQ(ab.changed(), ba.changed());
    EXPECT_EQ(ab.added, ba.removed);
    // Bounded by total size.
    EXPECT_LE(ab.changed(), 24u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiffSweep, ::testing::Values(2, 8));

// ---------------------------------------------------------------------------
// Monitor safety over random initial states
// ---------------------------------------------------------------------------

class MonitorSweep : public ::testing::TestWithParam<int> {};

TEST_P(MonitorSweep, AcceptedCommandsNeverEscapeTheEnvelope) {
  using namespace safeflow::simplex;
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  std::uniform_real_distribution<double> angle(-0.2, 0.2);
  std::uniform_real_distribution<double> pos(-0.2, 0.2);
  std::uniform_real_distribution<double> volts(-5.0, 5.0);

  InvertedPendulum plant;
  LqrController safety(plant, LqrWeights{}, 0.02);
  StabilityEnvelopeMonitor monitor(plant, safety, 0.02);
  ASSERT_TRUE(monitor.valid());

  for (int trial = 0; trial < 200; ++trial) {
    const numerics::StateVector x{pos(rng), pos(rng), angle(rng),
                                  angle(rng)};
    const double u = volts(rng);
    const auto decision = monitor.check(x, u);
    if (decision.accepted) {
      // The one-step prediction the monitor itself made must stay under
      // the level — the defining property of "accepted".
      EXPECT_LE(decision.envelope_value_next, monitor.envelopeLevel());
    }
    // The safety controller's own command from a mild state is accepted.
    if (decision.envelope_value_now < monitor.envelopeLevel() * 0.25) {
      const auto own = monitor.check(x, safety.compute(x));
      EXPECT_TRUE(own.accepted)
          << "safety command rejected at mild state, trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorSweep,
                         ::testing::Values(21, 34, 55));

}  // namespace
