// End-to-end tests for safeflowd: protocol round trips, byte-identity
// of daemon responses with the one-shot supervised CLI, request
// coalescing, admission-control shedding, malformed-request tolerance,
// SIGTERM drain, and crash-recovery (kill -9, restart, warm cache).
//
// Every test spawns the real `safeflowd` binary on a scratch socket in
// TempDir; the reference runs spawn the real `safeflow` binary.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "daemon_test_util.h"
#include "safeflow/driver.h"
#include "support/json.h"
#include "support/subprocess.h"

namespace {

using namespace safeflow;
using namespace daemon_test;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::vector<std::string> ipCoreFiles() {
  return {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
}

std::vector<std::string> ipFlags() {
  return {"-I", kCorpus + "/ip/common"};
}

/// A unique socket path per test (sun_path caps at ~107 bytes, so keep
/// it short and under TempDir).
std::string scratchSocket(const std::string& tag) {
  return ::testing::TempDir() + "sfd_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// The one-shot CLI reference the daemon must match byte for byte.
support::SubprocessResult oneShot(const std::vector<std::string>& files,
                                  const std::vector<std::string>& flags,
                                  std::size_t jobs, bool json = false,
                                  bool quiet = false) {
  std::vector<std::string> argv = {SAFEFLOW_EXE, "--isolate", "--jobs",
                                   std::to_string(jobs)};
  if (json) argv.emplace_back("--json");
  if (quiet) argv.emplace_back("--quiet");
  argv.insert(argv.end(), flags.begin(), flags.end());
  argv.insert(argv.end(), files.begin(), files.end());
  support::SubprocessOptions opts;
  opts.timeout_seconds = 120.0;
  return support::runSubprocess(argv, opts);
}

/// Drops wall-clock lines so two JSON reports compare deterministically
/// (same helper the supervisor tests use).
std::string stripTimes(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.find("seconds") == std::string::npos &&
        line.find("\"gauges\"") == std::string::npos) {
      out += line;
      out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

support::json::Value parsed(const std::string& response) {
  support::json::Value doc;
  std::string error;
  EXPECT_TRUE(support::json::parse(response, &doc, &error))
      << error << "\nresponse: " << response;
  return doc;
}

std::uint64_t statusCounter(const std::string& socket,
                            const std::string& name) {
  const std::string response =
      rawRequest(socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
  const support::json::Value doc = parsed(response);
  const support::json::Value* counters = doc.find("counters");
  if (counters == nullptr) return 0;
  return counters->memberUint(name, 0);
}

TEST(Daemon, StatusRoundTripAndCleanDrain) {
  const std::string socket = scratchSocket("status");
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::string response =
      rawRequest(socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
  const support::json::Value doc = parsed(response);
  EXPECT_EQ(doc.memberString("status"), "ok");
  EXPECT_EQ(doc.memberString("version"), kAnalyzerVersion);
  EXPECT_EQ(doc.memberUint("pid"), static_cast<std::uint64_t>(pid));
  EXPECT_EQ(doc.memberUint("queue_depth"), 0u);
  EXPECT_EQ(doc.memberUint("in_flight"), 0u);

  ::kill(pid, SIGTERM);
  const int status = waitForExit(pid);
  ASSERT_NE(status, -1) << "daemon did not drain";
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  // The drain removes the socket file so restarting clients fall back
  // to local analysis immediately instead of waiting on a dead path.
  EXPECT_NE(::access(socket.c_str(), F_OK), 0);
}

TEST(Daemon, AnalyzeMatchesOneShotByteForByte) {
  const std::string socket = scratchSocket("bytes");
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache",
                                 "--jobs", "2", "--worker-exe",
                                 SAFEFLOW_EXE});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  for (const std::size_t jobs :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    const support::SubprocessResult ref =
        oneShot(ipCoreFiles(), ipFlags(), jobs);
    ASSERT_EQ(ref.status, support::SubprocessResult::Status::kExited);

    const std::string response = rawRequest(
        socket, analyzeRequest(ipCoreFiles(), ipFlags()), 120.0);
    const support::json::Value doc = parsed(response);
    ASSERT_EQ(doc.memberString("status"), "ok") << response;
    // The daemon's worker pool width is fixed at spawn; the merge is
    // deterministic across --jobs, so every reference matches anyway.
    EXPECT_EQ(doc.memberString("stdout"), ref.out_text);
    EXPECT_EQ(doc.memberString("stderr"), ref.err_text);
    EXPECT_EQ(static_cast<int>(doc.memberNumber("exit_code", -1)),
              ref.exit_code);
  }

  // JSON + quiet modes hold too (JSON carries wall-clock fields, so
  // compare with those lines stripped).
  const support::SubprocessResult json_ref =
      oneShot(ipCoreFiles(), ipFlags(), 2, /*json=*/true);
  const std::string json_response = rawRequest(
      socket,
      analyzeRequest(ipCoreFiles(), ipFlags(), /*json=*/true), 120.0);
  const support::json::Value json_doc = parsed(json_response);
  ASSERT_EQ(json_doc.memberString("status"), "ok");
  EXPECT_EQ(stripTimes(json_doc.memberString("stdout")),
            stripTimes(json_ref.out_text));

  killDaemon(pid);
}

TEST(Daemon, WarmCacheKeepsResponsesIdentical) {
  const std::string socket = scratchSocket("warm");
  const std::string cache_dir = ::testing::TempDir() + "sfd_warm_cache_" +
                                std::to_string(::getpid());
  const pid_t pid =
      spawnDaemon({"--socket", socket, "--cache-dir", cache_dir,
                   "--jobs", "2", "--worker-exe", SAFEFLOW_EXE});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::string request = analyzeRequest(ipCoreFiles(), ipFlags());
  const std::string cold = rawRequest(socket, request, 120.0);
  const support::json::Value cold_doc = parsed(cold);
  ASSERT_EQ(cold_doc.memberString("status"), "ok");
  EXPECT_EQ(cold_doc.memberUint("cache_hits"), 0u);
  EXPECT_EQ(cold_doc.memberUint("workers_spawned"), ipCoreFiles().size());

  const std::string warm = rawRequest(socket, request, 120.0);
  const support::json::Value warm_doc = parsed(warm);
  EXPECT_EQ(warm_doc.memberUint("cache_hits"), ipCoreFiles().size());
  EXPECT_EQ(warm_doc.memberUint("workers_spawned"), 0u);
  // The analysis payload is byte-identical: the cache replays the
  // worker documents through the same merge/render path. (The envelope
  // counters above differ by design — that is how a client tells a
  // warm hit from a cold run.)
  EXPECT_EQ(warm_doc.memberString("stdout"), cold_doc.memberString("stdout"));
  EXPECT_EQ(warm_doc.memberString("stderr"), cold_doc.memberString("stderr"));
  EXPECT_EQ(warm_doc.memberNumber("exit_code", -1.0),
            cold_doc.memberNumber("exit_code", -2.0));

  killDaemon(pid);
}

TEST(Daemon, IdenticalConcurrentRequestsCoalesce) {
  const std::string socket = scratchSocket("coalesce");
  // The injected first-attempt hang (killed at the 1s watchdog, retried
  // clean) guarantees the leader is still running when the followers
  // arrive. Fault injection arms in the workers only; the daemon's
  // CacheManager sees the env and disables itself.
  const pid_t pid = spawnDaemon(
      {"--socket", socket, "--no-cache", "--max-inflight", "1",
       "--worker-timeout", "1s", "--retries", "2", "--worker-exe",
       SAFEFLOW_EXE},
      {{"SAFEFLOW_INJECT_FAULT", "hang@taint"},
       {"SAFEFLOW_INJECT_FAULT_ATTEMPTS", "1"},
       {"SAFEFLOW_INJECT_FAULT_FILE", "core.c"}});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  const std::string request = analyzeRequest(files, {});
  std::vector<std::string> responses(4);
  std::vector<std::thread> clients;
  clients.reserve(responses.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back([&, i] {
      // Stagger slightly so one leader is admitted first.
      if (i > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
      responses[i] = rawRequest(socket, request, 120.0);
    });
  }
  for (std::thread& t : clients) t.join();

  for (const std::string& response : responses) {
    const support::json::Value doc = parsed(response);
    EXPECT_EQ(doc.memberString("status"), "ok") << response;
    // Waiters receive the leader's bytes verbatim.
    EXPECT_EQ(response, responses[0]);
  }
  EXPECT_GE(statusCounter(socket, "daemon.coalesced"), 1u);

  killDaemon(pid);
}

TEST(Daemon, AdmissionControlShedsWithRetryHint) {
  const std::string socket = scratchSocket("shed");
  // One slot, zero queue: anything beyond the in-flight leader sheds.
  const pid_t pid = spawnDaemon(
      {"--socket", socket, "--no-cache", "--max-inflight", "1",
       "--max-queue", "0", "--worker-timeout", "2s", "--retries", "1",
       "--worker-exe", SAFEFLOW_EXE},
      {{"SAFEFLOW_INJECT_FAULT", "hang@taint"},
       {"SAFEFLOW_INJECT_FAULT_ATTEMPTS", "1"}});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::vector<std::string> slow_files = {kCorpus +
                                               "/running_example/core.c"};
  std::thread leader([&] {
    (void)rawRequest(socket, analyzeRequest(slow_files, {}), 120.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // A *different* request (distinct coalescing key) cannot queue.
  const std::string shed_response = rawRequest(
      socket, analyzeRequest(ipCoreFiles(), ipFlags()), 30.0);
  const support::json::Value doc = parsed(shed_response);
  EXPECT_EQ(doc.memberString("status"), "busy") << shed_response;
  EXPECT_GT(doc.memberUint("retry_after_ms"), 0u);
  leader.join();
  EXPECT_GE(statusCounter(socket, "daemon.shed"), 1u);

  // Once the leader finished, the same request is admitted.
  const std::string retry = rawRequest(
      socket, analyzeRequest(slow_files, {}), 120.0);
  EXPECT_EQ(parsed(retry).memberString("status"), "ok");

  killDaemon(pid);
}

TEST(Daemon, QueuedDeadlineExpiresAsError) {
  const std::string socket = scratchSocket("deadline");
  const pid_t pid = spawnDaemon(
      {"--socket", socket, "--no-cache", "--max-inflight", "1",
       "--worker-timeout", "2s", "--retries", "1", "--worker-exe",
       SAFEFLOW_EXE},
      {{"SAFEFLOW_INJECT_FAULT", "hang@taint"},
       {"SAFEFLOW_INJECT_FAULT_ATTEMPTS", "1"}});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::vector<std::string> slow_files = {kCorpus +
                                               "/running_example/core.c"};
  std::thread leader([&] {
    (void)rawRequest(socket, analyzeRequest(slow_files, {}), 120.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Queued behind a ~2s leader with a 100ms deadline: expires in queue.
  const std::string response = rawRequest(
      socket,
      analyzeRequest(ipCoreFiles(), ipFlags(), false, false,
                     /*deadline_ms=*/100),
      60.0);
  const support::json::Value doc = parsed(response);
  EXPECT_EQ(doc.memberString("status"), "error") << response;
  EXPECT_NE(doc.memberString("message").find("deadline"),
            std::string::npos);
  leader.join();
  EXPECT_GE(statusCounter(socket, "daemon.deadline_expired"), 1u);

  killDaemon(pid);
}

TEST(Daemon, MalformedRequestsNeverKillTheDaemon) {
  const std::string socket = scratchSocket("fuzz");
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const char* malformed[] = {
      "not json at all\n",
      "{\"truncated\": \n",
      "{}\n",
      "{\"safeflowd\": 2, \"op\": \"status\"}\n",
      "{\"safeflowd\": 1}\n",
      "{\"safeflowd\": 1, \"op\": \"transmogrify\"}\n",
      "{\"safeflowd\": 1, \"op\": \"analyze\"}\n",
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": []}\n",
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [42]}\n",
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [\"\"]}\n",
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [\"x.c\"], "
      "\"flags\": [\"--worker\"]}\n",
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [\"x.c\"], "
      "\"flags\": \"-I\"}\n",
  };
  for (const char* request : malformed) {
    const std::string response = rawRequest(socket, request, 15.0);
    const support::json::Value doc = parsed(response);
    EXPECT_EQ(doc.memberString("status"), "error") << request;
  }

  // Mid-request disconnects (no newline, then close) cost nothing.
  for (int i = 0; i < 5; ++i) {
    const int fd = support::connectUnixSocket(socket);
    ASSERT_GE(fd, 0);
    support::writeAll(fd, "{\"safeflowd\": 1, \"op\": \"ana");
    ::close(fd);
  }

  // The daemon survived everything above.
  const std::string status =
      rawRequest(socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
  EXPECT_EQ(parsed(status).memberString("status"), "ok");
  EXPECT_GE(statusCounter(socket, "daemon.protocol_errors"), 10u);

  killDaemon(pid);
}

TEST(Daemon, RestartAfterKillServesWarmHitsOnTheSameSocket) {
  const std::string socket = scratchSocket("restart");
  const std::string cache_dir = ::testing::TempDir() + "sfd_restart_cache_" +
                                std::to_string(::getpid());
  const std::vector<std::string> args = {
      "--socket", socket,         "--cache-dir",  cache_dir,
      "--jobs",   "2",            "--worker-exe", SAFEFLOW_EXE};
  pid_t pid = spawnDaemon(args);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::string request = analyzeRequest(ipCoreFiles(), ipFlags());
  const std::string cold = rawRequest(socket, request, 120.0);
  ASSERT_EQ(parsed(cold).memberString("status"), "ok");

  // SIGKILL: no drain, socket file left behind, cache dir intact.
  ::kill(pid, SIGKILL);
  ASSERT_NE(waitForExit(pid), -1);
  ASSERT_EQ(::access(socket.c_str(), F_OK), 0);

  // The restart sweeps the stale socket and reattaches to the cache.
  pid = spawnDaemon(args);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));
  const std::string warm = rawRequest(socket, request, 120.0);
  const support::json::Value warm_doc = parsed(warm);
  ASSERT_EQ(warm_doc.memberString("status"), "ok");
  EXPECT_EQ(warm_doc.memberUint("cache_hits"), ipCoreFiles().size());
  EXPECT_EQ(warm_doc.memberUint("workers_spawned"), 0u);
  EXPECT_EQ(warm_doc.memberString("stdout"),
            parsed(cold).memberString("stdout"));
  EXPECT_GE(statusCounter(socket, "daemon.stale_socket_swept"), 1u);

  killDaemon(pid);
}

TEST(Daemon, ShutdownOpDrainsLikeSigterm) {
  const std::string socket = scratchSocket("shutdown");
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::string response = rawRequest(
      socket, "{\"safeflowd\": 1, \"op\": \"shutdown\"}\n", 15.0);
  const support::json::Value doc = parsed(response);
  EXPECT_EQ(doc.memberString("status"), "ok");

  const int status = waitForExit(pid);
  ASSERT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(::access(socket.c_str(), F_OK), 0);
}

TEST(Daemon, SecondDaemonRefusesALiveSocket) {
  const std::string socket = scratchSocket("second");
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  // A second daemon on the same path must exit nonzero, not hijack it.
  const pid_t second = spawnDaemon({"--socket", socket, "--no-cache"});
  ASSERT_GT(second, 0);
  const int status = waitForExit(second);
  ASSERT_NE(status, -1);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);

  // The original still serves.
  const std::string response =
      rawRequest(socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
  EXPECT_EQ(parsed(response).memberString("status"), "ok");

  killDaemon(pid);
}

TEST(DaemonPressure, NominalDaemonReportsLevelZero) {
  const std::string socket = scratchSocket("press0");
  // No resource budgets set: every axis is off, the ladder stays at 0.
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(waitForSocket(socket));

  const std::string response =
      rawRequest(socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
  const support::json::Value doc = parsed(response);
  EXPECT_EQ(doc.memberString("status"), "ok");
  EXPECT_EQ(doc.memberUint("pressure_level", 99), 0u);

  killDaemon(pid);
}

TEST(DaemonPressure, ExhaustedFdBudgetWalksLadderToDrain) {
  const std::string socket = scratchSocket("pressfd");
  const std::string metrics_path = ::testing::TempDir() + "sfd_press_" +
                                   std::to_string(::getpid()) + ".prom";
  ::unlink(metrics_path.c_str());
  // An fd budget of 1 is saturated by the listener alone: the watchdog
  // samples critical immediately, escalates to drain after 8 sustained
  // samples, and the daemon must exit 0 on its own — degradation, not
  // an OOM-killer lottery.
  const pid_t pid = spawnDaemon({"--socket", socket, "--no-cache",
                                 "--max-open-fds", "1",
                                 "--pressure-interval", "50ms",
                                 "--metrics-out", metrics_path});
  ASSERT_GT(pid, 0);

  const int status = waitForExit(pid, 30.0);
  ASSERT_NE(status, -1) << "pressure drain never happened";
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(::access(socket.c_str(), F_OK), 0);  // socket swept at drain

  // The drain-time metrics flush records the ladder walk: the level
  // gauge parked at 4 (draining) and at least one transition counted.
  std::ifstream in(metrics_path);
  std::string prom((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(prom.find("safeflow_daemon_pressure_level 4"),
            std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("safeflow_daemon_pressure_transitions_total 0"),
            std::string::npos)
      << prom;
  ::unlink(metrics_path.c_str());
}

}  // namespace
