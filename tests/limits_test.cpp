// Unit tests for the AnalysisBudget layer (support/limits.h) and the
// driver-level degradation semantics it powers.
#include <gtest/gtest.h>

#include <string>

#include "safeflow/driver.h"
#include "support/limits.h"

namespace {

using namespace safeflow;
using support::AnalysisBudget;
using support::BudgetLimits;

TEST(AnalysisBudget, UnlimitedByDefault) {
  AnalysisBudget budget;
  EXPECT_FALSE(budget.limited());
  budget.start();
  budget.beginPhase("anything");
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(budget.step());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.anyDegraded());
  EXPECT_TRUE(budget.events().empty());
}

TEST(AnalysisBudget, StepCapTripsAndLatches) {
  BudgetLimits limits;
  limits.phase_steps = 10;
  AnalysisBudget budget(limits);
  budget.start();
  budget.beginPhase("alpha");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(budget.step());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_FALSE(budget.step());  // 11th trips
  EXPECT_TRUE(budget.exhausted());
  EXPECT_FALSE(budget.step());  // stays tripped
  ASSERT_EQ(budget.events().size(), 1u);
  EXPECT_EQ(budget.events()[0].phase, "alpha");
  EXPECT_EQ(budget.events()[0].reason, "steps");
  EXPECT_TRUE(budget.phaseDegraded("alpha"));
  EXPECT_FALSE(budget.phaseDegraded("beta"));
}

TEST(AnalysisBudget, BeginPhaseResetsStepCount) {
  BudgetLimits limits;
  limits.phase_steps = 5;
  AnalysisBudget budget(limits);
  budget.start();
  budget.beginPhase("first");
  while (budget.step()) {
  }
  EXPECT_TRUE(budget.exhausted());
  budget.beginPhase("second");
  EXPECT_FALSE(budget.exhausted());  // fresh phase, fresh cap
  EXPECT_TRUE(budget.step());
  EXPECT_TRUE(budget.anyDegraded());  // run-level flag persists
}

TEST(AnalysisBudget, BulkStepsCountAsN) {
  BudgetLimits limits;
  limits.phase_steps = 100;
  AnalysisBudget budget(limits);
  budget.start();
  budget.beginPhase("bulk");
  EXPECT_TRUE(budget.step(100));
  EXPECT_FALSE(budget.step(1));
}

TEST(AnalysisBudget, NullHelperAlwaysSucceeds) {
  EXPECT_TRUE(support::budgetStep(nullptr));
  support::budgetBeginPhase(nullptr, "x");  // must not crash
}

TEST(ParseDuration, AcceptsCommonForms) {
  double s = 0.0;
  EXPECT_TRUE(support::parseDuration("250ms", &s));
  EXPECT_DOUBLE_EQ(s, 0.25);
  EXPECT_TRUE(support::parseDuration("2s", &s));
  EXPECT_DOUBLE_EQ(s, 2.0);
  EXPECT_TRUE(support::parseDuration("1500us", &s));
  EXPECT_DOUBLE_EQ(s, 0.0015);
  EXPECT_TRUE(support::parseDuration("0.5", &s));
  EXPECT_DOUBLE_EQ(s, 0.5);
  EXPECT_TRUE(support::parseDuration("2m", &s));
  EXPECT_DOUBLE_EQ(s, 120.0);
}

TEST(ParseDuration, RejectsMalformed) {
  double s = 0.0;
  EXPECT_FALSE(support::parseDuration("", &s));
  EXPECT_FALSE(support::parseDuration("abc", &s));
  EXPECT_FALSE(support::parseDuration("10parsecs", &s));
  EXPECT_FALSE(support::parseDuration("-5s", &s));
}

// -- driver-level degradation -----------------------------------------------

constexpr const char* kSource = R"(
typedef struct State { int speed; int mode; } State;

State* st;
extern void* shmat(int shmid, void* addr, int flags);

/*** SafeFlow Annotation shminit ***/
void init_comm(void) {
  st = (State*)shmat(0, 0, 0);
  /*** SafeFlow Annotation assume(shmvar(st, sizeof(State))) ***/
  /*** SafeFlow Annotation assume(noncore(st)) ***/
}

int read_speed(State* p)
/*** SafeFlow Annotation assume(core(p, 0, sizeof(State))) ***/
{
  return p->speed;
}

int read_mode(State* p) { return p->mode; }

int main(void) {
  int v;
  int m;
  init_comm();
  v = read_speed(st);
  m = read_mode(st);
  /*** SafeFlow Annotation assert(safe(v)); ***/
  /*** SafeFlow Annotation assert(safe(m)); ***/
  return v + m;
}
)";

TEST(DriverBudget, UnlimitedRunIsNotDegraded) {
  SafeFlowDriver driver;
  driver.addSource("clean.c", kSource);
  const auto& report = driver.analyze();
  EXPECT_FALSE(driver.degraded());
  EXPECT_TRUE(report.degraded_phases.empty());
  // No degradation marker may leak into the renderings of a full run.
  EXPECT_EQ(report.renderJson(driver.sources()).find("degraded"),
            std::string::npos);
  EXPECT_EQ(driver.stats().renderJson().find("degraded"),
            std::string::npos);
}

TEST(DriverBudget, TinyStepBudgetDegradesConservatively) {
  SafeFlowOptions options;
  options.budget.phase_steps = 1;
  SafeFlowDriver driver(options);
  driver.addSource("tiny.c", kSource);
  const auto& report = driver.analyze();
  EXPECT_TRUE(driver.degraded());
  EXPECT_FALSE(report.degraded_phases.empty());
  // Every rendering carries the degradation marker.
  EXPECT_NE(report.renderJson(driver.sources()).find("\"degraded\": true"),
            std::string::npos);
  EXPECT_NE(driver.stats().renderJson().find("\"degraded\": true"),
            std::string::npos);
  EXPECT_NE(report.render(driver.sources()).find("DEGRADED"),
            std::string::npos);
  // And a `budget` diagnostic names each tripped phase.
  std::size_t budget_diags = 0;
  for (const auto& d : driver.diagnostics().diagnostics()) {
    if (d.category == "budget") ++budget_diags;
  }
  EXPECT_EQ(budget_diags, report.degraded_phases.size());
}

TEST(DriverBudget, TimeBudgetAlreadyExpiredTripsEveryPhase) {
  SafeFlowOptions options;
  options.budget.time_seconds = 1e-9;  // expires before the first step
  SafeFlowDriver driver(options);
  driver.addSource("expired.c", kSource);
  driver.analyze();
  EXPECT_TRUE(driver.degraded());
  for (const auto& e : driver.budget().events()) {
    EXPECT_EQ(e.reason, "time");
  }
}

TEST(DriverBudget, FailedFileIsIsolatedAndListed) {
  SafeFlowDriver driver;
  driver.addSource("broken.c", "int f( { garbage !!!");
  driver.addSource("good.c", kSource);
  const auto& report = driver.analyze();
  EXPECT_TRUE(driver.hasFrontendErrors());
  ASSERT_EQ(driver.failedFiles().size(), 1u);
  EXPECT_EQ(driver.failedFiles()[0], "broken.c");
  ASSERT_EQ(report.failed_files.size(), 1u);
  // The good file's analysis still produced results.
  EXPECT_GE(report.asserts_checked, 2u);
  EXPECT_NE(report.renderJson(driver.sources()).find("\"failed_files\""),
            std::string::npos);
}

}  // namespace
