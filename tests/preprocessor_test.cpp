#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cfront/preprocessor.h"
#include "support/diagnostics.h"
#include "support/source_manager.h"

namespace {

using safeflow::cfront::Preprocessor;
using safeflow::cfront::Token;
using safeflow::cfront::TokenKind;

struct PpResult {
  std::vector<Token> tokens;  // without trailing EOF
  bool ok = true;
};

PpResult preprocess(const std::string& src) {
  safeflow::support::SourceManager sm;
  safeflow::support::DiagnosticEngine diags;
  const auto id = sm.addBuffer("main.c", src);
  Preprocessor pp(sm, diags);
  std::vector<Token> toks = pp.run(id);
  EXPECT_FALSE(toks.empty());
  EXPECT_TRUE(toks.back().is(TokenKind::kEof));
  toks.pop_back();
  return PpResult{std::move(toks), !diags.hasErrors()};
}

std::string spelling(const PpResult& r) {
  std::string out;
  for (const Token& t : r.tokens) {
    if (!out.empty()) out += ' ';
    switch (t.kind) {
      case TokenKind::kIdentifier:
      case TokenKind::kIntLiteral:
      case TokenKind::kFloatLiteral:
        out += t.text;
        break;
      case TokenKind::kKwInt: out += "int"; break;
      case TokenKind::kKwFloat: out += "float"; break;
      case TokenKind::kPlus: out += "+"; break;
      case TokenKind::kStar: out += "*"; break;
      case TokenKind::kLParen: out += "("; break;
      case TokenKind::kRParen: out += ")"; break;
      case TokenKind::kSemi: out += ";"; break;
      case TokenKind::kAssign: out += "="; break;
      default: out += "?"; break;
    }
  }
  return out;
}

TEST(Preprocessor, ObjectMacro) {
  const auto r = preprocess("#define N 16\nint x = N;");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(spelling(r), "int x = 16 ;");
}

TEST(Preprocessor, ObjectMacroMultiToken) {
  const auto r = preprocess("#define EXPR (1 + 2)\nint x = EXPR;");
  EXPECT_EQ(spelling(r), "int x = ( 1 + 2 ) ;");
}

TEST(Preprocessor, FunctionMacro) {
  const auto r = preprocess("#define SQ(a) ((a) * (a))\nint x = SQ(3);");
  EXPECT_EQ(spelling(r), "int x = ( ( 3 ) * ( 3 ) ) ;");
}

TEST(Preprocessor, FunctionMacroTwoParams) {
  const auto r = preprocess("#define MIN(a, b) ((a) + (b))\nint x = MIN(1, 2);");
  EXPECT_EQ(spelling(r), "int x = ( ( 1 ) + ( 2 ) ) ;");
}

TEST(Preprocessor, NestedMacros) {
  const auto r = preprocess(
      "#define A 1\n#define B A + A\nint x = B;");
  EXPECT_EQ(spelling(r), "int x = 1 + 1 ;");
}

TEST(Preprocessor, RecursiveMacroDoesNotLoop) {
  const auto r = preprocess("#define X X + 1\nint y = X;");
  // X expands once; the inner X is painted and stays.
  EXPECT_EQ(spelling(r), "int y = X + 1 ;");
}

TEST(Preprocessor, MacroNameWithoutCallIsPlain) {
  const auto r = preprocess("#define F(a) a\nint F;");
  EXPECT_EQ(spelling(r), "int F ;");
}

TEST(Preprocessor, Undef) {
  const auto r = preprocess("#define N 1\n#undef N\nint x = N;");
  EXPECT_EQ(spelling(r), "int x = N ;");
}

TEST(Preprocessor, IfdefTaken) {
  const auto r = preprocess("#define FEATURE 1\n#ifdef FEATURE\nint x;\n#endif\n");
  EXPECT_EQ(spelling(r), "int x ;");
}

TEST(Preprocessor, IfdefNotTaken) {
  const auto r = preprocess("#ifdef MISSING\nint x;\n#endif\nint y;");
  EXPECT_EQ(spelling(r), "int y ;");
}

TEST(Preprocessor, IfndefElse) {
  const auto r = preprocess(
      "#ifndef MISSING\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_EQ(spelling(r), "int a ;");
}

TEST(Preprocessor, ElseBranchTaken) {
  const auto r = preprocess(
      "#ifdef MISSING\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_EQ(spelling(r), "int b ;");
}

TEST(Preprocessor, NestedConditionals) {
  const auto r = preprocess(
      "#ifdef MISSING\n"
      "#ifdef ALSO\nint a;\n#endif\n"
      "int b;\n"
      "#endif\n"
      "int c;");
  EXPECT_EQ(spelling(r), "int c ;");
}

TEST(Preprocessor, IfZeroOne) {
  const auto r = preprocess("#if 0\nint a;\n#endif\n#if 1\nint b;\n#endif\n");
  EXPECT_EQ(spelling(r), "int b ;");
}

TEST(Preprocessor, IfDefined) {
  const auto r = preprocess(
      "#define F 1\n#if defined(F)\nint a;\n#endif\n"
      "#if !defined(F)\nint b;\n#endif\n");
  EXPECT_EQ(spelling(r), "int a ;");
}

TEST(Preprocessor, UnterminatedIfReportsError) {
  const auto r = preprocess("#ifdef X\nint a;\n");
  EXPECT_FALSE(r.ok);
}

TEST(Preprocessor, EndifWithoutIfReportsError) {
  const auto r = preprocess("#endif\n");
  EXPECT_FALSE(r.ok);
}

TEST(Preprocessor, Predefine) {
  safeflow::support::SourceManager sm;
  safeflow::support::DiagnosticEngine diags;
  const auto id = sm.addBuffer("main.c", "int x = LIMIT;");
  Preprocessor pp(sm, diags);
  pp.predefine("LIMIT", "99");
  auto toks = pp.run(id);
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].text, "99");
}

TEST(Preprocessor, AngleBracketIncludeIgnored) {
  const auto r = preprocess("#include <stdio.h>\nint x;");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(spelling(r), "int x ;");
}

TEST(Preprocessor, MissingQuotedIncludeReportsError) {
  const auto r = preprocess("#include \"missing_header.h\"\nint x;");
  EXPECT_FALSE(r.ok);
}

TEST(Preprocessor, IncludeFromDisk) {
  // Write a real file pair and include one from the other.
  const std::string dir = ::testing::TempDir();
  const std::string header = dir + "/sf_pp_test_header.h";
  {
    FILE* f = fopen(header.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("int from_header;\n", f);
    fclose(f);
  }
  safeflow::support::SourceManager sm;
  safeflow::support::DiagnosticEngine diags;
  const auto id = sm.addBuffer(
      dir + "/main.c", "#include \"sf_pp_test_header.h\"\nint x;");
  Preprocessor pp(sm, diags);
  auto toks = pp.run(id);
  EXPECT_FALSE(diags.hasErrors()) << diags.render(sm);
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[1].text, "from_header");
}

TEST(Preprocessor, MacroInsideInactiveBranchNotExpanded) {
  const auto r = preprocess(
      "#define N 5\n#ifdef MISSING\nint x = N;\n#endif\nint y;");
  EXPECT_EQ(spelling(r), "int y ;");
}

TEST(Preprocessor, DefineInsideInactiveBranchIgnored) {
  const auto r = preprocess(
      "#ifdef MISSING\n#define N 5\n#endif\nint x = N;");
  EXPECT_EQ(spelling(r), "int x = N ;");
}

}  // namespace
