// Behavioural tests for the Simplex control substrate: the safety
// controller balances the plants, the stability-envelope monitor rejects
// dangerous non-core outputs, and the fault injectors make the paper's
// defect classes observable at run time.
#include <gtest/gtest.h>

#include <cmath>

#include "simplex/controllers.h"
#include "simplex/fault_injection.h"
#include "simplex/monitor.h"
#include "simplex/plant.h"
#include "simplex/runtime.h"
#include "simplex/shared_memory.h"

namespace {

using namespace safeflow::simplex;
using safeflow::numerics::StateVector;

constexpr double kDt = 0.02;

// ---------------------------------------------------------------------------
// Plants
// ---------------------------------------------------------------------------

TEST(Pendulum, FallsOverWithoutControl) {
  InvertedPendulum plant;
  plant.setState({0.0, 0.0, 0.05, 0.0});
  for (int i = 0; i < 500 && plant.isSafe(); ++i) plant.step(0.0, kDt);
  EXPECT_FALSE(plant.isSafe());
}

TEST(Pendulum, LinearizationShapes) {
  InvertedPendulum plant;
  EXPECT_EQ(plant.linearA().rows(), 4u);
  EXPECT_EQ(plant.linearB().rows(), 4u);
  EXPECT_EQ(plant.linearB().cols(), 1u);
  // Upright equilibrium: gravity destabilizes the angle.
  EXPECT_GT(plant.linearA()(3, 2), 0.0);
}

TEST(Pendulum, NanInputTreatedAsZero) {
  InvertedPendulum plant;
  plant.step(std::nan(""), kDt);
  EXPECT_TRUE(std::isfinite(plant.state()[0]));
}

TEST(Pendulum, StateDimensionEnforced) {
  InvertedPendulum plant;
  EXPECT_THROW(plant.setState({1.0, 2.0}), std::invalid_argument);
}

TEST(DoublePendulum, FallsOverWithoutControl) {
  DoubleInvertedPendulum plant;
  for (int i = 0; i < 800 && plant.isSafe(); ++i) plant.step(0.0, kDt);
  EXPECT_FALSE(plant.isSafe());
}

TEST(DoublePendulum, LinearizationShapes) {
  DoubleInvertedPendulum plant;
  EXPECT_EQ(plant.linearA().rows(), 6u);
  EXPECT_EQ(plant.linearB().rows(), 6u);
}

// ---------------------------------------------------------------------------
// Controllers
// ---------------------------------------------------------------------------

TEST(Lqr, BalancesPendulum) {
  InvertedPendulum plant;
  plant.setState({0.05, 0.0, 0.08, 0.0});
  LqrController ctl(plant, LqrWeights{}, kDt);
  for (int i = 0; i < 1500; ++i) {
    plant.step(ctl.compute(plant.state()), kDt);
    ASSERT_TRUE(plant.isSafe()) << "diverged at step " << i;
  }
  EXPECT_LT(std::abs(plant.state()[2]), 0.02);
}

TEST(Lqr, BalancesDoublePendulum) {
  DoubleInvertedPendulum plant;
  LqrController ctl(plant, LqrWeights{}, kDt, 12.0);
  for (int i = 0; i < 1500; ++i) {
    plant.step(ctl.compute(plant.state()), kDt);
    ASSERT_TRUE(plant.isSafe()) << "diverged at step " << i;
  }
  EXPECT_LT(std::abs(plant.state()[1]), 0.02);
}

TEST(Lqr, RespectsOutputLimit) {
  InvertedPendulum plant;
  LqrController ctl(plant, LqrWeights{}, kDt, 5.0);
  const double u = ctl.compute({10.0, 10.0, 10.0, 10.0});
  EXPECT_LE(std::abs(u), 5.0);
}

TEST(Experimental, HealthyModeBalancesWithLowerJitter) {
  // The paper motivates the non-core controller as minimizing jitter;
  // verify the aggressive gains damp the angle faster than the safety
  // controller from the same initial condition.
  const StateVector x0{0.0, 0.0, 0.12, 0.0};
  auto settle_time = [&](Controller& ctl, Plant& plant) {
    int settled = 0;
    for (int i = 0; i < 2000; ++i) {
      plant.step(ctl.compute(plant.state()), kDt);
      const double angle = std::abs(plant.state()[2]);
      if (angle < 0.01) {
        if (++settled > 50) return i;
      } else {
        settled = 0;
      }
    }
    return 2000;
  };
  InvertedPendulum p1;
  p1.setState(x0);
  LqrController safety(p1, LqrWeights{}, kDt);
  const int t_safety = settle_time(safety, p1);

  InvertedPendulum p2;
  p2.setState(x0);
  ExperimentalController experimental(p2, kDt);
  const int t_experimental = settle_time(experimental, p2);

  EXPECT_LT(t_experimental, t_safety);
}

TEST(Experimental, FaultModesProduceBadOutput) {
  InvertedPendulum plant;
  ExperimentalController nan_ctl(plant, kDt, FaultMode::kNaN);
  EXPECT_TRUE(std::isnan(nan_ctl.compute(plant.state())));

  ExperimentalController over(plant, kDt, FaultMode::kOverdrive);
  EXPECT_GT(std::abs(over.compute(plant.state())), 5.0);
}

TEST(Experimental, FaultOnsetDelaysMisbehaviour) {
  InvertedPendulum plant;
  ExperimentalController ctl(plant, kDt, FaultMode::kOverdrive);
  ctl.setFaultOnset(10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(std::abs(ctl.compute(plant.state())), 12.0);
  }
  EXPECT_DOUBLE_EQ(ctl.compute(plant.state()), 12.0);
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : safety_(plant_, LqrWeights{}, kDt),
        monitor_(plant_, safety_, kDt) {}

  InvertedPendulum plant_;
  LqrController safety_;
  StabilityEnvelopeMonitor monitor_;
};

TEST_F(MonitorTest, EnvelopeConstructed) {
  EXPECT_TRUE(monitor_.valid());
  EXPECT_GT(monitor_.envelopeLevel(), 0.0);
}

TEST_F(MonitorTest, AcceptsReasonableControlNearUpright) {
  const StateVector x{0.0, 0.0, 0.02, 0.0};
  const double u = safety_.compute(x);
  const auto d = monitor_.check(x, u);
  EXPECT_TRUE(d.accepted) << d.reason;
}

TEST_F(MonitorTest, RejectsNaN) {
  const auto d = monitor_.check({0, 0, 0, 0}, std::nan(""));
  EXPECT_FALSE(d.accepted);
  EXPECT_NE(std::string(d.reason).find("non-finite"), std::string::npos);
}

TEST_F(MonitorTest, RejectsOverdrive) {
  const auto d = monitor_.check({0, 0, 0, 0}, 12.0);
  EXPECT_FALSE(d.accepted);
}

TEST_F(MonitorTest, RejectsDestabilizingCommandAtEnvelopeEdge) {
  // Near the envelope boundary, a hard push outward must be rejected.
  StateVector x{0.3, 0.4, 0.3, 0.8};
  const auto push = monitor_.check(x, 5.0);
  const auto recover = monitor_.check(x, safety_.compute(x));
  EXPECT_FALSE(push.accepted && !recover.accepted)
      << "monitor accepted outward push but rejected recovery";
}

// ---------------------------------------------------------------------------
// Shared memory + fault injection
// ---------------------------------------------------------------------------

TEST(SharedMemory, AccountsWritesByParty) {
  SharedMemoryRegion shm;
  FeedbackSlot fb;
  shm.writeFeedback(Party::kCore, fb);
  ControlSlot ctl;
  shm.writeControl(Party::kNonCore, ctl);
  EXPECT_EQ(shm.writesBy(Party::kCore), 1u);
  EXPECT_EQ(shm.writesBy(Party::kNonCore), 1u);
}

TEST(SharedMemory, DetectsFeedbackTampering) {
  SharedMemoryRegion shm;
  FeedbackSlot fb;
  shm.writeFeedback(Party::kCore, fb);
  EXPECT_FALSE(shm.feedbackTamperedByNonCore());
  shm.writeFeedback(Party::kNonCore, fb);
  EXPECT_TRUE(shm.feedbackTamperedByNonCore());
}

TEST(SharedMemory, InitCheckAcceptsDisjointRegions) {
  std::string err;
  EXPECT_TRUE(SharedMemoryRegion::initCheck(
      {{"feedback", 0, 40}, {"control", 40, 16}}, 64, &err))
      << err;
}

TEST(SharedMemory, InitCheckRejectsOverlap) {
  std::string err;
  EXPECT_FALSE(SharedMemoryRegion::initCheck(
      {{"feedback", 0, 48}, {"control", 40, 16}}, 64, &err));
  EXPECT_NE(err.find("overlaps"), std::string::npos);
}

TEST(SharedMemory, InitCheckRejectsOverrun) {
  std::string err;
  EXPECT_FALSE(SharedMemoryRegion::initCheck(
      {{"feedback", 0, 40}, {"control", 40, 40}}, 64, &err));
  EXPECT_NE(err.find("exceeds"), std::string::npos);
}

TEST(FaultInjector, RigFeedbackOverwritesSlot) {
  SharedMemoryRegion shm;
  FeedbackSlot fb;
  fb.angle = 0.5;
  shm.writeFeedback(Party::kCore, fb);
  ShmFaultInjector injector(ShmFault::kRigFeedback);
  injector.afterNonCorePublish(shm, 1);
  EXPECT_DOUBLE_EQ(shm.readFeedback().angle, 0.0);
  EXPECT_TRUE(shm.feedbackTamperedByNonCore());
}

TEST(FaultInjector, WritePidPlantsCorePid) {
  SharedMemoryRegion shm;
  shm.writePid(Party::kCore, 777);
  ShmFaultInjector injector(ShmFault::kWritePid, /*core_pid=*/4242);
  injector.afterNonCorePublish(shm, 1);
  EXPECT_EQ(shm.readControl().supervisor_pid, 4242);
  EXPECT_TRUE(shm.pidTamperedByNonCore());
}

// ---------------------------------------------------------------------------
// Full runtime: the Fig. 1 architecture end to end
// ---------------------------------------------------------------------------

TEST(Runtime, HealthyNonCoreControllerIsUsed) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 20.0;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.remained_safe) << stats.summary();
  EXPECT_GT(stats.noncore_used, stats.steps / 2) << stats.summary();
}

TEST(Runtime, MonitorSavesPlantFromOverdriveFault) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 20.0;
  config.controller_fault = FaultMode::kOverdrive;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.remained_safe) << stats.summary();
  EXPECT_GT(stats.noncore_rejected, 0u);
  EXPECT_GE(stats.safety_takeovers, 1u);
}

TEST(Runtime, MonitorSavesPlantFromNaNFault) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 20.0;
  config.controller_fault = FaultMode::kNaN;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.remained_safe) << stats.summary();
  EXPECT_GT(stats.noncore_rejected, 0u);
}

TEST(Runtime, MonitorSavesPlantFromNoisyFault) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 20.0;
  config.controller_fault = FaultMode::kNoisy;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.remained_safe) << stats.summary();
}

TEST(Runtime, KillDefectFiresUnderPidFault) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 20.0;
  config.shm_fault = ShmFault::kWritePid;
  config.simulate_kill_signal = true;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.core_killed_itself) << stats.summary();
}

TEST(Runtime, KillSignalHarmlessWithoutFault) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 10.0;
  config.simulate_kill_signal = true;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_FALSE(stats.core_killed_itself);
}

TEST(Runtime, RiggedFeedbackDefeatsVulnerableDecision) {
  // The Generic Simplex defect, live: with the decision module re-reading
  // feedback from shared memory, the rig-feedback injector can make a
  // faulty controller's output pass the recoverability check.
  auto run_variant = [](bool vulnerable) {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 20.0;
    // The rail fault stays within the actuator range, so only the
    // stability-envelope check can stop it — and that check is what the
    // rigged feedback defeats.
    config.controller_fault = FaultMode::kRail;
    config.shm_fault = ShmFault::kRigFeedback;
    config.vulnerable_decision = vulnerable;
    SimplexRuntime rt(plant, config);
    return rt.run();
  };
  const auto vulnerable = run_variant(true);
  const auto fixed = run_variant(false);
  EXPECT_FALSE(vulnerable.remained_safe) << vulnerable.summary();
  EXPECT_TRUE(fixed.remained_safe) << fixed.summary();
}

TEST(Runtime, DoublePendulumRunsUnderSimplex) {
  DoubleInvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 15.0;
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.remained_safe) << stats.summary();
}

// Parameterized sweep: the monitor must keep the plant safe for every
// fault mode of the experimental controller.
class FaultSweep : public ::testing::TestWithParam<FaultMode> {};

TEST_P(FaultSweep, PlantStaysSafeUnderAnyControllerFault) {
  InvertedPendulum plant;
  RuntimeConfig config;
  config.duration = 20.0;
  config.controller_fault = GetParam();
  SimplexRuntime rt(plant, config);
  const auto stats = rt.run();
  EXPECT_TRUE(stats.remained_safe)
      << faultModeName(GetParam()) << ": " << stats.summary();
}

INSTANTIATE_TEST_SUITE_P(
    AllFaults, FaultSweep,
    ::testing::Values(FaultMode::kNone, FaultMode::kOverdrive,
                      FaultMode::kRail, FaultMode::kNaN, FaultMode::kStuck,
                      FaultMode::kNoisy, FaultMode::kDelayed),
    [](const auto& info) {
      return std::string(faultModeName(info.param));
    });

}  // namespace
