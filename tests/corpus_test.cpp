// Integration tests over the reconstructed evaluation corpora: the
// analysis-derived columns of Table 1 must match the paper exactly
// (annotation lines, error dependencies, warnings, false positives, no
// restriction violations), and the running example must reproduce the
// behaviour described in §3.3.
#include <gtest/gtest.h>

#include <set>

#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;

const char* corpusDir() { return SAFEFLOW_CORPUS_DIR; }

class CorpusRow : public ::testing::TestWithParam<std::string> {
 protected:
  static const CorpusSystem& system(const std::string& name) {
    static const std::vector<CorpusSystem> systems =
        corpusSystems(corpusDir());
    for (const auto& s : systems) {
      if (s.name == name) return s;
    }
    throw std::runtime_error("unknown corpus " + name);
  }
};

TEST_P(CorpusRow, MatchesPaperTable1) {
  const CorpusSystem& sys = system(GetParam());
  const MeasuredRow row = measureSystem(sys);

  EXPECT_TRUE(row.frontend_clean);
  EXPECT_EQ(row.annotation_lines, sys.paper.annotation_lines);
  EXPECT_EQ(row.error_dependencies, sys.paper.error_dependencies);
  EXPECT_EQ(row.warnings, sys.paper.warnings);
  EXPECT_EQ(row.false_positives, sys.paper.false_positives);
  // "Notably, no source changes were necessary for the systems to adhere
  // to our language restrictions."
  EXPECT_EQ(row.restriction_violations, 0);
}

TEST_P(CorpusRow, SourceChangeShapeMatches) {
  const CorpusSystem& sys = system(GetParam());
  const MeasuredRow row = measureSystem(sys);
  if (sys.paper.source_changes == 0) {
    EXPECT_EQ(row.source_changes, 0);
  } else {
    // The paper's refactor extracted one monitoring function; the diff
    // must be small and non-zero (the exact line count depends on
    // formatting).
    EXPECT_GT(row.source_changes, 0);
    EXPECT_LT(row.source_changes, 60);
  }
}

INSTANTIATE_TEST_SUITE_P(Table1, CorpusRow,
                         ::testing::Values("ip", "generic_simplex",
                                           "double_ip"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Per-system defect checks (paper §4 narrative)
// ---------------------------------------------------------------------------

std::unique_ptr<SafeFlowDriver> analyzeSystem(const std::string& name) {
  for (const auto& sys : corpusSystems(corpusDir())) {
    if (sys.name != name) continue;
    auto driver = std::make_unique<SafeFlowDriver>(corpusAnalysisOptions());
    for (const auto& f : sys.core_files) driver->addFile(f);
    driver->analyze();
    EXPECT_FALSE(driver->hasFrontendErrors())
        << driver->diagnostics().render(driver->sources());
    return driver;
  }
  throw std::runtime_error("unknown system " + name);
}

TEST(CorpusDefects, AllThreeSystemsHaveTheKillPidError) {
  for (const char* name : {"ip", "generic_simplex", "double_ip"}) {
    const auto d = analyzeSystem(name);
    bool kill_error = false;
    for (const auto& e : d->report().errors) {
      if (e.kind == analysis::CriticalDependencyError::Kind::kData &&
          e.critical_value.rfind("kill", 0) == 0) {
        kill_error = true;
      }
    }
    EXPECT_TRUE(kill_error) << name;
  }
}

TEST(CorpusDefects, GenericSimplexHasRiggableFeedbackError) {
  const auto d = analyzeSystem("generic_simplex");
  bool feedback_error = false;
  for (const auto& e : d->report().errors) {
    if (e.kind != analysis::CriticalDependencyError::Kind::kData) continue;
    for (const auto& r : e.region_names) {
      if (r == "fbShm") feedback_error = true;
    }
  }
  EXPECT_TRUE(feedback_error) << d->report().render(d->sources());
}

TEST(CorpusDefects, DoubleIpHasAssumedHarmlessTuneError) {
  const auto d = analyzeSystem("double_ip");
  bool tune_error = false;
  for (const auto& e : d->report().errors) {
    if (e.kind != analysis::CriticalDependencyError::Kind::kData) continue;
    for (const auto& r : e.region_names) {
      if (r == "tuneShm") tune_error = true;
    }
  }
  EXPECT_TRUE(tune_error) << d->report().render(d->sources());
}

TEST(CorpusDefects, AllFalsePositivesAreControlDependence) {
  // Paper §4: "All false positives returned in our tests were due to
  // control dependence on non-core values".
  for (const char* name : {"ip", "generic_simplex", "double_ip"}) {
    const auto d = analyzeSystem(name);
    for (const auto& e : d->report().errors) {
      if (e.kind == analysis::CriticalDependencyError::Kind::kControl) {
        EXPECT_FALSE(e.source_loads.empty())
            << name << ": control FP must cite its source loads";
      }
    }
  }
}

TEST(CorpusDefects, MonitoredRegionsNeverWarn) {
  // cmdShm is monitored in every system; gain/status in generic simplex;
  // swingShm in double IP.
  const std::set<std::string> monitored{"cmdShm", "gainShm", "statShm",
                                        "swingShm"};
  for (const char* name : {"generic_simplex"}) {
    const auto d = analyzeSystem(name);
    for (const auto& w : d->report().warnings) {
      if (w.region_name == "cmdShm" || w.region_name == "gainShm") {
        ADD_FAILURE() << name << ": monitored region '" << w.region_name
                      << "' warned in " << w.function;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The running example (Fig. 2/3)
// ---------------------------------------------------------------------------

TEST(RunningExampleCorpus, ReproducesSection33) {
  SafeFlowDriver driver;
  driver.addFile(std::string(corpusDir()) + "/running_example/core.c");
  driver.analyze();
  ASSERT_FALSE(driver.hasFrontendErrors())
      << driver.diagnostics().render(driver.sources());

  // "The dereferencing of feedback in decision is reported as unsafe."
  bool feedback_warning = false;
  for (const auto& w : driver.report().warnings) {
    if (w.region_name == "feedback") feedback_warning = true;
  }
  EXPECT_TRUE(feedback_warning);

  // "...any values generated by decision, which depend on feedback are
  // unsafe. This includes the return value, output, which violates the
  // critical functionality requirement."
  ASSERT_FALSE(driver.report().errors.empty());
  EXPECT_EQ(driver.report().errors.front().critical_value, "output");
}

TEST(RunningExampleCorpus, NoncoreCtrlIsMonitored) {
  SafeFlowDriver driver;
  driver.addFile(std::string(corpusDir()) + "/running_example/core.c");
  driver.analyze();
  for (const auto& w : driver.report().warnings) {
    EXPECT_NE(w.region_name, "noncoreCtrl");
  }
}

}  // namespace
