// Unit tests for the SafeFlow analysis phases, including the paper's
// running example (Fig. 2/3: the inverted-pendulum core controller).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;
using analysis::CriticalDependencyError;

/// Common prelude: shared types and the initializing function from Fig. 3.
const char* kPrelude = R"(
typedef struct SHM { float control; float position; float angle; int seq; } SHMData;

SHMData *feedback;
SHMData *noncoreCtrl;

extern void *shmat(int shmid, void *addr, int flags);
extern int shmget(int key, int size, int flags);

/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
  void *shmStart;
  int shmid;
  shmid = shmget(42, 2 * sizeof(SHMData), 0);
  shmStart = shmat(shmid, 0, 0);
  feedback = (SHMData *) shmStart;
  noncoreCtrl = feedback + 1;
  /*** SafeFlow Annotation assume(shmvar(feedback, sizeof(SHMData))) ***/
  /*** SafeFlow Annotation assume(shmvar(noncoreCtrl, sizeof(SHMData))) ***/
  /*** SafeFlow Annotation assume(noncore(feedback)) ***/
  /*** SafeFlow Annotation assume(noncore(noncoreCtrl)) ***/
}
)";

std::unique_ptr<SafeFlowDriver> analyze(const std::string& body,
                                        SafeFlowOptions options = {}) {
  auto driver = std::make_unique<SafeFlowDriver>(std::move(options));
  driver->addSource("test.c", std::string(kPrelude) + body);
  driver->analyze();
  EXPECT_FALSE(driver->hasFrontendErrors())
      << driver->diagnostics().render(driver->sources());
  return driver;
}

// ---------------------------------------------------------------------------
// Region discovery
// ---------------------------------------------------------------------------

TEST(ShmRegions, DiscoversDeclaredRegions) {
  const auto d = analyze("int main(void) { initComm(); return 0; }");
  EXPECT_EQ(d->stats().shm_regions, 2u);
  EXPECT_EQ(d->stats().noncore_regions, 2u);
  EXPECT_EQ(d->stats().init_functions, 1u);
}

TEST(ShmRegions, RegionSizesFromAnnotations) {
  const auto d = analyze("int main(void) { initComm(); return 0; }");
  // SHMData = 3 floats + int = 16 bytes; InitCheck is demanded.
  ASSERT_FALSE(d->report().required_runtime_checks.empty());
  EXPECT_NE(d->report().required_runtime_checks[0].find("InitCheck"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// The running example (paper Fig. 2): the feedback deref inside decision
// is unmonitored; the critical value `output` becomes unsafe.
// ---------------------------------------------------------------------------

const char* kRunningExample = R"(
extern void sendControl(float v);
extern void getFeedback(SHMData *fb);
extern float computeSafe(float pos, float ang);

int checkSafety(SHMData *fb, SHMData *nc)
{
  /* BUG (per the paper): dereferencing the unmonitored feedback region
     inside the monitoring function for noncoreCtrl only. */
  if (fb->angle < 0.5f && nc->control < 5.0f && nc->control > -5.0f)
    return 1;
  return 0;
}

float decision(SHMData *fb, float safeControl, SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  if (checkSafety(fb, nc))
    return nc->control;
  return safeControl;
}

int main(void)
{
  float safeControl;
  float output;
  initComm();
  while (1) {
    getFeedback(feedback);
    safeControl = computeSafe(1.0f, 2.0f);
    output = decision(feedback, safeControl, noncoreCtrl);
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
  }
  return 0;
}
)";

TEST(RunningExample, DecisionIsMonitorFunction) {
  const auto d = analyze(kRunningExample);
  EXPECT_EQ(d->stats().monitor_functions, 1u);
}

TEST(RunningExample, UnmonitoredFeedbackAccessWarned) {
  const auto d = analyze(kRunningExample);
  bool feedback_warning = false;
  for (const auto& w : d->report().warnings) {
    if (w.region_name == "feedback" && w.function == "checkSafety") {
      feedback_warning = true;
    }
  }
  EXPECT_TRUE(feedback_warning)
      << d->report().render(d->sources());
}

TEST(RunningExample, NoWarningForMonitoredNoncoreCtrl) {
  const auto d = analyze(kRunningExample);
  for (const auto& w : d->report().warnings) {
    EXPECT_NE(w.region_name, "noncoreCtrl")
        << "monitored region must not warn: " << w.function;
  }
}

TEST(RunningExample, CriticalOutputFlagged) {
  const auto d = analyze(kRunningExample);
  ASSERT_EQ(d->report().asserts_checked, 1u);
  ASSERT_FALSE(d->report().errors.empty())
      << d->report().render(d->sources());
  const auto& e = d->report().errors.front();
  EXPECT_EQ(e.critical_value, "output");
  EXPECT_EQ(e.function, "main");
  EXPECT_FALSE(e.source_loads.empty());
}

TEST(RunningExample, FixedVersionIsClean) {
  // The paper's suggested fix: pass a local copy of the feedback values
  // instead of the shared pointer; monitor checks only nc.
  const char* fixed = R"(
extern void sendControl(float v);
extern float computeSafe(float pos, float ang);

int checkSafety(float angle, SHMData *nc)
{
  if (angle < 0.5f && nc->control < 5.0f && nc->control > -5.0f)
    return 1;
  return 0;
}

float decision(float angle, float safeControl, SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  if (checkSafety(angle, nc))
    return nc->control;
  return safeControl;
}

int main(void)
{
  float safeControl;
  float output;
  float localAngle;
  initComm();
  localAngle = 0.1f;
  while (1) {
    safeControl = computeSafe(1.0f, 2.0f);
    output = decision(localAngle, safeControl, noncoreCtrl);
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
  }
  return 0;
}
)";
  const auto d = analyze(fixed);
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

// ---------------------------------------------------------------------------
// Monitoring semantics
// ---------------------------------------------------------------------------

TEST(Monitoring, AssumptionExtendsToCallees) {
  // checkSafety has no annotation but is only called from the monitor, so
  // its nc deref is covered ("in any function invoked recursively").
  const char* src = R"(
extern void sendControl(float v);

int helper(SHMData *nc) { return nc->control > 0.0f; }

float decision(SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  if (helper(nc)) return nc->control;
  return 0.0f;
}

int main(void)
{
  float output;
  initComm();
  output = decision(noncoreCtrl);
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
  EXPECT_TRUE(d->report().warnings.empty())
      << d->report().render(d->sources());
}

TEST(Monitoring, HelperCalledFromUnmonitoredContextWarns) {
  const char* src = R"(
extern void sendControl(float v);

int helper(SHMData *nc) { return nc->control > 0.0f; }

float decision(SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  if (helper(nc)) return nc->control;
  return 0.0f;
}

int unmonitored(void) { return helper(noncoreCtrl); }

int main(void)
{
  float output;
  initComm();
  output = decision(noncoreCtrl);
  unmonitored();
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  bool helper_warned = false;
  for (const auto& w : d->report().warnings) {
    if (w.function == "helper") helper_warned = true;
  }
  EXPECT_TRUE(helper_warned) << d->report().render(d->sources());
}

TEST(Monitoring, PartialOffsetCoverage) {
  // Monitoring only the first field leaves the rest of the struct unsafe.
  const char* src = R"(
extern void sendControl(float v);

float decision(SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, 4)) ***/
{
  return nc->position; /* offset 4..8: OUTSIDE the monitored range */
}

int main(void)
{
  float output;
  initComm();
  output = decision(noncoreCtrl);
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_FALSE(d->report().errors.empty())
      << d->report().render(d->sources());
  EXPECT_FALSE(d->report().warnings.empty());
}

TEST(Monitoring, CoveredOffsetWithinRange) {
  const char* src = R"(
extern void sendControl(float v);

float decision(SHMData *nc)
/*** SafeFlow Annotation assume(core(nc, 0, sizeof(SHMData))) ***/
{
  return nc->position;
}

int main(void)
{
  float output;
  initComm();
  output = decision(noncoreCtrl);
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

// ---------------------------------------------------------------------------
// Write-then-read through shared memory stays unsafe (§2: writes do not
// change core/noncore status — the Generic Simplex "rigged feedback" bug).
// ---------------------------------------------------------------------------

TEST(Semantics, CoreWriteDoesNotMakeRegionSafe) {
  const char* src = R"(
extern void sendControl(float v);
extern float readSensor(void);

int main(void)
{
  float output;
  float sensor;
  initComm();
  sensor = readSensor();
  feedback->position = sensor;   /* core writes the sensor value */
  output = feedback->position;   /* reads it back via shm: riggable! */
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  ASSERT_FALSE(d->report().errors.empty())
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kData);
}

// ---------------------------------------------------------------------------
// Taint propagation mechanics
// ---------------------------------------------------------------------------

TEST(Taint, FlowsThroughArithmetic) {
  const char* src = R"(
extern void sendControl(float v);
int main(void)
{
  float output;
  initComm();
  output = noncoreCtrl->control * 2.0f + 1.0f;
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_EQ(d->report().dataErrorCount(), 1u);
}

TEST(Taint, FlowsThroughLocalMemory) {
  const char* src = R"(
extern void sendControl(float v);
void stash(float *dst, float v) { *dst = v; }
int main(void)
{
  float output;
  float buffer;
  initComm();
  stash(&buffer, noncoreCtrl->control);
  output = buffer;
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_EQ(d->report().dataErrorCount(), 1u)
      << d->report().render(d->sources());
}

TEST(Taint, FlowsThroughReturnValues) {
  const char* src = R"(
extern void sendControl(float v);
float fetch(void) { return noncoreCtrl->control; }
int main(void)
{
  float output;
  initComm();
  output = fetch();
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_EQ(d->report().dataErrorCount(), 1u);
}

TEST(Taint, CleanValueHasNoError) {
  const char* src = R"(
extern void sendControl(float v);
extern float computeSafe(void);
int main(void)
{
  float output;
  initComm();
  output = computeSafe();
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  EXPECT_TRUE(d->report().errors.empty());
}

TEST(Taint, ControlDependenceFlaggedSeparately) {
  // The paper's false-positive class: critical data control dependent on
  // a non-core configuration word, while both arms are individually safe.
  const char* src = R"(
extern void sendControl(float v);
extern float safeA(void);
extern float safeB(void);
int main(void)
{
  float output;
  initComm();
  if (noncoreCtrl->seq > 0)
    output = safeA();
  else
    output = safeB();
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kControl);
  EXPECT_EQ(d->report().dataErrorCount(), 0u);
  EXPECT_EQ(d->report().controlErrorCount(), 1u);
}

TEST(Taint, ControlTrackingCanBeDisabled) {
  const char* src = R"(
extern void sendControl(float v);
extern float safeA(void);
extern float safeB(void);
int main(void)
{
  float output;
  initComm();
  if (noncoreCtrl->seq > 0)
    output = safeA();
  else
    output = safeB();
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  SafeFlowOptions options;
  options.taint.track_control_deps = false;
  const auto d = analyze(src, options);
  EXPECT_TRUE(d->report().errors.empty());
}

TEST(Taint, CallStringModeMatchesSummaries) {
  // Both interprocedural engines must agree on the running example: one
  // error dependency (through the checkSafety gate: a control dependence)
  // and the unmonitored feedback warning.
  analysis::SafeFlowReport summary_report;
  {
    const auto d = analyze(kRunningExample);
    summary_report = d->report();
  }
  SafeFlowOptions options;
  options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
  const auto d = analyze(kRunningExample, options);
  EXPECT_EQ(d->report().errors.size(), summary_report.errors.size());
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            summary_report.errors.front().kind);
  EXPECT_EQ(d->report().warnings.size(), summary_report.warnings.size());
  bool feedback_warning = false;
  for (const auto& w : d->report().warnings) {
    if (w.region_name == "feedback") feedback_warning = true;
  }
  EXPECT_TRUE(feedback_warning);
}

TEST(Taint, DirectDataFlowFromUnmonitoredRegionIsDataKind) {
  const char* src = R"(
extern void sendControl(float v);
int main(void)
{
  float output;
  initComm();
  output = feedback->position;  /* raw unmonitored read, direct data flow */
  /*** SafeFlow Annotation assert(safe(output)); ***/
  sendControl(output);
  return 0;
}
)";
  const auto d = analyze(src);
  ASSERT_EQ(d->report().errors.size(), 1u);
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kData);
}

// ---------------------------------------------------------------------------
// The kill(pid) defect class (paper §4: all three systems)
// ---------------------------------------------------------------------------

TEST(Taint, KillPidFromSharedMemory) {
  const char* src = R"(
extern int kill(int pid, int sig);
int main(void)
{
  int pid;
  initComm();
  pid = noncoreCtrl->seq;  /* non-core component can write our own pid! */
  /*** SafeFlow Annotation assert(safe(pid)); ***/
  kill(pid, 9);
  return 0;
}
)";
  const auto d = analyze(src);
  ASSERT_EQ(d->report().dataErrorCount(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().critical_value, "pid");
}

// ---------------------------------------------------------------------------
// Restrictions P1-P3
// ---------------------------------------------------------------------------

TEST(Restrictions, P1ShmdtOutsideMainEnd) {
  const char* src = R"(
extern int shmdt(void *addr);
void teardown(void) { shmdt(feedback); }
int main(void) { initComm(); teardown(); return 0; }
)";
  const auto d = analyze(src);
  bool p1 = false;
  for (const auto& v : d->report().restriction_violations) {
    if (v.rule == "P1") p1 = true;
  }
  EXPECT_TRUE(p1) << d->report().render(d->sources());
}

TEST(Restrictions, P1ShmdtAtMainEndAllowed) {
  const char* src = R"(
extern int shmdt(void *addr);
int main(void) { initComm(); shmdt(feedback); return 0; }
)";
  const auto d = analyze(src);
  for (const auto& v : d->report().restriction_violations) {
    EXPECT_NE(v.rule, "P1") << v.message;
  }
}

TEST(Restrictions, P2StoringShmPointerIntoMemory) {
  const char* src = R"(
SHMData *stash[4];
void alias_it(void) { stash[0] = noncoreCtrl; }
int main(void) { initComm(); alias_it(); return 0; }
)";
  const auto d = analyze(src);
  bool p2 = false;
  for (const auto& v : d->report().restriction_violations) {
    if (v.rule == "P2") p2 = true;
  }
  EXPECT_TRUE(p2) << d->report().render(d->sources());
}

TEST(Restrictions, P3IncompatibleCast) {
  const char* src = R"(
typedef struct Other { double a; double b; double c; } Other;
float peek(void) { Other *o = (Other *)noncoreCtrl; return (float)o->a; }
int main(void) { initComm(); peek(); return 0; }
)";
  const auto d = analyze(src);
  bool p3 = false;
  for (const auto& v : d->report().restriction_violations) {
    if (v.rule == "P3") p3 = true;
  }
  EXPECT_TRUE(p3) << d->report().render(d->sources());
}

TEST(Restrictions, P3CastToInteger) {
  const char* src = R"(
long addr_of_shm(void) { return (long)noncoreCtrl; }
int main(void) { initComm(); addr_of_shm(); return 0; }
)";
  const auto d = analyze(src);
  bool p3 = false;
  for (const auto& v : d->report().restriction_violations) {
    if (v.rule == "P3") p3 = true;
  }
  EXPECT_TRUE(p3);
}

TEST(Restrictions, CompatibleCastAllowed) {
  const char* src = R"(
void use(void *p);
void pass_as_void(void) { use(noncoreCtrl); }
int main(void) { initComm(); pass_as_void(); return 0; }
)";
  const auto d = analyze(src);
  for (const auto& v : d->report().restriction_violations) {
    EXPECT_NE(v.rule, "P3") << v.message;
  }
}

TEST(Restrictions, ShminitExemptFromP3) {
  // initComm itself performs (SHMData*)shmStart casts; no P3 expected.
  const auto d = analyze("int main(void) { initComm(); return 0; }");
  for (const auto& v : d->report().restriction_violations) {
    EXPECT_NE(v.function->name(), "initComm") << v.message;
  }
}

}  // namespace
