// Round-trip tests for the worker-protocol JSON serialization of
// SafeFlowReport: every finding category, escape-heavy strings, and the
// empty report must survive render -> parse -> merge with the text
// rendering byte-identical to the in-process one. This is the contract
// the incremental cache rests on — a cached entry replays through
// mergeWorkerOutcomes, so anything the JSON loses the cache loses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/report.h"
#include "safeflow/driver.h"
#include "safeflow/supervisor.h"
#include "support/json.h"
#include "support/source_manager.h"

namespace {

using namespace safeflow;

/// Renders `report` the way a worker does, parses it back, and merges
/// it as a single accepted shard — the exact path a cache hit takes.
MergedReport roundTrip(const analysis::SafeFlowReport& report,
                       const support::SourceManager& sm) {
  SafeFlowStats stats;
  stats.files = 1;
  const std::string doc_text =
      report.renderJson(sm, stats.renderJson(), /*worker_protocol=*/true);

  support::json::Value doc;
  std::string err;
  EXPECT_TRUE(support::json::parse(doc_text, &doc, &err)) << err;

  WorkerOutcome outcome;
  outcome.accepted = true;
  outcome.report = std::move(doc);
  outcome.exit_code = exitCodeFor(report.dataErrorCount(),
                                  !report.failed_files.empty(),
                                  !report.degraded_phases.empty());
  outcome.attempts = 1;
  std::vector<WorkerOutcome> outcomes;
  outcomes.push_back(std::move(outcome));
  return mergeWorkerOutcomes({"roundtrip.c"}, outcomes,
                             /*emit_stderr_headers=*/false);
}

analysis::SafeFlowReport fullReport() {
  analysis::SafeFlowReport report;

  analysis::UnsafeAccessWarning w1;
  w1.function = "control_loop";
  w1.region_name = "telemetry_buf";
  w1.offset_known = true;
  w1.offset_lo = 4;
  w1.offset_hi = 12;
  analysis::UnsafeAccessWarning w2;
  w2.function = "isr_handler";
  w2.region_name = "shared_flags";  // bytes unknown: no "bytes" member
  report.warnings = {w1, w2};

  analysis::CriticalDependencyError data_err;
  data_err.kind = analysis::CriticalDependencyError::Kind::kData;
  data_err.function = "apply_command";
  data_err.critical_value = "thrust_cmd";
  data_err.region_names = {"ground_link", "param_table"};
  data_err.source_loads.resize(2);  // invalid locations -> "<unknown>"
  analysis::CriticalDependencyError ctrl_err;
  ctrl_err.kind = analysis::CriticalDependencyError::Kind::kControl;
  ctrl_err.function = "mode_switch";
  ctrl_err.critical_value = "mode";
  ctrl_err.region_names = {"debug_port"};
  report.errors = {data_err, ctrl_err};

  analysis::RestrictionViolation v;
  v.rule = "R2";
  v.message = "function pointer escapes core";
  report.restriction_violations = {v};

  report.asserts_checked = 7;
  report.required_runtime_checks = {"InitCheck(region 'param_table')"};
  report.degraded_phases = {"taint"};
  report.failed_files = {"bad_input.c"};
  return report;
}

TEST(ReportRoundTrip, AllCategoriesSurviveTheWorkerProtocol) {
  support::SourceManager sm;
  analysis::SafeFlowReport report = fullReport();
  report.deduplicate(sm);  // the driver always dedups before rendering

  const MergedReport merged = roundTrip(report, sm);
  EXPECT_EQ(merged.warnings.size(), 2u);
  EXPECT_TRUE(merged.warnings[0].bytes_known);
  EXPECT_EQ(merged.warnings[0].lo, 4);
  EXPECT_EQ(merged.warnings[0].hi, 12);
  EXPECT_FALSE(merged.warnings[1].bytes_known);
  ASSERT_EQ(merged.errors.size(), 2u);
  EXPECT_TRUE(merged.errors[0].data);
  EXPECT_FALSE(merged.errors[1].data);
  EXPECT_EQ(merged.errors[0].regions,
            (std::vector<std::string>{"ground_link", "param_table"}));
  EXPECT_EQ(merged.errors[0].sources.size(), 2u);
  EXPECT_EQ(merged.restriction_violations.size(), 1u);
  EXPECT_EQ(merged.asserts_checked, 7u);
  EXPECT_EQ(merged.required_runtime_checks.size(), 1u);
  EXPECT_EQ(merged.degraded_phases,
            (std::vector<std::string>{"taint"}));
  EXPECT_TRUE(merged.frontend_errors);  // failed_files => frontend errors
  EXPECT_EQ(merged.dataErrorCount(), 1u);
  EXPECT_EQ(merged.controlErrorCount(), 1u);

  // The decisive check: the merged text rendering is byte-identical to
  // the in-process rendering of the same report.
  EXPECT_EQ(merged.render(), report.render(sm));
  // Exit ladder: 1 data error beats frontend errors and degradation.
  EXPECT_EQ(merged.exitCode(), 1);
}

TEST(ReportRoundTrip, EscapeHeavyStringsAreLossless) {
  support::SourceManager sm;
  analysis::SafeFlowReport report;

  analysis::UnsafeAccessWarning w;
  w.function = "fn\"with\\quotes";
  w.region_name = "tab\there\nnewline";
  report.warnings = {w};

  analysis::RestrictionViolation v;
  v.rule = "R1";
  v.message = std::string("ctrl:\x01\x1f end") + "\tand \"both\" \\ kinds";
  report.restriction_violations = {v};

  analysis::CriticalDependencyError e;
  e.function = "f";
  e.critical_value = "value\nwith\nnewlines";
  e.region_names = {"region\\back\\slash"};
  report.errors = {e};
  report.required_runtime_checks = {"check \"quoted\"\tname"};

  const MergedReport merged = roundTrip(report, sm);
  ASSERT_EQ(merged.warnings.size(), 1u);
  EXPECT_EQ(merged.warnings[0].function, "fn\"with\\quotes");
  EXPECT_EQ(merged.warnings[0].region, "tab\there\nnewline");
  ASSERT_EQ(merged.restriction_violations.size(), 1u);
  EXPECT_EQ(merged.restriction_violations[0].message,
            std::string("ctrl:\x01\x1f end") + "\tand \"both\" \\ kinds");
  ASSERT_EQ(merged.errors.size(), 1u);
  EXPECT_EQ(merged.errors[0].critical, "value\nwith\nnewlines");
  EXPECT_EQ(merged.errors[0].regions[0], "region\\back\\slash");
  ASSERT_EQ(merged.required_runtime_checks.size(), 1u);
  EXPECT_EQ(merged.required_runtime_checks[0], "check \"quoted\"\tname");
  EXPECT_EQ(merged.render(), report.render(sm));
}

TEST(ReportRoundTrip, EmptyReportStaysEmptyAndClean) {
  support::SourceManager sm;
  const analysis::SafeFlowReport report;
  const MergedReport merged = roundTrip(report, sm);
  EXPECT_TRUE(merged.warnings.empty());
  EXPECT_TRUE(merged.errors.empty());
  EXPECT_TRUE(merged.restriction_violations.empty());
  EXPECT_TRUE(merged.required_runtime_checks.empty());
  EXPECT_TRUE(merged.degraded_phases.empty());
  EXPECT_TRUE(merged.failed_files.empty());
  EXPECT_FALSE(merged.frontend_errors);
  EXPECT_EQ(merged.exitCode(), 0);
  EXPECT_EQ(merged.render(), report.render(sm));
}

TEST(ReportRoundTrip, LocationsResolveThroughTheSourceManager) {
  // With a live source manager the pre-rendered "file:line:col" strings
  // must match what the in-process path prints.
  support::SourceManager sm;
  const auto file = sm.addBuffer("unit.c", "int x;\nint y;\n");
  analysis::SafeFlowReport report;
  analysis::UnsafeAccessWarning w;
  w.location = {file, 2, 5};
  w.function = "f";
  w.region_name = "r";
  report.warnings = {w};

  const MergedReport merged = roundTrip(report, sm);
  ASSERT_EQ(merged.warnings.size(), 1u);
  EXPECT_EQ(merged.warnings[0].location, "unit.c:2:5");
  EXPECT_EQ(merged.render(), report.render(sm));
}

}  // namespace
