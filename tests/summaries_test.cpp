// Tests for function-level incremental analysis (DESIGN.md §16): the
// Merkle key map over the callgraph, the per-phase memo seam through a
// shared SummaryStore, edit-cone invalidation scenarios (leaf edit,
// shared callee, signature change, call-edge add/remove, comment-only
// touch), corrupt / version-mismatch purge-and-fallback, the
// --verify-summaries self-check, budget gating, and warm runs through
// the real supervisor sharing one on-disk store.
//
// Assertions are on resolvedFunctions()/memoizedFunctions() NAME SETS,
// not on raw hit/miss counters: a cold run already produces intra-run
// digest hits (a fixpoint revisits a function whose inputs did not
// change since its last local solve), so counters alone cannot
// distinguish "replayed from the store" from "converged quickly".
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "safeflow/driver.h"
#include "safeflow/summary_store.h"
#include "safeflow/supervisor.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf + "." +
                          std::to_string(::getpid());
  const std::string cmd = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << contents;
}

// A call chain main -> top -> mid -> leaf plus `keeper`, which only
// main calls. Editing leaf must invalidate exactly the chain above it
// (including main); keeper's summaries must replay from the store.
const char* kConeBase = R"(
int leaf(int x) { return x + 1; }
int mid(int x) { return leaf(x) + 2; }
int top(int x) { return mid(x) + 3; }
int keeper(int x) { return x * 2; }
int main(void) { return top(1) + keeper(2); }
)";

// The running-example shape from driver_test, so the memo seam is also
// exercised with shm regions, annotations, and a monitor function.
const char* kShmProgram = R"(
typedef struct C { float v; int mode; } C;
C *cell;
extern void *shmat(int id, void *a, int f);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    cell = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}
float mon(void)
/*** SafeFlow Annotation assume(core(cell, 0, sizeof(C))) ***/
{
    return cell->v;
}
int main(void) { init(); mon(); return 0; }
)";

struct RunResult {
  std::string render;  // report + diagnostics, the byte-identity probe
  std::set<std::string> resolved[kSummaryPhaseCount];
  std::set<std::string> memoized[kSummaryPhaseCount];
  SummaryStoreStats stats;
  bool verify_failed = false;
  std::string disabled_reason;
};

RunResult runWith(SummaryStore& store, const std::string& src,
                  bool verify = false, SafeFlowOptions opt = {}) {
  opt.summaries.enabled = true;
  opt.summaries.verify = verify;
  SafeFlowDriver driver(opt);
  driver.setSummaryStore(&store);
  EXPECT_TRUE(driver.addSource("prog.c", src));
  const analysis::SafeFlowReport& report = driver.analyze();
  RunResult r;
  r.render = report.render(driver.sources()) +
             driver.diagnostics().render(driver.sources());
  for (int p = 0; p < kSummaryPhaseCount; ++p) {
    r.resolved[p] = store.resolvedFunctions(static_cast<SummaryPhase>(p));
    r.memoized[p] = store.memoizedFunctions(static_cast<SummaryPhase>(p));
  }
  r.stats = store.stats();
  r.verify_failed = driver.summaryVerifyFailed();
  r.disabled_reason = driver.stats().summaries_disabled_reason;
  return r;
}

// Union of live-solved function names across all three phases.
std::set<std::string> resolvedAnywhere(const RunResult& r) {
  std::set<std::string> names;
  for (int p = 0; p < kSummaryPhaseCount; ++p) {
    names.insert(r.resolved[p].begin(), r.resolved[p].end());
  }
  return names;
}

TEST(SummaryStore, PhaseNamesAndStatsLine) {
  EXPECT_EQ(summaryPhaseName(SummaryPhase::kShm), "shm");
  EXPECT_EQ(summaryPhaseName(SummaryPhase::kRanges), "ranges");
  EXPECT_EQ(summaryPhaseName(SummaryPhase::kTaint), "taint");
  SummaryStore store("", kAnalyzerVersion);
  const std::string line = store.statsLine();
  EXPECT_NE(line.find("hits=0"), std::string::npos);
  EXPECT_NE(line.find("corrupt=0"), std::string::npos);
}

TEST(Summaries, WarmUneditedRunResolvesNothing) {
  SummaryStore store("", kAnalyzerVersion);  // memory-only is enough
  const RunResult cold = runWith(store, kShmProgram);
  EXPECT_FALSE(resolvedAnywhere(cold).empty());

  const RunResult warm = runWith(store, kShmProgram);
  EXPECT_TRUE(resolvedAnywhere(warm).empty())
      << "warm run re-solved: " << *resolvedAnywhere(warm).begin();
  EXPECT_EQ(warm.stats.misses, 0u);
  EXPECT_EQ(warm.stats.invalidated, 0u);
  EXPECT_GT(warm.stats.spliced, 0u);
  // Every function the cold run solved replays in the taint phase.
  EXPECT_EQ(warm.memoized[static_cast<int>(SummaryPhase::kTaint)],
            cold.resolved[static_cast<int>(SummaryPhase::kTaint)]);
  EXPECT_EQ(warm.render, cold.render);
}

TEST(Summaries, EditingLeafReSolvesExactlyItsCallerCone) {
  SummaryStore store("", kAnalyzerVersion);
  const RunResult cold = runWith(store, kConeBase);

  std::string edited = kConeBase;
  const auto pos = edited.find("x + 1");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 5, "x + 9");
  const RunResult warm = runWith(store, edited);

  const std::set<std::string> cone = {"leaf", "mid", "top", "main"};
  EXPECT_EQ(warm.resolved[static_cast<int>(SummaryPhase::kTaint)], cone);
  for (int p = 0; p < kSummaryPhaseCount; ++p) {
    for (const std::string& name : warm.resolved[p]) {
      EXPECT_TRUE(cone.count(name)) << summaryPhaseName(
                                           static_cast<SummaryPhase>(p))
                                    << " re-solved " << name;
    }
  }
  EXPECT_TRUE(warm.memoized[static_cast<int>(SummaryPhase::kTaint)].count(
      "keeper"));
  EXPECT_GT(warm.stats.invalidated, 0u);
}

TEST(Summaries, EditingSharedCalleeInvalidatesAllItsCallers) {
  // keeper becomes a shared callee of mid and main; editing it must
  // re-solve both call paths but leave leaf alone.
  const std::string base =
      "int keeper(int x) { return x * 2; }\n"
      "int leaf(int x) { return x + 1; }\n"
      "int mid(int x) { return leaf(x) + keeper(x); }\n"
      "int main(void) { return mid(1) + keeper(2); }\n";
  SummaryStore store("", kAnalyzerVersion);
  (void)runWith(store, base);

  std::string edited = base;
  const auto pos = edited.find("x * 2");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 5, "x * 3");
  const RunResult warm = runWith(store, edited);

  const std::set<std::string> cone = {"keeper", "mid", "main"};
  EXPECT_EQ(warm.resolved[static_cast<int>(SummaryPhase::kTaint)], cone);
  EXPECT_TRUE(warm.memoized[static_cast<int>(SummaryPhase::kTaint)].count(
      "leaf"));
}

TEST(Summaries, ChangingASignatureInvalidatesTheCone) {
  SummaryStore store("", kAnalyzerVersion);
  (void)runWith(store, kConeBase);

  // Only the return type changes; every caller's source text is
  // untouched, so this exercises the Merkle edge (callers' keys change
  // because leaf's key does), not a textual diff of the callers.
  std::string edited = kConeBase;
  const auto pos = edited.find("int leaf");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 8, "long leaf");
  const RunResult warm = runWith(store, edited);

  const auto resolved = resolvedAnywhere(warm);
  EXPECT_TRUE(resolved.count("leaf"));
  EXPECT_TRUE(resolved.count("mid"));
  EXPECT_FALSE(resolved.count("keeper"));
  EXPECT_TRUE(warm.memoized[static_cast<int>(SummaryPhase::kTaint)].count(
      "keeper"));
}

TEST(Summaries, AddingAndRemovingACallEdgeInvalidatesTheCallerCone) {
  SummaryStore store("", kAnalyzerVersion);
  (void)runWith(store, kConeBase);

  // mid gains a call edge to keeper: mid/top/main change keys; leaf and
  // keeper themselves are byte-identical and must replay.
  std::string added = kConeBase;
  const auto pos = added.find("leaf(x) + 2");
  ASSERT_NE(pos, std::string::npos);
  added.replace(pos, 11, "leaf(x) + keeper(2)");
  const RunResult warm_add = runWith(store, added);
  const auto& taint = warm_add.resolved[static_cast<int>(SummaryPhase::kTaint)];
  EXPECT_TRUE(taint.count("mid"));
  EXPECT_TRUE(taint.count("top"));
  EXPECT_TRUE(taint.count("main"));
  // keeper's own key is unchanged, but it gained a caller: the taint
  // memo digest covers caller-derived inputs (formal-arg facts), so a
  // live re-solve of keeper is correct, not an over-invalidation. leaf
  // has the same body, callees, and callers — it must replay.
  EXPECT_FALSE(resolvedAnywhere(warm_add).count("leaf"));
  EXPECT_TRUE(
      warm_add.memoized[static_cast<int>(SummaryPhase::kTaint)].count("leaf"));

  // Removing the edge restores the original keys: everything replays
  // from the entries the very first run stored.
  const RunResult warm_remove = runWith(store, kConeBase);
  EXPECT_TRUE(resolvedAnywhere(warm_remove).empty());
}

TEST(Summaries, CommentOnlyEditInvalidatesNothing) {
  SummaryStore store("", kAnalyzerVersion);
  const RunResult cold = runWith(store, kConeBase);

  // Comments and blank lines change the bytes of the TU (a TU-level
  // cache would miss) but not the canonical SSA, so every function key
  // is stable and the whole module replays.
  std::string touched = "/* release notes: nothing changed */\n\n";
  touched += kConeBase;
  touched += "\n/* trailing commentary */\n";
  const RunResult warm = runWith(store, touched);
  EXPECT_TRUE(resolvedAnywhere(warm).empty());
  EXPECT_EQ(warm.stats.invalidated, 0u);
  EXPECT_EQ(warm.render, cold.render);
}

TEST(Summaries, VerifyModeIsGreenOnColdWarmAndEditedRuns) {
  SummaryStore store("", kAnalyzerVersion);
  const RunResult cold = runWith(store, kShmProgram, /*verify=*/true);
  EXPECT_FALSE(cold.verify_failed);
  const RunResult warm = runWith(store, kShmProgram, /*verify=*/true);
  EXPECT_FALSE(warm.verify_failed);
  EXPECT_EQ(warm.render, cold.render);

  std::string edited = kShmProgram;
  const auto pos = edited.find("cell->v");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 7, "cell->v + 1.0f");
  const RunResult warm_edit = runWith(store, edited, /*verify=*/true);
  EXPECT_FALSE(warm_edit.verify_failed);
}

TEST(Summaries, CorruptDiskEntriesArePurgedAndFallBackCold) {
  const std::string dir = freshDir("sum_corrupt");
  std::string cold_render;
  {
    SummaryStore store(dir, kAnalyzerVersion);
    store.recoverDir();
    cold_render = runWith(store, kConeBase).render;
    EXPECT_GT(store.diskBytes(), 0u);  // flush() persisted the entries
  }
  // Truncate every entry mid-payload: the checksummed envelope catches
  // it on load. (DiskCache entries live directly under the store dir.)
  ASSERT_EQ(std::system(("for f in '" + dir +
                         "'/*; do truncate -s 7 \"$f\"; done")
                            .c_str()),
            0);
  {
    SummaryStore store(dir, kAnalyzerVersion);
    const RunResult warm = runWith(store, kConeBase);
    EXPECT_GT(warm.stats.corrupt, 0u);
    // Cold fallback: everything re-solves, the report is unaffected.
    EXPECT_FALSE(
        warm.resolved[static_cast<int>(SummaryPhase::kTaint)].empty());
    EXPECT_EQ(warm.render, cold_render);
  }
}

TEST(Summaries, AnalyzerVersionBumpInvalidatesPersistedEntries) {
  const std::string dir = freshDir("sum_version");
  std::string old_render;
  {
    // Entries written by a previous analyzer version...
    SummaryStore store(dir, "0.7.99-previous");
    store.recoverDir();
    old_render = runWith(store, kConeBase).render;
  }
  {
    // ...are purged (version-echo mismatch), never replayed.
    SummaryStore store(dir, kAnalyzerVersion);
    store.recoverDir();
    const RunResult warm = runWith(store, kConeBase);
    EXPECT_GT(warm.stats.corrupt, 0u);
    EXPECT_FALSE(
        warm.resolved[static_cast<int>(SummaryPhase::kTaint)].empty());
    EXPECT_EQ(warm.render, old_render);
  }
}

TEST(Summaries, BudgetLimitsDisableTheStoreWithAReason) {
  // A budget-limited run may truncate fixpoints; storing or splicing
  // its post-states could replay degraded results into healthy runs.
  SummaryStore store("", kAnalyzerVersion);
  SafeFlowOptions opt;
  opt.budget.phase_steps = 1000000;
  const RunResult run = runWith(store, kConeBase, /*verify=*/false, opt);
  EXPECT_EQ(run.disabled_reason, "budget");
  EXPECT_TRUE(resolvedAnywhere(run).empty());  // store never bound
  EXPECT_EQ(store.residentEntries(), 0u);
}

// --- End-to-end through the real supervisor -------------------------

TEST(SupervisedSummaries, ShardsShareOneStoreAndStayByteIdentical) {
  const std::string src_dir = freshDir("sup_sum_src");
  ASSERT_EQ(std::system(("mkdir -p '" + src_dir + "'").c_str()), 0);
  const std::string one = src_dir + "/one.c";
  const std::string two = src_dir + "/two.c";
  writeFile(one, "int helper(int x) { return x + 1; }\n"
                 "int first_unit(void) { return helper(1); }\n");
  writeFile(two, "int second_unit(void) { return 2; }\n");

  const std::string sum_dir = freshDir("sup_sum_store");
  auto runSupervised = [&](int jobs) {
    SupervisorOptions opts;
    opts.worker_exe = SAFEFLOW_EXE;
    opts.jobs = jobs;
    opts.worker_timeout_seconds = 60.0;
    opts.worker_args = {"--summaries-dir", sum_dir};
    support::MetricsRegistry registry;
    Supervisor sup(opts, &registry);
    const MergedReport merged = sup.run({one, two});
    EXPECT_EQ(merged.exitCode(), 0);
    return merged.render();
  };

  const std::string cold = runSupervised(2);
  // The workers persisted their summaries into the shared dir.
  SummaryStore probe(sum_dir, kAnalyzerVersion);
  EXPECT_GT(probe.diskBytes(), 0u);

  // Warm, across job counts: byte-identical to the cold merge.
  EXPECT_EQ(runSupervised(1), cold);
  EXPECT_EQ(runSupervised(4), cold);

  // Editing one TU leaves the merged report equal to a no-summaries
  // control run over the edited sources.
  writeFile(one, "int helper(int x) { return x + 7; }\n"
                 "int first_unit(void) { return helper(1); }\n");
  const std::string warm_after_edit = runSupervised(2);
  SupervisorOptions control;
  control.worker_exe = SAFEFLOW_EXE;
  control.jobs = 2;
  control.worker_timeout_seconds = 60.0;
  support::MetricsRegistry registry;
  Supervisor sup(control, &registry);
  EXPECT_EQ(warm_after_edit, sup.run({one, two}).render());
}

TEST(SupervisedSummaries, VerifyModeStaysGreenOnTheCorpus) {
  const std::string sum_dir = freshDir("sup_sum_verify");
  auto runSupervised = [&]() {
    SupervisorOptions opts;
    opts.worker_exe = SAFEFLOW_EXE;
    opts.jobs = 4;
    opts.worker_timeout_seconds = 120.0;
    opts.worker_args = {"--summaries-dir", sum_dir, "--verify-summaries"};
    support::MetricsRegistry registry;
    Supervisor sup(opts, &registry);
    return sup.run({kCorpus + "/ip/core/comm.c",
                    kCorpus + "/ip/core/decision.c",
                    kCorpus + "/ip/core/safety.c"});
  };
  const MergedReport cold = runSupervised();
  // A verification failure exits the worker with code 2, which the
  // merge surfaces as a non-zero exit.
  EXPECT_EQ(cold.exitCode(), 0);
  const MergedReport warm = runSupervised();
  EXPECT_EQ(warm.exitCode(), 0);
  EXPECT_EQ(warm.render(), cold.render());
}

}  // namespace
