// Validates that the reconstructed IP corpus is genuine, working C: it
// must compile under the system C compiler together with the simulation
// shim (corpus/harness/ip_shim.c) and run to a clean envelope exit, with
// its power-on self test passing. Skipped when no `cc` is available.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

std::string corpusDir() { return SAFEFLOW_CORPUS_DIR; }

bool haveCompiler() {
  return std::system("cc --version > /dev/null 2>&1") == 0;
}

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult runCommand(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    r.output += buf.data();
  }
  const int status = pclose(pipe);
  r.exit_code = status;
  return r;
}

TEST(CorpusCompile, IpCoreCompilesAndRunsUnderRealCc) {
  if (!haveCompiler()) GTEST_SKIP() << "no system C compiler";

  const std::string bin = ::testing::TempDir() + "/sf_ip_corpus";
  const std::string dir = corpusDir() + "/ip/core";
  const std::string compile =
      "cc -O1 -o " + bin + " " + dir + "/comm.c " + dir + "/safety.c " +
      dir + "/filter.c " + dir + "/telemetry.c " + dir + "/selftest.c " +
      dir + "/decision.c " + dir + "/main.c " + corpusDir() +
      "/harness/ip_shim.c -lm";
  const RunResult cr = runCommand(compile);
  ASSERT_EQ(cr.exit_code, 0) << cr.output;

  const RunResult rr = runCommand("timeout 20 " + bin);
  EXPECT_EQ(rr.exit_code, 0) << rr.output;
  // The self test must pass and the run must end with the envelope exit.
  EXPECT_NE(rr.output.find("[selftest] all checks passed"),
            std::string::npos)
      << rr.output;
  EXPECT_NE(rr.output.find("left the envelope"), std::string::npos)
      << rr.output;
}

TEST(CorpusCompile, RunningExampleCompilesUnderRealCc) {
  if (!haveCompiler()) GTEST_SKIP() << "no system C compiler";
  // Syntax-only: the running example references externals the shim does
  // not provide, so compile without linking.
  const std::string obj = ::testing::TempDir() + "/sf_running_example.o";
  const RunResult cr = runCommand("cc -c -o " + obj + " " + corpusDir() +
                                  "/running_example/core.c");
  EXPECT_EQ(cr.exit_code, 0) << cr.output;
}

TEST(CorpusCompile, GenericSimplexRiggedFeedbackDefectIsLiveInC) {
  // The seeded Generic Simplex defect, exploited in the corpus C itself:
  // the gs_shim's GS_TAMPER build rigs the feedback region in the window
  // after the core releases its lock; the core's safety law (which reads
  // the plant state back from shared memory — the defect SafeFlow flags)
  // then drives the real plant out of range. The benign build tracks the
  // setpoint and stays in range.
  if (!haveCompiler()) GTEST_SKIP() << "no system C compiler";

  const std::string dir = corpusDir() + "/generic_simplex/core";
  const std::string sources =
      dir + "/comm.c " + dir + "/config.c " + dir + "/safety.c " + dir +
      "/profile.c " + dir + "/watchdog.c " + dir + "/estimator.c " + dir +
      "/monitors.c " + dir + "/main.c " + corpusDir() +
      "/harness/gs_shim.c -lm";

  const std::string benign = ::testing::TempDir() + "/sf_gs_benign";
  const std::string tampered = ::testing::TempDir() + "/sf_gs_tampered";
  ASSERT_EQ(runCommand("cc -O1 -o " + benign + " " + sources).exit_code, 0);
  ASSERT_EQ(runCommand("cc -O1 -DGS_TAMPER -o " + tampered + " " + sources)
                .exit_code,
            0);

  const RunResult b = runCommand("timeout 20 " + benign);
  const RunResult t = runCommand("timeout 20 " + tampered);
  EXPECT_NE(b.output.find("escaped=0"), std::string::npos) << b.output;
  EXPECT_NE(t.output.find("escaped=1"), std::string::npos) << t.output;
}

TEST(CorpusCompile, GenericSimplexCoreIsValidC) {
  if (!haveCompiler()) GTEST_SKIP() << "no system C compiler";
  const std::string dir = corpusDir() + "/generic_simplex/core";
  for (const char* f :
       {"/comm.c", "/config.c", "/safety.c", "/profile.c", "/watchdog.c",
        "/estimator.c", "/monitors.c", "/main.c"}) {
    const std::string obj = ::testing::TempDir() + "/sf_gs.o";
    const RunResult cr =
        runCommand("cc -c -o " + obj + " " + dir + f);
    EXPECT_EQ(cr.exit_code, 0) << f << ": " << cr.output;
  }
}

TEST(CorpusCompile, DoubleIpCoreIsValidC) {
  if (!haveCompiler()) GTEST_SKIP() << "no system C compiler";
  const std::string dir = corpusDir() + "/double_ip/core";
  for (const char* f :
       {"/comm.c", "/safety.c", "/estimator.c", "/trajectory.c",
        "/decision.c", "/modes.c", "/main.c"}) {
    const std::string obj = ::testing::TempDir() + "/sf_dip.o";
    const RunResult cr =
        runCommand("cc -c -o " + obj + " " + dir + f);
    EXPECT_EQ(cr.exit_code, 0) << f << ": " << cr.output;
  }
}

}  // namespace
