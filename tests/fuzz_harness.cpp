// Deterministic fuzz / fault-injection harness for the SafeFlow pipeline.
//
// Mutates real corpus sources with a seeded LCG (no wall-clock randomness
// anywhere, so a failing iteration reproduces from its seed alone) at two
// granularities:
//
//   byte level   flip / insert / delete / duplicate / truncate raw bytes;
//   token level  splice punctuation, keywords, and annotation fragments at
//                whitespace boundaries — the mutations that exercise the
//                parser's panic-mode recovery rather than just the lexer.
//
// Every mutant runs through the full driver (front end through taint
// analysis) under a step budget, and the harness asserts the three
// robustness guarantees of DESIGN.md: no crash, no hang (the budget bounds
// every fixpoint), and well-formed diagnostics.
//
// A second fuzzer in this file aims the same LCG at the safeflowd NDJSON
// protocol: random bytes, structurally-plausible-but-wrong documents,
// oversized lines, and mid-request disconnects against a live daemon,
// asserting it answers structurally (or drops the dead connection) and
// never dies.
//
// Tunables (environment, read once):
//   SAFEFLOW_FUZZ_ITERS  iterations (default 200; CI smoke runs 1000)
//   SAFEFLOW_FUZZ_SEED   LCG seed (default 20060625)
//   SAFEFLOW_FUZZ_DUMP   path; each mutant is written there before the
//                        pipeline runs, so after a crash the file holds
//                        the faulting input (triage aid)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <unistd.h>

#include "daemon_test_util.h"
#include "safeflow/driver.h"
#include "support/json.h"

namespace {

using namespace safeflow;

// Classic 64-bit LCG (Knuth MMIX constants); top bits are well mixed.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 16;
  }
  /// Uniform-ish value in [0, n).
  std::size_t below(std::size_t n) {
    return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
  }

 private:
  std::uint64_t state_;
};

std::uint64_t envU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Corpus sources used as mutation seeds: the running example plus the
/// larger interlocking-plant files (annotations, shm regions, loops).
std::vector<std::string> seedSources() {
  const std::string root = std::string(SAFEFLOW_CORPUS_DIR) + "/";
  std::vector<std::string> out;
  for (const char* rel : {
           "running_example/core.c",
           "ip/core/decision.c",
           "ip/core/filter.c",
           "double_ip/core/trajectory.c",
       }) {
    std::string text = readFile(root + rel);
    if (!text.empty()) out.push_back(std::move(text));
  }
  // The harness must work even if the corpus moves; fall back to a small
  // builtin program rather than silently fuzzing nothing.
  if (out.empty()) {
    out.push_back(
        "typedef struct S { int a; int b; } S;\n"
        "S* st;\n"
        "extern void* shmat(int shmid, void* addr, int flags);\n"
        "/*** SafeFlow Annotation shminit ***/\n"
        "void init_comm(void) {\n"
        "  st = (S*)shmat(0, 0, 0);\n"
        "  /*** SafeFlow Annotation assume(shmvar(st, sizeof(S))) ***/\n"
        "  /*** SafeFlow Annotation assume(noncore(st)) ***/\n"
        "}\n"
        "int get(S* p)\n"
        "/*** SafeFlow Annotation assume(core(p, 0, sizeof(S))) ***/\n"
        "{ return p->a; }\n"
        "int main(void) { int v; init_comm(); v = get(st);\n"
        "  /*** SafeFlow Annotation assert(safe(v)); ***/ return v; }\n");
  }
  return out;
}

// Token-level splice fragments: the punctuation and keywords most likely
// to unbalance the parser, plus annotation openers/closers to stress the
// annotation sub-parser.
constexpr const char* kFragments[] = {
    ";",      "}",       "{",      "(",       ")",          "[",
    "]",      ",",       "*",      "=",       "==",         "->",
    "if",     "else",    "while",  "for",     "return",     "struct",
    "int",    "char",    "static", "typedef", "enum",       "switch",
    "case",   "default", "break",  "/***",    "***/",       "/*",
    "/*** SafeFlow Annotation assert(safe(x)); ***/",
    "/*** SafeFlow Annotation assume(shmvar(",
    "#define X", "#include \"missing.h\"",    "0x7fffffff", "'\\0'",
};

void mutateBytes(std::string& text, Lcg& rng) {
  if (text.empty()) {
    text.push_back(static_cast<char>('!' + rng.below(90)));
    return;
  }
  switch (rng.below(5)) {
    case 0:  // flip one byte to a printable character
      text[rng.below(text.size())] =
          static_cast<char>(' ' + rng.below(95));
      break;
    case 1:  // insert a random byte
      text.insert(text.begin() + static_cast<std::ptrdiff_t>(
                                     rng.below(text.size() + 1)),
                  static_cast<char>(' ' + rng.below(95)));
      break;
    case 2:  // delete one byte
      text.erase(text.begin() +
                 static_cast<std::ptrdiff_t>(rng.below(text.size())));
      break;
    case 3: {  // duplicate a short span
      const std::size_t at = rng.below(text.size());
      const std::size_t len =
          std::min(text.size() - at, 1 + rng.below(16));
      text.insert(at, text.substr(at, len));
      break;
    }
    default:  // truncate the tail
      text.resize(rng.below(text.size() + 1));
      break;
  }
}

void mutateTokens(std::string& text, Lcg& rng) {
  const std::size_t n_frag = sizeof(kFragments) / sizeof(kFragments[0]);
  switch (rng.below(3)) {
    case 0: {  // splice a fragment at a whitespace boundary
      std::size_t at = rng.below(text.size() + 1);
      while (at < text.size() && text[at] != ' ' && text[at] != '\n') ++at;
      text.insert(at, std::string(" ") +
                          kFragments[rng.below(n_frag)] + " ");
      break;
    }
    case 1: {  // delete from a random position to the end of the line
      if (text.empty()) break;
      const std::size_t at = rng.below(text.size());
      const std::size_t eol = text.find('\n', at);
      text.erase(at, eol == std::string::npos ? std::string::npos
                                              : eol - at);
      break;
    }
    default: {  // swap two half-line chunks (reorders declarations)
      if (text.size() < 8) break;
      const std::size_t a = rng.below(text.size() / 2);
      const std::size_t b =
          text.size() / 2 + rng.below(text.size() / 2 - 4);
      const std::size_t len = 1 + rng.below(40);
      const std::string chunk_a = text.substr(a, len);
      const std::string chunk_b = text.substr(b, len);
      text.replace(b, chunk_b.size(), chunk_a);
      text.replace(a, chunk_a.size(), chunk_b);
      break;
    }
  }
}

/// One fuzz iteration: mutate, analyze under budget, check invariants.
void runOne(const std::vector<std::string>& seeds, Lcg& rng,
            std::uint64_t iter) {
  std::string text = seeds[rng.below(seeds.size())];
  const std::size_t n_mut = 1 + rng.below(4);
  for (std::size_t m = 0; m < n_mut; ++m) {
    if (rng.below(2) == 0) {
      mutateBytes(text, rng);
    } else {
      mutateTokens(text, rng);
    }
  }

  if (const char* dump = std::getenv("SAFEFLOW_FUZZ_DUMP");
      dump != nullptr && *dump != '\0') {
    std::ofstream out(dump, std::ios::binary | std::ios::trunc);
    out << "/* fuzz iteration " << iter << " */\n" << text;
  }

  SafeFlowOptions options;
  // The step budget bounds every fixpoint, so a mutant that tickles a
  // quadratic corner degrades instead of hanging the harness. Deliberately
  // no time budget: wall-clock would make iterations nondeterministic.
  options.budget.phase_steps = 200000;
  SafeFlowDriver driver(options);
  driver.addSource("fuzz_" + std::to_string(iter) + ".c", std::move(text));
  const auto& report = driver.analyze();

  // Diagnostics must be well-formed: a category and a message, never an
  // empty shell (an empty message usually means a half-constructed
  // diagnostic escaped an error path).
  for (const auto& d : driver.diagnostics().diagnostics()) {
    EXPECT_FALSE(d.category.empty()) << "iteration " << iter;
    EXPECT_FALSE(d.message.empty()) << "iteration " << iter;
  }
  // The report must be renderable whatever the mutant did.
  const std::string rendered = report.render(driver.sources());
  EXPECT_FALSE(rendered.empty()) << "iteration " << iter;
  (void)report.renderJson(driver.sources(), driver.stats().renderJson());
}

TEST(FuzzHarness, MutatedCorpusSourcesNeverCrashOrHang) {
  const std::uint64_t iters = envU64("SAFEFLOW_FUZZ_ITERS", 200);
  const std::uint64_t seed = envU64("SAFEFLOW_FUZZ_SEED", 20060625);
  const std::vector<std::string> seeds = seedSources();
  ASSERT_FALSE(seeds.empty());

  Lcg rng(seed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    SCOPED_TRACE("fuzz iteration " + std::to_string(i) + " (seed " +
                 std::to_string(seed) + ")");
    runOne(seeds, rng, i);
  }
}

/// One random protocol line: either pure noise or a mutation of a valid
/// request (member dropped / retyped / renamed, value replaced), which
/// probes much deeper into the daemon's validation ladder than noise.
std::string fuzzRequestLine(Lcg& rng) {
  static const char* const kTemplates[] = {
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [\"a.c\"], "
      "\"flags\": []}",
      "{\"safeflowd\": 1, \"op\": \"status\"}",
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [\"a.c\"], "
      "\"flags\": [\"-I\", \"dir\"], \"json\": true, \"deadline_ms\": 50}",
  };
  static const char* const kSplices[] = {
      "\"op\"",       "\"files\"",  "\"flags\"",     "\"safeflowd\"",
      "null",         "-1",         "1e999",         "[[[[",
      "\"analyze\"",  "{}",         "[]",            "\"\\u0000\"",
      "999999999999", "true",       ", \"op\": 3",   "\\",
  };
  std::string line = kTemplates[rng.below(3)];
  const std::size_t mutations = 1 + rng.below(4);
  for (std::size_t m = 0; m < mutations; ++m) {
    switch (rng.below(4)) {
      case 0:  // overwrite a byte
        if (!line.empty()) {
          line[rng.below(line.size())] =
              static_cast<char>(' ' + rng.below(95));
        }
        break;
      case 1:  // splice a JSON-ish fragment
        line.insert(rng.below(line.size() + 1),
                    kSplices[rng.below(sizeof(kSplices) /
                                       sizeof(kSplices[0]))]);
        break;
      case 2:  // truncate
        line.resize(rng.below(line.size() + 1));
        break;
      default:  // duplicate the whole line (two documents on one line)
        line += line;
        break;
    }
  }
  return line;
}

TEST(FuzzHarness, DaemonProtocolSurvivesRandomAndHostileRequests) {
  const std::uint64_t iters =
      std::min<std::uint64_t>(envU64("SAFEFLOW_FUZZ_ITERS", 200), 400);
  const std::uint64_t seed = envU64("SAFEFLOW_FUZZ_SEED", 20060625);

  const std::string socket = ::testing::TempDir() + "sfd_fuzz_" +
                             std::to_string(::getpid()) + ".sock";
  const pid_t pid = daemon_test::spawnDaemon(
      {"--socket", socket, "--no-cache", "--log-level", "error"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(daemon_test::waitForSocket(socket));

  Lcg rng(seed ^ 0xdaeb0f);
  for (std::uint64_t i = 0; i < iters; ++i) {
    SCOPED_TRACE("protocol fuzz iteration " + std::to_string(i));
    std::string line = fuzzRequestLine(rng);
    const std::size_t shape = rng.below(4);
    if (shape == 3) {
      // Mid-request disconnect: send without the newline and hang up.
      const int fd = safeflow::support::connectUnixSocket(socket);
      ASSERT_GE(fd, 0) << "daemon stopped accepting";
      safeflow::support::writeAll(fd, line);
      ::close(fd);
      continue;
    }
    if (shape == 2) line += std::string(1 + rng.below(4096), 'x');
    line += '\n';
    safeflow::support::LineIo io = safeflow::support::LineIo::kError;
    const std::string response =
        daemon_test::rawRequest(socket, line, 30.0, &io);
    // Every answered line must be a structured protocol response; a
    // dropped connection (daemon treated us as a dead peer) is also
    // acceptable — a dead daemon is not, and shows up as connect
    // failures on the next iteration.
    if (io == safeflow::support::LineIo::kOk) {
      support::json::Value doc;
      std::string error;
      ASSERT_TRUE(support::json::parse(response, &doc, &error))
          << "unstructured response: " << response;
      EXPECT_EQ(doc.memberUint("safeflowd"), 1u);
    }
  }

  // The daemon survived the whole session and still serves cleanly.
  const std::string status = daemon_test::rawRequest(
      socket, "{\"safeflowd\": 1, \"op\": \"status\"}\n", 15.0);
  support::json::Value doc;
  std::string error;
  ASSERT_TRUE(support::json::parse(status, &doc, &error));
  EXPECT_EQ(doc.memberString("status"), "ok");

  ::kill(pid, SIGTERM);
  const int exit_status = daemon_test::waitForExit(pid);
  ASSERT_NE(exit_status, -1);
  EXPECT_TRUE(WIFEXITED(exit_status));
  EXPECT_EQ(WEXITSTATUS(exit_status), 0);
}

// The same engine over pathological hand-written shapes — deep nesting
// and long operator chains — which mutation rarely produces but recursion
// bugs love.
TEST(FuzzHarness, DeeplyNestedInputsRespectRecoveryLimits) {
  for (const std::size_t depth : {64u, 512u}) {
    std::string open, close;
    for (std::size_t i = 0; i < depth; ++i) {
      open += "{ if (1) ";
      close += "}";
    }
    SafeFlowOptions options;
    options.budget.phase_steps = 200000;
    SafeFlowDriver driver(options);
    driver.addSource("nest.c",
                     "int main(void) " + open + "{ return 0; }" + close);
    driver.analyze();
    SUCCEED();
  }
}

}  // namespace
