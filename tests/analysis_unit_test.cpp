// Unit tests for the analysis internals: the shared-memory region table,
// phase-1 pointer propagation (region sets and byte-offset intervals),
// the alias analysis, control dependence, and report rendering (including
// the value-flow DOT graph).
#include <gtest/gtest.h>

#include <memory>

#include "analysis/alias.h"
#include "analysis/control_dep.h"
#include "analysis/shm_propagation.h"
#include "analysis/shm_regions.h"
#include "cfront/frontend.h"
#include "ir/callgraph.h"
#include "ir/lowering.h"
#include "ir/ssa.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;

struct Pipeline {
  std::unique_ptr<cfront::Frontend> fe;
  std::unique_ptr<ir::Module> module;
  std::unique_ptr<ir::CallGraph> callgraph;
  analysis::ShmRegionTable regions;
  std::unique_ptr<analysis::ShmPointerAnalysis> shm;
};

Pipeline run(const std::string& src) {
  Pipeline p;
  p.fe = std::make_unique<cfront::Frontend>();
  EXPECT_TRUE(p.fe->parseBuffer("unit.c", src))
      << p.fe->diagnostics().render(p.fe->sources());
  p.module = std::make_unique<ir::Module>(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), *p.module, p.fe->diagnostics());
  EXPECT_TRUE(lowering.run());
  ir::promoteModuleToSsa(*p.module);
  p.regions = analysis::ShmRegionTable::build(*p.module,
                                              p.fe->diagnostics());
  p.callgraph = std::make_unique<ir::CallGraph>(*p.module);
  p.shm = std::make_unique<analysis::ShmPointerAnalysis>(
      *p.module, p.regions, *p.callgraph);
  p.shm->run();
  return p;
}

const char* kTwoRegions = R"(
typedef struct Pack { float a; float b; int c; } Pack;
Pack *alpha;
Pack *beta;
extern void *shmat(int id, void *a, int f);
extern int shmget(int k, int s, int f);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    char *cur;
    cur = (char *) shmat(shmget(1, 2 * sizeof(Pack), 0), 0, 0);
    alpha = (Pack *) cur;
    cur = cur + sizeof(Pack);
    beta = (Pack *) cur;
    /*** SafeFlow Annotation assume(shmvar(alpha, sizeof(Pack))) ***/
    /*** SafeFlow Annotation assume(shmvar(beta, sizeof(Pack))) ***/
    /*** SafeFlow Annotation assume(noncore(beta)) ***/
}
)";

// ---------------------------------------------------------------------------
// ShmRegionTable
// ---------------------------------------------------------------------------

TEST(ShmRegionTable, RegionsAndClassification) {
  auto p = run(std::string(kTwoRegions) +
               "int main(void) { init(); return 0; }");
  ASSERT_EQ(p.regions.regions().size(), 2u);
  const auto* alpha = p.regions.byName("alpha");
  const auto* beta = p.regions.byName("beta");
  ASSERT_NE(alpha, nullptr);
  ASSERT_NE(beta, nullptr);
  EXPECT_FALSE(alpha->noncore);  // only beta was declared non-core
  EXPECT_TRUE(beta->noncore);
  EXPECT_EQ(alpha->size, 12);
  EXPECT_EQ(alpha->elementCount(), 1);
  EXPECT_EQ(p.regions.noncoreCount(), 1u);
}

TEST(ShmRegionTable, InitFunctionsIdentified) {
  auto p = run(std::string(kTwoRegions) +
               "int main(void) { init(); return 0; }");
  ASSERT_EQ(p.regions.initFunctions().size(), 1u);
  EXPECT_EQ(p.regions.initFunctions()[0]->name(), "init");
  EXPECT_TRUE(
      p.regions.isInitFunction(p.module->findFunction("init")));
  EXPECT_FALSE(
      p.regions.isInitFunction(p.module->findFunction("main")));
}

TEST(ShmRegionTable, DuplicateShmvarReported) {
  cfront::Frontend fe;
  fe.parseBuffer("dup.c", R"(
typedef struct C { int x; } C;
C *p;
extern void *shmat(int id, void *a, int f);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    p = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(p, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(shmvar(p, sizeof(C))) ***/
}
)");
  ir::Module m(fe.types());
  ir::Lowering lowering(fe.unit(), m, fe.diagnostics());
  lowering.run();
  const std::size_t before = fe.diagnostics().errorCount();
  analysis::ShmRegionTable::build(m, fe.diagnostics());
  EXPECT_GT(fe.diagnostics().errorCount(), before);
}

// ---------------------------------------------------------------------------
// Phase 1: pointer propagation
// ---------------------------------------------------------------------------

TEST(ShmPropagation, LoadOfRegionGlobalIsSeed) {
  auto p = run(std::string(kTwoRegions) + R"(
float get(void) { return beta->a; }
int main(void) { init(); get(); return 0; }
)");
  // Find the load of @beta inside get and check its fact.
  const ir::Function* get = p.module->findFunction("get");
  const analysis::ShmPtrInfo* found = nullptr;
  for (const auto& bb : get->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kLoad &&
          inst->type()->isPointer()) {
        found = p.shm->info(inst.get());
      }
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->regions.size(), 1u);
  EXPECT_TRUE(found->offset_known);
  EXPECT_EQ(found->lo, 0);
  EXPECT_EQ(found->hi, 0);
}

TEST(ShmPropagation, FieldAddrShiftsOffset) {
  auto p = run(std::string(kTwoRegions) + R"(
float get(void) { return beta->b; }
int main(void) { init(); get(); return 0; }
)");
  const ir::Function* get = p.module->findFunction("get");
  const analysis::ShmPtrInfo* field_fact = nullptr;
  for (const auto& bb : get->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kFieldAddr) {
        field_fact = p.shm->info(inst.get());
      }
    }
  }
  ASSERT_NE(field_fact, nullptr);
  EXPECT_EQ(field_fact->lo, 4);  // field b at offset 4
  EXPECT_EQ(field_fact->hi, 4);
}

TEST(ShmPropagation, ArgumentsReceiveFactsFromCallers) {
  auto p = run(std::string(kTwoRegions) + R"(
float deref(Pack *q) { return q->a; }
int main(void) { init(); deref(beta); return 0; }
)");
  const ir::Function* deref = p.module->findFunction("deref");
  ASSERT_EQ(deref->args().size(), 1u);
  const auto* fact = p.shm->info(deref->args()[0].get());
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->regions.size(), 1u);
}

TEST(ShmPropagation, ReturnValuesPropagateToCallResults) {
  auto p = run(std::string(kTwoRegions) + R"(
Pack *pick(void) { return beta; }
float get(void) { return pick()->a; }
int main(void) { init(); get(); return 0; }
)");
  const ir::Function* get = p.module->findFunction("get");
  bool call_has_fact = false;
  for (const auto& bb : get->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kCall &&
          p.shm->info(inst.get()) != nullptr) {
        call_has_fact = true;
      }
    }
  }
  EXPECT_TRUE(call_has_fact);
}

TEST(ShmPropagation, UnknownIndexWidensToWholeRegion) {
  auto p = run(std::string(kTwoRegions) + R"(
float get(int i) { return (&beta->a)[i]; }
int main(void) { init(); get(1); return 0; }
)");
  const ir::Function* get = p.module->findFunction("get");
  const analysis::ShmPtrInfo* widened = nullptr;
  for (const auto& bb : get->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kIndexAddr) {
        widened = p.shm->info(inst.get());
      }
    }
  }
  ASSERT_NE(widened, nullptr);
  EXPECT_FALSE(widened->offset_known);
}

TEST(ShmPropagation, NonShmPointersHaveNoFacts) {
  auto p = run(std::string(kTwoRegions) + R"(
int local(void) { int x; int *q; q = &x; return *q; }
int main(void) { init(); local(); return 0; }
)");
  const ir::Function* local = p.module->findFunction("local");
  for (const auto& bb : local->blocks()) {
    for (const auto& inst : bb->instructions()) {
      EXPECT_EQ(p.shm->info(inst.get()), nullptr);
    }
  }
}

// ---------------------------------------------------------------------------
// Alias analysis
// ---------------------------------------------------------------------------

TEST(Alias, DistinctAllocasDistinctObjects) {
  auto p = run(R"(
void touch(int *a, int *b) { *a = 1; *b = 2; }
int main(void) { int x; int y; touch(&x, &y); return x + y; }
)");
  analysis::AliasAnalysis alias(*p.module, p.regions, *p.callgraph);
  alias.run();
  const ir::Function* touch = p.module->findFunction("touch");
  const auto& pa = alias.pointsTo(touch->args()[0].get());
  const auto& pb = alias.pointsTo(touch->args()[1].get());
  ASSERT_EQ(pa.size(), 1u);
  ASSERT_EQ(pb.size(), 1u);
  EXPECT_NE(*pa.begin(), *pb.begin());
}

TEST(Alias, FieldSensitivityDistinguishesFields) {
  auto p = run(R"(
struct Two { int a; int b; };
int main(void)
{
    struct Two t;
    int *pa;
    int *pb;
    pa = &t.a;
    pb = &t.b;
    *pa = 1;
    *pb = 2;
    return *pa;
}
)");
  analysis::AliasAnalysis alias(*p.module, p.regions, *p.callgraph,
                                analysis::AliasOptions{true});
  alias.run();
  // Locate the two FieldAddr instructions.
  const ir::Function* main_fn = p.module->findFunction("main");
  std::vector<const ir::Instruction*> geps;
  for (const auto& bb : main_fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kFieldAddr) {
        geps.push_back(inst.get());
      }
    }
  }
  ASSERT_GE(geps.size(), 2u);
  EXPECT_NE(*alias.pointsTo(geps[0]).begin(),
            *alias.pointsTo(geps[1]).begin());

  analysis::AliasAnalysis insensitive(*p.module, p.regions, *p.callgraph,
                                      analysis::AliasOptions{false});
  insensitive.run();
  EXPECT_EQ(*insensitive.pointsTo(geps[0]).begin(),
            *insensitive.pointsTo(geps[1]).begin());
}

TEST(Alias, ExternalPointerReturnsUnknown) {
  auto p = run(R"(
extern int *mystery(void);
int main(void) { return *mystery(); }
)");
  analysis::AliasAnalysis alias(*p.module, p.regions, *p.callgraph);
  alias.run();
  const ir::Function* main_fn = p.module->findFunction("main");
  bool saw_unknown = false;
  for (const auto& bb : main_fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kCall) {
        for (analysis::ObjId obj : alias.pointsTo(inst.get())) {
          if (alias.isUnknown(obj)) saw_unknown = true;
        }
      }
    }
  }
  EXPECT_TRUE(saw_unknown);
}

TEST(Alias, ParentOfFieldObject) {
  auto p = run(R"(
struct Two { int a; int b; };
int main(void) { struct Two t; t.a = 1; return t.a; }
)");
  analysis::AliasAnalysis alias(*p.module, p.regions, *p.callgraph);
  alias.run();
  const ir::Function* main_fn = p.module->findFunction("main");
  for (const auto& bb : main_fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kFieldAddr) continue;
      for (analysis::ObjId obj : alias.pointsTo(inst.get())) {
        EXPECT_GE(alias.parentOf(obj), 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Control dependence
// ---------------------------------------------------------------------------

TEST(ControlDep, ThenBlockDependsOnBranch) {
  auto p = run(R"(
int f(int c) { int r; r = 0; if (c) { r = 1; } return r; }
)");
  const ir::Function* f = p.module->findFunction("f");
  const auto cd = analysis::ControlDependence::compute(*f);
  const ir::BasicBlock* then_bb = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->label().rfind("if.then", 0) == 0) then_bb = bb.get();
  }
  ASSERT_NE(then_bb, nullptr);
  EXPECT_FALSE(cd.controllers(then_bb).empty());
  EXPECT_TRUE(cd.controllers(then_bb).contains(f->entry()));
}

TEST(ControlDep, MergeBlockDoesNotDependOnBranch) {
  auto p = run(R"(
int f(int c) { int r; if (c) { r = 1; } else { r = 2; } return r; }
)");
  const ir::Function* f = p.module->findFunction("f");
  const auto cd = analysis::ControlDependence::compute(*f);
  const ir::BasicBlock* end_bb = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->label().rfind("if.end", 0) == 0) end_bb = bb.get();
  }
  ASSERT_NE(end_bb, nullptr);
  EXPECT_FALSE(cd.controllers(end_bb).contains(f->entry()));
}

TEST(ControlDep, LoopBodyDependsOnLoopCondition) {
  auto p = run(R"(
int f(int n) { int s; int i; s = 0;
  for (i = 0; i < n; i++) { s += i; }
  return s; }
)");
  const ir::Function* f = p.module->findFunction("f");
  const auto cd = analysis::ControlDependence::compute(*f);
  const ir::BasicBlock* body = nullptr;
  const ir::BasicBlock* cond = nullptr;
  for (const auto& bb : f->blocks()) {
    if (bb->label().rfind("for.body", 0) == 0) body = bb.get();
    if (bb->label().rfind("for.cond", 0) == 0) cond = bb.get();
  }
  ASSERT_NE(body, nullptr);
  ASSERT_NE(cond, nullptr);
  EXPECT_TRUE(cd.controllers(body).contains(cond));
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Report, ValueFlowDotContainsNodesAndEdges) {
  SafeFlowDriver driver;
  driver.addSource("r.c", R"(
typedef struct C { float v; } C;
C *cell;
extern void *shmat(int id, void *a, int f);
extern void sink(float v);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    cell = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}
int main(void)
{
    float out;
    init();
    out = cell->v;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  const auto& report = driver.analyze();
  ASSERT_FALSE(report.errors.empty());
  const std::string dot = report.renderValueFlowDot(driver.sources());
  EXPECT_NE(dot.find("digraph safeflow_value_flow"), std::string::npos);
  EXPECT_NE(dot.find("region:cell"), std::string::npos);
  EXPECT_NE(dot.find("crit:main:out"), std::string::npos);
  EXPECT_NE(dot.find("label=\"data\""), std::string::npos);
}

TEST(Report, RenderListsEverySection) {
  SafeFlowDriver driver;
  driver.addSource("r.c", "int main(void) { return 0; }");
  const auto& report = driver.analyze();
  const std::string text = report.render(driver.sources());
  EXPECT_NE(text.find("warnings"), std::string::npos);
  EXPECT_NE(text.find("error dependencies"), std::string::npos);
  EXPECT_NE(text.find("restriction violations"), std::string::npos);
}

}  // namespace
