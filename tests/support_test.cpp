#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/loc_counter.h"
#include "support/source_manager.h"
#include "support/string_utils.h"
#include "support/text_diff.h"

namespace sf = safeflow::support;

// ---------------------------------------------------------------------------
// SourceManager
// ---------------------------------------------------------------------------

TEST(SourceManager, AddBufferAndLookup) {
  sf::SourceManager sm;
  const sf::FileId id = sm.addBuffer("a.c", "int x;\nint y;\n");
  EXPECT_EQ(sm.name(id), "a.c");
  EXPECT_EQ(sm.contents(id), "int x;\nint y;\n");
  EXPECT_EQ(sm.fileCount(), 1u);
}

TEST(SourceManager, LineText) {
  sf::SourceManager sm;
  const sf::FileId id = sm.addBuffer("a.c", "line one\nline two\nlast");
  EXPECT_EQ(sm.lineText(id, 1), "line one");
  EXPECT_EQ(sm.lineText(id, 2), "line two");
  EXPECT_EQ(sm.lineText(id, 3), "last");
  EXPECT_EQ(sm.lineText(id, 4), "");
  EXPECT_EQ(sm.lineText(id, 0), "");
}

TEST(SourceManager, LineTextCrLf) {
  sf::SourceManager sm;
  const sf::FileId id = sm.addBuffer("a.c", "one\r\ntwo\r\n");
  EXPECT_EQ(sm.lineText(id, 1), "one");
  EXPECT_EQ(sm.lineText(id, 2), "two");
}

TEST(SourceManager, Describe) {
  sf::SourceManager sm;
  const sf::FileId id = sm.addBuffer("dir/a.c", "x");
  EXPECT_EQ(sm.describe({id, 3, 7}), "dir/a.c:3:7");
  EXPECT_EQ(sm.describe({}), "<unknown>");
}

TEST(SourceManager, MissingFileReturnsNullopt) {
  sf::SourceManager sm;
  EXPECT_FALSE(sm.addFile("/nonexistent/definitely/missing.c").has_value());
}

// ---------------------------------------------------------------------------
// DiagnosticEngine
// ---------------------------------------------------------------------------

TEST(Diagnostics, CountsErrorsOnly) {
  sf::DiagnosticEngine de;
  de.note({}, "info");
  de.warning({}, "w", "careful");
  EXPECT_FALSE(de.hasErrors());
  de.error({}, "e", "boom");
  EXPECT_TRUE(de.hasErrors());
  EXPECT_EQ(de.errorCount(), 1u);
  EXPECT_EQ(de.diagnostics().size(), 3u);
}

TEST(Diagnostics, CategoryPrefixCounting) {
  sf::DiagnosticEngine de;
  de.warning({}, "restriction.P2", "a");
  de.warning({}, "restriction.P3", "b");
  de.error({}, "taint.unsafe", "c");
  EXPECT_EQ(de.countCategoryPrefix("restriction."), 2u);
  EXPECT_EQ(de.countCategoryPrefix("taint."), 1u);
  EXPECT_EQ(de.countCategoryPrefix("nothing"), 0u);
}

TEST(Diagnostics, RenderContainsSeverityAndCategory) {
  sf::SourceManager sm;
  const sf::FileId id = sm.addBuffer("f.c", "x\n");
  sf::DiagnosticEngine de;
  de.error({id, 1, 2}, "parse", "bad token");
  const std::string out = de.render(sm);
  EXPECT_NE(out.find("f.c:1:2"), std::string::npos);
  EXPECT_NE(out.find("error"), std::string::npos);
  EXPECT_NE(out.find("[parse]"), std::string::npos);
  EXPECT_NE(out.find("bad token"), std::string::npos);
}

TEST(Diagnostics, ClearResets) {
  sf::DiagnosticEngine de;
  de.error({}, "e", "x");
  de.clear();
  EXPECT_FALSE(de.hasErrors());
  EXPECT_TRUE(de.diagnostics().empty());
}

// ---------------------------------------------------------------------------
// LOC counter
// ---------------------------------------------------------------------------

TEST(LocCounter, SimpleCode) {
  const auto stats = sf::countLoc("int main() {\n  return 0;\n}\n");
  EXPECT_EQ(stats.code_lines, 3u);
  EXPECT_EQ(stats.blank_lines, 0u);
  EXPECT_EQ(stats.comment_lines, 0u);
}

TEST(LocCounter, CommentsAndBlanks) {
  const auto stats = sf::countLoc(
      "// header\n"
      "\n"
      "/* block\n"
      "   continues */\n"
      "int x; // trailing\n");
  EXPECT_EQ(stats.comment_lines, 3u);
  EXPECT_EQ(stats.blank_lines, 1u);
  EXPECT_EQ(stats.code_lines, 1u);
  EXPECT_EQ(stats.total_lines, 5u);
}

TEST(LocCounter, CommentMarkersInsideStrings) {
  const auto stats = sf::countLoc("char* s = \"/* not a comment */\";\n");
  EXPECT_EQ(stats.code_lines, 1u);
  EXPECT_EQ(stats.comment_lines, 0u);
}

TEST(LocCounter, QuoteInsideComment) {
  const auto stats = sf::countLoc("/* it's fine */\nint x;\n");
  EXPECT_EQ(stats.comment_lines, 1u);
  EXPECT_EQ(stats.code_lines, 1u);
}

TEST(LocCounter, CodeBeforeBlockComment) {
  const auto stats = sf::countLoc("int x; /* tail\nstill comment */\n");
  EXPECT_EQ(stats.code_lines, 1u);
  EXPECT_EQ(stats.comment_lines, 1u);
}

TEST(LocCounter, EmptyInput) {
  const auto stats = sf::countLoc("");
  EXPECT_EQ(stats.total_lines, 0u);
}

TEST(LocCounter, NoTrailingNewline) {
  const auto stats = sf::countLoc("int x;");
  EXPECT_EQ(stats.total_lines, 1u);
  EXPECT_EQ(stats.code_lines, 1u);
}

// ---------------------------------------------------------------------------
// Text diff
// ---------------------------------------------------------------------------

TEST(TextDiff, IdenticalTextsHaveNoChanges) {
  const auto d = sf::diffLines("a\nb\nc\n", "a\nb\nc\n");
  EXPECT_EQ(d.changed(), 0u);
}

TEST(TextDiff, PureAddition) {
  const auto d = sf::diffLines("a\nc\n", "a\nb\nc\n");
  EXPECT_EQ(d.added, 1u);
  EXPECT_EQ(d.removed, 0u);
}

TEST(TextDiff, PureRemoval) {
  const auto d = sf::diffLines("a\nb\nc\n", "a\nc\n");
  EXPECT_EQ(d.added, 0u);
  EXPECT_EQ(d.removed, 1u);
}

TEST(TextDiff, Replacement) {
  const auto d = sf::diffLines("a\nold\nc\n", "a\nnew\nc\n");
  EXPECT_EQ(d.added, 1u);
  EXPECT_EQ(d.removed, 1u);
  EXPECT_EQ(d.changed(), 2u);
}

TEST(TextDiff, SplitLinesNoTrailingEmpty) {
  const auto lines = sf::splitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
}

// ---------------------------------------------------------------------------
// String utils
// ---------------------------------------------------------------------------

TEST(StringUtils, Trim) {
  EXPECT_EQ(sf::trim("  x  "), "x");
  EXPECT_EQ(sf::trim("\t\na\r"), "a");
  EXPECT_EQ(sf::trim(""), "");
  EXPECT_EQ(sf::trim("   "), "");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(sf::startsWith("SafeFlow Annotation x", "SafeFlow"));
  EXPECT_FALSE(sf::startsWith("Safe", "SafeFlow"));
  EXPECT_TRUE(sf::endsWith("file.c", ".c"));
  EXPECT_FALSE(sf::endsWith(".c", "file.c"));
}

TEST(StringUtils, Split) {
  const auto parts = sf::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(sf::join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(sf::join({}, ","), "");
}
