// Tests for the message-passing extension (paper §3.4.3): noncore(socket)
// annotations, recv-style receive calls, and monitoring of received data.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;
using analysis::CriticalDependencyError;

const char* kSocketPrelude = R"(
typedef struct Msg { float value; int kind; } Msg;

int ncSocket;
int coreSocket;

extern int recv(int socket, void *buffer, int length, int flags);
extern int socketOpen(int port);
extern void actuate(float v);

void initSockets(void)
{
    ncSocket = socketOpen(9000);
    coreSocket = socketOpen(9001);
    /*** SafeFlow Annotation assume(noncore(ncSocket)) ***/
}
)";

std::unique_ptr<SafeFlowDriver> analyze(const std::string& body) {
  auto driver = std::make_unique<SafeFlowDriver>();
  driver->addSource("msg.c", std::string(kSocketPrelude) + body);
  driver->analyze();
  EXPECT_FALSE(driver->hasFrontendErrors())
      << driver->diagnostics().render(driver->sources());
  return driver;
}

TEST(Messaging, UnmonitoredReceiveTaintsCriticalData) {
  const auto d = analyze(R"(
int main(void)
{
    Msg m;
    float command;
    initSockets();
    recv(ncSocket, &m, sizeof(Msg), 0);
    command = m.value;
    /*** SafeFlow Annotation assert(safe(command)); ***/
    actuate(command);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kData);
  ASSERT_FALSE(d->report().errors.front().region_names.empty());
  EXPECT_EQ(d->report().errors.front().region_names.front(), "ncSocket");
}

TEST(Messaging, CoreSocketIsTrusted) {
  const auto d = analyze(R"(
int main(void)
{
    Msg m;
    float command;
    initSockets();
    recv(coreSocket, &m, sizeof(Msg), 0);
    command = m.value;
    /*** SafeFlow Annotation assert(safe(command)); ***/
    actuate(command);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

TEST(Messaging, MonitoringFunctionMakesReceivedDataSafe) {
  const auto d = analyze(R"(
float checkMessage(Msg *m)
/*** SafeFlow Annotation assume(core(m, 0, sizeof(Msg))) ***/
{
    if (m->value > -5.0f && m->value < 5.0f && m->kind == 1) {
        return m->value;
    }
    return 0.0f;
}

int main(void)
{
    Msg m;
    float command;
    initSockets();
    recv(ncSocket, &m, sizeof(Msg), 0);
    command = checkMessage(&m);
    /*** SafeFlow Annotation assert(safe(command)); ***/
    actuate(command);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

TEST(Messaging, UnmonitoredReadWarnsWithChannelName) {
  const auto d = analyze(R"(
int main(void)
{
    Msg m;
    float command;
    initSockets();
    recv(ncSocket, &m, sizeof(Msg), 0);
    command = m.value;
    /*** SafeFlow Annotation assert(safe(command)); ***/
    actuate(command);
    return 0;
}
)");
  bool warned = false;
  for (const auto& w : d->report().warnings) {
    if (w.region_name == "ncSocket") warned = true;
  }
  EXPECT_TRUE(warned) << d->report().render(d->sources());
}

TEST(Messaging, ReceiveReturnValueIsTainted) {
  const auto d = analyze(R"(
int main(void)
{
    Msg m;
    int n;
    initSockets();
    n = recv(ncSocket, &m, sizeof(Msg), 0);
    /*** SafeFlow Annotation assert(safe(n)); ***/
    return n;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u);
}

TEST(Messaging, MixedShmAndSockets) {
  // Shared memory and message channels coexist: each taints its own
  // critical sink independently.
  const auto d = analyze(R"(
typedef struct Cell { float v; } Cell;
Cell *cellShm;
extern void *shmat(int id, void *a, int f);
extern int shmget(int k, int s, int f);

/*** SafeFlow Annotation shminit ***/
void initShm(void)
{
    cellShm = (Cell *) shmat(shmget(3, sizeof(Cell), 0), 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cellShm, sizeof(Cell))) ***/
    /*** SafeFlow Annotation assume(noncore(cellShm)) ***/
}

int main(void)
{
    Msg m;
    float a;
    float b;
    initSockets();
    initShm();
    recv(ncSocket, &m, sizeof(Msg), 0);
    a = m.value;
    b = cellShm->v;
    /*** SafeFlow Annotation assert(safe(a)); ***/
    /*** SafeFlow Annotation assert(safe(b)); ***/
    actuate(a + b);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 2u)
      << d->report().render(d->sources());
  std::set<std::string> regions;
  for (const auto& e : d->report().errors) {
    for (const auto& r : e.region_names) regions.insert(r);
  }
  EXPECT_TRUE(regions.contains("ncSocket"));
  EXPECT_TRUE(regions.contains("cellShm"));
}

TEST(Messaging, ChannelCountReported) {
  const auto d = analyze(R"(
int main(void) { initSockets(); return 0; }
)");
  // One channel (ncSocket); coreSocket is unannotated and trusted.
  EXPECT_GE(d->stats().shm_regions, 1u);
}

}  // namespace
