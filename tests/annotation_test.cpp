// Direct unit tests for the SafeFlow annotation parser (paper §3.1,
// §3.2.1): grammar coverage, sizeof arithmetic, and malformed inputs.
#include <gtest/gtest.h>

#include "annotations/annotation.h"
#include "cfront/frontend.h"

namespace {

using namespace safeflow;
using annotations::AnnotationKind;
using annotations::AnnotationParser;
using annotations::ParsedAnnotation;

class AnnotationTest : public ::testing::Test {
 protected:
  AnnotationTest() {
    // Register a struct and a typedef so sizeof(...) resolves.
    fe_.parseBuffer("types.c",
                    "typedef struct SHM { float control; float position; "
                    "float angle; int seq; } SHMData;\n"
                    "struct Pair { double a; double b; };\n");
  }

  std::optional<ParsedAnnotation> parse(const std::string& text) {
    AnnotationParser parser(fe_.types(), fe_.unit().typedefs(),
                            fe_.diagnostics());
    return parser.parse(cfront::RawAnnotation{text, {}});
  }

  cfront::Frontend fe_;
};

TEST_F(AnnotationTest, ShmInit) {
  const auto a = parse("shminit");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnnotationKind::kShmInit);
}

TEST_F(AnnotationTest, AssumeCoreBasic) {
  const auto a = parse("assume(core(ptr, 0, 16))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnnotationKind::kAssumeCore);
  EXPECT_EQ(a->pointer_name, "ptr");
  EXPECT_EQ(a->offset, 0);
  EXPECT_EQ(a->size, 16);
}

TEST_F(AnnotationTest, AssumeCoreWithSizeofTypedef) {
  const auto a = parse("assume(core(nc, 0, sizeof(SHMData)))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 16);  // 3 floats + int
}

TEST_F(AnnotationTest, AssumeCoreWithSizeofStructTag) {
  const auto a = parse("assume(core(p, 0, sizeof(struct Pair)))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 16);
}

TEST_F(AnnotationTest, SizeofArithmetic) {
  const auto a = parse("assume(shmvar(ring, 8 * sizeof(SHMData)))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnnotationKind::kShmVar);
  EXPECT_EQ(a->size, 8 * 16);
}

TEST_F(AnnotationTest, SizeofSumAndDifference) {
  const auto a = parse("assume(shmvar(p, sizeof(SHMData) + 4 - 2))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 18);
}

TEST_F(AnnotationTest, ParenthesizedExpression) {
  const auto a = parse("assume(shmvar(p, 2 * (sizeof(SHMData) + 8)))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 48);
}

TEST_F(AnnotationTest, SizeofBuiltins) {
  EXPECT_EQ(parse("assume(shmvar(p, sizeof(int)))")->size, 4);
  EXPECT_EQ(parse("assume(shmvar(p, sizeof(double)))")->size, 8);
  EXPECT_EQ(parse("assume(shmvar(p, sizeof(char)))")->size, 1);
}

TEST_F(AnnotationTest, SizeofPointer) {
  const auto a = parse("assume(shmvar(p, sizeof(SHMData *)))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 8);
}

TEST_F(AnnotationTest, NonCore) {
  const auto a = parse("assume(noncore(feedback))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnnotationKind::kNonCore);
  EXPECT_EQ(a->pointer_name, "feedback");
}

TEST_F(AnnotationTest, AssertSafe) {
  const auto a = parse("assert(safe(output));");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->kind, AnnotationKind::kAssertSafe);
  EXPECT_EQ(a->value_name, "output");
}

TEST_F(AnnotationTest, AssertSafeWithoutSemicolon) {
  const auto a = parse("assert(safe(pid))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value_name, "pid");
}

TEST_F(AnnotationTest, WhitespaceTolerant) {
  const auto a = parse("  assume ( core ( nc , 4 , 12 ) )  ");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->offset, 4);
  EXPECT_EQ(a->size, 12);
}

// -- malformed inputs -------------------------------------------------------

TEST_F(AnnotationTest, UnknownHeadRejected) {
  EXPECT_FALSE(parse("expect(core(p, 0, 4))").has_value());
}

TEST_F(AnnotationTest, UnknownPredicateRejected) {
  EXPECT_FALSE(parse("assume(trusted(p))").has_value());
}

TEST_F(AnnotationTest, MissingArgumentsRejected) {
  EXPECT_FALSE(parse("assume(core(p))").has_value());
  EXPECT_FALSE(parse("assume(core(p, 0))").has_value());
  EXPECT_FALSE(parse("assume(shmvar(p))").has_value());
}

TEST_F(AnnotationTest, NonConstantSizeRejected) {
  EXPECT_FALSE(parse("assume(core(p, 0, n))").has_value());
}

TEST_F(AnnotationTest, UnknownTypeInSizeofRejected) {
  EXPECT_FALSE(parse("assume(shmvar(p, sizeof(Mystery)))").has_value());
}

TEST_F(AnnotationTest, UnbalancedParensRejected) {
  EXPECT_FALSE(parse("assume(core(p, 0, 4)").has_value());
  EXPECT_FALSE(parse("assert(safe(x)").has_value());
}

TEST_F(AnnotationTest, AssertOnlySupportsSafe) {
  EXPECT_FALSE(parse("assert(unsafe(x))").has_value());
}

TEST_F(AnnotationTest, MalformedInputsReportDiagnostics) {
  const std::size_t before = fe_.diagnostics().errorCount();
  parse("assume(core(p, 0)");
  EXPECT_GT(fe_.diagnostics().errorCount(), before);
}

TEST_F(AnnotationTest, DivisionInConstExpr) {
  const auto a = parse("assume(shmvar(p, sizeof(SHMData) / 2))");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->size, 8);
}

TEST_F(AnnotationTest, KindNames) {
  EXPECT_EQ(annotations::annotationKindName(AnnotationKind::kShmInit),
            "shminit");
  EXPECT_EQ(annotations::annotationKindName(AnnotationKind::kAssertSafe),
            "assert(safe)");
}

}  // namespace
