// Tests for the I/O fault-injection shim (SAFEFLOW_INJECT_IO) and the
// crash-consistency machinery built on it: spec parsing and one-shot
// semantics, the hardened write helpers, DiskCache envelope
// verification under torn renames / ENOSPC / fsync failures, the run
// journal (torn-tail tolerance, run-key identity, write-failure
// degradation), export-failure behavior of --metrics-out / --trace
// (diagnose + classified exit, never a truncated artifact), and the
// --resume end-to-end contract (byte-identical merged report,
// finished shards never re-spawned).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "safeflow/cache_manager.h"
#include "safeflow/run_journal.h"
#include "support/cache.h"
#include "support/io_faults.h"
#include "support/metrics.h"
#include "support/subprocess.h"

namespace {

using namespace safeflow;
namespace io = safeflow::support::io;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf + "." +
                          std::to_string(::getpid());
  std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

void writeTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << contents;
}

/// RAII disarm so a failed assertion can never leak an armed fault into
/// a later test running in the same process.
struct DisarmOnExit {
  ~DisarmOnExit() { io::armIoFaultInjection(""); }
};

// -- spec parsing and arming ------------------------------------------------

TEST(IoFaultSpec, ParsesWellFormedSpecs) {
  DisarmOnExit disarm;
  EXPECT_TRUE(io::armIoFaultInjection("enospc@cache.store"));
  EXPECT_TRUE(io::ioFaultInjectionArmed());
  EXPECT_TRUE(io::armIoFaultInjection("torn_rename@cache.store:3"));
  EXPECT_TRUE(io::ioFaultInjectionArmed());
  EXPECT_TRUE(io::armIoFaultInjection("fsync_fail@journal.append"));
  EXPECT_TRUE(io::armIoFaultInjection("short_write@metrics.out"));
  EXPECT_TRUE(io::armIoFaultInjection("eio@trace.out:2"));
  // Empty spec disarms.
  EXPECT_TRUE(io::armIoFaultInjection(""));
  EXPECT_FALSE(io::ioFaultInjectionArmed());
}

TEST(IoFaultSpec, MalformedSpecsStayInert) {
  DisarmOnExit disarm;
  for (const char* bad :
       {"nonsense", "enospc", "enospc@", "unknown@cache.store",
        "enospc@cache.store:0", "enospc@cache.store:x"}) {
    EXPECT_FALSE(io::armIoFaultInjection(bad)) << bad;
    EXPECT_FALSE(io::ioFaultInjectionArmed()) << bad;
  }
}

// -- hardened helper semantics ----------------------------------------------

TEST(IoFaultHelpers, WriteFailsOnceAtItsSiteThenDisarms) {
  DisarmOnExit disarm;
  const std::string dir = freshDir("io_write_once");
  const std::string path = dir + "/target";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  ASSERT_GE(fd, 0);

  ASSERT_TRUE(io::armIoFaultInjection("eio@metrics.out"));
  // A different site passes through untouched and leaves the fault armed.
  EXPECT_TRUE(io::writeAll(fd, "other-site", "trace.out").ok);
  EXPECT_TRUE(io::ioFaultInjectionArmed());

  const io::IoStatus failed = io::writeAll(fd, "0123456789", "metrics.out");
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.error_errno, EIO);
  EXPECT_NE(failed.message.find("injected"), std::string::npos);
  // One-shot: consumed, and the retry sees a healthy filesystem.
  EXPECT_FALSE(io::ioFaultInjectionArmed());
  EXPECT_TRUE(io::writeAll(fd, "retry", "metrics.out").ok);
  ::close(fd);
}

TEST(IoFaultHelpers, NthCountsMatchingOperationsOnly) {
  DisarmOnExit disarm;
  const std::string dir = freshDir("io_nth");
  const int fd =
      ::open((dir + "/t").c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(io::armIoFaultInjection("enospc@stats.out:2"));
  EXPECT_TRUE(io::writeAll(fd, "first", "stats.out").ok);
  const io::IoStatus second = io::writeAll(fd, "second", "stats.out");
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(second.error_errno, ENOSPC);
  ::close(fd);
}

TEST(IoFaultHelpers, ShortWriteIsInvisibleToCallers) {
  DisarmOnExit disarm;
  const std::string dir = freshDir("io_short");
  const std::string path = dir + "/short";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(io::armIoFaultInjection("short_write@metrics.out"));
  const std::string payload(1000, 'x');
  EXPECT_TRUE(io::writeAll(fd, payload, "metrics.out").ok);
  ::close(fd);
  // The partial-write loop must have finished the job on its own.
  EXPECT_EQ(readFileOrEmpty(path), payload);
}

TEST(IoFaultHelpers, WriteFileNeverLeavesATruncatedArtifact) {
  DisarmOnExit disarm;
  const std::string dir = freshDir("io_writefile");
  const std::string path = dir + "/doc.json";
  ASSERT_TRUE(io::armIoFaultInjection("enospc@metrics.out"));
  const io::IoStatus status =
      io::writeFile(path, std::string(4096, 'm'), "metrics.out");
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("cannot write"), std::string::npos);
  // The half-written file was unlinked: absent, not silently truncated.
  EXPECT_NE(::access(path.c_str(), F_OK), 0);
  // Healthy retry succeeds and the document is complete.
  EXPECT_TRUE(io::writeFile(path, "complete", "metrics.out").ok);
  EXPECT_EQ(readFileOrEmpty(path), "complete");
}

// -- DiskCache crash consistency under injected faults ----------------------

TEST(IoFaultCache, TornRenameIsDetectedPurgedAndRecoverable) {
  DisarmOnExit disarm;
  support::DiskCache cache({freshDir("io_torn"), 0});
  ASSERT_TRUE(cache.ensureDir());
  const std::string payload(2048, 'p');

  ASSERT_TRUE(io::armIoFaultInjection("torn_rename@cache.store"));
  const auto stored = cache.store("aaaaaaaaaaaaaaaa", payload);
  EXPECT_FALSE(stored.ok);
  EXPECT_NE(stored.error.find("torn"), std::string::npos);

  // The torn bytes landed under the real key, but the checksummed
  // envelope refuses to serve them.
  const auto checked = cache.lookupChecked("aaaaaaaaaaaaaaaa");
  EXPECT_EQ(checked.status, support::DiskCache::LookupStatus::kTorn);
  EXPECT_FALSE(cache.lookup("aaaaaaaaaaaaaaaa").has_value());

  // lookup() purged it; a healthy re-store round-trips.
  EXPECT_TRUE(cache.store("aaaaaaaaaaaaaaaa", payload).ok);
  ASSERT_TRUE(cache.lookup("aaaaaaaaaaaaaaaa").has_value());
  EXPECT_EQ(*cache.lookup("aaaaaaaaaaaaaaaa"), payload);
}

TEST(IoFaultCache, EnospcAndFsyncFailStoreNothing) {
  DisarmOnExit disarm;
  support::DiskCache cache({freshDir("io_enospc"), 0});
  ASSERT_TRUE(cache.ensureDir());

  ASSERT_TRUE(io::armIoFaultInjection("enospc@cache.store"));
  EXPECT_FALSE(cache.store("cccccccccccccccc", "payload").ok);
  EXPECT_FALSE(cache.lookup("cccccccccccccccc").has_value());
  EXPECT_EQ(cache.totalBytes(), 0u);  // the partial temp was unlinked

  ASSERT_TRUE(io::armIoFaultInjection("fsync_fail@cache.store"));
  EXPECT_FALSE(cache.store("dddddddddddddddd", "payload").ok);
  EXPECT_FALSE(cache.lookup("dddddddddddddddd").has_value());

  // Both one-shot faults consumed: the store path is healthy again.
  EXPECT_TRUE(cache.store("eeeeeeeeeeeeeeee", "payload").ok);
  EXPECT_TRUE(cache.lookup("eeeeeeeeeeeeeeee").has_value());
}

TEST(IoFaultCache, VerifyEntriesSweepsTornEntriesAndReportsPaths) {
  DisarmOnExit disarm;
  support::DiskCache cache({freshDir("io_sweep"), 0});
  ASSERT_TRUE(cache.ensureDir());
  ASSERT_TRUE(cache.store("aaaaaaaaaaaaaaaa", std::string(512, 'a')).ok);
  ASSERT_TRUE(cache.store("bbbbbbbbbbbbbbbb", std::string(512, 'b')).ok);
  // Tear one entry the way a power cut would: drop its tail.
  ASSERT_EQ(::truncate(cache.entryPath("aaaaaaaaaaaaaaaa").c_str(), 100),
            0);

  std::vector<std::string> purged;
  EXPECT_EQ(cache.verifyEntries(&purged), 1u);
  ASSERT_EQ(purged.size(), 1u);
  EXPECT_EQ(purged[0], cache.entryPath("aaaaaaaaaaaaaaaa"));
  EXPECT_FALSE(cache.lookup("aaaaaaaaaaaaaaaa").has_value());
  EXPECT_TRUE(cache.lookup("bbbbbbbbbbbbbbbb").has_value());
  // Idempotent: a second sweep finds a clean directory.
  EXPECT_EQ(cache.verifyEntries(), 0u);
}

TEST(IoFaultCache, ManagerCountsTornEntriesPurgedOnOpen) {
  DisarmOnExit disarm;
  const std::string dir = freshDir("io_mgr_torn");
  support::DiskCache disk({dir, 0});
  ASSERT_TRUE(disk.ensureDir());
  ASSERT_TRUE(disk.store("aaaaaaaaaaaaaaaa", std::string(512, 'x')).ok);
  ASSERT_EQ(::truncate(disk.entryPath("aaaaaaaaaaaaaaaa").c_str(), 40), 0);

  CacheOptions options;
  options.enabled = true;
  options.dir = dir;
  support::MetricsRegistry metrics;
  CacheManager manager(options, &metrics);
  EXPECT_EQ(metrics.counterValue("cache.torn_entries_purged"), 1u);
}

// -- run journal ------------------------------------------------------------

TEST(RunJournalTest, RunKeyTracksArgsFilesAndContent) {
  const std::string dir = freshDir("journal_key");
  const std::string tu = dir + "/a.c";
  writeTextFile(tu, "int main(void) { return 0; }\n");

  const std::string base = RunJournal::computeRunKey({"-I", "inc"}, {tu});
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(base, RunJournal::computeRunKey({"-I", "inc"}, {tu}));
  EXPECT_NE(base, RunJournal::computeRunKey({"-I", "other"}, {tu}));
  EXPECT_NE(base, RunJournal::computeRunKey({"-I", "inc"}, {}));
  // Editing the file's bytes changes the key: a stale journal must not
  // replay reports for sources that no longer exist.
  writeTextFile(tu, "int main(void) { return 1; }\n");
  EXPECT_NE(base, RunJournal::computeRunKey({"-I", "inc"}, {tu}));
}

TEST(RunJournalTest, AppendReopenReplaysOnlyMatchingRuns) {
  const std::string dir = freshDir("journal_replay");
  const std::string path = dir + "/run.ndjson";
  std::string error;

  {
    RunJournal journal;
    ASSERT_TRUE(journal.open(path, "0123456789abcdef", 3, nullptr, &error))
        << error;
    EXPECT_EQ(journal.finishedCount(), 0u);
    journal.append(0, "a.c", 0, 1, "{\"report\": 1}\n", "");
    journal.append(2, "c.c", 1, 2, "{\"report\": 3}\n", "warn\n");
  }

  // Same key: both records replay, with every field intact.
  {
    RunJournal journal;
    ASSERT_TRUE(journal.open(path, "0123456789abcdef", 3, nullptr, &error))
        << error;
    EXPECT_EQ(journal.finishedCount(), 2u);
    const RunJournal::Entry* done = journal.finished(2, "c.c");
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->exit_code, 1);
    EXPECT_EQ(done->attempts, 2);
    EXPECT_EQ(done->stdout_text, "{\"report\": 3}\n");
    EXPECT_EQ(done->stderr_text, "warn\n");
    EXPECT_EQ(journal.finished(1, "b.c"), nullptr);       // never ran
    EXPECT_EQ(journal.finished(0, "renamed.c"), nullptr);  // file mismatch
  }

  // Different key: the journal is someone else's run — discarded.
  {
    RunJournal journal;
    ASSERT_TRUE(journal.open(path, "ffffffffffffffff", 3, nullptr, &error))
        << error;
    EXPECT_EQ(journal.finishedCount(), 0u);
  }
}

TEST(RunJournalTest, TornTailCostsOnlyTheUnterminatedRecord) {
  const std::string dir = freshDir("journal_torn");
  const std::string path = dir + "/run.ndjson";
  std::string error;
  {
    RunJournal journal;
    ASSERT_TRUE(journal.open(path, "0123456789abcdef", 4, nullptr, &error));
    journal.append(0, "a.c", 0, 1, "{\"report\": 1}\n", "");
    journal.append(1, "b.c", 0, 1, "{\"report\": 2}\n", "");
  }
  // Simulate a SIGKILL mid-append: a record with no terminating newline.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "{\"shard\": 2, \"file\": \"c.c\", \"exit_co";
  }
  RunJournal journal;
  ASSERT_TRUE(journal.open(path, "0123456789abcdef", 4, nullptr, &error));
  EXPECT_EQ(journal.finishedCount(), 2u);
  EXPECT_NE(journal.finished(0, "a.c"), nullptr);
  EXPECT_NE(journal.finished(1, "b.c"), nullptr);
  EXPECT_EQ(journal.finished(2, "c.c"), nullptr);
}

TEST(RunJournalTest, WriteFailureDegradesToUnjournaledRun) {
  DisarmOnExit disarm;
  const std::string dir = freshDir("journal_fail");
  support::MetricsRegistry metrics;
  std::string error;
  RunJournal journal;
  ASSERT_TRUE(journal.open(dir + "/run.ndjson", "0123456789abcdef", 2,
                           &metrics, &error));
  ASSERT_TRUE(io::armIoFaultInjection("eio@journal.append"));
  journal.append(0, "a.c", 0, 1, "{\"report\": 1}\n", "");
  EXPECT_EQ(metrics.counterValue("supervisor.journal_write_failures"), 1u);
  // The journal is broken for the rest of the run (no further appends,
  // no further failures) but the process carries on.
  journal.append(1, "b.c", 0, 1, "{\"report\": 2}\n", "");
  EXPECT_EQ(metrics.counterValue("supervisor.journal_write_failures"), 1u);
}

// -- export failures: diagnose + classified exit, never a torn artifact ----

support::SubprocessResult runCli(
    const std::vector<std::string>& args,
    const std::vector<std::pair<std::string, std::string>>& env = {}) {
  std::vector<std::string> argv = {SAFEFLOW_EXE};
  argv.insert(argv.end(), args.begin(), args.end());
  support::SubprocessOptions opts;
  opts.timeout_seconds = 120.0;
  opts.extra_env = env;
  return support::runSubprocess(argv, opts);
}

TEST(IoFaultExports, MetricsOutEnospcFailsLoudlyWithNoArtifact) {
  const std::string dir = freshDir("io_metrics_out");
  const std::string tu = dir + "/clean.c";
  writeTextFile(tu, "int main(void) { return 0; }\n");
  const std::string metrics_path = dir + "/metrics.prom";

  // Control: the export works and the run is clean.
  const auto ok = runCli({tu, "--metrics-out", metrics_path});
  ASSERT_TRUE(ok.exitedWith(0)) << ok.err_text;
  EXPECT_EQ(::access(metrics_path.c_str(), F_OK), 0);
  ASSERT_EQ(::unlink(metrics_path.c_str()), 0);

  const auto failed =
      runCli({tu, "--metrics-out", metrics_path},
             {{"SAFEFLOW_INJECT_IO", "enospc@metrics.out"}});
  ASSERT_EQ(failed.status, support::SubprocessResult::Status::kExited);
  EXPECT_EQ(failed.exit_code, 2);  // usage/environment error, not "clean"
  EXPECT_NE(failed.err_text.find("cannot write"), std::string::npos)
      << failed.err_text;
  // No truncated-but-silent artifact.
  EXPECT_NE(::access(metrics_path.c_str(), F_OK), 0);
}

TEST(IoFaultExports, TraceOutEioFailsLoudlyWithNoArtifact) {
  const std::string dir = freshDir("io_trace_out");
  const std::string tu = dir + "/clean.c";
  writeTextFile(tu, "int main(void) { return 0; }\n");
  const std::string trace_path = dir + "/trace.json";

  const auto failed = runCli({tu, "--trace", trace_path},
                             {{"SAFEFLOW_INJECT_IO", "eio@trace.out"}});
  ASSERT_EQ(failed.status, support::SubprocessResult::Status::kExited);
  EXPECT_EQ(failed.exit_code, 2);
  EXPECT_NE(failed.err_text.find("cannot write"), std::string::npos)
      << failed.err_text;
  EXPECT_NE(::access(trace_path.c_str(), F_OK), 0);

  // Control afterward: same command, healthy filesystem, real artifact.
  const auto ok = runCli({tu, "--trace", trace_path});
  ASSERT_TRUE(ok.exitedWith(0)) << ok.err_text;
  EXPECT_EQ(::access(trace_path.c_str(), F_OK), 0);
}

// -- --resume end to end ----------------------------------------------------

TEST(ResumeE2E, SecondRunReplaysEveryFinishedShardByteIdentically) {
  const std::string dir = freshDir("resume_e2e");
  const std::string journal = dir + "/run.ndjson";
  const std::string metrics_path = dir + "/metrics.prom";
  const std::vector<std::string> files = {
      kCorpus + "/ip/core/comm.c", kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c", kCorpus + "/ip/core/safety.c",
  };

  // Cache off so the only replay channel is the journal.
  std::vector<std::string> argv = {"--resume", journal,   "--jobs",
                                   "2",        "--no-cache", "-I",
                                   kCorpus + "/ip/common"};
  argv.insert(argv.end(), files.begin(), files.end());

  const auto first = runCli(argv);
  ASSERT_EQ(first.status, support::SubprocessResult::Status::kExited)
      << first.spawn_error;
  ASSERT_EQ(::access(journal.c_str(), F_OK), 0);

  std::vector<std::string> argv2 = argv;
  argv2.push_back("--metrics-out");
  argv2.push_back(metrics_path);
  const auto second = runCli(argv2);
  ASSERT_EQ(second.status, support::SubprocessResult::Status::kExited);

  // The merged report is byte-identical, and every shard came from the
  // journal: no worker was spawned the second time.
  EXPECT_EQ(second.out_text, first.out_text);
  EXPECT_EQ(second.exit_code, first.exit_code);
  const std::string prom = readFileOrEmpty(metrics_path);
  EXPECT_NE(
      prom.find("safeflow_supervisor_shards_resumed_skipped_total 4"),
      std::string::npos)
      << prom;
  EXPECT_NE(prom.find("safeflow_supervisor_workers_spawned_total 0"),
            std::string::npos)
      << prom;
}

TEST(ResumeE2E, EditedSourceInvalidatesTheJournal) {
  const std::string dir = freshDir("resume_edit");
  const std::string journal = dir + "/run.ndjson";
  const std::string tu = dir + "/evolving.c";
  writeTextFile(tu, "int main(void) { return 0; }\n");

  const std::vector<std::string> argv = {"--resume", journal, "--jobs", "2",
                                         "--no-cache", tu};
  const auto first = runCli(argv);
  ASSERT_EQ(first.status, support::SubprocessResult::Status::kExited);

  // Edit the source: the run key changes, so the journal must restart
  // fresh instead of replaying the stale report.
  writeTextFile(tu, "static int g;\nint main(void) { return g; }\n");
  std::vector<std::string> argv2 = argv;
  argv2.push_back("--metrics-out");
  argv2.push_back(dir + "/metrics.prom");
  const auto second = runCli(argv2);
  ASSERT_EQ(second.status, support::SubprocessResult::Status::kExited);
  const std::string prom = readFileOrEmpty(dir + "/metrics.prom");
  EXPECT_NE(
      prom.find("safeflow_supervisor_shards_resumed_skipped_total 0"),
      std::string::npos)
      << prom;
}

}  // namespace
