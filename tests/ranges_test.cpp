// Tests for the interprocedural value-range analysis (PR: ranges pass),
// its three consumers (A2 seeding, taint edge pruning, shm-bounds-const),
// and the degradation contract.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analysis/ranges.h"
#include "ir/callgraph.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;
using analysis::Interval;
using analysis::RangeAnalysis;

// ---------------------------------------------------------------------------
// Interval unit tests
// ---------------------------------------------------------------------------

TEST(Interval, TopAndConstant) {
  EXPECT_TRUE(Interval::top().isTop());
  EXPECT_FALSE(Interval::top().boundedBelow());
  EXPECT_FALSE(Interval::top().boundedAbove());
  const Interval c = Interval::constant(7);
  EXPECT_TRUE(c.isSingleton());
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(8));
}

TEST(Interval, JoinIsConvexHull) {
  const Interval a{0, 3};
  const Interval b{10, 12};
  const Interval j = a.join(b);
  EXPECT_EQ(j.lo, 0);
  EXPECT_EQ(j.hi, 12);
  EXPECT_TRUE(Interval::top().join(a).isTop());
}

TEST(Interval, MeetIsIntersection) {
  const Interval a{0, 10};
  const Interval b{5, 20};
  const auto m = a.meet(b);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->lo, 5);
  EXPECT_EQ(m->hi, 10);
  EXPECT_FALSE((Interval{0, 3}.meet(Interval{4, 9}).has_value()));
}

TEST(Interval, StrMarksUnboundedSides) {
  EXPECT_EQ((Interval{4, 12}).str(), "[4, 12]");
  EXPECT_NE(Interval::top().str().find("-inf"), std::string::npos);
  EXPECT_NE(Interval::top().str().find("+inf"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Driver-level fixtures
// ---------------------------------------------------------------------------

const char* kRingPrelude = R"(
typedef struct Slot { float v; } Slot;
Slot *ring;
extern void *shmat(int shmid, void *addr, int flags);
extern int shmget(int key, int size, int flags);
extern int readInt(void);
extern void sendControl(float v);

/*** SafeFlow Annotation shminit ***/
void initRing(void)
{
  void *p;
  p = shmat(shmget(7, 8 * sizeof(Slot), 0), 0, 0);
  ring = (Slot *) p;
  /*** SafeFlow Annotation assume(shmvar(ring, 8 * sizeof(Slot))) ***/
  /*** SafeFlow Annotation assume(noncore(ring)) ***/
}
)";

std::unique_ptr<SafeFlowDriver> analyzeRing(const std::string& body,
                                            bool ranges_enabled = true) {
  SafeFlowOptions o;
  o.ranges.enabled = ranges_enabled;
  auto d = std::make_unique<SafeFlowDriver>(o);
  d->addSource("ring.c", std::string(kRingPrelude) + body);
  d->analyze();
  EXPECT_FALSE(d->hasFrontendErrors())
      << d->diagnostics().render(d->sources());
  return d;
}

std::size_t countRule(const SafeFlowDriver& d, const std::string& rule) {
  std::size_t n = 0;
  for (const auto& v : d.report().restriction_violations) {
    if (v.rule == rule) ++n;
  }
  return n;
}

std::uint64_t counter(const SafeFlowDriver& d, const std::string& name) {
  for (const auto& [k, v] : d.stats().counters) {
    if (k == name) return v;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Engine API (direct RangeAnalysis over the driver's module)
// ---------------------------------------------------------------------------

TEST(RangeAnalysisApi, ClampedArgumentAndReturnRanges) {
  const auto d = analyzeRing(R"(
int clamp(int r)
{
  if (r < 4) { return 4; }
  if (r > 12) { return 12; }
  return r;
}
int main(void) { initRing(); sendControl((float) clamp(readInt())); return 0; }
)");
  const ir::Module* m = d->module();
  ASSERT_NE(m, nullptr);
  ir::CallGraph cg(*m);
  RangeAnalysis ra(*m, cg);
  ra.run();
  ASSERT_TRUE(ra.enabled());
  ASSERT_FALSE(ra.degraded());

  const ir::Function* clamp = m->findFunction("clamp");
  ASSERT_NE(clamp, nullptr);
  // The argument comes from readInt(): the full int range.
  const Interval arg = ra.rangeOf(clamp->args()[0].get());
  EXPECT_TRUE(arg.boundedBelow());
  EXPECT_TRUE(arg.boundedAbove());
  // Every ret-site contribution lies in [4, 12].
  for (const auto& bb : clamp->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kRet || inst->numOperands() == 0) {
        continue;
      }
      const Interval at = ra.rangeAt(inst->operand(0), bb.get());
      EXPECT_GE(at.lo, 4) << at.str();
      EXPECT_LE(at.hi, 12) << at.str();
    }
  }
}

TEST(RangeAnalysisApi, DisabledAnswersTop) {
  const auto d = analyzeRing(
      "int main(void) { initRing(); return 0; }");
  const ir::Module* m = d->module();
  ir::CallGraph cg(*m);
  analysis::RangeOptions opts;
  opts.enabled = false;
  RangeAnalysis ra(*m, cg, opts);
  ra.run();
  EXPECT_FALSE(ra.enabled());
  const ir::Function* main_fn = m->findFunction("main");
  ASSERT_NE(main_fn, nullptr);
  for (const auto& bb : main_fn->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->type() != nullptr && inst->type()->isInteger()) {
        EXPECT_TRUE(ra.rangeOf(inst.get()).isTop());
      }
    }
  }
  EXPECT_EQ(ra.decidedBranchCount(), 0u);
}

// ---------------------------------------------------------------------------
// Consumer 1: A2 discharge
// ---------------------------------------------------------------------------

const char* kClampedLoop = R"(
static int windowSize(int request)
{
  if (request < 2) { return 2; }
  if (request > 6) { return 6; }
  return request;
}
float smooth(int request)
{
  float acc;
  int n;
  int i;
  n = windowSize(request);
  acc = 0.0f;
  for (i = 0; i < n; i++) { acc = acc + ring[i].v; }
  return acc;
}
int main(void) { initRing(); sendControl(smooth(readInt())); return 0; }
)";

TEST(RangeConsumers, ClampedLoopBoundDischargesWithRanges) {
  const auto d = analyzeRing(kClampedLoop);
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
  EXPECT_GE(counter(*d, "ranges.bounds_seeded"), 1u);
  EXPECT_GE(counter(*d, "ranges.a2_discharged"), 1u);
}

TEST(RangeConsumers, ClampedLoopBoundWarnsWithoutRanges) {
  const auto d = analyzeRing(kClampedLoop, /*ranges_enabled=*/false);
  EXPECT_GE(countRule(*d, "A2"), 1u) << d->report().render(d->sources());
  EXPECT_EQ(counter(*d, "ranges.a2_discharged"), 0u);
  EXPECT_EQ(counter(*d, "ranges.bounds_seeded"), 0u);
}

TEST(RangeConsumers, NotEqualGuardPinsTheIndex) {
  // On the fall-through edge of `k != 3` the range meets [3, 3]; the
  // access discharges even though k itself is the full int range.
  const auto d = analyzeRing(R"(
float get(int k)
{
  if (k != 3) { return 0.0f; }
  return ring[k].v;
}
int main(void) { initRing(); sendControl(get(readInt())); return 0; }
)");
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
}

TEST(RangeConsumers, UnsignedWraparoundIsNotDischarged) {
  // k in [0, 5] but `k - 1` wraps at k == 0: the subtraction must
  // normalize to the full unsigned range, so the obligation is reported,
  // not discharged from a naive [-1, 4].
  const auto d = analyzeRing(R"(
float get(unsigned int k)
{
  if (k < 6) { return ring[k - 1].v; }
  return 0.0f;
}
int main(void) { initRing(); sendControl(get(0u)); return 0; }
)");
  EXPECT_GE(countRule(*d, "A2"), 1u) << d->report().render(d->sources());
}

TEST(RangeConsumers, SwitchDispatchBoundsTheIndex) {
  // Each case edge pins the selector; the default arm routes to a safe
  // constant. All indexed accesses stay within the 8-slot ring.
  const auto d = analyzeRing(R"(
float pick(int sel)
{
  int idx;
  switch (sel) {
  case 0: idx = 1; break;
  case 1: idx = 5; break;
  default: idx = 0; break;
  }
  return ring[idx].v;
}
int main(void) { initRing(); sendControl(pick(readInt())); return 0; }
)");
  EXPECT_EQ(countRule(*d, "A2"), 0u) << d->report().render(d->sources());
}

// ---------------------------------------------------------------------------
// Consumer 3: shm-bounds-const
// ---------------------------------------------------------------------------

const char* kTailLoop = R"(
float tail(void)
{
  float acc;
  int j;
  acc = 0.0f;
  for (j = 8; j < 11; j++) { acc = acc + ring[j].v; }
  return acc;
}
int main(void) { initRing(); sendControl(tail()); return 0; }
)";

TEST(RangeConsumers, DefiniteOutOfBoundsFlaggedAsShmBoundsConst) {
  const auto d = analyzeRing(kTailLoop);
  EXPECT_GE(countRule(*d, "A2"), 1u);
  EXPECT_EQ(countRule(*d, "shm-bounds-const"), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(counter(*d, "ranges.shm_bounds_const.violations"), 1u);
}

TEST(RangeConsumers, ShmBoundsConstAbsentWithoutRanges) {
  const auto d = analyzeRing(kTailLoop, /*ranges_enabled=*/false);
  EXPECT_GE(countRule(*d, "A2"), 1u);
  EXPECT_EQ(countRule(*d, "shm-bounds-const"), 0u);
}

TEST(RangeConsumers, InBoundsAccessNotFlagged) {
  const auto d = analyzeRing(
      "float get(void) { return ring[7].v; }\n"
      "int main(void) { initRing(); sendControl(get()); return 0; }");
  EXPECT_EQ(countRule(*d, "shm-bounds-const"), 0u)
      << d->report().render(d->sources());
}

// ---------------------------------------------------------------------------
// Degradation contract
// ---------------------------------------------------------------------------

TEST(RangeDegradation, BudgetTripDegradesToTopAndReportsNothing) {
  SafeFlowOptions o;
  o.budget.phase_steps = 10;  // trips in every analysis phase
  SafeFlowDriver d(o);
  d.addSource("ring.c", std::string(kRingPrelude) + kTailLoop);
  d.analyze();
  EXPECT_TRUE(d.degraded());
  // Degraded ranges must not produce definite-out-of-bounds findings.
  std::size_t sbc = 0;
  for (const auto& v : d.report().restriction_violations) {
    if (v.rule == "shm-bounds-const") ++sbc;
  }
  EXPECT_EQ(sbc, 0u);
  EXPECT_EQ(counter(d, "ranges.a2_discharged"), 0u);
}

// ---------------------------------------------------------------------------
// Determinism: in-process report identical with ranges on across reruns
// ---------------------------------------------------------------------------

TEST(RangeDeterminism, RepeatRunsRenderIdentically) {
  const auto d1 = analyzeRing(kClampedLoop);
  const auto d2 = analyzeRing(kClampedLoop);
  EXPECT_EQ(d1->report().render(d1->sources()),
            d2->report().render(d2->sources()));
}

}  // namespace
