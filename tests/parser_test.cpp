#include <gtest/gtest.h>

#include <string>

#include "cfront/frontend.h"

namespace {

using namespace safeflow::cfront;

/// Parses a buffer, returning the frontend for inspection. EXPECTs success
/// unless expect_ok is false.
struct Parsed {
  std::unique_ptr<Frontend> fe;
  bool ok;
};

Parsed parse(const std::string& src, bool expect_ok = true) {
  auto fe = std::make_unique<Frontend>();
  const bool ok = fe->parseBuffer("test.c", src);
  if (expect_ok) {
    EXPECT_TRUE(ok) << fe->diagnostics().render(fe->sources());
  }
  return Parsed{std::move(fe), ok};
}

TEST(Parser, GlobalVariable) {
  const auto p = parse("int x; float y = 2.5;");
  const auto& tu = p.fe->unit();
  ASSERT_EQ(tu.globals().size(), 2u);
  EXPECT_EQ(tu.globals()[0]->name(), "x");
  EXPECT_TRUE(tu.globals()[0]->type()->isInteger());
  EXPECT_EQ(tu.globals()[1]->name(), "y");
  EXPECT_TRUE(tu.globals()[1]->type()->isFloat());
  ASSERT_NE(tu.globals()[1]->init(), nullptr);
}

TEST(Parser, PointerAndArrayDeclarators) {
  const auto p = parse("int *p; double arr[10]; char **pp;");
  const auto& tu = p.fe->unit();
  ASSERT_EQ(tu.globals().size(), 3u);
  EXPECT_TRUE(tu.globals()[0]->type()->isPointer());
  ASSERT_TRUE(tu.globals()[1]->type()->isArray());
  EXPECT_EQ(static_cast<const ArrayType*>(tu.globals()[1]->type())->count(),
            10u);
  const auto* pp = tu.globals()[2]->type();
  ASSERT_TRUE(pp->isPointer());
  EXPECT_TRUE(static_cast<const PointerType*>(pp)->pointee()->isPointer());
}

TEST(Parser, MultiDimensionalArray) {
  const auto p = parse("int grid[3][4];");
  const auto* t = p.fe->unit().globals()[0]->type();
  ASSERT_TRUE(t->isArray());
  const auto* outer = static_cast<const ArrayType*>(t);
  EXPECT_EQ(outer->count(), 3u);
  ASSERT_TRUE(outer->element()->isArray());
  EXPECT_EQ(static_cast<const ArrayType*>(outer->element())->count(), 4u);
  EXPECT_EQ(t->size(), 3u * 4u * 4u);
}

TEST(Parser, StructDefinitionAndLayout) {
  const auto p = parse(
      "struct Point { char tag; double x; int y; };\n"
      "struct Point g;");
  const auto* st = p.fe->types().findStruct("Point");
  ASSERT_NE(st, nullptr);
  ASSERT_TRUE(st->isComplete());
  ASSERT_EQ(st->fields().size(), 3u);
  EXPECT_EQ(st->fields()[0].offset, 0u);
  EXPECT_EQ(st->fields()[1].offset, 8u);   // aligned to 8
  EXPECT_EQ(st->fields()[2].offset, 16u);
  EXPECT_EQ(st->size(), 24u);              // padded to alignment 8
}

TEST(Parser, TypedefResolution) {
  const auto p = parse(
      "typedef struct SHM { float control; int flag; } SHMData;\n"
      "SHMData *ptr;");
  const auto& tu = p.fe->unit();
  ASSERT_EQ(tu.globals().size(), 1u);
  const auto* t = tu.globals()[0]->type();
  ASSERT_TRUE(t->isPointer());
  EXPECT_TRUE(static_cast<const PointerType*>(t)->pointee()->isStruct());
  EXPECT_TRUE(tu.typedefs().contains("SHMData"));
}

TEST(Parser, FunctionDefinition) {
  const auto p = parse(
      "int add(int a, int b) { return a + b; }");
  const auto& tu = p.fe->unit();
  ASSERT_EQ(tu.functions().size(), 1u);
  const FunctionDecl* f = tu.functions()[0].get();
  EXPECT_EQ(f->name(), "add");
  EXPECT_TRUE(f->isDefined());
  ASSERT_EQ(f->params().size(), 2u);
  EXPECT_EQ(f->params()[0]->name(), "a");
  EXPECT_TRUE(f->functionType()->returnType()->isInteger());
}

TEST(Parser, FunctionPrototypeThenDefinition) {
  const auto p = parse(
      "float f(float x);\n"
      "float f(float x) { return x * 2.0f; }");
  const auto& tu = p.fe->unit();
  const FunctionDecl* def = tu.findFunction("f");
  ASSERT_NE(def, nullptr);
  EXPECT_TRUE(def->isDefined());
}

TEST(Parser, VoidParameterList) {
  const auto p = parse("int main(void) { return 0; }");
  const auto* f = p.fe->unit().findFunction("main");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->params().empty());
}

TEST(Parser, VariadicDeclaration) {
  const auto p = parse("extern int printf(char *fmt, ...);");
  const auto* f = p.fe->unit().findFunction("printf");
  ASSERT_NE(f, nullptr);
  EXPECT_TRUE(f->functionType()->isVariadic());
}

TEST(Parser, ControlFlowStatements) {
  const auto p = parse(
      "int f(int n) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i % 2 == 0) total += i; else total -= 1;\n"
      "  }\n"
      "  while (total > 100) { total /= 2; }\n"
      "  do { total++; } while (total < 0);\n"
      "  return total;\n"
      "}");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, SwitchStatement) {
  const auto p = parse(
      "int f(int mode) {\n"
      "  int r = 0;\n"
      "  switch (mode) {\n"
      "    case 0: r = 1; break;\n"
      "    case 1: r = 2; break;\n"
      "    default: r = 3;\n"
      "  }\n"
      "  return r;\n"
      "}");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, EnumConstantsFold) {
  const auto p = parse(
      "enum Mode { IDLE, RUN = 5, STOP };\n"
      "int x = STOP;");
  const auto* g = p.fe->unit().findGlobal("x");
  ASSERT_NE(g, nullptr);
  ASSERT_NE(g->init(), nullptr);
  ASSERT_EQ(g->init()->kind(), Expr::Kind::kIntLit);
  EXPECT_EQ(static_cast<const IntLitExpr*>(g->init())->value(), 6);
}

TEST(Parser, SizeofFolds) {
  const auto p = parse(
      "typedef struct S { double a; double b; } S;\n"
      "int n = sizeof(S);");
  const auto* g = p.fe->unit().findGlobal("n");
  ASSERT_NE(g->init(), nullptr);
  ASSERT_EQ(g->init()->kind(), Expr::Kind::kSizeof);
  EXPECT_EQ(static_cast<const SizeofExpr*>(g->init())->value(), 16u);
}

TEST(Parser, ExpressionTypes) {
  const auto p = parse(
      "float mix(int i, float f) { return i + f; }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, MemberAccessTypes) {
  const auto p = parse(
      "struct V { float x; float y; };\n"
      "float getx(struct V *v) { return v->x; }\n"
      "float gety(struct V v) { return v.y; }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, UnknownMemberIsError) {
  const auto p = parse(
      "struct V { float x; };\n"
      "float f(struct V *v) { return v->nope; }",
      /*expect_ok=*/false);
  EXPECT_FALSE(p.ok);
}

TEST(Parser, UndeclaredIdentifierIsError) {
  const auto p = parse("int f(void) { return mystery; }", false);
  EXPECT_FALSE(p.ok);
}

TEST(Parser, ImplicitFunctionDeclarationWarns) {
  const auto p = parse("int f(void) { return g(1); }");
  EXPECT_TRUE(p.ok);  // classic-C implicit declaration is a warning
  const auto& diags = p.fe->diagnostics().diagnostics();
  bool warned = false;
  for (const auto& d : diags) {
    if (d.category == "sema" &&
        d.message.find("implicit declaration") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(Parser, CastExpressions) {
  const auto p = parse(
      "typedef struct S { int a; } S;\n"
      "void *shmat(int id, void *addr, int flg);\n"
      "S *f(int id) { return (S *)shmat(id, 0, 0); }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, FunctionPointerDeclarator) {
  const auto p = parse(
      "int apply(int (*op)(int, int), int a, int b) { return op(a, b); }");
  EXPECT_TRUE(p.ok);
  const auto* f = p.fe->unit().findFunction("apply");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->params().size(), 3u);
  EXPECT_TRUE(f->params()[0]->type()->isPointer());
}

TEST(Parser, AddressOfAndDeref) {
  const auto p = parse(
      "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }\n"
      "void caller(void) { int x = 1; int y = 2; swap(&x, &y); }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, ConditionalExpression) {
  const auto p = parse("int max(int a, int b) { return a > b ? a : b; }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, CommaExpression) {
  const auto p = parse("int f(int a) { int b; b = (a++, a + 1); return b; }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, StringLiteralConcatenation) {
  const auto p = parse("char *s = \"ab\" \"cd\";");
  const auto* g = p.fe->unit().findGlobal("s");
  ASSERT_NE(g->init(), nullptr);
  ASSERT_EQ(g->init()->kind(), Expr::Kind::kStringLit);
  EXPECT_EQ(static_cast<const StringLitExpr*>(g->init())->value(), "abcd");
}

TEST(Parser, EntryAnnotationAttachesToFunction) {
  const auto p = parse(
      "typedef struct S { float c; } SHMData;\n"
      "SHMData *nc;\n"
      "float decision(SHMData *nc)\n"
      "/*** SafeFlow Annotation\n"
      "     assume(core(nc, 0, sizeof(SHMData))) ***/\n"
      "{ return nc->c; }");
  const auto* f = p.fe->unit().findFunction("decision");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->entryAnnotations().size(), 1u);
  EXPECT_NE(f->entryAnnotations()[0].text.find("assume(core(nc"),
            std::string::npos);
}

TEST(Parser, AnnotationBeforeSignatureAttaches) {
  const auto p = parse(
      "/*** SafeFlow Annotation shminit ***/\n"
      "void initComm(void) { }");
  const auto* f = p.fe->unit().findFunction("initComm");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(f->entryAnnotations().size(), 1u);
  EXPECT_EQ(f->entryAnnotations()[0].text, "shminit");
}

TEST(Parser, StatementAnnotationBecomesAnnotationStmt) {
  const auto p = parse(
      "void send(float v);\n"
      "void f(float output) {\n"
      "  /*** SafeFlow Annotation assert(safe(output)); ***/\n"
      "  send(output);\n"
      "}");
  const auto* f = p.fe->unit().findFunction("f");
  ASSERT_NE(f, nullptr);
  const auto* body = static_cast<const CompoundStmt*>(f->body());
  ASSERT_GE(body->stmts().size(), 2u);
  EXPECT_EQ(body->stmts()[0]->kind(), Stmt::Kind::kAnnotation);
}

TEST(Parser, GotoRejected) {
  const auto p = parse("void f(void) { goto end; end: ; }", false);
  EXPECT_FALSE(p.ok);
}

TEST(Parser, MultipleFilesShareTranslationUnit) {
  Frontend fe;
  ASSERT_TRUE(fe.parseBuffer("a.c", "int shared_counter;\n"));
  ASSERT_TRUE(fe.parseBuffer(
      "b.c", "extern int shared_counter;\nint get(void) { return shared_counter; }"))
      << fe.diagnostics().render(fe.sources());
  EXPECT_NE(fe.unit().findFunction("get"), nullptr);
}

TEST(Parser, TypedefSharedAcrossFiles) {
  Frontend fe;
  ASSERT_TRUE(fe.parseBuffer("a.c", "typedef struct P { float v; } P;\n"));
  ASSERT_TRUE(fe.parseBuffer("b.c", "P instance;\n"))
      << fe.diagnostics().render(fe.sources());
}

TEST(Parser, NestedStructMembers) {
  const auto p = parse(
      "struct Inner { int a; };\n"
      "struct Outer { struct Inner in; int b; };\n"
      "int f(struct Outer *o) { return o->in.a + o->b; }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, ArrayOfStructs) {
  const auto p = parse(
      "struct S { double v; };\n"
      "struct S table[8];\n"
      "double f(int i) { return table[i].v; }");
  EXPECT_TRUE(p.ok);
}

TEST(Parser, NegativeArraySizeIsError) {
  const auto p = parse("int a[-1];", false);
  EXPECT_FALSE(p.ok);
}

TEST(Parser, StaticAndExternAccepted) {
  const auto p = parse(
      "static int counter;\n"
      "extern double rate;\n"
      "static int bump(void) { return ++counter; }");
  EXPECT_TRUE(p.ok);
}

// -- panic-mode recovery ------------------------------------------------------

TEST(ParserRecovery, ThreeIndependentErrorsAllDiagnosed) {
  // Three unrelated syntax errors interleaved with three well-formed
  // functions: recovery must report every error AND keep every good
  // function, instead of dying at the first bad declaration.
  const auto p = parse(
      "int good1(void) { return 1; }\n"
      "int bad1( { return 0; }\n"               // error 1: bad param list
      "int good2(void) { return 2; }\n"
      "int bad2(void) { int x = ; return x; }\n"  // error 2: missing expr
      "int good3(void) { return 3; }\n"
      "@#! $garbage$ ~~~\n",                    // error 3: token soup
      /*expect_ok=*/false);
  EXPECT_FALSE(p.ok);
  EXPECT_GE(p.fe->diagnostics().errorCount(), 3u);

  const auto& fns = p.fe->unit().functions();
  std::size_t good = 0;
  for (const auto& fn : fns) {
    const std::string& n = fn->name();
    if ((n == "good1" || n == "good2" || n == "good3") &&
        fn->isDefined()) {
      ++good;
    }
  }
  EXPECT_EQ(good, 3u) << "well-formed functions must survive recovery";
}

TEST(ParserRecovery, BadDeclarationDoesNotPoisonNextFile) {
  // Multi-file front end: a TU with errors must leave the parser in a
  // state where the next buffer still parses cleanly.
  auto fe = std::make_unique<Frontend>();
  EXPECT_FALSE(fe->parseBuffer("broken.c", "int f( { oops"));
  EXPECT_TRUE(fe->parseBuffer("fine.c", "int g(void) { return 42; }"))
      << fe->diagnostics().render(fe->sources());
}

TEST(ParserRecovery, UnbalancedBracesTerminate) {
  const auto p = parse("int f(void) { { { return 1; }\nint g(void);",
                       /*expect_ok=*/false);
  EXPECT_FALSE(p.ok);  // diagnostics, but no hang and no crash
}

}  // namespace
