// Tests for the incremental analysis cache: the FNV-1a hasher against
// known vectors, DiskCache durability and LRU eviction, CacheManager
// key sensitivity (content, headers, flags, order, search path),
// corrupt-entry fallback, and end-to-end warm runs through the real
// supervisor (SAFEFLOW_EXE workers) including the edit-one-TU case.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "safeflow/cache_manager.h"
#include "safeflow/supervisor.h"
#include "support/cache.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::string freshDir(const std::string& leaf) {
  // Suffix with the pid: ctest runs each discovered test as its own
  // process, possibly in parallel, and fixed names would collide.
  const std::string dir = ::testing::TempDir() + "/" + leaf + "." +
                          std::to_string(::getpid());
  std::string cmd = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << contents;
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

void setMtime(const std::string& path, time_t seconds) {
  struct timespec times[2];
  times[0].tv_sec = seconds;
  times[0].tv_nsec = 0;
  times[1].tv_sec = seconds;
  times[1].tv_nsec = 0;
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0) << path;
}

TEST(Fnv1a, MatchesPublishedVectors) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(support::fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(support::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(support::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, IncrementalEqualsOneShotAndHexIsPadded) {
  support::Fnv1a h;
  h.update("foo");
  h.update("");
  h.update("bar");
  EXPECT_EQ(h.digest(), support::fnv1a("foobar"));
  EXPECT_EQ(h.hex().size(), 16u);
  EXPECT_EQ(h.hex(), "85944171f73967e8");

  // Embedded NUL bytes participate in the digest.
  support::Fnv1a with_nul;
  with_nul.update(std::string_view("a\0b", 3));
  EXPECT_NE(with_nul.digest(), support::fnv1a("ab"));
}

TEST(DiskCache, StoreLookupOverwriteRemove) {
  support::DiskCache cache({freshDir("disk_basic"), 0});
  ASSERT_TRUE(cache.ensureDir());
  EXPECT_FALSE(cache.lookup("00aa").has_value());

  EXPECT_TRUE(cache.store("00aa", "payload one").ok);
  ASSERT_TRUE(cache.lookup("00aa").has_value());
  EXPECT_EQ(*cache.lookup("00aa"), "payload one");
  EXPECT_EQ(cache.totalBytes(), std::string("payload one").size());

  // Overwrite replaces atomically; no second entry appears.
  EXPECT_TRUE(cache.store("00aa", "two").ok);
  EXPECT_EQ(*cache.lookup("00aa"), "two");
  EXPECT_EQ(cache.totalBytes(), 3u);

  cache.remove("00aa");
  EXPECT_FALSE(cache.lookup("00aa").has_value());
  EXPECT_EQ(cache.totalBytes(), 0u);
}

TEST(DiskCache, EnsureDirCreatesMissingParents) {
  const std::string root = freshDir("disk_parents");
  support::DiskCache cache({root + "/a/b/c", 0});
  std::string error;
  ASSERT_TRUE(cache.ensureDir(&error)) << error;
  struct stat st{};
  EXPECT_EQ(::stat((root + "/a/b/c").c_str(), &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
  // Idempotent.
  EXPECT_TRUE(cache.ensureDir());
}

TEST(DiskCache, EvictsOldestMtimeFirstAndSparesTheFreshWrite) {
  // Cap fits two 10-byte payloads; the third write must evict exactly
  // the entry with the oldest mtime, never the entry just written.
  support::DiskCache cache({freshDir("disk_lru"), 20});
  ASSERT_TRUE(cache.ensureDir());
  ASSERT_TRUE(cache.store("aaaa", "0123456789").ok);
  ASSERT_TRUE(cache.store("bbbb", "0123456789").ok);
  // Pin recency explicitly so the test never races the clock:
  // aaaa is old, bbbb is recent.
  setMtime(cache.entryPath("aaaa"), 1000);
  setMtime(cache.entryPath("bbbb"), 2000);

  const auto stored = cache.store("cccc", "0123456789");
  ASSERT_TRUE(stored.ok);
  EXPECT_EQ(stored.evicted, 1u);
  EXPECT_FALSE(cache.lookup("aaaa").has_value());  // LRU victim
  EXPECT_TRUE(cache.lookup("bbbb").has_value());
  EXPECT_TRUE(cache.lookup("cccc").has_value());
  EXPECT_LE(cache.totalBytes(), 20u);
}

TEST(DiskCache, LookupRefreshesRecency) {
  support::DiskCache cache({freshDir("disk_touch"), 20});
  ASSERT_TRUE(cache.ensureDir());
  ASSERT_TRUE(cache.store("aaaa", "0123456789").ok);
  ASSERT_TRUE(cache.store("bbbb", "0123456789").ok);
  setMtime(cache.entryPath("aaaa"), 1000);
  setMtime(cache.entryPath("bbbb"), 2000);
  // Touch aaaa: its mtime moves to "now", far past 2000, so bbbb
  // becomes the LRU victim.
  ASSERT_TRUE(cache.lookup("aaaa").has_value());
  const auto stored = cache.store("cccc", "0123456789");
  ASSERT_TRUE(stored.ok);
  EXPECT_EQ(stored.evicted, 1u);
  EXPECT_TRUE(cache.lookup("aaaa").has_value());
  EXPECT_FALSE(cache.lookup("bbbb").has_value());
}

TEST(DiskCache, StrayTempFilesAreIgnoredAndSweptOnceAged) {
  const std::string dir = freshDir("disk_tmp");
  support::DiskCache cache({dir, 5});
  ASSERT_TRUE(cache.ensureDir());
  // Simulate a crash mid-store: a temp file with no final entry. It is
  // never a valid entry (not counted, not served). While *fresh* it may
  // equally belong to a live concurrent store() whose rename would fail
  // if the temp vanished, so eviction must leave it alone; once it ages
  // past the grace period the next LRU pass reclaims its bytes.
  const std::string temp = dir + "/dead.tmp.12345.1";
  writeFile(temp, "torn bytes");
  EXPECT_EQ(cache.totalBytes(), 0u);  // temps never count
  EXPECT_FALSE(cache.lookup("dead").has_value());
  auto stored = cache.store("aaaa", "x");
  ASSERT_TRUE(stored.ok);
  EXPECT_EQ(stored.evicted, 0u);  // fresh temp: protected by the grace
  struct stat st{};
  EXPECT_EQ(::stat(temp.c_str(), &st), 0);  // still there

  setMtime(temp, ::time(nullptr) - 3600);  // now provably abandoned
  stored = cache.store("bbbb", "y");
  ASSERT_TRUE(stored.ok);
  EXPECT_EQ(stored.evicted, 1u);  // the swept temp
  EXPECT_NE(::stat(temp.c_str(), &st), 0);  // gone
  EXPECT_TRUE(cache.lookup("aaaa").has_value());
  EXPECT_TRUE(cache.lookup("bbbb").has_value());
}

TEST(DiskCache, SweepStrayTempsHonorsTheAgeFloor) {
  const std::string dir = freshDir("disk_sweep");
  support::DiskCache cache({dir, 0});
  ASSERT_TRUE(cache.ensureDir());
  writeFile(dir + "/young.tmp.1.1", "live writer");
  writeFile(dir + "/old.tmp.2.2", "crashed writer");
  setMtime(dir + "/old.tmp.2.2", ::time(nullptr) - 3600);
  ASSERT_TRUE(cache.store("aaaa", "entry").ok);

  EXPECT_EQ(cache.sweepStrayTemps(), 1u);
  struct stat st{};
  EXPECT_EQ(::stat((dir + "/young.tmp.1.1").c_str(), &st), 0);  // spared
  EXPECT_NE(::stat((dir + "/old.tmp.2.2").c_str(), &st), 0);    // swept
  // Real entries are never touched, whatever their age.
  EXPECT_TRUE(cache.lookup("aaaa").has_value());
  // Idempotent: nothing old remains.
  EXPECT_EQ(cache.sweepStrayTemps(), 0u);
}

TEST(DiskCache, ConcurrentMultiProcessStoresStayCoherent) {
  // Three writer processes hammer one cache dir with a small cap (so
  // eviction runs constantly) over overlapping LCG key streams, each
  // payload a pure function of its key. The atomic temp+rename
  // discipline must keep every lookup either a miss or the exact
  // payload — never torn bytes — and every store() call succeeding.
  const std::string dir = freshDir("disk_mp");
  const auto payloadFor = [](std::uint64_t key) {
    // Distinct sizes exercise the eviction totals too.
    return std::string(32 + key % 97, static_cast<char>('a' + key % 23));
  };
  const auto keyHex = [](std::uint64_t key) {
    support::Fnv1a h;
    h.update(std::to_string(key % 41));  // 41 keys; writers overlap
    return h.hex();
  };

  constexpr int kWriters = 3;
  constexpr std::uint64_t kIters = 300;
  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: cap 4 KiB forces eviction nearly every store.
      support::DiskCache cache({dir, 4096});
      if (!cache.ensureDir()) ::_exit(2);
      std::uint64_t state = 0x5afe + static_cast<std::uint64_t>(w);
      for (std::uint64_t i = 0; i < kIters; ++i) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const std::uint64_t key = state >> 17;
        if (state % 3 == 0) {
          const auto found = cache.lookup(keyHex(key));
          if (found.has_value() && *found != payloadFor(key % 41)) {
            ::_exit(3);  // torn or foreign payload: the race we fear
          }
        } else if (!cache.store(keyHex(key), payloadFor(key % 41)).ok) {
          ::_exit(4);  // a concurrent writer broke an atomic store
        }
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "writer failed (3 = torn read, 4 = failed store)";
  }

  // Whatever survived the eviction storms is well-formed.
  support::DiskCache cache({dir, 4096});
  for (std::uint64_t key = 0; key < 41; ++key) {
    const auto found = cache.lookup(keyHex(key));
    if (found.has_value()) {
      EXPECT_EQ(*found, payloadFor(key % 41));
    }
  }
}

// --- CacheManager key composition -----------------------------------

struct KeyFixture {
  std::string src_dir = freshDir("key_src");
  std::string inc_dir;
  CacheOptions options;

  KeyFixture() {
    EXPECT_EQ(std::system(("mkdir -p '" + src_dir + "'").c_str()), 0);
    inc_dir = src_dir + "/inc";
    EXPECT_EQ(std::system(("mkdir -p '" + inc_dir + "'").c_str()), 0);
    writeFile(src_dir + "/a.c",
              "#include \"shared.h\"\nint core_main(void) { return 0; }\n");
    writeFile(src_dir + "/shared.h", "int shared_value;\n");
    options.enabled = true;
    options.dir = freshDir("key_cache");
    options.include_dirs = {inc_dir};
    options.analysis_flags = {"--mode=taint"};
  }

  [[nodiscard]] std::string key() const {
    support::MetricsRegistry registry;
    CacheManager manager(options, &registry);
    return manager.keyFor({src_dir + "/a.c"});
  }
};

TEST(CacheKey, StableAcrossRepeatedComputation) {
  KeyFixture fx;
  const std::string first = fx.key();
  EXPECT_EQ(first.size(), 16u);
  EXPECT_EQ(first, fx.key());
}

TEST(CacheKey, ChangesWithTuContent) {
  KeyFixture fx;
  const std::string before = fx.key();
  writeFile(fx.src_dir + "/a.c",
            "#include \"shared.h\"\nint core_main(void) { return 1; }\n");
  EXPECT_NE(fx.key(), before);
}

TEST(CacheKey, ChangesWithIncludedHeaderContent) {
  KeyFixture fx;
  const std::string before = fx.key();
  writeFile(fx.src_dir + "/shared.h", "int shared_value; /* edited */\n");
  EXPECT_NE(fx.key(), before);
}

TEST(CacheKey, ChangesWithTransitiveHeaderContent) {
  KeyFixture fx;
  writeFile(fx.src_dir + "/shared.h",
            "#include \"nested.h\"\nint shared_value;\n");
  writeFile(fx.src_dir + "/nested.h", "int nested_value;\n");
  const std::string before = fx.key();
  writeFile(fx.src_dir + "/nested.h", "int nested_value; /* edited */\n");
  EXPECT_NE(fx.key(), before);
}

TEST(CacheKey, ChangesWithAnalysisFlags) {
  KeyFixture fx;
  const std::string before = fx.key();
  fx.options.analysis_flags = {"--mode=call-strings"};
  EXPECT_NE(fx.key(), before);
  fx.options.analysis_flags = {"--mode=taint", "--time-budget", "250ms"};
  EXPECT_NE(fx.key(), before);
}

TEST(CacheKey, ChangesWhenAnUnresolvedHeaderAppears) {
  // While `later.h` is missing the key carries an unresolved marker; the
  // header appearing must change the key (the cold result may differ).
  KeyFixture fx;
  writeFile(fx.src_dir + "/a.c",
            "#include \"later.h\"\nint core_main(void) { return 0; }\n");
  const std::string before = fx.key();
  writeFile(fx.inc_dir + "/later.h", "int later_value;\n");
  EXPECT_NE(fx.key(), before);
}

TEST(CacheKey, ChangesWithFilePathAndInputOrder) {
  // Reports embed path strings, so identical bytes under a different
  // name or a different input order must not hit.
  KeyFixture fx;
  const std::string a = fx.src_dir + "/a.c";
  const std::string b = fx.src_dir + "/b.c";
  writeFile(b, readFileOrEmpty(a));

  support::MetricsRegistry registry;
  CacheManager manager(fx.options, &registry);
  EXPECT_NE(manager.keyFor({a}), manager.keyFor({b}));
  EXPECT_NE(manager.keyFor({a, b}), manager.keyFor({b, a}));
}

TEST(CacheKey, CyclicIncludesTerminate) {
  KeyFixture fx;
  writeFile(fx.src_dir + "/x.h", "#include \"y.h\"\nint xv;\n");
  writeFile(fx.src_dir + "/y.h", "#include \"x.h\"\nint yv;\n");
  writeFile(fx.src_dir + "/a.c", "#include \"x.h\"\nint core_main(void);\n");
  EXPECT_EQ(fx.key().size(), 16u);  // no infinite recursion
}

// --- CacheManager store/lookup robustness ---------------------------

const char kMinimalReport[] =
    "{\"schema_version\": 1, \"warnings\": [], \"errors\": [],"
    " \"restriction_violations\": [], \"asserts_checked\": 0,"
    " \"data_errors\": 0, \"control_only\": 0,"
    " \"required_runtime_checks\": []}";

TEST(CacheManagerTest, StoreThenLookupReturnsTheDecodedEntry) {
  CacheOptions options;
  options.enabled = true;
  options.dir = freshDir("mgr_basic");
  support::MetricsRegistry registry;
  CacheManager manager(options, &registry);

  manager.store("deadbeefdeadbeef", kMinimalReport, 3, "some stderr\n");
  const auto hit = manager.lookup("deadbeefdeadbeef");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->exit_code, 3);
  EXPECT_EQ(hit->stderr_text, "some stderr\n");
  EXPECT_TRUE(hit->report.isObject());
  EXPECT_EQ(hit->report.memberUint("schema_version"), 1u);
  EXPECT_EQ(registry.counterValue("cache.writes"), 1u);
  EXPECT_EQ(registry.counterValue("cache.hits"), 1u);
  EXPECT_EQ(registry.counterValue("cache.misses"), 0u);
}

TEST(CacheManagerTest, TruncatedEntryIsPurgedAndCounted) {
  CacheOptions options;
  options.enabled = true;
  options.dir = freshDir("mgr_corrupt");
  support::MetricsRegistry registry;
  CacheManager manager(options, &registry);
  manager.store("deadbeefdeadbeef", kMinimalReport, 0, "");

  // Truncate the entry the way a full disk or a kill -9 mid-copy would.
  const support::DiskCache disk_view({options.dir, 0});
  ASSERT_EQ(::truncate(disk_view.entryPath("deadbeefdeadbeef").c_str(), 5),
            0);

  testing::internal::CaptureStderr();
  EXPECT_FALSE(manager.lookup("deadbeefdeadbeef").has_value());
  const std::string diag = testing::internal::GetCapturedStderr();
  EXPECT_NE(diag.find("is corrupt"), std::string::npos);
  EXPECT_NE(diag.find("falling back to cold analysis"), std::string::npos);
  EXPECT_EQ(registry.counterValue("cache.corrupt"), 1u);
  EXPECT_EQ(registry.counterValue("cache.misses"), 1u);
  // The poisoned entry was purged: the next lookup is a plain miss, not
  // another corruption report.
  testing::internal::CaptureStderr();
  EXPECT_FALSE(manager.lookup("deadbeefdeadbeef").has_value());
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  EXPECT_EQ(registry.counterValue("cache.corrupt"), 1u);
}

TEST(CacheManagerTest, WrongKeyEchoAndVersionMismatchAreCorrupt) {
  CacheOptions options;
  options.enabled = true;
  options.dir = freshDir("mgr_echo");
  support::MetricsRegistry registry;
  CacheManager manager(options, &registry);
  manager.store("aaaaaaaaaaaaaaaa", kMinimalReport, 0, "");

  // Copy the valid entry's decoded payload under a different key: the
  // storage envelope verifies fine, but the key echoed inside no longer
  // matches, so a (hash-collision-like) wrong hit is refused.
  support::DiskCache disk_view({options.dir, 0});
  const std::optional<std::string> payload =
      disk_view.lookup("aaaaaaaaaaaaaaaa");
  ASSERT_TRUE(payload.has_value());
  ASSERT_TRUE(disk_view.store("bbbbbbbbbbbbbbbb", *payload).ok);

  testing::internal::CaptureStderr();
  EXPECT_FALSE(manager.lookup("bbbbbbbbbbbbbbbb").has_value());
  EXPECT_NE(testing::internal::GetCapturedStderr().find("key echo"),
            std::string::npos);
  EXPECT_EQ(registry.counterValue("cache.corrupt"), 1u);
}

TEST(CacheManagerTest, FaultInjectionEnvDisablesTheCache) {
  // Injected faults make runs non-deterministic; caching them would
  // replay a faulted result into healthy runs.
  ASSERT_EQ(::setenv("SAFEFLOW_INJECT_FAULT", "crash@taint", 1), 0);
  CacheOptions options;
  options.enabled = true;
  options.dir = freshDir("mgr_fault");
  support::MetricsRegistry registry;
  const CacheManager manager(options, &registry);
  ASSERT_EQ(::unsetenv("SAFEFLOW_INJECT_FAULT"), 0);
  EXPECT_FALSE(manager.enabled());
}

// --- End-to-end through the real supervisor -------------------------

SupervisorOptions supervisedOptions(CacheManager* cache) {
  SupervisorOptions opts;
  opts.worker_exe = SAFEFLOW_EXE;
  opts.jobs = 4;
  opts.worker_timeout_seconds = 60.0;
  opts.cache = cache;
  return opts;
}

TEST(SupervisedCache, WarmRunHitsEveryShardAndSpawnsNoWorkers) {
  const std::vector<std::string> files = {
      kCorpus + "/ip/core/comm.c", kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/safety.c"};
  CacheOptions cache_options;
  cache_options.enabled = true;
  cache_options.dir = freshDir("sup_warm");

  std::string renders[2];
  std::uint64_t hits[2], spawned[2];
  for (int run = 0; run < 2; ++run) {
    support::MetricsRegistry registry;
    CacheManager cache(cache_options, &registry);
    Supervisor sup(supervisedOptions(&cache), &registry);
    const MergedReport merged = sup.run(files);
    EXPECT_EQ(merged.exitCode(), 0);
    renders[run] = merged.render();
    hits[run] = registry.counterValue("cache.hits");
    spawned[run] = registry.counterValue("supervisor.workers_spawned");
  }
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(spawned[0], files.size());
  EXPECT_EQ(hits[1], files.size());  // 100% warm
  EXPECT_EQ(spawned[1], 0u);        // no workers at all
  EXPECT_EQ(renders[0], renders[1]);
}

TEST(SupervisedCache, EditingOneTuMissesExactlyThatShard) {
  const std::string dir = freshDir("sup_edit");
  ASSERT_EQ(std::system(("mkdir -p '" + dir + "'").c_str()), 0);
  const std::string one = dir + "/one.c";
  const std::string two = dir + "/two.c";
  writeFile(one, "int first_unit(void) { return 1; }\n");
  writeFile(two, "int second_unit(void) { return 2; }\n");

  CacheOptions cache_options;
  cache_options.enabled = true;
  cache_options.dir = freshDir("sup_edit_cache");
  {
    support::MetricsRegistry registry;
    CacheManager cache(cache_options, &registry);
    Supervisor sup(supervisedOptions(&cache), &registry);
    (void)sup.run({one, two});
    EXPECT_EQ(registry.counterValue("cache.writes"), 2u);
  }
  writeFile(one, "int first_unit(void) { return 3; }\n");
  {
    support::MetricsRegistry registry;
    CacheManager cache(cache_options, &registry);
    Supervisor sup(supervisedOptions(&cache), &registry);
    (void)sup.run({one, two});
    EXPECT_EQ(registry.counterValue("cache.misses"), 1u);
    EXPECT_EQ(registry.counterValue("cache.hits"), 1u);
    EXPECT_EQ(registry.counterValue("supervisor.workers_spawned"), 1u);
  }
}

TEST(SupervisedCache, CorruptShardEntryFallsBackToColdAnalysis) {
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  CacheOptions cache_options;
  cache_options.enabled = true;
  cache_options.dir = freshDir("sup_corrupt");

  std::string cold_render;
  {
    support::MetricsRegistry registry;
    CacheManager cache(cache_options, &registry);
    Supervisor sup(supervisedOptions(&cache), &registry);
    cold_render = sup.run(files).render();
  }
  // Truncate the single entry on disk.
  const std::string cmd = "for f in '" + cache_options.dir +
                          "'/*.json; do truncate -s 5 \"$f\"; done";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  {
    support::MetricsRegistry registry;
    // Capture from construction: the torn entry is detected by the
    // manager's verify-on-open sweep, before any lookup reaches it.
    testing::internal::CaptureStderr();
    CacheManager cache(cache_options, &registry);
    Supervisor sup(supervisedOptions(&cache), &registry);
    const MergedReport merged = sup.run(files);
    EXPECT_NE(testing::internal::GetCapturedStderr().find("is corrupt"),
              std::string::npos);
    EXPECT_EQ(merged.render(), cold_render);  // cold fallback, same result
    EXPECT_EQ(registry.counterValue("cache.corrupt"), 1u);
    EXPECT_EQ(registry.counterValue("supervisor.workers_spawned"), 1u);
    EXPECT_EQ(registry.counterValue("cache.writes"), 1u);  // re-stored
  }
}

TEST(SupervisedCache, VersionFlagPrintsTheAnalyzerVersion) {
  const std::string cmd = std::string(SAFEFLOW_EXE) + " --version";
  FILE* pipe = ::popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char buffer[128] = {};
  ASSERT_NE(::fgets(buffer, sizeof buffer, pipe), nullptr);
  EXPECT_EQ(::pclose(pipe), 0);
  EXPECT_EQ(std::string(buffer),
            std::string("safeflow ") + kAnalyzerVersion + "\n");
}

}  // namespace
