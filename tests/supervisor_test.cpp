// Tests for the out-of-process analysis supervisor: worker exit/signal
// classification, watchdog kills, retry policy (then-succeed and
// exhausted), merge determinism across --jobs values, finding dedup,
// the shared exit-code ladder, and the JSON reader the merge rests on.
//
// These spawn the real `safeflow` binary (path injected by CMake as
// SAFEFLOW_EXE) as workers, with faults aimed via the supervisor's
// extra_env so the global test environment is never mutated.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/wait.h>
#include <unistd.h>

#include "analysis/report.h"
#include "safeflow/supervisor.h"
#include "support/json.h"
#include "support/source_manager.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::vector<std::string> ipCoreFiles() {
  return {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
}

SupervisorOptions fastOptions() {
  SupervisorOptions opts;
  opts.worker_exe = SAFEFLOW_EXE;
  opts.worker_timeout_seconds = 30.0;
  opts.backoff_base_seconds = 0.001;  // keep retry tests fast
  return opts;
}

/// Drops every line containing a wall-clock field so two documents can
/// be compared for deterministic content ("modulo wall-clock fields").
std::string stripTimes(const std::string& text) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (line.find("seconds") == std::string::npos &&
        line.find("\"gauges\"") == std::string::npos) {
      out += line;
      out += '\n';
    }
    pos = eol + 1;
  }
  return out;
}

TEST(ExitCodeLadder, FrontendErrorsBeatDegraded) {
  // The documented ladder: 1 > 2 > 3 > 0, shared by both paths.
  EXPECT_EQ(exitCodeFor(2, true, true), 1);
  EXPECT_EQ(exitCodeFor(1, false, false), 1);
  EXPECT_EQ(exitCodeFor(0, true, true), 2);   // frontend beats degraded
  EXPECT_EQ(exitCodeFor(0, true, false), 2);
  EXPECT_EQ(exitCodeFor(0, false, true), 3);
  EXPECT_EQ(exitCodeFor(0, false, false), 0);
}

TEST(Json, ParsesTheDocumentsTheToolEmits) {
  support::json::Value v;
  std::string err;
  ASSERT_TRUE(support::json::parse(
      R"({"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5e1}})", &v,
      &err))
      << err;
  EXPECT_EQ(v.memberUint("a"), 1u);
  const auto* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->array.size(), 3u);
  EXPECT_TRUE(b->array[0].boolOr(false));
  EXPECT_EQ(b->array[2].stringOr(""), "x\ny");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_EQ(v.find("c")->memberNumber("d"), -25.0);
}

TEST(Json, RejectsMalformedAndTornInput) {
  support::json::Value v;
  EXPECT_FALSE(support::json::parse("", &v));
  EXPECT_FALSE(support::json::parse("{\"a\": ", &v));
  EXPECT_FALSE(support::json::parse("{\"a\": 1} trailing", &v));
  EXPECT_FALSE(support::json::parse("{\"a\": 1e999}", &v));
  // Deep nesting must fail the depth cap, not the stack.
  std::string deep(500, '[');
  deep += std::string(500, ']');
  EXPECT_FALSE(support::json::parse(deep, &v));
}

TEST(ReportDedup, DropsRepeatedFindingsKeepsFirst) {
  support::SourceManager sm;
  analysis::SafeFlowReport report;
  analysis::UnsafeAccessWarning w;
  w.function = "f";
  w.region_name = "r";
  report.warnings = {w, w, w};
  analysis::RestrictionViolation v;
  v.rule = "A1";
  v.message = "same message";
  report.restriction_violations = {v, v};
  analysis::CriticalDependencyError e;
  e.function = "g";
  e.critical_value = "cmd";
  report.errors = {e, e};
  report.deduplicate(sm);
  EXPECT_EQ(report.warnings.size(), 1u);
  EXPECT_EQ(report.restriction_violations.size(), 1u);
  EXPECT_EQ(report.errors.size(), 1u);

  // Different content at the same location survives.
  analysis::RestrictionViolation v2 = v;
  v2.message = "different message";
  report.restriction_violations = {v, v2};
  report.deduplicate(sm);
  EXPECT_EQ(report.restriction_violations.size(), 2u);
}

TEST(Supervisor, CleanRunMatchesAcrossJobCounts) {
  const auto files = ipCoreFiles();
  std::string renders[2];
  std::string stats[2];
  const std::size_t job_counts[2] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    SupervisorOptions opts = fastOptions();
    opts.jobs = job_counts[i];
    support::MetricsRegistry registry;
    Supervisor sup(opts, &registry);
    const MergedReport merged = sup.run(files);
    EXPECT_EQ(merged.exitCode(), 0);
    EXPECT_TRUE(merged.worker_failures.empty());
    EXPECT_EQ(merged.stats.files, files.size());
    renders[i] = merged.render() +
                 merged.renderJson(merged.stats.renderJson());
    stats[i] = merged.stats.renderJson();
    EXPECT_EQ(registry.counterValue("supervisor.workers_spawned"),
              files.size());
    EXPECT_EQ(registry.counterValue("supervisor.workers_retried"), 0u);
  }
  EXPECT_EQ(stripTimes(renders[0]), stripTimes(renders[1]));
  EXPECT_EQ(stripTimes(stats[0]), stripTimes(stats[1]));
}

TEST(Supervisor, WorkerSigsegvIsClassifiedAndAttributed) {
  const auto files = ipCoreFiles();
  SupervisorOptions opts = fastOptions();
  opts.jobs = 4;
  opts.max_retries = 1;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "crash@taint"},
                    {"SAFEFLOW_INJECT_FAULT_FILE", "decision.c"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);

  ASSERT_EQ(merged.worker_failures.size(), 1u);
  EXPECT_NE(merged.worker_failures[0].file.find("decision.c"),
            std::string::npos);
  EXPECT_EQ(merged.worker_failures[0].reason, "SIGSEGV");
  EXPECT_EQ(merged.worker_failures[0].attempts, 2);  // 1 + max_retries
  ASSERT_EQ(merged.failed_files.size(), 1u);
  EXPECT_TRUE(merged.frontend_errors);
  EXPECT_EQ(merged.exitCode(), 2);
  // Every other shard was analyzed to completion.
  EXPECT_EQ(merged.stats.files, files.size() - 1);
  EXPECT_GE(registry.counterValue("supervisor.worker_crashes"), 2u);
  EXPECT_EQ(registry.counterValue("supervisor.shards_failed"), 1u);
}

TEST(Supervisor, OomEmulationIsClassifiedAsSigkill) {
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  SupervisorOptions opts = fastOptions();
  opts.max_retries = 0;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "oom@alias"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  ASSERT_EQ(merged.worker_failures.size(), 1u);
  EXPECT_EQ(merged.worker_failures[0].reason, "SIGKILL");
}

TEST(Supervisor, WatchdogKillsHangingWorker) {
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  SupervisorOptions opts = fastOptions();
  opts.max_retries = 0;
  opts.worker_timeout_seconds = 0.5;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "hang@taint"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  ASSERT_EQ(merged.worker_failures.size(), 1u);
  EXPECT_EQ(merged.worker_failures[0].reason, "timeout");
  EXPECT_EQ(registry.counterValue("supervisor.workers_killed"), 1u);
}

TEST(Supervisor, InjectedExit2WithoutReportIsNotRetried) {
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  SupervisorOptions opts = fastOptions();
  opts.max_retries = 3;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "exit2@frontend"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  ASSERT_EQ(merged.worker_failures.size(), 1u);
  EXPECT_EQ(merged.worker_failures[0].reason, "exit 2 (no report)");
  EXPECT_EQ(merged.worker_failures[0].attempts, 1);  // deterministic: no retry
  EXPECT_EQ(merged.exitCode(), 2);
}

TEST(Supervisor, RetryAfterCrashSucceeds) {
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  SupervisorOptions opts = fastOptions();
  opts.max_retries = 2;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "crash@taint"},
                    {"SAFEFLOW_INJECT_FAULT_ATTEMPTS", "1"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  EXPECT_TRUE(merged.worker_failures.empty());
  EXPECT_TRUE(merged.failed_files.empty());
  EXPECT_EQ(merged.stats.files, 1u);
  EXPECT_EQ(registry.counterValue("supervisor.workers_retried"), 1u);
  EXPECT_EQ(registry.counterValue("supervisor.workers_spawned"), 2u);
  EXPECT_GE(registry.counterValue("supervisor.backoff_waits"), 1u);
}

TEST(Supervisor, RetryExhaustedRecordsFailureWithStderr) {
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  SupervisorOptions opts = fastOptions();
  opts.max_retries = 2;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "crash@lowering"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  ASSERT_EQ(merged.worker_failures.size(), 1u);
  EXPECT_EQ(merged.worker_failures[0].attempts, 3);
  EXPECT_EQ(registry.counterValue("supervisor.workers_spawned"), 3u);
  // The captured-stderr channel and the text report both carry the loss.
  EXPECT_NE(merged.diagnostics_text.find("worker stderr"),
            std::string::npos);
  EXPECT_NE(merged.render().find("[failed]"), std::string::npos);
  EXPECT_NE(merged.renderJson({}).find("\"worker_failures\""),
            std::string::npos);
}

TEST(Supervisor, SpawnFailureIsReportedNotRetried) {
  SupervisorOptions opts = fastOptions();
  opts.worker_exe = "/definitely/not/safeflow";
  opts.max_retries = 3;
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged =
      sup.run({kCorpus + "/running_example/core.c"});
  ASSERT_EQ(merged.worker_failures.size(), 1u);
  EXPECT_EQ(merged.worker_failures[0].attempts, 1);
  EXPECT_EQ(merged.exitCode(), 2);
}

TEST(Supervisor, ParseFailureFileIsPartialNotDead) {
  // A file with a syntax error: the worker exits 2 *with* a report
  // (parser recovery), so the shard merges as [partial], not [failed].
  const std::string bad = ::testing::TempDir() + "/sup_bad.c";
  {
    FILE* f = fopen(bad.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("int main( { return 0; }\n", f);
    fclose(f);
  }
  SupervisorOptions opts = fastOptions();
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged =
      sup.run({bad, kCorpus + "/running_example/core.c"});
  EXPECT_TRUE(merged.worker_failures.empty());
  ASSERT_EQ(merged.failed_files.size(), 1u);
  EXPECT_EQ(merged.failed_files[0], bad);
  EXPECT_TRUE(merged.frontend_errors);
  EXPECT_EQ(merged.exitCode(), 2);
  EXPECT_NE(merged.render().find("[partial]"), std::string::npos);
  // The good shard still analyzed.
  EXPECT_EQ(merged.stats.files, 2u);
  ::remove(bad.c_str());
}

/// Pids whose /proc cmdline carries both `--worker` and `marker` — i.e.
/// analysis workers spawned for our uniquely-named input, regardless of
/// which supervisor process owns them. Robust against parallel ctest
/// shards, which never share the marker.
std::vector<pid_t> workerPidsFor(const std::string& marker) {
  std::vector<pid_t> pids;
  DIR* proc = ::opendir("/proc");
  if (proc == nullptr) return pids;
  while (dirent* entry = ::readdir(proc)) {
    char* end = nullptr;
    const long pid = std::strtol(entry->d_name, &end, 10);
    if (end == entry->d_name || *end != '\0') continue;
    std::ifstream in("/proc/" + std::string(entry->d_name) + "/cmdline",
                     std::ios::binary);
    std::string cmdline((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    std::replace(cmdline.begin(), cmdline.end(), '\0', ' ');
    if (cmdline.find("--worker") != std::string::npos &&
        cmdline.find(marker) != std::string::npos) {
      pids.push_back(static_cast<pid_t>(pid));
    }
  }
  ::closedir(proc);
  return pids;
}

TEST(Supervisor, ForwardedSigtermReapsWorkersAndExits143) {
  // End-to-end through the real binary: a worker hangs forever (every
  // attempt faults — no ATTEMPTS cap), the supervisor process takes a
  // SIGTERM, and the forwarding must (a) kill the hung worker rather
  // than orphan it and (b) exit promptly with the conventional
  // 128+SIGTERM after emitting the partial report.
  const std::string marker =
      "sigterm_forward_" + std::to_string(::getpid()) + ".c";
  const std::string input = ::testing::TempDir() + "/" + marker;
  {
    std::ofstream out(input, std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << "int main(void) { return 0; }\n";
  }

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("SAFEFLOW_INJECT_FAULT", "hang@taint", 1);
    std::string store[] = {SAFEFLOW_EXE, "--isolate", "--jobs", "2",
                           "--quiet",    input};
    char* argv[7] = {};
    for (int i = 0; i < 6; ++i) argv[i] = store[i].data();
    ::execv(argv[0], argv);
    ::_exit(127);
  }

  // Wait until the hung worker is actually alive before terminating.
  const auto spawn_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (workerPidsFor(marker).empty() &&
         std::chrono::steady_clock::now() < spawn_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_FALSE(workerPidsFor(marker).empty()) << "worker never spawned";

  ::kill(pid, SIGTERM);
  // Forwarding grace is 2s (SIGTERM, then SIGKILL); well under 20s even
  // on a loaded host. A miss here means the supervisor wedged.
  int status = -1;
  const auto exit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < exit_deadline) {
    if (::waitpid(pid, &status, WNOHANG) == pid) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_NE(status, -1) << "supervisor ignored SIGTERM";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);

  // The worker died with (or before) its supervisor — never orphaned.
  // A tiny settle loop absorbs the kernel's process-table lag.
  const auto orphan_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!workerPidsFor(marker).empty() &&
         std::chrono::steady_clock::now() < orphan_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(workerPidsFor(marker).empty()) << "orphaned --worker";
  ::remove(input.c_str());
}

TEST(Supervisor, NoZombiesSurviveARun) {
  SupervisorOptions opts = fastOptions();
  opts.jobs = 4;
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  (void)sup.run(ipCoreFiles());
  errno = 0;
  const pid_t reaped = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(reaped == -1 && errno == ECHILD);
}

}  // namespace
