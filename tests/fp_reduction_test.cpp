// Paper §3.4.2/§4: "False positives can be reduced by using the assume
// annotation to declare such non-core values as being safe to access
// within certain functions, only after reliably verifying this fact."
// These tests exercise exactly that workflow on a miniature of the IP
// system's control-dependence false positive.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;
using analysis::CriticalDependencyError;

const char* kPrelude = R"(
typedef struct Stat { int active; int iter; } Stat;
typedef struct Cmd { float control; int valid; } Cmd;
Stat *statShm;
Cmd *cmdShm;
extern void *shmat(int id, void *a, int f);
extern int shmget(int k, int s, int f);
extern void sendControl(float v);
extern float computeSafe(void);
/*** SafeFlow Annotation shminit ***/
void initComm(void)
{
    char *cur;
    cur = (char *) shmat(shmget(2, sizeof(Stat) + sizeof(Cmd), 0), 0, 0);
    statShm = (Stat *) cur;
    cur = cur + sizeof(Stat);
    cmdShm = (Cmd *) cur;
    /*** SafeFlow Annotation assume(shmvar(statShm, sizeof(Stat))) ***/
    /*** SafeFlow Annotation assume(shmvar(cmdShm, sizeof(Cmd))) ***/
    /*** SafeFlow Annotation assume(noncore(statShm)) ***/
    /*** SafeFlow Annotation assume(noncore(cmdShm)) ***/
}
float decision(float safe)
/*** SafeFlow Annotation assume(core(cmdShm, 0, sizeof(Cmd))) ***/
{
    if (cmdShm->valid && cmdShm->control < 5.0f
        && cmdShm->control > -5.0f) {
        return cmdShm->control;
    }
    return safe;
}
)";

std::unique_ptr<SafeFlowDriver> analyze(const std::string& body,
                                        bool ranges_enabled = true) {
  SafeFlowOptions o;
  o.ranges.enabled = ranges_enabled;
  auto d = std::make_unique<SafeFlowDriver>(o);
  d->addSource("fp.c", std::string(kPrelude) + body);
  d->analyze();
  EXPECT_FALSE(d->hasFrontendErrors())
      << d->diagnostics().render(d->sources());
  return d;
}

std::uint64_t counter(const SafeFlowDriver& d, const std::string& name) {
  for (const auto& [k, v] : d.stats().counters) {
    if (k == name) return v;
  }
  return 0;
}

TEST(FalsePositiveReduction, BaselineReportsControlDependence) {
  const auto d = analyze(R"(
int main(void)
{
    float output;
    initComm();
    if (statShm->active) {
        output = decision(computeSafe());
    } else {
        output = computeSafe();
    }
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kControl);
  EXPECT_EQ(d->report().warnings.size(), 1u);
}

TEST(FalsePositiveReduction, ExtraAssumeEliminatesTheFalsePositive) {
  // After manual review, the developer wraps the heartbeat read in a
  // verified monitoring function and annotates it — the paper's §3.4.2
  // fine-grained encapsulation.
  const auto d = analyze(R"(
int ncAlive(void)
/*** SafeFlow Annotation assume(core(statShm, 0, sizeof(Stat))) ***/
{
    int a;
    a = statShm->active;
    if (a != 0 && a != 1) { return 0; }
    return a;
}
int main(void)
{
    float output;
    initComm();
    if (ncAlive()) {
        output = decision(computeSafe());
    } else {
        output = computeSafe();
    }
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
  EXPECT_TRUE(d->report().warnings.empty());
}

TEST(FalsePositiveReduction, RestructuringAlsoWorks) {
  // The paper's alternative: "a superior design would be to restructure"
  // so the selection no longer depends on the non-core value — here the
  // decision module runs unconditionally and self-falls-back.
  const auto d = analyze(R"(
int main(void)
{
    float output;
    initComm();
    output = decision(computeSafe());
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
}

// A third FP-reduction lever (this PR): the range analysis decides
// branches whose condition is statically fixed, so a mode selector that
// is tainted but *cannot change the branch outcome* no longer makes the
// output control-dependent on non-core data.
const char* kDecidedModeBranch = R"(
int main(void)
{
    float output;
    int band;
    initComm();
    band = statShm->iter & 7;
    if (band < 16) {
        output = computeSafe();
    } else {
        output = 0.0f;
    }
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
    return 0;
}
)";

TEST(FalsePositiveReduction, DecidedBranchControlDependencePruned) {
  // band = iter & 7 is provably in [0, 7], so `band < 16` always takes
  // the true edge: the branch carries no runtime information and the
  // control dependence on the tainted band is pruned.
  const auto d = analyze(kDecidedModeBranch);
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().warnings.size(), 1u);  // the non-core read itself
  EXPECT_GE(counter(*d, "ranges.control_edges_pruned"), 1u);
}

TEST(FalsePositiveReduction, DecidedBranchStillErrorsWithoutRanges) {
  const auto d = analyze(kDecidedModeBranch, /*ranges_enabled=*/false);
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kControl);
  EXPECT_EQ(counter(*d, "ranges.control_edges_pruned"), 0u);
}

TEST(FalsePositiveReduction, UndecidedBranchIsNotPruned) {
  // Pruning must be limited to provably-decided branches: here the full
  // heartbeat value feeds the condition, the outcome is genuinely
  // unknown, and the control error must survive with ranges enabled.
  const auto d = analyze(R"(
int main(void)
{
    float output;
    initComm();
    if (statShm->active) {
        output = computeSafe();
    } else {
        output = 0.0f;
    }
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
    return 0;
}
)");
  ASSERT_EQ(d->report().errors.size(), 1u)
      << d->report().render(d->sources());
  EXPECT_EQ(d->report().errors.front().kind,
            CriticalDependencyError::Kind::kControl);
}

TEST(FalsePositiveReduction, InfeasiblePhiEdgeDoesNotPropagateTaint) {
  // The skip edge of `if (band < 8) band = band + 1;` is dead (band is
  // already in [0, 7]), so the phi merging the two definitions only sees
  // the incremented one. The pruned phi edge is counted.
  const auto d = analyze(R"(
int main(void)
{
    float output;
    int band;
    initComm();
    band = statShm->iter & 7;
    if (band < 8) {
        band = band + 1;
    }
    output = computeSafe();
    /*** SafeFlow Annotation assert(safe(output)); ***/
    sendControl(output);
    return 0;
}
)");
  EXPECT_TRUE(d->report().errors.empty())
      << d->report().render(d->sources());
  EXPECT_GE(counter(*d, "ranges.phi_edges_pruned"), 1u);
}

}  // namespace
