// Fault-injection soak for the analysis supervisor: many iterations of
// randomized fault kind / pipeline phase / target shard / job count,
// asserting the supervisor itself never crashes, failures are
// attributed to exactly the faulted file, every other shard is still
// analyzed, and the merged report stays deterministic.
//
// Iteration count defaults low so the suite stays fast locally; CI sets
// SAFEFLOW_SOAK_ITERS=200 for the long soak. The random stream is a
// seeded LCG, so a given iteration count is fully reproducible.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <sys/wait.h>

#include "safeflow/supervisor.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

/// Deterministic 64-bit LCG (MMIX constants) — no std::random so runs
/// are identical across libstdc++ versions.
struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

std::size_t soakIterations() {
  if (const char* env = std::getenv("SAFEFLOW_SOAK_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 12;
}

TEST(SupervisorSoak, RandomizedFaultsNeverTakeDownTheSupervisor) {
  const std::vector<std::string> files = {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
  // Fault menu: `hang` rides on a short watchdog so soak time stays
  // bounded; the others die instantly.
  const char* kinds[] = {"crash", "oom", "exit2", "hang"};
  const char* phases[] = {"frontend", "lowering",     "ssa",
                          "callgraph", "shm_propagation", "ranges",
                          "taint",     "report"};

  // Fault-free baseline to compare shard survival against.
  std::size_t clean_files = 0;
  {
    SupervisorOptions opts;
    opts.worker_exe = SAFEFLOW_EXE;
    support::MetricsRegistry registry;
    const MergedReport clean = Supervisor(opts, &registry).run(files);
    ASSERT_TRUE(clean.worker_failures.empty());
    clean_files = clean.stats.files;
  }

  Lcg rng(0x5afef10e);
  const std::size_t iters = soakIterations();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const char* kind = kinds[rng.below(4)];
    const char* phase = phases[rng.below(8)];
    const std::string& target = files[rng.below(files.size())];
    const bool hang = std::string(kind) == "hang";
    const bool exit2 = std::string(kind) == "exit2";

    SupervisorOptions opts;
    opts.worker_exe = SAFEFLOW_EXE;
    opts.jobs = 1 + rng.below(8);  // 1..8
    opts.backoff_base_seconds = 0.001;
    // Hangs burn the full watchdog per attempt; keep both short.
    opts.max_retries = hang ? 0 : static_cast<int>(rng.below(3));
    opts.worker_timeout_seconds = hang ? 2.0 : 30.0;
    opts.extra_env = {
        {"SAFEFLOW_INJECT_FAULT", std::string(kind) + "@" + phase},
        {"SAFEFLOW_INJECT_FAULT_FILE", target},
    };

    support::MetricsRegistry registry;
    Supervisor sup(opts, &registry);
    const MergedReport merged = sup.run(files);

    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + kind + "@" +
                 phase + " -> " + target + " jobs=" +
                 std::to_string(opts.jobs));
    // Exactly the faulted shard died, with the right attribution.
    ASSERT_EQ(merged.worker_failures.size(), 1u);
    EXPECT_EQ(merged.worker_failures[0].file, target);
    // A deterministic exit 2 is never retried; crash/oom/hang use the
    // full retry budget.
    EXPECT_EQ(merged.worker_failures[0].attempts,
              exit2 ? 1 : 1 + opts.max_retries);
    ASSERT_EQ(merged.failed_files.size(), 1u);
    EXPECT_EQ(merged.failed_files[0], target);
    // A dead worker is a frontend-class loss: exit 2 unless data errors
    // from surviving shards outrank it.
    EXPECT_TRUE(merged.frontend_errors);
    EXPECT_EQ(merged.exitCode(),
              merged.dataErrorCount() > 0 ? 1 : 2);
    // Every other shard completed its analysis.
    EXPECT_EQ(merged.stats.files, clean_files - 1);
    // The report renders without throwing and names the loss.
    EXPECT_NE(merged.render().find("[failed]"), std::string::npos);
    EXPECT_NE(merged.renderJson(merged.stats.renderJson())
                  .find("\"worker_failures\""),
              std::string::npos);
  }

  // After the whole soak: every child reaped, no zombies left behind.
  errno = 0;
  const pid_t reaped = ::waitpid(-1, nullptr, WNOHANG);
  EXPECT_TRUE(reaped == -1 && errno == ECHILD)
      << "zombie child survived the soak";
}

}  // namespace
