// Second frontend suite: brace initializers, declarator corner cases,
// and lowering of initializer lists.
#include <gtest/gtest.h>

#include <memory>

#include "cfront/frontend.h"
#include "ir/ir.h"
#include "ir/lowering.h"
#include "ir/printer.h"
#include "ir/ssa.h"

namespace {

using namespace safeflow;
using namespace safeflow::cfront;

struct Parsed {
  std::unique_ptr<Frontend> fe;
  bool ok;
};

Parsed parse(const std::string& src, bool expect_ok = true) {
  auto fe = std::make_unique<Frontend>();
  const bool ok = fe->parseBuffer("t.c", src);
  if (expect_ok) {
    EXPECT_TRUE(ok) << fe->diagnostics().render(fe->sources());
  }
  return Parsed{std::move(fe), ok};
}

TEST(InitLists, GlobalArrayInitializer) {
  const auto p = parse("float taps[4] = {0.1f, 0.2f, 0.3f, 0.4f};");
  const auto* g = p.fe->unit().findGlobal("taps");
  ASSERT_NE(g, nullptr);
  ASSERT_NE(g->init(), nullptr);
  ASSERT_EQ(g->init()->kind(), Expr::Kind::kInitList);
  EXPECT_EQ(static_cast<const InitListExpr*>(g->init())->items().size(),
            4u);
}

TEST(InitLists, LocalArrayLowersToStores) {
  const auto p = parse(
      "float sum(void) {\n"
      "  float w[3] = {1.0f, 2.0f, 3.0f};\n"
      "  return w[0] + w[1] + w[2];\n"
      "}");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run())
      << p.fe->diagnostics().render(p.fe->sources());
  const ir::Function* f = m.findFunction("sum");
  std::size_t stores = 0;
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kStore) ++stores;
    }
  }
  EXPECT_EQ(stores, 3u);
}

TEST(InitLists, StructInitializer) {
  const auto p = parse(
      "struct P { float x; float y; };\n"
      "float f(void) { struct P p = {1.5f, 2.5f}; return p.x + p.y; }");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run());
  const ir::Function* f = m.findFunction("f");
  std::size_t fieldaddrs = 0;
  for (const auto& bb : f->blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::kFieldAddr) ++fieldaddrs;
    }
  }
  EXPECT_GE(fieldaddrs, 4u);  // 2 init stores + 2 reads
}

TEST(InitLists, NestedInitializer) {
  const auto p = parse(
      "int grid[2][2] = {{1, 2}, {3, 4}};\n"
      "int f(void) { return grid[1][0]; }");
  EXPECT_TRUE(p.ok);
}

TEST(InitLists, TrailingCommaAccepted) {
  const auto p = parse("int a[2] = {1, 2,};");
  EXPECT_TRUE(p.ok);
}

TEST(InitLists, EmptyBracesAccepted) {
  const auto p = parse("int f(void) { int a[4] = {}; return a[0]; }");
  EXPECT_TRUE(p.ok);
}

TEST(InitLists, ScalarBraceInit) {
  const auto p = parse("int f(void) { int x = {7}; return x; }");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run());
  ir::promoteModuleToSsa(m);
  EXPECT_EQ(ir::verifySsa(*m.findFunction("f")), "");
}

// ---------------------------------------------------------------------------
// Declarators and misc
// ---------------------------------------------------------------------------

TEST(Declarators, MultipleDeclaratorsPerLine) {
  const auto p = parse("int a, b, c;");
  EXPECT_NE(p.fe->unit().findGlobal("a"), nullptr);
  EXPECT_NE(p.fe->unit().findGlobal("b"), nullptr);
  EXPECT_NE(p.fe->unit().findGlobal("c"), nullptr);
}

TEST(Declarators, MixedPointersPerLine) {
  const auto p = parse("int *a, b;");
  EXPECT_TRUE(p.fe->unit().findGlobal("a")->type()->isPointer());
  EXPECT_TRUE(p.fe->unit().findGlobal("b")->type()->isInteger());
}

TEST(Declarators, UnsignedVariants) {
  const auto p = parse(
      "unsigned int u1; unsigned u2; unsigned char uc; unsigned long ul;");
  EXPECT_EQ(p.fe->unit().findGlobal("u1")->type()->size(), 4u);
  EXPECT_EQ(p.fe->unit().findGlobal("uc")->type()->size(), 1u);
  EXPECT_EQ(p.fe->unit().findGlobal("ul")->type()->size(), 8u);
}

TEST(Declarators, ShortAndLong) {
  const auto p = parse("short s; long l; long long ll;");
  EXPECT_EQ(p.fe->unit().findGlobal("s")->type()->size(), 2u);
  EXPECT_EQ(p.fe->unit().findGlobal("l")->type()->size(), 8u);
  EXPECT_EQ(p.fe->unit().findGlobal("ll")->type()->size(), 8u);
}

TEST(Declarators, ConstVolatileIgnoredButAccepted) {
  const auto p = parse("const int k = 5; volatile float v;");
  EXPECT_TRUE(p.ok);
}

TEST(Declarators, SelfReferentialStruct) {
  const auto p = parse(
      "struct Node { int value; struct Node *next; };\n"
      "int sum(struct Node *head) {\n"
      "  int total = 0;\n"
      "  while (head) { total += head->value; head = head->next; }\n"
      "  return total;\n"
      "}");
  EXPECT_TRUE(p.ok);
}

TEST(Declarators, UnionMembersOverlapAtOffsetZero) {
  const auto p = parse(
      "union U { int i; float f; double d; };\n"
      "union U g;");
  ASSERT_TRUE(p.ok);
  const auto* g = p.fe->unit().findGlobal("g");
  ASSERT_TRUE(g->type()->isStruct());
  const auto* u = static_cast<const StructType*>(g->type());
  EXPECT_TRUE(u->isUnion());
  ASSERT_EQ(u->fields().size(), 3u);
  for (const auto& f : u->fields()) EXPECT_EQ(f.offset, 0u);
  // Size is the widest member, alignment the strictest.
  EXPECT_EQ(u->size(), 8u);
  EXPECT_EQ(u->alignment(), 8u);
}

TEST(ConstExpr, MacroArithmeticInArrayBound) {
  const auto p = parse(
      "#define N 4\n"
      "int table[N * 2 + 1];");
  const auto* g = p.fe->unit().findGlobal("table");
  ASSERT_TRUE(g->type()->isArray());
  EXPECT_EQ(static_cast<const ArrayType*>(g->type())->count(), 9u);
}

TEST(ConstExpr, SizeofInArrayBound) {
  const auto p = parse(
      "struct S { double a; };\n"
      "char raw[sizeof(struct S) * 2];");
  const auto* g = p.fe->unit().findGlobal("raw");
  EXPECT_EQ(static_cast<const ArrayType*>(g->type())->count(), 16u);
}

TEST(ConstExpr, TernaryInCaseLabelRejectedGracefully) {
  // Conditional expressions are not folded; must report, not crash.
  const auto p = parse(
      "int f(int m, int k) {\n"
      "  switch (m) { case 1: return k; }\n"
      "  return 0;\n"
      "}");
  EXPECT_TRUE(p.ok);
}

TEST(Lowering2, DoWhileSsaValid) {
  const auto p = parse(
      "int f(int n) { int i = 0; do { i++; } while (i < n); return i; }");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run());
  ir::promoteModuleToSsa(m);
  EXPECT_EQ(ir::verifySsa(*m.findFunction("f")), "");
}

TEST(Lowering2, NestedLoopsSsaValid) {
  const auto p = parse(
      "int f(int n) {\n"
      "  int total = 0;\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    for (int j = 0; j < i; j++) {\n"
      "      if (j % 2) { total += j; } else { total -= 1; }\n"
      "      if (total > 1000) { break; }\n"
      "    }\n"
      "    if (total < -1000) { continue; }\n"
      "    total += i;\n"
      "  }\n"
      "  return total;\n"
      "}");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run());
  ir::promoteModuleToSsa(m);
  EXPECT_EQ(ir::verifySsa(*m.findFunction("f")), "");
}

TEST(Lowering2, CompoundAssignOnPointerDeref) {
  const auto p = parse(
      "void bump(float *p, float dv) { *p += dv; }");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run());
}

TEST(Lowering2, StringLiteralAsCallArgument) {
  const auto p = parse(
      "extern int printf(char *fmt, ...);\n"
      "void hello(void) { printf(\"hello %d\\n\", 42); }");
  ir::Module m(p.fe->types());
  ir::Lowering lowering(p.fe->unit(), m, p.fe->diagnostics());
  ASSERT_TRUE(lowering.run());
}

// Parameterized SSA sweep: every generated diamond/loop mix must verify.
class SsaSweep : public ::testing::TestWithParam<int> {};

TEST_P(SsaSweep, GeneratedFunctionsVerify) {
  const int n = GetParam();
  std::string body = "int f(int x) {\n  int a = x;\n";
  for (int i = 0; i < n; ++i) {
    body += "  if (a % " + std::to_string(i + 2) + ") { a += " +
            std::to_string(i) + "; } else { a -= 1; }\n";
    body += "  while (a > " + std::to_string(100 * (i + 1)) +
            ") { a /= 2; }\n";
  }
  body += "  return a;\n}\n";
  auto fe = std::make_unique<Frontend>();
  ASSERT_TRUE(fe->parseBuffer("gen.c", body));
  ir::Module m(fe->types());
  ir::Lowering lowering(fe->unit(), m, fe->diagnostics());
  ASSERT_TRUE(lowering.run());
  ir::promoteModuleToSsa(m);
  EXPECT_EQ(ir::verifySsa(*m.findFunction("f")), "");
}

INSTANTIATE_TEST_SUITE_P(Depths, SsaSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
