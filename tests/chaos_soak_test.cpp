// I/O chaos soak (DESIGN.md §15): randomized rounds composing
// SAFEFLOW_INJECT_IO syscall faults with SAFEFLOW_INJECT_FAULT process
// faults and SIGKILL-restart cycles, asserting the three invariants the
// robustness tier promises:
//   1. no wrong report — every surviving run's stdout is byte-identical
//      to the fault-free reference (or attributes the loss explicitly);
//   2. no corrupt cache entry is ever served — a faulted store degrades
//      to a miss, and the next clean run through the same cache dir
//      still matches the reference;
//   3. resume never repeats a finished shard — after a SIGKILL, the
//      --resume rerun replays exactly the journaled shards and spawns
//      workers only for the rest.
//
// Iteration count defaults low so the suite stays fast locally; the CI
// chaos job sets SAFEFLOW_CHAOS_ITERS=100 (3 tests x 100 = 300 rounds).
// The random stream is a seeded LCG, so a failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "support/subprocess.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

struct Lcg {
  std::uint64_t state;
  explicit Lcg(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 17;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

std::size_t chaosIterations() {
  if (const char* env = std::getenv("SAFEFLOW_CHAOS_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return 6;
}

std::vector<std::string> soakFiles() {
  return {
      kCorpus + "/ip/core/comm.c",
      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",
      kCorpus + "/ip/core/safety.c",
  };
}

std::string freshDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "/" + leaf + "." +
                          std::to_string(::getpid());
  std::string cmd = "rm -rf '" + dir + "' && mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

std::string readFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

support::SubprocessResult runCli(
    const std::vector<std::string>& args,
    const std::vector<std::pair<std::string, std::string>>& env = {},
    double timeout_seconds = 120.0) {
  std::vector<std::string> argv = {SAFEFLOW_EXE};
  argv.insert(argv.end(), args.begin(), args.end());
  support::SubprocessOptions opts;
  opts.timeout_seconds = timeout_seconds;
  opts.extra_env = env;
  return support::runSubprocess(argv, opts);
}

std::vector<std::string> supervisedArgv(
    const std::vector<std::string>& files, std::size_t jobs,
    const std::vector<std::string>& extra) {
  std::vector<std::string> argv = {"--isolate", "--jobs",
                                   std::to_string(jobs), "-I",
                                   kCorpus + "/ip/common"};
  argv.insert(argv.end(), extra.begin(), extra.end());
  argv.insert(argv.end(), files.begin(), files.end());
  return argv;
}

/// Replayable complete records in a run journal: newline-terminated
/// lines carrying a "shard" member (the header carries "shards", which
/// does not match).
std::size_t journaledShards(const std::string& path) {
  const std::string text = readFileOrEmpty(path);
  std::size_t count = 0;
  std::size_t pos = 0;
  while (true) {
    const std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) break;  // torn tail (if any) ignored
    const std::string line = text.substr(pos, eol - pos);
    if (line.find("\"shard\":") != std::string::npos) ++count;
    pos = eol + 1;
  }
  return count;
}

std::uint64_t promCounter(const std::string& text, const std::string& name) {
  // Anchor at line start so the "# TYPE <name> counter" comment that
  // precedes every sample line cannot shadow the sample itself.
  const std::string needle = name + " ";
  std::size_t pos = text.find(needle);
  while (pos != std::string::npos && pos != 0 && text[pos - 1] != '\n') {
    pos = text.find(needle, pos + needle.size());
  }
  if (pos == std::string::npos) return ~0ull;
  return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
}

// Invariants 1 + 2: syscall faults against the cache tier never change
// the report and never leave an entry a later run would wrongly serve.
TEST(ChaosSoak, CacheFaultsNeverCorruptTheReportOrTheCache) {
  const std::vector<std::string> files = soakFiles();
  const std::string cache_dir = freshDir("chaos_cache");

  // Fault-free reference bytes (cold, cache off).
  const auto reference =
      runCli(supervisedArgv(files, 2, {"--no-cache"}));
  ASSERT_EQ(reference.status, support::SubprocessResult::Status::kExited)
      << reference.spawn_error;

  const char* kinds[] = {"enospc", "eio", "short_write", "torn_rename",
                         "fsync_fail"};
  Lcg rng(0xc4a05001);
  const std::size_t iters = chaosIterations();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const char* kind = kinds[rng.below(5)];
    const std::size_t nth = 1 + rng.below(files.size());
    const std::size_t jobs = 1 + rng.below(4);
    const std::string spec =
        std::string(kind) + "@cache.store:" + std::to_string(nth);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + spec +
                 " jobs=" + std::to_string(jobs));

    // Faulted run: some store op fails (or tears its entry) mid-run.
    const auto faulted =
        runCli(supervisedArgv(files, jobs, {"--cache-dir", cache_dir}),
               {{"SAFEFLOW_INJECT_IO", spec}});
    ASSERT_EQ(faulted.status, support::SubprocessResult::Status::kExited);
    // Invariant 1: the report never changes — cache trouble degrades
    // to cold analysis, not to different findings.
    EXPECT_EQ(faulted.out_text, reference.out_text);
    EXPECT_EQ(faulted.exit_code, reference.exit_code);

    // Invariant 2: a clean run through the same (possibly torn) cache
    // dir still matches: torn entries are detected and purged, never
    // served.
    const auto clean =
        runCli(supervisedArgv(files, jobs, {"--cache-dir", cache_dir}));
    ASSERT_EQ(clean.status, support::SubprocessResult::Status::kExited);
    EXPECT_EQ(clean.out_text, reference.out_text);
    EXPECT_EQ(clean.exit_code, reference.exit_code);
  }
}

// Invariant 1 under composition: a syscall fault on an export plus a
// process fault in a worker. The run must attribute the dead shard,
// fail the export loudly (no truncated artifact), and leave the next
// clean run byte-identical to the reference.
TEST(ChaosSoak, ComposedIoAndProcessFaultsDegradeLoudly) {
  const std::vector<std::string> files = soakFiles();
  const std::string dir = freshDir("chaos_composed");

  const auto reference =
      runCli(supervisedArgv(files, 2, {"--no-cache"}));
  ASSERT_EQ(reference.status, support::SubprocessResult::Status::kExited);

  const char* phases[] = {"frontend", "ssa", "taint", "report"};
  Lcg rng(0xc4a05002);
  const std::size_t iters = chaosIterations();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::string& target = files[rng.below(files.size())];
    const char* phase = phases[rng.below(4)];
    const std::size_t jobs = 1 + rng.below(4);
    const std::string metrics_path =
        dir + "/m" + std::to_string(iter) + ".prom";
    SCOPED_TRACE("iter " + std::to_string(iter) + ": crash@" + phase +
                 " -> " + target + " + enospc@metrics.out");

    // Process fault alone: the dead worker is named, never silently
    // absorbed, and the loss is a frontend-class exit (2) unless data
    // errors from surviving shards outrank it (1).
    const auto crashed = runCli(
        supervisedArgv(files, jobs, {"--no-cache"}),
        {{"SAFEFLOW_INJECT_FAULT", std::string("crash@") + phase},
         {"SAFEFLOW_INJECT_FAULT_FILE", target}});
    ASSERT_EQ(crashed.status, support::SubprocessResult::Status::kExited);
    EXPECT_NE(crashed.out_text.find("[failed]"), std::string::npos)
        << crashed.out_text;
    EXPECT_NE(crashed.out_text.find(target), std::string::npos);
    EXPECT_TRUE(crashed.exit_code == 1 || crashed.exit_code == 2)
        << crashed.exit_code;

    // Both fault layers at once: the failed export is diagnosed with a
    // classified exit and leaves no truncated artifact, no matter what
    // the workers were doing at the time.
    const auto faulted = runCli(
        supervisedArgv(files, jobs,
                       {"--no-cache", "--metrics-out", metrics_path}),
        {{"SAFEFLOW_INJECT_IO", "enospc@metrics.out"},
         {"SAFEFLOW_INJECT_FAULT", std::string("crash@") + phase},
         {"SAFEFLOW_INJECT_FAULT_FILE", target}});
    ASSERT_EQ(faulted.status, support::SubprocessResult::Status::kExited);
    EXPECT_EQ(faulted.exit_code, 2);
    EXPECT_NE(faulted.err_text.find("cannot write"), std::string::npos)
        << faulted.err_text;
    EXPECT_NE(::access(metrics_path.c_str(), F_OK), 0);

    // Chaos over: the same inputs still produce the reference bytes.
    const auto clean = runCli(supervisedArgv(files, jobs, {"--no-cache"}));
    ASSERT_EQ(clean.status, support::SubprocessResult::Status::kExited);
    EXPECT_EQ(clean.out_text, reference.out_text);
    EXPECT_EQ(clean.exit_code, reference.exit_code);
  }
}

// Invariant 3: SIGKILL a journaled run mid-flight, resume it, and the
// rerun replays exactly the journaled shards (never re-spawning one)
// while producing the byte-identical merged report.
TEST(ChaosSoak, KillAndResumeNeverRepeatsAFinishedShard) {
  const std::vector<std::string> files = soakFiles();
  const std::string dir = freshDir("chaos_resume");

  const auto reference =
      runCli(supervisedArgv(files, 2, {"--no-cache"}));
  ASSERT_EQ(reference.status, support::SubprocessResult::Status::kExited);

  Lcg rng(0xc4a05003);
  const std::size_t iters = chaosIterations();
  for (std::size_t iter = 0; iter < iters; ++iter) {
    const std::string journal =
        dir + "/run" + std::to_string(iter) + ".ndjson";
    const std::string metrics_path =
        dir + "/m" + std::to_string(iter) + ".prom";
    const std::size_t jobs = 1 + rng.below(4);
    // A deadline somewhere inside the run's lifetime; runSubprocess
    // SIGKILLs at the deadline, exactly like a crashed host would.
    const double kill_after = 0.02 + 0.02 * static_cast<double>(
                                               rng.below(15));
    SCOPED_TRACE("iter " + std::to_string(iter) + ": jobs=" +
                 std::to_string(jobs) + " kill_after=" +
                 std::to_string(kill_after));

    const auto killed = runCli(
        supervisedArgv(files, jobs, {"--no-cache", "--resume", journal}),
        {}, kill_after);
    // Either the watchdog SIGKILLed it mid-run or it beat the deadline;
    // both are valid rounds (the journal then holds 0..N records).
    ASSERT_TRUE(killed.status ==
                    support::SubprocessResult::Status::kTimedOut ||
                killed.status == support::SubprocessResult::Status::kExited)
        << killed.spawn_error;
    const std::size_t finished = journaledShards(journal);
    ASSERT_LE(finished, files.size());

    const auto resumed = runCli(supervisedArgv(
        files, jobs,
        {"--no-cache", "--resume", journal, "--metrics-out",
         metrics_path}));
    ASSERT_EQ(resumed.status, support::SubprocessResult::Status::kExited);

    // Byte-identical merged report, and exactly the journaled shards
    // were replayed: workers were spawned only for the remainder.
    EXPECT_EQ(resumed.out_text, reference.out_text);
    EXPECT_EQ(resumed.exit_code, reference.exit_code);
    const std::string prom = readFileOrEmpty(metrics_path);
    EXPECT_EQ(
        promCounter(prom,
                    "safeflow_supervisor_shards_resumed_skipped_total"),
        finished)
        << prom;
    EXPECT_EQ(promCounter(prom, "safeflow_supervisor_workers_spawned_total"),
              files.size() - finished)
        << prom;
  }
}

}  // namespace
