// Observability layer tests: MetricsRegistry semantics, TraceCollector
// span nesting and Chrome-trace serialization, observer plumbing, and the
// driver-level guarantee that every pipeline phase shows up in the trace
// and the stats breakdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "safeflow/driver.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;
using support::MetricsRegistry;
using support::TraceCollector;

// -- minimal JSON well-formedness checker -----------------------------------
// Recursive-descent validator (values only, no DOM): enough to prove the
// exported trace/stats documents parse back.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// -- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, CounterSemantics) {
  MetricsRegistry registry;
  registry.counter("a").add();
  registry.counter("a").add(4);
  registry.counter("b").add(2);
  EXPECT_EQ(registry.counterValue("a"), 5u);
  EXPECT_EQ(registry.counterValue("b"), 2u);
  EXPECT_EQ(registry.counterValue("missing"), 0u);
}

TEST(MetricsRegistry, CounterReferencesAreStable) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& a = registry.counter("a");
  // Interning more names must not move existing counters.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler." + std::to_string(i)).add();
  }
  a.add(7);
  EXPECT_EQ(registry.counterValue("a"), 7u);
}

TEST(MetricsRegistry, GaugeOverwrites) {
  MetricsRegistry registry;
  registry.gauge("g").set(1.5);
  registry.gauge("g").set(-3.0);
  EXPECT_DOUBLE_EQ(registry.gaugeValue("g"), -3.0);
  EXPECT_DOUBLE_EQ(registry.gaugeValue("missing"), 0.0);
}

TEST(MetricsRegistry, DurationHistogram) {
  MetricsRegistry registry;
  MetricsRegistry::DurationStat& d = registry.duration("d");
  d.record(0.010);
  d.record(0.002);
  d.record(0.030);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_NEAR(d.totalSeconds(), 0.042, 1e-12);
  EXPECT_NEAR(d.minSeconds(), 0.002, 1e-12);
  EXPECT_NEAR(d.maxSeconds(), 0.030, 1e-12);
  const auto buckets = d.buckets();
  std::uint64_t in_buckets = 0;
  for (const std::uint64_t b : buckets) in_buckets += b;
  EXPECT_EQ(in_buckets, 3u);
  EXPECT_EQ(registry.durationCount("d"), 3u);
  EXPECT_EQ(registry.durationCount("missing"), 0u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("z.last").add();
  registry.counter("a.first").add();
  registry.counter("m.middle").add();
  registry.gauge("beta").set(1);
  registry.gauge("alpha").set(2);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  ASSERT_EQ(snap.gauges.size(), 2u);
  EXPECT_EQ(snap.gauges[0].first, "alpha");
}

TEST(MetricsRegistry, ClearDropsEverything) {
  MetricsRegistry registry;
  registry.counter("c").add();
  registry.gauge("g").set(1);
  registry.duration("d").record(0.001);
  registry.clear();
  const auto snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.durations.empty());
}

// -- TraceCollector ---------------------------------------------------------

TEST(TraceCollector, NestedSpansBalanceAndParent) {
  TraceCollector trace;
  const std::size_t outer = trace.beginSpan("outer");
  const std::size_t inner = trace.beginSpan("inner");
  EXPECT_EQ(trace.openSpanCount(), 2u);
  trace.endSpan(inner);
  trace.endSpan(outer);
  EXPECT_EQ(trace.openSpanCount(), 0u);

  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_GE(spans[0].dur_us, spans[1].dur_us);
}

TEST(TraceCollector, EndingParentClosesOpenChildren) {
  TraceCollector trace;
  const std::size_t outer = trace.beginSpan("outer");
  (void)trace.beginSpan("leaked-child");
  trace.endSpan(outer);  // early return in the instrumented code
  EXPECT_EQ(trace.openSpanCount(), 0u);
}

TEST(TraceCollector, ChromeTraceJsonIsWellFormed) {
  TraceCollector trace;
  const std::size_t outer = trace.beginSpan("pipeline");
  trace.setArg(outer, "file", "core \"quoted\".c");
  const std::size_t inner = trace.beginSpan("parse");
  trace.endSpan(inner);
  trace.endSpan(outer);

  const std::string json = trace.toChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(TraceCollector, SelfTimeTableListsEverySpanName) {
  TraceCollector trace;
  const std::size_t outer = trace.beginSpan("outer");
  const std::size_t inner = trace.beginSpan("inner");
  trace.endSpan(inner);
  trace.endSpan(outer);
  const std::string table = trace.selfTimeTable();
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("inner"), std::string::npos);
}

// -- observer plumbing ------------------------------------------------------

TEST(Observer, MacrosNoOpWithoutObserver) {
  ASSERT_EQ(support::currentObserver(), nullptr);
  SAFEFLOW_COUNT("nobody.listening");  // must not crash
  SAFEFLOW_GAUGE("nobody.gauge", 1.0);
  EXPECT_EQ(support::counterHandle("nobody.listening"), nullptr);
}

TEST(Observer, ScopedObserverInstallsAndRestores) {
  MetricsRegistry registry;
  support::PipelineObserver obs{&registry, nullptr};
  {
    const support::ScopedObserver install(&obs);
    EXPECT_EQ(support::currentObserver(), &obs);
    SAFEFLOW_COUNT("seen");
    {
      const support::ScopedObserver suppress(nullptr);
      SAFEFLOW_COUNT("not.seen");
    }
    SAFEFLOW_COUNT("seen");
  }
  EXPECT_EQ(support::currentObserver(), nullptr);
  EXPECT_EQ(registry.counterValue("seen"), 2u);
  EXPECT_EQ(registry.counterValue("not.seen"), 0u);
}

TEST(Observer, ScopedSpanRecordsIntoCurrentTrace) {
  TraceCollector trace;
  support::PipelineObserver obs{nullptr, &trace};
  {
    const support::ScopedObserver install(&obs);
    support::ScopedSpan span("scoped");
    span.arg("k", "v");
  }
  ASSERT_EQ(trace.spanCount(), 1u);
  EXPECT_EQ(trace.openSpanCount(), 0u);
  EXPECT_EQ(trace.spans()[0].name, "scoped");
  ASSERT_EQ(trace.spans()[0].args.size(), 1u);
  EXPECT_EQ(trace.spans()[0].args[0].first, "k");
}

// -- driver-level pipeline coverage -----------------------------------------

constexpr const char* kShmProgram = R"(
struct state { int mode; float speed; };
struct state *cell;
void sink(float v);
int shmat(int id, int addr, int flags);

void init(void)
{
    cell = (struct state *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(struct state))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}

float helper(float x)
{
    return x * 2.0f;
}

int main(void)
{
    float out;
    init();
    out = helper(cell->speed);
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)";

TEST(DriverObservability, EveryPhaseAppearsExactlyOnceAsSpan) {
  SafeFlowOptions options;
  options.collect_trace = true;
  SafeFlowDriver driver(options);
  ASSERT_TRUE(driver.addSource("core.c", kShmProgram));
  driver.analyze();

  ASSERT_NE(driver.trace(), nullptr);
  EXPECT_EQ(driver.trace()->openSpanCount(), 0u);
  const auto spans = driver.trace()->spans();

  const auto count = [&spans](std::string_view name) {
    return std::count_if(spans.begin(), spans.end(),
                         [name](const TraceCollector::Span& s) {
                           return s.name == name;
                         });
  };
  EXPECT_EQ(count("safeflow.pipeline"), 1);
  for (const char* phase :
       {"phase.frontend", "phase.lowering", "phase.ssa", "phase.shm_regions",
        "phase.callgraph", "phase.shm_propagation", "phase.restrictions",
        "phase.alias", "phase.taint", "phase.report"}) {
    EXPECT_EQ(count(phase), 1) << phase;
  }

  // Phase spans are children of the root pipeline span.
  for (const auto& span : spans) {
    if (span.name.rfind("phase.", 0) == 0) {
      EXPECT_EQ(span.parent, 0) << span.name;
    }
  }

  const std::string json = driver.trace()->toChromeTraceJson();
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(DriverObservability, StatsBreakdownCoversThePipeline) {
  SafeFlowOptions options;
  options.collect_trace = true;
  SafeFlowDriver driver(options);
  ASSERT_TRUE(driver.addSource("core.c", kShmProgram));
  driver.analyze();

  const SafeFlowStats& stats = driver.stats();
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_FALSE(stats.phase_seconds.empty());

  double phase_sum = 0.0;
  for (const auto& [name, seconds] : stats.phase_seconds) {
    EXPECT_GE(seconds, 0.0) << name;
    phase_sum += seconds;
  }
  // The per-phase breakdown accounts for the bulk of the root span: the
  // phases cover everything except cheap glue in the driver.
  const auto spans = driver.trace()->spans();
  ASSERT_FALSE(spans.empty());
  const double root_seconds = spans[0].dur_us / 1e6;
  EXPECT_GT(phase_sum, 0.0);
  EXPECT_LE(phase_sum, root_seconds * 1.20);
  EXPECT_GE(phase_sum, root_seconds * 0.50);

  // Registry counters surfaced in the stats snapshot.
  EXPECT_EQ(driver.metrics().counterValue("taint.body_analyses"),
            stats.taint_body_analyses);
  const auto has_counter = [&stats](std::string_view name) {
    return std::any_of(stats.counters.begin(), stats.counters.end(),
                       [name](const auto& kv) { return kv.first == name; });
  };
  EXPECT_TRUE(has_counter("frontend.files"));
  EXPECT_TRUE(has_counter("lowering.functions"));
  EXPECT_TRUE(has_counter("taint.body_analyses"));
}

TEST(DriverObservability, StatsJsonIsWellFormedSnakeCase) {
  SafeFlowDriver driver;
  ASSERT_TRUE(driver.addSource("core.c", kShmProgram));
  driver.analyze();

  const std::string json = driver.stats().renderJson();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"analysis_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  // snake_case only: no camelCase keys.
  EXPECT_EQ(json.find("\"analysisSeconds\""), std::string::npos);

  const std::string table = driver.stats().renderTable();
  EXPECT_NE(table.find("phase breakdown"), std::string::npos);
  EXPECT_NE(table.find("taint"), std::string::npos);
}

TEST(DriverObservability, ReportJsonEmbedsStatsWithSharedSchema) {
  SafeFlowDriver driver;
  ASSERT_TRUE(driver.addSource("core.c", kShmProgram));
  const auto& report = driver.analyze();

  const std::string json =
      report.renderJson(driver.sources(), driver.stats().renderJson());
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"stats\""), std::string::npos);
  EXPECT_NE(json.find("\"total_seconds\""), std::string::npos);

  // Without the stats object the report stays valid and carries its own
  // schema_version (the report schema, still v1).
  const std::string bare = report.renderJson(driver.sources());
  EXPECT_TRUE(JsonChecker(bare).valid()) << bare;
  EXPECT_NE(bare.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_EQ(bare.find("\"stats\""), std::string::npos);
}

TEST(DriverObservability, TracingOffByDefault) {
  SafeFlowDriver driver;
  ASSERT_TRUE(driver.addSource("core.c", kShmProgram));
  driver.analyze();
  EXPECT_EQ(driver.trace(), nullptr);
  // Counters are still collected.
  EXPECT_GT(driver.metrics().counterValue("frontend.files"), 0u);
}

}  // namespace
