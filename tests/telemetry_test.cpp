// Telemetry v2 tests (DESIGN.md §13): duration-percentile digests, the
// crash flight recorder (ring semantics, signal-safe dump format, the
// supervisor-side parser), structured-log level parsing, the
// per-stream stderr capture cap, Prometheus exposition, stats schema
// v2 (shards / resource / durations), and end-to-end cross-process
// trace stitching — one Chrome-trace timeline from a supervised run
// with one lane per live worker, re-based onto the supervisor's clock.
//
// The e2e tests spawn the real `safeflow` binary (SAFEFLOW_EXE) as
// workers, aiming faults via extra_env like supervisor_test.cpp does.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include "safeflow/cache_manager.h"
#include "safeflow/driver.h"
#include "safeflow/supervisor.h"
#include "support/flight_recorder.h"
#include "support/json.h"
#include "support/log.h"
#include "support/metrics.h"
#include "support/subprocess.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::vector<std::string> ipCoreFiles() {
  return {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
}

SupervisorOptions fastOptions() {
  SupervisorOptions opts;
  opts.worker_exe = SAFEFLOW_EXE;
  opts.worker_timeout_seconds = 30.0;
  opts.backoff_base_seconds = 0.001;
  opts.worker_args = {"-I", kCorpus + "/ip/common"};
  return opts;
}

// -- duration percentiles ---------------------------------------------------

TEST(TelemetryPercentiles, OrderedAndClampedToObservedRange) {
  support::MetricsRegistry registry;
  support::MetricsRegistry::DurationStat& d = registry.duration("d");
  for (int i = 1; i <= 100; ++i) d.record(i * 0.001);  // 1ms .. 100ms
  const double p50 = d.percentileSeconds(0.50);
  const double p90 = d.percentileSeconds(0.90);
  const double p99 = d.percentileSeconds(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Bucket estimates never leave the observed [min, max] envelope.
  EXPECT_GE(p50, d.minSeconds());
  EXPECT_LE(p99, d.maxSeconds());
  // A power-of-two bucket edge is at worst 2x the true value.
  EXPECT_LE(p50, 0.128);
  EXPECT_GE(p99, 0.064);
}

TEST(TelemetryPercentiles, SingleSampleCollapsesToThatSample) {
  support::MetricsRegistry registry;
  support::MetricsRegistry::DurationStat& d = registry.duration("one");
  d.record(0.005);
  EXPECT_DOUBLE_EQ(d.percentileSeconds(0.50), 0.005);
  EXPECT_DOUBLE_EQ(d.percentileSeconds(0.99), 0.005);
}

TEST(TelemetryPercentiles, SnapshotCarriesDigest) {
  support::MetricsRegistry registry;
  registry.duration("phase.fake").record(0.010);
  registry.duration("phase.fake").record(0.020);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.durations.size(), 1u);
  EXPECT_EQ(snap.durations[0].name, "phase.fake");
  EXPECT_EQ(snap.durations[0].count, 2u);
  EXPECT_NEAR(snap.durations[0].total_seconds, 0.030, 1e-9);
  EXPECT_GE(snap.durations[0].p99_seconds, snap.durations[0].p50_seconds);
}

// -- flight recorder --------------------------------------------------------

TEST(FlightRecorder, RoundTripsThroughDumpAndParser) {
  support::flightRecorderReset();
  support::flightRecord("phase", "frontend");
  support::flightRecord("cache", std::string("miss abc123"));
  support::flightRecord("phase", "taint");

  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  support::flightRecorderDump(fds[1]);
  close(fds[1]);
  std::string text;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) text.append(buf, n);
  close(fds[0]);

  const auto events = support::parseFlightRecorderLines(text);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, "phase");
  EXPECT_EQ(events[0].detail, "frontend");
  EXPECT_EQ(events[1].kind, "cache");
  EXPECT_EQ(events[1].detail, "miss abc123");
  EXPECT_EQ(events[2].detail, "taint");
  EXPECT_LT(events[0].seq, events[2].seq);
}

TEST(FlightRecorder, RingKeepsTheNewestEventsWhenFull) {
  support::flightRecorderReset();
  for (int i = 0; i < 200; ++i) {
    support::flightRecord("phase", "event-" + std::to_string(i));
  }
  EXPECT_EQ(support::flightRecorderCount(), 200u);

  int fds[2] = {-1, -1};
  ASSERT_EQ(pipe(fds), 0);
  support::flightRecorderDump(fds[1]);
  close(fds[1]);
  std::string text;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(fds[0], buf, sizeof buf)) > 0) text.append(buf, n);
  close(fds[0]);

  const auto events = support::parseFlightRecorderLines(text);
  ASSERT_LE(events.size(), support::kFlightRecorderCapacity);
  ASSERT_FALSE(events.empty());
  // Oldest-first dump; the last line is the newest event.
  EXPECT_EQ(events.back().detail, "event-199");
  EXPECT_EQ(events.front().detail,
            "event-" + std::to_string(200 - events.size()));
  support::flightRecorderReset();
}

TEST(FlightRecorder, ParserSkipsForeignAndMalformedLines) {
  const std::string stderr_text =
      "safeflow: some ordinary diagnostic\n"
      "SAFEFLOW-FR 7 phase taint\n"
      "SAFEFLOW-FR garbage\n"
      "SAFEFLOW-FR 9 cache miss with spaces kept\n"
      "trailing noise";
  const auto events = support::parseFlightRecorderLines(stderr_text);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 7u);
  EXPECT_EQ(events[0].kind, "phase");
  EXPECT_EQ(events[0].detail, "taint");
  EXPECT_EQ(events[1].detail, "miss with spaces kept");
}

TEST(FlightRecorder, TruncatedCaptureDropsTheUnprovableLastEvent) {
  // A --worker-stderr-cap capture can end exactly on a line boundary:
  // the final event parses cleanly, yet its successors (and the END
  // marker) were dropped, so it cannot be proven complete.
  const std::string capped =
      "SAFEFLOW-FR 1 phase frontend\n"
      "SAFEFLOW-FR 2 phase ssa\n"
      "SAFEFLOW-FR 3 phase taint\n";
  const auto trusting = support::parseFlightRecorderLines(capped);
  ASSERT_EQ(trusting.size(), 3u);
  const auto wary =
      support::parseFlightRecorderLines(capped, /*assume_truncated=*/true);
  ASSERT_EQ(wary.size(), 2u);
  EXPECT_EQ(wary.back().detail, "ssa");
}

TEST(FlightRecorder, EndMarkerProvesCompletenessUnderTruncation) {
  // When the terminator survived the cap, nothing after it was cut and
  // every parsed event is trustworthy even in assume_truncated mode.
  const std::string complete =
      "SAFEFLOW-FR 1 phase frontend\n"
      "SAFEFLOW-FR 2 phase taint\n"
      "SAFEFLOW-FR-END 2\n";
  const auto events =
      support::parseFlightRecorderLines(complete, /*assume_truncated=*/true);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.back().detail, "taint");
}

TEST(FlightRecorder, ParserRejectsCutAndInterleavedLines) {
  // Hostile stderr shapes the supervisor actually sees from dying
  // workers: a dump line cut mid-write (no newline), another stream's
  // bytes spliced into an FR line (fields wider than the dump can
  // produce), and an absurd sequence field.
  const std::string oversized_kind(40, 'k');
  const std::string oversized_detail(200, 'd');
  const std::string stderr_text =
      "SAFEFLOW-FR 1 phase frontend\n"
      "SAFEFLOW-FR 2 " + oversized_kind + " detail\n" +
      "SAFEFLOW-FR 3 cache " + oversized_detail + "\n" +
      "SAFEFLOW-FR 123456789012345678901 phase ssa\n"
      "SAFEFLOW-FR 4 phase report";  // cut mid-write: no newline
  const auto events = support::parseFlightRecorderLines(stderr_text);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].detail, "frontend");
}

// -- structured log levels --------------------------------------------------

TEST(TelemetryLog, ParseLogLevelAcceptsDocumentedNames) {
  support::LogLevel level{};
  EXPECT_TRUE(support::parseLogLevel("error", &level));
  EXPECT_EQ(level, support::LogLevel::kError);
  EXPECT_TRUE(support::parseLogLevel("warn", &level));
  EXPECT_EQ(level, support::LogLevel::kWarn);
  EXPECT_TRUE(support::parseLogLevel("note", &level));
  EXPECT_EQ(level, support::LogLevel::kNote);
  EXPECT_TRUE(support::parseLogLevel("info", &level));
  EXPECT_EQ(level, support::LogLevel::kInfo);
  EXPECT_TRUE(support::parseLogLevel("debug", &level));
  EXPECT_EQ(level, support::LogLevel::kDebug);
  EXPECT_FALSE(support::parseLogLevel("verbose", &level));
  EXPECT_FALSE(support::parseLogLevel("", &level));
}

// -- per-stream stderr capture cap ------------------------------------------

TEST(TelemetryStderrCap, StderrIsCappedIndependentlyOfStdout) {
  support::SubprocessOptions opts;
  opts.max_stderr_capture_bytes = 1024;
  const auto result = support::runSubprocess(
      {"/bin/sh", "-c",
       "i=0; while [ $i -lt 400 ]; do echo "
       "stderr-spam-stderr-spam-stderr-spam-stderr-spam 1>&2; "
       "i=$((i+1)); done; echo stdout-ok"},
      opts);
  ASSERT_TRUE(result.exitedWith(0)) << result.spawn_error;
  EXPECT_EQ(result.out_text, "stdout-ok\n");
  EXPECT_FALSE(result.out_truncated);
  EXPECT_TRUE(result.err_truncated);
  EXPECT_LE(result.err_text.size(), 1024u);
}

// -- Prometheus exposition --------------------------------------------------

TEST(PrometheusExposition, CarriesCountersQuantilesAndResource) {
  SafeFlowDriver driver;
  ASSERT_TRUE(driver.addSource("core.c",
                               "static int x;\n"
                               "int main(void) { return x; }\n"));
  driver.analyze();
  const std::string text = driver.stats().renderPrometheus();
  EXPECT_NE(text.find("# TYPE safeflow_frontend_files_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("safeflow_frontend_files_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("safeflow_process_user_seconds"), std::string::npos);
  EXPECT_NE(text.find("safeflow_process_max_rss_kb"), std::string::npos);
  // Metric names are sanitized: no '.' survives into a name.
  for (std::size_t pos = 0; pos < text.size();) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      const std::string name = line.substr(0, line.find_first_of(" {"));
      EXPECT_EQ(name.find('.'), std::string::npos) << line;
    }
    pos = eol + 1;
  }
}

// -- stats schema v2 --------------------------------------------------------

TEST(TelemetryMergedStats, SchemaV2CarriesShardsDurationsResource) {
  const auto files = ipCoreFiles();
  SupervisorOptions opts = fastOptions();
  opts.jobs = 2;
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  ASSERT_TRUE(merged.worker_failures.empty());

  ASSERT_EQ(merged.stats.shards.size(), files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(merged.stats.shards[i].file, files[i]);  // input order
    EXPECT_GT(merged.stats.shards[i].wall_seconds, 0.0);
    EXPECT_GT(merged.stats.shards[i].max_rss_kb, 0u);
    EXPECT_EQ(merged.stats.shards[i].attempts, 1);
    EXPECT_FALSE(merged.stats.shards[i].from_cache);
  }
  EXPECT_GT(merged.stats.resource.max_rss_kb, 0u);
  const bool has_shard_digest = std::any_of(
      merged.stats.durations.begin(), merged.stats.durations.end(),
      [](const auto& d) { return d.name == "supervisor.shard_seconds"; });
  EXPECT_TRUE(has_shard_digest);

  const std::string json = merged.stats.renderJson();
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"durations\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"resource\""), std::string::npos);
  // Determinism contract: every line carrying wall-clock or RSS content
  // also carries "seconds" so stripTimes-style filters drop it whole.
  for (std::size_t pos = 0; pos < json.size();) {
    std::size_t eol = json.find('\n', pos);
    if (eol == std::string::npos) eol = json.size();
    const std::string line = json.substr(pos, eol - pos);
    if (line.find("max_rss_kb") != std::string::npos ||
        line.find("\"wall") != std::string::npos) {
      EXPECT_NE(line.find("seconds"), std::string::npos) << line;
    }
    pos = eol + 1;
  }
}

TEST(TelemetryMergedStats, CacheDisableRecordsFirstReason) {
  CacheOptions copts;
  copts.enabled = true;
  copts.dir = "/tmp/safeflow-telemetry-test-cache";
  support::MetricsRegistry registry;
  CacheManager cache(copts, &registry);
  EXPECT_EQ(cache.disabledReason(), "");
  cache.disable("trace");
  EXPECT_EQ(cache.disabledReason(), "trace");
  cache.disable("dot");  // first reason wins
  EXPECT_EQ(cache.disabledReason(), "trace");
}

// -- stitched trace (e2e) ---------------------------------------------------

struct StitchedTrace {
  support::json::Value doc;
  std::vector<support::json::Value> events;  // the traceEvents array
};

StitchedTrace runStitched(const std::vector<std::string>& files,
                          std::size_t jobs) {
  SupervisorOptions opts = fastOptions();
  opts.jobs = jobs;
  opts.worker_args.emplace_back("--telemetry-spans");
  support::TraceCollector trace;
  opts.trace = &trace;
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);
  EXPECT_TRUE(merged.worker_failures.empty());
  EXPECT_EQ(merged.shard_telemetry.size(), files.size());

  StitchedTrace result;
  const std::string json = merged.renderStitchedTrace(trace);
  std::string err;
  EXPECT_TRUE(support::json::parse(json, &result.doc, &err)) << err;
  const auto* events = result.doc.find("traceEvents");
  if (events != nullptr && events->isArray()) {
    result.events = events->array;
  }
  return result;
}

TEST(StitchedTraceE2E, JobsFourProducesOneLanePerShardPlusSupervisor) {
  const auto files = ipCoreFiles();
  const StitchedTrace trace = runStitched(files, 4);
  ASSERT_FALSE(trace.events.empty());

  std::set<std::uint64_t> span_pids;
  std::size_t supervisor_shard_spans = 0;
  bool supervisor_merge_span = false;
  for (const auto& e : trace.events) {
    const std::string ph = e.memberString("ph");
    const auto pid = static_cast<std::uint64_t>(e.memberNumber("pid"));
    if (ph != "X") continue;
    span_pids.insert(pid);
    // Complete events are non-negative and re-based: a worker span
    // before the supervisor's epoch would go negative.
    EXPECT_GE(e.memberNumber("ts"), 0.0);
    EXPECT_GE(e.memberNumber("dur"), 0.0);
    if (pid == 1) {
      const std::string name = e.memberString("name");
      if (name == "supervisor.shard") ++supervisor_shard_spans;
      if (name == "supervisor.merge") supervisor_merge_span = true;
    }
  }
  // Lane 1 is the supervisor; every shard got its own lane.
  EXPECT_TRUE(span_pids.count(1));
  EXPECT_EQ(span_pids.size(), 1u + files.size());
  EXPECT_EQ(supervisor_shard_spans, files.size());
  EXPECT_TRUE(supervisor_merge_span);

  // Every lane is labeled with its input file (plus the worker pid).
  std::size_t labeled_lanes = 0;
  for (const auto& e : trace.events) {
    if (e.memberString("ph") != "M") continue;
    const auto* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const std::string label = args->memberString("name");
    const auto pid = static_cast<std::uint64_t>(e.memberNumber("pid"));
    if (pid >= 2) {
      const std::string file = files[pid - 2];
      EXPECT_NE(label.find(file), std::string::npos) << label;
      EXPECT_NE(label.find("pid "), std::string::npos) << label;
      ++labeled_lanes;
    }
  }
  EXPECT_EQ(labeled_lanes, files.size());
}

TEST(StitchedTraceE2E, WorkerSpansLandInsideTheSupervisorTimeline) {
  const std::vector<std::string> files = {kCorpus + "/ip/core/filter.c",
                                          kCorpus + "/ip/core/comm.c"};
  const StitchedTrace trace = runStitched(files, 1);

  // The supervisor's whole-run window: its earliest span start to the
  // latest span end (supervisor.merge runs last).
  double sup_end = 0.0;
  for (const auto& e : trace.events) {
    if (e.memberString("ph") != "X") continue;
    if (static_cast<std::uint64_t>(e.memberNumber("pid")) != 1) continue;
    sup_end =
        std::max(sup_end, e.memberNumber("ts") + e.memberNumber("dur"));
  }
  ASSERT_GT(sup_end, 0.0);

  std::size_t worker_spans = 0;
  for (const auto& e : trace.events) {
    if (e.memberString("ph") != "X") continue;
    if (static_cast<std::uint64_t>(e.memberNumber("pid")) == 1) continue;
    ++worker_spans;
    // Re-based worker spans must sit inside the supervised run, not at
    // raw worker-local offsets (which would start near zero before the
    // shard was even spawned... for every shard at once).
    EXPECT_GE(e.memberNumber("ts"), 0.0);
    EXPECT_LE(e.memberNumber("ts") + e.memberNumber("dur"),
              sup_end + 1e5)  // 100ms slack for clock sampling
        << e.memberString("name");
  }
  // Both live workers contributed spans (at least a pipeline root each).
  EXPECT_GE(worker_spans, 2u);
}

// -- crash postmortem (e2e) -------------------------------------------------

TEST(TelemetryCrashE2E, TaintCrashAttachesFlightRecorderNamingPhase) {
  const auto files = ipCoreFiles();
  SupervisorOptions opts = fastOptions();
  opts.jobs = 4;
  opts.max_retries = 0;
  opts.extra_env = {{"SAFEFLOW_INJECT_FAULT", "crash@taint"},
                    {"SAFEFLOW_INJECT_FAULT_FILE", "decision.c"}};
  support::MetricsRegistry registry;
  Supervisor sup(opts, &registry);
  const MergedReport merged = sup.run(files);

  ASSERT_EQ(merged.worker_failures.size(), 1u);
  const WorkerFailure& failure = merged.worker_failures[0];
  EXPECT_EQ(failure.reason, "SIGSEGV");
  ASSERT_FALSE(failure.flight_events.empty());
  // The last phase event names where the worker died.
  std::string last_phase;
  for (const auto& event : failure.flight_events) {
    if (event.kind == "phase") last_phase = event.detail;
  }
  EXPECT_EQ(last_phase, "taint");

  // The merged JSON carries the postmortem for offline triage.
  const std::string json = merged.renderJson({});
  const std::size_t failures_pos = json.find("\"worker_failures\"");
  ASSERT_NE(failures_pos, std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\"", failures_pos),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"phase\"", failures_pos),
            std::string::npos);
  EXPECT_NE(json.find("\"detail\": \"taint\"", failures_pos),
            std::string::npos);
}

}  // namespace
