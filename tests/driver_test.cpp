// Tests for the public SafeFlowDriver API: statistics, multi-file
// analysis, include directories, predefines, idempotence, and error
// paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "safeflow/driver.h"

namespace {

using namespace safeflow;

std::string tempDir() { return ::testing::TempDir(); }

void writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

TEST(Driver, MissingFileReportsAndReturnsFalse) {
  SafeFlowDriver driver;
  EXPECT_FALSE(driver.addFile("/definitely/not/here.c"));
  EXPECT_TRUE(driver.hasFrontendErrors());
}

TEST(Driver, ParseErrorSurfacesThroughDiagnostics) {
  SafeFlowDriver driver;
  EXPECT_FALSE(driver.addSource("bad.c", "int main( { return 0; }"));
  EXPECT_TRUE(driver.hasFrontendErrors());
  EXPECT_GT(driver.diagnostics().errorCount(), 0u);
}

TEST(Driver, AnalyzeIsIdempotent) {
  SafeFlowDriver driver;
  driver.addSource("a.c", "int main(void) { return 0; }");
  const auto& first = driver.analyze();
  const auto* first_addr = &first;
  const auto& second = driver.analyze();
  EXPECT_EQ(first_addr, &second);
}

TEST(Driver, StatsCountEverything) {
  SafeFlowDriver driver;
  driver.addSource("a.c", R"(
typedef struct C { float v; } C;
C *cell;
extern void *shmat(int id, void *a, int f);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    cell = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}
float mon(void)
/*** SafeFlow Annotation assume(core(cell, 0, sizeof(C))) ***/
{
    return cell->v;
}
int main(void) { init(); mon(); return 0; }
)");
  driver.analyze();
  const auto& s = driver.stats();
  EXPECT_EQ(s.files, 1u);
  EXPECT_EQ(s.shm_regions, 1u);
  EXPECT_EQ(s.noncore_regions, 1u);
  EXPECT_EQ(s.init_functions, 1u);
  EXPECT_EQ(s.monitor_functions, 1u);
  EXPECT_EQ(s.annotation_count, 4u);
  EXPECT_EQ(s.annotation_lines, 4u);
  EXPECT_GT(s.loc.code_lines, 10u);
  EXPECT_GE(s.analysis_seconds, 0.0);
}

TEST(Driver, MultiFileGlobalsResolveAcrossFiles) {
  SafeFlowDriver driver;
  driver.addSource("decls.c", R"(
typedef struct C { float v; } C;
C *cell;
extern void *shmat(int id, void *a, int f);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    cell = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}
)");
  driver.addSource("use.c", R"(
typedef struct C { float v; } C;
extern C *cell;
extern void init(void);
extern void sink(float v);
int main(void)
{
    float out;
    init();
    out = cell->v;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  const auto& report = driver.analyze();
  EXPECT_FALSE(driver.hasFrontendErrors())
      << driver.diagnostics().render(driver.sources());
  ASSERT_EQ(report.errors.size(), 1u)
      << report.render(driver.sources());
}

TEST(Driver, IncludeDirectoriesWork) {
  const std::string dir = tempDir() + "/sf_driver_inc";
  std::remove((dir + "/shared.h").c_str());
#ifdef _WIN32
#else
  (void)system(("mkdir -p " + dir).c_str());
#endif
  writeFile(dir + "/shared.h", "typedef struct S { int a; } S;\n");
  const std::string main_c = tempDir() + "/sf_driver_main.c";
  writeFile(main_c,
            "#include \"shared.h\"\nint size(void) { return sizeof(S); }\n");

  SafeFlowOptions options;
  options.include_dirs.push_back(dir);
  SafeFlowDriver driver(options);
  EXPECT_TRUE(driver.addFile(main_c))
      << driver.diagnostics().render(driver.sources());
}

TEST(Driver, PredefinesReachTheSource) {
  SafeFlowOptions options;
  options.defines.emplace_back("RING", "16");
  SafeFlowDriver driver(options);
  EXPECT_TRUE(driver.addSource("a.c", "int buffer[RING];"));
}

TEST(Driver, ReportMirroredIntoDiagnostics) {
  SafeFlowDriver driver;
  driver.addSource("a.c", R"(
typedef struct C { float v; } C;
C *cell;
extern void *shmat(int id, void *a, int f);
extern void sink(float v);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    cell = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}
int main(void)
{
    float out;
    init();
    out = cell->v;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  driver.analyze();
  EXPECT_GE(driver.diagnostics().countCategoryPrefix("safeflow.warning"),
            1u);
  EXPECT_GE(driver.diagnostics().countCategoryPrefix("safeflow.error"), 1u);
}

TEST(Driver, JsonReportIsWellFormedEnough) {
  SafeFlowDriver driver;
  driver.addSource("a.c", R"(
typedef struct C { float v; } C;
C *cell;
extern void *shmat(int id, void *a, int f);
extern void sink(float v);
/*** SafeFlow Annotation shminit ***/
void init(void)
{
    cell = (C *) shmat(1, 0, 0);
    /*** SafeFlow Annotation assume(shmvar(cell, sizeof(C))) ***/
    /*** SafeFlow Annotation assume(noncore(cell)) ***/
}
int main(void)
{
    float out;
    init();
    out = cell->v;
    /*** SafeFlow Annotation assert(safe(out)); ***/
    sink(out);
    return 0;
}
)");
  const auto& report = driver.analyze();
  const std::string json = report.renderJson(driver.sources());
  // Structural smoke checks: balanced braces/brackets, expected keys.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"warnings\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"data\""), std::string::npos);
  EXPECT_NE(json.find("\"data_errors\": 1"), std::string::npos);
}

TEST(Driver, NoRegionsMeansNoFindings) {
  SafeFlowDriver driver;
  driver.addSource("plain.c", R"(
int add(int a, int b) { return a + b; }
int main(void) { return add(1, 2); }
)");
  const auto& report = driver.analyze();
  EXPECT_TRUE(report.warnings.empty());
  EXPECT_TRUE(report.errors.empty());
  EXPECT_TRUE(report.required_runtime_checks.empty());
}

}  // namespace
