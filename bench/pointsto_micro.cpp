// Overhead and precision of the Andersen points-to engine vs the legacy
// alias fixpoint: runs the in-process pipeline over the checked-in
// corpus systems under --alias=legacy and --alias=andersen (best-of-N
// wall time each) and solves a large synthetic pointer-churn module to
// exercise the SCC condensation at scale. Emits BENCH_pointsto.json.
// Exits non-zero when the run is invalid: a run degraded, the Andersen
// engine resolved no more shm pointers than legacy (the precision it is
// paid in), no cycles collapsed on the churn module, or the corpus
// overhead exceeded the 15% budget. CI runs this and archives the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/synthetic.h"
#include "safeflow/driver.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

struct System {
  const char* name;
  std::vector<std::string> files;
};

std::vector<System> corpusSystems() {
  return {
      {"ip",
       {kCorpus + "/ip/core/comm.c", kCorpus + "/ip/core/decision.c",
        kCorpus + "/ip/core/filter.c", kCorpus + "/ip/core/main.c",
        kCorpus + "/ip/core/safety.c", kCorpus + "/ip/core/selftest.c",
        kCorpus + "/ip/core/telemetry.c"}},
      {"rangelab",
       {kCorpus + "/rangelab/core/comm.c",
        kCorpus + "/rangelab/core/filter.c",
        kCorpus + "/rangelab/core/main.c"}},
      {"pointerlab",
       {kCorpus + "/pointerlab/core/chain.c",
        kCorpus + "/pointerlab/core/comm.c",
        kCorpus + "/pointerlab/core/confuse.c",
        kCorpus + "/pointerlab/core/main.c",
        kCorpus + "/pointerlab/core/pun.c"}},
  };
}

struct RunResult {
  double seconds = 0.0;
  bool degraded = false;
  std::uint64_t resolved = 0;
  std::uint64_t shm_resolved = 0;
  std::uint64_t constraints = 0;
  std::uint64_t collapsed = 0;
  std::uint64_t field_cells = 0;
};

RunResult measure(SafeFlowDriver& d) {
  const auto start = std::chrono::steady_clock::now();
  d.analyze();
  const auto end = std::chrono::steady_clock::now();
  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.degraded = d.degraded();
  const support::MetricsRegistry& m = d.metrics();
  r.resolved = m.counterValue("alias.resolved_pointers");
  r.shm_resolved = m.counterValue("alias.shm_pointers_resolved");
  r.constraints = m.counterValue("pointsto.constraints");
  r.collapsed = m.counterValue("pointsto.scc_collapsed");
  r.field_cells = m.counterValue("pointsto.field_cells");
  return r;
}

RunResult runFiles(const std::vector<std::string>& files, bool andersen) {
  SafeFlowOptions o;
  o.alias.engine = andersen ? analysis::AliasOptions::Engine::kAndersen
                            : analysis::AliasOptions::Engine::kLegacy;
  SafeFlowDriver d(o);
  for (const auto& f : files) {
    if (!d.addFile(f)) {
      std::cerr << "pointsto_micro: cannot read " << f << "\n";
      std::exit(1);
    }
  }
  return measure(d);
}

RunResult bestOf(const std::vector<std::string>& files, bool andersen,
                 int reps) {
  RunResult best = runFiles(files, andersen);
  for (int i = 1; i < reps; ++i) {
    RunResult again = runFiles(files, andersen);
    if (again.seconds < best.seconds) {
      again.degraded = again.degraded || best.degraded;
      best = again;
    }
  }
  return best;
}

RunResult runSynthetic(const std::string& src, bool andersen) {
  SafeFlowOptions o;
  o.alias.engine = andersen ? analysis::AliasOptions::Engine::kAndersen
                            : analysis::AliasOptions::Engine::kLegacy;
  SafeFlowDriver d(o);
  if (!d.addSource("churn.c", src)) {
    std::cerr << "pointsto_micro: synthetic module rejected\n";
    std::exit(1);
  }
  return measure(d);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pointsto.json";
  constexpr int kReps = 5;
  constexpr double kOverheadBudget = 1.15;
  // Below this absolute delta the corpus runs are timer noise, not a
  // regression — the corpus is small and the ratio alone would flake.
  constexpr double kNoiseFloorSeconds = 0.02;

  double legacy_total = 0.0;
  double andersen_total = 0.0;
  std::uint64_t legacy_shm = 0;
  std::uint64_t andersen_shm = 0;
  std::uint64_t legacy_resolved = 0;
  std::uint64_t andersen_resolved = 0;
  bool degraded = false;

  std::vector<std::string> per_system;
  for (const System& sys : corpusSystems()) {
    const RunResult legacy = bestOf(sys.files, /*andersen=*/false, kReps);
    const RunResult andersen = bestOf(sys.files, /*andersen=*/true, kReps);
    legacy_total += legacy.seconds;
    andersen_total += andersen.seconds;
    legacy_shm += legacy.shm_resolved;
    andersen_shm += andersen.shm_resolved;
    legacy_resolved += legacy.resolved;
    andersen_resolved += andersen.resolved;
    degraded = degraded || legacy.degraded || andersen.degraded;
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"system\": \"%s\", \"legacy_seconds\": %g, "
        "\"andersen_seconds\": %g, \"legacy_shm_resolved\": %llu, "
        "\"andersen_shm_resolved\": %llu}",
        sys.name, legacy.seconds, andersen.seconds,
        static_cast<unsigned long long>(legacy.shm_resolved),
        static_cast<unsigned long long>(andersen.shm_resolved));
    per_system.push_back(buf);
  }

  // Large synthetic module: the copy-cycle shape that is quadratic
  // without SCC condensation. One timed solve per engine.
  const std::string churn = bench::pointerChurnProgram(150, 10);
  const RunResult churn_legacy = runSynthetic(churn, /*andersen=*/false);
  const RunResult churn_andersen = runSynthetic(churn, /*andersen=*/true);
  degraded = degraded || churn_legacy.degraded || churn_andersen.degraded;

  const double ratio =
      legacy_total > 0.0 ? andersen_total / legacy_total : 0.0;
  bool ok = true;
  if (degraded) {
    std::cerr << "pointsto_micro: a run degraded; timings are bogus\n";
    ok = false;
  }
  if (andersen_shm <= legacy_shm || andersen_resolved < legacy_resolved) {
    std::cerr << "pointsto_micro: no precision win over legacy "
              << "(shm_resolved " << andersen_shm << " vs " << legacy_shm
              << ", resolved " << andersen_resolved << " vs "
              << legacy_resolved << ") - the engine is not earning its keep\n";
    ok = false;
  }
  if (churn_andersen.collapsed == 0 || churn_andersen.constraints == 0) {
    std::cerr << "pointsto_micro: churn module collapsed no cycles "
              << "(scc_collapsed=" << churn_andersen.collapsed
              << ", constraints=" << churn_andersen.constraints << ")\n";
    ok = false;
  }
  if (ratio > kOverheadBudget &&
      andersen_total - legacy_total > kNoiseFloorSeconds) {
    std::cerr << "pointsto_micro: overhead ratio " << ratio
              << " exceeds budget " << kOverheadBudget << "\n";
    ok = false;
  }

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"pointsto_micro\",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"legacy_seconds\": " << legacy_total << ",\n"
      << "  \"andersen_seconds\": " << andersen_total << ",\n"
      << "  \"overhead_ratio\": " << ratio << ",\n"
      << "  \"overhead_budget\": " << kOverheadBudget << ",\n"
      << "  \"legacy_shm_resolved\": " << legacy_shm << ",\n"
      << "  \"andersen_shm_resolved\": " << andersen_shm << ",\n"
      << "  \"legacy_resolved\": " << legacy_resolved << ",\n"
      << "  \"andersen_resolved\": " << andersen_resolved << ",\n"
      << "  \"churn\": {\n"
      << "    \"legacy_seconds\": " << churn_legacy.seconds << ",\n"
      << "    \"andersen_seconds\": " << churn_andersen.seconds << ",\n"
      << "    \"constraints\": " << churn_andersen.constraints << ",\n"
      << "    \"scc_collapsed\": " << churn_andersen.collapsed << ",\n"
      << "    \"field_cells\": " << churn_andersen.field_cells << "\n"
      << "  },\n"
      << "  \"systems\": [\n";
  for (std::size_t i = 0; i < per_system.size(); ++i) {
    out << per_system[i] << (i + 1 < per_system.size() ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"valid\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf(
      "pointsto_micro: legacy %.3fs, andersen %.3fs, ratio %.3f, "
      "shm_resolved %llu vs %llu, churn %.3fs (%llu constraints, "
      "%llu collapsed)\n",
      legacy_total, andersen_total, ratio,
      static_cast<unsigned long long>(andersen_shm),
      static_cast<unsigned long long>(legacy_shm), churn_andersen.seconds,
      static_cast<unsigned long long>(churn_andersen.constraints),
      static_cast<unsigned long long>(churn_andersen.collapsed));
  return ok ? 0 : 1;
}
