// Regenerates the paper's running example result (Fig. 2/3 + §3.3): the
// analysis of the simplified core controller must flag the feedback
// dereference inside the decision path as unsafe and report the critical
// value `output` as dependent on it.
#include <cstdio>
#include <string>

#include "safeflow/driver.h"

int main() {
  using namespace safeflow;

  SafeFlowDriver driver;
  driver.addFile(std::string(SAFEFLOW_CORPUS_DIR) +
                 "/running_example/core.c");
  const auto& report = driver.analyze();

  std::printf("================================================\n");
  std::printf("Fig. 2/3 running example: core controller of the\n");
  std::printf("inverted pendulum Simplex implementation\n");
  std::printf("================================================\n");
  std::printf("%s", report.render(driver.sources()).c_str());

  bool feedback_flagged = false;
  for (const auto& w : report.warnings) {
    if (w.region_name == "feedback") feedback_flagged = true;
  }
  bool output_flagged = false;
  for (const auto& e : report.errors) {
    if (e.critical_value == "output") output_flagged = true;
  }

  std::printf("\npaper expectation: feedback deref unsafe -> %s\n",
              feedback_flagged ? "REPRODUCED" : "MISSING");
  std::printf("paper expectation: output depends on it  -> %s\n",
              output_flagged ? "REPRODUCED" : "MISSING");
  return (feedback_flagged && output_flagged) ? 0 : 1;
}
