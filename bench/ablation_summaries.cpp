// Ablation for the design choices DESIGN.md calls out (paper §3.3):
//
//   * interprocedural engine — the prototype's call-string context
//     cloning ("each function ... analyzed multiple times for different
//     call sequences, making the implementation exponential") vs the
//     ESP-style one-pass summaries the paper proposes as the efficient
//     alternative;
//   * control-dependence tracking on/off (removes the false-positive
//     class and the control-flow leaks with it);
//   * field sensitivity of the alias analysis.
#include <benchmark/benchmark.h>

#include "bench/synthetic.h"
#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;

void runDriver(const std::string& source, SafeFlowOptions options,
               benchmark::State& state) {
  std::size_t body_analyses = 0;
  for (auto _ : state) {
    SafeFlowDriver driver(options);
    driver.addSource("synthetic.c", source);
    const auto& report = driver.analyze();
    benchmark::DoNotOptimize(report.warnings.size());
    body_analyses = driver.stats().taint_body_analyses;
  }
  state.counters["body_analyses"] =
      static_cast<double>(body_analyses);
}

void BM_TaintSummaries(benchmark::State& state) {
  const auto monitors = static_cast<int>(state.range(0));
  const auto depth = static_cast<int>(state.range(1));
  const std::string source = bench::monitorFanProgram(monitors, depth);
  SafeFlowOptions options;
  options.taint.mode = analysis::TaintOptions::Mode::kSummaries;
  runDriver(source, options, state);
}
BENCHMARK(BM_TaintSummaries)
    ->Args({2, 4})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 16});

void BM_TaintCallStrings(benchmark::State& state) {
  const auto monitors = static_cast<int>(state.range(0));
  const auto depth = static_cast<int>(state.range(1));
  const std::string source = bench::monitorFanProgram(monitors, depth);
  SafeFlowOptions options;
  options.taint.mode = analysis::TaintOptions::Mode::kCallStrings;
  runDriver(source, options, state);
}
BENCHMARK(BM_TaintCallStrings)
    ->Args({2, 4})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({8, 16});

void BM_CorpusEngine(benchmark::State& state) {
  const bool call_strings = state.range(0) != 0;
  const auto systems = corpusSystems(SAFEFLOW_CORPUS_DIR);
  SafeFlowOptions options = corpusAnalysisOptions();
  options.taint.mode = call_strings
                           ? analysis::TaintOptions::Mode::kCallStrings
                           : analysis::TaintOptions::Mode::kSummaries;
  for (auto _ : state) {
    for (const auto& sys : systems) {
      SafeFlowDriver driver(options);
      for (const auto& f : sys.core_files) driver.addFile(f);
      benchmark::DoNotOptimize(driver.analyze().errors.size());
    }
  }
  state.SetLabel(call_strings ? "call-strings" : "summaries");
}
BENCHMARK(BM_CorpusEngine)->Arg(0)->Arg(1);

void BM_ControlDeps(benchmark::State& state) {
  const bool track = state.range(0) != 0;
  const auto systems = corpusSystems(SAFEFLOW_CORPUS_DIR);
  SafeFlowOptions options = corpusAnalysisOptions();
  options.taint.track_control_deps = track;
  std::size_t errors = 0;
  for (auto _ : state) {
    errors = 0;
    for (const auto& sys : systems) {
      SafeFlowDriver driver(options);
      for (const auto& f : sys.core_files) driver.addFile(f);
      errors += driver.analyze().errors.size();
    }
  }
  state.counters["error_entries"] = static_cast<double>(errors);
  state.SetLabel(track ? "control-deps on" : "control-deps off");
}
BENCHMARK(BM_ControlDeps)->Arg(1)->Arg(0);

void BM_FieldSensitivity(benchmark::State& state) {
  const bool sensitive = state.range(0) != 0;
  const auto systems = corpusSystems(SAFEFLOW_CORPUS_DIR);
  SafeFlowOptions options = corpusAnalysisOptions();
  options.alias.field_sensitive = sensitive;
  std::size_t warnings = 0;
  for (auto _ : state) {
    warnings = 0;
    for (const auto& sys : systems) {
      SafeFlowDriver driver(options);
      for (const auto& f : sys.core_files) driver.addFile(f);
      warnings += driver.analyze().warnings.size();
    }
  }
  state.counters["warnings"] = static_cast<double>(warnings);
  state.SetLabel(sensitive ? "field-sensitive" : "field-insensitive");
}
BENCHMARK(BM_FieldSensitivity)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
