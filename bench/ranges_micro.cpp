// Overhead and precision of the value-range pass: runs the in-process
// pipeline over the checked-in corpus systems with --no-ranges and with
// --ranges (best-of-N wall time each), and emits BENCH_ranges.json with
// the overhead ratio plus the precision counters the pass is paid in
// (A2 discharges, pruned control/phi edges, shm-bounds-const findings).
// Exits non-zero when the run is invalid: the pass degraded, produced no
// precision win on the rangelab system, or cost more than the 10%
// overhead budget. CI runs this and archives the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "safeflow/driver.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

struct System {
  const char* name;
  std::vector<std::string> files;
};

std::vector<System> corpusSystems() {
  return {
      {"ip",
       {kCorpus + "/ip/core/comm.c", kCorpus + "/ip/core/decision.c",
        kCorpus + "/ip/core/filter.c", kCorpus + "/ip/core/main.c",
        kCorpus + "/ip/core/safety.c", kCorpus + "/ip/core/selftest.c",
        kCorpus + "/ip/core/telemetry.c"}},
      {"rangelab",
       {kCorpus + "/rangelab/core/comm.c", kCorpus + "/rangelab/core/filter.c",
        kCorpus + "/rangelab/core/main.c"}},
  };
}

struct RunResult {
  double seconds = 0.0;
  bool degraded = false;
  std::uint64_t a2_discharged = 0;
  std::uint64_t bounds_seeded = 0;
  std::uint64_t control_pruned = 0;
  std::uint64_t phi_pruned = 0;
  std::uint64_t shm_bounds_const = 0;
};

RunResult runOnce(const std::vector<std::string>& files, bool ranges) {
  SafeFlowOptions o;
  o.ranges.enabled = ranges;
  SafeFlowDriver d(o);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& f : files) {
    if (!d.addFile(f)) {
      std::cerr << "ranges_micro: cannot read " << f << "\n";
      std::exit(1);
    }
  }
  d.analyze();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.degraded = d.degraded();
  const support::MetricsRegistry& m = d.metrics();
  r.a2_discharged = m.counterValue("ranges.a2_discharged");
  r.bounds_seeded = m.counterValue("ranges.bounds_seeded");
  r.control_pruned = m.counterValue("ranges.control_edges_pruned");
  r.phi_pruned = m.counterValue("ranges.phi_edges_pruned");
  r.shm_bounds_const = m.counterValue("ranges.shm_bounds_const.violations");
  return r;
}

RunResult bestOf(const std::vector<std::string>& files, bool ranges,
                 int reps) {
  RunResult best = runOnce(files, ranges);
  for (int i = 1; i < reps; ++i) {
    RunResult again = runOnce(files, ranges);
    if (again.seconds < best.seconds) {
      again.degraded = again.degraded || best.degraded;
      best = again;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_ranges.json";
  constexpr int kReps = 5;
  constexpr double kOverheadBudget = 1.10;

  double off_total = 0.0;
  double on_total = 0.0;
  RunResult precision;  // summed over systems, from the ranges-on runs
  bool degraded = false;

  std::vector<std::string> per_system;
  for (const System& sys : corpusSystems()) {
    const RunResult off = bestOf(sys.files, /*ranges=*/false, kReps);
    const RunResult on = bestOf(sys.files, /*ranges=*/true, kReps);
    off_total += off.seconds;
    on_total += on.seconds;
    degraded = degraded || off.degraded || on.degraded;
    precision.a2_discharged += on.a2_discharged;
    precision.bounds_seeded += on.bounds_seeded;
    precision.control_pruned += on.control_pruned;
    precision.phi_pruned += on.phi_pruned;
    precision.shm_bounds_const += on.shm_bounds_const;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"system\": \"%s\", \"off_seconds\": %g, "
                  "\"on_seconds\": %g, \"a2_discharged\": %llu}",
                  sys.name, off.seconds, on.seconds,
                  static_cast<unsigned long long>(on.a2_discharged));
    per_system.push_back(buf);
  }

  const double ratio = off_total > 0.0 ? on_total / off_total : 0.0;
  bool ok = true;
  if (degraded) {
    std::cerr << "ranges_micro: a corpus run degraded; timings are bogus\n";
    ok = false;
  }
  if (precision.a2_discharged == 0 || precision.control_pruned == 0) {
    std::cerr << "ranges_micro: no precision win on the corpus "
              << "(a2_discharged=" << precision.a2_discharged
              << ", control_edges_pruned=" << precision.control_pruned
              << ") - the pass is not earning its keep\n";
    ok = false;
  }
  if (ratio > kOverheadBudget) {
    std::cerr << "ranges_micro: overhead ratio " << ratio
              << " exceeds budget " << kOverheadBudget << "\n";
    ok = false;
  }

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"ranges_micro\",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"off_seconds\": " << off_total << ",\n"
      << "  \"on_seconds\": " << on_total << ",\n"
      << "  \"overhead_ratio\": " << ratio << ",\n"
      << "  \"overhead_budget\": " << kOverheadBudget << ",\n"
      << "  \"a2_discharged\": " << precision.a2_discharged << ",\n"
      << "  \"bounds_seeded\": " << precision.bounds_seeded << ",\n"
      << "  \"control_edges_pruned\": " << precision.control_pruned << ",\n"
      << "  \"phi_edges_pruned\": " << precision.phi_pruned << ",\n"
      << "  \"shm_bounds_const\": " << precision.shm_bounds_const << ",\n"
      << "  \"systems\": [\n";
  for (std::size_t i = 0; i < per_system.size(); ++i) {
    out << per_system[i] << (i + 1 < per_system.size() ? ",\n" : "\n");
  }
  out << "  ],\n"
      << "  \"valid\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf(
      "ranges_micro: off %.3fs, on %.3fs, ratio %.3f, "
      "a2_discharged %llu, control_pruned %llu, shm_bounds_const %llu\n",
      off_total, on_total, ratio,
      static_cast<unsigned long long>(precision.a2_discharged),
      static_cast<unsigned long long>(precision.control_pruned),
      static_cast<unsigned long long>(precision.shm_bounds_const));
  return ok ? 0 : 1;
}
