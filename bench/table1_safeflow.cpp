// Regenerates Table 1 of the paper: applying SafeFlow to the three
// control systems. Prints paper-reported vs measured values for every
// column. The analysis-derived columns (annotation lines, error
// dependencies, warnings, false positives) are expected to match exactly;
// the LOC columns reflect our reconstruction of the lab systems and are
// reported side by side.
#include <cstdio>

#include "safeflow/corpus_info.h"

int main() {
  using namespace safeflow;

  std::printf("==========================================================="
              "=====================\n");
  std::printf("Table 1: Applying SafeFlow to Control Systems "
              "(paper value / measured value)\n");
  std::printf("==========================================================="
              "=====================\n");
  std::printf("%-16s %13s %13s %11s %9s %8s %8s %8s %6s\n", "System",
              "LOC(total)", "LOC(core)", "SrcChg", "Annot", "Errors",
              "Warn", "FalsePos", "Restr");

  bool all_exact = true;
  for (const CorpusSystem& sys : corpusSystems(SAFEFLOW_CORPUS_DIR)) {
    const MeasuredRow m = measureSystem(sys);
    const PaperRow& p = sys.paper;
    std::printf("%-16s %6d/%-6d %6d/%-6d %4d/%-6d %3d/%-5d %3d/%-4d "
                "%3d/%-4d %3d/%-4d %2d/0\n",
                sys.display_name.c_str(), p.loc_total, m.loc_total,
                p.loc_core, m.loc_core, p.source_diff_lines, m.source_changes,
                p.annotation_lines, m.annotation_lines,
                p.error_dependencies, m.error_dependencies, p.warnings,
                m.warnings, p.false_positives, m.false_positives,
                m.restriction_violations);
    if (!m.frontend_clean) {
      std::printf("  !! front end reported errors for %s\n",
                  sys.name.c_str());
      all_exact = false;
    }
    if (m.annotation_lines != p.annotation_lines ||
        m.error_dependencies != p.error_dependencies ||
        m.warnings != p.warnings ||
        m.false_positives != p.false_positives ||
        m.restriction_violations != 0) {
      all_exact = false;
    }
  }

  std::printf("-----------------------------------------------------------"
              "---------------------\n");
  std::printf("analysis-derived columns (Annot/Errors/Warn/FalsePos/Restr)"
              " %s the paper\n",
              all_exact ? "MATCH" : "DO NOT MATCH");
  std::printf("LOC columns compare the paper's lab systems against this "
              "reconstruction.\n");
  std::printf("SrcChg compares diff-output line counts: the paper refactored one monitoring\n"
              "function in IP and Double IP (7 source lines; diff output 86/88 lines); our\n"
              "LCS diff of original/ vs shipped decision modules measures the same\n"
              "one-function extraction.\n");
  return all_exact ? 0 : 1;
}
