// Synthetic C program generators for the scaling and ablation benches.
#pragma once

#include <sstream>
#include <string>

namespace safeflow::bench {

/// Prelude declaring `regions` shared-memory regions r0..r{n-1}, all
/// non-core, through an shminit function.
inline std::string shmPrelude(int regions) {
  std::ostringstream out;
  out << "typedef struct Cell { float value; int flag; } Cell;\n";
  for (int i = 0; i < regions; ++i) {
    out << "Cell *r" << i << ";\n";
  }
  out << "extern void *shmat(int id, void *a, int f);\n"
         "extern int shmget(int k, int s, int f);\n"
         "extern void sink(float v);\n"
         "/*** SafeFlow Annotation shminit ***/\n"
         "void initShm(void)\n{\n"
         "    char *cursor;\n"
         "    cursor = (char *) shmat(shmget(1, "
      << regions
      << " * sizeof(Cell), 0), 0, 0);\n";
  for (int i = 0; i < regions; ++i) {
    out << "    r" << i << " = (Cell *) cursor;\n"
        << "    cursor = cursor + sizeof(Cell);\n";
  }
  for (int i = 0; i < regions; ++i) {
    out << "    /*** SafeFlow Annotation assume(shmvar(r" << i
        << ", sizeof(Cell))) ***/\n";
  }
  for (int i = 0; i < regions; ++i) {
    out << "    /*** SafeFlow Annotation assume(noncore(r" << i
        << ")) ***/\n";
  }
  out << "}\n";
  return out.str();
}

/// A shared helper chain of `depth` functions, each reading every region,
/// called from `monitors` monitoring functions that each assume a
/// different region core. Call-string context sensitivity re-analyzes the
/// chain once per distinct assumption context; summaries analyze it once.
inline std::string monitorFanProgram(int monitors, int depth) {
  std::ostringstream out;
  out << shmPrelude(monitors);
  // Helper chain, bottom-up.
  out << "float helper" << depth << "(float x)\n{\n    float acc;\n"
      << "    acc = x;\n";
  for (int r = 0; r < monitors; ++r) {
    out << "    acc = acc + r" << r << "->value;\n";
  }
  out << "    return acc;\n}\n";
  for (int d = depth - 1; d >= 1; --d) {
    out << "float helper" << d << "(float x)\n{\n"
        << "    return helper" << (d + 1) << "(x * 0.5f) + 1.0f;\n}\n";
  }
  for (int m = 0; m < monitors; ++m) {
    out << "float monitor" << m << "(void)\n"
        << "/*** SafeFlow Annotation assume(core(r" << m
        << ", 0, sizeof(Cell))) ***/\n{\n"
        << "    if (r" << m << "->flag) {\n"
        << "        return helper1(r" << m << "->value);\n    }\n"
        << "    return 0.0f;\n}\n";
  }
  out << "int main(void)\n{\n    float total;\n    initShm();\n"
      << "    total = 0.0f;\n";
  for (int m = 0; m < monitors; ++m) {
    out << "    total = total + monitor" << m << "();\n";
  }
  out << "    /*** SafeFlow Annotation assert(safe(total)); ***/\n"
      << "    sink(total);\n    return 0;\n}\n";
  return out.str();
}

/// A program of `functions` independent functions whose single loop
/// rotates a value through `cycle` float accumulators (a long dependency
/// chain across the back edge), plus a main that calls them all. The
/// taint fixpoint needs O(cycle) passes per function to converge while
/// the converged state stays O(cycle) — the shape where a recorded
/// post-state replay beats a live re-solve by the widest margin, which
/// is what summary_micro measures. When `edited_fn` is >= 0 that
/// function's rotate multiplier is perturbed by `edit_seed` (1..9),
/// modelling an edit to one function body: its content key — and,
/// Merkle-style, main's — changes, everything else stays addressable.
inline std::string accumulatorCycleProgram(int functions, int cycle,
                                           int edited_fn = -1,
                                           int edit_seed = 0) {
  std::ostringstream out;
  out << shmPrelude(6);
  for (int f = 0; f < functions; ++f) {
    out << "float compute" << f << "(float x, int n)\n{\n    ";
    for (int k = 0; k < cycle; ++k) {
      out << "float a" << k << "; ";
    }
    out << "\n    int i;\n    ";
    for (int k = 0; k < cycle; ++k) {
      out << "a" << k << " = x; ";
    }
    const char* mult = "0.99f";
    const std::string edited = "0.9" + std::to_string(edit_seed) + "f";
    if (f == edited_fn) mult = edited.c_str();
    out << "\n    for (i = 0; i < n; i++) {\n";
    for (int k = cycle - 1; k >= 1; --k) {
      out << "        a" << k << " = a" << (k - 1) << " * " << mult
          << ";\n";
    }
    out << "        a0 = a" << (cycle - 1) << " + r" << (f % 6)
        << "->value;\n    }\n"
        << "    sink(a0);\n    return a" << (cycle / 2) << ";\n}\n";
  }
  out << "int main(void)\n{\n    float total;\n    initShm();\n"
      << "    total = 0.0f;\n";
  for (int f = 0; f < functions; ++f) {
    out << "    total = total + compute" << f << "(1.0f, " << (f % 13 + 1)
        << ");\n";
  }
  out << "    /*** SafeFlow Annotation assert(safe(total)); ***/\n"
      << "    sink(total);\n    return 0;\n}\n";
  return out.str();
}

/// A program with `functions` small numeric functions plus a main that
/// calls them all — for front-end / pipeline scaling measurements.
inline std::string scalingProgram(int functions) {
  std::ostringstream out;
  out << shmPrelude(2);
  for (int i = 0; i < functions; ++i) {
    out << "float compute" << i << "(float x, int n)\n{\n"
        << "    float acc;\n    int i;\n    acc = x;\n"
        << "    for (i = 0; i < n; i++) {\n"
        << "        if (acc > 100.0f) {\n            acc = acc * 0.5f;\n"
        << "        } else {\n            acc = acc * 1.5f + "
        << (i % 7) << ".0f;\n        }\n    }\n"
        << "    return acc;\n}\n";
  }
  out << "int main(void)\n{\n    float total;\n    initShm();\n"
      << "    total = 0.0f;\n";
  for (int i = 0; i < functions; ++i) {
    out << "    total = total + compute" << i << "(1.0f, " << (i % 13 + 1)
        << ");\n";
  }
  out << "    /*** SafeFlow Annotation assert(safe(total)); ***/\n"
      << "    sink(total);\n    return 0;\n}\n";
  return out.str();
}

/// A pointer-churn program stressing the points-to solver: `functions`
/// functions each spin a pointer-swap loop (the phis form copy cycles
/// the SCC condensation must collapse), address a record field through
/// constant pointer arithmetic, and route a pointer through a shared
/// `depth`-deep call chain. This is the worklist-killer shape — without
/// cycle collapse the solve is quadratic in the swap chain.
inline std::string pointerChurnProgram(int functions, int depth) {
  std::ostringstream out;
  out << shmPrelude(2);
  out << "typedef struct Rec { int tag; float val; } Rec;\n";
  // Shared pointer-identity chain: hop1 -> ... -> hopD.
  out << "Rec *hop" << depth << "(Rec *p)\n{\n    return p;\n}\n";
  for (int d = depth - 1; d >= 1; --d) {
    out << "Rec *hop" << d << "(Rec *p)\n{\n    return hop" << (d + 1)
        << "(p);\n}\n";
  }
  for (int i = 0; i < functions; ++i) {
    out << "float churn" << i << "(int n)\n{\n"
        << "    Rec a;\n    Rec b;\n    Rec *p;\n    Rec *q;\n"
        << "    Rec *t;\n    float *vp;\n    int i;\n"
        << "    a.tag = n;\n    a.val = 1.0f;\n"
        << "    b.tag = n + 1;\n    b.val = 2.0f;\n"
        << "    p = &a;\n    q = &b;\n"
        << "    for (i = 0; i < n; i++) {\n"
        << "        t = p;\n        p = q;\n        q = t;\n    }\n"
        << "    p = hop1(p);\n"
        << "    vp = (float *) (&p->tag + 1);\n"
        << "    return *vp + q->val;\n}\n";
  }
  out << "int main(void)\n{\n    float total;\n    initShm();\n"
      << "    total = 0.0f;\n";
  for (int i = 0; i < functions; ++i) {
    out << "    total = total + churn" << i << "(" << (i % 9 + 1) << ");\n";
  }
  out << "    sink(total);\n    return 0;\n}\n";
  return out.str();
}

}  // namespace safeflow::bench
