// Demonstrates that the defect classes of the paper's §4 evaluation are
// *live* in the executable Simplex runtime — each seeded error dependency
// corresponds to observable misbehaviour — and that the static analysis
// catches the same defects in the corpora.
//
//   rigged feedback   the non-core side overwrites the published plant
//                     state; the vulnerable decision variant (monitor
//                     re-reads feedback from shm) then accepts a
//                     destabilizing command and the plant falls over;
//   write-pid         the non-core side plants the core's own pid in the
//                     supervision slot; the core kills itself.
#include <cstdio>

#include "simplex/runtime.h"

int main() {
  using namespace safeflow::simplex;

  std::printf("==========================================================\n");
  std::printf("Defect liveness: the seeded error dependencies, executed\n");
  std::printf("==========================================================\n");

  bool ok = true;

  // Rigged feedback vs vulnerable/fixed decision module.
  for (const bool vulnerable : {true, false}) {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 20.0;
    config.controller_fault = FaultMode::kRail;  // in-range attack
    config.shm_fault = ShmFault::kRigFeedback;
    config.vulnerable_decision = vulnerable;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::printf("rig-feedback, %s decision module: plant %s (%s)\n",
                vulnerable ? "VULNERABLE" : "fixed    ",
                stats.remained_safe ? "stayed safe" : "FELL OVER",
                stats.summary().c_str());
    // The defect is live exactly when the vulnerable variant falls over.
    if (vulnerable == stats.remained_safe) ok = false;
  }

  // Write-pid: the kill defect.
  for (const bool faulted : {true, false}) {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 20.0;
    config.shm_fault = faulted ? ShmFault::kWritePid : ShmFault::kNone;
    config.simulate_kill_signal = true;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::printf("write-pid %s: core %s\n", faulted ? "ON " : "off",
                stats.core_killed_itself ? "KILLED ITSELF"
                                         : "ran to completion");
    if (faulted != stats.core_killed_itself) ok = false;
  }

  // Stale sequence numbers: the synchronization assumption the paper
  // warns about — here simply surfaced as an observable property.
  {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 5.0;
    config.shm_fault = ShmFault::kStaleSeq;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::printf("stale-seq: plant %s with %zu rejections "
                "(monitor, not sequence checking, provides the safety)\n",
                stats.remained_safe ? "stayed safe" : "FELL OVER",
                stats.noncore_rejected);
    ok &= stats.remained_safe;
  }

  std::printf("\nverdict: %s\n",
              ok ? "every seeded defect is live exactly when expected"
                 : "UNEXPECTED liveness results");
  return ok ? 0 : 1;
}
