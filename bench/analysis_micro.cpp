// Pipeline scaling microbenchmarks: front end, SSA construction, and the
// full SafeFlow run over synthetic programs of growing size. The paper
// notes "the overhead due to static analysis time ... is not a
// significant factor in most development and testing efforts"; these
// benches quantify that for this implementation.
#include <benchmark/benchmark.h>

#include "bench/synthetic.h"
#include "cfront/frontend.h"
#include "ir/lowering.h"
#include "ir/ssa.h"
#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;

void BM_FrontendParse(benchmark::State& state) {
  const std::string source =
      bench::scalingProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    cfront::Frontend fe;
    const bool ok = fe.parseBuffer("scaling.c", source);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["functions"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_FrontendParse)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LoweringAndSsa(benchmark::State& state) {
  const std::string source =
      bench::scalingProgram(static_cast<int>(state.range(0)));
  cfront::Frontend fe;
  if (!fe.parseBuffer("scaling.c", source)) {
    state.SkipWithError("parse failed");
    return;
  }
  for (auto _ : state) {
    ir::Module module(fe.types());
    ir::Lowering lowering(fe.unit(), module, fe.diagnostics());
    lowering.run();
    const auto stats = ir::promoteModuleToSsa(module);
    benchmark::DoNotOptimize(stats.phis_inserted);
  }
  state.counters["functions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_LoweringAndSsa)->Arg(8)->Arg(32)->Arg(128);

void BM_FullPipeline(benchmark::State& state) {
  const std::string source =
      bench::scalingProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SafeFlowDriver driver;
    driver.addSource("scaling.c", source);
    benchmark::DoNotOptimize(driver.analyze().warnings.size());
  }
  state.counters["functions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullPipeline)->Arg(8)->Arg(32)->Arg(128);

void BM_CorpusFullAnalysis(benchmark::State& state) {
  const auto systems = corpusSystems(SAFEFLOW_CORPUS_DIR);
  const auto& sys = systems[static_cast<std::size_t>(state.range(0))];
  const SafeFlowOptions options = corpusAnalysisOptions();
  for (auto _ : state) {
    SafeFlowDriver driver(options);
    for (const auto& f : sys.core_files) driver.addFile(f);
    benchmark::DoNotOptimize(driver.analyze().errors.size());
  }
  state.SetLabel(sys.name);
}
BENCHMARK(BM_CorpusFullAnalysis)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
