// Pipeline scaling microbenchmarks: front end, SSA construction, and the
// full SafeFlow run over synthetic programs of growing size. The paper
// notes "the overhead due to static analysis time ... is not a
// significant factor in most development and testing efforts"; these
// benches quantify that for this implementation.
#include <benchmark/benchmark.h>

#include "bench/synthetic.h"
#include "cfront/frontend.h"
#include "ir/lowering.h"
#include "ir/ssa.h"
#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

/// Copies the driver's registry-backed per-phase wall times and key work
/// counters into the benchmark's counter set, so bench output reports the
/// same numbers `safeflow --stats-json` does instead of hand-rolled
/// timing.
void exportPipelineCounters(benchmark::State& state,
                            const SafeFlowDriver& driver) {
  for (const auto& [phase, seconds] : driver.stats().phase_seconds) {
    state.counters[phase + "_ms"] = seconds * 1e3;
  }
  const support::MetricsRegistry& metrics = driver.metrics();
  state.counters["taint_body_analyses"] = static_cast<double>(
      metrics.counterValue("taint.body_analyses"));
  state.counters["shm_worklist_pushes"] = static_cast<double>(
      metrics.counterValue("shm_propagation.worklist_pushes"));
}

void BM_FrontendParse(benchmark::State& state) {
  const std::string source =
      bench::scalingProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    cfront::Frontend fe;
    const bool ok = fe.parseBuffer("scaling.c", source);
    benchmark::DoNotOptimize(ok);
  }
  state.counters["functions"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(source.size()));
}
BENCHMARK(BM_FrontendParse)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_LoweringAndSsa(benchmark::State& state) {
  const std::string source =
      bench::scalingProgram(static_cast<int>(state.range(0)));
  cfront::Frontend fe;
  if (!fe.parseBuffer("scaling.c", source)) {
    state.SkipWithError("parse failed");
    return;
  }
  // Register the phase durations the passes report themselves instead of
  // timing them by hand here.
  support::MetricsRegistry registry;
  support::PipelineObserver observer{&registry, nullptr};
  const support::ScopedObserver install(&observer);
  for (auto _ : state) {
    ir::Module module(fe.types());
    ir::Lowering lowering(fe.unit(), module, fe.diagnostics());
    lowering.run();
    const auto stats = ir::promoteModuleToSsa(module);
    benchmark::DoNotOptimize(stats.phis_inserted);
  }
  state.counters["functions"] = static_cast<double>(state.range(0));
  const double iters = static_cast<double>(state.iterations());
  state.counters["lowering_ms"] =
      registry.durationTotalSeconds("phase.lowering") * 1e3 / iters;
  state.counters["ssa_ms"] =
      registry.durationTotalSeconds("phase.ssa") * 1e3 / iters;
}
BENCHMARK(BM_LoweringAndSsa)->Arg(8)->Arg(32)->Arg(128);

void BM_FullPipeline(benchmark::State& state) {
  const std::string source =
      bench::scalingProgram(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    SafeFlowDriver driver;
    driver.addSource("scaling.c", source);
    benchmark::DoNotOptimize(driver.analyze().warnings.size());
    exportPipelineCounters(state, driver);
  }
  state.counters["functions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FullPipeline)->Arg(8)->Arg(32)->Arg(128);

void BM_CorpusFullAnalysis(benchmark::State& state) {
  const auto systems = corpusSystems(SAFEFLOW_CORPUS_DIR);
  const auto& sys = systems[static_cast<std::size_t>(state.range(0))];
  const SafeFlowOptions options = corpusAnalysisOptions();
  for (auto _ : state) {
    SafeFlowDriver driver(options);
    for (const auto& f : sys.core_files) driver.addFile(f);
    benchmark::DoNotOptimize(driver.analyze().errors.size());
    exportPipelineCounters(state, driver);
  }
  state.SetLabel(sys.name);
}
BENCHMARK(BM_CorpusFullAnalysis)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
