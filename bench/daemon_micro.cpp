// Warm-path latency of the resident daemon vs the one-shot CLI: both
// sides answer the same supervised ip-corpus request from a fully warm
// disk cache, so the difference is exactly what safeflowd exists to
// remove — process spawn, runtime init, and cache open on every
// invocation. Emits BENCH_daemon.json (CI archives it) and exits
// non-zero if either side stopped measuring what it claims to measure
// (cold responses, mismatched reports, a daemon that would not drain).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "support/json.h"
#include "support/subprocess.h"
#include "support/unix_socket.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::vector<std::string> ipCoreFiles() {
  return {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
}

pid_t spawnDaemon(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<std::string> store;
  store.emplace_back(SAFEFLOWD_EXE);
  for (const std::string& a : args) store.push_back(a);
  std::vector<char*> argv;
  argv.reserve(store.size() + 1);
  for (std::string& a : store) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

bool waitForSocket(const std::string& path, double timeout_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    const int fd = support::connectUnixSocket(path);
    if (fd >= 0) {
      ::close(fd);
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::string roundTrip(const std::string& socket_path,
                      const std::string& request) {
  std::string line;
  const int fd = support::connectUnixSocket(socket_path);
  if (fd < 0) return line;
  if (support::writeAll(fd, request)) {
    (void)support::readLine(fd, &line, 64u << 20, 120.0);
  }
  ::close(fd);
  return line;
}

std::string analyzeRequest(const std::vector<std::string>& files,
                           const std::vector<std::string>& flags) {
  std::string request =
      "{\"safeflowd\": 1, \"op\": \"analyze\", \"files\": [";
  for (std::size_t i = 0; i < files.size(); ++i) {
    request += (i == 0 ? "\"" : ", \"") + files[i] + "\"";
  }
  request += "], \"flags\": [";
  for (std::size_t i = 0; i < flags.size(); ++i) {
    request += (i == 0 ? "\"" : ", \"") + flags[i] + "\"";
  }
  request += "]}\n";
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_daemon.json";
  const auto files = ipCoreFiles();
  const std::vector<std::string> flags = {"-I", kCorpus + "/ip/common"};

  const std::string tag = std::to_string(::getpid());
  const std::string socket = "/tmp/safeflow-daemon-bench." + tag + ".sock";
  const std::string cache_dir = "/tmp/safeflow-daemon-bench." + tag;
  const std::string scrub = "rm -rf '" + cache_dir + "'";
  (void)std::system(scrub.c_str());

  const pid_t pid = spawnDaemon({"--socket", socket, "--cache-dir",
                                 cache_dir, "--jobs", "2", "--worker-exe",
                                 SAFEFLOW_EXE, "--log-level", "error"});
  if (pid <= 0 || !waitForSocket(socket, 15.0)) {
    std::cerr << "daemon_micro: daemon failed to start\n";
    return 1;
  }

  const std::string request = analyzeRequest(files, flags);
  bool ok = true;

  // Prime the shared cache (and the daemon) with one cold round trip.
  const std::string cold = roundTrip(socket, request);

  // Warm daemon round trips: connect + request + full response each
  // time, exactly what a build-system client pays per invocation.
  constexpr int kDaemonIters = 20;
  double daemon_total = 0.0, daemon_best = 1e9;
  std::string warm;
  for (int i = 0; i < kDaemonIters; ++i) {
    const auto start = std::chrono::steady_clock::now();
    warm = roundTrip(socket, request);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    daemon_total += s;
    if (s < daemon_best) daemon_best = s;
  }
  support::json::Value warm_doc;
  std::string parse_error;
  if (!support::json::parse(warm, &warm_doc, &parse_error) ||
      warm_doc.memberString("status") != "ok" ||
      warm_doc.memberUint("cache_hits") != files.size() ||
      warm_doc.memberUint("workers_spawned") != 0) {
    std::cerr << "daemon_micro: warm response was not fully warm: "
              << warm << "\n";
    ok = false;
  }

  // One-shot CLI over the same warm cache: spawn, init, open cache,
  // replay, exit — per invocation.
  constexpr int kOneShotIters = 5;
  double oneshot_total = 0.0, oneshot_best = 1e9;
  std::string oneshot_stdout;
  for (int i = 0; i < kOneShotIters; ++i) {
    std::vector<std::string> cli = {SAFEFLOW_EXE, "--isolate", "--jobs",
                                    "2", "--cache-dir", cache_dir};
    cli.insert(cli.end(), flags.begin(), flags.end());
    cli.insert(cli.end(), files.begin(), files.end());
    support::SubprocessOptions opts;
    opts.timeout_seconds = 120.0;
    const auto start = std::chrono::steady_clock::now();
    const support::SubprocessResult run = support::runSubprocess(cli, opts);
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    oneshot_total += s;
    if (s < oneshot_best) oneshot_best = s;
    if (!run.exitedWith(0)) {
      std::cerr << "daemon_micro: one-shot run failed\n" << run.err_text;
      ok = false;
    }
    oneshot_stdout = run.out_text;
  }
  if (warm_doc.memberString("stdout") != oneshot_stdout) {
    std::cerr << "daemon_micro: daemon and one-shot reports differ\n";
    ok = false;
  }

  // A benchmarked daemon still has to drain cleanly.
  ::kill(pid, SIGTERM);
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    std::cerr << "daemon_micro: daemon did not drain cleanly\n";
    ok = false;
  }
  (void)std::system(scrub.c_str());

  const double daemon_mean = daemon_total / kDaemonIters;
  const double oneshot_mean = oneshot_total / kOneShotIters;
  const double speedup =
      daemon_mean > 0.0 ? oneshot_mean / daemon_mean : 0.0;
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"daemon_micro\",\n"
      << "  \"files\": " << files.size() << ",\n"
      << "  \"jobs\": 2,\n"
      << "  \"daemon_warm_mean_seconds\": " << daemon_mean << ",\n"
      << "  \"daemon_warm_best_seconds\": " << daemon_best << ",\n"
      << "  \"oneshot_warm_mean_seconds\": " << oneshot_mean << ",\n"
      << "  \"oneshot_warm_best_seconds\": " << oneshot_best << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"valid\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf(
      "daemon_micro: %zu files, daemon %.4fs, one-shot %.4fs, %.1fx\n",
      files.size(), daemon_mean, oneshot_mean, speedup);
  return ok ? 0 : 1;
}
