// Cold vs warm wall time for the incremental analysis cache: runs the
// supervised ip corpus once against an empty --cache-dir (cold: every
// shard spawns a worker and stores its entry) and once against the
// populated cache (warm: every shard is a hit, no workers at all), and
// emits BENCH_cache.json with both times and the speedup. Exits
// non-zero if the warm run missed the cache or changed the report —
// a benchmark that silently measured the wrong thing is worse than
// none. CI runs this and archives the JSON.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "safeflow/cache_manager.h"
#include "safeflow/supervisor.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::vector<std::string> ipCoreFiles() {
  return {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
}

struct RunResult {
  double seconds = 0.0;
  std::string render;
  std::uint64_t hits = 0;
  std::uint64_t spawned = 0;
};

RunResult timedRun(const std::vector<std::string>& files,
                   const CacheOptions& cache_options) {
  support::MetricsRegistry registry;
  CacheManager cache(cache_options, &registry);
  SupervisorOptions opts;
  opts.worker_exe = SAFEFLOW_EXE;
  opts.jobs = 4;
  opts.cache = &cache;
  Supervisor sup(opts, &registry);

  const auto start = std::chrono::steady_clock::now();
  const MergedReport merged = sup.run(files);
  const auto end = std::chrono::steady_clock::now();

  RunResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.render = merged.render();
  result.hits = registry.counterValue("cache.hits");
  result.spawned = registry.counterValue("supervisor.workers_spawned");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_cache.json";
  const auto files = ipCoreFiles();

  const std::string cache_dir =
      "/tmp/safeflow-cache-bench." + std::to_string(::getpid());
  const std::string scrub = "rm -rf '" + cache_dir + "'";
  (void)std::system(scrub.c_str());

  CacheOptions cache_options;
  cache_options.enabled = true;
  cache_options.dir = cache_dir;

  const RunResult cold = timedRun(files, cache_options);
  // Best-of-3 warm: the cold time includes one-off page-cache warming of
  // the worker binary; the warm time should not inherit that noise.
  RunResult warm = timedRun(files, cache_options);
  for (int i = 0; i < 2; ++i) {
    const RunResult again = timedRun(files, cache_options);
    if (again.seconds < warm.seconds) warm = again;
  }
  (void)std::system(scrub.c_str());

  bool ok = true;
  if (cold.hits != 0 || cold.spawned != files.size()) {
    std::cerr << "cache_micro: cold run was not cold (hits=" << cold.hits
              << ", spawned=" << cold.spawned << ")\n";
    ok = false;
  }
  if (warm.hits != files.size() || warm.spawned != 0) {
    std::cerr << "cache_micro: warm run was not fully warm (hits="
              << warm.hits << ", spawned=" << warm.spawned << ")\n";
    ok = false;
  }
  if (warm.render != cold.render) {
    std::cerr << "cache_micro: warm report differs from cold report\n";
    ok = false;
  }

  const double speedup =
      warm.seconds > 0.0 ? cold.seconds / warm.seconds : 0.0;
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"cache_micro\",\n"
      << "  \"files\": " << files.size() << ",\n"
      << "  \"jobs\": 4,\n"
      << "  \"cold_seconds\": " << cold.seconds << ",\n"
      << "  \"warm_seconds\": " << warm.seconds << ",\n"
      << "  \"speedup\": " << speedup << ",\n"
      << "  \"warm_hits\": " << warm.hits << ",\n"
      << "  \"valid\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf("cache_micro: %zu files, cold %.3fs, warm %.3fs, %.1fx\n",
              files.size(), cold.seconds, warm.seconds, speedup);
  return ok ? 0 : 1;
}
