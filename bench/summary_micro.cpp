// Cost of re-analyzing after a one-function edit, with and without the
// function-level summary store: runs the in-process pipeline over a
// synthetic module whose taint fixpoint dominates wall time (see
// bench::accumulatorCycleProgram), then measures
//
//   cold          summaries on, empty store — every function solves
//                 live and records;
//   tu_warm       summaries off, one function edited — what a PR 4
//                 TU-cache warm run pays after an edit, since a changed
//                 TU misses the per-file cache and the whole module
//                 re-analyzes;
//   summary_warm  summaries on, resident store, one function edited —
//                 only the edited cone (the function + its callers)
//                 re-solves, the rest replays recorded post-states.
//
// Each summary_warm rep perturbs the edited function differently so the
// store never holds that rep's cone in advance (a rep that replayed its
// own edit would measure a fully-warm run, not an incremental one).
// Emits BENCH_summaries.json and exits non-zero when the run is
// invalid: a report mismatch against a summaries-off reference, a live
// re-solve outside the edited cone, or a speedup under the 5x floor the
// subsystem is specified to clear on this shape. CI runs this and
// archives the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <string>

#include "bench/synthetic.h"
#include "safeflow/driver.h"
#include "safeflow/summary_store.h"

namespace {

using namespace safeflow;

constexpr int kFunctions = 150;
constexpr int kCycle = 96;
constexpr int kEditedFn = 75;
constexpr double kSpeedupFloor = 5.0;

struct RunResult {
  double seconds = 0.0;
  std::string render;
  bool degraded = false;
  SummaryStoreStats stats;
  std::set<std::string> resolved_taint;
};

RunResult runOnce(const std::string& source, SummaryStore* store) {
  SafeFlowOptions o;
  o.summaries.enabled = store != nullptr;
  SafeFlowDriver d(o);
  if (store != nullptr) d.setSummaryStore(store);
  const auto start = std::chrono::steady_clock::now();
  if (!d.addSource("bench.c", source)) {
    std::cerr << "summary_micro: front end rejected the generated source\n";
    std::exit(1);
  }
  const auto& report = d.analyze();
  const auto end = std::chrono::steady_clock::now();

  RunResult r;
  r.seconds = std::chrono::duration<double>(end - start).count();
  r.render = report.render(d.sources());
  r.degraded = d.degraded();
  if (store != nullptr) {
    r.stats = store->stats();
    r.resolved_taint = store->resolvedFunctions(SummaryPhase::kTaint);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_summaries.json";

  const std::string base =
      bench::accumulatorCycleProgram(kFunctions, kCycle);

  // Memory-only resident store: the in-memory tier survives across
  // SafeFlowDriver instances, which is exactly the daemon / supervisor
  // warm path without disk noise in the timings.
  SummaryStore store("", kAnalyzerVersion);
  const RunResult cold = runOnce(base, &store);

  // Edit-one-function warm: best-of-3, a fresh edit per rep so the cone
  // is never pre-recorded. The last rep's render is kept for the
  // byte-identity check against the summaries-off baseline below (the
  // best rep may have analyzed a different edit).
  RunResult summary_warm;
  std::string last_render;
  bool cone_ok = true;
  std::string last_edit;
  for (int rep = 1; rep <= 3; ++rep) {
    last_edit =
        bench::accumulatorCycleProgram(kFunctions, kCycle, kEditedFn, rep);
    const RunResult r = runOnce(last_edit, &store);
    // Only the edited function's cone (itself + its sole caller, main)
    // may solve live on a warm run.
    for (const std::string& fn : r.resolved_taint) {
      if (fn != "compute" + std::to_string(kEditedFn) && fn != "main") {
        std::cerr << "summary_micro: unexpected live re-solve of " << fn
                  << " on a warm run\n";
        cone_ok = false;
      }
    }
    last_render = r.render;
    if (rep == 1 || r.seconds < summary_warm.seconds) summary_warm = r;
  }

  // Edit-one-TU baseline: summaries off, full re-analysis of the module
  // carrying the last edit. Best-of-2 (the shape converges identically
  // every time). Doubles as the byte-identity reference: the warm run
  // over the same source must render the same report (findings, not
  // timings — the render carries no clocks).
  RunResult tu_warm = runOnce(last_edit, nullptr);
  {
    const RunResult again = runOnce(last_edit, nullptr);
    if (again.seconds < tu_warm.seconds) tu_warm = again;
  }

  bool ok = cone_ok;
  if (cold.degraded || tu_warm.degraded || summary_warm.degraded) {
    std::cerr << "summary_micro: a run degraded; timings are meaningless\n";
    ok = false;
  }
  if (cold.stats.spliced != 0 && cold.stats.invalidated == 0) {
    std::cerr << "summary_micro: cold run was not cold\n";
    ok = false;
  }
  if (last_render != tu_warm.render) {
    std::cerr << "summary_micro: warm report differs from the "
                 "summaries-off baseline (dumped next to the JSON)\n";
    std::ofstream(out_path + ".warm.txt", std::ios::trunc) << last_render;
    std::ofstream(out_path + ".base.txt", std::ios::trunc)
        << tu_warm.render;
    ok = false;
  }

  const double speedup = summary_warm.seconds > 0.0
                             ? tu_warm.seconds / summary_warm.seconds
                             : 0.0;
  const double vs_cold =
      summary_warm.seconds > 0.0 ? cold.seconds / summary_warm.seconds : 0.0;
  if (speedup < kSpeedupFloor) {
    std::cerr << "summary_micro: edit-one-function warm is only " << speedup
              << "x faster than edit-one-TU warm (floor " << kSpeedupFloor
              << "x)\n";
    ok = false;
  }

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"summary_micro\",\n"
      << "  \"functions\": " << kFunctions << ",\n"
      << "  \"cycle\": " << kCycle << ",\n"
      << "  \"cold_seconds\": " << cold.seconds << ",\n"
      << "  \"tu_warm_seconds\": " << tu_warm.seconds << ",\n"
      << "  \"summary_warm_seconds\": " << summary_warm.seconds << ",\n"
      << "  \"speedup_vs_tu_warm\": " << speedup << ",\n"
      << "  \"speedup_vs_cold\": " << vs_cold << ",\n"
      << "  \"warm_hits\": " << summary_warm.stats.hits << ",\n"
      << "  \"warm_misses\": " << summary_warm.stats.misses << ",\n"
      << "  \"warm_invalidated\": " << summary_warm.stats.invalidated
      << ",\n"
      << "  \"warm_spliced\": " << summary_warm.stats.spliced << ",\n"
      << "  \"valid\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf(
      "summary_micro: %d fns, cold %.3fs, tu_warm %.3fs, "
      "summary_warm %.3fs, %.1fx vs tu_warm\n",
      kFunctions, cold.seconds, tu_warm.seconds, summary_warm.seconds,
      speedup);
  return ok ? 0 : 1;
}
