// Overhead of the telemetry layer (DESIGN.md §13): runs the in-process
// pipeline over a synthetic module with telemetry off (no span
// collection — the default) and with full telemetry (span collection
// on), best-of-N wall time each, and micro-times the always-on
// primitives (flightRecord, a below-threshold SAFEFLOW_LOG). Emits
// BENCH_telemetry.json; exits non-zero when the run is invalid: full
// telemetry costs more than the 5% overhead budget, or an always-on
// primitive stops being cheap enough to be always-on. CI runs this and
// archives the JSON.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/synthetic.h"
#include "safeflow/driver.h"
#include "support/flight_recorder.h"
#include "support/log.h"

namespace {

using namespace safeflow;

double runOnce(const std::string& program, bool telemetry) {
  SafeFlowOptions o;
  o.collect_trace = telemetry;
  SafeFlowDriver d(o);
  const auto start = std::chrono::steady_clock::now();
  if (!d.addSource("synthetic.c", program)) {
    std::cerr << "telemetry_micro: synthetic module failed to parse\n";
    std::exit(1);
  }
  d.analyze();
  const auto end = std::chrono::steady_clock::now();
  if (telemetry && d.trace() == nullptr) {
    std::cerr << "telemetry_micro: trace collection did not engage\n";
    std::exit(1);
  }
  return std::chrono::duration<double>(end - start).count();
}

double bestOf(const std::string& program, bool telemetry, int reps) {
  double best = runOnce(program, telemetry);
  for (int i = 1; i < reps; ++i) {
    best = std::min(best, runOnce(program, telemetry));
  }
  return best;
}

/// ns per call over `iters` iterations of `fn`.
template <typename Fn>
double nsPerCall(int iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         iters;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_telemetry.json";
  constexpr int kReps = 7;
  constexpr double kOverheadBudget = 1.05;  // full telemetry: <5%
  constexpr double kFlightRecordBudgetNs = 2000.0;
  constexpr double kDisabledLogBudgetNs = 200.0;

  // Big enough that a 5% overhead is measurable above scheduler noise.
  const std::string program = bench::scalingProgram(400);

  const double off_seconds = bestOf(program, /*telemetry=*/false, kReps);
  const double on_seconds = bestOf(program, /*telemetry=*/true, kReps);
  const double ratio = off_seconds > 0.0 ? on_seconds / off_seconds : 0.0;

  // The always-on primitives: the flight-recorder append (runs on every
  // phase entry / cache decision / diagnostic, handler or not) and a
  // SAFEFLOW_LOG below the configured threshold (the macro's guard must
  // make disabled logging nearly free).
  const double flight_record_ns = nsPerCall(
      200000, [] { support::flightRecord("bench", "overhead probe"); });
  support::flightRecorderReset();
  support::Logger::instance().configure(support::LogLevel::kError,
                                        /*json=*/false, "");
  const double disabled_log_ns = nsPerCall(200000, [] {
    SAFEFLOW_LOG(support::LogLevel::kDebug, "bench", "never emitted",
                 {{"k", "v"}});
  });

  bool ok = true;
  if (ratio > kOverheadBudget) {
    std::cerr << "telemetry_micro: full-telemetry ratio " << ratio
              << " exceeds budget " << kOverheadBudget << "\n";
    ok = false;
  }
  if (flight_record_ns > kFlightRecordBudgetNs) {
    std::cerr << "telemetry_micro: flightRecord costs " << flight_record_ns
              << " ns/event; too expensive to stay always-on\n";
    ok = false;
  }
  if (disabled_log_ns > kDisabledLogBudgetNs) {
    std::cerr << "telemetry_micro: a disabled SAFEFLOW_LOG costs "
              << disabled_log_ns << " ns/call; the guard is broken\n";
    ok = false;
  }

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n"
      << "  \"bench\": \"telemetry_micro\",\n"
      << "  \"reps\": " << kReps << ",\n"
      << "  \"off_seconds\": " << off_seconds << ",\n"
      << "  \"on_seconds\": " << on_seconds << ",\n"
      << "  \"overhead_ratio\": " << ratio << ",\n"
      << "  \"overhead_budget\": " << kOverheadBudget << ",\n"
      << "  \"flight_record_ns\": " << flight_record_ns << ",\n"
      << "  \"flight_record_budget_ns\": " << kFlightRecordBudgetNs << ",\n"
      << "  \"disabled_log_ns\": " << disabled_log_ns << ",\n"
      << "  \"disabled_log_budget_ns\": " << kDisabledLogBudgetNs << ",\n"
      << "  \"valid\": " << (ok ? "true" : "false") << "\n"
      << "}\n";
  out.close();

  std::printf(
      "telemetry_micro: off %.3fs, on %.3fs, ratio %.3f, "
      "flightRecord %.0f ns, disabled log %.1f ns\n",
      off_seconds, on_seconds, ratio, flight_record_ns, disabled_log_ns);
  return ok ? 0 : 1;
}
