// Executable rendition of the paper's Fig. 1 (the inverted pendulum
// Simplex architecture): the core controller balancing the plant while
// the non-core controller publishes through shared memory, under a sweep
// of non-core misbehaviours. Prints the |angle| time series (sampled) and
// the accept/reject statistics for each scenario — the "shape" expected
// from the architecture is that the plant stays inside its safe range in
// every scenario, with the monitor rejecting non-core output exactly when
// it misbehaves.
#include <cstdio>

#include "simplex/runtime.h"

int main() {
  using namespace safeflow::simplex;

  struct Scenario {
    const char* name;
    FaultMode fault;
  };
  const Scenario scenarios[] = {
      {"healthy", FaultMode::kNone},
      {"overdrive (12V)", FaultMode::kOverdrive},
      {"rail (+5V pinned)", FaultMode::kRail},
      {"NaN output", FaultMode::kNaN},
      {"stuck output", FaultMode::kStuck},
      {"noisy output", FaultMode::kNoisy},
      {"stale state", FaultMode::kDelayed},
  };

  std::printf("=====================================================\n");
  std::printf("Fig. 1: inverted pendulum Simplex architecture\n");
  std::printf("30 s runs at 50 Hz; fault onset at t=5 s\n");
  std::printf("=====================================================\n");
  std::printf("%-20s %6s %9s %9s %10s %8s\n", "scenario", "safe?",
              "nc-used", "rejected", "takeovers", "max|th|");

  bool all_safe = true;
  for (const Scenario& s : scenarios) {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 30.0;
    config.controller_fault = s.fault;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::printf("%-20s %6s %9zu %9zu %10zu %8.4f\n", s.name,
                stats.remained_safe ? "yes" : "NO", stats.noncore_used,
                stats.noncore_rejected, stats.safety_takeovers,
                stats.max_abs_angle);
    all_safe &= stats.remained_safe;
  }

  // The angle trace for the rail fault: the monitor clamps the excursion.
  {
    InvertedPendulum plant;
    RuntimeConfig config;
    config.duration = 20.0;
    config.controller_fault = FaultMode::kRail;
    SimplexRuntime rt(plant, config);
    const RuntimeStats stats = rt.run();
    std::printf("\n|angle| series under the rail fault "
                "(one sample per 0.5 s):\n  ");
    for (double a : stats.angle_trace) std::printf("%.3f ", a);
    std::printf("\n");
  }

  std::printf("\narchitecture verdict: %s\n",
              all_safe ? "core kept the plant safe in every scenario"
                       : "PLANT LEFT ITS SAFE RANGE");
  return all_safe ? 0 : 1;
}
