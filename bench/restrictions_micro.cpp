// Restriction-checking microbenchmarks (paper §3.2): each of P1, P2, P3,
// A1, A2 violated in isolation, verifying the checker fires exactly once
// per seeded violation and measuring the cost of the affine (Omega-lite)
// machinery as loop nests grow.
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/affine.h"
#include "bench/synthetic.h"
#include "safeflow/corpus_info.h"
#include "safeflow/driver.h"

namespace {

using namespace safeflow;

std::size_t ruleCount(const analysis::SafeFlowReport& report,
                      const std::string& rule) {
  std::size_t n = 0;
  for (const auto& v : report.restriction_violations) {
    if (v.rule == rule) ++n;
  }
  return n;
}

const char* kMutants[][2] = {
    {"P1", "extern int shmdt(void *a);\n"
           "void bad(void) { shmdt(r0); }\n"
           "int main(void) { initShm(); bad(); return 0; }\n"},
    {"P2", "Cell *stash[2];\n"
           "void bad(void) { stash[0] = r0; }\n"
           "int main(void) { initShm(); bad(); return 0; }\n"},
    {"P3", "typedef struct Wide { double a; double b; } Wide;\n"
           "double bad(void) { Wide *w = (Wide *)r0; return w->a; }\n"
           "int main(void) { initShm(); bad(); return 0; }\n"},
    {"A1", "float bad(void) { return r1[5].value; }\n"
           "int main(void) { initShm(); bad(); return 0; }\n"},
    {"A2", "float bad(void) {\n"
           "  float t = 0.0f;\n"
           "  for (int i = 0; i < 3; i++) { t += r1[i].value; }\n"
           "  return t;\n}\n"
           "int main(void) { initShm(); bad(); return 0; }\n"},
};

void BM_RestrictionMutant(benchmark::State& state) {
  const auto& [rule, body] = kMutants[state.range(0)];
  // r1 spans a single Cell by default; A1/A2 index past it.
  const std::string source = bench::shmPrelude(2) + body;
  std::size_t fired = 0;
  for (auto _ : state) {
    SafeFlowDriver driver;
    driver.addSource("mutant.c", source);
    fired = ruleCount(driver.analyze(), rule);
    benchmark::DoNotOptimize(fired);
  }
  state.counters["violations"] = static_cast<double>(fired);
  state.SetLabel(rule);
}
BENCHMARK(BM_RestrictionMutant)->DenseRange(0, 4);

void BM_AffineSolverScaling(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  for (auto _ : state) {
    analysis::LinearSystem sys;
    int prev = -1;
    for (int i = 0; i < vars; ++i) {
      const int v = sys.addVariable();
      sys.addLowerBound(v, 0);
      sys.addUpperBound(v, 100);
      if (prev >= 0) {
        // v = prev + 1
        analysis::LinearConstraint eq;
        eq.coeffs[v] = 1;
        eq.coeffs[prev] = -1;
        eq.constant = -1;
        sys.addEquality(eq);
      }
      prev = v;
    }
    // Ask for a violation that cannot happen: last var > 100 + vars.
    sys.addLowerBound(prev, 101 + vars);
    benchmark::DoNotOptimize(sys.isFeasible());
  }
  state.counters["variables"] = static_cast<double>(vars);
}
BENCHMARK(BM_AffineSolverScaling)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_CleanCorpusHasNoViolations(benchmark::State& state) {
  // The paper: "no source changes were necessary for the systems to
  // adhere to our language restrictions" — the corpora stay clean.
  const auto systems = corpusSystems(SAFEFLOW_CORPUS_DIR);
  std::size_t total = 0;
  const SafeFlowOptions options = corpusAnalysisOptions();
  for (auto _ : state) {
    total = 0;
    for (const auto& sys : systems) {
      SafeFlowDriver driver(options);
      for (const auto& f : sys.core_files) driver.addFile(f);
      total += driver.analyze().restriction_violations.size();
    }
  }
  state.counters["violations"] = static_cast<double>(total);
}
BENCHMARK(BM_CleanCorpusHasNoViolations);

}  // namespace

BENCHMARK_MAIN();
