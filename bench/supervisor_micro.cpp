// Microbenchmarks for the out-of-process supervisor: what does crash
// isolation cost? Compares in-process analysis of a file against a
// supervised run of the same file (fork/exec + JSON round-trip + merge)
// and measures how the supervised corpus run scales with --jobs.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "safeflow/driver.h"
#include "safeflow/supervisor.h"
#include "support/metrics.h"

namespace {

using namespace safeflow;

const std::string kCorpus = SAFEFLOW_CORPUS_DIR;

std::vector<std::string> ipCoreFiles() {
  return {
      kCorpus + "/ip/core/comm.c",      kCorpus + "/ip/core/decision.c",
      kCorpus + "/ip/core/filter.c",    kCorpus + "/ip/core/main.c",
      kCorpus + "/ip/core/safety.c",    kCorpus + "/ip/core/selftest.c",
      kCorpus + "/ip/core/telemetry.c",
  };
}

void BM_InProcessSingleFile(benchmark::State& state) {
  const std::string file = kCorpus + "/running_example/core.c";
  for (auto _ : state) {
    SafeFlowDriver driver;
    (void)driver.addFile(file);
    driver.analyze();
    benchmark::DoNotOptimize(driver.report());
  }
}
BENCHMARK(BM_InProcessSingleFile)->Unit(benchmark::kMillisecond);

void BM_SupervisedSingleFile(benchmark::State& state) {
  // The delta vs BM_InProcessSingleFile is the isolation overhead:
  // fork/exec, pipe capture, JSON render + reparse, merge.
  const std::vector<std::string> files = {kCorpus +
                                          "/running_example/core.c"};
  SupervisorOptions opts;
  opts.worker_exe = SAFEFLOW_EXE;
  for (auto _ : state) {
    support::MetricsRegistry registry;
    Supervisor sup(opts, &registry);
    benchmark::DoNotOptimize(sup.run(files));
  }
}
BENCHMARK(BM_SupervisedSingleFile)->Unit(benchmark::kMillisecond);

void BM_SupervisedCorpusByJobs(benchmark::State& state) {
  const auto files = ipCoreFiles();
  SupervisorOptions opts;
  opts.worker_exe = SAFEFLOW_EXE;
  opts.jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    support::MetricsRegistry registry;
    Supervisor sup(opts, &registry);
    benchmark::DoNotOptimize(sup.run(files));
  }
  state.counters["files"] = static_cast<double>(files.size());
}
BENCHMARK(BM_SupervisedCorpusByJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
