#include "annotations/annotation.h"

#include <cctype>
#include <cstdlib>

#include "support/string_utils.h"

namespace safeflow::annotations {

std::string_view annotationKindName(AnnotationKind k) {
  switch (k) {
    case AnnotationKind::kAssumeCore: return "assume(core)";
    case AnnotationKind::kAssertSafe: return "assert(safe)";
    case AnnotationKind::kShmInit: return "shminit";
    case AnnotationKind::kShmVar: return "shmvar";
    case AnnotationKind::kNonCore: return "noncore";
  }
  return "?";
}

void AnnotationParser::skipSpace(Cursor& c) const {
  while (c.pos < c.text.size() &&
         std::isspace(static_cast<unsigned char>(c.text[c.pos]))) {
    ++c.pos;
  }
}

bool AnnotationParser::acceptChar(Cursor& c, char ch) const {
  skipSpace(c);
  if (c.pos < c.text.size() && c.text[c.pos] == ch) {
    ++c.pos;
    return true;
  }
  return false;
}

std::string AnnotationParser::parseIdent(Cursor& c) const {
  skipSpace(c);
  std::string out;
  while (c.pos < c.text.size()) {
    const char ch = c.text[c.pos];
    if (std::isalnum(static_cast<unsigned char>(ch)) || ch == '_') {
      out.push_back(ch);
      ++c.pos;
    } else {
      break;
    }
  }
  return out;
}

const cfront::Type* AnnotationParser::resolveTypeName(const std::string& name,
                                                      bool is_struct) const {
  if (is_struct) return types_.findStruct(name);
  if (auto it = typedefs_.find(name); it != typedefs_.end()) {
    return it->second;
  }
  if (name == "int") return types_.intType();
  if (name == "char") return types_.charType();
  if (name == "short") return types_.shortType();
  if (name == "long") return types_.longType();
  if (name == "float") return types_.floatType();
  if (name == "double") return types_.doubleType();
  return types_.findStruct(name);  // allow bare struct tags
}

std::int64_t AnnotationParser::parsePrimary(Cursor& c, bool& ok) const {
  skipSpace(c);
  if (c.pos >= c.text.size()) {
    ok = false;
    return 0;
  }
  const char ch = c.text[c.pos];
  if (std::isdigit(static_cast<unsigned char>(ch))) {
    std::size_t end = c.pos;
    while (end < c.text.size() &&
           std::isdigit(static_cast<unsigned char>(c.text[end]))) {
      ++end;
    }
    const std::int64_t value =
        std::strtoll(std::string(c.text.substr(c.pos, end - c.pos)).c_str(),
                     nullptr, 10);
    c.pos = end;
    return value;
  }
  if (ch == '(') {
    ++c.pos;
    const std::int64_t v = parseConstExpr(c, ok);
    if (!acceptChar(c, ')')) ok = false;
    return v;
  }
  const std::string ident = parseIdent(c);
  if (ident == "sizeof") {
    if (!acceptChar(c, '(')) {
      ok = false;
      return 0;
    }
    std::string type_name = parseIdent(c);
    bool is_struct = false;
    if (type_name == "struct" || type_name == "union") {
      is_struct = true;
      type_name = parseIdent(c);
      if (is_struct && c.text.find("union") != std::string_view::npos) {
        // union tags are registered as "union <tag>" by the front end
      }
    }
    // consume a trailing '*'? pointer sizeof
    skipSpace(c);
    bool is_pointer = false;
    while (c.pos < c.text.size() && c.text[c.pos] == '*') {
      is_pointer = true;
      ++c.pos;
      skipSpace(c);
    }
    if (!acceptChar(c, ')')) {
      ok = false;
      return 0;
    }
    if (is_pointer) return 8;
    const cfront::Type* t = resolveTypeName(type_name, is_struct);
    if (t == nullptr) {
      ok = false;
      return 0;
    }
    return static_cast<std::int64_t>(t->size());
  }
  ok = false;
  return 0;
}

std::int64_t AnnotationParser::parseTerm(Cursor& c, bool& ok) const {
  std::int64_t v = parsePrimary(c, ok);
  while (ok) {
    skipSpace(c);
    if (c.pos < c.text.size() && c.text[c.pos] == '*') {
      ++c.pos;
      v *= parsePrimary(c, ok);
    } else if (c.pos < c.text.size() && c.text[c.pos] == '/') {
      ++c.pos;
      const std::int64_t d = parsePrimary(c, ok);
      if (d == 0) {
        ok = false;
      } else {
        v /= d;
      }
    } else {
      break;
    }
  }
  return v;
}

std::int64_t AnnotationParser::parseConstExpr(Cursor& c, bool& ok) const {
  std::int64_t v = parseTerm(c, ok);
  while (ok) {
    skipSpace(c);
    if (c.pos < c.text.size() && c.text[c.pos] == '+') {
      ++c.pos;
      v += parseTerm(c, ok);
    } else if (c.pos < c.text.size() && c.text[c.pos] == '-') {
      ++c.pos;
      v -= parseTerm(c, ok);
    } else {
      break;
    }
  }
  return v;
}

void AnnotationParser::fail(const cfront::RawAnnotation& raw,
                            const std::string& why) {
  diags_.error(raw.location, "annotation",
               "malformed SafeFlow annotation: " + why + " (in '" +
                   raw.text + "')");
}

std::optional<ParsedAnnotation> AnnotationParser::parse(
    const cfront::RawAnnotation& raw) {
  Cursor c{support::trim(raw.text), 0};
  ParsedAnnotation out;
  out.location = raw.location;

  const std::string head = parseIdent(c);
  if (head == "shminit") {
    out.kind = AnnotationKind::kShmInit;
    return out;
  }
  if (head == "assume") {
    if (!acceptChar(c, '(')) {
      fail(raw, "expected '(' after assume");
      return std::nullopt;
    }
    const std::string pred = parseIdent(c);
    if (pred == "core") {
      out.kind = AnnotationKind::kAssumeCore;
      if (!acceptChar(c, '(')) {
        fail(raw, "expected '(' after core");
        return std::nullopt;
      }
      out.pointer_name = parseIdent(c);
      if (out.pointer_name.empty()) {
        fail(raw, "expected pointer name in core(...)");
        return std::nullopt;
      }
      if (!acceptChar(c, ',')) {
        fail(raw, "expected offset in core(...)");
        return std::nullopt;
      }
      bool ok = true;
      out.offset = parseConstExpr(c, ok);
      if (!ok || !acceptChar(c, ',')) {
        fail(raw, "expected constant offset and size in core(...)");
        return std::nullopt;
      }
      out.size = parseConstExpr(c, ok);
      if (!ok) {
        fail(raw, "size in core(...) must be a constant expression");
        return std::nullopt;
      }
      if (!acceptChar(c, ')') || !acceptChar(c, ')')) {
        fail(raw, "unbalanced parentheses");
        return std::nullopt;
      }
      return out;
    }
    if (pred == "shmvar") {
      out.kind = AnnotationKind::kShmVar;
      if (!acceptChar(c, '(')) {
        fail(raw, "expected '(' after shmvar");
        return std::nullopt;
      }
      out.pointer_name = parseIdent(c);
      if (out.pointer_name.empty() || !acceptChar(c, ',')) {
        fail(raw, "shmvar takes (pointer, size)");
        return std::nullopt;
      }
      bool ok = true;
      out.size = parseConstExpr(c, ok);
      if (!ok) {
        fail(raw, "size in shmvar(...) must be a constant expression");
        return std::nullopt;
      }
      if (!acceptChar(c, ')') || !acceptChar(c, ')')) {
        fail(raw, "unbalanced parentheses");
        return std::nullopt;
      }
      return out;
    }
    if (pred == "noncore") {
      out.kind = AnnotationKind::kNonCore;
      if (!acceptChar(c, '(')) {
        fail(raw, "expected '(' after noncore");
        return std::nullopt;
      }
      out.pointer_name = parseIdent(c);
      if (out.pointer_name.empty()) {
        fail(raw, "expected pointer name in noncore(...)");
        return std::nullopt;
      }
      if (!acceptChar(c, ')') || !acceptChar(c, ')')) {
        fail(raw, "unbalanced parentheses");
        return std::nullopt;
      }
      return out;
    }
    fail(raw, "unknown assume predicate '" + pred + "'");
    return std::nullopt;
  }
  if (head == "assert") {
    if (!acceptChar(c, '(')) {
      fail(raw, "expected '(' after assert");
      return std::nullopt;
    }
    const std::string pred = parseIdent(c);
    if (pred != "safe") {
      fail(raw, "assert supports only the safe(x) predicate");
      return std::nullopt;
    }
    if (!acceptChar(c, '(')) {
      fail(raw, "expected '(' after safe");
      return std::nullopt;
    }
    out.kind = AnnotationKind::kAssertSafe;
    out.value_name = parseIdent(c);
    if (out.value_name.empty()) {
      fail(raw, "expected variable name in safe(...)");
      return std::nullopt;
    }
    if (!acceptChar(c, ')') || !acceptChar(c, ')')) {
      fail(raw, "unbalanced parentheses");
      return std::nullopt;
    }
    return out;
  }
  fail(raw, "unknown annotation head '" + head + "'");
  return std::nullopt;
}

}  // namespace safeflow::annotations
