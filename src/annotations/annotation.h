// Parser for the SafeFlow annotation language (paper §3.1, §3.2.1):
//
//   assume(core(ptr, offset, size))   -- monitoring-function fact
//   assert(safe(x))                   -- critical-data requirement
//   shminit                           -- shm initializing function marker
//   assume(shmvar(ptr, size))         -- shm variable post-condition
//   assume(noncore(ptr))              -- non-core region post-condition
//
// offset/size are integer constant expressions over literals and
// sizeof(type-name), with + - * and parentheses.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "cfront/ast.h"
#include "cfront/types.h"
#include "support/diagnostics.h"

namespace safeflow::annotations {

enum class AnnotationKind {
  kAssumeCore,
  kAssertSafe,
  kShmInit,
  kShmVar,
  kNonCore,
};

[[nodiscard]] std::string_view annotationKindName(AnnotationKind k);

struct ParsedAnnotation {
  AnnotationKind kind = AnnotationKind::kShmInit;
  /// Pointer being described (core/shmvar/noncore).
  std::string pointer_name;
  /// Value asserted safe (assert(safe(x))).
  std::string value_name;
  std::int64_t offset = 0;  // core
  std::int64_t size = 0;    // core / shmvar
  support::SourceLocation location;
};

class AnnotationParser {
 public:
  AnnotationParser(const cfront::TypeContext& types,
                   const std::map<std::string, const cfront::Type*>& typedefs,
                   support::DiagnosticEngine& diags)
      : types_(types), typedefs_(typedefs), diags_(diags) {}

  /// Parses one raw annotation; reports a diagnostic and returns nullopt on
  /// malformed input.
  std::optional<ParsedAnnotation> parse(const cfront::RawAnnotation& raw);

 private:
  struct Cursor {
    std::string_view text;
    std::size_t pos = 0;
  };

  void skipSpace(Cursor& c) const;
  bool acceptChar(Cursor& c, char ch) const;
  std::string parseIdent(Cursor& c) const;
  /// Parses an integer constant expression; sets ok=false on failure.
  std::int64_t parseConstExpr(Cursor& c, bool& ok) const;
  std::int64_t parseTerm(Cursor& c, bool& ok) const;
  std::int64_t parsePrimary(Cursor& c, bool& ok) const;
  /// Resolves a type name inside sizeof(...).
  const cfront::Type* resolveTypeName(const std::string& name,
                                      bool is_struct) const;

  void fail(const cfront::RawAnnotation& raw, const std::string& why);

  const cfront::TypeContext& types_;
  const std::map<std::string, const cfront::Type*>& typedefs_;
  support::DiagnosticEngine& diags_;
};

}  // namespace safeflow::annotations
