// Minimal JSON reader for the analysis supervisor: parses the documents
// the tool itself emits (worker `--json` reports, `--stats-json`
// metrics) back into a small value tree so they can be merged. This is a
// strict RFC-8259 subset reader — objects, arrays, strings with the
// escapes our writer produces, numbers, booleans, null — with a depth
// cap so a corrupted or adversarial worker stream cannot blow the stack.
// It is not a general-purpose JSON library and does not preserve number
// formatting round-trips; merged documents are re-rendered from scratch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace safeflow::support::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<Value> array;
  /// Members in document order (our writers emit deterministic order).
  std::vector<std::pair<std::string, Value>> members;

  [[nodiscard]] bool isObject() const { return kind == Kind::kObject; }
  [[nodiscard]] bool isArray() const { return kind == Kind::kArray; }
  [[nodiscard]] bool isString() const { return kind == Kind::kString; }
  [[nodiscard]] bool isNumber() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Typed accessors with defaults (tolerate absent/mistyped members so
  /// the supervisor degrades instead of crashing on a torn report).
  [[nodiscard]] double numberOr(double fallback) const {
    return isNumber() ? number_value : fallback;
  }
  [[nodiscard]] std::uint64_t uintOr(std::uint64_t fallback) const;
  [[nodiscard]] const std::string& stringOr(
      const std::string& fallback) const {
    return isString() ? string_value : fallback;
  }
  [[nodiscard]] bool boolOr(bool fallback) const {
    return kind == Kind::kBool ? bool_value : fallback;
  }

  /// Convenience: member `key` as string/number/uint with a default.
  [[nodiscard]] std::string memberString(std::string_view key,
                                         const std::string& fallback = {}) const;
  [[nodiscard]] double memberNumber(std::string_view key,
                                    double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t memberUint(std::string_view key,
                                         std::uint64_t fallback = 0) const;
};

/// Parses `text` into `*out`. On failure returns false and, when `error`
/// is non-null, stores a one-line description with byte offset.
bool parse(std::string_view text, Value* out, std::string* error = nullptr);

}  // namespace safeflow::support::json
