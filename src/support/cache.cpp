#include "support/cache.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "support/io_faults.h"

namespace safeflow::support {

namespace {

constexpr const char kEntrySuffix[] = ".json";

bool isEntryName(const std::string& name) {
  const std::size_t suffix_len = sizeof(kEntrySuffix) - 1;
  return name.size() > suffix_len &&
         name.compare(name.size() - suffix_len, suffix_len, kEntrySuffix) ==
             0;
}

bool isTempName(const std::string& name) {
  return name.find(".tmp.") != std::string::npos;
}

/// The envelope every entry is framed in on disk:
/// "SFC1 <16-hex checksum> <16-hex length>\n". Fixed width so payload
/// size is derivable from file size without reading the file.
constexpr char kEnvelopeMagic[] = "SFC1 ";

std::string envelopeFor(std::string_view payload) {
  Fnv1a checksum;
  checksum.update(payload);
  char header[DiskCache::kEnvelopeBytes + 1];
  std::snprintf(header, sizeof header, "%s%016llx %016llx\n",
                kEnvelopeMagic,
                static_cast<unsigned long long>(checksum.digest()),
                static_cast<unsigned long long>(payload.size()));
  return header;
}

bool parseHex16(std::string_view text, std::uint64_t* out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    value <<= 4;
    if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = value;
  return true;
}

/// Verifies an on-disk entry image in place; true iff the envelope and
/// checksum hold, with `*payload_begin` pointing past the header.
bool verifyEnvelope(std::string_view image, std::size_t* payload_begin) {
  if (image.size() < DiskCache::kEnvelopeBytes) return false;
  if (image.compare(0, 5, kEnvelopeMagic) != 0) return false;
  if (image[21] != ' ' || image[38] != '\n') return false;
  std::uint64_t checksum = 0, length = 0;
  if (!parseHex16(image.substr(5, 16), &checksum) ||
      !parseHex16(image.substr(22, 16), &length)) {
    return false;
  }
  const std::string_view payload = image.substr(DiskCache::kEnvelopeBytes);
  if (payload.size() != length) return false;
  if (fnv1a(payload) != checksum) return false;
  *payload_begin = DiskCache::kEnvelopeBytes;
  return true;
}

/// Age below which a temp file may still belong to a live writer in
/// another process (between its open() and rename()) and must be left
/// alone. Any real store completes orders of magnitude faster.
constexpr std::int64_t kTempGraceSeconds = 60;

/// mkdir -p: creates every missing component of `dir`.
bool makeDirs(const std::string& dir, std::string* error) {
  if (dir.empty()) {
    if (error != nullptr) *error = "empty cache directory path";
    return false;
  }
  std::string prefix;
  prefix.reserve(dir.size());
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    const std::size_t end = slash == std::string::npos ? dir.size() : slash;
    prefix.assign(dir, 0, end);
    pos = end + 1;
    if (prefix.empty() || prefix == ".") continue;  // leading '/' or './'
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      if (error != nullptr) {
        *error = "cannot create directory '" + prefix +
                 "': " + std::strerror(errno);
      }
      return false;
    }
    if (slash == std::string::npos) break;
  }
  return true;
}

struct EntryInfo {
  std::string path;
  std::uint64_t bytes = 0;
  // Seconds + nanoseconds of the last-use stamp (mtime).
  std::int64_t mtime_sec = 0;
  std::int64_t mtime_nsec = 0;
  bool is_temp = false;
};

/// Bytes an on-disk file accounts for against the cap: entries count
/// payload only (envelope overhead excluded — it is fixed-width, so
/// derivable from file size without a read); stray temps count whole,
/// because their bytes are garbage pressure, not cached payload.
std::uint64_t accountedBytes(const EntryInfo& e) {
  if (e.is_temp) return e.bytes;
  return e.bytes > DiskCache::kEnvelopeBytes
             ? e.bytes - DiskCache::kEnvelopeBytes
             : 0;
}

/// Lists entry files (and stray temp files, which count as garbage to
/// sweep) under `dir` with their sizes and recency stamps.
std::vector<EntryInfo> listEntries(const std::string& dir,
                                   bool include_temps) {
  std::vector<EntryInfo> entries;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return entries;
  while (const dirent* ent = ::readdir(handle)) {
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    const bool temp = isTempName(name);
    if (!isEntryName(name) && !temp) continue;
    if (temp && !include_temps) continue;
    EntryInfo info;
    info.path = dir + "/" + name;
    info.is_temp = temp;
    struct stat st{};
    if (::stat(info.path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
      continue;
    }
    info.bytes = static_cast<std::uint64_t>(st.st_size);
    info.mtime_sec = static_cast<std::int64_t>(st.st_mtim.tv_sec);
    info.mtime_nsec = static_cast<std::int64_t>(st.st_mtim.tv_nsec);
    entries.push_back(std::move(info));
  }
  ::closedir(handle);
  return entries;
}

}  // namespace

std::string Fnv1a::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(state_));
  return buf;
}

std::uint64_t fnv1a(std::string_view bytes) {
  Fnv1a hasher;
  hasher.update(bytes);
  return hasher.digest();
}

DiskCache::DiskCache(DiskCacheOptions options)
    : options_(std::move(options)) {}

bool DiskCache::ensureDir(std::string* error) {
  return makeDirs(options_.dir, error);
}

std::string DiskCache::entryPath(std::string_view key_hex) const {
  std::string path = options_.dir;
  path += '/';
  path.append(key_hex);
  path += kEntrySuffix;
  return path;
}

DiskCache::LookupResult DiskCache::lookupChecked(std::string_view key_hex) {
  LookupResult result;
  const std::string path = entryPath(key_hex);
  std::ifstream in(path, std::ios::binary);
  if (!in) return result;  // kMiss
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return result;  // unreadable == miss
  std::string image = buffer.str();
  std::size_t payload_begin = 0;
  if (!verifyEnvelope(image, &payload_begin)) {
    result.status = LookupStatus::kTorn;
    return result;
  }
  // Refresh the LRU stamp; best-effort (a read-only cache dir still
  // serves hits, it just loses recency precision).
  ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0);
  result.status = LookupStatus::kHit;
  result.payload = image.substr(payload_begin);
  return result;
}

std::optional<std::string> DiskCache::lookup(std::string_view key_hex) {
  LookupResult result = lookupChecked(key_hex);
  switch (result.status) {
    case LookupStatus::kHit:
      return std::move(result.payload);
    case LookupStatus::kTorn:
      remove(key_hex);  // purge so the torn bytes are not re-read
      return std::nullopt;
    case LookupStatus::kMiss:
      break;
  }
  return std::nullopt;
}

std::uint64_t DiskCache::verifyEntries(
    std::vector<std::string>* purged_paths) {
  std::uint64_t purged = 0;
  for (const EntryInfo& e : listEntries(options_.dir, false)) {
    std::ifstream in(e.path, std::ios::binary);
    if (!in) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in.good() && !in.eof()) continue;
    std::size_t payload_begin = 0;
    if (verifyEnvelope(buffer.str(), &payload_begin)) continue;
    if (::unlink(e.path.c_str()) == 0) {
      ++purged;
      if (purged_paths != nullptr) purged_paths->push_back(e.path);
    }
  }
  return purged;
}

DiskCache::StoreResult DiskCache::store(std::string_view key_hex,
                                        std::string_view payload) {
  StoreResult result;
  if (!ensureDir(&result.error)) return result;

  // Temp name unique per process and call: a concurrent writer of the
  // same key loses nothing, rename() makes last-writer-wins atomic.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string final_path = entryPath(key_hex);
  std::ostringstream temp_name;
  temp_name << final_path << ".tmp." << ::getpid() << "."
            << sequence.fetch_add(1, std::memory_order_relaxed);
  const std::string temp_path = temp_name.str();

  const int fd = ::open(temp_path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0666);
  if (fd < 0) {
    result.error =
        "cannot create '" + temp_path + "': " + std::strerror(errno);
    return result;
  }
  std::string image = envelopeFor(payload);
  image.append(payload);
  io::IoStatus status = io::writeAll(fd, image, "cache.store");
  // fsync before rename: without it a power cut can publish the name
  // with unsynced (torn) bytes behind it. The envelope checksum would
  // still catch that, but catching is the backstop, not the plan.
  if (status.ok) status = io::fsyncFd(fd, "cache.store");
  ::close(fd);
  if (!status.ok) {
    result.error = "cannot write '" + temp_path + "': " + status.message;
    ::unlink(temp_path.c_str());
    return result;
  }
  status = io::renameFile(temp_path, final_path, "cache.store");
  if (!status.ok) {
    result.error = status.message;
    ::unlink(temp_path.c_str());
    return result;
  }
  result.ok = true;
  if (options_.max_bytes != 0) {
    result.evicted = evictToBytes(options_.max_bytes, key_hex);
  }
  return result;
}

void DiskCache::remove(std::string_view key_hex) {
  ::unlink(entryPath(key_hex).c_str());
}

std::uint64_t DiskCache::totalBytes() const {
  std::uint64_t total = 0;
  for (const EntryInfo& e : listEntries(options_.dir, false)) {
    total += accountedBytes(e);
  }
  return total;
}

std::uint64_t DiskCache::sweepStrayTemps(double min_age_seconds) {
  std::uint64_t swept = 0;
  const std::int64_t now = static_cast<std::int64_t>(::time(nullptr));
  const auto min_age = static_cast<std::int64_t>(min_age_seconds);
  for (const EntryInfo& e : listEntries(options_.dir, true)) {
    if (!e.is_temp) continue;
    if (now - e.mtime_sec < min_age) continue;  // maybe a live writer's
    if (::unlink(e.path.c_str()) == 0) ++swept;
  }
  return swept;
}

std::uint64_t DiskCache::evictToBytes(std::uint64_t target_bytes,
                                      std::string_view keep_key_hex) {
  // Temp files old enough that no live writer can still own them are
  // abandoned write attempts (a killed process) and sweep alongside the
  // LRU pass. A *fresh* temp may belong to a concurrent store() that
  // has not rename()d yet — unlinking it would make that rename fail
  // with ENOENT and turn a healthy store into a spurious error, so
  // fresh temps are invisible here (not counted, never unlinked).
  std::vector<EntryInfo> entries = listEntries(options_.dir, true);
  const std::int64_t now = static_cast<std::int64_t>(::time(nullptr));
  entries.erase(std::remove_if(entries.begin(), entries.end(),
                               [now](const EntryInfo& e) {
                                 return e.is_temp &&
                                        now - e.mtime_sec <
                                            kTempGraceSeconds;
                               }),
                entries.end());
  std::uint64_t total = 0;
  for (const EntryInfo& e : entries) total += accountedBytes(e);
  if (total <= target_bytes) return 0;

  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              if (a.mtime_sec != b.mtime_sec) {
                return a.mtime_sec < b.mtime_sec;
              }
              if (a.mtime_nsec != b.mtime_nsec) {
                return a.mtime_nsec < b.mtime_nsec;
              }
              return a.path < b.path;  // total order for equal stamps
            });

  const std::string keep =
      keep_key_hex.empty() ? std::string() : entryPath(keep_key_hex);
  std::uint64_t evicted = 0;
  for (const EntryInfo& e : entries) {
    if (total <= target_bytes) break;
    if (!keep.empty() && e.path == keep) {
      continue;  // never evict the entry just written
    }
    if (::unlink(e.path.c_str()) == 0) {
      total -= accountedBytes(e);
      ++evicted;
    }
  }
  return evicted;
}

}  // namespace safeflow::support
