// Deterministic fault injection for the out-of-process worker path. The
// supervisor's soak tests need to make a worker die in controlled,
// reproducible ways at a chosen pipeline phase; this hook is compiled
// into every build but is inert (one relaxed bool load per phase entry)
// unless the worker entry point explicitly arms it from the environment:
//
//   SAFEFLOW_INJECT_FAULT=<kind>@<phase>[:<nth>]
//     kind  crash  die by SIGSEGV (default signal disposition restored
//                  first so sanitizer handlers cannot soften it)
//           hang   block forever (exercises the supervisor watchdog)
//           oom    die by SIGKILL, emulating the Linux OOM killer's
//                  verdict without actually thrashing memory
//           exit2  _exit(2), emulating a frontend-error exit
//     phase one of the pipeline phase names ("frontend", "lowering",
//           "ssa", "shm_regions", "callgraph", "shm_propagation",
//           "ranges", "restrictions", "alias", "taint", "report")
//     nth   trigger on the nth entry to that phase (default 1)
//
//   SAFEFLOW_INJECT_FAULT_FILE=<substr>
//     arm only when the worker's input file path contains <substr>
//     (lets a corpus-wide soak run target a single shard)
//
//   SAFEFLOW_INJECT_FAULT_ATTEMPTS=<n>
//     arm only while the supervisor-provided SAFEFLOW_WORKER_ATTEMPT is
//     <= n (exercises retry-then-succeed: fault on attempt 1, clean on
//     the retry)
//
// Arming never happens implicitly: library users and the default CLI
// path never call armWorkerFaultInjection, so release behavior is
// unchanged byte-for-byte.
#pragma once

#include <string>

namespace safeflow::support {

/// Parses the SAFEFLOW_INJECT_FAULT* environment and arms the hook for
/// this process when the spec matches `input_file`. Called only by the
/// `safeflow --worker` entry point.
void armWorkerFaultInjection(const std::string& input_file);

/// True when a fault is armed (test/introspection helper).
[[nodiscard]] bool faultInjectionArmed();

/// Phase-entry hook: no-op unless armed for `phase` and the entry count
/// reaches the configured nth; then the process dies by the configured
/// kind (this call does not return in that case).
void faultInjectionPoint(const char* phase);

}  // namespace safeflow::support
