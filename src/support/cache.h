// On-disk content-addressed cache primitives for the incremental
// analysis layer: a hand-rolled 64-bit FNV-1a hasher (no external
// dependency, stable across platforms and builds) and a DiskCache that
// maps hex keys to payload files under one directory.
//
// Durability contract the cache manager relies on:
//   - store() writes to a private temp file and rename()s it into place,
//     so a killed process never leaves a torn entry under a valid key —
//     a crash leaves either the old payload, the new payload, or no
//     entry at all (stray *.tmp files are ignored and swept by eviction);
//   - lookup() refreshes the entry's mtime, so recency == mtime and
//     eviction can be plain oldest-mtime-first LRU;
//   - store() enforces the byte cap by evicting least-recently-used
//     entries after each write (never the entry just written).
//
// The payload is opaque bytes here; validation (JSON parse, key echo,
// analyzer version) is the caller's job, because only the caller knows
// what a well-formed entry looks like.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace safeflow::support {

/// Incremental 64-bit FNV-1a. Stable, dependency-free, and good enough
/// for content addressing: collisions require adversarial inputs, and a
/// wrong hit is additionally guarded by the key echoed inside the entry.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void update(std::string_view bytes) {
    for (const char c : bytes) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }
  /// 16 lowercase hex characters (zero-padded).
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

struct DiskCacheOptions {
  std::string dir;
  /// Total payload byte cap; exceeding it evicts oldest-mtime entries.
  /// 0 disables eviction.
  std::uint64_t max_bytes = 256ull << 20;
};

class DiskCache {
 public:
  explicit DiskCache(DiskCacheOptions options);

  /// Creates the cache directory and any missing parents (mkdir -p).
  /// Idempotent; returns false with a description on failure.
  bool ensureDir(std::string* error = nullptr);

  /// Reads the entry for `key_hex` and marks it most-recently-used.
  /// nullopt when absent or unreadable (the caller treats both as a
  /// miss).
  [[nodiscard]] std::optional<std::string> lookup(std::string_view key_hex);

  struct StoreResult {
    bool ok = false;
    /// Entries removed by the post-write LRU sweep.
    std::uint64_t evicted = 0;
    std::string error;  // set when !ok
  };
  /// Atomically creates or replaces the entry (temp file + rename), then
  /// evicts least-recently-used entries until the directory is back
  /// under max_bytes.
  StoreResult store(std::string_view key_hex, std::string_view payload);

  /// Deletes the entry if present (used to purge corrupt payloads so
  /// they are not re-parsed on every run).
  void remove(std::string_view key_hex);

  /// Unlinks stray `*.tmp.*` files at least `min_age_seconds` old —
  /// leftovers of writers killed between open() and rename(). Younger
  /// temps are left alone: they may belong to a live concurrent store()
  /// whose rename would fail if its temp vanished. Returns the number
  /// swept. Run at daemon startup (crash recovery); eviction applies
  /// the same age discipline.
  std::uint64_t sweepStrayTemps(double min_age_seconds = 60.0);

  /// Absolute-or-relative path of the entry file for `key_hex`.
  [[nodiscard]] std::string entryPath(std::string_view key_hex) const;

  /// Sum of entry payload sizes currently on disk (scans the directory).
  [[nodiscard]] std::uint64_t totalBytes() const;

  [[nodiscard]] const std::string& dir() const { return options_.dir; }
  [[nodiscard]] std::uint64_t maxBytes() const { return options_.max_bytes; }

 private:
  std::uint64_t evictOverCap(std::string_view keep_key_hex);

  DiskCacheOptions options_;
};

}  // namespace safeflow::support
