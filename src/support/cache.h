// On-disk content-addressed cache primitives for the incremental
// analysis layer: a hand-rolled 64-bit FNV-1a hasher (no external
// dependency, stable across platforms and builds) and a DiskCache that
// maps hex keys to payload files under one directory.
//
// Durability contract the cache manager relies on:
//   - store() frames the payload in a checksummed envelope
//     ("SFC1 <fnv1a-hex> <len-hex>\n" + payload), fsyncs the temp file,
//     and only then rename()s it into place, so a killed process — or a
//     power cut racing an unsynced rename — never leaves an undetected
//     torn entry under a valid key: the bytes either verify or the
//     entry reads as torn;
//   - lookup() verifies the envelope; a torn entry is purged and
//     reported distinctly from a plain miss (lookupChecked) so callers
//     can count and diagnose it;
//   - verifyEntries() sweeps the whole directory at startup, purging
//     anything that fails verification (crash recovery);
//   - lookup() refreshes the entry's mtime, so recency == mtime and
//     eviction can be plain oldest-mtime-first LRU;
//   - store() enforces the byte cap by evicting least-recently-used
//     entries after each write (never the entry just written); byte
//     accounting is payload bytes (envelope overhead excluded).
//
// The payload is opaque bytes here; validation (JSON parse, key echo,
// analyzer version) is the caller's job, because only the caller knows
// what a well-formed entry looks like.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace safeflow::support {

/// Incremental 64-bit FNV-1a. Stable, dependency-free, and good enough
/// for content addressing: collisions require adversarial inputs, and a
/// wrong hit is additionally guarded by the key echoed inside the entry.
class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  void update(std::string_view bytes) {
    for (const char c : bytes) {
      state_ ^= static_cast<unsigned char>(c);
      state_ *= kPrime;
    }
  }

  [[nodiscard]] std::uint64_t digest() const { return state_; }
  /// 16 lowercase hex characters (zero-padded).
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience.
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes);

struct DiskCacheOptions {
  std::string dir;
  /// Total payload byte cap; exceeding it evicts oldest-mtime entries.
  /// 0 disables eviction.
  std::uint64_t max_bytes = 256ull << 20;
};

class DiskCache {
 public:
  explicit DiskCache(DiskCacheOptions options);

  /// Creates the cache directory and any missing parents (mkdir -p).
  /// Idempotent; returns false with a description on failure.
  bool ensureDir(std::string* error = nullptr);

  /// Fixed envelope prefix every entry carries on disk:
  /// "SFC1 <16-hex fnv1a(payload)> <16-hex payload-length>\n".
  static constexpr std::size_t kEnvelopeBytes = 5 + 16 + 1 + 16 + 1;

  enum class LookupStatus {
    kMiss,  // no entry under the key
    kHit,   // envelope verified; payload returned
    kTorn,  // entry present but fails verification (torn/truncated/legacy)
  };
  struct LookupResult {
    LookupStatus status = LookupStatus::kMiss;
    std::string payload;  // set on kHit
  };
  /// Reads and verifies the entry for `key_hex`; a hit is marked
  /// most-recently-used. Torn entries are reported (not purged — the
  /// caller owns the diagnostic and the purge).
  [[nodiscard]] LookupResult lookupChecked(std::string_view key_hex);

  /// Convenience wrapper: a verified payload or nullopt. Torn entries
  /// are purged on the spot and read as a miss.
  [[nodiscard]] std::optional<std::string> lookup(std::string_view key_hex);

  /// Startup verify-and-purge sweep: reads every entry, unlinks any that
  /// fails envelope verification (a torn write replayed from a killed
  /// process, a half-synced rename, a legacy unframed entry). Returns
  /// the number purged; their paths are appended to `purged_paths` when
  /// non-null so the caller can diagnose each one.
  std::uint64_t verifyEntries(std::vector<std::string>* purged_paths =
                                  nullptr);

  struct StoreResult {
    bool ok = false;
    /// Entries removed by the post-write LRU sweep.
    std::uint64_t evicted = 0;
    std::string error;  // set when !ok
  };
  /// Atomically creates or replaces the entry (checksummed envelope to a
  /// temp file, fsync, rename), then evicts least-recently-used entries
  /// until the directory is back under max_bytes.
  StoreResult store(std::string_view key_hex, std::string_view payload);

  /// Evicts least-recently-used entries (and aged-out stray temps) until
  /// the directory holds at most `target_bytes` of payload; the pressure
  /// watchdog uses this to shed disk under resource pressure. Returns
  /// the number of files removed.
  std::uint64_t evictToBytes(std::uint64_t target_bytes,
                             std::string_view keep_key_hex = {});

  /// Deletes the entry if present (used to purge corrupt payloads so
  /// they are not re-parsed on every run).
  void remove(std::string_view key_hex);

  /// Unlinks stray `*.tmp.*` files at least `min_age_seconds` old —
  /// leftovers of writers killed between open() and rename(). Younger
  /// temps are left alone: they may belong to a live concurrent store()
  /// whose rename would fail if its temp vanished. Returns the number
  /// swept. Run at daemon startup (crash recovery); eviction applies
  /// the same age discipline.
  std::uint64_t sweepStrayTemps(double min_age_seconds = 60.0);

  /// Absolute-or-relative path of the entry file for `key_hex`.
  [[nodiscard]] std::string entryPath(std::string_view key_hex) const;

  /// Sum of entry payload sizes currently on disk (scans the directory;
  /// envelope overhead excluded).
  [[nodiscard]] std::uint64_t totalBytes() const;

  [[nodiscard]] const std::string& dir() const { return options_.dir; }
  [[nodiscard]] std::uint64_t maxBytes() const { return options_.max_bytes; }

 private:
  DiskCacheOptions options_;
};

}  // namespace safeflow::support
