// Analysis budgets and graceful degradation. Every fixpoint/worklist loop
// in the pipeline (phase-1 shm propagation, the alias analysis, the
// phase-3 taint sweep, the Fourier–Motzkin solver behind the A2 checks)
// accounts its work against one AnalysisBudget owned by the driver. A
// budget combines
//
//   - a wall-clock deadline shared by the whole run (--time-budget),
//   - a per-phase step cap (--step-budget), and
//   - a recursion / context-depth cap (--max-depth).
//
// When a limit trips, the current phase stops where it is, a BudgetEvent
// is recorded, and the phase marks its partial results *conservative*:
// unresolved values are treated as unsafe and unproven constraints as
// violations, so degradation can add findings but never hide one (see
// DESIGN.md "Budgets and graceful degradation"). The default-constructed
// budget is unlimited and adds one predictable branch per step, so runs
// without --time-budget/--step-budget behave byte-identically to a build
// without this layer.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace safeflow::support {

struct BudgetLimits {
  /// Wall-clock budget for the whole pipeline in seconds; <= 0 means
  /// unlimited. The clock starts at AnalysisBudget::start().
  double time_seconds = 0.0;
  /// Cap on work units per phase (worklist pops, instructions visited,
  /// solver constraint derivations); 0 means unlimited.
  std::uint64_t phase_steps = 0;
  /// Recursion / call-string context-depth cap.
  unsigned max_depth = 32;

  [[nodiscard]] bool limited() const {
    return time_seconds > 0.0 || phase_steps > 0;
  }
};

/// One phase that ran out of budget.
struct BudgetEvent {
  std::string phase;
  std::string reason;        // "time" or "steps"
  std::uint64_t steps = 0;   // work units completed when the limit tripped
};

class AnalysisBudget {
 public:
  /// Unlimited budget: step() always succeeds and records nothing.
  AnalysisBudget() = default;
  explicit AnalysisBudget(BudgetLimits limits) : limits_(limits) {}

  [[nodiscard]] bool limited() const { return limits_.limited(); }
  [[nodiscard]] const BudgetLimits& limits() const { return limits_; }
  [[nodiscard]] unsigned maxDepth() const { return limits_.max_depth; }

  /// Latches the wall-clock deadline; idempotent. The driver calls this
  /// when the pipeline starts; phases entered before start() only check
  /// the step cap.
  void start();

  /// Switches step accounting to `phase`: resets the per-phase step count
  /// and the exhausted flag. The wall-clock deadline keeps running, so a
  /// phase entered after the deadline trips on its first step.
  void beginPhase(std::string phase);

  /// Accounts `n` units of work in the current phase. Returns true while
  /// the phase is within budget; from the first exhausted call onward it
  /// records a BudgetEvent and returns false. The wall clock is sampled
  /// every kTimeCheckInterval steps, so loops may overrun a deadline by at
  /// most that many steps.
  bool step(std::uint64_t n = 1) {
    if (!limited()) return true;
    if (exhausted_) return false;
    return stepSlow(n);
  }

  /// True once the *current* phase tripped a limit (reset by beginPhase).
  [[nodiscard]] bool exhausted() const { return exhausted_; }

  /// Every phase that degraded during this run, in trip order.
  [[nodiscard]] const std::vector<BudgetEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool anyDegraded() const { return !events_.empty(); }
  [[nodiscard]] bool phaseDegraded(std::string_view phase) const;

 private:
  static constexpr std::uint64_t kTimeCheckInterval = 64;

  bool stepSlow(std::uint64_t n);
  void trip(const char* reason);

  BudgetLimits limits_;
  bool started_ = false;
  bool exhausted_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::string phase_ = "pipeline";
  std::uint64_t phase_steps_ = 0;
  std::uint64_t until_time_check_ = 0;
  std::vector<BudgetEvent> events_;
};

/// Null-tolerant step helper for passes that hold an optional budget.
inline bool budgetStep(AnalysisBudget* budget, std::uint64_t n = 1) {
  return budget == nullptr || budget->step(n);
}

/// Null-tolerant phase switch.
inline void budgetBeginPhase(AnalysisBudget* budget, std::string phase) {
  if (budget != nullptr) budget->beginPhase(std::move(phase));
}

/// Parses a human duration ("250ms", "2s", "1500us", bare seconds like
/// "0.5") into seconds. Returns false on malformed input.
bool parseDuration(std::string_view text, double* seconds);

}  // namespace safeflow::support
