// Counts non-blank, non-comment lines of C source — the "LOC" metric used
// by Table 1 of the paper.
#pragma once

#include <string_view>

namespace safeflow::support {

struct LocStats {
  std::size_t total_lines = 0;
  std::size_t code_lines = 0;     // non-blank, non-comment
  std::size_t comment_lines = 0;  // lines that are entirely comment
  std::size_t blank_lines = 0;
};

/// Scans C source text, honouring /* */ and // comments and string/char
/// literals (a quote inside a string does not open a comment and vice
/// versa).
[[nodiscard]] LocStats countLoc(std::string_view source);

}  // namespace safeflow::support
