#include "support/string_utils.h"

namespace safeflow::support {

namespace {
bool isSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && isSpace(s[b])) ++b;
  while (e > b && isSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace safeflow::support
