// Structured, leveled logging for the SafeFlow fleet (DESIGN.md §13).
//
// Every long-lived piece of the analyzer (driver, supervisor, cache
// manager, workers) logs through one process-global Logger instead of
// ad-hoc std::cerr prints, so a fleet operator can (a) raise or lower
// verbosity uniformly (--log-level) and (b) switch stderr to NDJSON
// (--log-json): one JSON object per line carrying a wall-clock
// timestamp, pid, shard label, level, component, message, and free-form
// key/value pairs — the shape a log shipper ingests without regexes.
//
// Text mode keeps the historical `safeflow: <message>` prefix so
// existing greps (CI checks, scripts) keep working; key/value pairs are
// appended as ` (k=v, k2=v2)`.
//
// Levels, most to least severe: error > warn > note > info > debug.
// The default threshold is `note`: errors, warnings, and explicit
// operator-facing notes (e.g. "cache disabled under --trace") are
// printed; info/debug chatter (per-shard lifecycle, cache store
// details) needs --log-level info / debug.
//
// The SAFEFLOW_LOG macro evaluates its message/kv arguments only when
// the level is enabled, so debug logging in warm paths costs one
// relaxed atomic load when disabled.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>

namespace safeflow::support {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kNote = 2,
  kInfo = 3,
  kDebug = 4,
};

[[nodiscard]] std::string_view logLevelName(LogLevel level);

/// Parses "error"/"warn"/"note"/"info"/"debug" (case-sensitive).
/// Returns false on anything else.
bool parseLogLevel(std::string_view text, LogLevel* out);

/// One key/value pair attached to a log event. Values are pre-rendered
/// strings; numeric callers format with std::to_string.
using LogKv = std::pair<std::string_view, std::string>;

class Logger {
 public:
  /// The process-wide logger (stderr sink). Thread-safe: events are
  /// rendered into a local buffer and written with one ostream call.
  static Logger& instance();

  /// Installs the CLI configuration. `shard` labels every event from
  /// this process ("supervisor", a worker's input file, "" for the
  /// plain in-process path).
  void configure(LogLevel level, bool json, std::string shard);

  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool json() const { return json_; }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) <= static_cast<int>(level_);
  }

  /// Emits one event (no-op when `level` is below the threshold).
  void log(LogLevel level, std::string_view component,
           std::string_view message,
           std::initializer_list<LogKv> kv = {});

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kNote;
  bool json_ = false;
  std::string shard_;
};

}  // namespace safeflow::support

/// Fire-and-forget logging; message/kv expressions are not evaluated
/// when the level is disabled.
#define SAFEFLOW_LOG(level, component, ...)                              \
  do {                                                                   \
    ::safeflow::support::Logger& sf_log_ =                               \
        ::safeflow::support::Logger::instance();                         \
    if (sf_log_.enabled(level)) {                                        \
      sf_log_.log(level, component, __VA_ARGS__);                        \
    }                                                                    \
  } while (0)
