#include "support/unix_socket.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/io_faults.h"

namespace safeflow::support {

namespace {

void setError(std::string* error, const std::string& what) {
  if (error != nullptr) {
    *error = what + ": " + std::strerror(errno);
  }
}

/// Fills a sockaddr_un; false when the path does not fit (sun_path is
/// ~108 bytes and silently truncating would bind the wrong file).
bool fillAddr(const std::string& path, sockaddr_un* addr,
              std::string* error) {
  if (path.empty() || path.size() >= sizeof addr->sun_path) {
    if (error != nullptr) {
      *error = "socket path '" + path + "' is empty or too long (max " +
               std::to_string(sizeof addr->sun_path - 1) + " bytes)";
    }
    return false;
  }
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

int makeSocket(std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) setError(error, "socket");
  return fd;
}

}  // namespace

int connectUnixSocket(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (!fillAddr(path, &addr, error)) return -1;
  const int fd = makeSocket(error);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    setError(error, "connect '" + path + "'");
    ::close(fd);
    return -1;
  }
  return fd;
}

int listenUnixSocket(const std::string& path, int backlog,
                     std::string* error, bool* was_stale) {
  if (was_stale != nullptr) *was_stale = false;
  sockaddr_un addr{};
  if (!fillAddr(path, &addr, error)) return -1;

  // Crash recovery: a previous daemon killed by SIGKILL leaves its
  // socket file behind. Probe it — a live daemon accepts, a dead one's
  // file refuses — and only sweep the dead case.
  const int probe = connectUnixSocket(path, nullptr);
  if (probe >= 0) {
    ::close(probe);
    if (error != nullptr) {
      *error = "another daemon is already listening on '" + path + "'";
    }
    return -1;
  }
  if (errno != ENOENT) {
    if (::unlink(path.c_str()) == 0 && was_stale != nullptr) {
      *was_stale = true;
    }
  }

  const int fd = makeSocket(error);
  if (fd < 0) return -1;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    setError(error, "bind '" + path + "'");
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    setError(error, "listen '" + path + "'");
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

LineIo readLine(int fd, std::string* line, std::size_t max_bytes,
                double timeout_seconds) {
  using Clock = std::chrono::steady_clock;
  line->clear();
  const bool has_deadline = timeout_seconds > 0.0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));
  char buf[4096];
  while (true) {
    int timeout_ms = -1;
    if (has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return LineIo::kTimeout;
      timeout_ms = static_cast<int>(left.count());
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return LineIo::kError;
    }
    if (rc == 0) return LineIo::kTimeout;

    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return LineIo::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return LineIo::kError;
    }
    const char* nl =
        static_cast<const char*>(std::memchr(buf, '\n', static_cast<std::size_t>(n)));
    const std::size_t take =
        nl != nullptr ? static_cast<std::size_t>(nl - buf)
                      : static_cast<std::size_t>(n);
    if (line->size() + take > max_bytes) return LineIo::kOversized;
    line->append(buf, take);
    if (nl != nullptr) return LineIo::kOk;
  }
}

bool writeAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool writeAll(int fd, std::string_view data, const char* fault_site) {
  return io::sendAll(fd, data, fault_site).ok;
}

}  // namespace safeflow::support
