// Crash flight recorder (DESIGN.md §13): a process-global, lock-free,
// fixed-size ring of small structured events that every interesting
// subsystem appends to as it runs — phase entries, budget trips, cache
// decisions, emitted diagnostics, worker lifecycle. The ring costs one
// relaxed atomic increment plus two bounded string copies per event and
// allocates nothing, so it is always on.
//
// Its purpose is the postmortem: when a process dies by SIGSEGV /
// SIGABRT / SIGBUS (installCrashDumpHandlers) or takes a deliberate
// fatal path (fault injection, see support/fault_inject.cpp), the last
// N events are dumped to stderr as one line each:
//
//   SAFEFLOW-FR <seq> <kind> <detail>
//
// The dump uses only async-signal-safe primitives (write(2) and local
// formatting — no malloc, no stdio, no locks), so it is sound from a
// signal handler running on a corrupted heap. The supervisor recognizes
// the `SAFEFLOW-FR ` prefix in a dead worker's captured stderr and
// attaches the events to that shard's `worker_failures` entry, so a
// crash names the phase and the events leading up to it instead of just
// "signal 11".
//
// Honesty note on the lock-free ring: a writer preempted mid-copy can
// leave one slot torn between two events. The dump detects sequence
// mismatches and marks such slots; for a single-threaded worker (the
// common postmortem subject) tearing cannot happen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace safeflow::support {

/// One decoded flight-recorder event (dump parsing / introspection).
struct FlightEvent {
  std::uint64_t seq = 0;
  std::string kind;
  std::string detail;
};

/// Capacity of the ring; the dump emits at most this many events.
inline constexpr std::size_t kFlightRecorderCapacity = 64;

/// Appends an event. `kind` is a short stable tag ("phase", "budget",
/// "cache", "diag", "worker", "supervisor"); `detail` is free text.
/// Both are truncated to the slot's fixed field widths. Lock-free,
/// allocation-free, safe from any thread.
void flightRecord(const char* kind, const char* detail);
void flightRecord(const char* kind, const std::string& detail);

/// Writes the ring's events to `fd`, oldest first, one
/// `SAFEFLOW-FR <seq> <kind> <detail>` line each. Async-signal-safe.
void flightRecorderDump(int fd);

/// Number of events recorded so far (monotonic; may exceed capacity).
[[nodiscard]] std::uint64_t flightRecorderCount();

/// Empties the ring (tests only; not signal-safe).
void flightRecorderReset();

/// Installs SIGSEGV/SIGABRT/SIGBUS handlers that dump the ring to
/// stderr and then re-raise with the default disposition, preserving
/// the fatal signal for the parent's waitpid classification. Idempotent.
void installCrashDumpHandlers();

/// Extracts `SAFEFLOW-FR` lines from a captured stderr stream (the
/// supervisor runs this over a dead worker's stderr). Malformed lines
/// are skipped: bad sequence numbers, fields wider than the dump can
/// produce (interleaved foreign bytes), and a final prefix-matching
/// line with no newline (cut mid-write). With `assume_truncated` (the
/// capture hit --worker-stderr-cap) the last parsed event is dropped
/// unless the dump's `SAFEFLOW-FR-END` terminator survived — a capture
/// cut exactly at a line boundary leaves the final event looking
/// complete while its tail bytes are gone.
[[nodiscard]] std::vector<FlightEvent> parseFlightRecorderLines(
    const std::string& stderr_text, bool assume_truncated = false);

}  // namespace safeflow::support
