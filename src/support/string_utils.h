// Small string helpers used across the front end and annotation parser.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace safeflow::support {

[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix);
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char sep);
/// Joins parts with the separator; empty input yields "".
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace safeflow::support
