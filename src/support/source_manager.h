// Owns the text of every source file seen by the front end and maps
// FileIds back to names and contents. Buffers are stable for the lifetime
// of the manager, so string_views into them remain valid.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/source_location.h"

namespace safeflow::support {

class SourceManager {
 public:
  /// Registers a buffer under the given name and returns its id.
  FileId addBuffer(std::string name, std::string contents);

  /// Reads a file from disk; returns nullopt if it cannot be opened.
  std::optional<FileId> addFile(const std::string& path);

  [[nodiscard]] std::string_view name(FileId id) const;
  [[nodiscard]] std::string_view contents(FileId id) const;
  [[nodiscard]] std::size_t fileCount() const { return files_.size(); }

  /// Returns the text of one line (1-based), without the trailing newline.
  [[nodiscard]] std::string_view lineText(FileId id, std::uint32_t line) const;

  /// "name:line:col" rendering for diagnostics.
  [[nodiscard]] std::string describe(const SourceLocation& loc) const;

 private:
  struct File {
    std::string name;
    std::string contents;
    std::vector<std::size_t> line_offsets;  // offset of each line start
  };

  [[nodiscard]] const File& file(FileId id) const;

  std::vector<File> files_;
};

}  // namespace safeflow::support
