#include "support/subprocess.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "support/io_faults.h"

namespace safeflow::support {

namespace {

// -- termination forwarding (installTerminationForwarding) -------------
//
// The handler must be async-signal-safe, so live child pids sit in a
// fixed table of atomics: runSubprocess claims a slot after fork and
// releases it after the reap. The handler latches the signal and
// SIGTERMs every registered child; the poll loop in runSubprocess then
// notices the latch, re-sends SIGTERM (harmless if already delivered),
// and escalates to SIGKILL after the grace period so even a child
// ignoring SIGTERM cannot outlive its supervisor.

constexpr std::size_t kMaxTrackedChildren = 256;
std::atomic<pid_t> g_tracked_children[kMaxTrackedChildren];
std::atomic<bool> g_forwarding_installed{false};
std::atomic<int> g_termination_signal{0};

std::size_t trackChild(pid_t pid) {
  for (std::size_t i = 0; i < kMaxTrackedChildren; ++i) {
    pid_t expected = 0;
    if (g_tracked_children[i].compare_exchange_strong(
            expected, pid, std::memory_order_acq_rel)) {
      return i;
    }
  }
  return kMaxTrackedChildren;  // table full: child simply not forwarded-to
}

void untrackChild(std::size_t slot) {
  if (slot < kMaxTrackedChildren) {
    g_tracked_children[slot].store(0, std::memory_order_release);
  }
}

extern "C" void terminationForwardHandler(int signal_number) {
  int expected = 0;
  g_termination_signal.compare_exchange_strong(expected, signal_number);
  for (std::size_t i = 0; i < kMaxTrackedChildren; ++i) {
    const pid_t pid = g_tracked_children[i].load(std::memory_order_acquire);
    if (pid > 0) ::kill(pid, SIGTERM);
  }
}

/// Closes an fd unless it was already handed off / closed (-1).
struct Fd {
  int fd = -1;
  Fd() = default;
  explicit Fd(int f) : fd(f) {}
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }
  void reset() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  [[nodiscard]] int release() {
    const int f = fd;
    fd = -1;
    return f;
  }
};

bool makePipe(Fd* read_end, Fd* write_end) {
  int fds[2];
#if defined(__linux__)
  if (::pipe2(fds, O_CLOEXEC) != 0) return false;
#else
  if (::pipe(fds) != 0) return false;
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
#endif
  read_end->reset();
  write_end->reset();
  read_end->fd = fds[0];
  write_end->fd = fds[1];
  return true;
}

/// Reads whatever is available on `fd` into `out`, bounded by `cap`
/// (bytes beyond the cap are read and dropped so the child never blocks
/// on a full pipe; `truncated` records that drop). Returns false on EOF.
bool drainOnce(int fd, std::string* out, std::size_t cap, bool* truncated) {
  char buf[8192];
  const ssize_t n = ::read(fd, buf, sizeof buf);
  if (n == 0) return false;                               // EOF
  if (n < 0) return errno == EINTR || errno == EAGAIN;    // transient
  if (out->size() < cap) {
    const std::size_t keep = std::min<std::size_t>(
        static_cast<std::size_t>(n), cap - out->size());
    out->append(buf, buf + keep);
    if (keep < static_cast<std::size_t>(n)) *truncated = true;
  } else {
    *truncated = true;
  }
  return true;
}

}  // namespace

void installTerminationForwarding() {
  if (g_forwarding_installed.exchange(true)) return;
  struct sigaction action{};
  action.sa_handler = terminationForwardHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: poll() in runSubprocess must wake with EINTR so the
  // forwarding loop notices the request immediately.
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

bool terminationRequested() {
  return g_termination_signal.load(std::memory_order_relaxed) != 0;
}

int terminationSignal() {
  return g_termination_signal.load(std::memory_order_relaxed);
}

void clearTerminationRequest() {
  g_termination_signal.store(0, std::memory_order_relaxed);
}

std::string signalName(int signal_number) {
  switch (signal_number) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGBUS: return "SIGBUS";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    case SIGXFSZ: return "SIGXFSZ";
    default: return "SIG" + std::to_string(signal_number);
  }
}

SubprocessResult runSubprocess(const std::vector<std::string>& argv,
                               const SubprocessOptions& options) {
  using Clock = std::chrono::steady_clock;
  SubprocessResult result;
  if (argv.empty()) {
    result.spawn_error = "empty argv";
    return result;
  }

  Fd out_r, out_w, err_r, err_w;
  if (!makePipe(&out_r, &out_w) || !makePipe(&err_r, &err_w)) {
    result.spawn_error = std::string("pipe: ") + std::strerror(errno);
    return result;
  }

  const Clock::time_point start = Clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    result.spawn_error = std::string("fork: ") + std::strerror(errno);
    return result;
  }

  if (pid == 0) {
    // Child. Only async-signal-safe calls between fork and exec.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) ::dup2(devnull, STDIN_FILENO);
    ::dup2(out_w.fd, STDOUT_FILENO);
    ::dup2(err_w.fd, STDERR_FILENO);
    // CLOEXEC closes the pipe fds themselves across exec.
    for (const auto& [name, value] : options.extra_env) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) {
      cargv.push_back(const_cast<char*>(a.c_str()));
    }
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    // exec failed: report on the (still-open) stderr pipe and die with a
    // conventional "command not runnable" status. writeAllFd is
    // async-signal-safe and retries EINTR/short writes — a one-shot
    // write(2) here could silently drop the only diagnostic the parent
    // will ever see.
    const char* msg = "safeflow-subprocess: exec failed: ";
    (void)io::writeAllFd(STDERR_FILENO, msg, std::strlen(msg));
    const char* err = std::strerror(errno);
    (void)io::writeAllFd(STDERR_FILENO, err, std::strlen(err));
    (void)io::writeAllFd(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent: close write ends so EOF propagates when the child exits.
  out_w.reset();
  err_w.reset();

  // Track the child for SIGTERM/SIGINT forwarding while it is alive.
  const std::size_t track_slot = trackChild(pid);

  const bool has_deadline = options.timeout_seconds > 0.0;
  Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.timeout_seconds));
  bool killed_on_deadline = false;
  bool term_forwarded = false;
  Clock::time_point term_deadline;

  bool out_open = true, err_open = true;
  while (out_open || err_open) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    if (out_open) fds[nfds++] = {out_r.fd, POLLIN, 0};
    if (err_open) fds[nfds++] = {err_r.fd, POLLIN, 0};

    // The supervisor is being terminated: forward to the child, then
    // escalate to SIGKILL once the grace period lapses.
    if (g_forwarding_installed.load(std::memory_order_relaxed) &&
        terminationRequested()) {
      if (!term_forwarded) {
        ::kill(pid, SIGTERM);
        term_forwarded = true;
        term_deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    std::max(0.0, options.termination_grace_seconds)));
      } else if (Clock::now() >= term_deadline) {
        ::kill(pid, SIGKILL);
      }
    }

    int timeout_ms = -1;
    if (has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      timeout_ms = static_cast<int>(std::max<long long>(0, left.count()));
    }
    if (g_forwarding_installed.load(std::memory_order_relaxed)) {
      // Bound every wait so a termination request (or the grace expiry)
      // is noticed promptly even without a watchdog deadline.
      timeout_ms = timeout_ms < 0 ? 200 : std::min(timeout_ms, 200);
    }
    const int rc = ::poll(fds, nfds, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // unexpected; fall through to reap
    }
    if (rc == 0 && term_forwarded && !killed_on_deadline) {
      continue;  // forwarding poll tick, not the watchdog deadline
    }
    if (rc == 0 &&
        g_forwarding_installed.load(std::memory_order_relaxed) &&
        has_deadline && Clock::now() < deadline) {
      continue;  // capped poll tick expired before the real deadline
    }
    if (rc == 0 && !has_deadline) {
      continue;  // capped poll tick with no deadline at all
    }
    if (rc == 0) {
      if (killed_on_deadline) {
        // Grace period over. The child is dead but something it spawned
        // still holds a pipe write end; abandon the pipes rather than
        // wait on a grandchild we never asked for.
        break;
      }
      // Deadline expired with the child still holding its pipes open.
      // Kill it, then keep draining briefly so its last output is not
      // lost — but only under a short grace deadline, since an orphaned
      // grandchild can keep the pipes open indefinitely.
      ::kill(pid, SIGKILL);
      killed_on_deadline = true;
      deadline = Clock::now() + std::chrono::seconds(2);
      continue;
    }
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const bool is_out = fds[i].fd == out_r.fd;
      std::string* sink = is_out ? &result.out_text : &result.err_text;
      const std::size_t cap =
          is_out ? options.max_capture_bytes
                 : (options.max_stderr_capture_bytes > 0
                        ? options.max_stderr_capture_bytes
                        : options.max_capture_bytes);
      bool* truncated =
          is_out ? &result.out_truncated : &result.err_truncated;
      if (!drainOnce(fds[i].fd, sink, cap, truncated)) {
        if (is_out) {
          out_open = false;
          out_r.reset();
        } else {
          err_open = false;
          err_r.reset();
        }
      }
    }
  }

  // Reap exactly once; retry on EINTR so no zombie survives.
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  // Release the forwarding slot only after the reap: a reused pid can
  // no longer be confused with our (now collected) child.
  untrackChild(track_slot);
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  if (killed_on_deadline) {
    result.status = SubprocessResult::Status::kTimedOut;
    result.signal_number = SIGKILL;
  } else if (WIFSIGNALED(status)) {
    result.status = SubprocessResult::Status::kSignaled;
    result.signal_number = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    result.status = SubprocessResult::Status::kExited;
    result.exit_code = WEXITSTATUS(status);
  } else {
    result.status = SubprocessResult::Status::kSignaled;
    result.signal_number = 0;
  }
  return result;
}

}  // namespace safeflow::support
