// Minimal POSIX subprocess runner for the analysis supervisor: fork/exec
// with full stdout/stderr capture, an optional wall-clock deadline that
// kills the child (SIGKILL — the watchdog must terminate even a child
// stuck in an uninterruptible loop), and exit/signal classification.
//
// Hygiene guarantees the supervisor and the ASan CI job rely on:
//   - every spawned child is reaped exactly once (no zombies survive a
//     call, even on the timeout and spawn-failure paths);
//   - every pipe descriptor is closed before returning (no fd leaks);
//   - capture is bounded by `max_capture_bytes` so a worker spewing
//     unbounded output cannot OOM the supervisor (excess is discarded,
//     the child keeps running until EOF/deadline).
//
// The child's stdin is /dev/null; the parent never writes to the child,
// so no SIGPIPE handling is needed on this side.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace safeflow::support {

struct SubprocessOptions {
  /// Wall-clock deadline in seconds; <= 0 means no watchdog.
  double timeout_seconds = 0.0;
  /// Grace between the forwarded SIGTERM and the follow-up SIGKILL when
  /// the supervisor itself is being terminated (see
  /// installTerminationForwarding).
  double termination_grace_seconds = 2.0;
  /// Cap on captured bytes per stream; excess output is discarded.
  std::size_t max_capture_bytes = 16u << 20;
  /// Tighter cap for stderr only; 0 means "use max_capture_bytes".
  /// The supervisor sets this (--worker-stderr-cap) so a log-spamming
  /// worker cannot bloat failure attribution records.
  std::size_t max_stderr_capture_bytes = 0;
  /// Extra environment variables set in the child (on top of the
  /// inherited environment).
  std::vector<std::pair<std::string, std::string>> extra_env;
};

struct SubprocessResult {
  enum class Status {
    kExited,       // normal termination; exit_code is valid
    kSignaled,     // killed by a signal; signal_number is valid
    kTimedOut,     // watchdog deadline hit; the child was SIGKILLed
    kSpawnFailed,  // fork/exec failed; spawn_error explains
  };
  Status status = Status::kSpawnFailed;
  int exit_code = -1;
  int signal_number = 0;
  std::string out_text;
  std::string err_text;
  /// True when the respective stream hit its capture cap and bytes were
  /// dropped (the child kept running; only the capture is truncated).
  bool out_truncated = false;
  bool err_truncated = false;
  double wall_seconds = 0.0;
  std::string spawn_error;

  [[nodiscard]] bool exitedWith(int code) const {
    return status == Status::kExited && exit_code == code;
  }
};

/// Runs `argv` (argv[0] is the executable, resolved via PATH when it
/// contains no '/') to completion or deadline. Blocking; reaps the child
/// before returning.
SubprocessResult runSubprocess(const std::vector<std::string>& argv,
                               const SubprocessOptions& options = {});

/// "SIGSEGV", "SIGKILL", ... for common signals, "SIG<n>" otherwise.
std::string signalName(int signal_number);

/// Installs SIGTERM/SIGINT handlers that forward the termination to
/// every child currently inside runSubprocess (async-signal-safe: the
/// live pids are kept in a fixed lock-free table). After the handler
/// fires, every in-flight runSubprocess sends its child SIGTERM, waits
/// `termination_grace_seconds`, escalates to SIGKILL, and returns the
/// child's death normally — so an interrupted supervised run reaps all
/// of its workers instead of orphaning them. Idempotent; callers that
/// never install it (workers, the daemon, library users) see zero
/// behavior change.
void installTerminationForwarding();

/// True once a forwarded SIGTERM/SIGINT has been received.
[[nodiscard]] bool terminationRequested();

/// The terminating signal number (0 when none received yet).
[[nodiscard]] int terminationSignal();

/// Clears the latched termination request (tests only).
void clearTerminationRequest();

}  // namespace safeflow::support
