// Deterministic syscall-layer I/O fault injection plus the hardened
// write helpers every SafeFlow writer routes through. PR 3's
// SAFEFLOW_INJECT_FAULT proved the value of reproducible process-level
// failures; this extends the same discipline one layer down, to the
// write()/fsync()/rename() calls that real fleets see fail first
// (ENOSPC, EIO, torn renames on power loss).
//
//   SAFEFLOW_INJECT_IO=<kind>@<site>[:<nth>]
//     kind  enospc      the nth write at <site> writes a partial prefix
//                       and then fails with ENOSPC
//           eio         same, failing with EIO
//           short_write the nth write at <site> is split into short
//                       write() returns (no error: exercises the
//                       partial-write loops, which must still succeed)
//           torn_rename the nth rename at <site> truncates the source
//                       to half before renaming it into place and then
//                       reports failure — the torn final file emulates
//                       a non-fsync'd rename surviving a power cut,
//                       which the checksummed cache envelope must catch
//           fsync_fail  the nth fsync at <site> fails with EIO
//     site  a writer identity: "cache.store", "metrics.out",
//           "trace.out", "stats.out", "journal.append", "daemon.socket"
//     nth   trigger on the nth matching operation (default 1)
//
// Injection is one-shot: after triggering once the hook disarms, so
// retry/fallback paths observe a healthy filesystem — exactly the
// transient-fault shape the cold-path recovery code must handle.
//
// Arming never happens implicitly: only the safeflow/safeflowd entry
// points call armIoFaultInjectionFromEnv(), so library users pay one
// relaxed atomic load per fault checkpoint and nothing else.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace safeflow::support::io {

/// Parses SAFEFLOW_INJECT_IO and arms the hook for this process.
/// Malformed specs stay inert. Called by the CLI/daemon entry points.
void armIoFaultInjectionFromEnv();

/// Arms (or, with an empty spec, disarms) directly; returns false on a
/// malformed spec. Test helper — production code arms from the env.
bool armIoFaultInjection(const std::string& spec);

/// True when an I/O fault is armed and not yet consumed.
[[nodiscard]] bool ioFaultInjectionArmed();

/// Outcome of a hardened I/O helper. `message` names the operation and
/// the target; `error_errno` is the failing errno (0 for injected
/// non-errno failures like torn_rename).
struct IoStatus {
  bool ok = true;
  int error_errno = 0;
  std::string message;  // set when !ok
};

/// EINTR- and partial-write-safe raw write loop. No fault hooks, no
/// allocation: async-signal-safe, usable from crash handlers and the
/// post-fork child (the shared fix for the audited bare-write() sites).
bool writeAllFd(int fd, const char* data, std::size_t len);

/// EINTR- and partial-write-safe write with a fault checkpoint for
/// `site` (enospc/eio/short_write kinds).
IoStatus writeAll(int fd, std::string_view data, const char* site);

/// Socket flavor of writeAll: same loop and fault checkpoint, but sends
/// with MSG_NOSIGNAL so a peer that disconnects mid-response surfaces
/// as a failure status, never as a fatal SIGPIPE.
IoStatus sendAll(int fd, std::string_view data, const char* site);

/// fsync with a fault checkpoint (fsync_fail kind).
IoStatus fsyncFd(int fd, const char* site);

/// rename with a fault checkpoint (torn_rename kind). On injected
/// failure the source is truncated to half and renamed anyway — the
/// torn destination is the hazard checksum verification exists for.
IoStatus renameFile(const std::string& from, const std::string& to,
                    const char* site);

/// Creates/overwrites `path` with `data` through writeAll/fsync. On any
/// failure the partial file is unlinked before returning, so a failed
/// export can never leave a truncated-but-silent artifact behind.
IoStatus writeFile(const std::string& path, std::string_view data,
                   const char* site);

}  // namespace safeflow::support::io
