#include "support/loc_counter.h"

namespace safeflow::support {

LocStats countLoc(std::string_view src) {
  LocStats stats;
  bool in_block_comment = false;
  std::size_t i = 0;
  const std::size_t n = src.size();

  while (i <= n) {
    // Scan one line.
    bool saw_code = false;
    bool saw_comment = in_block_comment;
    bool in_line_comment = false;
    char string_delim = 0;  // '"' or '\'' when inside a literal
    bool line_seen = i < n;

    while (i < n && src[i] != '\n') {
      const char c = src[i];
      const char next = (i + 1 < n) ? src[i + 1] : 0;
      if (in_line_comment) {
        ++i;
        continue;
      }
      if (in_block_comment) {
        saw_comment = true;
        if (c == '*' && next == '/') {
          in_block_comment = false;
          ++i;
        }
        ++i;
        continue;
      }
      if (string_delim != 0) {
        saw_code = true;
        if (c == '\\') {
          i += 2;
          continue;
        }
        if (c == string_delim) string_delim = 0;
        ++i;
        continue;
      }
      if (c == '/' && next == '/') {
        in_line_comment = true;
        saw_comment = true;
        i += 2;
        continue;
      }
      if (c == '/' && next == '*') {
        in_block_comment = true;
        saw_comment = true;
        i += 2;
        continue;
      }
      if (c == '"' || c == '\'') {
        string_delim = c;
        saw_code = true;
        ++i;
        continue;
      }
      if (c != ' ' && c != '\t' && c != '\r') saw_code = true;
      ++i;
    }

    if (line_seen) {
      ++stats.total_lines;
      if (saw_code) {
        ++stats.code_lines;
      } else if (saw_comment) {
        ++stats.comment_lines;
      } else {
        ++stats.blank_lines;
      }
    }
    if (i >= n) break;
    ++i;  // skip the newline
  }
  return stats;
}

}  // namespace safeflow::support
