#include "support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

#include <sys/resource.h>

namespace safeflow::support {

// ---------------------------------------------------------------------------
// MetricsRegistry

void MetricsRegistry::DurationStat::record(double seconds) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (count_ == 0 || seconds > max_) max_ = seconds;
  ++count_;
  total_ += seconds;
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  while (bucket + 1 < kBuckets && us >= static_cast<double>(2ull << bucket)) {
    ++bucket;
  }
  ++buckets_[bucket];
}

std::uint64_t MetricsRegistry::DurationStat::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double MetricsRegistry::DurationStat::totalSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double MetricsRegistry::DurationStat::minSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double MetricsRegistry::DurationStat::maxSeconds() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

std::array<std::uint64_t, MetricsRegistry::DurationStat::kBuckets>
MetricsRegistry::DurationStat::buckets() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buckets_;
}

double MetricsRegistry::DurationStat::percentileSeconds(double q) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample (1-based, ceil), then walk the
  // cumulative bucket counts to the bucket holding it.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // Upper bucket edge in seconds, clamped into the observed range.
      const double upper_us = static_cast<double>(2ull << i);
      return std::min(max_, std::max(min_, upper_us * 1e-6));
    }
  }
  return max_;
}

MetricsRegistry::Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsRegistry::DurationStat& MetricsRegistry::duration(
    std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = durations_.find(name);
  if (it == durations_.end()) {
    it = durations_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counterValue(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricsRegistry::gaugeValue(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

double MetricsRegistry::durationTotalSeconds(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = durations_.find(name);
  return it == durations_.end() ? 0.0 : it->second.totalSeconds();
}

std::uint64_t MetricsRegistry::durationCount(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = durations_.find(name);
  return it == durations_.end() ? 0 : it->second.count();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.durations.reserve(durations_.size());
  for (const auto& [name, d] : durations_) {
    snap.durations.push_back({name, d.count(), d.totalSeconds(),
                              d.minSeconds(), d.maxSeconds(),
                              d.percentileSeconds(0.50),
                              d.percentileSeconds(0.90),
                              d.percentileSeconds(0.99)});
  }
  return snap;
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  durations_.clear();
}

// ---------------------------------------------------------------------------
// TraceCollector

namespace {

std::uint64_t threadKey() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string formatUs(double us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

}  // namespace

TraceCollector::TraceCollector() : epoch_(Clock::now()) {}

std::size_t TraceCollector::beginSpan(std::string_view name) {
  const auto now = Clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t key = threadKey();
  const auto [tid_it, inserted] =
      tids_.try_emplace(key, static_cast<std::uint32_t>(tids_.size()));
  auto& stack = stacks_[key];
  Span span;
  span.name = std::string(name);
  span.tid = tid_it->second;
  span.start_us =
      std::chrono::duration<double, std::micro>(now - epoch_).count();
  span.parent = stack.empty() ? -1 : static_cast<std::ptrdiff_t>(stack.back());
  span.depth = static_cast<std::uint32_t>(stack.size());
  const std::size_t id = spans_.size();
  spans_.push_back(std::move(span));
  stack.push_back(id);
  return id;
}

void TraceCollector::setArg(std::size_t id, std::string_view key,
                            std::string value) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  spans_[id].args.emplace_back(std::string(key), std::move(value));
}

void TraceCollector::endSpan(std::size_t id) {
  const auto now = Clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  if (id >= spans_.size()) return;
  const double end_us =
      std::chrono::duration<double, std::micro>(now - epoch_).count();
  auto& stack = stacks_[threadKey()];
  // Close everything begun after `id` on this thread too, so an early
  // return inside a span cannot leave descendants open forever.
  while (!stack.empty()) {
    const std::size_t top = stack.back();
    stack.pop_back();
    if (spans_[top].dur_us < 0.0) {
      spans_[top].dur_us = end_us - spans_[top].start_us;
    }
    if (top == id) return;
  }
  // `id` was not on this thread's stack (cross-thread end): close it
  // directly.
  if (spans_[id].dur_us < 0.0) spans_[id].dur_us = end_us - spans_[id].start_us;
}

std::size_t TraceCollector::spanCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t TraceCollector::openSpanCount() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t open = 0;
  for (const Span& s : spans_) {
    if (s.dur_us < 0.0) ++open;
  }
  return open;
}

std::vector<TraceCollector::Span> TraceCollector::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string TraceCollector::toChromeTraceJson() const {
  const auto now = Clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  const double now_us =
      std::chrono::duration<double, std::micro>(now - epoch_).count();
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    const double dur = s.dur_us >= 0.0 ? s.dur_us : now_us - s.start_us;
    out << (i == 0 ? "\n" : ",\n") << "  {\"name\": \"" << jsonEscape(s.name)
        << "\", \"cat\": \"safeflow\", \"ph\": \"X\", \"ts\": "
        << formatUs(s.start_us) << ", \"dur\": " << formatUs(dur)
        << ", \"pid\": 1, \"tid\": " << s.tid;
    if (!s.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t a = 0; a < s.args.size(); ++a) {
        out << (a == 0 ? "" : ", ") << "\"" << jsonEscape(s.args[a].first)
            << "\": \"" << jsonEscape(s.args[a].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << (spans_.empty() ? "]" : "\n]") << "}\n";
  return out.str();
}

std::int64_t TraceCollector::epochSteadyNs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             epoch_.time_since_epoch())
      .count();
}

std::string TraceCollector::spansToJsonArray() const {
  const auto now = Clock::now();
  const std::lock_guard<std::mutex> lock(mu_);
  const double now_us =
      std::chrono::duration<double, std::micro>(now - epoch_).count();
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    const double dur = s.dur_us >= 0.0 ? s.dur_us : now_us - s.start_us;
    out << (i == 0 ? "" : ", ") << "{\"name\": \"" << jsonEscape(s.name)
        << "\", \"tid\": " << s.tid << ", \"start_us\": "
        << formatUs(s.start_us) << ", \"dur_us\": " << formatUs(dur);
    if (!s.args.empty()) {
      out << ", \"args\": {";
      for (std::size_t a = 0; a < s.args.size(); ++a) {
        out << (a == 0 ? "" : ", ") << "\"" << jsonEscape(s.args[a].first)
            << "\": \"" << jsonEscape(s.args[a].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

std::string TraceCollector::selfTimeTable() const {
  struct Row {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double self_us = 0.0;
  };
  std::map<std::string, Row> rows;
  {
    const auto now = Clock::now();
    const std::lock_guard<std::mutex> lock(mu_);
    const double now_us =
        std::chrono::duration<double, std::micro>(now - epoch_).count();
    std::vector<double> self(spans_.size());
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      self[i] = spans_[i].dur_us >= 0.0 ? spans_[i].dur_us
                                        : now_us - spans_[i].start_us;
    }
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      if (spans_[i].parent >= 0) {
        const double dur = spans_[i].dur_us >= 0.0
                               ? spans_[i].dur_us
                               : now_us - spans_[i].start_us;
        self[static_cast<std::size_t>(spans_[i].parent)] -= dur;
      }
    }
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      Row& row = rows[spans_[i].name];
      ++row.count;
      row.total_us += spans_[i].dur_us >= 0.0 ? spans_[i].dur_us
                                              : now_us - spans_[i].start_us;
      row.self_us += self[i];
    }
  }
  std::vector<std::pair<std::string, Row>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second.self_us > b.second.self_us;
  });
  std::ostringstream out;
  out << "span                                    count   total(ms)    "
         "self(ms)\n";
  for (const auto& [name, row] : sorted) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-38s %6llu %11.3f %11.3f\n",
                  name.c_str(), static_cast<unsigned long long>(row.count),
                  row.total_us / 1e3, row.self_us / 1e3);
    out << buf;
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Resource usage

ResourceSample sampleResourceUsage() {
  ResourceSample sample;
  struct rusage usage{};
  if (::getrusage(RUSAGE_SELF, &usage) != 0) return sample;
  sample.user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                        static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
  sample.sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                       static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  // Linux reports ru_maxrss in KiB already.
  sample.max_rss_kb = static_cast<std::uint64_t>(
      usage.ru_maxrss > 0 ? usage.ru_maxrss : 0);
  return sample;
}

// ---------------------------------------------------------------------------
// Observer plumbing

namespace {
thread_local PipelineObserver* g_observer = nullptr;
}  // namespace

PipelineObserver* currentObserver() { return g_observer; }

ScopedObserver::ScopedObserver(PipelineObserver* obs) : prev_(g_observer) {
  g_observer = obs;
}

ScopedObserver::~ScopedObserver() { g_observer = prev_; }

}  // namespace safeflow::support
