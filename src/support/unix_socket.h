// Unix-domain socket primitives for the resident analysis daemon
// (safeflowd, DESIGN.md §14): a listener with stale-socket takeover, a
// blocking client connect, and bounded line-oriented I/O for the NDJSON
// request/response protocol.
//
// Robustness properties the daemon relies on:
//   - listenUnixSocket probes an existing socket file with a connect()
//     before binding: a refused connection means the file is a leftover
//     from a crashed daemon and is swept; an accepted one means a live
//     daemon owns the path and the bind is refused (never two daemons
//     behind one socket);
//   - readLine enforces both a byte cap and a wall-clock deadline, so a
//     client that dribbles bytes forever or sends an unbounded request
//     cannot pin a connection thread or balloon memory;
//   - writeAll uses MSG_NOSIGNAL: a client that disconnects mid-response
//     surfaces as a false return, never as a fatal SIGPIPE.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace safeflow::support {

/// Binds and listens on `path` (CLOEXEC fd). Returns the listening fd,
/// or -1 with `*error` describing the failure. `*was_stale` (when
/// non-null) reports that a dead daemon's socket file was swept first.
int listenUnixSocket(const std::string& path, int backlog,
                     std::string* error, bool* was_stale = nullptr);

/// Connects to the daemon at `path`. Returns the fd or -1 (with
/// `*error` when non-null). A -1 with ECONNREFUSED/ENOENT is the
/// "no daemon listening" signal the CLI's fallback path keys on.
int connectUnixSocket(const std::string& path, std::string* error = nullptr);

enum class LineIo {
  kOk,         // one full '\n'-terminated line read
  kEof,        // peer closed before the newline (mid-request disconnect)
  kOversized,  // max_bytes exceeded before the newline
  kTimeout,    // deadline expired
  kError,      // read error
};

/// Reads from `fd` until '\n' (consumed, not stored), `max_bytes`
/// accumulated, or `timeout_seconds` elapsed. Bytes after the first
/// newline are ignored (the protocol is one request per connection).
LineIo readLine(int fd, std::string* line, std::size_t max_bytes,
                double timeout_seconds);

/// Writes all of `data`, retrying on EINTR / short writes. Returns
/// false on any terminal error (including a disconnected peer); never
/// raises SIGPIPE.
bool writeAll(int fd, std::string_view data);

/// As above, but routed through the SAFEFLOW_INJECT_IO fault checkpoint
/// for `fault_site` (e.g. "daemon.socket"), so chaos tests can fail a
/// response write deterministically.
bool writeAll(int fd, std::string_view data, const char* fault_site);

}  // namespace safeflow::support
