#include "support/text_diff.h"

#include <algorithm>

namespace safeflow::support {

std::vector<std::string_view> splitLines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size()) lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

DiffStats diffLines(std::string_view before, std::string_view after) {
  const std::vector<std::string_view> a = splitLines(before);
  const std::vector<std::string_view> b = splitLines(after);
  const std::size_t n = a.size();
  const std::size_t m = b.size();

  // Classic O(n*m) LCS table; the corpora are a few thousand lines, which
  // is comfortably within range.
  std::vector<std::vector<std::uint32_t>> lcs(
      n + 1, std::vector<std::uint32_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = (a[i] == b[j]) ? lcs[i + 1][j + 1] + 1
                                 : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  const std::size_t common = lcs[0][0];
  DiffStats stats;
  stats.removed = n - common;
  stats.added = m - common;
  return stats;
}

}  // namespace safeflow::support
