#include "support/log.h"

#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>

#include <sys/time.h>
#include <unistd.h>

namespace safeflow::support {

namespace {

std::mutex g_log_mu;

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kNote: return "note";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

bool parseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "error") *out = LogLevel::kError;
  else if (text == "warn") *out = LogLevel::kWarn;
  else if (text == "note") *out = LogLevel::kNote;
  else if (text == "info") *out = LogLevel::kInfo;
  else if (text == "debug") *out = LogLevel::kDebug;
  else return false;
  return true;
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::configure(LogLevel level, bool json, std::string shard) {
  level_ = level;
  json_ = json;
  shard_ = std::move(shard);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message,
                 std::initializer_list<LogKv> kv) {
  if (!enabled(level)) return;
  std::ostringstream out;
  if (json_) {
    struct timeval tv{};
    ::gettimeofday(&tv, nullptr);
    char ts[48];
    std::snprintf(ts, sizeof ts, "%lld.%06ld",
                  static_cast<long long>(tv.tv_sec),
                  static_cast<long>(tv.tv_usec));
    out << "{\"ts\": " << ts << ", \"pid\": " << ::getpid()
        << ", \"level\": \"" << logLevelName(level) << "\"";
    if (!shard_.empty()) {
      out << ", \"shard\": \"" << jsonEscape(shard_) << "\"";
    }
    out << ", \"component\": \"" << jsonEscape(component)
        << "\", \"msg\": \"" << jsonEscape(message) << "\"";
    for (const LogKv& pair : kv) {
      out << ", \"" << jsonEscape(pair.first) << "\": \""
          << jsonEscape(pair.second) << "\"";
    }
    out << "}\n";
  } else {
    // Historical stderr shape: `safeflow: <message>`; greps rely on it.
    out << "safeflow: " << message;
    if (kv.size() != 0) {
      out << " (";
      bool first = true;
      for (const LogKv& pair : kv) {
        out << (first ? "" : ", ") << pair.first << "=" << pair.second;
        first = false;
      }
      out << ")";
    }
    out << "\n";
  }
  const std::lock_guard<std::mutex> lock(g_log_mu);
  std::cerr << out.str();
}

}  // namespace safeflow::support
