// Observability layer for the SafeFlow pipeline: a MetricsRegistry of
// named monotonic counters, gauges, and duration histograms, plus a
// TraceCollector that records hierarchical spans and serializes them as
// Chrome trace-event JSON (loadable in chrome://tracing / Perfetto).
//
// Passes do not take a registry parameter; instead the driver installs a
// PipelineObserver into thread-local storage (ScopedObserver) for the
// duration of a run, and instrumentation sites use the SAFEFLOW_COUNT /
// SAFEFLOW_GAUGE macros and the ScopedSpan / ScopedTimer RAII helpers.
// When no observer is installed every helper is a single thread-local
// load and branch, so uninstrumented callers (unit tests, benches that
// construct passes directly) pay nothing.
//
// Naming convention (see DESIGN.md): `phase.<stage>` for pipeline wall
// time, `<subsystem>.<metric>` for everything else, e.g.
// `taint.body_analyses`, `shm_propagation.worklist_pushes`.
//
// The registry is thread-safe: counters and gauges are atomics behind a
// name-interning mutex, so future parallel passes can share one registry.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace safeflow::support {

class MetricsRegistry {
 public:
  class Counter {
   public:
    void add(std::uint64_t delta = 1) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    std::atomic<std::uint64_t> value_{0};
  };

  class Gauge {
   public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    std::atomic<double> value_{0.0};
  };

  /// Duration histogram: count/total/min/max plus power-of-two
  /// microsecond buckets (bucket i holds durations in [2^i, 2^(i+1)) us).
  class DurationStat {
   public:
    static constexpr std::size_t kBuckets = 28;

    void record(double seconds);

    [[nodiscard]] std::uint64_t count() const;
    [[nodiscard]] double totalSeconds() const;
    [[nodiscard]] double minSeconds() const;
    [[nodiscard]] double maxSeconds() const;
    [[nodiscard]] std::array<std::uint64_t, kBuckets> buckets() const;
    /// Estimated q-quantile (q in [0,1]) from the power-of-two buckets:
    /// the upper edge of the bucket holding the q*count-th sample,
    /// clamped to [min, max] so one-sample stats report exactly. 0 when
    /// empty.
    [[nodiscard]] double percentileSeconds(double q) const;

   private:
    mutable std::mutex mu_;
    std::uint64_t count_ = 0;
    double total_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::array<std::uint64_t, kBuckets> buckets_{};
  };

  /// Interns `name` on first use. Returned references are stable for the
  /// registry's lifetime (until clear()).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  DurationStat& duration(std::string_view name);

  /// Read accessors that do not create the metric; zero when absent.
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const;
  [[nodiscard]] double gaugeValue(std::string_view name) const;
  [[nodiscard]] double durationTotalSeconds(std::string_view name) const;
  [[nodiscard]] std::uint64_t durationCount(std::string_view name) const;

  struct DurationSnapshot {
    std::string name;
    std::uint64_t count = 0;
    double total_seconds = 0.0;
    double min_seconds = 0.0;
    double max_seconds = 0.0;
    /// Bucket-estimated tail percentiles (see percentileSeconds).
    double p50_seconds = 0.0;
    double p90_seconds = 0.0;
    double p99_seconds = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<DurationSnapshot> durations;
  };
  /// Consistent, name-sorted copy of every metric.
  [[nodiscard]] Snapshot snapshot() const;

  /// Drops every metric. Invalidates references handed out by
  /// counter()/gauge()/duration().
  void clear();

 private:
  mutable std::mutex mu_;
  // std::map nodes are address-stable, so references into the mapped
  // values survive later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, DurationStat, std::less<>> durations_;
};

/// Hierarchical span recorder. Spans nest per thread (a begun span is the
/// parent of every span begun on the same thread before it ends).
class TraceCollector {
 public:
  using Clock = std::chrono::steady_clock;

  struct Span {
    std::string name;
    std::vector<std::pair<std::string, std::string>> args;
    /// Dense per-thread id (0 = first thread seen).
    std::uint32_t tid = 0;
    /// Microseconds since the collector's epoch.
    double start_us = 0.0;
    /// Negative while the span is still open.
    double dur_us = -1.0;
    /// Index of the enclosing span, or -1 for roots.
    std::ptrdiff_t parent = -1;
    std::uint32_t depth = 0;
  };

  TraceCollector();

  /// Begins a span on the calling thread; returns its id.
  std::size_t beginSpan(std::string_view name);
  /// Attaches a key=value argument to an open or closed span.
  void setArg(std::size_t id, std::string_view key, std::string value);
  /// Ends the span. Any spans begun on the same thread after `id` that
  /// are still open are ended too (tolerates early returns).
  void endSpan(std::size_t id);

  [[nodiscard]] std::size_t spanCount() const;
  [[nodiscard]] std::size_t openSpanCount() const;
  /// Copy of all spans (open spans keep dur_us < 0).
  [[nodiscard]] std::vector<Span> spans() const;

  /// Chrome trace-event JSON ("X" complete events). Open spans are
  /// serialized as if they ended now.
  [[nodiscard]] std::string toChromeTraceJson() const;

  /// The collector's epoch as nanoseconds on the shared monotonic clock
  /// (CLOCK_MONOTONIC on Linux, where steady_clock readings are
  /// comparable across processes on one machine). The supervisor uses
  /// worker epochs to re-base worker span timestamps onto its own
  /// timeline (DESIGN.md §13).
  [[nodiscard]] std::int64_t epochSteadyNs() const;

  /// The spans as a bare JSON array of objects (name, tid, start_us,
  /// dur_us, args) — the worker-protocol "telemetry.spans" payload.
  /// Open spans are serialized as if they ended now.
  [[nodiscard]] std::string spansToJsonArray() const;

  /// Flat per-name summary: count, total wall time, and self time (total
  /// minus enclosed child spans), sorted by self time descending.
  [[nodiscard]] std::string selfTimeTable() const;

 private:
  mutable std::mutex mu_;
  Clock::time_point epoch_;
  std::vector<Span> spans_;
  std::map<std::uint64_t, std::vector<std::size_t>> stacks_;  // per thread
  std::map<std::uint64_t, std::uint32_t> tids_;
};

/// Point-in-time resource usage of this process via getrusage(2):
/// cumulative CPU split and the high-water resident set. Workers embed
/// one in their telemetry section; the supervisor samples its own at
/// the end of a run.
struct ResourceSample {
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  std::uint64_t max_rss_kb = 0;
};
[[nodiscard]] ResourceSample sampleResourceUsage();

/// What the pipeline reports into. Either pointer may be null: a null
/// metrics pointer disables counters, a null trace pointer disables spans.
struct PipelineObserver {
  MetricsRegistry* metrics = nullptr;
  TraceCollector* trace = nullptr;
};

/// The observer installed on the calling thread, or nullptr.
[[nodiscard]] PipelineObserver* currentObserver();

/// Installs `obs` as the calling thread's observer; restores the previous
/// one on destruction. Pass nullptr to suppress observation in a scope.
class ScopedObserver {
 public:
  explicit ScopedObserver(PipelineObserver* obs);
  ~ScopedObserver();
  ScopedObserver(const ScopedObserver&) = delete;
  ScopedObserver& operator=(const ScopedObserver&) = delete;

 private:
  PipelineObserver* prev_;
};

/// RAII trace span against the current observer (no-op without one).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) {
    if (PipelineObserver* obs = currentObserver();
        obs != nullptr && obs->trace != nullptr) {
      trace_ = obs->trace;
      id_ = trace_->beginSpan(name);
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->endSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(std::string_view key, std::string value) {
    if (trace_ != nullptr) trace_->setArg(id_, key, std::move(value));
  }

 private:
  TraceCollector* trace_ = nullptr;
  std::size_t id_ = 0;
};

/// RAII phase timer: records a duration sample named `name` into the
/// current registry and emits a trace span of the same name. This is what
/// each pipeline stage opens at the top of its run().
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name) : span_(name), name_(name) {
    if (PipelineObserver* obs = currentObserver(); obs != nullptr) {
      metrics_ = obs->metrics;
    }
    if (metrics_ != nullptr) start_ = TraceCollector::Clock::now();
  }
  ~ScopedTimer() {
    if (metrics_ != nullptr) {
      metrics_->duration(name_).record(
          std::chrono::duration<double>(TraceCollector::Clock::now() - start_)
              .count());
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  void arg(std::string_view key, std::string value) {
    span_.arg(key, std::move(value));
  }

 private:
  ScopedSpan span_;
  std::string name_;
  MetricsRegistry* metrics_ = nullptr;
  TraceCollector::Clock::time_point start_;
};

/// Counter handle for hot loops: resolve once, increment many times.
/// Returns nullptr when no registry is installed.
[[nodiscard]] inline MetricsRegistry::Counter* counterHandle(
    std::string_view name) {
  PipelineObserver* obs = currentObserver();
  if (obs == nullptr || obs->metrics == nullptr) return nullptr;
  return &obs->metrics->counter(name);
}

}  // namespace safeflow::support

// Cheap fire-and-forget instrumentation. All of these compile to a
// thread-local load and a branch when no observer is installed.
#define SAFEFLOW_COUNT(name) SAFEFLOW_COUNT_N(name, 1)
#define SAFEFLOW_COUNT_N(name, n)                                        \
  do {                                                                   \
    if (::safeflow::support::PipelineObserver* sf_obs_ =                 \
            ::safeflow::support::currentObserver();                      \
        sf_obs_ != nullptr && sf_obs_->metrics != nullptr) {             \
      sf_obs_->metrics->counter(name).add(                               \
          static_cast<std::uint64_t>(n));                                \
    }                                                                    \
  } while (0)
#define SAFEFLOW_GAUGE(name, v)                                          \
  do {                                                                   \
    if (::safeflow::support::PipelineObserver* sf_obs_ =                 \
            ::safeflow::support::currentObserver();                      \
        sf_obs_ != nullptr && sf_obs_->metrics != nullptr) {             \
      sf_obs_->metrics->gauge(name).set(static_cast<double>(v));         \
    }                                                                    \
  } while (0)
