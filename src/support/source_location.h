// Source coordinates shared by the lexer, parser, and every analysis
// diagnostic. A SourceLocation is a (file, line, column) triple; line and
// column are 1-based, with 0 meaning "unknown".
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace safeflow::support {

/// Opaque identifier of a file registered with a SourceManager.
struct FileId {
  std::uint32_t index = UINT32_MAX;

  [[nodiscard]] bool valid() const { return index != UINT32_MAX; }
  auto operator<=>(const FileId&) const = default;
};

struct SourceLocation {
  FileId file;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return file.valid() && line != 0; }
  auto operator<=>(const SourceLocation&) const = default;
};

struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  [[nodiscard]] bool valid() const { return begin.valid(); }
};

}  // namespace safeflow::support
