// Diagnostic engine shared by the front end and the analyses. Diagnostics
// are accumulated, never thrown; analyses inspect and render them at the
// end of a run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/source_location.h"

namespace safeflow::support {

class SourceManager;

enum class Severity {
  kNote,
  kWarning,  // e.g. an unmonitored non-core access (paper's "warning")
  kError,    // e.g. a critical-data dependency or a parse error
  kFatal,    // front end cannot continue
};

[[nodiscard]] std::string_view severityName(Severity s);

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLocation location;
  std::string message;
  /// Machine-readable tag, e.g. "parse", "restriction.P2", "taint.unsafe".
  std::string category;
};

class DiagnosticEngine {
 public:
  void report(Severity sev, SourceLocation loc, std::string category,
              std::string message);

  void note(SourceLocation loc, std::string msg) {
    report(Severity::kNote, loc, "note", std::move(msg));
  }
  void warning(SourceLocation loc, std::string category, std::string msg) {
    report(Severity::kWarning, loc, std::move(category), std::move(msg));
  }
  void error(SourceLocation loc, std::string category, std::string msg) {
    report(Severity::kError, loc, std::move(category), std::move(msg));
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t errorCount() const { return errors_; }
  [[nodiscard]] bool hasErrors() const { return errors_ != 0; }

  [[nodiscard]] std::size_t countCategoryPrefix(std::string_view prefix) const;

  /// Renders all diagnostics, one per line, using the source manager for
  /// locations.
  [[nodiscard]] std::string render(const SourceManager& sm) const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t errors_ = 0;
};

}  // namespace safeflow::support
