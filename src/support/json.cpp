#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace safeflow::support::json {

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::uint64_t Value::uintOr(std::uint64_t fallback) const {
  if (!isNumber() || number_value < 0.0) return fallback;
  return static_cast<std::uint64_t>(number_value);
}

std::string Value::memberString(std::string_view key,
                                const std::string& fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->stringOr(fallback) : fallback;
}

double Value::memberNumber(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->numberOr(fallback) : fallback;
}

std::uint64_t Value::memberUint(std::string_view key,
                                std::uint64_t fallback) const {
  const Value* v = find(key);
  return v != nullptr ? v->uintOr(fallback) : fallback;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool run(Value* out, std::string* error) {
    skipWs();
    if (!parseValue(out, 0)) {
      if (error != nullptr) {
        *error = error_ + " at byte " + std::to_string(pos_);
      }
      return false;
    }
    skipWs();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at byte " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool consume(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parseValue(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"':
        out->kind = Value::Kind::kString;
        return parseString(&out->string_value);
      case 't':
        if (!literal("true")) return fail("bad literal");
        out->kind = Value::Kind::kBool;
        out->bool_value = true;
        return true;
      case 'f':
        if (!literal("false")) return fail("bad literal");
        out->kind = Value::Kind::kBool;
        out->bool_value = false;
        return true;
      case 'n':
        if (!literal("null")) return fail("bad literal");
        out->kind = Value::Kind::kNull;
        return true;
      default: return parseNumber(out);
    }
  }

  bool parseObject(Value* out, int depth) {
    ++pos_;  // '{'
    out->kind = Value::Kind::kObject;
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      std::string key;
      if (!parseString(&key)) return fail("expected object key");
      skipWs();
      if (!consume(':')) return fail("expected ':'");
      skipWs();
      Value member;
      if (!parseValue(&member, depth + 1)) return false;
      out->members.emplace_back(std::move(key), std::move(member));
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parseArray(Value* out, int depth) {
    ++pos_;  // '['
    out->kind = Value::Kind::kArray;
    skipWs();
    if (consume(']')) return true;
    while (true) {
      skipWs();
      Value element;
      if (!parseValue(&element, depth + 1)) return false;
      out->array.push_back(std::move(element));
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parseString(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Our writer only emits \u00xx for control bytes; decode the
          // BMP point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(Value* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return fail("bad number");
    }
    out->kind = Value::Kind::kNumber;
    out->number_value = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse(std::string_view text, Value* out, std::string* error) {
  *out = Value{};
  return Parser(text).run(out, error);
}

}  // namespace safeflow::support::json
