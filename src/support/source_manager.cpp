#include "support/source_manager.h"

#include <cassert>
#include <fstream>
#include <sstream>

namespace safeflow::support {

namespace {
std::vector<std::size_t> computeLineOffsets(std::string_view text) {
  std::vector<std::size_t> offsets{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') offsets.push_back(i + 1);
  }
  return offsets;
}
}  // namespace

FileId SourceManager::addBuffer(std::string name, std::string contents) {
  File f;
  f.name = std::move(name);
  f.contents = std::move(contents);
  f.line_offsets = computeLineOffsets(f.contents);
  files_.push_back(std::move(f));
  return FileId{static_cast<std::uint32_t>(files_.size() - 1)};
}

std::optional<FileId> SourceManager::addFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return addBuffer(path, ss.str());
}

const SourceManager::File& SourceManager::file(FileId id) const {
  assert(id.valid() && id.index < files_.size());
  return files_[id.index];
}

std::string_view SourceManager::name(FileId id) const { return file(id).name; }

std::string_view SourceManager::contents(FileId id) const {
  return file(id).contents;
}

std::string_view SourceManager::lineText(FileId id, std::uint32_t line) const {
  const File& f = file(id);
  if (line == 0 || line > f.line_offsets.size()) return {};
  const std::size_t begin = f.line_offsets[line - 1];
  std::size_t end = (line < f.line_offsets.size()) ? f.line_offsets[line] - 1
                                                   : f.contents.size();
  if (end > begin && f.contents[end - 1] == '\r') --end;
  return std::string_view(f.contents).substr(begin, end - begin);
}

std::string SourceManager::describe(const SourceLocation& loc) const {
  if (!loc.valid()) return "<unknown>";
  std::ostringstream ss;
  ss << name(loc.file) << ':' << loc.line << ':' << loc.column;
  return ss.str();
}

}  // namespace safeflow::support
