#include "support/limits.h"

#include <cerrno>
#include <cstdlib>

#include "support/flight_recorder.h"
#include "support/metrics.h"

namespace safeflow::support {

void AnalysisBudget::start() {
  if (started_) return;
  started_ = true;
  if (limits_.time_seconds > 0.0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(limits_.time_seconds));
  }
}

void AnalysisBudget::beginPhase(std::string phase) {
  phase_ = std::move(phase);
  phase_steps_ = 0;
  until_time_check_ = 0;
  exhausted_ = false;
}

bool AnalysisBudget::stepSlow(std::uint64_t n) {
  phase_steps_ += n;
  if (limits_.phase_steps > 0 && phase_steps_ > limits_.phase_steps) {
    trip("steps");
    return false;
  }
  if (started_ && limits_.time_seconds > 0.0) {
    if (until_time_check_ <= n) {
      until_time_check_ = kTimeCheckInterval;
      if (std::chrono::steady_clock::now() >= deadline_) {
        trip("time");
        return false;
      }
    } else {
      until_time_check_ -= n;
    }
  }
  return true;
}

void AnalysisBudget::trip(const char* reason) {
  exhausted_ = true;
  events_.push_back(BudgetEvent{phase_, reason, phase_steps_});
  SAFEFLOW_COUNT("budget.exhausted");
  flightRecord("budget", phase_ + " " + reason + " limit");
}

bool AnalysisBudget::phaseDegraded(std::string_view phase) const {
  for (const BudgetEvent& e : events_) {
    if (e.phase == phase) return true;
  }
  return false;
}

bool parseDuration(std::string_view text, double* seconds) {
  if (text.empty()) return false;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || errno == ERANGE || value < 0.0) return false;
  const std::string_view unit = buf.c_str() + (end - buf.c_str());
  double scale = 1.0;
  if (unit == "s" || unit.empty()) {
    scale = 1.0;
  } else if (unit == "ms") {
    scale = 1e-3;
  } else if (unit == "us") {
    scale = 1e-6;
  } else if (unit == "m" || unit == "min") {
    scale = 60.0;
  } else {
    return false;
  }
  *seconds = value * scale;
  return true;
}

}  // namespace safeflow::support
