#include "support/diagnostics.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "support/flight_recorder.h"
#include "support/source_manager.h"

namespace safeflow::support {

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
    case Severity::kFatal:
      return "fatal";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity sev, SourceLocation loc,
                              std::string category, std::string message) {
  if (sev == Severity::kError || sev == Severity::kFatal) ++errors_;
  // Postmortem breadcrumb: a crash shortly after a diagnostic often
  // implicates the construct that produced it.
  flightRecord("diag", category);
  diags_.push_back(
      Diagnostic{sev, loc, std::move(message), std::move(category)});
}

std::size_t DiagnosticEngine::countCategoryPrefix(
    std::string_view prefix) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (std::string_view(d.category).substr(0, prefix.size()) == prefix) ++n;
  }
  return n;
}

std::string DiagnosticEngine::render(const SourceManager& sm) const {
  // Deterministic output regardless of the order files were added or
  // phases ran: sort by (file name, line, column, severity). The sort is
  // stable so diagnostics at the same location keep emission order.
  std::vector<const Diagnostic*> ordered;
  ordered.reserve(diags_.size());
  for (const Diagnostic& d : diags_) ordered.push_back(&d);
  std::stable_sort(
      ordered.begin(), ordered.end(),
      [&sm](const Diagnostic* a, const Diagnostic* b) {
        const std::string_view fa = a->location.file.valid()
                                        ? sm.name(a->location.file)
                                        : std::string_view();
        const std::string_view fb = b->location.file.valid()
                                        ? sm.name(b->location.file)
                                        : std::string_view();
        if (fa != fb) return fa < fb;
        if (a->location.line != b->location.line) {
          return a->location.line < b->location.line;
        }
        if (a->location.column != b->location.column) {
          return a->location.column < b->location.column;
        }
        return a->severity < b->severity;
      });

  std::ostringstream ss;
  for (const Diagnostic* d : ordered) {
    ss << sm.describe(d->location) << ": " << severityName(d->severity)
       << " [" << d->category << "] " << d->message << '\n';
  }
  if (!diags_.empty()) {
    // Per-category totals, grouped by top-level category prefix.
    std::set<std::string> prefixes;
    for (const Diagnostic& d : diags_) {
      prefixes.insert(d.category.substr(0, d.category.find('.')));
    }
    ss << diags_.size() << " diagnostic(s):";
    for (const std::string& prefix : prefixes) {
      ss << ' ' << prefix << '=' << countCategoryPrefix(prefix);
    }
    ss << '\n';
  }
  return ss.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errors_ = 0;
}

}  // namespace safeflow::support
