#include "support/diagnostics.h"

#include <sstream>

#include "support/source_manager.h"

namespace safeflow::support {

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
    case Severity::kFatal:
      return "fatal";
  }
  return "unknown";
}

void DiagnosticEngine::report(Severity sev, SourceLocation loc,
                              std::string category, std::string message) {
  if (sev == Severity::kError || sev == Severity::kFatal) ++errors_;
  diags_.push_back(
      Diagnostic{sev, loc, std::move(message), std::move(category)});
}

std::size_t DiagnosticEngine::countCategoryPrefix(
    std::string_view prefix) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (std::string_view(d.category).substr(0, prefix.size()) == prefix) ++n;
  }
  return n;
}

std::string DiagnosticEngine::render(const SourceManager& sm) const {
  std::ostringstream ss;
  for (const Diagnostic& d : diags_) {
    ss << sm.describe(d.location) << ": " << severityName(d.severity) << " ["
       << d.category << "] " << d.message << '\n';
  }
  return ss.str();
}

void DiagnosticEngine::clear() {
  diags_.clear();
  errors_ = 0;
}

}  // namespace safeflow::support
