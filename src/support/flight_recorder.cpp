#include "support/flight_recorder.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>

#include <unistd.h>

namespace safeflow::support {

namespace {

// Fixed-width slots so recording and dumping never allocate. A slot's
// `seq` is written twice (before and after the payload copy): the dump
// treats a mismatch as a torn slot.
struct Slot {
  std::atomic<std::uint64_t> seq_pre{0};
  std::atomic<std::uint64_t> seq_post{0};
  char kind[16];
  char detail[72];
};

Slot g_ring[kFlightRecorderCapacity];
std::atomic<std::uint64_t> g_next{0};  // total events ever recorded

void copyBounded(char* dst, std::size_t cap, const char* src) {
  std::size_t i = 0;
  for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

/// Async-signal-safe unsigned decimal formatting; returns chars written.
std::size_t formatU64(char* buf, std::uint64_t v) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void writeAll(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // best effort: a postmortem must never loop forever
    }
    off += static_cast<std::size_t>(n);
  }
}

extern "C" void crashDumpHandler(int signal_number) {
  const char* name = signal_number == SIGSEGV   ? "SIGSEGV"
                     : signal_number == SIGABRT ? "SIGABRT"
                     : signal_number == SIGBUS  ? "SIGBUS"
                                                : "signal";
  char line[96];
  std::size_t n = 0;
  const char* head = "SAFEFLOW-FR-DUMP fatal ";
  for (const char* p = head; *p != '\0'; ++p) line[n++] = *p;
  for (const char* p = name; *p != '\0'; ++p) line[n++] = *p;
  line[n++] = '\n';
  writeAll(STDERR_FILENO, line, n);
  flightRecorderDump(STDERR_FILENO);
  // SA_RESETHAND restored the default disposition; re-raise so the
  // parent still sees WIFSIGNALED with the original signal.
  ::raise(signal_number);
}

}  // namespace

void flightRecord(const char* kind, const char* detail) {
  const std::uint64_t seq =
      g_next.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = g_ring[(seq - 1) % kFlightRecorderCapacity];
  slot.seq_pre.store(seq, std::memory_order_relaxed);
  copyBounded(slot.kind, sizeof slot.kind, kind);
  copyBounded(slot.detail, sizeof slot.detail, detail);
  slot.seq_post.store(seq, std::memory_order_release);
}

void flightRecord(const char* kind, const std::string& detail) {
  flightRecord(kind, detail.c_str());
}

std::uint64_t flightRecorderCount() {
  return g_next.load(std::memory_order_relaxed);
}

void flightRecorderReset() {
  g_next.store(0, std::memory_order_relaxed);
  for (Slot& slot : g_ring) {
    slot.seq_pre.store(0, std::memory_order_relaxed);
    slot.seq_post.store(0, std::memory_order_relaxed);
  }
}

void flightRecorderDump(int fd) {
  const std::uint64_t total = g_next.load(std::memory_order_acquire);
  if (total == 0) return;
  const std::uint64_t first =
      total > kFlightRecorderCapacity ? total - kFlightRecorderCapacity + 1
                                      : 1;
  for (std::uint64_t seq = first; seq <= total; ++seq) {
    const Slot& slot = g_ring[(seq - 1) % kFlightRecorderCapacity];
    const std::uint64_t pre = slot.seq_pre.load(std::memory_order_acquire);
    const std::uint64_t post =
        slot.seq_post.load(std::memory_order_acquire);
    char line[160];
    std::size_t n = 0;
    const char* head = "SAFEFLOW-FR ";
    for (const char* p = head; *p != '\0'; ++p) line[n++] = *p;
    n += formatU64(line + n, seq);
    line[n++] = ' ';
    if (pre != seq || post != seq) {
      const char* torn = "torn slot\n";
      for (const char* p = torn; *p != '\0'; ++p) line[n++] = *p;
      writeAll(fd, line, n);
      continue;
    }
    for (const char* p = slot.kind;
         *p != '\0' && n < sizeof line - 2; ++p) {
      line[n++] = *p == '\n' ? ' ' : *p;
    }
    line[n++] = ' ';
    for (const char* p = slot.detail;
         *p != '\0' && n < sizeof line - 1; ++p) {
      line[n++] = *p == '\n' ? ' ' : *p;
    }
    line[n++] = '\n';
    writeAll(fd, line, n);
  }
  // Terminator so the parser can distinguish a complete dump from one
  // cut off by a stderr capture cap or a mid-dump SIGKILL.
  char end[48];
  std::size_t n = 0;
  const char* tail = "SAFEFLOW-FR-END ";
  for (const char* p = tail; *p != '\0'; ++p) end[n++] = *p;
  n += formatU64(end + n, total);
  end[n++] = '\n';
  writeAll(fd, end, n);
}

void installCrashDumpHandlers() {
  struct sigaction action{};
  action.sa_handler = crashDumpHandler;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: one shot, then the default (fatal) disposition, so
  // the re-raise in the handler terminates with the original signal.
  // SA_NODEFER: the re-raise is deliverable from inside the handler.
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
  ::sigaction(SIGBUS, &action, nullptr);
}

std::vector<FlightEvent> parseFlightRecorderLines(
    const std::string& stderr_text, bool assume_truncated) {
  std::vector<FlightEvent> events;
  constexpr const char kPrefix[] = "SAFEFLOW-FR ";
  constexpr std::size_t kPrefixLen = sizeof kPrefix - 1;
  constexpr const char kEnd[] = "SAFEFLOW-FR-END";
  constexpr std::size_t kEndLen = sizeof kEnd - 1;
  // Field widths from the dump format (Slot above): anything longer is
  // a foreign line that happens to carry the prefix, or an FR line with
  // another stream's bytes interleaved into it — skip either.
  constexpr std::size_t kMaxSeqDigits = 20;  // fits any uint64
  constexpr std::size_t kMaxKind = 15;       // sizeof Slot::kind - 1
  constexpr std::size_t kMaxDetail = 71;     // sizeof Slot::detail - 1
  bool end_seen = false;
  std::size_t pos = 0;
  while (pos < stderr_text.size()) {
    std::size_t eol = stderr_text.find('\n', pos);
    const bool terminated = eol != std::string::npos;
    if (!terminated) eol = stderr_text.size();
    const std::string line = stderr_text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.compare(0, kEndLen, kEnd) == 0) {
      end_seen = true;
      continue;
    }
    if (line.compare(0, kPrefixLen, kPrefix) != 0) continue;
    // A prefix-matching line that is the stream's last and carries no
    // newline may have been cut mid-write; never trust it.
    if (!terminated) continue;

    FlightEvent event;
    std::size_t i = kPrefixLen;
    std::size_t digits = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
      event.seq = event.seq * 10 + static_cast<std::uint64_t>(line[i] - '0');
      ++i;
      ++digits;
    }
    if (digits == 0 || digits > kMaxSeqDigits || i >= line.size() ||
        line[i] != ' ') {
      continue;
    }
    ++i;
    const std::size_t kind_end = line.find(' ', i);
    if (kind_end == std::string::npos) {
      event.kind = line.substr(i);
    } else {
      event.kind = line.substr(i, kind_end - i);
      event.detail = line.substr(kind_end + 1);
    }
    if (event.kind.empty() || event.kind.size() > kMaxKind ||
        event.detail.size() > kMaxDetail) {
      continue;
    }
    events.push_back(std::move(event));
  }
  // A capped capture can cut the dump exactly at a line boundary, which
  // leaves the final event looking complete while its tail bytes are
  // gone. When the caller knows bytes were dropped and the dump's END
  // marker never arrived, the last event cannot be proven complete.
  if (assume_truncated && !end_seen && !events.empty()) {
    events.pop_back();
  }
  return events;
}

}  // namespace safeflow::support
