#include "support/io_faults.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/flight_recorder.h"

namespace safeflow::support::io {

namespace {

enum class IoFaultKind {
  kNone,
  kEnospc,
  kEio,
  kShortWrite,
  kTornRename,
  kFsyncFail,
};

struct IoFaultSpec {
  IoFaultKind kind = IoFaultKind::kNone;
  std::string site;
  unsigned nth = 1;
};

std::atomic<bool> g_armed{false};
std::mutex g_mu;          // guards g_spec and g_hits across pool threads
IoFaultSpec g_spec;
unsigned g_hits = 0;

const char* kindName(IoFaultKind kind) {
  switch (kind) {
    case IoFaultKind::kEnospc: return "enospc";
    case IoFaultKind::kEio: return "eio";
    case IoFaultKind::kShortWrite: return "short_write";
    case IoFaultKind::kTornRename: return "torn_rename";
    case IoFaultKind::kFsyncFail: return "fsync_fail";
    case IoFaultKind::kNone: break;
  }
  return "none";
}

bool parseSpec(const std::string& text, IoFaultSpec* spec) {
  const std::size_t at = text.find('@');
  if (at == std::string::npos) return false;
  const std::string kind = text.substr(0, at);
  std::string rest = text.substr(at + 1);
  if (kind == "enospc") spec->kind = IoFaultKind::kEnospc;
  else if (kind == "eio") spec->kind = IoFaultKind::kEio;
  else if (kind == "short_write") spec->kind = IoFaultKind::kShortWrite;
  else if (kind == "torn_rename") spec->kind = IoFaultKind::kTornRename;
  else if (kind == "fsync_fail") spec->kind = IoFaultKind::kFsyncFail;
  else return false;
  if (const std::size_t colon = rest.find(':');
      colon != std::string::npos) {
    const std::string nth = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    char* end = nullptr;
    const unsigned long n = std::strtoul(nth.c_str(), &end, 10);
    if (end == nth.c_str() || *end != '\0' || n == 0) return false;
    spec->nth = static_cast<unsigned>(n);
  }
  if (rest.empty()) return false;
  spec->site = rest;
  return true;
}

/// True (and consumes the armed fault) when `site` hits the configured
/// nth occurrence of a checkpoint the given kinds apply to.
bool shouldTrigger(const char* site, std::initializer_list<IoFaultKind> kinds,
                   IoFaultKind* kind) {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  const std::lock_guard<std::mutex> lock(g_mu);
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  bool applies = false;
  for (const IoFaultKind k : kinds) applies = applies || k == g_spec.kind;
  if (!applies || g_spec.site != site) return false;
  if (++g_hits < g_spec.nth) return false;
  // One-shot: the retry/fallback path must see a healthy filesystem.
  g_armed.store(false, std::memory_order_relaxed);
  *kind = g_spec.kind;
  flightRecord("io_fault",
               std::string(kindName(g_spec.kind)) + "@" + g_spec.site);
  return true;
}

IoStatus failure(const std::string& what, int error_errno) {
  IoStatus status;
  status.ok = false;
  status.error_errno = error_errno;
  status.message = what;
  if (error_errno != 0) {
    status.message += ": ";
    status.message += std::strerror(error_errno);
  }
  return status;
}

}  // namespace

void armIoFaultInjectionFromEnv() {
  const char* spec_text = std::getenv("SAFEFLOW_INJECT_IO");
  if (spec_text == nullptr || *spec_text == '\0') return;
  (void)armIoFaultInjection(spec_text);
}

bool armIoFaultInjection(const std::string& spec_text) {
  const std::lock_guard<std::mutex> lock(g_mu);
  g_hits = 0;
  if (spec_text.empty()) {
    g_armed.store(false, std::memory_order_relaxed);
    g_spec = IoFaultSpec{};
    return true;
  }
  IoFaultSpec spec;
  if (!parseSpec(spec_text, &spec)) {
    g_armed.store(false, std::memory_order_relaxed);
    return false;  // malformed: stay inert, like SAFEFLOW_INJECT_FAULT
  }
  g_spec = std::move(spec);
  g_armed.store(true, std::memory_order_relaxed);
  return true;
}

bool ioFaultInjectionArmed() {
  return g_armed.load(std::memory_order_relaxed);
}

bool writeAllFd(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

namespace {

/// MSG_NOSIGNAL counterpart of writeAllFd for sockets.
bool sendAllFd(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Shared body of writeAll/sendAll, parameterized on the raw loop.
IoStatus writeThroughFaults(int fd, std::string_view data, const char* site,
                            bool (*loop)(int, const char*, std::size_t)) {
  IoFaultKind kind = IoFaultKind::kNone;
  std::size_t limit = data.size();
  bool fail_after_prefix = false;
  int fail_errno = 0;
  if (shouldTrigger(site,
                    {IoFaultKind::kEnospc, IoFaultKind::kEio,
                     IoFaultKind::kShortWrite},
                    &kind)) {
    // All three kinds first emit a partial prefix: enospc/eio then fail
    // (the torn artifact the caller must clean up), short_write then
    // continues (the loop below must finish the job on its own).
    limit = data.size() / 2;
    if (kind == IoFaultKind::kEnospc || kind == IoFaultKind::kEio) {
      fail_after_prefix = true;
      fail_errno = kind == IoFaultKind::kEnospc ? ENOSPC : EIO;
    }
  }
  if (!loop(fd, data.data(), limit)) {
    return failure("write failed at site '" + std::string(site) + "'",
                   errno);
  }
  if (fail_after_prefix) {
    return failure("write failed at site '" + std::string(site) +
                       "' (injected)",
                   fail_errno);
  }
  if (limit < data.size() &&
      !loop(fd, data.data() + limit, data.size() - limit)) {
    return failure("write failed at site '" + std::string(site) + "'",
                   errno);
  }
  return IoStatus{};
}

}  // namespace

IoStatus writeAll(int fd, std::string_view data, const char* site) {
  return writeThroughFaults(fd, data, site, &writeAllFd);
}

IoStatus sendAll(int fd, std::string_view data, const char* site) {
  return writeThroughFaults(fd, data, site, &sendAllFd);
}

IoStatus fsyncFd(int fd, const char* site) {
  IoFaultKind kind = IoFaultKind::kNone;
  if (shouldTrigger(site, {IoFaultKind::kFsyncFail}, &kind)) {
    return failure("fsync failed at site '" + std::string(site) +
                       "' (injected)",
                   EIO);
  }
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    // EINVAL: the fd cannot be synced (a pipe/socket in tests); that is
    // not a durability failure of a regular file.
    if (errno == EINVAL) break;
    return failure("fsync failed at site '" + std::string(site) + "'",
                   errno);
  }
  return IoStatus{};
}

IoStatus renameFile(const std::string& from, const std::string& to,
                    const char* site) {
  IoFaultKind kind = IoFaultKind::kNone;
  if (shouldTrigger(site, {IoFaultKind::kTornRename}, &kind)) {
    // Emulate the crash window a missing fsync leaves open: the rename
    // "happens" but the destination's bytes are torn. The caller sees a
    // failure; the next reader must detect the torn entry by checksum.
    struct stat st{};
    if (::stat(from.c_str(), &st) == 0 && st.st_size > 0) {
      (void)::truncate(from.c_str(), st.st_size / 2);
    }
    (void)::rename(from.c_str(), to.c_str());
    return failure("rename '" + from + "' to '" + to + "' at site '" +
                       std::string(site) + "' left a torn file (injected)",
                   0);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return failure("cannot rename '" + from + "' to '" + to + "'", errno);
  }
  return IoStatus{};
}

IoStatus writeFile(const std::string& path, std::string_view data,
                   const char* site) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0666);
  if (fd < 0) {
    return failure("cannot create '" + path + "'", errno);
  }
  IoStatus status = writeAll(fd, data, site);
  if (status.ok) status = fsyncFd(fd, site);
  ::close(fd);
  if (!status.ok) {
    // Never leave a truncated-but-silent artifact: a consumer must see
    // either the complete document or no file at all.
    ::unlink(path.c_str());
    status.message = "cannot write '" + path + "': " + status.message;
  }
  return status;
}

}  // namespace safeflow::support::io
