#include "support/fault_inject.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "support/flight_recorder.h"

namespace safeflow::support {

namespace {

enum class FaultKind { kNone, kCrash, kHang, kOom, kExit2 };

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  std::string phase;
  unsigned nth = 1;
  unsigned hits = 0;
};

std::atomic<bool> g_armed{false};
FaultSpec g_spec;  // written once by armWorkerFaultInjection, then read-only

[[noreturn]] void trigger(FaultKind kind) {
  // Deliberate fatal path: flush the flight recorder to stderr first so
  // the supervisor's postmortem (worker_failures.flight_recorder) names
  // the phase and the events leading up to the death. For kCrash the
  // recorder is dumped here because the SIGSEGV below runs with the
  // default disposition (no handler gets a chance); for kHang the dump
  // happens before the watchdog's SIGKILL can land.
  flightRecord("worker", "fault-injection trigger");
  flightRecorderDump(STDERR_FILENO);
  switch (kind) {
    case FaultKind::kCrash:
      // Restore the default disposition so a sanitizer's SEGV handler
      // cannot convert the death into a plain exit: the supervisor must
      // see WIFSIGNALED(SIGSEGV).
      std::signal(SIGSEGV, SIG_DFL);
      ::raise(SIGSEGV);
      break;
    case FaultKind::kHang:
      for (;;) ::sleep(3600);
    case FaultKind::kOom:
      // Emulate the OOM killer's SIGKILL without destabilizing the host.
      ::raise(SIGKILL);
      break;
    default:
      break;
  }
  std::_Exit(2);  // kExit2 (and the unreachable fallthroughs above)
}

bool parseSpec(const char* text, FaultSpec* spec) {
  const std::string s(text);
  const std::size_t at = s.find('@');
  if (at == std::string::npos) return false;
  const std::string kind = s.substr(0, at);
  std::string rest = s.substr(at + 1);
  if (kind == "crash") spec->kind = FaultKind::kCrash;
  else if (kind == "hang") spec->kind = FaultKind::kHang;
  else if (kind == "oom") spec->kind = FaultKind::kOom;
  else if (kind == "exit2") spec->kind = FaultKind::kExit2;
  else return false;
  const std::size_t colon = rest.find(':');
  if (colon != std::string::npos) {
    const std::string nth = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
    char* end = nullptr;
    const unsigned long n = std::strtoul(nth.c_str(), &end, 10);
    if (end == nth.c_str() || *end != '\0' || n == 0) return false;
    spec->nth = static_cast<unsigned>(n);
  }
  if (rest.empty()) return false;
  spec->phase = rest;
  return true;
}

}  // namespace

void armWorkerFaultInjection(const std::string& input_file) {
  const char* spec_text = std::getenv("SAFEFLOW_INJECT_FAULT");
  if (spec_text == nullptr || *spec_text == '\0') return;

  if (const char* file = std::getenv("SAFEFLOW_INJECT_FAULT_FILE");
      file != nullptr && *file != '\0' &&
      input_file.find(file) == std::string::npos) {
    return;  // spec targets a different shard
  }
  if (const char* attempts = std::getenv("SAFEFLOW_INJECT_FAULT_ATTEMPTS");
      attempts != nullptr && *attempts != '\0') {
    const char* attempt = std::getenv("SAFEFLOW_WORKER_ATTEMPT");
    const unsigned long limit = std::strtoul(attempts, nullptr, 10);
    const unsigned long current =
        attempt != nullptr ? std::strtoul(attempt, nullptr, 10) : 1;
    if (current > limit) return;  // past the faulty attempts: run clean
  }

  FaultSpec spec;
  if (!parseSpec(spec_text, &spec)) return;  // malformed spec: stay inert
  g_spec = spec;
  g_armed.store(true, std::memory_order_release);
}

bool faultInjectionArmed() {
  return g_armed.load(std::memory_order_acquire);
}

void faultInjectionPoint(const char* phase) {
  // Every pipeline stage announces itself here, so this is also the
  // flight recorder's phase-entry hook: the ring always knows which
  // phase the process died in, fault-injected or not.
  flightRecord("phase", phase);
  if (!g_armed.load(std::memory_order_relaxed)) return;
  if (g_spec.phase != phase) return;
  if (++g_spec.hits < g_spec.nth) return;
  trigger(g_spec.kind);
}

}  // namespace safeflow::support
