// Line-oriented diff (LCS-based) used to reproduce the "Source Changes"
// column of Table 1: the number of lines that differ between the shipped
// corpus and its pre-refactor "original" variant.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace safeflow::support {

struct DiffStats {
  std::size_t added = 0;
  std::size_t removed = 0;
  /// Total changed lines, the metric Table 1 reports (added + removed).
  [[nodiscard]] std::size_t changed() const { return added + removed; }
};

/// Splits on '\n'; a trailing newline does not create an empty last line.
[[nodiscard]] std::vector<std::string_view> splitLines(std::string_view text);

/// Computes added/removed line counts between two texts.
[[nodiscard]] DiffStats diffLines(std::string_view before,
                                  std::string_view after);

}  // namespace safeflow::support
