// Control-dependence computation (Ferrante–Ottenstein–Warren) from the
// post-dominator tree. Used by the taint phase to model implicit flows:
// a value assigned under a branch on unsafe data is control dependent on
// that data — the source of the paper's false-positive class.
#pragma once

#include <map>
#include <set>

#include "ir/dominators.h"
#include "ir/ir.h"

namespace safeflow::analysis {

class ControlDependence {
 public:
  static ControlDependence compute(const ir::Function& fn);

  /// Blocks whose branch condition this block is control dependent on.
  [[nodiscard]] const std::set<const ir::BasicBlock*>& controllers(
      const ir::BasicBlock* bb) const;

 private:
  std::map<const ir::BasicBlock*, std::set<const ir::BasicBlock*>> deps_;
  std::set<const ir::BasicBlock*> empty_;
};

}  // namespace safeflow::analysis
