#include "analysis/shm_regions.h"

#include <algorithm>

#include "support/metrics.h"

namespace safeflow::analysis {

std::int64_t ShmRegion::elementCount() const {
  if (pointee_type == nullptr || pointee_type->size() == 0) return 0;
  return size / static_cast<std::int64_t>(pointee_type->size());
}

namespace {

/// The pointer operand of shmvar/noncore intrinsics is a load of the
/// global shm pointer variable; trace it back to the global.
const ir::GlobalVar* traceToGlobal(const ir::Value* v) {
  if (v == nullptr) return nullptr;
  if (v->kind() == ir::Value::Kind::kGlobalVar) {
    return static_cast<const ir::GlobalVar*>(v);
  }
  if (v->isInstruction()) {
    const auto* inst = static_cast<const ir::Instruction*>(v);
    if (inst->opcode() == ir::Opcode::kLoad && inst->numOperands() == 1) {
      return traceToGlobal(inst->operand(0));
    }
    if (inst->opcode() == ir::Opcode::kCast && inst->numOperands() == 1) {
      return traceToGlobal(inst->operand(0));
    }
  }
  return nullptr;
}

}  // namespace

ShmRegionTable ShmRegionTable::build(const ir::Module& module,
                                     support::DiagnosticEngine& diags) {
  const support::ScopedTimer timer("phase.shm_regions");
  ShmRegionTable table;
  for (const auto& fn : module.functions()) {
    if (fn->annotations.is_shminit) table.init_functions_.push_back(fn.get());
  }

  // Message channels (paper §3.4.3): noncore(fd) annotations on integer
  // descriptor variables anywhere in the core component create
  // pseudo-regions for the data received over them.
  for (const auto& fn : module.functions()) {
    if (!fn->isDefined()) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kCall ||
            inst->direct_callee == nullptr ||
            inst->direct_callee->name() != ir::kIntrinsicNonCore) {
          continue;
        }
        const ir::GlobalVar* g = traceToGlobal(inst->operand(0));
        if (g == nullptr || !g->valueType()->isInteger()) continue;
        if (table.by_global_.contains(g)) continue;
        ShmRegion channel;
        channel.id = static_cast<int>(table.regions_.size());
        channel.name = g->name();
        channel.pointer_global = g;
        channel.noncore = true;
        channel.is_message_channel = true;
        channel.location = inst->location();
        table.by_global_[g] = channel.id;
        table.regions_.push_back(channel);
      }
    }
  }

  for (const ir::Function* fn : table.init_functions_) {
    if (!fn->isDefined()) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kCall ||
            inst->direct_callee == nullptr) {
          continue;
        }
        const std::string& callee = inst->direct_callee->name();
        if (callee == ir::kIntrinsicShmVar) {
          const ir::GlobalVar* g = traceToGlobal(inst->operand(0));
          if (g == nullptr) {
            diags.error(inst->location(), "annotation",
                        "shmvar must name a global shared-memory pointer");
            continue;
          }
          if (table.by_global_.contains(g)) {
            diags.error(inst->location(), "annotation",
                        "duplicate shmvar declaration for '" + g->name() +
                            "'");
            continue;
          }
          ShmRegion region;
          region.id = static_cast<int>(table.regions_.size());
          region.name = g->name();
          region.pointer_global = g;
          const ir::Type* t = g->valueType();
          region.pointee_type =
              t->isPointer()
                  ? static_cast<const cfront::PointerType*>(t)->pointee()
                  : t;
          region.size =
              static_cast<const ir::ConstantInt*>(inst->operand(1))->value();
          region.location = inst->location();
          table.by_global_[g] = region.id;
          table.regions_.push_back(region);
        } else if (callee == ir::kIntrinsicNonCore) {
          const ir::GlobalVar* g = traceToGlobal(inst->operand(0));
          const ShmRegion* region = g ? table.byGlobal(g) : nullptr;
          if (region == nullptr) {
            diags.error(inst->location(), "annotation",
                        "noncore annotation without a matching shmvar");
            continue;
          }
          table.regions_[static_cast<std::size_t>(region->id)].noncore =
              true;
        }
      }
    }
  }
  table.verifyInitCheck(module, diags);
  SAFEFLOW_GAUGE("shm_regions.count", table.regions_.size());
  SAFEFLOW_GAUGE("shm_regions.noncore", table.noncoreCount());
  SAFEFLOW_GAUGE("shm_regions.init_functions", table.init_functions_.size());
  return table;
}

void ShmRegionTable::verifyInitCheck(const ir::Module& module,
                                     support::DiagnosticEngine& diags) {
  (void)module;
  if (regions_.empty()) return;

  // Abstract state: byte offset of each value within "the" shm segment.
  // shmat-style allocator results sit at offset 0; pointer arithmetic and
  // casts shift/copy it; stores into the region globals bind the offsets.
  std::map<const ir::Value*, std::int64_t> offsets;
  std::map<const ir::GlobalVar*, std::int64_t> region_offsets;

  for (const ir::Function* fn : init_functions_) {
    if (!fn->isDefined()) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        switch (inst->opcode()) {
          case ir::Opcode::kCall:
            if (inst->direct_callee != nullptr &&
                (inst->direct_callee->name() == "shmat" ||
                 inst->direct_callee->name() == "mmap")) {
              offsets[inst.get()] = 0;
            }
            break;
          case ir::Opcode::kCast: {
            auto it = offsets.find(inst->operand(0));
            if (it != offsets.end()) offsets[inst.get()] = it->second;
            break;
          }
          case ir::Opcode::kIndexAddr: {
            auto base = offsets.find(inst->operand(0));
            if (base == offsets.end()) break;
            const ir::Value* idx = inst->operand(1);
            if (idx->kind() != ir::Value::Kind::kConstantInt) break;
            std::int64_t elem = 1;
            if (inst->type()->isPointer()) {
              elem = static_cast<std::int64_t>(
                  static_cast<const cfront::PointerType*>(inst->type())
                      ->pointee()
                      ->size());
              if (elem == 0) elem = 1;
            }
            offsets[inst.get()] =
                base->second +
                static_cast<const ir::ConstantInt*>(idx)->value() * elem;
            break;
          }
          case ir::Opcode::kLoad: {
            // Re-reading a region global recovers its bound offset
            // (e.g. `noncoreCtrl = feedback + 1`).
            if (inst->operand(0)->kind() == ir::Value::Kind::kGlobalVar) {
              const auto* g =
                  static_cast<const ir::GlobalVar*>(inst->operand(0));
              auto it = region_offsets.find(g);
              if (it != region_offsets.end()) {
                offsets[inst.get()] = it->second;
              }
            } else {
              auto it = offsets.find(inst->operand(0));
              if (it != offsets.end()) offsets[inst.get()] = it->second;
            }
            break;
          }
          case ir::Opcode::kStore: {
            auto v = offsets.find(inst->operand(0));
            if (v == offsets.end()) break;
            if (inst->operand(1)->kind() == ir::Value::Kind::kGlobalVar) {
              const auto* g =
                  static_cast<const ir::GlobalVar*>(inst->operand(1));
              region_offsets[g] = v->second;
            } else if (inst->operand(1)->isInstruction() &&
                       static_cast<const ir::Instruction*>(
                           inst->operand(1))
                               ->opcode() == ir::Opcode::kAlloca) {
              // Local cursor variable that escaped promotion.
              offsets[inst->operand(1)] = v->second;
            }
            break;
          }
          default:
            break;
        }
      }
    }
  }

  // Collect extents for all plain shm regions; any unknown offset demands
  // the run-time check instead.
  struct Extent {
    std::int64_t lo;
    std::int64_t hi;
    const ShmRegion* region;
  };
  std::vector<Extent> extents;
  for (const ShmRegion& r : regions_) {
    if (r.is_message_channel) continue;
    auto it = region_offsets.find(r.pointer_global);
    if (it == region_offsets.end()) return;  // not statically derivable
    extents.push_back(Extent{it->second, it->second + r.size, &r});
  }
  for (std::size_t i = 0; i < extents.size(); ++i) {
    for (std::size_t j = i + 1; j < extents.size(); ++j) {
      if (extents[i].lo < extents[j].hi && extents[j].lo < extents[i].hi) {
        diags.error(extents[j].region->location, "annotation.initcheck",
                    "shmvar regions '" + extents[i].region->name +
                        "' and '" + extents[j].region->name +
                        "' overlap (InitCheck verified statically)");
        return;
      }
    }
  }
  init_check_static_ = true;
}

const ShmRegion* ShmRegionTable::byId(int id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= regions_.size()) {
    return nullptr;
  }
  return &regions_[static_cast<std::size_t>(id)];
}

const ShmRegion* ShmRegionTable::byGlobal(const ir::GlobalVar* g) const {
  auto it = by_global_.find(g);
  return it == by_global_.end() ? nullptr : byId(it->second);
}

const ShmRegion* ShmRegionTable::byName(std::string_view name) const {
  for (const ShmRegion& r : regions_) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::size_t ShmRegionTable::noncoreCount() const {
  return static_cast<std::size_t>(
      std::count_if(regions_.begin(), regions_.end(),
                    [](const ShmRegion& r) { return r.noncore; }));
}

const ShmRegion* ShmRegionTable::channelByGlobal(
    const ir::GlobalVar* g) const {
  const ShmRegion* r = byGlobal(g);
  return (r != nullptr && r->is_message_channel) ? r : nullptr;
}

std::size_t ShmRegionTable::channelCount() const {
  return static_cast<std::size_t>(
      std::count_if(regions_.begin(), regions_.end(), [](const ShmRegion& r) {
        return r.is_message_channel;
      }));
}

bool ShmRegionTable::isInitFunction(const ir::Function* fn) const {
  return std::find(init_functions_.begin(), init_functions_.end(), fn) !=
         init_functions_.end();
}

}  // namespace safeflow::analysis
