// Phase 2 (paper §3.2/§3.3): enforcement of the shared-memory language
// restrictions.
//
//   P1  shared memory is not deallocated (shmdt/shmctl/free on a shm
//       pointer) before the end of main;
//   P2  a pointer to shared memory is never aliased through memory
//       (no address-of, no store into anything but the declared shm
//       pointer globals);
//   P3  no casts between incompatible pointer types on shm pointers and
//       no casts of shm pointers to integers (shminit functions exempt);
//   A1  constant indices into shm arrays lie in bounds;
//   A2  loop-variant indices must be provably affine and in bounds —
//       checked by generating integer linear constraints from induction
//       variables and asking the Omega-lite solver whether a violating
//       assignment is feasible.
#pragma once

#include <string>
#include <vector>

#include "analysis/shm_propagation.h"
#include "analysis/shm_regions.h"
#include "ir/ir.h"
#include "support/diagnostics.h"
#include "support/limits.h"

namespace safeflow::analysis {

class RangeAnalysis;

struct RestrictionViolation {
  std::string rule;  // "P1", "P2", "P3", "A1", "A2"
  support::SourceLocation location;
  std::string message;
  const ir::Function* function = nullptr;
};

struct RestrictionOptions {
  /// Function names treated as deallocating shared memory.
  std::vector<std::string> dealloc_functions{"shmdt", "shmctl", "free",
                                             "munmap"};
};

class RestrictionChecker {
 public:
  /// `ranges` (optional) strengthens the A2 check: proven value ranges
  /// seed the LinearSystem, so indices guarded by non-affine conditions
  /// (`if (i < n)` with n's range known) discharge instead of warning.
  RestrictionChecker(const ir::Module& module, const ShmRegionTable& regions,
                     const ShmPointerAnalysis& shm,
                     RestrictionOptions options = {},
                     support::AnalysisBudget* budget = nullptr,
                     const RangeAnalysis* ranges = nullptr);

  /// Runs all checks; violations are returned and also reported as
  /// "restriction.<rule>" diagnostics.
  std::vector<RestrictionViolation> run(support::DiagnosticEngine& diags);

 private:
  void checkFunction(const ir::Function& fn,
                     std::vector<RestrictionViolation>& out);
  void checkIndexAddr(const ir::Function& fn, const ir::Instruction& gep,
                      std::vector<RestrictionViolation>& out);

  /// Affine decomposition of an index value: constant + sum(coeff * sym).
  struct AffineIndex {
    bool valid = false;
    std::int64_t constant = 0;
    std::vector<std::pair<const ir::Value*, std::int64_t>> terms;
  };
  AffineIndex decompose(const ir::Value* v, int depth = 0) const;

  /// Bounds for an induction-variable phi: i in [lo, hi] derived from its
  /// init value, step, and the loop-header comparison.
  struct SymbolBounds {
    bool valid = false;
    std::int64_t lo = 0;
    std::int64_t hi = 0;
  };
  /// `use_block` is where the index is consumed (branch refinements that
  /// dominate it apply); `used_ranges` is set when the bounds came from
  /// the value-range analysis rather than the syntactic induction pattern.
  SymbolBounds boundsFor(const ir::Value* sym, const ir::Function& fn,
                         const ir::BasicBlock* use_block,
                         bool* used_ranges) const;

  const ir::Module& module_;
  const ShmRegionTable& regions_;
  const ShmPointerAnalysis& shm_;
  RestrictionOptions options_;
  support::AnalysisBudget* budget_ = nullptr;
  const RangeAnalysis* ranges_ = nullptr;
};

}  // namespace safeflow::analysis
