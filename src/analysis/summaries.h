// Function-level summary infrastructure for incremental interprocedural
// analysis. Three pieces live here:
//
//   1. Content addressing: hashFunction() walks a function's canonical
//      SSA form (opcodes, operands by position, type layouts, annotation
//      flags — never source locations or comments) into an FNV hasher,
//      and computeFunctionKeys() combines those body hashes Merkle-style
//      over the call graph's SCCs, so a function's key pins its own body
//      plus the keys of everything it (transitively) calls. Editing one
//      function invalidates exactly its dependency cone up the call
//      graph; a comment-only edit invalidates nothing.
//
//   2. Positional naming: memo blobs must not contain raw pointers, so
//      ValueIndex numbers a function's values (arguments first, then
//      instructions in block order) and ModuleIndex resolves
//      (function-name, position) pairs back to live IR values on a later
//      run. stableObjectName() does the same for alias objects, whose
//      ObjId allocation order is not reproducible across runs.
//
//   3. The memo seam: each interprocedural fixpoint treats its
//      per-function local solve as a deterministic state transformer.
//      Before running it, the phase digests the transformer's full input
//      (the read set and the pre-state of the write set) and asks its
//      SummaryBank for a recorded result under (function key, digest); a
//      hit replays the captured post-state byte-for-byte instead of
//      re-solving. This is exact memoization — the fixpoint driver loop
//      still runs, so convergence and final state are identical to a
//      cold run by construction.
//
// The persistent store behind SummaryBank lives in
// src/safeflow/summary_store.h; this header is IR-level only.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ir/callgraph.h"
#include "ir/ir.h"
#include "support/cache.h"

namespace safeflow::analysis {

class AliasAnalysis;
using ObjId = int;

/// Dense positional numbering of one function's local values: arguments
/// in declaration order, then instructions in block order. Positions are
/// stable across runs as long as the function body is unchanged — which
/// is exactly the regime in which memo blobs are replayed, because the
/// blob is keyed by the body hash.
class ValueIndex {
 public:
  ValueIndex() = default;
  explicit ValueIndex(const ir::Function& fn);

  /// Position of a function-local value (argument or instruction), or -1.
  [[nodiscard]] int idOf(const ir::Value* v) const;
  [[nodiscard]] const std::vector<const ir::Value*>& values() const {
    return values_;
  }

 private:
  std::map<const ir::Value*, int> ids_;
  std::vector<const ir::Value*> values_;
};

/// ValueIndex for every defined function in a module, plus reverse maps
/// so cross-function references (e.g. taint sources pointing at another
/// function's load) round-trip through (owner name, position) pairs.
class ModuleIndex {
 public:
  explicit ModuleIndex(const ir::Module& module);

  [[nodiscard]] const ValueIndex& of(const ir::Function& fn) const;
  /// Owner function and position of a local value; {nullptr, -1} for
  /// constants, globals, and other non-local values.
  [[nodiscard]] std::pair<const ir::Function*, int> locate(
      const ir::Value* v) const;
  /// Live value at (function name, position), or nullptr.
  [[nodiscard]] const ir::Value* resolve(const std::string& fn_name,
                                         int id) const;
  [[nodiscard]] const ir::Function* function(const std::string& name) const;

 private:
  std::map<const ir::Function*, ValueIndex> indexes_;
  std::map<std::string, const ir::Function*> by_name_;
  std::map<const ir::Value*, std::pair<const ir::Function*, int>> owners_;
  ValueIndex empty_;
};

/// Digest-building helpers shared by the phases: every token is followed
/// by a unit separator so adjacent fields can never alias ("ab"+"c" vs
/// "a"+"bc").
inline void hashToken(support::Fnv1a& h, std::string_view s) {
  h.update(s);
  h.update("\x1f");
}
/// Numbers hash as fixed-width little-endian bytes: self-delimiting
/// without a separator and, unlike std::to_string, allocation-free —
/// these run once per value per fixpoint visit, so they are the hot
/// path of every warm digest probe.
inline void hashInt(support::Fnv1a& h, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((u >> (8 * i)) & 0xff);
  }
  h.update(std::string_view(bytes, sizeof bytes));
}
inline void hashUint(support::Fnv1a& h, std::uint64_t v) {
  hashInt(h, static_cast<std::int64_t>(v));
}

/// Streams a type's layout semantics (kind, size, signedness, struct
/// field offsets/sizes, pointee shape) into the hasher. Recursion is
/// depth-limited so self-referential structs terminate; beyond the limit
/// only kind+size are hashed, which still changes whenever a layout edit
/// changes anything an analysis can observe at that depth.
void hashType(const ir::Type* type, support::Fnv1a& h, int depth = 0);

/// Streams the function's canonical SSA bytes into the hasher: name,
/// annotation flags, argument types, then every instruction's opcode,
/// payloads, result type, and operands (locals by position, constants by
/// value, globals/functions by name). Source locations are deliberately
/// excluded, so comment/whitespace edits hash identically.
void hashFunction(const ir::Function& fn, support::Fnv1a& h);

/// Merkle key per defined function: 16-hex FNV over the configuration
/// fingerprint, the SCC members' body hashes, and the keys of all
/// external callees. Members of one SCC share a component hash (they are
/// solved together) but get distinct final keys.
using FunctionKeyMap = std::map<const ir::Function*, std::string>;
[[nodiscard]] FunctionKeyMap computeFunctionKeys(
    const ir::Module& module, const ir::CallGraph& callgraph,
    std::string_view config_fingerprint);

/// Where a phase looks up / records per-function memo blobs. The store
/// behind it decides persistence, eviction, and corruption handling.
class SummaryBank {
 public:
  virtual ~SummaryBank() = default;
  /// Recorded blob for (fn, input digest), or nullptr on miss. The
  /// returned pointer is valid until the next record() for this fn.
  virtual const std::string* find(const ir::Function& fn,
                                  std::uint64_t digest) = 0;
  virtual void record(const ir::Function& fn, std::uint64_t digest,
                      std::string blob) = 0;
};

/// Handed to each interprocedural phase; default-constructed (null bank)
/// means memoization is off and the phase behaves exactly as before.
struct PhaseMemoHooks {
  SummaryBank* bank = nullptr;
  const ModuleIndex* index = nullptr;
  [[nodiscard]] bool enabled() const {
    return bank != nullptr && index != nullptr;
  }
};

/// Length-prefixed text codec for memo blobs. Text (not raw structs) so
/// torn or version-skewed entries fail parsing loudly instead of
/// misreading, and blobs stay diffable when debugging.
class BlobWriter {
 public:
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void str(std::string_view s);
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class BlobReader {
 public:
  explicit BlobReader(std::string_view data) : data_(data) {}

  std::uint64_t u64();
  std::int64_t i64();
  std::string str();
  /// False once any read ran off the end or hit malformed framing; reads
  /// after a failure return zero/empty.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view token();

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Cross-run stable name for an alias object: regions by id, globals by
/// name, allocas by owner function + position, fields by parent + index.
[[nodiscard]] std::string stableObjectName(const AliasAnalysis& alias,
                                           const ModuleIndex& index,
                                           ObjId obj);

}  // namespace safeflow::analysis
