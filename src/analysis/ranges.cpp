#include "analysis/ranges.h"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "analysis/alias.h"
#include "analysis/report.h"
#include "analysis/shm_propagation.h"
#include "analysis/shm_regions.h"
#include "support/diagnostics.h"
#include "support/metrics.h"

namespace safeflow::analysis {

namespace {

constexpr std::int64_t kMin = Interval::kMin;
constexpr std::int64_t kMax = Interval::kMax;

// --- saturating bound arithmetic -------------------------------------------
// Lower bounds saturate toward kMin (-inf), upper bounds toward kMax
// (+inf): an overflowing bound degrades to "unbounded", never wraps.

std::int64_t addLo(std::int64_t a, std::int64_t b) {
  if (a == kMin || b == kMin) return kMin;
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) return kMin;
  return r;
}

std::int64_t addHi(std::int64_t a, std::int64_t b) {
  if (a == kMax || b == kMax) return kMax;
  std::int64_t r;
  if (__builtin_add_overflow(a, b, &r)) return kMax;
  return r;
}

/// Lower bound of (x - y): a is a lower bound of x, b an upper bound of y.
std::int64_t subLo(std::int64_t a, std::int64_t b) {
  if (a == kMin || b == kMax) return kMin;
  std::int64_t r;
  if (__builtin_sub_overflow(a, b, &r)) return kMin;
  return r;
}

/// Upper bound of (x - y): a is an upper bound of x, b a lower bound of y.
std::int64_t subHi(std::int64_t a, std::int64_t b) {
  if (a == kMax || b == kMin) return kMax;
  std::int64_t r;
  if (__builtin_sub_overflow(a, b, &r)) return kMax;
  return r;
}

Interval negInterval(const Interval& x) {
  return Interval{subLo(0, x.hi), subHi(0, x.lo)};
}

Interval mulInterval(const Interval& x, const Interval& y) {
  if (x == Interval::constant(0) || y == Interval::constant(0)) {
    return Interval::constant(0);
  }
  if (!x.boundedBelow() || !x.boundedAbove() || !y.boundedBelow() ||
      !y.boundedAbove()) {
    return Interval::top();
  }
  std::int64_t lo = kMax;
  std::int64_t hi = kMin;
  for (std::int64_t a : {x.lo, x.hi}) {
    for (std::int64_t b : {y.lo, y.hi}) {
      std::int64_t p;
      if (__builtin_mul_overflow(a, b, &p)) return Interval::top();
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
  }
  return Interval{lo, hi};
}

/// C truncating division; sound only for provably positive divisors.
Interval divInterval(const Interval& x, const Interval& d) {
  if (d.lo < 1) return Interval::top();  // divisor may be zero or negative
  std::int64_t lo = kMax;
  std::int64_t hi = kMin;
  const auto consider = [&](std::int64_t q) {
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  };
  // For x/d with d > 0, the quotient is monotone in x and anti-monotone
  // in |.| toward 0 in d, so the extremes live at the corner points; an
  // unbounded d drives the quotient toward 0.
  if (!d.boundedAbove()) consider(0);
  bool any = false;
  for (std::int64_t a : {x.lo, x.hi}) {
    if (a == kMin || a == kMax) continue;
    any = true;
    consider(a / d.lo);
    if (d.boundedAbove()) consider(a / d.hi);
  }
  if (!any && lo > hi) return Interval::top();
  return Interval{x.boundedBelow() ? lo : kMin, x.boundedAbove() ? hi : kMax};
}

/// C remainder; sound only for provably positive, bounded divisors:
/// |x % d| < d <= d.hi, with the sign of x.
Interval remInterval(const Interval& x, const Interval& d) {
  if (d.lo < 1 || !d.boundedAbove()) return Interval::top();
  const std::int64_t m = d.hi - 1;
  if (x.lo >= 0) return Interval{0, m};
  if (x.hi <= 0) return Interval{-m, 0};
  return Interval{-m, m};
}

/// Smallest (2^k - 1) >= v, for the bit-or/xor upper bound.
std::int64_t pow2Mask(std::int64_t v) {
  std::int64_t m = 1;
  while (m - 1 < v && m < (std::int64_t{1} << 62)) m <<= 1;
  return m - 1;
}

Interval andInterval(const Interval& x, const Interval& y) {
  // For a & b with a >= 0 (two's complement): 0 <= a & b <= a.
  if (x.lo >= 0 && y.lo >= 0) return Interval{0, std::min(x.hi, y.hi)};
  if (x.lo >= 0) return Interval{0, x.hi};
  if (y.lo >= 0) return Interval{0, y.hi};
  return Interval::top();
}

Interval orXorInterval(const Interval& x, const Interval& y, bool is_or) {
  if (x.lo < 0 || y.lo < 0) return Interval::top();
  if (!x.boundedAbove() || !y.boundedAbove()) {
    return Interval{is_or ? std::max(x.lo, y.lo) : 0, kMax};
  }
  const std::int64_t hi = pow2Mask(std::max(x.hi, y.hi));
  return Interval{is_or ? std::max(x.lo, y.lo) : 0, hi};
}

Interval shiftInterval(const Interval& x, const Interval& s, bool left) {
  if (!s.isSingleton() || s.lo < 0 || s.lo > 62) return Interval::top();
  if (left) {
    return mulInterval(x, Interval::constant(std::int64_t{1} << s.lo));
  }
  if (x.lo < 0) return Interval::top();  // signed right shift of negatives
  return Interval{x.boundedBelow() ? (x.lo >> s.lo) : kMin,
                  x.boundedAbove() ? (x.hi >> s.lo) : kMax};
}

/// The representable range of an integer type ([lo, +inf) for u64, whose
/// upper bound does not fit int64); ⊤ for everything else.
Interval typeInterval(const ir::Type* t) {
  if (t == nullptr || !t->isInteger()) return Interval::top();
  const auto* it = static_cast<const cfront::IntegerType*>(t);
  const std::uint64_t bits = it->size() * 8;
  if (bits == 0 || bits >= 64) {
    return it->isSigned() ? Interval::top() : Interval{0, kMax};
  }
  if (it->isSigned()) {
    const std::int64_t half = std::int64_t{1} << (bits - 1);
    return Interval{-half, half - 1};
  }
  return Interval{0, (std::int64_t{1} << bits) - 1};
}

/// Wrap semantics: a result that fits its type keeps its bounds; one that
/// can overflow the type wraps, so the whole type range is the only sound
/// answer.
Interval normalizeToType(const Interval& r, const ir::Type* t) {
  const Interval ti = typeInterval(t);
  if (r.lo >= ti.lo && r.hi <= ti.hi) return r;
  return ti;
}

std::optional<bool> cmpDecided(ir::CmpOp op, const Interval& a,
                               const Interval& b) {
  switch (op) {
    case ir::CmpOp::kLt:
      if (a.boundedAbove() && a.hi < b.lo) return true;
      if (b.boundedAbove() && a.lo >= b.hi) return false;
      break;
    case ir::CmpOp::kLe:
      if (a.boundedAbove() && a.hi <= b.lo) return true;
      if (b.boundedAbove() && a.lo > b.hi) return false;
      break;
    case ir::CmpOp::kGt:
      if (b.boundedAbove() && a.lo > b.hi) return true;
      if (a.boundedAbove() && a.hi <= b.lo) return false;
      break;
    case ir::CmpOp::kGe:
      if (b.boundedAbove() && a.lo >= b.hi) return true;
      if (a.boundedAbove() && a.hi < b.lo) return false;
      break;
    case ir::CmpOp::kEq:
      if (a.isSingleton() && b.isSingleton() && a.lo == b.lo) return true;
      if (!a.meet(b).has_value()) return false;
      break;
    case ir::CmpOp::kNe:
      if (a.isSingleton() && b.isSingleton() && a.lo == b.lo) return false;
      if (!a.meet(b).has_value()) return true;
      break;
  }
  return std::nullopt;
}

ir::CmpOp invertCmp(ir::CmpOp op) {
  switch (op) {
    case ir::CmpOp::kLt: return ir::CmpOp::kGe;
    case ir::CmpOp::kLe: return ir::CmpOp::kGt;
    case ir::CmpOp::kGt: return ir::CmpOp::kLe;
    case ir::CmpOp::kGe: return ir::CmpOp::kLt;
    case ir::CmpOp::kEq: return ir::CmpOp::kNe;
    case ir::CmpOp::kNe: return ir::CmpOp::kEq;
  }
  return op;
}

/// `a op b` rewritten as `b op' a`.
ir::CmpOp swapCmp(ir::CmpOp op) {
  switch (op) {
    case ir::CmpOp::kLt: return ir::CmpOp::kGt;
    case ir::CmpOp::kLe: return ir::CmpOp::kGe;
    case ir::CmpOp::kGt: return ir::CmpOp::kLt;
    case ir::CmpOp::kGe: return ir::CmpOp::kLe;
    default: return op;
  }
}

}  // namespace

// --- Interval ---------------------------------------------------------------

Interval Interval::join(const Interval& o) const {
  return Interval{std::min(lo, o.lo), std::max(hi, o.hi)};
}

std::optional<Interval> Interval::meet(const Interval& o) const {
  const Interval m{std::max(lo, o.lo), std::min(hi, o.hi)};
  if (m.lo > m.hi) return std::nullopt;
  return m;
}

std::string Interval::str() const {
  std::ostringstream out;
  out << "[";
  if (lo == kMin) out << "-inf"; else out << lo;
  out << ", ";
  if (hi == kMax) out << "+inf"; else out << hi;
  out << "]";
  return out.str();
}

// --- RangeAnalysis ----------------------------------------------------------

RangeAnalysis::RangeAnalysis(const ir::Module& module,
                             const ir::CallGraph& callgraph,
                             RangeOptions options,
                             support::AnalysisBudget* budget,
                             PhaseMemoHooks memo)
    : module_(module),
      callgraph_(callgraph),
      options_(options),
      budget_(budget),
      memo_(memo) {}

void RangeAnalysis::run() {
  if (ran_ || !options_.enabled) return;
  ran_ = true;
  const support::ScopedTimer timer("phase.ranges");
  support::budgetBeginPhase(budget_, "ranges");

  // Functions whose argument ranges must start at ⊤-of-type: entry points
  // (no caller, or main) and address-taken functions (lowering marks them
  // with @fnaddr.<name> globals), whose call sites we cannot enumerate.
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined() || fn->isIntrinsic()) continue;
    if (callgraph_.callers(fn.get()).empty() || fn->name() == "main") {
      top_arg_fns_.insert(fn.get());
    }
  }
  for (const auto& g : module_.globals()) {
    if (g->name().rfind("@fnaddr.", 0) != 0) continue;
    if (const ir::Function* f =
            module_.findFunction(g->name().substr(sizeof("@fnaddr.") - 1))) {
      top_arg_fns_.insert(f);
    }
  }
  for (const ir::Function* fn : top_arg_fns_) {
    for (const auto& arg : fn->args()) {
      if (!arg->type()->isInteger()) continue;
      joinInto(arg.get(), typeInterval(arg->type()), arg->type());
    }
  }

  unsigned round = 0;
  bool changed = true;
  while (changed && !degraded_) {
    if (++round > options_.max_module_rounds) {
      // The interprocedural fixpoint failed to settle (it practically
      // never does with widening on); degrade rather than ship a
      // possibly-unstable result.
      degraded_ = true;
      break;
    }
    changed = false;
    module_changed_ = false;
    for (const auto& fn : module_.functions()) {
      if (!fn->isDefined() || fn->isIntrinsic()) continue;
      changed |= memo_.enabled() ? memoizedAnalyze(*fn)
                                 : analyzeFunction(*fn);
      if (degraded_) break;
    }
    changed |= module_changed_;
  }

  if (degraded_) {
    degradeToTop();
  } else {
    computeDecidedBranches();
  }
  SAFEFLOW_GAUGE("ranges.values_tracked", range_.size());
  SAFEFLOW_COUNT_N("ranges.branches_decided", decided_.size());
  SAFEFLOW_COUNT_N("ranges.module_rounds", round);
}

bool RangeAnalysis::analyzeFunction(const ir::Function& fn) {
  SAFEFLOW_COUNT("ranges.function_analyses");
  if (!domtrees_.contains(&fn)) {
    domtrees_.emplace(&fn, ir::DominatorTree::compute(fn));
  }
  bool changed_any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : fn.blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (!support::budgetStep(budget_)) {
          degraded_ = true;
          return changed_any;
        }
        if (inst->opcode() == ir::Opcode::kRet) {
          if (inst->numOperands() == 1 &&
              inst->operand(0)->type()->isInteger()) {
            if (const auto rv = valueRange(inst->operand(0))) {
              // Refine the returned value by the conditions dominating the
              // ret block: `if (x < 4) return 4; return x;` yields
              // [4, +inf) for the second ret even when x itself is ⊤.
              const Interval at =
                  rangeAt(inst->operand(0), bb.get()).meet(*rv).value_or(*rv);
              changed |= joinReturn(&fn, at);
            }
          }
          continue;
        }
        if (!inst->type()->isInteger()) {
          // Calls still need their argument side effects even when the
          // result itself is untracked (void / float / pointer).
          if (inst->opcode() == ir::Opcode::kCall) (void)transfer(*inst);
          continue;
        }
        if (const auto result = transfer(*inst)) {
          changed |= joinInto(inst.get(), *result, inst->type());
        }
      }
    }
    changed_any |= changed;
  }
  // One narrowing sweep: the post-fixpoint is refined in place with a
  // plain (non-joining) transfer round, recovering bounds that widening
  // blew to the type range when the loop guard still caps them. Meeting
  // two sound over-approximations stays sound, and a single bounded sweep
  // cannot oscillate.
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (!support::budgetStep(budget_)) {
        degraded_ = true;
        return changed_any;
      }
      if (inst->opcode() == ir::Opcode::kRet || !inst->type()->isInteger()) {
        continue;
      }
      const auto it = range_.find(inst.get());
      if (it == range_.end()) continue;
      if (const auto result = transfer(*inst)) {
        if (const auto narrowed = it->second.meet(*result)) {
          if (*narrowed != it->second) {
            it->second = *narrowed;
            changed_any = true;
            SAFEFLOW_COUNT("ranges.narrowings");
          }
        }
      }
    }
  }
  return changed_any;
}

namespace {

void hashInterval(support::Fnv1a& h, const Interval& r) {
  hashInt(h, r.lo);
  hashInt(h, r.hi);
}

void writeInterval(BlobWriter& w, const Interval& r) {
  w.i64(r.lo);
  w.i64(r.hi);
}

Interval readInterval(BlobReader& r) {
  Interval out;
  out.lo = r.i64();
  out.hi = r.i64();
  return out;
}

std::string intervalStr(const Interval& r) {
  return std::to_string(r.lo) + "|" + std::to_string(r.hi);
}

/// Call targets the per-function transfer actually interacts with.
bool rangeRelevantTarget(const ir::Function* f) {
  return f->isDefined() && !f->isIntrinsic();
}

}  // namespace

// The local solve reads and writes: its own value ranges and update
// counts, its return range (and count), and — at call sites — the
// callee's integer formal ranges/counts (written unless the callee takes
// ⊤ arguments) plus the callee's return range (read). Digesting exactly
// that set makes replay exact memoization of the transformer.
void RangeAnalysis::digestInput(const ir::Function& fn,
                                support::Fnv1a& h) const {
  const ValueIndex& vi = memo_.index->of(fn);
  hashToken(h, "ranges-in");
  hashToken(h, fn.name());
  const auto& values = vi.values();
  for (std::size_t id = 0; id < values.size(); ++id) {
    const auto it = range_.find(values[id]);
    if (it == range_.end()) continue;
    hashUint(h, id);
    hashInterval(h, it->second);
    const auto cit = update_counts_.find(values[id]);
    hashUint(h, cit == update_counts_.end() ? 0 : cit->second);
  }
  hashToken(h, "ret");
  const auto rit = return_range_.find(&fn);
  hashUint(h, rit == return_range_.end() ? 0 : 1);
  if (rit != return_range_.end()) hashInterval(h, rit->second);
  {
    const auto cit = update_counts_.find(&fn);
    hashUint(h, cit == update_counts_.end() ? 0 : cit->second);
  }
  hashToken(h, "calls");
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kCall) continue;
      for (const ir::Function* f : callgraph_.targets(*inst)) {
        if (!rangeRelevantTarget(f)) continue;
        hashToken(h, f->name());
        const bool top_args = top_arg_fns_.contains(f);
        hashUint(h, top_args ? 1 : 0);
        if (!top_args) {
          for (std::size_t p = 0; p < f->args().size(); ++p) {
            const ir::Argument* formal = f->args()[p].get();
            if (!formal->type()->isInteger()) continue;
            const auto it = range_.find(formal);
            if (it == range_.end()) continue;
            hashUint(h, p);
            hashInterval(h, it->second);
            const auto cit = update_counts_.find(formal);
            hashUint(h, cit == update_counts_.end() ? 0 : cit->second);
          }
        }
        const auto frit = return_range_.find(f);
        hashUint(h, frit == return_range_.end() ? 0 : 1);
        if (frit != return_range_.end()) hashInterval(h, frit->second);
      }
    }
  }
}

std::string RangeAnalysis::captureRecord(const ir::Function& fn,
                                         bool identity,
                                         bool changed_any,
                                         bool module_delta) const {
  const ValueIndex& vi = memo_.index->of(fn);
  BlobWriter w;
  // Identity = post-digest == pre-digest: the solve changed nothing in
  // the digested read/write set, so a hit may skip the state parse. The
  // driver signals are stored separately because the replay must still
  // return/propagate them verbatim.
  w.u64(identity ? 1 : 0);
  w.u64(changed_any ? 1 : 0);
  w.u64(module_delta ? 1 : 0);

  const auto& values = vi.values();
  std::vector<std::size_t> own;
  for (std::size_t id = 0; id < values.size(); ++id) {
    if (range_.count(values[id]) != 0) own.push_back(id);
  }
  w.u64(own.size());
  for (const std::size_t id : own) {
    w.u64(id);
    writeInterval(w, range_.at(values[id]));
    const auto cit = update_counts_.find(values[id]);
    w.u64(cit == update_counts_.end() ? 0 : cit->second);
  }

  const auto rit = return_range_.find(&fn);
  w.u64(rit == return_range_.end() ? 0 : 1);
  if (rit != return_range_.end()) writeInterval(w, rit->second);
  {
    const auto cit = update_counts_.find(&fn);
    w.u64(cit == update_counts_.end() ? 0 : cit->second);
  }

  std::set<std::pair<std::string, std::size_t>> seen;
  std::vector<std::tuple<std::string, std::size_t, const ir::Value*>> slots;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kCall) continue;
      for (const ir::Function* f : callgraph_.targets(*inst)) {
        if (!rangeRelevantTarget(f) || top_arg_fns_.contains(f)) continue;
        for (std::size_t p = 0; p < f->args().size(); ++p) {
          const ir::Argument* formal = f->args()[p].get();
          if (!formal->type()->isInteger() ||
              range_.count(formal) == 0) {
            continue;
          }
          if (!seen.insert({f->name(), p}).second) continue;
          slots.emplace_back(f->name(), p, formal);
        }
      }
    }
  }
  w.u64(slots.size());
  for (const auto& [name, p, formal] : slots) {
    w.str(name);
    w.u64(p);
    writeInterval(w, range_.at(formal));
    const auto cit = update_counts_.find(formal);
    w.u64(cit == update_counts_.end() ? 0 : cit->second);
  }
  return w.take();
}

bool RangeAnalysis::applyRecord(const ir::Function& fn,
                                const std::string& blob,
                                bool* changed_any) {
  const ValueIndex& vi = memo_.index->of(fn);
  const auto& values = vi.values();
  BlobReader r(blob);

  r.u64();  // identity flag, already consumed by the caller's peek
  const bool rc = r.u64() != 0;
  const bool module_delta = r.u64() != 0;
  std::vector<std::pair<const ir::Value*, std::pair<Interval, unsigned>>>
      staged;
  const std::uint64_t own = r.u64();
  for (std::uint64_t i = 0; i < own && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    const Interval range = readInterval(r);
    const unsigned count = static_cast<unsigned>(r.u64());
    if (!r.ok() || id >= values.size()) return false;
    staged.push_back({values[id], {range, count}});
  }
  bool have_ret = false;
  Interval ret_range;
  if (r.u64() != 0) {
    have_ret = true;
    ret_range = readInterval(r);
  }
  const unsigned ret_count = static_cast<unsigned>(r.u64());
  const std::uint64_t nslots = r.u64();
  std::vector<std::pair<const ir::Argument*, std::pair<Interval, unsigned>>>
      staged_formals;
  for (std::uint64_t i = 0; i < nslots && r.ok(); ++i) {
    const std::string name = r.str();
    const std::uint64_t p = r.u64();
    const Interval range = readInterval(r);
    const unsigned count = static_cast<unsigned>(r.u64());
    const ir::Function* target = memo_.index->function(name);
    if (!r.ok() || target == nullptr || p >= target->args().size()) {
      return false;
    }
    staged_formals.push_back({target->args()[p].get(), {range, count}});
  }
  if (!r.ok() || !r.atEnd()) return false;

  for (const auto& [v, rec] : staged) {
    range_[v] = rec.first;
    update_counts_[v] = rec.second;
  }
  if (have_ret) return_range_[&fn] = ret_range;
  if (ret_count != 0 || update_counts_.count(&fn) != 0) {
    update_counts_[&fn] = ret_count;
  }
  for (const auto& [formal, rec] : staged_formals) {
    range_[formal] = rec.first;
    update_counts_[formal] = rec.second;
  }
  // Later consumers (rangeAt from the restriction and bounds checks) need
  // the dominator tree even when every local solve was replayed.
  if (!domtrees_.contains(&fn)) {
    domtrees_.emplace(&fn, ir::DominatorTree::compute(fn));
  }
  module_changed_ |= module_delta;
  *changed_any = rc;
  return true;
}

bool RangeAnalysis::memoizedAnalyze(const ir::Function& fn) {
  support::Fnv1a h;
  digestInput(fn, h);
  const std::uint64_t digest = h.digest();
  if (const std::string* blob = memo_.bank->find(fn, digest)) {
    // Identity records changed nothing: skip the blob parse, replay only
    // the recorded driver signals. The dominator tree side effect of a
    // real apply is still needed by later range consumers.
    BlobReader peek(*blob);
    const bool identity = peek.u64() != 0;
    const bool peek_changed = peek.u64() != 0;
    const bool peek_delta = peek.u64() != 0;
    if (peek.ok() && identity) {
      if (!domtrees_.contains(&fn)) {
        domtrees_.emplace(&fn, ir::DominatorTree::compute(fn));
      }
      module_changed_ |= peek_delta;
      return peek_changed;
    }
    bool changed = false;
    if (applyRecord(fn, *blob, &changed)) return changed;
  }
  // Isolate this call's contribution to module_changed_ so the record
  // replays exactly the flag delta the live solve produced.
  const bool saved = module_changed_;
  module_changed_ = false;
  const bool changed = analyzeFunction(fn);
  const bool delta = module_changed_;
  module_changed_ = saved || delta;
  if (!degraded_) {
    // Post-digest == pre-digest detects identity transforms exactly: the
    // digest covers the full read set and the pre-state of the write set.
    support::Fnv1a post;
    digestInput(fn, post);
    memo_.bank->record(
        fn, digest,
        captureRecord(fn, post.digest() == digest, changed, delta));
  }
  return changed;
}

std::uint64_t RangeAnalysis::digestState(const ModuleIndex& index) const {
  std::map<std::string, std::string> items;
  const auto stable = [&index](const ir::Value* v) {
    const auto [owner, id] = index.locate(v);
    return (owner != nullptr ? owner->name() : std::string("?")) + "#" +
           std::to_string(id);
  };
  for (const auto& [v, range] : range_) {
    items["v:" + stable(v)] = intervalStr(range);
  }
  for (const auto& [fn, range] : return_range_) {
    items["r:" + fn->name()] = intervalStr(range);
  }
  for (const auto& [condbr, succ] : decided_) {
    items["d:" + stable(condbr)] = std::to_string(succ);
  }
  support::Fnv1a h;
  hashUint(h, degraded_ ? 1 : 0);
  for (const auto& [k, v] : items) {
    hashToken(h, k);
    hashToken(h, v);
  }
  return h.digest();
}

std::optional<Interval> RangeAnalysis::transfer(const ir::Instruction& inst) {
  const ir::Type* ty = inst.type();
  switch (inst.opcode()) {
    case ir::Opcode::kLoad:
      return typeInterval(ty);
    case ir::Opcode::kBinOp: {
      const auto a = contextRange(inst.operand(0), inst.parent());
      const auto b = contextRange(inst.operand(1), inst.parent());
      if (!a || !b) return std::nullopt;
      Interval r = Interval::top();
      switch (inst.bin_op) {
        case ir::BinOp::kAdd:
          r = Interval{addLo(a->lo, b->lo), addHi(a->hi, b->hi)};
          break;
        case ir::BinOp::kSub:
          r = Interval{subLo(a->lo, b->hi), subHi(a->hi, b->lo)};
          break;
        case ir::BinOp::kMul: r = mulInterval(*a, *b); break;
        case ir::BinOp::kDiv: r = divInterval(*a, *b); break;
        case ir::BinOp::kRem: r = remInterval(*a, *b); break;
        case ir::BinOp::kAnd: r = andInterval(*a, *b); break;
        case ir::BinOp::kOr: r = orXorInterval(*a, *b, /*is_or=*/true); break;
        case ir::BinOp::kXor:
          r = orXorInterval(*a, *b, /*is_or=*/false);
          break;
        case ir::BinOp::kShl: r = shiftInterval(*a, *b, /*left=*/true); break;
        case ir::BinOp::kShr: r = shiftInterval(*a, *b, /*left=*/false); break;
      }
      return normalizeToType(r, ty);
    }
    case ir::Opcode::kUnOp: {
      const auto a = contextRange(inst.operand(0), inst.parent());
      if (!a) return std::nullopt;
      switch (inst.un_op) {
        case ir::UnOp::kNeg:
          return normalizeToType(negInterval(*a), ty);
        case ir::UnOp::kNot: {
          if (a->lo > 0 || a->hi < 0) return Interval::constant(0);
          if (*a == Interval::constant(0)) return Interval::constant(1);
          return Interval{0, 1};
        }
        case ir::UnOp::kBitNot:  // ~x == -x - 1
          return normalizeToType(
              Interval{subLo(negInterval(*a).lo, 1),
                       subHi(negInterval(*a).hi, 1)},
              ty);
      }
      return typeInterval(ty);
    }
    case ir::Opcode::kCmp: {
      const auto a = contextRange(inst.operand(0), inst.parent());
      const auto b = contextRange(inst.operand(1), inst.parent());
      if (!a || !b) return std::nullopt;
      if (inst.operand(0)->type()->isInteger() &&
          inst.operand(1)->type()->isInteger()) {
        if (const auto d = cmpDecided(inst.cmp_op, *a, *b)) {
          return Interval::constant(*d ? 1 : 0);
        }
      }
      return Interval{0, 1};
    }
    case ir::Opcode::kCast: {
      if (!inst.operand(0)->type()->isInteger()) return typeInterval(ty);
      const auto a = contextRange(inst.operand(0), inst.parent());
      if (!a) return std::nullopt;
      return normalizeToType(*a, ty);
    }
    case ir::Opcode::kPhi: {
      std::optional<Interval> acc;
      for (std::size_t i = 0; i < inst.numOperands(); ++i) {
        auto in = valueRange(inst.operand(i));
        if (!in) continue;  // unvisited back edge: bottom
        if (i < inst.block_refs.size()) {
          const auto refined = refineOnEdge(*in, inst.operand(i),
                                            inst.block_refs[i], inst.parent());
          if (!refined) continue;  // edge provably infeasible
          in = refined;
        }
        acc = acc ? acc->join(*in) : *in;
      }
      return acc;
    }
    case ir::Opcode::kCall: {
      const auto targets = callgraph_.targets(inst);
      const std::size_t first_arg = inst.direct_callee != nullptr ? 0 : 1;
      bool all_known = !targets.empty();
      std::optional<Interval> acc;
      for (const ir::Function* f : targets) {
        if (!f->isDefined() || f->isIntrinsic()) {
          all_known = false;
          continue;
        }
        // Join actual argument ranges into the callee's formals; a grown
        // formal forces another interprocedural round.
        if (!top_arg_fns_.contains(f)) {
          for (std::size_t j = 0; j < f->args().size(); ++j) {
            const ir::Argument* formal = f->args()[j].get();
            if (!formal->type()->isInteger()) continue;
            if (first_arg + j >= inst.numOperands()) break;
            const auto av =
                contextRange(inst.operand(first_arg + j), inst.parent());
            const Interval actual =
                av ? normalizeToType(*av, formal->type())
                   : typeInterval(formal->type());
            module_changed_ |= joinInto(formal, actual, formal->type());
          }
        }
        const auto it = return_range_.find(f);
        if (it == return_range_.end()) continue;  // not yet summarized
        acc = acc ? acc->join(it->second) : it->second;
      }
      if (ty == nullptr || !ty->isInteger()) return std::nullopt;
      if (!all_known) return typeInterval(ty);
      if (!acc) return std::nullopt;
      return normalizeToType(*acc, ty);
    }
    default:
      return std::nullopt;
  }
}

bool RangeAnalysis::joinInto(const ir::Value* key, Interval value,
                             const ir::Type* type) {
  const auto it = range_.find(key);
  if (it == range_.end()) {
    range_.emplace(key, value);
    return true;
  }
  Interval merged = it->second.join(value);
  if (merged == it->second) return false;
  if (++update_counts_[key] > options_.widen_after) {
    const Interval ti = typeInterval(type);
    if (merged.lo < it->second.lo) merged.lo = ti.lo;
    if (merged.hi > it->second.hi) merged.hi = ti.hi;
    SAFEFLOW_COUNT("ranges.widenings");
  }
  it->second = merged;
  return true;
}

bool RangeAnalysis::joinReturn(const ir::Function* fn, Interval value) {
  const auto it = return_range_.find(fn);
  if (it == return_range_.end()) {
    return_range_.emplace(fn, value);
    return true;
  }
  Interval merged = it->second.join(value);
  if (merged == it->second) return false;
  if (++update_counts_[fn] > options_.widen_after) {
    const Interval ti =
        typeInterval(fn->functionType() != nullptr
                         ? fn->functionType()->returnType()
                         : nullptr);
    if (merged.lo < it->second.lo) merged.lo = ti.lo;
    if (merged.hi > it->second.hi) merged.hi = ti.hi;
    SAFEFLOW_COUNT("ranges.widenings");
  }
  it->second = merged;
  return true;
}

std::optional<Interval> RangeAnalysis::valueRange(const ir::Value* v) const {
  switch (v->kind()) {
    case ir::Value::Kind::kConstantInt:
      return Interval::constant(static_cast<const ir::ConstantInt*>(v)->value());
    case ir::Value::Kind::kInstruction:
    case ir::Value::Kind::kArgument: {
      if (!v->type()->isInteger()) return Interval::top();
      const auto it = range_.find(v);
      if (it == range_.end()) return std::nullopt;  // bottom
      return it->second;
    }
    default:
      return typeInterval(v->type());
  }
}

std::optional<Interval> RangeAnalysis::refineOnEdge(
    Interval r, const ir::Value* v, const ir::BasicBlock* pred,
    const ir::BasicBlock* succ) const {
  const ir::Instruction* term = pred->terminator();
  if (term == nullptr || term->opcode() != ir::Opcode::kCondBr ||
      term->block_refs.size() != 2 ||
      term->block_refs[0] == term->block_refs[1]) {
    return r;
  }
  const bool on_true = term->block_refs[0] == succ;
  if (!on_true && term->block_refs[1] != succ) return r;
  const ir::Value* cond = term->operand(0);
  if (cond == v) {
    // if (v): the true edge excludes 0, the false edge pins it.
    return on_true ? refineByCmp(r, ir::CmpOp::kNe, Interval::constant(0), true)
                   : r.meet(Interval::constant(0));
  }
  if (!cond->isInstruction()) return r;
  const auto* cmp = static_cast<const ir::Instruction*>(cond);
  if (cmp->opcode() != ir::Opcode::kCmp) return r;
  if (!cmp->operand(0)->type()->isInteger() ||
      !cmp->operand(1)->type()->isInteger()) {
    return r;
  }
  const bool on_left = cmp->operand(0) == v;
  if (!on_left && cmp->operand(1) != v) return r;
  const ir::Value* other_v = cmp->operand(on_left ? 1 : 0);
  const auto ov = valueRange(other_v);
  const Interval other = ov ? *ov : typeInterval(other_v->type());
  ir::CmpOp op = cmp->cmp_op;
  if (!on_true) op = invertCmp(op);
  return refineByCmp(r, op, other, on_left);
}

std::optional<Interval> RangeAnalysis::refineByCmp(Interval r, ir::CmpOp op,
                                                   const Interval& other,
                                                   bool value_on_left) const {
  if (!value_on_left) op = swapCmp(op);
  switch (op) {
    case ir::CmpOp::kLt:
      if (other.boundedAbove()) {
        if (other.hi == kMin) return std::nullopt;  // v < INT64_MIN
        r.hi = std::min(r.hi, other.hi - 1);
      }
      break;
    case ir::CmpOp::kLe:
      if (other.boundedAbove()) r.hi = std::min(r.hi, other.hi);
      break;
    case ir::CmpOp::kGt:
      if (other.boundedBelow()) {
        if (other.lo == kMax) return std::nullopt;  // v > INT64_MAX
        r.lo = std::max(r.lo, other.lo + 1);
      }
      break;
    case ir::CmpOp::kGe:
      if (other.boundedBelow()) r.lo = std::max(r.lo, other.lo);
      break;
    case ir::CmpOp::kEq:
      return r.meet(other);
    case ir::CmpOp::kNe:
      if (other.isSingleton()) {
        if (r.isSingleton() && r.lo == other.lo) return std::nullopt;
        if (r.lo == other.lo) ++r.lo;
        else if (r.hi == other.lo) --r.hi;
      }
      break;
  }
  if (r.lo > r.hi) return std::nullopt;
  return r;
}

Interval RangeAnalysis::rangeOf(const ir::Value* v) const {
  if (v == nullptr || !options_.enabled || degraded_) return Interval::top();
  if (v->kind() == ir::Value::Kind::kConstantInt) {
    return Interval::constant(static_cast<const ir::ConstantInt*>(v)->value());
  }
  const ir::Type* t = v->type();
  if (t == nullptr || !t->isInteger()) return Interval::top();
  const auto it = range_.find(v);
  if (it != range_.end()) return it->second;
  return typeInterval(t);
}

Interval RangeAnalysis::rangeAt(const ir::Value* v,
                                const ir::BasicBlock* bb) const {
  Interval r = rangeOf(v);
  if (!options_.enabled || degraded_ || v == nullptr || bb == nullptr ||
      v->type() == nullptr || !v->type()->isInteger()) {
    return r;
  }
  return refinedAt(r, v, bb);
}

std::optional<Interval> RangeAnalysis::contextRange(
    const ir::Value* v, const ir::BasicBlock* bb) const {
  auto r = valueRange(v);
  if (!r || bb == nullptr || v->type() == nullptr ||
      !v->type()->isInteger()) {
    return r;
  }
  return refinedAt(*r, v, bb);
}

const std::vector<std::pair<const ir::BasicBlock*, const ir::BasicBlock*>>&
RangeAnalysis::refineChain(const ir::BasicBlock* bb,
                           const ir::DominatorTree& dt) const {
  const auto hit = refine_chain_.find(bb);
  if (hit != refine_chain_.end()) return hit->second;
  auto& chain = refine_chain_[bb];
  // Walk the idom chain once; the branch taken from idom(b) into b
  // constrains a value whenever every path into b uses that edge (all
  // other predecessors are b's own back edges). The CFG is immutable
  // during the run, so the chain is computed once per block and reused
  // for every value queried there.
  const ir::BasicBlock* b = bb;
  for (int guard = 0; guard < 4096; ++guard) {
    const ir::BasicBlock* d = dt.idom(b);
    if (d == nullptr) break;
    const ir::Instruction* term = d->terminator();
    bool edge_ok = term != nullptr && term->opcode() == ir::Opcode::kCondBr &&
                   term->block_refs.size() == 2 &&
                   term->block_refs[0] != term->block_refs[1];
    if (edge_ok) {
      edge_ok = false;
      for (const ir::BasicBlock* succ : d->successors()) {
        if (succ == b) edge_ok = true;
      }
    }
    if (edge_ok) {
      for (const ir::BasicBlock* pred : b->predecessors()) {
        if (pred != d && !dt.dominates(b, pred)) {
          edge_ok = false;
          break;
        }
      }
    }
    if (edge_ok) chain.emplace_back(d, b);
    b = d;
  }
  return chain;
}

Interval RangeAnalysis::refinedAt(Interval r, const ir::Value* v,
                                  const ir::BasicBlock* bb) const {
  const auto dt_it = domtrees_.find(bb->parent());
  if (dt_it == domtrees_.end()) return r;
  const ir::DominatorTree& dt = dt_it->second;
  const ir::BasicBlock* def =
      v->isInstruction() ? static_cast<const ir::Instruction*>(v)->parent()
                         : nullptr;
  for (const auto& [d, b] : refineChain(bb, dt)) {
    // Cheap pre-filter: the edge only constrains v when the branch
    // condition mentions it (directly, or as a cmp operand).
    const ir::Value* cond = d->terminator()->operand(0);
    if (cond != v) {
      if (!cond->isInstruction()) continue;
      const auto* cmp = static_cast<const ir::Instruction*>(cond);
      if (cmp->opcode() != ir::Opcode::kCmp ||
          (cmp->operand(0) != v && cmp->operand(1) != v)) {
        continue;
      }
    }
    if (def != nullptr && !dt.dominates(def, d)) continue;
    // A nullopt here means the block is statically unreachable for v's
    // range; keep the unrefined interval (any answer is sound there).
    if (const auto refined = refineOnEdge(r, v, d, b)) r = *refined;
  }
  return r;
}

void RangeAnalysis::computeDecidedBranches() {
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined() || fn->isIntrinsic()) continue;
    for (const auto& bb : fn->blocks()) {
      const ir::Instruction* term = bb->terminator();
      if (term == nullptr || term->opcode() != ir::Opcode::kCondBr ||
          term->block_refs.size() != 2 ||
          term->block_refs[0] == term->block_refs[1]) {
        continue;
      }
      const ir::Value* cond = term->operand(0);
      std::optional<bool> verdict;
      const auto* cmp =
          cond->isInstruction() &&
                  static_cast<const ir::Instruction*>(cond)->opcode() ==
                      ir::Opcode::kCmp
              ? static_cast<const ir::Instruction*>(cond)
              : nullptr;
      if (cmp != nullptr && cmp->operand(0)->type()->isInteger() &&
          cmp->operand(1)->type()->isInteger()) {
        verdict = cmpDecided(cmp->cmp_op, rangeAt(cmp->operand(0), bb.get()),
                             rangeAt(cmp->operand(1), bb.get()));
      } else if (cond->type() != nullptr && cond->type()->isInteger()) {
        const Interval c = rangeAt(cond, bb.get());
        if (!c.contains(0)) verdict = true;
        else if (c == Interval::constant(0)) verdict = false;
      }
      if (verdict.has_value()) {
        decided_.emplace(term, *verdict ? 0u : 1u);
      }
    }
  }
}

std::optional<unsigned> RangeAnalysis::decidedBranch(
    const ir::Instruction* condbr) const {
  if (!options_.enabled || degraded_) return std::nullopt;
  const auto it = decided_.find(condbr);
  if (it == decided_.end()) return std::nullopt;
  return it->second;
}

bool RangeAnalysis::edgeInfeasible(const ir::BasicBlock* pred,
                                   const ir::BasicBlock* succ) const {
  if (pred == nullptr) return false;
  const ir::Instruction* term = pred->terminator();
  if (term == nullptr || term->opcode() != ir::Opcode::kCondBr) return false;
  const auto taken = decidedBranch(term);
  if (!taken.has_value()) return false;
  return term->block_refs[1 - *taken] == succ &&
         term->block_refs[*taken] != succ;
}

void RangeAnalysis::degradeToTop() {
  range_.clear();
  return_range_.clear();
  decided_.clear();
  SAFEFLOW_COUNT("ranges.degraded_runs");
}

// --- consumer 3: definite out-of-bounds shm accesses ------------------------

std::size_t checkShmConstBounds(const ir::Module& module,
                                const ShmRegionTable& regions,
                                const ShmPointerAnalysis& shm,
                                const AliasAnalysis& alias,
                                const RangeAnalysis& ranges,
                                SafeFlowReport& report,
                                support::DiagnosticEngine& diags) {
  if (!ranges.enabled() || ranges.degraded()) return 0;
  std::size_t found = 0;
  for (const auto& fn : module.functions()) {
    if (!fn->isDefined() || fn->isIntrinsic()) continue;
    if (regions.isInitFunction(fn.get())) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kIndexAddr) continue;
        const ShmPtrInfo* base = shm.info(inst->operand(0));
        if (base == nullptr) continue;
        std::int64_t elem_size = 1;
        if (inst->type()->isPointer()) {
          elem_size = static_cast<std::int64_t>(
              static_cast<const cfront::PointerType*>(inst->type())
                  ->pointee()
                  ->size());
          if (elem_size == 0) elem_size = 1;
        }
        const Interval idx = ranges.rangeAt(inst->operand(1), bb.get());
        for (int region_id : base->regions) {
          const ShmRegion* region = regions.byId(region_id);
          if (region == nullptr || region->size == 0) continue;
          // Region extent via the alias analysis' object model: the
          // region's root object spans the whole mapping.
          std::int64_t extent = static_cast<std::int64_t>(region->size);
          for (ObjId obj : alias.objectsOfRegion(region_id)) {
            if (alias.parentOf(obj) >= 0) continue;
            const auto [off, size] = alias.extentOf(obj);
            if (off == 0 && size > 0) extent = size;
          }
          const std::int64_t base_lo = base->offset_known ? base->lo : 0;
          const std::int64_t count = extent / elem_size;
          const std::int64_t base_elems = base_lo / elem_size;
          // Definite violation only: *every* value of the index range is
          // out of bounds. "May be out of bounds" stays A1/A2 territory.
          const bool always_high =
              idx.boundedBelow() && addLo(idx.lo, base_elems) >= count;
          const bool always_low = idx.boundedAbove() &&
                                  addHi(idx.hi, base_elems) < 0;
          if (!always_high && !always_low) continue;
          ++found;
          SAFEFLOW_COUNT("ranges.shm_bounds_const.violations");
          report.restriction_violations.push_back(RestrictionViolation{
              "shm-bounds-const", inst->location(),
              "index range " + idx.str() + " into shared array '" +
                  region->name + "' is always outside its " +
                  std::to_string(count) + " elements",
              fn.get()});
          diags.warning(inst->location(), "shm-bounds-const",
                        "index range " + idx.str() + " into shared array '" +
                            region->name + "' is always outside its " +
                            std::to_string(count) + " elements");
        }
      }
    }
  }
  return found;
}

}  // namespace safeflow::analysis
