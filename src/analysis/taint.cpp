#include "analysis/taint.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "analysis/ranges.h"
#include "support/metrics.h"

namespace safeflow::analysis {

bool Taint::merge(const Taint& other) {
  bool changed = mergeConcrete(other);
  for (unsigned p : other.params) {
    changed |= params.insert(p).second;
  }
  return changed;
}

bool Taint::mergeConcrete(const Taint& other) {
  bool changed = false;
  for (const auto& [region, loads] : other.sources) {
    const bool new_region = !sources.contains(region);
    auto& mine = sources[region];
    if (new_region) changed = true;
    for (const ir::Instruction* load : loads) {
      changed |= mine.insert(load).second;
    }
  }
  return changed;
}

std::set<int> Taint::regions() const {
  std::set<int> out;
  for (const auto& [region, loads] : sources) out.insert(region);
  return out;
}

bool TaintPair::merge(const TaintPair& other) {
  const bool a = data.merge(other.data);
  const bool b = control.merge(other.control);
  return a || b;
}

TaintAnalysis::TaintAnalysis(const ir::Module& module,
                             const ShmRegionTable& regions,
                             const ShmPointerAnalysis& shm,
                             const AliasAnalysis& alias,
                             const ir::CallGraph& callgraph,
                             TaintOptions options,
                             support::AnalysisBudget* budget,
                             const RangeAnalysis* ranges,
                             PhaseMemoHooks memo)
    : module_(module),
      regions_(regions),
      shm_(shm),
      alias_(alias),
      callgraph_(callgraph),
      options_(options),
      budget_(budget),
      ranges_(ranges),
      memo_(memo) {}

// ---------------------------------------------------------------------------
// Assumptions
// ---------------------------------------------------------------------------

void TaintAnalysis::computeLocalAssumptions() {
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined()) continue;
    AssumptionSet& local = local_assumptions_[fn.get()];
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kCall ||
            inst->direct_callee == nullptr ||
            inst->direct_callee->name() != ir::kIntrinsicAssumeCore) {
          continue;
        }
        const ShmPtrInfo* info = shm_.info(inst->operand(0));
        if (info == nullptr) {
          // assume(core(...)) on a local (non-shm) pointer: the paper's
          // §3.4.3 message-buffer form — the function monitors received
          // non-core data, covering every message channel.
          for (const ShmRegion& r : regions_.regions()) {
            if (r.is_message_channel) {
              local.insert(CoreAssumption{
                  r.id, 0, std::numeric_limits<std::int64_t>::max()});
            }
          }
          continue;
        }
        const std::int64_t off =
            static_cast<const ir::ConstantInt*>(inst->operand(1))->value();
        const std::int64_t size =
            static_cast<const ir::ConstantInt*>(inst->operand(2))->value();
        for (int region : info->regions) {
          // Offsets are relative to the annotated pointer; only an exact
          // base offset lets us anchor the assumed byte range.
          const std::int64_t base =
              (info->offset_known && info->lo == info->hi) ? info->lo : 0;
          local.insert(CoreAssumption{region, base + off, size});
        }
      }
    }
  }
}

void TaintAnalysis::computeEffectiveAssumptions() {
  // Roots start at their local set; everything else starts at "top" (all
  // callers might monitor) and is narrowed by intersection.
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined()) continue;
    const bool is_root =
        callgraph_.callers(fn.get()).empty() || fn->name() == "main";
    effective_[fn.get()] = local_assumptions_[fn.get()];
    effective_is_top_[fn.get()] = !is_root;
  }

  bool changed = true;
  std::size_t rounds = 0;
  const std::size_t max_rounds = module_.functions().size() + 2;
  while (changed && rounds++ < max_rounds) {
    changed = false;
    for (const auto& fn : module_.functions()) {
      if (!fn->isDefined()) continue;
      const auto& callers = callgraph_.callers(fn.get());
      if (callers.empty() || fn->name() == "main") continue;

      bool inherited_is_top = true;
      AssumptionSet inherited;
      for (const ir::Function* caller : callers) {
        if (!caller->isDefined()) {
          // Called from an unanalyzed context: nothing can be assumed.
          inherited_is_top = false;
          inherited.clear();
          break;
        }
        auto top_it = effective_is_top_.find(caller);
        if (top_it != effective_is_top_.end() && top_it->second) continue;
        const AssumptionSet& cs = effective_[caller];
        if (inherited_is_top) {
          inherited = cs;
          inherited_is_top = false;
        } else {
          AssumptionSet meet;
          std::set_intersection(inherited.begin(), inherited.end(),
                                cs.begin(), cs.end(),
                                std::inserter(meet, meet.begin()));
          inherited = std::move(meet);
        }
      }

      AssumptionSet next = local_assumptions_[fn.get()];
      if (!inherited_is_top) {
        next.insert(inherited.begin(), inherited.end());
      }
      const bool next_top = inherited_is_top;
      if (next != effective_[fn.get()] ||
          next_top != effective_is_top_[fn.get()]) {
        effective_[fn.get()] = std::move(next);
        effective_is_top_[fn.get()] = next_top;
        changed = true;
      }
    }
  }
  // Anything still "top" (e.g. unreachable cycles) falls back to local.
  for (auto& [fn, top] : effective_is_top_) {
    if (top) {
      effective_[fn] = local_assumptions_[fn];
      top = false;
    }
  }
}

const AssumptionSet& TaintAnalysis::effectiveAssumptions(
    const ir::Function* fn) const {
  auto it = effective_.find(fn);
  return it == effective_.end() ? empty_assumptions_ : it->second;
}

bool TaintAnalysis::isCovered(const ShmPtrInfo& ptr,
                              std::int64_t access_size,
                              const AssumptionSet& assumptions,
                              int region) const {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  if (ptr.offset_known) {
    lo = ptr.lo;
    hi = ptr.hi;
  } else {
    const ShmRegion* r = regions_.byId(region);
    lo = 0;
    hi = (r != nullptr) ? std::max<std::int64_t>(0, r->size - access_size)
                        : 0;
  }
  for (const CoreAssumption& a : assumptions) {
    if (a.region != region) continue;
    if (a.offset <= lo && hi + access_size <= a.offset + a.size) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Transfer functions
// ---------------------------------------------------------------------------

TaintPair TaintAnalysis::operandTaint(const ir::Value* v) const {
  auto it = value_taint_.find(v);
  return it == value_taint_.end() ? TaintPair{} : it->second;
}

TaintPair TaintAnalysis::resolveConcrete(const TaintPair& t,
                                         const ir::Function& fn) const {
  TaintPair out;
  out.data.sources = t.data.sources;
  out.control.sources = t.control.sources;
  auto concrete_of = [this, &fn](unsigned p) -> TaintPair {
    if (p >= fn.args().size()) return {};
    auto it = arg_concrete_.find(fn.args()[p].get());
    return it == arg_concrete_.end() ? TaintPair{} : it->second;
  };
  for (unsigned p : t.data.params) {
    const TaintPair a = concrete_of(p);
    out.data.mergeConcrete(a.data);
    out.control.mergeConcrete(a.control);
  }
  for (unsigned p : t.control.params) {
    const TaintPair a = concrete_of(p);
    out.control.mergeConcrete(a.data);
    out.control.mergeConcrete(a.control);
  }
  return out;
}

Taint TaintAnalysis::resolveConcreteControl(const Taint& t,
                                            const ir::Function& fn) const {
  Taint out;
  out.sources = t.sources;
  for (unsigned p : t.params) {
    if (p >= fn.args().size()) continue;
    auto it = arg_concrete_.find(fn.args()[p].get());
    if (it == arg_concrete_.end()) continue;
    out.mergeConcrete(it->second.data);
    out.mergeConcrete(it->second.control);
  }
  return out;
}

TaintPair TaintAnalysis::substituteSummary(const TaintPair& summary,
                                           const ir::Instruction& call,
                                           std::size_t first_arg) const {
  TaintPair out;
  out.data.sources = summary.data.sources;
  out.control.sources = summary.control.sources;
  auto arg_taint = [this, &call, first_arg](unsigned p) -> TaintPair {
    const std::size_t idx = first_arg + p;
    if (idx >= call.numOperands()) return {};
    return operandTaint(call.operand(idx));
  };
  for (unsigned p : summary.data.params) {
    const TaintPair a = arg_taint(p);
    out.data.merge(a.data);          // caller's symbols stay symbolic
    out.control.merge(a.control);
  }
  for (unsigned p : summary.control.params) {
    const TaintPair a = arg_taint(p);
    out.control.merge(a.data);
    out.control.merge(a.control);
  }
  return out;
}

TaintPair TaintAnalysis::taintOf(const ir::Value* v) const {
  return operandTaint(v);
}

TaintPair TaintAnalysis::loadTaint(const ir::Instruction& load,
                                   const AssumptionSet& assumptions) const {
  TaintPair out;
  const ir::Value* ptr = load.operand(0);
  const std::int64_t access_size =
      static_cast<std::int64_t>(load.type()->size());

  if (const ShmPtrInfo* info = shm_.info(ptr)) {
    for (int region : info->regions) {
      const ShmRegion* r = regions_.byId(region);
      if (r == nullptr || !r->noncore) continue;  // core regions are safe
      if (isCovered(*info, access_size, assumptions, region)) continue;
      out.data.sources[region].insert(&load);
    }
  } else {
    // Ordinary memory: pick up whatever taint was stored in the objects
    // the pointer may reference. Message-channel taints (paper §3.4.3)
    // are dropped when the enclosing function monitors the channel.
    for (ObjId base : alias_.pointsTo(ptr)) {
      if (alias_.regionOf(base) >= 0) continue;  // shm handled above
      // A field read sees the taints of the whole object (writes through
      // the base pointer, e.g. a recv into the struct, cover its fields).
      for (ObjId obj = base; obj >= 0; obj = alias_.parentOf(obj)) {
        auto it = object_taint_.find(obj);
        if (it == object_taint_.end()) continue;
        TaintPair t = it->second;
        for (const CoreAssumption& a : assumptions) {
          const ShmRegion* r = regions_.byId(a.region);
          if (r == nullptr || !r->is_message_channel) continue;
          t.data.sources.erase(a.region);
          t.control.sources.erase(a.region);
        }
        out.merge(t);
      }
    }
  }
  // A tainted address taints the loaded value too.
  out.merge(operandTaint(ptr));
  return out;
}

Taint TaintAnalysis::blockControlTaint(const ir::BasicBlock* bb) const {
  Taint out;
  auto fn_it = control_dep_.find(bb->parent());
  if (fn_it == control_dep_.end()) return out;
  for (const ir::BasicBlock* branch : fn_it->second.controllers(bb)) {
    const ir::Instruction* term = branch->terminator();
    if (term == nullptr || term->opcode() != ir::Opcode::kCondBr) continue;
    // A branch the range analysis decides always goes one way exerts no
    // runtime control over this block: its condition cannot leak here.
    if (ranges_ != nullptr && ranges_->decidedBranch(term).has_value()) {
      if (pruned_branches_.insert(term).second) {
        SAFEFLOW_COUNT("ranges.control_edges_pruned");
      }
      continue;
    }
    const TaintPair cond = operandTaint(term->operand(0));
    out.merge(cond.data);
    out.merge(cond.control);
  }
  return out;
}

bool TaintAnalysis::analyzeFunction(const ir::Function& fn,
                                    const AssumptionSet& assumptions,
                                    unsigned depth) {
  // Once the budget trips, report "no change" so every enclosing fixpoint
  // (the SCC sweep, the per-context while loop) terminates immediately.
  if (budget_ != nullptr && budget_->exhausted()) return false;
  ++body_analyses_;
  SAFEFLOW_COUNT("taint.body_analyses");
  support::ScopedSpan span("taint.function");
  span.arg("fn", fn.name());
  if (options_.track_control_deps && !control_dep_.contains(&fn)) {
    control_dep_.emplace(&fn, ControlDependence::compute(fn));
  }

  bool changed_any = false;
  // Seed each argument with its symbolic parameter taint; concrete taints
  // arriving from call sites are kept separately in arg_concrete_.
  for (const auto& arg : fn.args()) {
    TaintPair symbol;
    symbol.data.params.insert(arg->index());
    changed_any |= value_taint_[arg.get()].merge(symbol);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& bb : fn.blocks()) {
      Taint block_control;
      if (options_.track_control_deps) {
        block_control = blockControlTaint(bb.get());
      }
      for (const auto& inst : bb->instructions()) {
        if (!support::budgetStep(budget_)) return false;
        TaintPair result;
        switch (inst->opcode()) {
          case ir::Opcode::kLoad:
            result = loadTaint(*inst, assumptions);
            break;
          case ir::Opcode::kStore: {
            // Memory objects are shared across contexts, so escaping
            // taints are resolved to their concrete form first.
            TaintPair stored =
                resolveConcrete(operandTaint(inst->operand(0)), fn);
            stored.control.mergeConcrete(
                resolveConcreteControl(block_control, fn));
            if (!stored.empty()) {
              for (ObjId obj : alias_.pointsTo(inst->operand(1))) {
                if (alias_.regionOf(obj) >= 0) continue;  // shm writes do
                // not change the region's core/non-core status (§2).
                changed |= object_taint_[obj].merge(stored);
              }
            }
            continue;
          }
          case ir::Opcode::kBinOp:
          case ir::Opcode::kUnOp:
          case ir::Opcode::kCmp:
          case ir::Opcode::kCast:
          case ir::Opcode::kFieldAddr:
          case ir::Opcode::kIndexAddr:
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
              result.merge(operandTaint(inst->operand(i)));
            }
            break;
          case ir::Opcode::kPhi: {
            for (std::size_t i = 0; i < inst->numOperands(); ++i) {
              // Values arriving over a statically-infeasible edge can
              // never flow at runtime: skip the operand entirely.
              if (ranges_ != nullptr && i < inst->block_refs.size() &&
                  ranges_->edgeInfeasible(inst->block_refs[i], bb.get())) {
                if (pruned_phi_edges_.insert({inst.get(), i}).second) {
                  SAFEFLOW_COUNT("ranges.phi_edges_pruned");
                }
                continue;
              }
              result.merge(operandTaint(inst->operand(i)));
              // The choice of incoming edge leaks the branch condition.
              if (options_.track_control_deps &&
                  i < inst->block_refs.size()) {
                const ir::Instruction* pterm =
                    inst->block_refs[i]->terminator();
                if (pterm != nullptr &&
                    pterm->opcode() == ir::Opcode::kCondBr &&
                    !(ranges_ != nullptr &&
                      ranges_->decidedBranch(pterm).has_value())) {
                  const TaintPair cond = operandTaint(pterm->operand(0));
                  result.control.merge(cond.data);
                  result.control.merge(cond.control);
                }
                result.control.merge(
                    blockControlTaint(inst->block_refs[i]));
              }
            }
            break;
          }
          case ir::Opcode::kCall:
            side_effect_changed_ = false;
            result = evalCall(*inst, assumptions, depth);
            changed |= side_effect_changed_;
            break;
          case ir::Opcode::kRet: {
            if (inst->numOperands() == 1) {
              TaintPair rt = operandTaint(inst->operand(0));
              rt.control.merge(block_control);
              {
                const bool grew = return_taint_[&fn].merge(rt);
                if (grew) SAFEFLOW_COUNT("taint.summaries_computed");
                changed |= grew;
              }
            }
            continue;
          }
          default:
            continue;
        }
        if (options_.track_control_deps) {
          result.control.merge(block_control);
        }
        if (!result.empty()) {
          changed |= value_taint_[inst.get()].merge(result);
        }
      }
    }
    changed_any |= changed;
  }
  return changed_any;
}

namespace {
/// Traces a value back to the global it was loaded from (descriptor
/// tracking for message channels).
const ir::GlobalVar* traceLoadToGlobal(const ir::Value* v, int depth = 0) {
  if (v == nullptr || depth > 8) return nullptr;
  if (v->kind() == ir::Value::Kind::kGlobalVar) {
    return static_cast<const ir::GlobalVar*>(v);
  }
  if (v->isInstruction()) {
    const auto* inst = static_cast<const ir::Instruction*>(v);
    if ((inst->opcode() == ir::Opcode::kLoad ||
         inst->opcode() == ir::Opcode::kCast) &&
        inst->numOperands() >= 1) {
      return traceLoadToGlobal(inst->operand(0), depth + 1);
    }
  }
  return nullptr;
}
}  // namespace

TaintPair TaintAnalysis::evalReceive(const ir::Instruction& call) {
  // Returns the call-result taint; buffer objects are tainted in place.
  for (const auto& rc : options_.receive_calls) {
    if (call.direct_callee == nullptr ||
        call.direct_callee->name() != rc.name) {
      continue;
    }
    if (rc.socket_arg >= call.numOperands() ||
        rc.buffer_arg >= call.numOperands()) {
      continue;
    }
    const ir::GlobalVar* fd =
        traceLoadToGlobal(call.operand(rc.socket_arg));
    const ShmRegion* channel =
        fd != nullptr ? regions_.channelByGlobal(fd) : nullptr;
    if (channel == nullptr) return {};  // core channel: received data safe
    TaintPair incoming;
    incoming.data.sources[channel->id].insert(&call);
    for (ObjId obj : alias_.pointsTo(call.operand(rc.buffer_arg))) {
      if (alias_.regionOf(obj) >= 0) continue;
      object_taint_[obj].merge(incoming);
    }
    return incoming;  // byte count / status also reflects the channel
  }
  return {};
}

bool TaintAnalysis::isReceiveCall(const ir::Instruction& call) const {
  if (call.direct_callee == nullptr) return false;
  for (const auto& rc : options_.receive_calls) {
    if (call.direct_callee->name() == rc.name) return true;
  }
  return false;
}

TaintPair TaintAnalysis::evalCall(const ir::Instruction& call,
                                  const AssumptionSet& caller_assumptions,
                                  unsigned depth) {
  TaintPair result;
  const std::size_t first_arg = call.direct_callee == nullptr ? 1 : 0;
  const ir::Function* caller = call.parent()->parent();

  if (isReceiveCall(call)) return evalReceive(call);

  bool any_defined = false;
  for (const ir::Function* target : callgraph_.targets(call)) {
    if (target->isIntrinsic()) return {};
    if (!target->isDefined() || regions_.isInitFunction(target)) continue;
    any_defined = true;

    // Concrete argument taints accumulate per parameter (used when the
    // parameter escapes to memory or reaches a report site).
    for (std::size_t i = first_arg; i < call.numOperands(); ++i) {
      const std::size_t p = i - first_arg;
      if (p >= target->args().size()) break;
      const TaintPair arg =
          resolveConcrete(operandTaint(call.operand(i)), *caller);
      if (!arg.empty()) {
        side_effect_changed_ |=
            arg_concrete_[target->args()[p].get()].merge(arg);
      }
    }

    TaintPair summary;
    if (options_.mode == TaintOptions::Mode::kCallStrings &&
        depth < options_.max_context_depth) {
      AssumptionSet ctx = caller_assumptions;
      const AssumptionSet& local = local_assumptions_[target];
      ctx.insert(local.begin(), local.end());
      summary = analyzeInContext(*target, std::move(ctx), depth + 1);
    } else {
      auto it = return_taint_.find(target);
      if (it != return_taint_.end()) summary = it->second;
    }
    // Instantiate the summary for THIS call site: parameter symbols are
    // replaced by the actual argument taints (context sensitivity in the
    // function's inputs, per the paper's value-flow-graph summaries).
    result.merge(substituteSummary(summary, call, first_arg));
  }

  if (!any_defined) {
    // External function: its result conservatively depends on all
    // arguments.
    for (std::size_t i = first_arg; i < call.numOperands(); ++i) {
      result.merge(operandTaint(call.operand(i)));
    }
  }
  return result;
}

TaintPair TaintAnalysis::analyzeInContext(const ir::Function& fn,
                                          AssumptionSet ctx,
                                          unsigned depth) {
  const auto key = std::make_pair(&fn, ctx);
  auto it = context_memo_.find(key);
  if (it != context_memo_.end()) {
    SAFEFLOW_COUNT("taint.context_cache_hits");
    return it->second;
  }
  SAFEFLOW_COUNT("taint.context_clones");
  context_memo_[key] = TaintPair{};  // break recursion

  // Run the body fixpoint under ctx; value/object taints accumulate
  // globally, and the return taint after convergence is this context's
  // summary.
  while (analyzeFunction(fn, ctx, depth)) {
  }
  TaintPair after = return_taint_[&fn];
  context_memo_[key] = after;
  return after;
}

void TaintAnalysis::run(SafeFlowReport& report) {
  const support::ScopedTimer timer("phase.taint");
  support::budgetBeginPhase(budget_, "taint");
  {
    const support::ScopedSpan span("taint.assumptions");
    computeLocalAssumptions();
    computeEffectiveAssumptions();
  }

  if (options_.mode == TaintOptions::Mode::kSummaries) {
    bool changed = true;
    while (changed) {
      changed = false;
      SAFEFLOW_COUNT("taint.sweep_rounds");
      for (const auto& scc : callgraph_.sccsBottomUp()) {
        for (const ir::Function* fn : scc) {
          if (!fn->isDefined() || regions_.isInitFunction(fn)) continue;
          changed |= memo_.enabled()
                         ? memoizedAnalyze(*fn, effectiveAssumptions(fn))
                         : analyzeFunction(*fn, effectiveAssumptions(fn));
        }
      }
    }
  } else {
    // Call-strings: start from roots and clone per assumption context.
    bool changed = true;
    while (changed) {
      changed = false;
      SAFEFLOW_COUNT("taint.sweep_rounds");
      for (const auto& fn : module_.functions()) {
        if (!fn->isDefined() || regions_.isInitFunction(fn.get())) continue;
        const bool is_root = callgraph_.callers(fn.get()).empty() ||
                             fn->name() == "main";
        if (!is_root) continue;
        context_memo_.clear();
        changed |=
            analyzeFunction(*fn, local_assumptions_[fn.get()]);
      }
    }
  }

  const support::ScopedSpan report_span("taint.report");
  reportWarnings(report);
  reportAsserts(report);
  if (!regions_.empty()) {
    if (regions_.initCheckVerifiedStatically()) {
      report.required_runtime_checks.push_back(
          "InitCheck: region extents were derived statically and proven "
          "non-overlapping (no run-time check needed)");
    } else {
      report.required_runtime_checks.push_back(
          "InitCheck: verify declared shmvar regions do not overlap at "
          "bootstrap (executed once during shared-memory initialization)");
    }
  }
}

// ---------------------------------------------------------------------------
// Per-function memoization (summary mode)
// ---------------------------------------------------------------------------

namespace {

/// Cross-run stable, order-independent encoding of a Taint: sources as
/// sorted (owner function, position) pairs, params as sorted indices.
std::vector<std::pair<std::string, int>> sortedRefs(
    const std::set<const ir::Instruction*>& insts, const ModuleIndex& index) {
  std::vector<std::pair<std::string, int>> refs;
  refs.reserve(insts.size());
  for (const ir::Instruction* inst : insts) {
    const auto [fn, id] = index.locate(inst);
    refs.emplace_back(fn != nullptr ? fn->name() : std::string("?"), id);
  }
  std::sort(refs.begin(), refs.end());
  return refs;
}

void hashTaint(support::Fnv1a& h, const Taint& t, const ModuleIndex& index) {
  hashUint(h, t.sources.size());
  for (const auto& [region, insts] : t.sources) {
    hashInt(h, region);
    const auto refs = sortedRefs(insts, index);
    hashUint(h, refs.size());
    for (const auto& [owner, id] : refs) {
      hashToken(h, owner);
      hashInt(h, id);
    }
  }
  hashUint(h, t.params.size());
  for (const unsigned p : t.params) hashUint(h, p);
}

void hashTaintPair(support::Fnv1a& h, const TaintPair& t,
                   const ModuleIndex& index) {
  hashTaint(h, t.data, index);
  hashTaint(h, t.control, index);
}

void writeTaint(BlobWriter& w, const Taint& t, const ModuleIndex& index) {
  w.u64(t.sources.size());
  for (const auto& [region, insts] : t.sources) {
    w.i64(region);
    const auto refs = sortedRefs(insts, index);
    w.u64(refs.size());
    for (const auto& [owner, id] : refs) {
      w.str(owner);
      w.i64(id);
    }
  }
  w.u64(t.params.size());
  for (const unsigned p : t.params) w.u64(p);
}

bool readTaint(BlobReader& r, Taint* t, const ModuleIndex& index) {
  const std::uint64_t nregions = r.u64();
  for (std::uint64_t i = 0; i < nregions && r.ok(); ++i) {
    const int region = static_cast<int>(r.i64());
    const std::uint64_t n = r.u64();
    for (std::uint64_t j = 0; j < n && r.ok(); ++j) {
      const std::string owner = r.str();
      const int id = static_cast<int>(r.i64());
      const ir::Value* v = index.resolve(owner, id);
      if (v == nullptr || !v->isInstruction()) return false;
      t->sources[region].insert(static_cast<const ir::Instruction*>(v));
    }
  }
  const std::uint64_t nparams = r.u64();
  for (std::uint64_t i = 0; i < nparams && r.ok(); ++i) {
    t->params.insert(static_cast<unsigned>(r.u64()));
  }
  return r.ok();
}

void writeTaintPair(BlobWriter& w, const TaintPair& t,
                    const ModuleIndex& index) {
  writeTaint(w, t.data, index);
  writeTaint(w, t.control, index);
}

bool readTaintPair(BlobReader& r, TaintPair* t, const ModuleIndex& index) {
  return readTaint(r, &t->data, index) && readTaint(r, &t->control, index);
}

std::string taintStr(const Taint& t, const ModuleIndex& index) {
  std::string s;
  for (const auto& [region, insts] : t.sources) {
    s += std::to_string(region) + "{";
    for (const auto& [owner, id] : sortedRefs(insts, index)) {
      s += owner + "#" + std::to_string(id) + ",";
    }
    s += "}";
  }
  s += "|";
  for (const unsigned p : t.params) s += std::to_string(p) + ",";
  return s;
}

std::string taintPairStr(const TaintPair& t, const ModuleIndex& index) {
  return taintStr(t.data, index) + "||" + taintStr(t.control, index);
}

bool taintRelevantTarget(const ir::Function* target,
                         const ShmRegionTable& regions) {
  return target->isDefined() && !target->isIntrinsic() &&
         !regions.isInitFunction(target);
}

}  // namespace

std::map<std::string, ObjId> TaintAnalysis::memoFootprint(
    const ir::Function& fn) const {
  // Every object the solve can touch is reached through the points-to set
  // of some operand (stores/loads/receive buffers) or its ancestor chain
  // (loadTaint walks parents). Operands — not just function-local values —
  // because a store through a global pointer writes that global's object.
  std::set<ObjId> objs;
  const auto add_chain = [this, &objs](ObjId base) {
    for (ObjId obj = base; obj >= 0; obj = alias_.parentOf(obj)) {
      if (!objs.insert(obj).second) break;
    }
  };
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      for (const ir::Value* op : inst->operands()) {
        for (ObjId obj : alias_.pointsTo(op)) add_chain(obj);
      }
      for (ObjId obj : alias_.pointsTo(inst.get())) add_chain(obj);
    }
  }
  std::map<std::string, ObjId> named;
  for (const ObjId obj : objs) {
    named.emplace(stableObjectName(alias_, *memo_.index, obj), obj);
  }
  return named;
}

// The phase-constant half of the input digest. Everything here is fixed
// before the taint fixpoint starts (assumptions, shm facts, range
// verdicts, alias shapes, the footprint, the call target list), so it is
// hashed once per function per run; re-hashing it on every fixpoint
// visit would make a warm digest probe as expensive as the solve it is
// supposed to replace.
const TaintAnalysis::MemoStatics& TaintAnalysis::memoStatics(
    const ir::Function& fn, const AssumptionSet& assumptions) const {
  const auto cached = memo_statics_.find(&fn);
  if (cached != memo_statics_.end()) return cached->second;

  const ModuleIndex& index = *memo_.index;
  const ValueIndex& vi = index.of(fn);
  MemoStatics st;
  support::Fnv1a h;
  hashToken(h, "taint-static");
  hashToken(h, fn.name());

  hashUint(h, assumptions.size());
  for (const CoreAssumption& a : assumptions) {
    hashInt(h, a.region);
    hashInt(h, a.offset);
    hashInt(h, a.size);
  }

  const auto& values = vi.values();
  hashToken(h, "shm");
  for (std::size_t id = 0; id < values.size(); ++id) {
    const ShmPtrInfo* info = shm_.info(values[id]);
    if (info == nullptr) continue;
    hashUint(h, id);
    hashUint(h, info->regions.size());
    for (const int r : info->regions) hashInt(h, r);
    hashInt(h, info->lo);
    hashInt(h, info->hi);
    hashUint(h, info->offset_known ? 1 : 0);
  }

  hashToken(h, "ranges");
  if (ranges_ != nullptr) {
    for (std::size_t id = 0; id < values.size(); ++id) {
      if (!values[id]->isInstruction()) continue;
      const auto* inst = static_cast<const ir::Instruction*>(values[id]);
      if (inst->opcode() == ir::Opcode::kCondBr) {
        const auto d = ranges_->decidedBranch(inst);
        hashUint(h, id);
        hashInt(h, d ? static_cast<int>(*d) : 2);
      } else if (inst->opcode() == ir::Opcode::kPhi) {
        hashUint(h, id);
        for (std::size_t i = 0; i < inst->block_refs.size(); ++i) {
          hashUint(h, ranges_->edgeInfeasible(inst->block_refs[i],
                                              inst->parent())
                          ? 1
                          : 0);
        }
      }
    }
  }

  hashToken(h, "alias");
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      for (const ir::Value* op : inst->operands()) {
        const auto& pts = alias_.pointsTo(op);
        if (pts.empty()) continue;
        std::vector<std::string> names;
        names.reserve(pts.size());
        for (const ObjId obj : pts) {
          names.push_back(stableObjectName(alias_, index, obj));
        }
        std::sort(names.begin(), names.end());
        hashUint(h, names.size());
        for (const std::string& n : names) hashToken(h, n);
      }
    }
  }

  st.footprint = memoFootprint(fn);
  hashToken(h, "objs");
  st.footprint_hashed.reserve(st.footprint.size());
  for (const auto& [name, obj] : st.footprint) {
    hashToken(h, name);
    st.footprint_hashed.emplace_back(support::fnv1a(name), obj);
  }

  hashToken(h, "calls");
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kCall) continue;
      for (const ir::Function* target : callgraph_.targets(*inst)) {
        if (!taintRelevantTarget(target, regions_)) continue;
        hashToken(h, target->name());
        st.call_targets.emplace_back(target, support::fnv1a(target->name()));
      }
    }
  }

  st.digest = h.digest();
  return memo_statics_.emplace(&fn, std::move(st)).first->second;
}

std::uint64_t TaintAnalysis::memoRefHash(const ir::Instruction* inst) const {
  const auto it = memo_ref_hash_.find(inst);
  if (it != memo_ref_hash_.end()) return it->second;
  const auto [owner, id] = memo_.index->locate(inst);
  support::Fnv1a h;
  hashToken(h, owner != nullptr ? owner->name() : std::string("?"));
  hashInt(h, id);
  return memo_ref_hash_.emplace(inst, h.digest()).first->second;
}

void TaintAnalysis::hashTaintDigest(support::Fnv1a& h, const Taint& t) const {
  hashUint(h, t.sources.size());
  std::vector<std::uint64_t> refs;
  for (const auto& [region, insts] : t.sources) {
    hashInt(h, region);
    refs.clear();
    refs.reserve(insts.size());
    for (const ir::Instruction* inst : insts) {
      refs.push_back(memoRefHash(inst));
    }
    // Sources live in pointer-keyed sets; sorting the stable per-ref
    // hashes restores a cross-run canonical order without building the
    // (owner name, id) strings sortedRefs needs for the blob codec.
    std::sort(refs.begin(), refs.end());
    hashUint(h, refs.size());
    for (const std::uint64_t ref : refs) hashUint(h, ref);
  }
  hashUint(h, t.params.size());
  for (const unsigned p : t.params) hashUint(h, p);
}

void TaintAnalysis::hashTaintPairDigest(support::Fnv1a& h,
                                        const TaintPair& t) const {
  hashTaintDigest(h, t.data);
  hashTaintDigest(h, t.control);
}

// Input digest of the per-function transformer: everything analyzeFunction
// (summary mode) reads that can differ between runs with an identical
// function key — the phase-constant statics above plus the evolving
// fixpoint state: its own value taints, its arguments' concrete taints,
// its return taint, the object taints of its footprint, and per call site
// the callee's return taint and formal pre-states.
void TaintAnalysis::digestInput(const ir::Function& fn,
                                const AssumptionSet& assumptions,
                                support::Fnv1a& h) const {
  const MemoStatics& st = memoStatics(fn, assumptions);
  const ValueIndex& vi = memo_.index->of(fn);
  hashToken(h, "taint-in");
  hashUint(h, st.digest);

  const auto& values = vi.values();
  hashToken(h, "vt");
  for (std::size_t id = 0; id < values.size(); ++id) {
    const auto it = value_taint_.find(values[id]);
    if (it == value_taint_.end()) continue;
    hashUint(h, id);
    hashTaintPairDigest(h, it->second);
  }
  hashToken(h, "argc");
  for (std::size_t p = 0; p < fn.args().size(); ++p) {
    const auto it = arg_concrete_.find(fn.args()[p].get());
    if (it == arg_concrete_.end()) continue;
    hashUint(h, p);
    hashTaintPairDigest(h, it->second);
  }
  hashToken(h, "ret");
  const auto rit = return_taint_.find(&fn);
  hashUint(h, rit == return_taint_.end() ? 0 : 1);
  if (rit != return_taint_.end()) hashTaintPairDigest(h, rit->second);

  hashToken(h, "objs");
  for (const auto& [name_hash, obj] : st.footprint_hashed) {
    const auto it = object_taint_.find(obj);
    if (it == object_taint_.end()) continue;
    hashUint(h, name_hash);
    hashTaintPairDigest(h, it->second);
  }

  hashToken(h, "calls");
  for (const auto& [target, name_hash] : st.call_targets) {
    hashUint(h, name_hash);
    const auto trit = return_taint_.find(target);
    hashUint(h, trit == return_taint_.end() ? 0 : 1);
    if (trit != return_taint_.end()) hashTaintPairDigest(h, trit->second);
    for (std::size_t p = 0; p < target->args().size(); ++p) {
      const auto ait = arg_concrete_.find(target->args()[p].get());
      if (ait == arg_concrete_.end()) continue;
      hashUint(h, p);
      hashTaintPairDigest(h, ait->second);
    }
  }
}

std::string TaintAnalysis::captureRecord(const ir::Function& fn,
                                         bool identity,
                                         bool changed_any) const {
  const ModuleIndex& index = *memo_.index;
  const ValueIndex& vi = index.of(fn);

  // Taint pairs are written through a per-blob intern table: in a
  // converged function most values carry the same accumulated pair, and
  // without interning a hub function's record grows with (values ×
  // sources) instead of (distinct pairs) — tens of megabytes for a
  // module whose distinct state fits in kilobytes.
  std::vector<std::string> table;
  std::map<std::string, std::uint64_t> interned;
  const auto intern = [&](const TaintPair& t) {
    BlobWriter pw;
    writeTaintPair(pw, t, index);
    std::string bytes = pw.take();
    const auto it = interned.find(bytes);
    if (it != interned.end()) return it->second;
    const std::uint64_t idx = table.size();
    table.push_back(bytes);
    interned.emplace(std::move(bytes), idx);
    return idx;
  };

  const auto& values = vi.values();
  std::vector<std::pair<std::size_t, std::uint64_t>> own;
  for (std::size_t id = 0; id < values.size(); ++id) {
    const auto it = value_taint_.find(values[id]);
    if (it == value_taint_.end()) continue;
    own.emplace_back(id, intern(it->second));
  }

  const auto rit = return_taint_.find(&fn);
  const std::uint64_t ret_idx =
      rit != return_taint_.end() ? intern(rit->second) : 0;

  const auto sit = memo_statics_.find(&fn);
  const auto footprint =
      sit != memo_statics_.end() ? sit->second.footprint : memoFootprint(fn);
  std::vector<std::pair<std::string, std::uint64_t>> obj_slots;
  for (const auto& [name, obj] : footprint) {
    const auto it = object_taint_.find(obj);
    if (it == object_taint_.end()) continue;
    obj_slots.emplace_back(name, intern(it->second));
  }

  std::set<std::pair<std::string, std::size_t>> seen;
  std::vector<std::tuple<std::string, std::size_t, std::uint64_t>>
      formal_slots;
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::kCall) continue;
      for (const ir::Function* target : callgraph_.targets(*inst)) {
        if (!taintRelevantTarget(target, regions_)) continue;
        for (std::size_t p = 0; p < target->args().size(); ++p) {
          const ir::Argument* formal = target->args()[p].get();
          const auto it = arg_concrete_.find(formal);
          if (it == arg_concrete_.end()) continue;
          if (!seen.insert({target->name(), p}).second) continue;
          formal_slots.emplace_back(target->name(), p, intern(it->second));
        }
      }
    }
  }

  BlobWriter w;
  // Identity = post-digest == pre-digest: the solve changed nothing in
  // the digested read/write set, so a hit may skip the state parse. The
  // driver signal is stored separately — the replay must return it.
  w.u64(identity ? 1 : 0);
  w.u64(changed_any ? 1 : 0);
  w.u64(table.size());
  for (const std::string& bytes : table) w.str(bytes);
  w.u64(own.size());
  for (const auto& [id, idx] : own) {
    w.u64(id);
    w.u64(idx);
  }
  w.u64(rit == return_taint_.end() ? 0 : 1);
  if (rit != return_taint_.end()) w.u64(ret_idx);
  w.u64(obj_slots.size());
  for (const auto& [name, idx] : obj_slots) {
    w.str(name);
    w.u64(idx);
  }
  w.u64(formal_slots.size());
  for (const auto& [name, p, idx] : formal_slots) {
    w.str(name);
    w.u64(p);
    w.u64(idx);
  }
  return w.take();
}

bool TaintAnalysis::applyRecord(const ir::Function& fn,
                                const std::string& blob, bool* changed_any) {
  const ModuleIndex& index = *memo_.index;
  const ValueIndex& vi = index.of(fn);
  const auto& values = vi.values();
  BlobReader r(blob);

  r.u64();  // identity flag, already consumed by the caller's peek
  const bool rc = r.u64() != 0;

  // Intern table first (see captureRecord): each distinct pair is parsed
  // once, slots reference it by index.
  const std::uint64_t ntable = r.u64();
  std::vector<TaintPair> table;
  for (std::uint64_t i = 0; i < ntable && r.ok(); ++i) {
    const std::string bytes = r.str();
    BlobReader pr(bytes);
    TaintPair t;
    if (!readTaintPair(pr, &t, index) || !pr.atEnd()) return false;
    table.push_back(std::move(t));
  }
  const auto pair_at = [&](std::uint64_t idx) -> const TaintPair* {
    return idx < table.size() ? &table[idx] : nullptr;
  };

  std::vector<std::pair<const ir::Value*, const TaintPair*>> staged_values;
  const std::uint64_t own = r.u64();
  for (std::uint64_t i = 0; i < own && r.ok(); ++i) {
    const std::uint64_t id = r.u64();
    const TaintPair* t = pair_at(r.u64());
    if (!r.ok() || t == nullptr || id >= values.size()) return false;
    staged_values.push_back({values[id], t});
  }
  const TaintPair* ret_taint = nullptr;
  if (r.u64() != 0) {
    ret_taint = pair_at(r.u64());
    if (!r.ok() || ret_taint == nullptr) return false;
  }
  const auto sit = memo_statics_.find(&fn);
  const auto footprint =
      sit != memo_statics_.end() ? sit->second.footprint : memoFootprint(fn);
  std::vector<std::pair<ObjId, const TaintPair*>> staged_objects;
  const std::uint64_t nobjs = r.u64();
  for (std::uint64_t i = 0; i < nobjs && r.ok(); ++i) {
    const std::string name = r.str();
    const TaintPair* t = pair_at(r.u64());
    const auto it = footprint.find(name);
    if (!r.ok() || t == nullptr || it == footprint.end()) return false;
    staged_objects.push_back({it->second, t});
  }
  std::vector<std::pair<const ir::Argument*, const TaintPair*>>
      staged_formals;
  const std::uint64_t nformals = r.u64();
  for (std::uint64_t i = 0; i < nformals && r.ok(); ++i) {
    const std::string name = r.str();
    const std::uint64_t p = r.u64();
    const TaintPair* t = pair_at(r.u64());
    const ir::Function* target = index.function(name);
    if (!r.ok() || t == nullptr || target == nullptr ||
        p >= target->args().size()) {
      return false;
    }
    staged_formals.push_back({target->args()[p].get(), t});
  }
  if (!r.ok() || !r.atEnd()) return false;

  for (const auto& [v, t] : staged_values) value_taint_[v] = *t;
  if (ret_taint != nullptr) return_taint_[&fn] = *ret_taint;
  for (const auto& [obj, t] : staged_objects) object_taint_[obj] = *t;
  for (const auto& [formal, t] : staged_formals) {
    arg_concrete_[formal] = *t;
  }
  *changed_any = rc;
  return true;
}

bool TaintAnalysis::memoizedAnalyze(const ir::Function& fn,
                                    const AssumptionSet& assumptions) {
  support::Fnv1a h;
  digestInput(fn, assumptions, h);
  const std::uint64_t digest = h.digest();
  if (const std::string* blob = memo_.bank->find(fn, digest)) {
    // Identity records changed nothing, so only the recorded driver
    // signal is needed — skip the state parse. This is what makes the
    // converged tail of a warm fixpoint (every visit after the first)
    // effectively free.
    BlobReader peek(*blob);
    const bool identity = peek.u64() != 0;
    const bool rc = peek.u64() != 0;
    if (peek.ok() && identity) return rc;
    bool changed = false;
    if (applyRecord(fn, *blob, &changed)) return changed;
  }
  const bool changed = analyzeFunction(fn, assumptions);
  if (budget_ == nullptr || !budget_->exhausted()) {
    // Post-digest == pre-digest detects identity transforms exactly: the
    // digest covers the full read set and the pre-state of the write set.
    support::Fnv1a post;
    digestInput(fn, assumptions, post);
    memo_.bank->record(fn, digest,
                       captureRecord(fn, post.digest() == digest, changed));
  }
  return changed;
}

std::uint64_t TaintAnalysis::digestState(const ModuleIndex& index) const {
  std::map<std::string, std::string> items;
  const auto stable = [&index](const ir::Value* v) {
    const auto [owner, id] = index.locate(v);
    return (owner != nullptr ? owner->name() : std::string("?")) + "#" +
           std::to_string(id);
  };
  for (const auto& [v, t] : value_taint_) {
    items["v:" + stable(v)] = taintPairStr(t, index);
  }
  for (const auto& [obj, t] : object_taint_) {
    items["o:" + stableObjectName(alias_, index, obj)] =
        taintPairStr(t, index);
  }
  for (const auto& [arg, t] : arg_concrete_) {
    items["a:" + stable(arg)] = taintPairStr(t, index);
  }
  for (const auto& [fn, t] : return_taint_) {
    items["r:" + fn->name()] = taintPairStr(t, index);
  }
  support::Fnv1a h;
  for (const auto& [k, v] : items) {
    hashToken(h, k);
    hashToken(h, v);
  }
  return h.digest();
}

void TaintAnalysis::reportWarnings(SafeFlowReport& report) {
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined() || regions_.isInitFunction(fn.get())) continue;
    const AssumptionSet& assumptions = effectiveAssumptions(fn.get());
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kLoad) continue;
        const ShmPtrInfo* info = shm_.info(inst->operand(0));
        if (info == nullptr) {
          // Message channels (§3.4.3): reading received non-core data
          // outside a monitoring function warns per channel.
          std::set<int> channels;
          for (ObjId base : alias_.pointsTo(inst->operand(0))) {
            for (ObjId obj = base; obj >= 0; obj = alias_.parentOf(obj)) {
              auto it = object_taint_.find(obj);
              if (it == object_taint_.end()) continue;
              for (int region : it->second.data.regions()) {
                const ShmRegion* r = regions_.byId(region);
                if (r != nullptr && r->is_message_channel) {
                  channels.insert(region);
                }
              }
            }
          }
          for (int region : channels) {
            bool covered = false;
            for (const CoreAssumption& a : assumptions) {
              if (a.region == region) covered = true;
            }
            if (covered) continue;
            UnsafeAccessWarning w;
            w.location = inst->location();
            w.function = fn->name();
            w.region = region;
            w.region_name = regions_.byId(region)->name;
            report.warnings.push_back(std::move(w));
          }
          continue;
        }
        const std::int64_t size =
            static_cast<std::int64_t>(inst->type()->size());
        for (int region : info->regions) {
          const ShmRegion* r = regions_.byId(region);
          if (r == nullptr || !r->noncore) continue;
          if (isCovered(*info, size, assumptions, region)) continue;
          UnsafeAccessWarning w;
          w.location = inst->location();
          w.function = fn->name();
          w.region = region;
          w.region_name = r->name;
          w.offset_known = info->offset_known;
          w.offset_lo = info->lo;
          w.offset_hi = info->hi + size;
          report.warnings.push_back(std::move(w));
        }
      }
    }
  }
}

void TaintAnalysis::reportCriticalValue(SafeFlowReport& report,
                                        const ir::Instruction& site,
                                        const ir::Value* checked,
                                        const std::string& name) {
  // Resolve any parameter symbols against the concrete taints this
  // function receives (merged over its callers).
  const TaintPair taint =
      resolveConcrete(operandTaint(checked), *site.parent()->parent());
  if (taint.empty()) return;

  // One entry per involved region: a region reaching through data flow is
  // a genuine error dependency; a region present only in the control
  // component is the paper's manual-review (false positive) class.
  std::set<int> all_regions = taint.data.regions();
  for (int r : taint.control.regions()) all_regions.insert(r);
  for (int region : all_regions) {
    const bool via_data = taint.data.sources.contains(region);
    CriticalDependencyError e;
    e.kind = via_data ? CriticalDependencyError::Kind::kData
                      : CriticalDependencyError::Kind::kControl;
    e.assert_location = site.location();
    e.function = site.parent()->parent()->name();
    e.critical_value = name;
    e.regions.insert(region);
    if (const ShmRegion* r = regions_.byId(region)) {
      e.region_names.push_back(r->name);
    }
    const auto& source_map =
        via_data ? taint.data.sources : taint.control.sources;
    auto it = source_map.find(region);
    if (it != source_map.end()) {
      for (const ir::Instruction* load : it->second) {
        e.source_loads.push_back(load->location());
      }
      // The set behind source_map is keyed by instruction pointer, so
      // its iteration order is heap layout, not program order — sort by
      // location so every run (cold, warm replay, daemon) renders the
      // same bytes.
      std::sort(e.source_loads.begin(), e.source_loads.end());
    }
    report.errors.push_back(std::move(e));
  }
}

void TaintAnalysis::reportAsserts(SafeFlowReport& report) {
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined()) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (inst->opcode() != ir::Opcode::kCall ||
            inst->direct_callee == nullptr) {
          continue;
        }
        if (inst->direct_callee->name() == ir::kIntrinsicAssertSafe) {
          ++report.asserts_checked;
          const ir::Value* checked = inst->operand(0);
          const std::string name =
              !inst->name().empty()
                  ? inst->name()
                  : (checked->name().empty() ? "<value>" : checked->name());
          reportCriticalValue(report, *inst, checked, name);
          continue;
        }
        // Implicitly critical system-call arguments (e.g. kill's pid).
        for (const auto& [callee, arg] : options_.implicit_critical_calls) {
          if (inst->direct_callee->name() != callee) continue;
          const std::size_t idx = arg;  // direct call: args start at 0
          if (idx >= inst->numOperands()) continue;
          ++report.asserts_checked;
          reportCriticalValue(report, *inst, inst->operand(idx),
                              callee + "(arg" + std::to_string(arg) + ")");
        }
      }
    }
  }
}

}  // namespace safeflow::analysis
