// Phase 3 (paper §3.3): unsafe-value detection and critical-data
// dependency analysis.
//
// Monitoring semantics: an assume(core(p, off, size)) annotation makes the
// covered byte range of p's region(s) core within the annotated function
// *and every function it (transitively) calls*. The effective assumption
// set of a function is therefore its local assumptions joined with the
// intersection of its callers' effective sets (a region is only safe in a
// callee if every calling context monitors it).
//
// A load from a non-core region not covered by the effective assumptions
// yields an *unsafe* value (reported as a warning) tainted with the
// region. Taint propagates through SSA data flow, through memory objects
// (via the alias analysis), across calls, and — optionally — through
// control dependence. assert(safe(x)) then checks the taint of x: data
// taint is an error dependency; control-only taint is flagged separately
// (the paper's manual-review / false-positive class).
//
// Two interprocedural engines are provided:
//   kSummaries    one bottom-up fixpoint with per-function return/param
//                 taint summaries (the ESP-style algorithm of §3.3's last
//                 paragraph);
//   kCallStrings  context cloning keyed on the inherited assumption set,
//                 the prototype's "analyze each function multiple times
//                 for different call sequences" exponential algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "analysis/alias.h"
#include "analysis/control_dep.h"
#include "analysis/report.h"
#include "analysis/shm_propagation.h"
#include "analysis/shm_regions.h"
#include "analysis/summaries.h"
#include "ir/callgraph.h"
#include "ir/ir.h"
#include "support/limits.h"

namespace safeflow::analysis {

class RangeAnalysis;

/// region id -> the unmonitored loads that sourced it, plus symbolic
/// references to the enclosing function's parameters ("this value is
/// tainted iff argument i is"). Parameter symbols make function summaries
/// context-sensitive in their inputs (the ESP-style value-flow graphs of
/// paper §3.3): they are substituted with the actual argument taints at
/// each call site instead of being merged across callers.
struct Taint {
  std::map<int, std::set<const ir::Instruction*>> sources;
  std::set<unsigned> params;

  [[nodiscard]] bool empty() const {
    return sources.empty() && params.empty();
  }
  bool merge(const Taint& other);
  /// Merges only the concrete (region) part of other.
  bool mergeConcrete(const Taint& other);
  [[nodiscard]] std::set<int> regions() const;
};

/// Data and control components tracked separately so the report can
/// distinguish genuine value dependencies from control-only ones.
struct TaintPair {
  Taint data;
  Taint control;

  [[nodiscard]] bool empty() const { return data.empty() && control.empty(); }
  bool merge(const TaintPair& other);
};

/// One assumption: bytes [offset, offset+size) of `region` are core.
struct CoreAssumption {
  int region = -1;
  std::int64_t offset = 0;
  std::int64_t size = 0;
  auto operator<=>(const CoreAssumption&) const = default;
};

using AssumptionSet = std::set<CoreAssumption>;

struct TaintOptions {
  bool track_control_deps = true;
  enum class Mode { kSummaries, kCallStrings };
  Mode mode = Mode::kSummaries;
  /// Call-string mode recursion cap; deeper chains fall back to the
  /// summary result.
  unsigned max_context_depth = 32;
  /// (function name, argument index) pairs treated as implicitly critical
  /// — the paper asserts the pid argument of kill in every system; this
  /// option performs that check without a source annotation.
  std::vector<std::pair<std::string, unsigned>> implicit_critical_calls;
  /// Trusted receive-style library calls (paper §3.4.3): data arriving
  /// through a noncore(socket)-annotated descriptor taints the buffer
  /// with the channel's pseudo-region.
  struct ReceiveCall {
    std::string name;
    unsigned socket_arg = 0;
    unsigned buffer_arg = 1;
  };
  std::vector<ReceiveCall> receive_calls{{"recv", 0, 1}, {"read", 0, 1}};
};

class TaintAnalysis {
 public:
  /// `ranges` (optional) prunes statically-infeasible branch edges from
  /// control-dependence propagation: a branch the range analysis decides
  /// contributes no control taint, and phi operands arriving over
  /// infeasible edges are skipped. Every pruned edge is counted in the
  /// ranges.* metrics family.
  TaintAnalysis(const ir::Module& module, const ShmRegionTable& regions,
                const ShmPointerAnalysis& shm, const AliasAnalysis& alias,
                const ir::CallGraph& callgraph, TaintOptions options = {},
                support::AnalysisBudget* budget = nullptr,
                const RangeAnalysis* ranges = nullptr,
                PhaseMemoHooks memo = {});

  /// Runs the analysis and fills in warnings and errors. Under an
  /// exhausted budget the propagation fixpoint stops early: taints found
  /// so far are still reported, and the driver marks the run degraded
  /// (budget diagnostic, non-zero exit) because unprocessed flows may be
  /// missing — a degraded run never certifies (see DESIGN.md).
  void run(SafeFlowReport& report);

  [[nodiscard]] const AssumptionSet& effectiveAssumptions(
      const ir::Function* fn) const;
  /// Exposed for tests: the final taint of a value.
  [[nodiscard]] TaintPair taintOf(const ir::Value* v) const;
  /// Number of (function, context) body analyses performed — the work
  /// metric the ablation bench compares across modes.
  [[nodiscard]] std::size_t bodyAnalyses() const { return body_analyses_; }

  /// Order-independent digest of the final analysis state (value, object,
  /// argument, and return taints under cross-run stable names) for
  /// --verify-summaries.
  [[nodiscard]] std::uint64_t digestState(const ModuleIndex& index) const;

 private:
  // -- effective assumptions ------------------------------------------------
  void computeLocalAssumptions();
  void computeEffectiveAssumptions();
  [[nodiscard]] bool isCovered(const ShmPtrInfo& ptr,
                               std::int64_t access_size,
                               const AssumptionSet& assumptions,
                               int region) const;

  // -- propagation ------------------------------------------------------------
  /// One intraprocedural pass under the given assumptions; updates value
  /// taints / object taints; returns true when anything changed. `depth`
  /// threads the call-string recursion depth into evalCall.
  bool analyzeFunction(const ir::Function& fn,
                       const AssumptionSet& assumptions,
                       unsigned depth = 0);
  /// Memoizing wrapper around analyzeFunction for the summary-mode SCC
  /// sweep (see summaries.h): digests the transformer's input, replays a
  /// recorded post-state on a hit, records one on a miss.
  bool memoizedAnalyze(const ir::Function& fn,
                       const AssumptionSet& assumptions);
  void digestInput(const ir::Function& fn, const AssumptionSet& assumptions,
                   support::Fnv1a& h) const;
  [[nodiscard]] std::string captureRecord(const ir::Function& fn,
                                          bool identity,
                                          bool changed_any) const;
  bool applyRecord(const ir::Function& fn, const std::string& blob,
                   bool* changed_any);
  /// Objects this function's solve can read or write through any operand
  /// (points-to sets plus ancestor chains), keyed by cross-run stable
  /// name. Recomputed identically at capture and apply time.
  [[nodiscard]] std::map<std::string, ObjId> memoFootprint(
      const ir::Function& fn) const;
  /// Digest inputs that cannot change while this phase runs (assumptions,
  /// shm facts, range verdicts, alias shapes, the footprint, the call
  /// target list): hashed once per function per run instead of on every
  /// fixpoint visit, which is what makes a warm digest probe much cheaper
  /// than the solve it replaces.
  struct MemoStatics {
    std::uint64_t digest = 0;
    std::map<std::string, ObjId> footprint;
    /// footprint entries as (fnv of stable name, object), in name order.
    std::vector<std::pair<std::uint64_t, ObjId>> footprint_hashed;
    /// Taint-relevant call targets in call-site order (with repeats),
    /// paired with the fnv of the callee name.
    std::vector<std::pair<const ir::Function*, std::uint64_t>> call_targets;
  };
  const MemoStatics& memoStatics(const ir::Function& fn,
                                 const AssumptionSet& assumptions) const;
  /// Cross-run stable 64-bit name of a taint source instruction
  /// ((owner function, position) folded through fnv), cached per run.
  std::uint64_t memoRefHash(const ir::Instruction* inst) const;
  /// Digest-path taint hashing: order-independent over sources via
  /// sorted memoRefHash values — no per-visit string building.
  void hashTaintDigest(support::Fnv1a& h, const Taint& t) const;
  void hashTaintPairDigest(support::Fnv1a& h, const TaintPair& t) const;
  TaintPair evalCall(const ir::Instruction& call,
                     const AssumptionSet& caller_assumptions,
                     unsigned depth);
  /// recv/read-style call through a possibly-noncore descriptor; taints
  /// the buffer's objects and returns the result taint.
  TaintPair evalReceive(const ir::Instruction& call);
  [[nodiscard]] bool isReceiveCall(const ir::Instruction& call) const;
  /// Call-string mode: (re)analyze `fn` under `ctx`, returning the summary
  /// (return taint) for that context. Memoized.
  TaintPair analyzeInContext(const ir::Function& fn, AssumptionSet ctx,
                             unsigned depth);
  [[nodiscard]] TaintPair operandTaint(const ir::Value* v) const;
  /// Replaces parameter symbols with the concrete taints accumulated for
  /// `fn`'s arguments (data symbols keep data/control split; control
  /// symbols collapse into control).
  [[nodiscard]] TaintPair resolveConcrete(const TaintPair& t,
                                          const ir::Function& fn) const;
  [[nodiscard]] Taint resolveConcreteControl(const Taint& t,
                                             const ir::Function& fn) const;
  /// Instantiates a callee summary at a call site, substituting parameter
  /// symbols with the call's argument taints.
  [[nodiscard]] TaintPair substituteSummary(const TaintPair& summary,
                                            const ir::Instruction& call,
                                            std::size_t first_arg) const;
  /// The taint a load yields (region taint for unmonitored noncore loads,
  /// plus object taint), given the active assumptions.
  TaintPair loadTaint(const ir::Instruction& load,
                      const AssumptionSet& assumptions) const;
  /// Control taint contributed by the block's controlling branches.
  Taint blockControlTaint(const ir::BasicBlock* bb) const;

  void reportWarnings(SafeFlowReport& report);
  void reportAsserts(SafeFlowReport& report);
  void reportCriticalValue(SafeFlowReport& report,
                           const ir::Instruction& site,
                           const ir::Value* checked, const std::string& name);

  const ir::Module& module_;
  const ShmRegionTable& regions_;
  const ShmPointerAnalysis& shm_;
  const AliasAnalysis& alias_;
  const ir::CallGraph& callgraph_;
  TaintOptions options_;
  support::AnalysisBudget* budget_ = nullptr;
  const RangeAnalysis* ranges_ = nullptr;
  PhaseMemoHooks memo_;
  /// Per-run caches for the memo path (valid because alias/shm/ranges
  /// facts and effective assumptions are fixed inputs of this phase).
  mutable std::map<const ir::Function*, MemoStatics> memo_statics_;
  mutable std::map<const ir::Instruction*, std::uint64_t> memo_ref_hash_;
  /// Branches / phi edges pruned via the range analysis. Sets (not raw
  /// counters) so fixpoint revisits count each edge once and the metric
  /// totals stay independent of iteration order.
  mutable std::set<const ir::Instruction*> pruned_branches_;
  mutable std::set<std::pair<const ir::Instruction*, std::size_t>>
      pruned_phi_edges_;

  std::map<const ir::Function*, AssumptionSet> local_assumptions_;
  std::map<const ir::Function*, AssumptionSet> effective_;
  std::map<const ir::Function*, bool> effective_is_top_;

  std::map<const ir::Value*, TaintPair> value_taint_;
  std::map<ObjId, TaintPair> object_taint_;
  /// Concrete (symbol-free) taint each parameter receives, merged over
  /// call sites — used when parameter symbols escape through memory or
  /// reach a report site inside a callee.
  std::map<const ir::Argument*, TaintPair> arg_concrete_;
  std::map<const ir::Function*, TaintPair> return_taint_;
  std::map<const ir::Function*, ControlDependence> control_dep_;
  // Call-string memoization: (function, context) -> return taint.
  std::map<std::pair<const ir::Function*, AssumptionSet>, TaintPair>
      context_memo_;
  std::size_t body_analyses_ = 0;
  /// Set when evalCall grew a callee's concrete argument taint; folded
  /// into the enclosing fixpoint's change flag.
  bool side_effect_changed_ = false;
  AssumptionSet empty_assumptions_;
};

}  // namespace safeflow::analysis
