#include "analysis/control_dep.h"

namespace safeflow::analysis {

ControlDependence ControlDependence::compute(const ir::Function& fn) {
  ControlDependence cd;
  if (!fn.isDefined()) return cd;
  const ir::DominatorTree pdt = ir::DominatorTree::computePost(fn);

  for (const auto& a : fn.blocks()) {
    const ir::Instruction* term = a->terminator();
    if (term == nullptr || term->opcode() != ir::Opcode::kCondBr) continue;
    const ir::BasicBlock* stop = pdt.idom(a.get());  // may be null (vexit)
    for (const ir::BasicBlock* s : a->successors()) {
      // Skip the edge when A's immediate post-dominator already covers it
      // (i.e. S post-dominates A): no control dependence through it.
      if (pdt.dominates(s, a.get())) continue;
      const ir::BasicBlock* runner = s;
      std::set<const ir::BasicBlock*> seen;
      while (runner != nullptr && runner != stop &&
             seen.insert(runner).second) {
        cd.deps_[runner].insert(a.get());
        runner = pdt.idom(runner);
      }
    }
  }
  return cd;
}

const std::set<const ir::BasicBlock*>& ControlDependence::controllers(
    const ir::BasicBlock* bb) const {
  auto it = deps_.find(bb);
  return it == deps_.end() ? empty_ : it->second;
}

}  // namespace safeflow::analysis
