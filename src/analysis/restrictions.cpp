#include "analysis/restrictions.h"

#include <algorithm>
#include <set>

#include "analysis/affine.h"
#include "analysis/ranges.h"
#include "support/metrics.h"

namespace safeflow::analysis {

namespace {

bool isIntegerCast(const ir::Instruction& cast) {
  return cast.type()->isInteger();
}

/// True when `to` can legally view memory of pointer type `from` under the
/// paper's P3 rule.
bool castCompatible(const ir::Type* to, const ir::Type* from) {
  return cfront::typesCompatible(to, from);
}

/// Can `target` be reached from `from` without re-entering `avoid`?
bool reachableAvoiding(const ir::BasicBlock* from,
                       const ir::BasicBlock* target,
                       const ir::BasicBlock* avoid) {
  if (from == target) return true;
  std::set<const ir::BasicBlock*> seen{avoid};
  std::vector<const ir::BasicBlock*> stack{from};
  while (!stack.empty()) {
    const ir::BasicBlock* bb = stack.back();
    stack.pop_back();
    if (bb == target) return true;
    if (!seen.insert(bb).second) continue;
    for (const ir::BasicBlock* succ : bb->successors()) {
      if (!seen.contains(succ)) stack.push_back(succ);
    }
  }
  return false;
}

}  // namespace

RestrictionChecker::RestrictionChecker(const ir::Module& module,
                                       const ShmRegionTable& regions,
                                       const ShmPointerAnalysis& shm,
                                       RestrictionOptions options,
                                       support::AnalysisBudget* budget,
                                       const RangeAnalysis* ranges)
    : module_(module),
      regions_(regions),
      shm_(shm),
      options_(std::move(options)),
      budget_(budget),
      ranges_(ranges) {}

std::vector<RestrictionViolation> RestrictionChecker::run(
    support::DiagnosticEngine& diags) {
  const support::ScopedTimer timer("phase.restrictions");
  support::budgetBeginPhase(budget_, "restrictions");
  std::vector<RestrictionViolation> out;
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined()) continue;
    if (regions_.isInitFunction(fn.get())) continue;  // shminit is exempt
    // Out of budget: remaining functions go unchecked, so the run must
    // not certify — the driver flags the phase degraded and exits nonzero.
    if (!support::budgetStep(budget_)) break;
    SAFEFLOW_COUNT("restrictions.functions_checked");
    checkFunction(*fn, out);
  }
  for (const RestrictionViolation& v : out) {
    SAFEFLOW_COUNT("restrictions." + v.rule + ".violations");
    diags.warning(v.location, "restriction." + v.rule, v.message);
  }
  return out;
}

void RestrictionChecker::checkFunction(
    const ir::Function& fn, std::vector<RestrictionViolation>& out) {
  const bool is_main = fn.name() == "main";
  for (const auto& bb : fn.blocks()) {
    for (const auto& inst : bb->instructions()) {
      switch (inst->opcode()) {
        case ir::Opcode::kCall: {
          // P1: deallocation of shared memory.
          if (inst->direct_callee == nullptr) break;
          const std::string& callee = inst->direct_callee->name();
          const bool is_dealloc =
              std::find(options_.dealloc_functions.begin(),
                        options_.dealloc_functions.end(),
                        callee) != options_.dealloc_functions.end();
          if (!is_dealloc) break;
          for (std::size_t i = 0; i < inst->numOperands(); ++i) {
            if (shm_.info(inst->operand(i)) == nullptr) continue;
            // In main, deallocation is permitted only in a returning
            // block (the "end of main").
            const bool at_main_exit =
                is_main && bb->terminator() != nullptr &&
                bb->terminator()->opcode() == ir::Opcode::kRet;
            if (at_main_exit) continue;
            out.push_back(RestrictionViolation{
                "P1", inst->location(),
                "shared memory passed to '" + callee +
                    "' before the end of main (rule P1)",
                &fn});
          }
          break;
        }
        case ir::Opcode::kStore: {
          // P2: a shm pointer stored anywhere but a declared shm pointer
          // global. (Stores into promoted scalars vanished in mem2reg; a
          // surviving store means the destination is memory.)
          const ShmPtrInfo* src = shm_.info(inst->operand(0));
          if (src == nullptr || !inst->operand(0)->type()->isPointer()) {
            break;
          }
          const ir::Value* dst = inst->operand(1);
          if (dst->kind() == ir::Value::Kind::kGlobalVar) {
            const auto* g = static_cast<const ir::GlobalVar*>(dst);
            if (regions_.byGlobal(g) != nullptr) break;  // canonical slot
          }
          out.push_back(RestrictionViolation{
              "P2", inst->location(),
              "pointer to shared memory stored into memory (rule P2: shm "
              "pointers must not be aliased through memory)",
              &fn});
          break;
        }
        case ir::Opcode::kCast: {
          const ShmPtrInfo* src = shm_.info(inst->operand(0));
          if (src == nullptr) break;
          if (isIntegerCast(*inst)) {
            out.push_back(RestrictionViolation{
                "P3", inst->location(),
                "pointer to shared memory cast to an integer (rule P3)",
                &fn});
            break;
          }
          if (inst->type()->isPointer() &&
              inst->operand(0)->type()->isPointer() &&
              !castCompatible(inst->type(), inst->operand(0)->type())) {
            out.push_back(RestrictionViolation{
                "P3", inst->location(),
                "pointer to shared memory cast to incompatible type " +
                    inst->type()->str() + " (rule P3)",
                &fn});
          }
          break;
        }
        case ir::Opcode::kIndexAddr:
          checkIndexAddr(fn, *inst, out);
          break;
        default:
          break;
      }
    }
  }
}

void RestrictionChecker::checkIndexAddr(
    const ir::Function& fn, const ir::Instruction& gep,
    std::vector<RestrictionViolation>& out) {
  const ShmPtrInfo* base = shm_.info(gep.operand(0));
  if (base == nullptr) return;
  SAFEFLOW_COUNT("restrictions.index_checks");
  std::int64_t elem_size = 1;
  if (gep.type()->isPointer()) {
    elem_size = static_cast<std::int64_t>(
        static_cast<const cfront::PointerType*>(gep.type())
            ->pointee()
            ->size());
    if (elem_size == 0) elem_size = 1;
  }

  for (int region_id : base->regions) {
    const ShmRegion* region = regions_.byId(region_id);
    if (region == nullptr || region->size == 0) continue;
    // The base pointer may already be displaced; indices count elements
    // from the base's lowest possible offset.
    const std::int64_t base_lo = base->offset_known ? base->lo : 0;
    const std::int64_t limit_bytes = region->size;

    const ir::Value* idx = gep.operand(1);
    const AffineIndex affine = decompose(idx);
    if (affine.valid && affine.terms.empty()) {
      // A1: constant index (after folding negation/arithmetic).
      const std::int64_t c = affine.constant;
      const std::int64_t start = base_lo + c * elem_size;
      if (start < 0 || start + elem_size > limit_bytes) {
        out.push_back(RestrictionViolation{
            "A1", gep.location(),
            "constant index " + std::to_string(c) +
                " exceeds shared array '" + region->name + "' of " +
                std::to_string(limit_bytes / elem_size) + " elements "
                "(rule A1)",
            &fn});
      }
      continue;
    }

    // A2: loop-variant index must be provably affine and in bounds.
    if (!affine.valid) {
      out.push_back(RestrictionViolation{
          "A2", gep.location(),
          "index into shared array '" + region->name +
              "' is not a provable affine expression (rule A2)",
          &fn});
      continue;
    }

    // Build the violation system: symbol bounds + (index out of range).
    LinearSystem sys;
    std::map<const ir::Value*, int> vars;
    bool bounded = true;
    bool ranged = false;
    for (const auto& [sym, coeff] : affine.terms) {
      bool used_ranges = false;
      const SymbolBounds b =
          boundsFor(sym, fn, gep.parent(), &used_ranges);
      if (!b.valid) {
        bounded = false;
        break;
      }
      ranged |= used_ranges;
      if (used_ranges) SAFEFLOW_COUNT("ranges.bounds_seeded");
      const int var = sys.addVariable(sym->name());
      vars[sym] = var;
      sys.addLowerBound(var, b.lo);
      sys.addUpperBound(var, b.hi);
    }
    if (!bounded) {
      out.push_back(RestrictionViolation{
          "A2", gep.location(),
          "index into shared array '" + region->name +
              "' depends on a value with no provable bounds (rule A2)",
          &fn});
      continue;
    }

    const std::int64_t count = limit_bytes / elem_size;
    const std::int64_t base_elems = base_lo / elem_size;
    // Violation 1: index + base < 0  =>  -(idx) - base - 1 >= 0.
    {
      LinearSystem low = sys;
      LinearConstraint c;
      for (const auto& [sym, coeff] : affine.terms) {
        c.coeffs[vars[sym]] = -coeff;
      }
      c.constant = -affine.constant - base_elems - 1;
      low.add(std::move(c));
      SAFEFLOW_COUNT("restrictions.a2_solver_calls");
      if (low.isFeasible(budget_)) {
        out.push_back(RestrictionViolation{
            "A2", gep.location(),
            "index into shared array '" + region->name +
                "' may be negative (rule A2)",
            &fn});
        continue;
      }
    }
    // Violation 2: index + base >= count  =>  idx + base - count >= 0.
    {
      LinearSystem high = sys;
      LinearConstraint c;
      for (const auto& [sym, coeff] : affine.terms) {
        c.coeffs[vars[sym]] = coeff;
      }
      c.constant = affine.constant + base_elems - count;
      high.add(std::move(c));
      SAFEFLOW_COUNT("restrictions.a2_solver_calls");
      if (high.isFeasible(budget_)) {
        out.push_back(RestrictionViolation{
            "A2", gep.location(),
            "index into shared array '" + region->name +
                "' may exceed its " + std::to_string(count) +
                " elements (rule A2)",
            &fn});
        continue;
      }
    }
    // Both violation systems infeasible. When range-derived bounds made
    // the difference this is an obligation the syntactic induction
    // pattern alone could not discharge.
    if (ranged) SAFEFLOW_COUNT("ranges.a2_discharged");
  }
}

RestrictionChecker::AffineIndex RestrictionChecker::decompose(
    const ir::Value* v, int depth) const {
  AffineIndex out;
  if (depth > 8) return out;
  if (v->kind() == ir::Value::Kind::kConstantInt) {
    out.valid = true;
    out.constant = static_cast<const ir::ConstantInt*>(v)->value();
    return out;
  }
  if (v->isInstruction()) {
    const auto* inst = static_cast<const ir::Instruction*>(v);
    switch (inst->opcode()) {
      case ir::Opcode::kCast:
        return decompose(inst->operand(0), depth + 1);
      case ir::Opcode::kBinOp: {
        const AffineIndex l = decompose(inst->operand(0), depth + 1);
        const AffineIndex r = decompose(inst->operand(1), depth + 1);
        if (!l.valid || !r.valid) break;
        if (inst->bin_op == ir::BinOp::kAdd ||
            inst->bin_op == ir::BinOp::kSub) {
          const std::int64_t sign =
              inst->bin_op == ir::BinOp::kAdd ? 1 : -1;
          out = l;
          out.constant += sign * r.constant;
          for (const auto& [sym, coeff] : r.terms) {
            out.terms.emplace_back(sym, sign * coeff);
          }
          return out;
        }
        if (inst->bin_op == ir::BinOp::kMul) {
          // One side must be a pure constant.
          const AffineIndex* konst =
              l.terms.empty() ? &l : (r.terms.empty() ? &r : nullptr);
          const AffineIndex* lin = (konst == &l) ? &r : &l;
          if (konst == nullptr) break;
          out.valid = true;
          out.constant = lin->constant * konst->constant;
          for (const auto& [sym, coeff] : lin->terms) {
            out.terms.emplace_back(sym, coeff * konst->constant);
          }
          return out;
        }
        break;
      }
      case ir::Opcode::kUnOp:
        if (inst->un_op == ir::UnOp::kNeg) {
          AffineIndex inner = decompose(inst->operand(0), depth + 1);
          if (!inner.valid) break;
          inner.constant = -inner.constant;
          for (auto& [sym, coeff] : inner.terms) coeff = -coeff;
          return inner;
        }
        break;
      case ir::Opcode::kPhi:
        // An induction variable: itself a symbol.
        out.valid = true;
        out.terms.emplace_back(v, 1);
        return out;
      default:
        break;
    }
    return AffineIndex{};
  }
  if (v->kind() == ir::Value::Kind::kArgument) {
    out.valid = true;
    out.terms.emplace_back(v, 1);
    return out;
  }
  return out;
}

RestrictionChecker::SymbolBounds RestrictionChecker::boundsFor(
    const ir::Value* sym, const ir::Function& fn,
    const ir::BasicBlock* use_block, bool* used_ranges) const {
  (void)fn;  // reserved for future per-function bound refinement
  bool bound_from_ranges = false;
  const SymbolBounds induction = [&]() -> SymbolBounds {
    SymbolBounds out;
    if (!sym->isInstruction()) return out;
    const auto* phi = static_cast<const ir::Instruction*>(sym);
    if (phi->opcode() != ir::Opcode::kPhi) return out;

    // Induction pattern: one incoming constant (init), one incoming
    // add/sub of the phi itself with a positive constant step.
    std::optional<std::int64_t> init;
    std::optional<std::int64_t> step;
    for (std::size_t i = 0; i < phi->numOperands(); ++i) {
      const ir::Value* in = phi->operand(i);
      if (in->kind() == ir::Value::Kind::kConstantInt) {
        init = static_cast<const ir::ConstantInt*>(in)->value();
        continue;
      }
      if (in->isInstruction()) {
        const auto* add = static_cast<const ir::Instruction*>(in);
        if (add->opcode() == ir::Opcode::kBinOp &&
            (add->bin_op == ir::BinOp::kAdd ||
             add->bin_op == ir::BinOp::kSub) &&
            add->numOperands() == 2 && add->operand(0) == phi &&
            add->operand(1)->kind() == ir::Value::Kind::kConstantInt) {
          std::int64_t s =
              static_cast<const ir::ConstantInt*>(add->operand(1))->value();
          if (add->bin_op == ir::BinOp::kSub) s = -s;
          step = s;
          continue;
        }
      }
      return out;  // unrecognized incoming edge
    }
    if (!init.has_value() || !step.has_value() || *step == 0) return out;

    // Find the loop-header comparison guarding the body: a CondBr in the
    // phi's block whose condition compares the phi against a constant —
    // or, with the range analysis available, against any value whose
    // interval is known at the header (`i < n` with n in [4, 12]).
    const ir::BasicBlock* header = phi->parent();
    const ir::Instruction* term = header->terminator();
    if (term == nullptr || term->opcode() != ir::Opcode::kCondBr) return out;
    const ir::Value* cond = term->operand(0);
    if (!cond->isInstruction()) return out;
    const auto* cmp = static_cast<const ir::Instruction*>(cond);
    if (cmp->opcode() != ir::Opcode::kCmp) return out;
    if (cmp->operand(0) != phi) return out;
    // The loop bound as an interval: a constant is the singleton case.
    std::optional<std::int64_t> bound_lo;
    std::optional<std::int64_t> bound_hi;
    if (cmp->operand(1)->kind() == ir::Value::Kind::kConstantInt) {
      const std::int64_t b =
          static_cast<const ir::ConstantInt*>(cmp->operand(1))->value();
      bound_lo = b;
      bound_hi = b;
    } else if (ranges_ != nullptr) {
      const Interval r = ranges_->rangeAt(cmp->operand(1), header);
      if (r.boundedBelow()) bound_lo = r.lo;
      if (r.boundedAbove()) bound_hi = r.hi;
      bound_from_ranges = true;
    } else {
      return out;
    }

    // The body is the successor from which the phi's increment flows back;
    // determine which CondBr edge enters the body (reaches the increment's
    // block without re-entering the header).
    const ir::Instruction* inc = nullptr;
    for (std::size_t i = 0; i < phi->numOperands(); ++i) {
      const ir::Value* in = phi->operand(i);
      if (in->isInstruction() &&
          static_cast<const ir::Instruction*>(in)->opcode() ==
              ir::Opcode::kBinOp) {
        inc = static_cast<const ir::Instruction*>(in);
      }
    }
    if (inc == nullptr) return out;
    const bool body_on_true = reachableAvoiding(term->block_refs[0],
                                                inc->parent(), header);
    ir::CmpOp op = cmp->cmp_op;
    if (!body_on_true) {
      // Invert the comparison when the loop body hangs off the false edge.
      switch (op) {
        case ir::CmpOp::kLt: op = ir::CmpOp::kGe; break;
        case ir::CmpOp::kLe: op = ir::CmpOp::kGt; break;
        case ir::CmpOp::kGt: op = ir::CmpOp::kLe; break;
        case ir::CmpOp::kGe: op = ir::CmpOp::kLt; break;
        case ir::CmpOp::kEq: op = ir::CmpOp::kNe; break;
        case ir::CmpOp::kNe: op = ir::CmpOp::kEq; break;
      }
    }

    if (*step > 0) {
      // Counting up: the comparison caps the index from above, so the
      // largest possible loop bound is what matters.
      if (!bound_hi.has_value()) return out;
      out.lo = *init;
      switch (op) {
        case ir::CmpOp::kLt: out.hi = *bound_hi - 1; break;
        case ir::CmpOp::kLe: out.hi = *bound_hi; break;
        case ir::CmpOp::kNe: out.hi = *bound_hi - 1; break;  // i != N, i += s
        default: return out;
      }
      out.valid = out.hi >= out.lo;
    } else {
      if (!bound_lo.has_value()) return out;
      out.hi = *init;
      switch (op) {
        case ir::CmpOp::kGt: out.lo = *bound_lo + 1; break;
        case ir::CmpOp::kGe: out.lo = *bound_lo; break;
        case ir::CmpOp::kNe: out.lo = *bound_lo + 1; break;
        default: return out;
      }
      out.valid = out.hi >= out.lo;
    }
    return out;
  }();
  if (induction.valid) {
    if (bound_from_ranges && used_ranges != nullptr) *used_ranges = true;
    return induction;
  }

  // Fallback: the symbol is not a recognizable induction variable (or its
  // loop bound is unknown), but the value-range analysis may still bound
  // it outright — e.g. an argument clamped by early returns, or a value
  // masked to a small range before use.
  SymbolBounds out;
  if (ranges_ != nullptr && use_block != nullptr) {
    const Interval r = ranges_->rangeAt(sym, use_block);
    if (r.boundedBelow() && r.boundedAbove()) {
      out.valid = true;
      out.lo = r.lo;
      out.hi = r.hi;
      if (used_ranges != nullptr) *used_ranges = true;
    }
  }
  return out;
}

}  // namespace safeflow::analysis
