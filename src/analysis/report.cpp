#include "analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "support/source_manager.h"

namespace safeflow::analysis {

std::size_t SafeFlowReport::dataErrorCount() const {
  return static_cast<std::size_t>(std::count_if(
      errors.begin(), errors.end(), [](const CriticalDependencyError& e) {
        return e.kind == CriticalDependencyError::Kind::kData;
      }));
}

std::size_t SafeFlowReport::controlErrorCount() const {
  return errors.size() - dataErrorCount();
}

namespace {
std::string dotEscape(std::string s) {
  for (char& c : s) {
    if (c == '"') c = '\'';
  }
  return s;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

void SafeFlowReport::deduplicate(const support::SourceManager& sm) {
  std::set<std::string> seen;
  auto fresh = [&seen](std::string key) {
    return seen.insert(std::move(key)).second;
  };

  std::vector<UnsafeAccessWarning> kept_warnings;
  kept_warnings.reserve(warnings.size());
  for (UnsafeAccessWarning& w : warnings) {
    std::string key = sm.describe(w.location) + ":warning:" + w.function +
                      ":" + w.region_name;
    if (w.offset_known) {
      key += ":" + std::to_string(w.offset_lo) + ":" +
             std::to_string(w.offset_hi);
    }
    if (fresh(std::move(key))) kept_warnings.push_back(std::move(w));
  }
  warnings = std::move(kept_warnings);

  std::vector<CriticalDependencyError> kept_errors;
  kept_errors.reserve(errors.size());
  for (CriticalDependencyError& e : errors) {
    std::string key =
        sm.describe(e.assert_location) +
        (e.kind == CriticalDependencyError::Kind::kData ? ":error:"
                                                        : ":control:") +
        e.function + ":" + e.critical_value;
    for (const std::string& r : e.region_names) key += ":" + r;
    for (const auto& loc : e.source_loads) key += ":" + sm.describe(loc);
    if (fresh(std::move(key))) kept_errors.push_back(std::move(e));
  }
  errors = std::move(kept_errors);

  std::vector<RestrictionViolation> kept_violations;
  kept_violations.reserve(restriction_violations.size());
  for (RestrictionViolation& v : restriction_violations) {
    std::string key =
        sm.describe(v.location) + ":" + v.rule + ":" + v.message;
    if (fresh(std::move(key))) kept_violations.push_back(std::move(v));
  }
  restriction_violations = std::move(kept_violations);
}

std::string SafeFlowReport::renderJson(
    const support::SourceManager& sm, const std::string& stats_json,
    bool worker_protocol, const std::string& telemetry_json) const {
  std::ostringstream out;
  out << "{\n  \"schema_version\": 1,\n  \"warnings\": [";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    const UnsafeAccessWarning& w = warnings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"location\": \""
        << jsonEscape(sm.describe(w.location)) << "\", \"function\": \""
        << jsonEscape(w.function) << "\", \"region\": \""
        << jsonEscape(w.region_name) << "\"";
    if (w.offset_known) {
      out << ", \"bytes\": [" << w.offset_lo << ", " << w.offset_hi << "]";
    }
    out << "}";
  }
  out << (warnings.empty() ? "]" : "\n  ]");
  out << ",\n  \"errors\": [";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    const CriticalDependencyError& e = errors[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"kind\": \""
        << (e.kind == CriticalDependencyError::Kind::kData ? "data"
                                                           : "control")
        << "\", \"location\": \""
        << jsonEscape(sm.describe(e.assert_location))
        << "\", \"function\": \"" << jsonEscape(e.function)
        << "\", \"critical\": \"" << jsonEscape(e.critical_value)
        << "\", \"regions\": [";
    for (std::size_t r = 0; r < e.region_names.size(); ++r) {
      out << (r == 0 ? "" : ", ") << "\"" << jsonEscape(e.region_names[r])
          << "\"";
    }
    out << "], \"sources\": [";
    for (std::size_t s = 0; s < e.source_loads.size(); ++s) {
      out << (s == 0 ? "" : ", ") << "\""
          << jsonEscape(sm.describe(e.source_loads[s])) << "\"";
    }
    out << "]}";
  }
  out << (errors.empty() ? "]" : "\n  ]");
  out << ",\n  \"restriction_violations\": [";
  for (std::size_t i = 0; i < restriction_violations.size(); ++i) {
    const RestrictionViolation& v = restriction_violations[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \""
        << jsonEscape(v.rule) << "\", \"location\": \""
        << jsonEscape(sm.describe(v.location)) << "\", \"message\": \""
        << jsonEscape(v.message) << "\"}";
  }
  out << (restriction_violations.empty() ? "]" : "\n  ]");
  out << ",\n  \"asserts_checked\": " << asserts_checked
      << ",\n  \"data_errors\": " << dataErrorCount()
      << ",\n  \"control_only\": " << controlErrorCount();
  // Degradation markers are emitted only when present so a full run's
  // report stays byte-identical to builds without the budget layer.
  if (!degraded_phases.empty()) {
    out << ",\n  \"degraded\": true,\n  \"degraded_phases\": [";
    for (std::size_t i = 0; i < degraded_phases.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(degraded_phases[i])
          << "\"";
    }
    out << "]";
  }
  if (!failed_files.empty()) {
    out << ",\n  \"failed_files\": [";
    for (std::size_t i = 0; i < failed_files.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\"" << jsonEscape(failed_files[i])
          << "\"";
    }
    out << "]";
  }
  if (worker_protocol) {
    // Worker-protocol extras: fields the public schema omits but the
    // supervisor needs to reconstruct the in-process text rendering.
    out << ",\n  \"required_runtime_checks\": [";
    for (std::size_t i = 0; i < required_runtime_checks.size(); ++i) {
      out << (i == 0 ? "" : ", ") << "\""
          << jsonEscape(required_runtime_checks[i]) << "\"";
    }
    out << "]";
  }
  if (!stats_json.empty()) {
    // Indent the embedded object to match the surrounding document.
    std::string indented;
    indented.reserve(stats_json.size());
    for (char c : stats_json) {
      indented += c;
      if (c == '\n') indented += "  ";
    }
    out << ",\n  \"stats\": " << indented;
  }
  if (worker_protocol && !telemetry_json.empty()) {
    std::string indented;
    indented.reserve(telemetry_json.size());
    for (char c : telemetry_json) {
      indented += c;
      if (c == '\n') indented += "  ";
    }
    out << ",\n  \"telemetry\": " << indented;
  }
  out << "\n}\n";
  return out.str();
}

std::string SafeFlowReport::renderValueFlowDot(
    const support::SourceManager& sm) const {
  std::ostringstream out;
  out << "digraph safeflow_value_flow {\n"
      << "  rankdir=LR;\n"
      << "  node [fontname=\"monospace\"];\n";

  std::set<std::string> emitted;
  auto node = [&](const std::string& id, const std::string& label,
                  const std::string& attrs) {
    if (!emitted.insert(id).second) return;
    out << "  \"" << id << "\" [label=\"" << dotEscape(label) << "\" "
        << attrs << "];\n";
  };

  for (std::size_t i = 0; i < errors.size(); ++i) {
    const CriticalDependencyError& e = errors[i];
    const bool control = e.kind == CriticalDependencyError::Kind::kControl;
    const std::string critical_id =
        "crit:" + e.function + ":" + e.critical_value;
    node(critical_id, e.critical_value + "\\n(" + e.function + ")",
         "shape=doubleoctagon color=red");
    for (const std::string& r : e.region_names) {
      node("region:" + r, "non-core region\\n" + r,
           "shape=box3d color=orange");
    }
    for (const auto& loc : e.source_loads) {
      const std::string load_id = "load:" + sm.describe(loc);
      node(load_id, "unmonitored load\\n" + sm.describe(loc),
           "shape=ellipse");
      for (const std::string& r : e.region_names) {
        out << "  \"region:" << r << "\" -> \"" << load_id << "\";\n";
      }
      out << "  \"" << load_id << "\" -> \"" << critical_id << "\""
          << (control ? " [style=dashed label=\"control\"]"
                      : " [label=\"data\"]")
          << ";\n";
    }
  }
  // Warnings with no path to critical data appear as isolated loads.
  for (const UnsafeAccessWarning& w : warnings) {
    const std::string load_id = "load:" + sm.describe(w.location);
    node(load_id, "unmonitored load\\n" + sm.describe(w.location),
         "shape=ellipse");
    node("region:" + w.region_name, "non-core region\\n" + w.region_name,
         "shape=box3d color=orange");
    out << "  \"region:" << w.region_name << "\" -> \"" << load_id
        << "\";\n";
  }
  out << "}\n";
  return out.str();
}

std::string SafeFlowReport::render(const support::SourceManager& sm) const {
  std::ostringstream out;
  out << "== SafeFlow report ==\n";
  out << "warnings (unmonitored non-core accesses): " << warnings.size()
      << "\n";
  for (const UnsafeAccessWarning& w : warnings) {
    out << "  [warning] " << sm.describe(w.location) << " in " << w.function
        << ": unmonitored read of non-core region '" << w.region_name
        << "'";
    if (w.offset_known) {
      out << " bytes [" << w.offset_lo << ", " << w.offset_hi << ")";
    }
    out << "\n";
  }
  out << "error dependencies: " << errors.size() << " (" << dataErrorCount()
      << " data, " << controlErrorCount()
      << " control-only; control-only entries require manual review)\n";
  for (const CriticalDependencyError& e : errors) {
    out << "  [error/"
        << (e.kind == CriticalDependencyError::Kind::kData ? "data"
                                                           : "control")
        << "] " << sm.describe(e.assert_location) << " in " << e.function
        << ": critical value '" << e.critical_value
        << "' depends on non-core region(s):";
    for (const std::string& r : e.region_names) out << " " << r;
    out << "\n";
    for (const auto& loc : e.source_loads) {
      out << "      via unmonitored load at " << sm.describe(loc) << "\n";
    }
  }
  out << "restriction violations: " << restriction_violations.size() << "\n";
  for (const RestrictionViolation& v : restriction_violations) {
    out << "  [" << v.rule << "] " << sm.describe(v.location) << ": "
        << v.message << "\n";
  }
  for (const std::string& check : required_runtime_checks) {
    out << "  [runtime-check] " << check << "\n";
  }
  for (const std::string& f : failed_files) {
    out << "  [partial] '" << f
        << "' had parse errors; results cover the declarations that "
           "survived recovery\n";
  }
  if (!degraded_phases.empty()) {
    out << "DEGRADED: analysis budget exhausted in";
    for (const std::string& p : degraded_phases) out << " " << p;
    out << "; results are conservative (findings valid, absences "
           "unproven)\n";
  }
  return out.str();
}

}  // namespace safeflow::analysis
