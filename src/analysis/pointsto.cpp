#include "analysis/pointsto.h"

#include <algorithm>
#include <tuple>

#include "cfront/types.h"
#include "support/metrics.h"

namespace safeflow::analysis {

namespace {

// Byte size of the element a pointer value addresses, or 0 when unknown.
std::int64_t pointeeSize(const ir::Value* v) {
  if (v == nullptr || v->type() == nullptr || !v->type()->isPointer()) {
    return 0;
  }
  const auto* pt = static_cast<const cfront::PointerType*>(v->type());
  return pt->pointee() != nullptr
             ? static_cast<std::int64_t>(pt->pointee()->size())
             : 0;
}

}  // namespace

PointsToSolver::PointsToSolver(const ir::Module& module,
                               const ShmRegionTable& regions,
                               const ir::CallGraph& callgraph,
                               PointsToOptions options,
                               support::AnalysisBudget* budget)
    : module_(module),
      regions_(regions),
      callgraph_(callgraph),
      options_(options),
      budget_(budget) {
  Object unknown;
  unknown.kind = ObjKind::kUnknown;
  unknown.name = "<unknown>";
  unknown_ = internObject(std::move(unknown));
  // Externals can return pointers into graphs of unknown memory: the
  // unknown object's contents include a pointer to itself.
  addPts(objNode(unknown_), unknown_);
}

// ---------------------------------------------------------------------------
// Nodes and union-find
// ---------------------------------------------------------------------------

int PointsToSolver::newNode() {
  nodes_.emplace_back();
  rep_.push_back(static_cast<int>(nodes_.size()) - 1);
  return static_cast<int>(nodes_.size()) - 1;
}

int PointsToSolver::valueNode(const ir::Value* v) {
  auto it = value_nodes_.find(v);
  if (it != value_nodes_.end()) return it->second;
  const int n = newNode();
  value_nodes_.emplace(v, n);
  return n;
}

int PointsToSolver::objNode(ObjId obj) {
  if (objects_[static_cast<std::size_t>(obj)].node >= 0) {
    return objects_[static_cast<std::size_t>(obj)].node;
  }
  const int n = newNode();
  objects_[static_cast<std::size_t>(obj)].node = n;
  return n;
}

int PointsToSolver::find(int n) {
  while (rep_[static_cast<std::size_t>(n)] != n) {
    rep_[static_cast<std::size_t>(n)] =
        rep_[static_cast<std::size_t>(rep_[static_cast<std::size_t>(n)])];
    n = rep_[static_cast<std::size_t>(n)];
  }
  return n;
}

int PointsToSolver::unite(int a, int b) {
  a = find(a);
  b = find(b);
  if (a == b) return a;
  // The smaller index survives so collapse order is deterministic.
  if (b < a) std::swap(a, b);
  Node& na = nodes_[static_cast<std::size_t>(a)];
  Node& nb = nodes_[static_cast<std::size_t>(b)];
  for (int s : nb.succs) na.succs.insert(s);
  for (ObjId o : nb.pts) na.pts.insert(o);
  na.constraints.insert(na.constraints.end(), nb.constraints.begin(),
                        nb.constraints.end());
  // The adopted constraints have never seen the survivor's objects (and
  // vice versa): refire everything once over the merged set.
  na.pending = na.pts;
  nb = Node{};
  rep_[static_cast<std::size_t>(b)] = a;
  worklist_.insert(a);
  ++n_collapsed_;
  return a;
}

bool PointsToSolver::addEdge(int from, int to) {
  from = find(from);
  to = find(to);
  if (from == to) return false;
  if (!nodes_[static_cast<std::size_t>(from)].succs.insert(to).second) {
    return false;
  }
  edges_dirty_ = true;
  // A brand-new edge must carry everything already known at the source;
  // afterwards only deltas flow across it.
  for (ObjId o : nodes_[static_cast<std::size_t>(from)].pts) {
    addPts(to, o);
  }
  return true;
}

bool PointsToSolver::addPts(int node, ObjId obj) {
  node = find(node);
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (!n.pts.insert(obj).second) return false;
  n.pending.insert(obj);
  worklist_.insert(node);
  return true;
}

// ---------------------------------------------------------------------------
// Abstract objects and field cells
// ---------------------------------------------------------------------------

ObjId PointsToSolver::internObject(Object obj) {
  objects_.push_back(std::move(obj));
  return static_cast<ObjId>(objects_.size() - 1);
}

namespace {

// Fills size / element stride / element layout for a root object.
// Arrays collapse element-wise: the stride is the element size and the
// layout describes one element, so constant offsets normalize modulo the
// stride. Non-array objects have stride == size.
void setRootLayout(std::int64_t& size, std::int64_t& stride,
                   const cfront::StructType*& layout, const cfront::Type* t) {
  if (t == nullptr) {
    size = 0;
    stride = 0;
    layout = nullptr;
    return;
  }
  size = static_cast<std::int64_t>(t->size());
  if (t->isArray()) {
    const auto* at = static_cast<const cfront::ArrayType*>(t);
    stride = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(at->element()->size()));
    layout = at->element()->isStruct()
                 ? static_cast<const cfront::StructType*>(at->element())
                 : nullptr;
  } else {
    stride = size;
    layout = t->isStruct() ? static_cast<const cfront::StructType*>(t)
                           : nullptr;
  }
}

}  // namespace

ObjId PointsToSolver::objectForAlloca(const ir::Instruction* alloca) {
  auto it = value_objects_.find(alloca);
  if (it != value_objects_.end()) return it->second;
  Object o;
  o.kind = ObjKind::kAlloca;
  o.anchor = alloca;
  // Qualify with the owning function: bare alloca names are not unique
  // across functions and diagnostics must be unambiguous.
  const ir::Function* fn =
      alloca->parent() != nullptr ? alloca->parent()->parent() : nullptr;
  const std::string base =
      alloca->name().empty() ? std::string("<tmp>") : alloca->name();
  o.name = (fn != nullptr ? fn->name() + "::" : std::string()) + base;
  setRootLayout(o.size, o.stride, o.layout, alloca->allocated_type);
  const ObjId id = internObject(std::move(o));
  value_objects_.emplace(alloca, id);
  return id;
}

ObjId PointsToSolver::objectForGlobal(const ir::GlobalVar* g) {
  auto it = value_objects_.find(g);
  if (it != value_objects_.end()) return it->second;
  Object o;
  o.kind = ObjKind::kGlobal;
  o.anchor = g;
  o.name = g->name();
  setRootLayout(o.size, o.stride, o.layout, g->valueType());
  const ObjId id = internObject(std::move(o));
  value_objects_.emplace(g, id);
  return id;
}

ObjId PointsToSolver::cellFor(ObjId root, std::int64_t offset,
                              std::int64_t size) {
  const auto key = std::make_tuple(root, offset, size);
  auto it = cells_.find(key);
  if (it != cells_.end()) return it->second;
  Object c;
  c.kind = ObjKind::kField;
  c.parent = root;
  c.region_id = objects_[static_cast<std::size_t>(root)].region_id;
  c.offset = offset;
  c.size = size;
  // Recover the declared field identity when the cell lines up with the
  // element layout; byte-offset views keep a positional name.
  std::string suffix =
      "+" + std::to_string(offset) + ":" + std::to_string(size);
  if (const cfront::StructType* st =
          objects_[static_cast<std::size_t>(root)].layout) {
    const auto& fs = st->fields();
    for (unsigned i = 0; i < fs.size(); ++i) {
      const auto fo = static_cast<std::int64_t>(fs[i].offset);
      const auto fsz = static_cast<std::int64_t>(fs[i].type->size());
      if (fo == offset && fsz == size) {
        c.field = i;
        suffix = "." + fs[i].name;
        break;
      }
      if (fo <= offset && offset + size <= fo + fsz) c.field = i;
    }
  }
  c.name = objects_[static_cast<std::size_t>(root)].name + suffix;
  const ObjId id = internObject(std::move(c));
  cells_.emplace(key, id);
  ++n_cells_;
  // Link overlapping sibling cells (union punning, byte views): their
  // stored pointers are mutually visible, and consumers see siblings in
  // the expanded points-to sets so taint crosses the pun.
  for (const auto& [k2, sib] : cells_) {
    if (std::get<0>(k2) != root || sib == id) continue;
    const std::int64_t so = std::get<1>(k2);
    const std::int64_t ss = std::get<2>(k2);
    if (offset < so + ss && so < offset + size) {
      objects_[static_cast<std::size_t>(id)].overlaps.push_back(sib);
      objects_[static_cast<std::size_t>(sib)].overlaps.push_back(id);
      addEdge(objNode(id), objNode(sib));
      addEdge(objNode(sib), objNode(id));
    }
  }
  return id;
}

ObjId PointsToSolver::resolveOffset(ObjId obj, std::int64_t delta,
                                    std::int64_t size) {
  if (isUnknown(obj)) return unknown_;
  if (!options_.field_sensitive) return obj;
  const Object& o = objects_[static_cast<std::size_t>(obj)];
  const ObjId root = o.parent >= 0 ? o.parent : obj;
  const std::int64_t raw = (o.parent >= 0 ? o.offset : 0) + delta;
  const std::int64_t total =
      objects_[static_cast<std::size_t>(root)].size;
  const std::int64_t stride =
      objects_[static_cast<std::size_t>(root)].stride;
  if (total <= 0) return obj;  // unsized object: stay put
  const std::int64_t want = std::max<std::int64_t>(1, size);
  const bool array_like = stride > 0 && stride < total;
  std::int64_t off = raw;
  if (array_like) {
    // Array collapse: all elements share one set of cells.
    off = ((raw % stride) + stride) % stride;
    if (off + want > stride) return root;  // spans elements
  } else if (raw < 0 || raw + want > total) {
    // A constant offset provably outside the object: unknown memory.
    return unknown_;
  }
  const std::int64_t bound = array_like ? stride : total;
  const Object& r = objects_[static_cast<std::size_t>(root)];
  // A (0, whole-size) view is the root itself — except for unions, where
  // every member view must stay a cell so that overlap linking connects
  // it to the sibling members it shares bytes with.
  const bool union_root = r.layout != nullptr && r.layout->isUnion();
  if (off == 0 && want >= bound && !union_root) return root;
  return cellFor(root, off, want);
}

// ---------------------------------------------------------------------------
// Constraint generation
// ---------------------------------------------------------------------------

void PointsToSolver::buildRegionObjects() {
  for (const ShmRegion& rg : regions_.regions()) {
    Object o;
    o.kind = ObjKind::kRegion;
    o.region_id = rg.id;
    o.name = "shm:" + rg.name;
    o.size = rg.size;
    std::int64_t stride =
        rg.pointee_type != nullptr
            ? static_cast<std::int64_t>(rg.pointee_type->size())
            : 0;
    if (stride <= 0 || stride > o.size) stride = o.size;
    o.stride = stride;
    if (rg.pointee_type != nullptr && rg.pointee_type->isStruct()) {
      o.layout = static_cast<const cfront::StructType*>(rg.pointee_type);
    }
    const ObjId id = internObject(std::move(o));
    region_objects_[rg.id] = id;
    // The declared global pointer variable holds a pointer to the region.
    if (rg.pointer_global != nullptr) {
      addPts(objNode(objectForGlobal(rg.pointer_global)), id);
      ++n_constraints_;
    }
  }
}

void PointsToSolver::genInstruction(const ir::Instruction* inst) {
  switch (inst->opcode()) {
    case ir::Opcode::kAlloca:
      addPts(valueNode(inst), objectForAlloca(inst));
      ++n_constraints_;
      break;
    case ir::Opcode::kLoad:
      if (inst->type()->isPointer()) {
        const int pn = valueNode(inst->operand(0));
        const int dn = valueNode(inst);
        nodes_[static_cast<std::size_t>(pn)].constraints.push_back(
            Constraint{Constraint::Kind::kLoad, dn, 0, 0});
        worklist_.insert(find(pn));
        ++n_constraints_;
      }
      break;
    case ir::Opcode::kStore:
      if (inst->operand(0)->type()->isPointer()) {
        const int pn = valueNode(inst->operand(1));
        const int vn = valueNode(inst->operand(0));
        nodes_[static_cast<std::size_t>(pn)].constraints.push_back(
            Constraint{Constraint::Kind::kStore, vn, 0, 0});
        worklist_.insert(find(pn));
        ++n_constraints_;
      }
      break;
    case ir::Opcode::kCast:
      addEdge(valueNode(inst->operand(0)), valueNode(inst));
      ++n_constraints_;
      break;
    case ir::Opcode::kIndexAddr: {
      const std::int64_t elem = pointeeSize(inst);
      const ir::Value* idx = inst->operand(1);
      if (options_.field_sensitive && elem > 0 &&
          idx->kind() == ir::Value::Kind::kConstantInt) {
        const std::int64_t k =
            static_cast<const ir::ConstantInt*>(idx)->value();
        const int pn = valueNode(inst->operand(0));
        const int dn = valueNode(inst);
        nodes_[static_cast<std::size_t>(pn)].constraints.push_back(
            Constraint{Constraint::Kind::kOffset, dn, k * elem, elem});
        worklist_.insert(find(pn));
      } else {
        // Variable index: the element pointer aliases the base cells.
        addEdge(valueNode(inst->operand(0)), valueNode(inst));
      }
      ++n_constraints_;
      break;
    }
    case ir::Opcode::kFieldAddr: {
      std::int64_t delta = 0;
      std::int64_t fsize = pointeeSize(inst);
      const ir::Value* base = inst->operand(0);
      if (base->type()->isPointer()) {
        const auto* pt =
            static_cast<const cfront::PointerType*>(base->type())
                ->pointee();
        if (pt != nullptr && pt->isStruct()) {
          const auto* st = static_cast<const cfront::StructType*>(pt);
          if (inst->field_index < st->fields().size()) {
            const auto& f = st->fields()[inst->field_index];
            delta = static_cast<std::int64_t>(f.offset);
            fsize = static_cast<std::int64_t>(f.type->size());
          }
        }
      }
      if (options_.field_sensitive) {
        const int pn = valueNode(base);
        const int dn = valueNode(inst);
        nodes_[static_cast<std::size_t>(pn)].constraints.push_back(
            Constraint{Constraint::Kind::kOffset, dn, delta, fsize});
        worklist_.insert(find(pn));
      } else {
        addEdge(valueNode(base), valueNode(inst));
      }
      ++n_constraints_;
      break;
    }
    case ir::Opcode::kPhi:
      for (std::size_t i = 0; i < inst->numOperands(); ++i) {
        addEdge(valueNode(inst->operand(i)), valueNode(inst));
        ++n_constraints_;
      }
      break;
    case ir::Opcode::kCall: {
      const std::size_t first_arg = inst->direct_callee == nullptr ? 1 : 0;
      bool handled = false;
      for (const ir::Function* target : callgraph_.targets(*inst)) {
        if (target->isIntrinsic()) {
          handled = true;
          continue;
        }
        if (!target->isDefined()) continue;
        handled = true;
        for (std::size_t i = first_arg; i < inst->numOperands(); ++i) {
          const std::size_t p = i - first_arg;
          if (p >= target->args().size()) break;
          addEdge(valueNode(inst->operand(i)),
                  valueNode(target->args()[p].get()));
          ++n_constraints_;
        }
        if (inst->type()->isPointer()) {
          for (const auto& tbb : target->blocks()) {
            const ir::Instruction* term = tbb->terminator();
            if (term != nullptr && term->opcode() == ir::Opcode::kRet &&
                term->numOperands() == 1) {
              addEdge(valueNode(term->operand(0)), valueNode(inst));
              ++n_constraints_;
            }
          }
        }
      }
      if (!handled && inst->type()->isPointer()) {
        // External returning a pointer: unknown memory.
        addPts(valueNode(inst), unknown_);
        ++n_constraints_;
      }
      break;
    }
    default:
      break;
  }
  // Globals referenced as operands point at their own storage.
  for (const ir::Value* op : inst->operands()) {
    if (op->kind() == ir::Value::Kind::kGlobalVar) {
      addPts(valueNode(op),
             objectForGlobal(static_cast<const ir::GlobalVar*>(op)));
    }
  }
}

void PointsToSolver::genConstraints() {
  for (const auto& fn : module_.functions()) {
    if (!fn->isDefined()) continue;
    for (const auto& bb : fn->blocks()) {
      for (const auto& inst : bb->instructions()) {
        if (!support::budgetStep(budget_)) {
          live_ = false;
          return;
        }
        genInstruction(inst.get());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solving: periodic SCC condensation + worklist propagation
// ---------------------------------------------------------------------------

void PointsToSolver::condense() {
  const int n = static_cast<int>(nodes_.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<char> onstack(static_cast<std::size_t>(n), 0);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next = 0;

  struct Frame {
    int node;
    std::vector<int> succs;
    std::size_t i;
  };
  std::vector<Frame> frames;

  for (int start = 0; start < n; ++start) {
    if (find(start) != start || index[static_cast<std::size_t>(start)] >= 0) {
      continue;
    }
    frames.push_back(Frame{start, {}, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto un = static_cast<std::size_t>(f.node);
      if (f.i == 0) {
        index[un] = low[un] = next++;
        stack.push_back(f.node);
        onstack[un] = 1;
        for (int s : nodes_[un].succs) {
          const int r = find(s);
          if (r != f.node) f.succs.push_back(r);
        }
      }
      bool descended = false;
      while (f.i < f.succs.size()) {
        const int s = f.succs[f.i];
        const auto us = static_cast<std::size_t>(s);
        if (index[us] < 0) {
          ++f.i;
          frames.push_back(Frame{s, {}, 0});
          descended = true;
          break;
        }
        if (onstack[us] != 0) low[un] = std::min(low[un], index[us]);
        ++f.i;
      }
      if (descended) continue;
      if (low[un] == index[un]) {
        std::vector<int> scc;
        while (true) {
          const int v = stack.back();
          stack.pop_back();
          onstack[static_cast<std::size_t>(v)] = 0;
          scc.push_back(v);
          if (v == f.node) break;
        }
        if (scc.size() > 1) sccs.push_back(std::move(scc));
      }
      const int child = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        Frame& p = frames.back();
        const auto up = static_cast<std::size_t>(p.node);
        low[up] =
            std::min(low[up], low[static_cast<std::size_t>(child)]);
      }
    }
  }

  // Merge after the pass so the DFS never sees a mutating forest.
  for (const auto& scc : sccs) {
    int survivor = scc.front();
    for (std::size_t i = 1; i < scc.size(); ++i) {
      survivor = unite(survivor, scc[i]);
    }
  }
}

bool PointsToSolver::propagate() {
  edges_dirty_ = false;
  while (!worklist_.empty() && live_) {
    if (!support::budgetStep(budget_)) {
      live_ = false;
      break;
    }
    ++n_iterations_;
    const int raw = *worklist_.begin();
    worklist_.erase(worklist_.begin());
    const int node = find(raw);
    // Difference propagation: only the objects that arrived since the
    // last visit flow through the constraints and copy edges. (A stale
    // entry for a merged node drains the representative's delta, which
    // is a superset of what the stale node owed.)
    const std::set<ObjId> delta =
        std::move(nodes_[static_cast<std::size_t>(node)].pending);
    nodes_[static_cast<std::size_t>(node)].pending.clear();
    if (delta.empty()) continue;
    // Firing may create cells/content nodes and add copy edges.
    const std::size_t ncons =
        nodes_[static_cast<std::size_t>(node)].constraints.size();
    for (std::size_t ci = 0; ci < ncons; ++ci) {
      const Constraint c =
          nodes_[static_cast<std::size_t>(node)].constraints[ci];
      switch (c.kind) {
        case Constraint::Kind::kLoad:
          for (ObjId o : delta) addEdge(objNode(o), c.other);
          break;
        case Constraint::Kind::kStore:
          for (ObjId o : delta) addEdge(c.other, objNode(o));
          break;
        case Constraint::Kind::kOffset:
          for (ObjId o : delta) {
            addPts(c.other, resolveOffset(o, c.delta, c.size));
          }
          break;
      }
    }
    // Push the delta along copy edges.
    const std::set<int> succs =
        nodes_[static_cast<std::size_t>(node)].succs;
    for (int s0 : succs) {
      const int s = find(s0);
      if (s == node) continue;
      for (ObjId o : delta) addPts(s, o);
    }
  }
  return edges_dirty_;
}

void PointsToSolver::degrade() {
  // The solve was cut short: sets may under-approximate. Widen every
  // tracked pointer and every object's contents with unknown so
  // consumers treat partially-resolved pointers as unresolved (unsafe).
  for (const auto& [v, n] : value_nodes_) {
    Node& node = nodes_[static_cast<std::size_t>(find(n))];
    if (!node.pts.empty()) node.pts.insert(unknown_);
  }
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].node < 0) continue;
    Node& node = nodes_[static_cast<std::size_t>(find(objects_[i].node))];
    if (!node.pts.empty()) node.pts.insert(unknown_);
  }
}

void PointsToSolver::finalize() {
  for (const auto& [v, n] : value_nodes_) {
    const std::set<ObjId>& pts =
        nodes_[static_cast<std::size_t>(find(n))].pts;
    if (pts.empty()) continue;
    std::set<ObjId> out = pts;
    for (ObjId o : pts) {
      for (ObjId sib : objects_[static_cast<std::size_t>(o)].overlaps) {
        out.insert(sib);
      }
    }
    exposed_[v] = std::move(out);
  }
  SAFEFLOW_COUNT_N("pointsto.constraints", n_constraints_);
  SAFEFLOW_COUNT_N("pointsto.scc_collapsed", n_collapsed_);
  SAFEFLOW_COUNT_N("pointsto.worklist_iterations", n_iterations_);
  SAFEFLOW_COUNT_N("pointsto.field_cells", n_cells_);
}

void PointsToSolver::solve() {
  buildRegionObjects();
  genConstraints();
  while (live_) {
    condense();
    if (!propagate()) break;
  }
  if (!live_) {
    degraded_ = true;
    degrade();
  }
  finalize();
}

// ---------------------------------------------------------------------------
// Read API
// ---------------------------------------------------------------------------

const std::set<ObjId>& PointsToSolver::pointsTo(const ir::Value* v) const {
  auto it = exposed_.find(v);
  return it == exposed_.end() ? empty_ : it->second;
}

ObjId PointsToSolver::parentOf(ObjId obj) const {
  if (obj < 0 || static_cast<std::size_t>(obj) >= objects_.size()) {
    return -1;
  }
  return objects_[static_cast<std::size_t>(obj)].parent;
}

int PointsToSolver::regionOf(ObjId obj) const {
  if (obj < 0 || static_cast<std::size_t>(obj) >= objects_.size()) {
    return -1;
  }
  return objects_[static_cast<std::size_t>(obj)].region_id;
}

std::vector<ObjId> PointsToSolver::objectsOfRegion(int region_id) const {
  std::vector<ObjId> out;
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    if (objects_[i].region_id == region_id) {
      out.push_back(static_cast<ObjId>(i));
    }
  }
  return out;
}

std::pair<std::int64_t, std::int64_t> PointsToSolver::extentOf(
    ObjId obj) const {
  if (obj < 0 || static_cast<std::size_t>(obj) >= objects_.size()) {
    return {0, 0};
  }
  const Object& o = objects_[static_cast<std::size_t>(obj)];
  return {o.offset, o.size};
}

std::string PointsToSolver::describe(ObjId obj) const {
  if (obj < 0 || static_cast<std::size_t>(obj) >= objects_.size()) {
    return "<bad-object>";
  }
  return objects_[static_cast<std::size_t>(obj)].name;
}

}  // namespace safeflow::analysis
