// Flow-insensitive, optionally field-sensitive points-to analysis over
// abstract memory objects — the stand-in for the paper's Data Structure
// Analysis (DSA). Objects are allocas, globals, declared shm regions, and
// one "unknown" object for externals. Arrays collapse to a single cell
// (the paper treats an array in shared memory as one unit); struct fields
// become distinct sub-objects when field sensitivity is on.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/shm_regions.h"
#include "ir/callgraph.h"
#include "ir/ir.h"
#include "support/limits.h"

namespace safeflow::analysis {

using ObjId = int;

struct AliasOptions {
  bool field_sensitive = true;
};

class AliasAnalysis {
 public:
  AliasAnalysis(const ir::Module& module, const ShmRegionTable& regions,
                const ir::CallGraph& callgraph, AliasOptions options = {},
                support::AnalysisBudget* budget = nullptr);

  /// Runs to a fixpoint, or until the budget trips. On exhaustion every
  /// tracked pointer additionally points at the unknown object, so
  /// consumers treat partially-resolved pointers as unresolved (unsafe).
  void run();

  /// Objects the pointer value may point at (empty when not a pointer or
  /// nothing is known — treat as "no memory effect").
  [[nodiscard]] const std::set<ObjId>& pointsTo(const ir::Value* v) const;

  /// The shm region an object denotes, or -1.
  [[nodiscard]] int regionOf(ObjId obj) const;
  /// Region sub-objects of one region (all field cells plus the base).
  [[nodiscard]] std::vector<ObjId> objectsOfRegion(int region_id) const;
  /// Byte offset of a (possibly field) object within its base, and size.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> extentOf(
      ObjId obj) const;

  [[nodiscard]] bool isUnknown(ObjId obj) const { return obj == unknown_; }
  /// Parent of a field sub-object, or -1 for base objects.
  [[nodiscard]] ObjId parentOf(ObjId obj) const;
  [[nodiscard]] std::string describe(ObjId obj) const;
  [[nodiscard]] std::size_t objectCount() const { return infos_.size(); }

  /// Structural identity of an object, exposed so the summary layer can
  /// derive names that are stable across runs (ObjId allocation order is
  /// an implementation detail; describe() is not injective — distinct
  /// allocas in different functions can share a display name).
  enum class ObjKind { kAlloca, kGlobal, kRegion, kField, kUnknown };
  [[nodiscard]] ObjKind kindOf(ObjId obj) const {
    return static_cast<ObjKind>(infos_[static_cast<std::size_t>(obj)].kind);
  }
  /// Alloca instruction or global var anchoring the object (null for
  /// regions/fields/unknown).
  [[nodiscard]] const ir::Value* anchorOf(ObjId obj) const {
    return infos_[static_cast<std::size_t>(obj)].anchor;
  }
  /// Field index within the parent object (meaningful for kField only).
  [[nodiscard]] unsigned fieldIndexOf(ObjId obj) const {
    return infos_[static_cast<std::size_t>(obj)].field;
  }

 private:
  struct ObjInfo {
    enum class Kind { kAlloca, kGlobal, kRegion, kField, kUnknown };
    Kind kind = Kind::kUnknown;
    const ir::Value* anchor = nullptr;  // alloca inst or global var
    int region_id = -1;
    ObjId parent = -1;      // for fields
    unsigned field = 0;     // for fields
    std::int64_t offset = 0;
    std::int64_t size = 0;
    std::string name;
  };

  ObjId internObject(ObjInfo info);
  ObjId objectForAlloca(const ir::Instruction* alloca);
  ObjId objectForGlobal(const ir::GlobalVar* g);
  ObjId fieldObject(ObjId base, unsigned field_index,
                    const ir::Type* field_type);

  bool addPointsTo(const ir::Value* v, ObjId obj);
  bool addAll(const ir::Value* v, const std::set<ObjId>& objs);

  const ir::Module& module_;
  const ShmRegionTable& regions_;
  const ir::CallGraph& callgraph_;
  AliasOptions options_;
  support::AnalysisBudget* budget_ = nullptr;

  std::vector<ObjInfo> infos_;
  std::map<const ir::Value*, ObjId> value_objects_;
  std::map<std::pair<ObjId, unsigned>, ObjId> field_objects_;
  std::map<int, ObjId> region_objects_;
  ObjId unknown_ = -1;

  std::map<const ir::Value*, std::set<ObjId>> points_to_;
  std::map<ObjId, std::set<ObjId>> contents_;
  std::set<ObjId> empty_;
};

}  // namespace safeflow::analysis
