// The alias layer consumed by taint, ranges, and the summary store — the
// stand-in for the paper's Data Structure Analysis (DSA). Since 0.9.0
// the default engine is the Andersen-style inclusion-based solver in
// analysis/pointsto.h (constraint graph + SCC condensation, byte-offset
// field cells, union overlap, constant pointer arithmetic); the previous
// ad-hoc flow-insensitive fixpoint is kept behind
// AliasOptions::Engine::kLegacy as an escape hatch (--alias=legacy).
//
// Both engines share this facade: objects are allocas, globals, declared
// shm regions, field sub-objects, and one "unknown" object for
// externals. Arrays collapse to a single cell (the paper treats an array
// in shared memory as one unit); struct fields become distinct
// sub-objects when field sensitivity is on.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/pointsto.h"
#include "analysis/shm_regions.h"
#include "ir/callgraph.h"
#include "ir/ir.h"
#include "support/limits.h"

namespace safeflow::analysis {

struct AliasOptions {
  bool field_sensitive = true;
  /// kAndersen: inclusion-based constraint solver (pointsto.h).
  /// kLegacy: the pre-0.9.0 ad-hoc fixpoint (--alias=legacy). The flag
  /// participates in cache keys and the summary config fingerprint.
  enum class Engine { kAndersen, kLegacy };
  Engine engine = Engine::kAndersen;
};

class AliasAnalysis {
 public:
  AliasAnalysis(const ir::Module& module, const ShmRegionTable& regions,
                const ir::CallGraph& callgraph, AliasOptions options = {},
                support::AnalysisBudget* budget = nullptr);

  /// Runs to a fixpoint, or until the budget trips. On exhaustion every
  /// tracked pointer additionally points at the unknown object, so
  /// consumers treat partially-resolved pointers as unresolved (unsafe).
  void run();

  /// Objects the pointer value may point at (empty when not a pointer or
  /// nothing is known — treat as "no memory effect").
  [[nodiscard]] const std::set<ObjId>& pointsTo(const ir::Value* v) const;

  /// The shm region an object denotes, or -1.
  [[nodiscard]] int regionOf(ObjId obj) const;
  /// Region sub-objects of one region (all field cells plus the base).
  [[nodiscard]] std::vector<ObjId> objectsOfRegion(int region_id) const;
  /// Byte offset of a (possibly field) object within its base, and size.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> extentOf(
      ObjId obj) const;

  [[nodiscard]] bool isUnknown(ObjId obj) const {
    return solver_ ? solver_->isUnknown(obj) : obj == unknown_;
  }
  /// Parent of a field sub-object, or -1 for base objects.
  [[nodiscard]] ObjId parentOf(ObjId obj) const;
  /// Display name. Alloca objects are qualified with their owning
  /// function ("fn::name") so names are unambiguous across functions.
  [[nodiscard]] std::string describe(ObjId obj) const;
  [[nodiscard]] std::size_t objectCount() const {
    return solver_ ? solver_->objectCount() : infos_.size();
  }

  /// Structural identity of an object, exposed so the summary layer can
  /// derive names that are stable across runs (ObjId allocation order is
  /// an implementation detail).
  enum class ObjKind { kAlloca, kGlobal, kRegion, kField, kUnknown };
  [[nodiscard]] ObjKind kindOf(ObjId obj) const {
    if (solver_) return static_cast<ObjKind>(solver_->kindOf(obj));
    return static_cast<ObjKind>(infos_[static_cast<std::size_t>(obj)].kind);
  }
  /// Alloca instruction or global var anchoring the object (null for
  /// regions/fields/unknown).
  [[nodiscard]] const ir::Value* anchorOf(ObjId obj) const {
    if (solver_) return solver_->anchorOf(obj);
    return infos_[static_cast<std::size_t>(obj)].anchor;
  }
  /// Field index within the parent object (meaningful for kField only).
  [[nodiscard]] unsigned fieldIndexOf(ObjId obj) const {
    if (solver_) return solver_->fieldIndexOf(obj);
    return infos_[static_cast<std::size_t>(obj)].field;
  }

 private:
  struct ObjInfo {
    enum class Kind { kAlloca, kGlobal, kRegion, kField, kUnknown };
    Kind kind = Kind::kUnknown;
    const ir::Value* anchor = nullptr;  // alloca inst or global var
    int region_id = -1;
    ObjId parent = -1;      // for fields
    unsigned field = 0;     // for fields
    std::int64_t offset = 0;
    std::int64_t size = 0;
    std::string name;
  };

  ObjId internObject(ObjInfo info);
  ObjId objectForAlloca(const ir::Instruction* alloca);
  ObjId objectForGlobal(const ir::GlobalVar* g);
  ObjId fieldObject(ObjId base, unsigned field_index,
                    const ir::Type* field_type);

  bool addPointsTo(const ir::Value* v, ObjId obj);
  bool addAll(const ir::Value* v, const std::set<ObjId>& objs);

  /// The pre-0.9.0 ad-hoc flow-insensitive fixpoint (--alias=legacy).
  void runLegacy();
  /// Emits the alias.* precision counters shared by both engines.
  void emitSharedCounters() const;

  const ir::Module& module_;
  const ShmRegionTable& regions_;
  const ir::CallGraph& callgraph_;
  AliasOptions options_;
  support::AnalysisBudget* budget_ = nullptr;

  // Andersen engine (null under --alias=legacy).
  std::unique_ptr<PointsToSolver> solver_;

  // Legacy-engine state.
  std::vector<ObjInfo> infos_;
  std::map<const ir::Value*, ObjId> value_objects_;
  std::map<std::pair<ObjId, unsigned>, ObjId> field_objects_;
  std::map<int, ObjId> region_objects_;
  ObjId unknown_ = -1;

  std::map<const ir::Value*, std::set<ObjId>> points_to_;
  std::map<ObjId, std::set<ObjId>> contents_;
  std::set<ObjId> empty_;
};

}  // namespace safeflow::analysis
