// Sparse, SSA-based interprocedural value-range (interval) analysis in
// the style of Miné's value analysis for embedded C: every integer SSA
// value gets a conservative interval, computed by a widening fixpoint
// over each function body plus an interprocedural round that joins
// argument ranges over call sites and return ranges over ret sites.
//
// Three downstream consumers use the result (`RangeInfo` == this class):
//   1. the A1/A2 restriction checker seeds its LinearSystem with proven
//      variable bounds, so `for (i = 0; i < n; i++) a[i]` discharges
//      when n's *range* is known even though n is not a constant;
//   2. the taint phase skips control edges whose branch condition is
//      statically decided (a branch that always goes one way carries no
//      runtime information), shrinking the control-only FP class;
//   3. a dedicated check flags shm accesses whose index range provably
//      exceeds the region extent ("shm-bounds-const" diagnostics).
//
// Degradation contract (same as every other phase): budget exhaustion or
// a failed fixpoint makes every query return ⊤ — never a tighter range —
// and the driver marks the run degraded.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/summaries.h"
#include "ir/callgraph.h"
#include "ir/dominators.h"
#include "ir/ir.h"
#include "support/limits.h"

namespace safeflow::support {
class DiagnosticEngine;
}

namespace safeflow::analysis {

/// A closed integer interval [lo, hi]. The sentinels INT64_MIN / INT64_MAX
/// mean "unbounded" on that side; arithmetic saturates into them, so a
/// bound that would overflow int64 degrades to "unbounded" instead of
/// wrapping. The empty interval is not representable here — operations
/// that can produce it (meet) return std::nullopt instead.
struct Interval {
  static constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  static constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() { return Interval{}; }
  static Interval constant(std::int64_t v) { return Interval{v, v}; }

  [[nodiscard]] bool isTop() const { return lo == kMin && hi == kMax; }
  [[nodiscard]] bool boundedBelow() const { return lo != kMin; }
  [[nodiscard]] bool boundedAbove() const { return hi != kMax; }
  [[nodiscard]] bool isSingleton() const { return lo == hi; }
  [[nodiscard]] bool contains(std::int64_t v) const {
    return lo <= v && v <= hi;
  }
  bool operator==(const Interval&) const = default;

  /// Convex hull (the interval join).
  [[nodiscard]] Interval join(const Interval& o) const;
  /// Intersection; nullopt when the intervals are disjoint.
  [[nodiscard]] std::optional<Interval> meet(const Interval& o) const;

  [[nodiscard]] std::string str() const;
};

struct RangeOptions {
  /// --ranges / --no-ranges. Disabled: run() is a no-op and every query
  /// returns ⊤, keeping the pipeline byte-identical to a build without
  /// the pass.
  bool enabled = true;
  /// Updates a value may take before its grown bounds are widened to the
  /// bounds of its type (loop accumulators hit this).
  unsigned widen_after = 4;
  /// Interprocedural rounds (argument/return range propagation). The
  /// fixpoint almost always settles in 2-3 rounds thanks to widening; if
  /// it is still moving after this many, the pass degrades to ⊤.
  unsigned max_module_rounds = 16;
};

/// The queryable result ("RangeInfo"). Construct, run() once after SSA,
/// then query from any later phase. All queries are ⊤-safe: unknown
/// values, non-integer values, a disabled pass, and degraded runs all
/// answer ⊤.
class RangeAnalysis {
 public:
  RangeAnalysis(const ir::Module& module, const ir::CallGraph& callgraph,
                RangeOptions options = {},
                support::AnalysisBudget* budget = nullptr,
                PhaseMemoHooks memo = {});

  void run();

  /// Flow-insensitive range of an SSA value.
  [[nodiscard]] Interval rangeOf(const ir::Value* v) const;
  /// Range of `v` at `bb`, refined by every branch condition that
  /// dominates the block (e.g. inside `if (i < n)` the true-edge
  /// constraint i <= hi(n)-1 applies).
  [[nodiscard]] Interval rangeAt(const ir::Value* v,
                                 const ir::BasicBlock* bb) const;

  /// For a CondBr whose condition is statically decided: the index (0 or
  /// 1) of the successor always taken. nullopt when undecided (or when
  /// the pass is off / degraded).
  [[nodiscard]] std::optional<unsigned> decidedBranch(
      const ir::Instruction* condbr) const;
  /// True when the CFG edge pred -> succ is provably never taken.
  [[nodiscard]] bool edgeInfeasible(const ir::BasicBlock* pred,
                                    const ir::BasicBlock* succ) const;

  [[nodiscard]] bool enabled() const { return options_.enabled; }
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] std::size_t decidedBranchCount() const {
    return decided_.size();
  }

  /// Order-independent digest of the final analysis state (value ranges,
  /// return ranges, decided branches under cross-run stable names) for
  /// --verify-summaries.
  [[nodiscard]] std::uint64_t digestState(const ModuleIndex& index) const;

 private:
  bool analyzeFunction(const ir::Function& fn);
  /// Memoizing wrapper around analyzeFunction (see summaries.h): digests
  /// the per-function transformer's input, replays a recorded post-state
  /// on a hit, records one on a miss.
  bool memoizedAnalyze(const ir::Function& fn);
  void digestInput(const ir::Function& fn, support::Fnv1a& h) const;
  [[nodiscard]] std::string captureRecord(const ir::Function& fn,
                                          bool identity,
                                          bool changed_any,
                                          bool module_delta) const;
  bool applyRecord(const ir::Function& fn, const std::string& blob,
                   bool* changed_any);
  /// Joins `value` into fn's return range (same widening as joinInto).
  bool joinReturn(const ir::Function* fn, Interval value);
  /// Transfer function for one instruction; nullopt = bottom (no incoming
  /// value yet, e.g. a phi whose operands are all unvisited back edges).
  std::optional<Interval> transfer(const ir::Instruction& inst);
  /// Joins `value` into the stored range for `key`, applying widening
  /// after options_.widen_after growths. Returns true when it changed.
  bool joinInto(const ir::Value* key, Interval value, const ir::Type* type);
  /// Range of an operand; nullopt = bottom.
  [[nodiscard]] std::optional<Interval> valueRange(const ir::Value* v) const;
  /// Applies every dominating-branch refinement of `v` at `bb` to `r`
  /// (the shared core of rangeAt, also used to evaluate transfer operands
  /// in their block context — what keeps `i + 1` in a guarded loop from
  /// wrapping to the full type interval).
  [[nodiscard]] Interval refinedAt(Interval r, const ir::Value* v,
                                   const ir::BasicBlock* bb) const;
  /// The (pred, succ) dominating edges whose CondBr can refine values in
  /// `bb`, cached per block (the CFG never changes during run()).
  const std::vector<std::pair<const ir::BasicBlock*, const ir::BasicBlock*>>&
  refineChain(const ir::BasicBlock* bb, const ir::DominatorTree& dt) const;
  /// valueRange + refinedAt: an operand's range in `bb`'s context.
  [[nodiscard]] std::optional<Interval> contextRange(
      const ir::Value* v, const ir::BasicBlock* bb) const;
  /// Refines `r` (the range of `v`) along the CFG edge pred -> succ using
  /// pred's branch condition. Returns nullopt when the edge is provably
  /// infeasible for this value.
  [[nodiscard]] std::optional<Interval> refineOnEdge(
      Interval r, const ir::Value* v, const ir::BasicBlock* pred,
      const ir::BasicBlock* succ) const;
  /// Refines `r` given that `v op other` (value_on_left) or
  /// `other op v` holds.
  [[nodiscard]] std::optional<Interval> refineByCmp(Interval r, ir::CmpOp op,
                                                    const Interval& other,
                                                    bool value_on_left) const;
  void computeDecidedBranches();
  void degradeToTop();

  const ir::Module& module_;
  const ir::CallGraph& callgraph_;
  RangeOptions options_;
  support::AnalysisBudget* budget_ = nullptr;
  PhaseMemoHooks memo_;

  std::map<const ir::Value*, Interval> range_;
  std::map<const ir::Function*, Interval> return_range_;
  std::map<const void*, unsigned> update_counts_;  // values & functions
  std::map<const ir::Function*, ir::DominatorTree> domtrees_;
  mutable std::map<const ir::BasicBlock*,
                   std::vector<std::pair<const ir::BasicBlock*,
                                         const ir::BasicBlock*>>>
      refine_chain_;
  std::map<const ir::Instruction*, unsigned> decided_;
  std::set<const ir::Function*> top_arg_fns_;  // roots & address-taken
  bool ran_ = false;
  bool degraded_ = false;
  bool module_changed_ = false;  // set by call-site argument joins
};

class ShmRegionTable;
class ShmPointerAnalysis;
class AliasAnalysis;
struct SafeFlowReport;

/// Consumer 3: flags shm accesses whose index range is provably *always*
/// outside the region extent (AliasAnalysis::extentOf), as
/// "shm-bounds-const" restriction violations + diagnostics. Runs after
/// the alias phase; returns the number of findings. A disabled or
/// degraded range pass reports nothing (conservative: absence of range
/// information must not invent findings).
std::size_t checkShmConstBounds(const ir::Module& module,
                                const ShmRegionTable& regions,
                                const ShmPointerAnalysis& shm,
                                const AliasAnalysis& alias,
                                const RangeAnalysis& ranges,
                                SafeFlowReport& report,
                                support::DiagnosticEngine& diags);

}  // namespace safeflow::analysis
