#include "analysis/affine.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace safeflow::analysis {

std::string LinearConstraint::str() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [var, coeff] : coeffs) {
    if (coeff == 0) continue;
    if (!first) out << " + ";
    out << coeff << "*x" << var;
    first = false;
  }
  if (first) out << "0";
  if (constant != 0) out << " + " << constant;
  out << " >= 0";
  return out.str();
}

int LinearSystem::addVariable(std::string name) {
  names_.push_back(name.empty() ? "x" + std::to_string(num_vars_)
                                : std::move(name));
  return num_vars_++;
}

void LinearSystem::add(LinearConstraint c) {
  // Drop zero coefficients for canonical form.
  for (auto it = c.coeffs.begin(); it != c.coeffs.end();) {
    it = (it->second == 0) ? c.coeffs.erase(it) : std::next(it);
  }
  constraints_.push_back(std::move(c));
}

void LinearSystem::addLowerBound(int var, std::int64_t lo) {
  LinearConstraint c;
  c.coeffs[var] = 1;
  c.constant = -lo;
  add(std::move(c));
}

void LinearSystem::addUpperBound(int var, std::int64_t hi) {
  LinearConstraint c;
  c.coeffs[var] = -1;
  c.constant = hi;
  add(std::move(c));
}

void LinearSystem::addEquality(LinearConstraint c) {
  LinearConstraint neg;
  for (const auto& [v, coeff] : c.coeffs) neg.coeffs[v] = -coeff;
  neg.constant = -c.constant;
  add(std::move(c));
  add(std::move(neg));
}

namespace {

std::int64_t floorDiv(std::int64_t a, std::int64_t b) {
  // b > 0 assumed.
  std::int64_t q = a / b;
  if ((a % b != 0) && (a < 0)) --q;
  return q;
}

/// Checks a constraint set with no variables: all constants must be >= 0.
bool constantsFeasible(const std::vector<LinearConstraint>& cs) {
  return std::all_of(cs.begin(), cs.end(), [](const LinearConstraint& c) {
    return !c.coeffs.empty() || c.constant >= 0;
  });
}

}  // namespace

bool LinearSystem::isFeasible(support::AnalysisBudget* budget) const {
  std::vector<LinearConstraint> work = constraints_;

  for (int var = 0; var < num_vars_; ++var) {
    // Partition into lower bounds (coeff > 0 -> var >= ...), upper bounds
    // (coeff < 0 -> var <= ...), and constraints not involving var.
    std::vector<LinearConstraint> lowers;
    std::vector<LinearConstraint> uppers;
    std::vector<LinearConstraint> rest;
    for (LinearConstraint& c : work) {
      auto it = c.coeffs.find(var);
      if (it == c.coeffs.end() || it->second == 0) {
        rest.push_back(std::move(c));
      } else if (it->second > 0) {
        lowers.push_back(std::move(c));
      } else {
        uppers.push_back(std::move(c));
      }
    }
    // If var is unbounded on one side, every pairing is satisfiable for
    // some var; just drop the constraints that involve it.
    if (lowers.empty() || uppers.empty()) {
      work = std::move(rest);
      continue;
    }
    // Combine each (lower, upper) pair, eliminating var with the dark-
    // shadow style integer tightening: from a*var + L >= 0 (a>0) and
    // -b*var + U >= 0 (b>0):  b*L + a*U >= 0 is the real shadow; for
    // integer exactness when a==1 or b==1 the shadow is exact, which
    // covers the normalized loop-bound constraints we emit. Otherwise we
    // keep the real shadow (conservatively feasible).
    for (const LinearConstraint& lo : lowers) {
      const std::int64_t a = lo.coeffs.at(var);
      for (const LinearConstraint& up : uppers) {
        // Out of budget mid-elimination: the system is unprovable, which
        // the contract maps to "feasible" (violation gets reported).
        if (!support::budgetStep(budget)) return true;
        const std::int64_t b = -up.coeffs.at(var);
        // The shadow coefficients are products of input coefficients; with
        // extreme inputs these can exceed int64. An overflowed shadow is
        // garbage either way, so treat the pairing as unprovable —
        // "feasible", the direction that reports a violation rather than
        // hiding one.
        bool overflow = false;
        const auto mulAdd = [&overflow](std::int64_t acc, std::int64_t x,
                                        std::int64_t y) {
          std::int64_t prod = 0;
          std::int64_t sum = 0;
          if (__builtin_mul_overflow(x, y, &prod) ||
              __builtin_add_overflow(acc, prod, &sum)) {
            overflow = true;
            return acc;
          }
          return sum;
        };
        LinearConstraint combined;
        for (const auto& [v, coeff] : lo.coeffs) {
          if (v != var) combined.coeffs[v] = mulAdd(combined.coeffs[v], b, coeff);
        }
        for (const auto& [v, coeff] : up.coeffs) {
          if (v != var) combined.coeffs[v] = mulAdd(combined.coeffs[v], a, coeff);
        }
        combined.constant = mulAdd(0, b, lo.constant);
        combined.constant = mulAdd(combined.constant, a, up.constant);
        if (overflow) return true;
        // Real-shadow elimination: exact when a==1 or b==1 (all constraints
        // the restriction checker emits are in that normalized form), and
        // over-approximates feasibility otherwise — which errs toward
        // reporting a bounds violation, never toward hiding one.
        for (auto it = combined.coeffs.begin();
             it != combined.coeffs.end();) {
          it = (it->second == 0) ? combined.coeffs.erase(it)
                                 : std::next(it);
        }
        // Normalize by gcd to keep numbers small.
        std::int64_t g = std::abs(combined.constant);
        for (const auto& [v, coeff] : combined.coeffs) {
          g = std::gcd(g, std::abs(coeff));
        }
        if (g > 1 && !combined.coeffs.empty()) {
          for (auto& [v, coeff] : combined.coeffs) coeff /= g;
          combined.constant = floorDiv(combined.constant, g);
        }
        rest.push_back(std::move(combined));
      }
    }
    work = std::move(rest);
    if (!constantsFeasible(work)) return false;
  }
  return constantsFeasible(work);
}

std::string LinearSystem::str() const {
  std::ostringstream out;
  for (const LinearConstraint& c : constraints_) out << c.str() << "\n";
  return out.str();
}

}  // namespace safeflow::analysis
