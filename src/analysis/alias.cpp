#include "analysis/alias.h"

#include "support/metrics.h"

namespace safeflow::analysis {

AliasAnalysis::AliasAnalysis(const ir::Module& module,
                             const ShmRegionTable& regions,
                             const ir::CallGraph& callgraph,
                             AliasOptions options,
                             support::AnalysisBudget* budget)
    : module_(module),
      regions_(regions),
      callgraph_(callgraph),
      options_(options),
      budget_(budget) {
  if (options_.engine == AliasOptions::Engine::kAndersen) {
    solver_ = std::make_unique<PointsToSolver>(
        module_, regions_, callgraph_,
        PointsToOptions{options_.field_sensitive}, budget_);
    return;
  }
  ObjInfo unknown;
  unknown.kind = ObjInfo::Kind::kUnknown;
  unknown.name = "<unknown>";
  unknown_ = internObject(std::move(unknown));
  // The unknown object may contain a pointer to itself (externals can
  // return pointers to graphs of unknown memory).
  contents_[unknown_].insert(unknown_);
}

void AliasAnalysis::run() {
  const support::ScopedTimer timer("phase.alias");
  support::budgetBeginPhase(budget_, "alias");
  if (solver_) {
    solver_->solve();
  } else {
    runLegacy();
  }
  emitSharedCounters();
}

void AliasAnalysis::emitSharedCounters() const {
  // Precision feed for the CI alias baseline: how many values resolved
  // to concrete objects only (no unknown), how many reach a shm region,
  // and how many carry exact field/offset cells.
  std::size_t edges = 0;
  std::size_t resolved = 0;
  std::size_t shm_resolved = 0;
  std::size_t field_precise = 0;
  const auto tally = [&](const std::set<ObjId>& objs) {
    edges += objs.size();
    bool any_unknown = false;
    bool any_region = false;
    bool any_field = false;
    for (ObjId o : objs) {
      if (isUnknown(o)) any_unknown = true;
      if (regionOf(o) >= 0) any_region = true;
      if (kindOf(o) == ObjKind::kField) any_field = true;
    }
    if (!any_unknown) ++resolved;
    // Region association is counted independently of unknown: the shmat
    // return is external (unknown), so every region pointer global also
    // holds unknown — what matters is whether the region survives at all.
    if (any_region) ++shm_resolved;
    if (any_field) ++field_precise;
  };
  if (solver_) {
    for (const auto& [v, objs] : solver_->allPointsTo()) tally(objs);
  } else {
    for (const auto& [v, objs] : points_to_) tally(objs);
  }
  SAFEFLOW_COUNT_N("alias.points_to_edges", edges);
  SAFEFLOW_COUNT_N("alias.resolved_pointers", resolved);
  SAFEFLOW_COUNT_N("alias.shm_pointers_resolved", shm_resolved);
  SAFEFLOW_COUNT_N("alias.field_precise_pointers", field_precise);
  SAFEFLOW_GAUGE("alias.objects", objectCount());
}

// ---------------------------------------------------------------------------
// Facade dispatch
// ---------------------------------------------------------------------------

const std::set<ObjId>& AliasAnalysis::pointsTo(const ir::Value* v) const {
  if (solver_) return solver_->pointsTo(v);
  auto it = points_to_.find(v);
  return it == points_to_.end() ? empty_ : it->second;
}

ObjId AliasAnalysis::parentOf(ObjId obj) const {
  if (solver_) return solver_->parentOf(obj);
  if (obj < 0 || static_cast<std::size_t>(obj) >= infos_.size()) return -1;
  const ObjInfo& info = infos_[static_cast<std::size_t>(obj)];
  return info.kind == ObjInfo::Kind::kField ? info.parent : -1;
}

int AliasAnalysis::regionOf(ObjId obj) const {
  if (solver_) return solver_->regionOf(obj);
  if (obj < 0 || static_cast<std::size_t>(obj) >= infos_.size()) return -1;
  return infos_[static_cast<std::size_t>(obj)].region_id;
}

std::vector<ObjId> AliasAnalysis::objectsOfRegion(int region_id) const {
  if (solver_) return solver_->objectsOfRegion(region_id);
  std::vector<ObjId> out;
  for (std::size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].region_id == region_id) {
      out.push_back(static_cast<ObjId>(i));
    }
  }
  return out;
}

std::pair<std::int64_t, std::int64_t> AliasAnalysis::extentOf(
    ObjId obj) const {
  if (solver_) return solver_->extentOf(obj);
  if (obj < 0 || static_cast<std::size_t>(obj) >= infos_.size()) {
    return {0, 0};
  }
  const ObjInfo& info = infos_[static_cast<std::size_t>(obj)];
  if (info.kind != ObjInfo::Kind::kField) return {0, info.size};
  // Field offset within the parent: recover from the parent's pointee
  // struct layout when available. The region's pointee type carries it.
  std::int64_t offset = 0;
  const int region = info.region_id;
  if (region >= 0) {
    if (const ShmRegion* r = regions_.byId(region)) {
      if (r->pointee_type != nullptr && r->pointee_type->isStruct()) {
        const auto* st =
            static_cast<const cfront::StructType*>(r->pointee_type);
        if (info.field < st->fields().size()) {
          offset = static_cast<std::int64_t>(
              st->fields()[info.field].offset);
        }
      }
    }
  }
  return {offset, info.size};
}

std::string AliasAnalysis::describe(ObjId obj) const {
  if (solver_) return solver_->describe(obj);
  if (obj < 0 || static_cast<std::size_t>(obj) >= infos_.size()) {
    return "<bad-object>";
  }
  return infos_[static_cast<std::size_t>(obj)].name;
}

// ---------------------------------------------------------------------------
// Legacy engine (pre-0.9.0 ad-hoc fixpoint, --alias=legacy)
// ---------------------------------------------------------------------------

ObjId AliasAnalysis::internObject(ObjInfo info) {
  infos_.push_back(std::move(info));
  return static_cast<ObjId>(infos_.size() - 1);
}

ObjId AliasAnalysis::objectForAlloca(const ir::Instruction* alloca) {
  auto it = value_objects_.find(alloca);
  if (it != value_objects_.end()) return it->second;
  ObjInfo info;
  info.kind = ObjInfo::Kind::kAlloca;
  info.anchor = alloca;
  // Qualified with the owning function: bare alloca names are not unique
  // across functions and diagnostics must be unambiguous.
  const ir::Function* fn =
      alloca->parent() != nullptr ? alloca->parent()->parent() : nullptr;
  const std::string base =
      alloca->name().empty() ? std::string("<tmp>") : alloca->name();
  info.name = (fn != nullptr ? fn->name() + "::" : std::string()) + base;
  info.size = alloca->allocated_type
                  ? static_cast<std::int64_t>(alloca->allocated_type->size())
                  : 0;
  const ObjId id = internObject(std::move(info));
  value_objects_[alloca] = id;
  return id;
}

ObjId AliasAnalysis::objectForGlobal(const ir::GlobalVar* g) {
  auto it = value_objects_.find(g);
  if (it != value_objects_.end()) return it->second;
  ObjInfo info;
  info.kind = ObjInfo::Kind::kGlobal;
  info.anchor = g;
  info.name = g->name();
  info.size = static_cast<std::int64_t>(g->valueType()->size());
  const ObjId id = internObject(std::move(info));
  value_objects_[g] = id;
  return id;
}

ObjId AliasAnalysis::fieldObject(ObjId base, unsigned field_index,
                                 const ir::Type* field_type) {
  if (!options_.field_sensitive) return base;
  if (isUnknown(base)) return base;
  const auto key = std::make_pair(base, field_index);
  auto it = field_objects_.find(key);
  if (it != field_objects_.end()) return it->second;
  ObjInfo info;
  info.kind = ObjInfo::Kind::kField;
  info.parent = base;
  info.field = field_index;
  info.region_id = infos_[static_cast<std::size_t>(base)].region_id;
  info.name = infos_[static_cast<std::size_t>(base)].name + ".#" +
              std::to_string(field_index);
  info.size =
      field_type ? static_cast<std::int64_t>(field_type->size()) : 0;
  const ObjId id = internObject(std::move(info));
  field_objects_[key] = id;
  return id;
}

bool AliasAnalysis::addPointsTo(const ir::Value* v, ObjId obj) {
  return points_to_[v].insert(obj).second;
}

bool AliasAnalysis::addAll(const ir::Value* v, const std::set<ObjId>& objs) {
  bool changed = false;
  for (ObjId o : objs) changed |= addPointsTo(v, o);
  return changed;
}

void AliasAnalysis::runLegacy() {
  std::size_t rounds = 0;
  bool live = true;
  // Region objects.
  for (const ShmRegion& r : regions_.regions()) {
    ObjInfo info;
    info.kind = ObjInfo::Kind::kRegion;
    info.region_id = r.id;
    info.name = "shm:" + r.name;
    info.size = r.size;
    const ObjId id = internObject(std::move(info));
    region_objects_[r.id] = id;
    // The global pointer variable holds a pointer to the region.
    if (r.pointer_global != nullptr) {
      contents_[objectForGlobal(r.pointer_global)].insert(id);
    }
  }

  bool changed = true;
  while (changed && live) {
    changed = false;
    ++rounds;
    for (const auto& fn : module_.functions()) {
      if (!live) break;
      if (!fn->isDefined()) continue;
      for (const auto& bb : fn->blocks()) {
        if (!live) break;
        for (const auto& inst : bb->instructions()) {
          if (!support::budgetStep(budget_)) {
            live = false;
            break;
          }
          switch (inst->opcode()) {
            case ir::Opcode::kAlloca:
              changed |= addPointsTo(inst.get(),
                                     objectForAlloca(inst.get()));
              break;
            case ir::Opcode::kLoad: {
              const ir::Value* ptr = inst->operand(0);
              // Address values: globals point at their own storage.
              if (ptr->kind() == ir::Value::Kind::kGlobalVar) {
                changed |= addPointsTo(
                    ptr, objectForGlobal(
                             static_cast<const ir::GlobalVar*>(ptr)));
              }
              if (!inst->type()->isPointer()) break;
              for (ObjId obj : pointsTo(ptr)) {
                changed |= addAll(inst.get(), contents_[obj]);
              }
              break;
            }
            case ir::Opcode::kStore: {
              const ir::Value* ptr = inst->operand(1);
              if (ptr->kind() == ir::Value::Kind::kGlobalVar) {
                changed |= addPointsTo(
                    ptr, objectForGlobal(
                             static_cast<const ir::GlobalVar*>(ptr)));
              }
              const ir::Value* value = inst->operand(0);
              if (!value->type()->isPointer()) break;
              const std::set<ObjId>& value_pts = pointsTo(value);
              if (value_pts.empty()) break;
              for (ObjId obj : pointsTo(ptr)) {
                for (ObjId v : value_pts) {
                  changed |= contents_[obj].insert(v).second;
                }
              }
              break;
            }
            case ir::Opcode::kCast:
            case ir::Opcode::kIndexAddr:
              // Arrays collapse: element pointer aliases the base object.
              changed |= addAll(inst.get(), pointsTo(inst->operand(0)));
              break;
            case ir::Opcode::kFieldAddr: {
              for (ObjId base : pointsTo(inst->operand(0))) {
                const ir::Type* ft =
                    inst->type()->isPointer()
                        ? static_cast<const cfront::PointerType*>(
                              inst->type())
                              ->pointee()
                        : nullptr;
                changed |= addPointsTo(
                    inst.get(), fieldObject(base, inst->field_index, ft));
              }
              break;
            }
            case ir::Opcode::kPhi:
              for (std::size_t i = 0; i < inst->numOperands(); ++i) {
                changed |= addAll(inst.get(), pointsTo(inst->operand(i)));
              }
              break;
            case ir::Opcode::kCall: {
              const std::size_t first_arg =
                  inst->direct_callee == nullptr ? 1 : 0;
              bool handled = false;
              for (const ir::Function* target :
                   callgraph_.targets(*inst)) {
                if (target->isIntrinsic()) {
                  handled = true;
                  continue;
                }
                if (!target->isDefined()) continue;
                handled = true;
                for (std::size_t i = first_arg; i < inst->numOperands();
                     ++i) {
                  const std::size_t p = i - first_arg;
                  if (p >= target->args().size()) break;
                  changed |= addAll(target->args()[p].get(),
                                    pointsTo(inst->operand(i)));
                }
                // Returned pointers.
                if (inst->type()->isPointer()) {
                  for (const auto& tbb : target->blocks()) {
                    const ir::Instruction* term = tbb->terminator();
                    if (term != nullptr &&
                        term->opcode() == ir::Opcode::kRet &&
                        term->numOperands() == 1) {
                      changed |=
                          addAll(inst.get(), pointsTo(term->operand(0)));
                    }
                  }
                }
              }
              if (!handled && inst->type()->isPointer()) {
                // External returning a pointer: unknown memory.
                changed |= addPointsTo(inst.get(), unknown_);
              }
              break;
            }
            default:
              break;
          }
        }
      }
      // Globals referenced as operands anywhere get their object.
      for (const auto& bb : fn->blocks()) {
        for (const auto& inst : bb->instructions()) {
          for (std::size_t i = 0; i < inst->numOperands(); ++i) {
            const ir::Value* op = inst->operand(i);
            if (op->kind() == ir::Value::Kind::kGlobalVar) {
              changed |= addPointsTo(
                  op,
                  objectForGlobal(static_cast<const ir::GlobalVar*>(op)));
            }
          }
        }
      }
    }
  }
  if (!live) {
    // Fixpoint cut short: points-to sets may under-approximate. Make every
    // partially-resolved pointer also point at the unknown object so
    // consumers fall back to their external/unresolved (unsafe) handling.
    for (auto& [v, objs] : points_to_) objs.insert(unknown_);
    for (auto& [obj, objs] : contents_) objs.insert(unknown_);
  }
  SAFEFLOW_COUNT_N("alias.fixpoint_rounds", rounds);
}

}  // namespace safeflow::analysis
